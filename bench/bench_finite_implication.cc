// E5: finite vs unrestricted implication (Theorem 4.4 / Section 6 cycles).
// The unary counting engine decides |=fin for cycle families of growing
// size k in polynomial time, while the same conclusions are unrestrictedly
// non-implied.
#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench/bench_main.h"
#include "bench/reporter.h"
#include "constructions/section6.h"
#include "constructions/theorem44.h"
#include "core/satisfies.h"
#include "interact/finite_vs_unrestricted.h"
#include "interact/unary_finite.h"
#include "util/check.h"

namespace ccfp {
namespace {

void BM_UnaryFiniteEngineOnCycles(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  Section6Construction c = MakeSection6(k);
  bool implied = false;
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    UnaryFiniteImplication engine(c.scheme, c.fds, c.inds);
    implied = engine.Implies(c.sigma_target);
    rounds = engine.rounds();
    benchmark::DoNotOptimize(engine);
  }
  state.counters["k"] = static_cast<double>(k);
  state.counters["implied_fin"] = implied ? 1 : 0;  // always 1
  state.counters["rounds"] = static_cast<double>(rounds);
}

BENCHMARK(BM_UnaryFiniteEngineOnCycles)->RangeMultiplier(2)->Range(2, 128);

void BM_CompareImplicationTheorem44(benchmark::State& state) {
  Theorem44Gadget g = MakeTheorem44Gadget();
  int separations = 0;
  for (auto _ : state) {
    FiniteVsUnrestricted verdict = CompareImplication(
        g.scheme, {g.fd}, {g.ind}, Dependency(g.ind_conclusion));
    separations = (verdict.finite == ImplicationVerdict::kImplied &&
                   verdict.unrestricted == ImplicationVerdict::kNotImplied)
                      ? 1
                      : 0;
    benchmark::DoNotOptimize(verdict);
  }
  state.counters["separated"] = separations;  // 1: |=fin holds, |= fails
}

BENCHMARK(BM_CompareImplicationTheorem44);

void BM_PrefixViolationScan(benchmark::State& state) {
  // Model-checking cost of confirming that the length-N prefix of the
  // Figure 4.1 infinite witness violates Sigma.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Theorem44Gadget g = MakeTheorem44Gadget();
  Database prefix = Figure41Prefix(g, n);
  bool fd_holds = false, ind_holds = true;
  for (auto _ : state) {
    fd_holds = Satisfies(prefix, g.fd);
    ind_holds = Satisfies(prefix, g.ind);
    benchmark::DoNotOptimize(fd_holds);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["fd_holds"] = fd_holds ? 1 : 0;    // always 1
  state.counters["ind_holds"] = ind_holds ? 1 : 0;  // always 0 (boundary)
}

BENCHMARK(BM_PrefixViolationScan)->RangeMultiplier(8)->Range(8, 32768);

/// The counting closure on Section 6 cycles (steps = fixpoint rounds) and
/// the Theorem 4.4 finite/unrestricted separation (steps = 1 separation).
void EmitJsonReport(bool smoke) {
  BenchReporter reporter("finite_implication");
  for (std::size_t k : {16u, 64u}) {
    if (smoke && k != 16) continue;
    Section6Construction c = MakeSection6(k);
    std::uint64_t rounds = 0;
    std::uint64_t wall = MedianWallNs(smoke ? 1 : 5, [&] {
      UnaryFiniteImplication engine(c.scheme, c.fds, c.inds);
      CCFP_CHECK(engine.Implies(c.sigma_target));
      rounds = engine.rounds();
    });
    reporter.Add("unary_finite_cycle", k, wall, rounds);
  }
  {
    Theorem44Gadget g = MakeTheorem44Gadget();
    std::uint64_t wall = MedianWallNs(smoke ? 1 : 5, [&] {
      FiniteVsUnrestricted verdict = CompareImplication(
          g.scheme, {g.fd}, {g.ind}, Dependency(g.ind_conclusion));
      CCFP_CHECK(verdict.finite == ImplicationVerdict::kImplied &&
                 verdict.unrestricted == ImplicationVerdict::kNotImplied);
    });
    reporter.Add("theorem44_separation", 1, wall, 1);
  }
  reporter.WriteFile();
  std::fprintf(stderr, "BENCH_finite_implication.json written\n");
}

}  // namespace
}  // namespace ccfp

int main(int argc, char** argv) {
  return ccfp::RunBenchMain(argc, argv,
                            [](bool smoke) { ccfp::EmitJsonReport(smoke); });
}
