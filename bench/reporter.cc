#include "bench/reporter.h"

#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace ccfp {

namespace {

/// Escapes the handful of characters that can appear in bench names.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

std::uint64_t BenchReporter::PeakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(ru.ru_maxrss);  // already bytes
#else
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;  // kilobytes
#endif
#else
  return 0;
#endif
}

void BenchReporter::Add(const std::string& name, std::uint64_t n,
                        std::uint64_t wall_ns, std::uint64_t steps) {
  entries_.push_back(Entry{name, n, wall_ns, steps, PeakRssBytes(), 0});
}

void BenchReporter::AddThreaded(const std::string& name, std::uint64_t n,
                                std::uint64_t wall_ns, std::uint64_t steps,
                                unsigned threads) {
  entries_.push_back(
      Entry{name, n, wall_ns, steps, PeakRssBytes(), threads});
}

std::string BenchReporter::ToJson() const {
  std::string out = "{\"bench\": \"" + JsonEscape(bench_) +
                    "\", \"entries\": [";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    if (i > 0) out += ", ";
    out += "{\"name\": \"" + JsonEscape(e.name) + "\", \"n\": " +
           std::to_string(e.n) + ", \"wall_ns\": " + std::to_string(e.wall_ns) +
           ", \"steps\": " + std::to_string(e.steps) +
           ", \"peak_rss_bytes\": " + std::to_string(e.peak_rss_bytes);
    if (e.threads != 0) out += ", \"threads\": " + std::to_string(e.threads);
    out += "}";
  }
  out += "]}\n";
  return out;
}

bool BenchReporter::WriteFile(const std::string& dir) const {
  std::string path = dir + "/BENCH_" + bench_ + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "BenchReporter: cannot open %s\n", path.c_str());
    return false;
  }
  std::string json = ToJson();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "BenchReporter: wrote %s\n", path.c_str());
  return true;
}

}  // namespace ccfp
