// Ablation (DESIGN.md E8/E12 companion): a fixed finite rule arsenal
// (Armstrong + IND1-3 + Propositions 4.1-4.3) versus the chase on the
// Section 7 family. The chase derives sigma = F: A -> C for every n; the
// arsenal never does — the executable content of Theorem 7.1 ("no k-ary
// axiomatization"), measured.
#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench/bench_main.h"
#include "bench/reporter.h"
#include "chase/chase.h"
#include "constructions/section7.h"
#include "interact/derivation.h"
#include "util/check.h"

namespace ccfp {
namespace {

void BM_ArsenalOnSection7(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Section7Construction c = MakeSection7(n);
  bool derived = true;
  std::size_t trace = 0, derived_fds = 0, derived_inds = 0;
  for (auto _ : state) {
    MixedDerivation engine(c.scheme, c.SigmaDeps());
    Status st = engine.Saturate();
    if (st.ok()) {
      derived = engine.Derives(Dependency(c.sigma));
      trace = engine.trace().size();
      derived_fds = engine.fds().size();
      derived_inds = engine.inds().size();
    }
    benchmark::DoNotOptimize(engine);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["derives_sigma"] = derived ? 1 : 0;  // always 0 (Thm 7.1)
  state.counters["interaction_steps"] = static_cast<double>(trace);
  state.counters["fds"] = static_cast<double>(derived_fds);
  state.counters["inds"] = static_cast<double>(derived_inds);
}

BENCHMARK(BM_ArsenalOnSection7)->DenseRange(1, 6);

void BM_ChaseOnSection7(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Section7Construction c = MakeSection7(n);
  bool implied = false;
  for (auto _ : state) {
    Result<bool> result =
        ChaseImplies(c.scheme, c.fds, c.inds, Dependency(c.sigma));
    if (result.ok()) implied = *result;
    benchmark::DoNotOptimize(result);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["derives_sigma"] = implied ? 1 : 0;  // always 1 (Lemma 7.2)
}

BENCHMARK(BM_ChaseOnSection7)->DenseRange(1, 6);

// On instances the arsenal CAN handle (Propositions 4.1-4.3 shaped), it is
// far cheaper than the chase — the trade the paper's Section 8 hints at
// when it recommends restricted fragments.
void BM_ArsenalOnProposition41(benchmark::State& state) {
  SchemePtr scheme = MakeScheme({{"R", {"X", "Y"}}, {"S", {"T", "U"}}});
  std::vector<Dependency> sigma = {
      Dependency(MakeInd(*scheme, "R", {"X", "Y"}, "S", {"T", "U"})),
      Dependency(MakeFd(*scheme, "S", {"T"}, {"U"}))};
  Dependency target(MakeFd(*scheme, "R", {"X"}, {"Y"}));
  bool derived = false;
  for (auto _ : state) {
    MixedDerivation engine(scheme, sigma);
    if (engine.Saturate().ok()) derived = engine.Derives(target);
    benchmark::DoNotOptimize(engine);
  }
  state.counters["derives"] = derived ? 1 : 0;  // 1
}

BENCHMARK(BM_ArsenalOnProposition41);

void BM_ChaseOnProposition41(benchmark::State& state) {
  SchemePtr scheme = MakeScheme({{"R", {"X", "Y"}}, {"S", {"T", "U"}}});
  std::vector<Fd> fds = {MakeFd(*scheme, "S", {"T"}, {"U"})};
  std::vector<Ind> inds = {
      MakeInd(*scheme, "R", {"X", "Y"}, "S", {"T", "U"})};
  Dependency target(MakeFd(*scheme, "R", {"X"}, {"Y"}));
  bool implied = false;
  for (auto _ : state) {
    Result<bool> result = ChaseImplies(scheme, fds, inds, target);
    if (result.ok()) implied = *result;
    benchmark::DoNotOptimize(result);
  }
  state.counters["derives"] = implied ? 1 : 0;  // 1
}

BENCHMARK(BM_ChaseOnProposition41);

/// Arsenal-vs-chase pair on the Section 7 family (the ablation's
/// headline): steps = interaction-rule firings for the arsenal, chase
/// steps for the chase.
void EmitJsonReport(bool smoke) {
  BenchReporter reporter("derivation");
  for (std::size_t n : {2u, 4u}) {
    if (smoke && n != 2) continue;
    Section7Construction c = MakeSection7(n);
    std::uint64_t arsenal_steps = 0;
    std::uint64_t arsenal_wall = MedianWallNs(smoke ? 1 : 5, [&] {
      MixedDerivation engine(c.scheme, c.SigmaDeps());
      CCFP_CHECK(engine.Saturate().ok());
      CCFP_CHECK(!engine.Derives(Dependency(c.sigma)));  // Theorem 7.1
      arsenal_steps = engine.trace().size();
    });
    std::uint64_t chase_steps = 0;
    std::uint64_t chase_wall = MedianWallNs(smoke ? 1 : 5, [&] {
      Result<bool> implied =
          ChaseImplies(c.scheme, c.fds, c.inds, Dependency(c.sigma));
      CCFP_CHECK(implied.ok() && *implied);  // Lemma 7.2
      chase_steps = 1;
    });
    reporter.Add("arsenal_section7", n, arsenal_wall, arsenal_steps);
    reporter.Add("chase_section7", n, chase_wall, chase_steps);
    std::fprintf(stderr,
                 "section7 n=%zu: arsenal %.2f ms (%llu firings, never "
                 "derives), chase %.2f ms (derives)\n",
                 n, arsenal_wall / 1e6,
                 static_cast<unsigned long long>(arsenal_steps),
                 chase_wall / 1e6);
  }
  reporter.WriteFile();
}

}  // namespace
}  // namespace ccfp

int main(int argc, char** argv) {
  return ccfp::RunBenchMain(argc, argv,
                            [](bool smoke) { ccfp::EmitJsonReport(smoke); });
}
