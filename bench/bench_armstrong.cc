// E13: the Armstrong-database builder (Fagin-Vardi substrate): build +
// verify exactness over growing universes. BENCH_armstrong.json records a
// legacy-vs-workspace entry pair per workload: the legacy engine re-interns
// the seed database every repair round, the workspace engine appends into
// one persistent InternedWorkspace and resumes its chase.
#include <cstdio>

#include <benchmark/benchmark.h>

#include "armstrong/builder.h"
#include "axiom/sentence.h"
#include "bench/bench_main.h"
#include "bench/reporter.h"
#include "util/check.h"
#include "util/strings.h"

namespace ccfp {
namespace {

void BM_BuildFdArmstrong(benchmark::State& state) {
  const std::size_t arity = static_cast<std::size_t>(state.range(0));
  std::vector<std::string> attrs;
  for (std::size_t i = 0; i < arity; ++i) attrs.push_back(StrCat("A", i));
  SchemePtr scheme = MakeScheme({{"R", attrs}});
  UniverseOptions options;
  options.max_fd_lhs = 1;
  options.include_inds = false;
  std::vector<Dependency> universe = EnumerateUniverse(*scheme, options);
  std::vector<Fd> fds = {Fd{0, {0}, {1}}};
  ChaseOracle oracle(scheme);
  std::size_t tuples = 0;
  int repairs = 0;
  for (auto _ : state) {
    Result<ArmstrongReport> report =
        BuildArmstrongDatabase(scheme, fds, {}, universe, oracle);
    if (report.ok()) {
      tuples = report->db.TotalTuples();
      repairs = report->repair_rounds;
    }
    benchmark::DoNotOptimize(report);
  }
  state.counters["arity"] = static_cast<double>(arity);
  state.counters["universe"] = static_cast<double>(universe.size());
  state.counters["tuples"] = static_cast<double>(tuples);
  state.counters["repairs"] = static_cast<double>(repairs);
}

BENCHMARK(BM_BuildFdArmstrong)->DenseRange(2, 6);

void BM_BuildMixedArmstrong(benchmark::State& state) {
  const std::size_t relations = static_cast<std::size_t>(state.range(0));
  std::vector<std::pair<std::string, std::vector<std::string>>> rels;
  for (std::size_t r = 0; r < relations; ++r) {
    rels.emplace_back(StrCat("R", r), std::vector<std::string>{"A", "B"});
  }
  SchemePtr scheme = MakeScheme(rels);
  UniverseOptions options;
  options.max_fd_lhs = 1;
  options.max_ind_width = 1;
  options.include_rds = true;
  std::vector<Dependency> universe = EnumerateUniverse(*scheme, options);
  // A chain of INDs plus one FD per relation (acyclic: chase terminates).
  std::vector<Fd> fds;
  std::vector<Ind> inds;
  for (std::size_t r = 0; r < relations; ++r) {
    fds.push_back(Fd{static_cast<RelId>(r), {0}, {1}});
    if (r + 1 < relations) {
      inds.push_back(
          Ind{static_cast<RelId>(r), {1}, static_cast<RelId>(r + 1), {0}});
    }
  }
  ChaseOracle oracle(scheme);
  std::size_t tuples = 0;
  for (auto _ : state) {
    Result<ArmstrongReport> report =
        BuildArmstrongDatabase(scheme, fds, inds, universe, oracle);
    if (report.ok()) tuples = report->db.TotalTuples();
    benchmark::DoNotOptimize(report);
  }
  state.counters["relations"] = static_cast<double>(relations);
  state.counters["universe"] = static_cast<double>(universe.size());
  state.counters["tuples"] = static_cast<double>(tuples);
}

BENCHMARK(BM_BuildMixedArmstrong)->DenseRange(2, 5);

/// The multi-round verify-dominated workload: an ArmstrongSession whose
/// sentence universe grows one member per Extend — the k-ary-hierarchy /
/// interactive-schema-design shape, where after every extension the
/// session re-establishes exactness over the entire universe so far.
/// Emits a fullsweep/incremental entry pair; the per-round re-sweeps are
/// exactly what ArmstrongVerifyEngine::kIncremental retires (watchers
/// answer old members from counters, only the delta is re-processed).
void EmitSessionReport(BenchReporter& reporter, bool smoke) {
  const std::size_t arity = 10;
  std::vector<std::string> attrs;
  for (std::size_t i = 0; i < arity; ++i) attrs.push_back(StrCat("A", i));
  SchemePtr scheme = MakeScheme({{"R", attrs}});
  UniverseOptions options;
  options.max_fd_lhs = 2;
  options.include_inds = false;
  std::vector<Dependency> universe = EnumerateUniverse(*scheme, options);
  std::vector<Fd> fds = {Fd{0, {0}, {1}}, Fd{0, {1}, {2}}};
  FdOracle oracle(scheme);

  std::uint64_t wall[2] = {0, 0};
  for (int engine = 0; engine < 2; ++engine) {
    ArmstrongBuildOptions build;
    build.verify = engine == 1 ? ArmstrongVerifyEngine::kIncremental
                               : ArmstrongVerifyEngine::kFullSweep;
    wall[engine] = MedianWallNs(smoke ? 1 : 3, [&] {
      ArmstrongSession session(scheme, fds, {}, &oracle, build);
      for (const Dependency& tau : universe) {
        Status st = session.Extend({tau});
        CCFP_CHECK(st.ok());
      }
    });
  }
  reporter.Add("session_fd_arity10_fullsweep", universe.size(), wall[0],
               universe.size());
  reporter.Add("session_fd_arity10_incremental", universe.size(), wall[1],
               universe.size());
  std::fprintf(stderr,
               "session_fd_arity10 (universe %zu, one member per round): "
               "fullsweep %.2f ms, incremental %.2f ms, speedup %.2fx\n",
               universe.size(), wall[0] / 1e6, wall[1] / 1e6,
               static_cast<double>(wall[0]) /
                   static_cast<double>(wall[1] == 0 ? 1 : wall[1]));
}

/// Times both Armstrong engines on the two recorded workloads and emits
/// one legacy/workspace entry pair each (steps = universe size decided and
/// verified per build).
void EmitJsonReport(bool smoke) {
  BenchReporter reporter("armstrong");
  EmitSessionReport(reporter, smoke);
  struct Workload {
    const char* name;
    std::size_t n;
    SchemePtr scheme;
    std::vector<Fd> fds;
    std::vector<Ind> inds;
    std::vector<Dependency> universe;
  };
  std::vector<Workload> workloads;

  {
    Workload w;
    w.name = "build_fd_arity10";
    w.n = 10;
    std::vector<std::string> attrs;
    for (std::size_t i = 0; i < w.n; ++i) attrs.push_back(StrCat("A", i));
    w.scheme = MakeScheme({{"R", attrs}});
    UniverseOptions options;
    options.max_fd_lhs = 2;
    options.include_inds = false;
    w.universe = EnumerateUniverse(*w.scheme, options);
    w.fds = {Fd{0, {0}, {1}}, Fd{0, {1}, {2}}};
    workloads.push_back(std::move(w));
  }
  {
    Workload w;
    w.name = "build_mixed_rels5";
    w.n = 5;
    std::vector<std::pair<std::string, std::vector<std::string>>> rels;
    for (std::size_t r = 0; r < w.n; ++r) {
      rels.emplace_back(StrCat("R", r), std::vector<std::string>{"A", "B"});
    }
    w.scheme = MakeScheme(rels);
    UniverseOptions options;
    options.max_fd_lhs = 1;
    options.max_ind_width = 1;
    options.include_rds = true;
    w.universe = EnumerateUniverse(*w.scheme, options);
    for (std::size_t r = 0; r < w.n; ++r) {
      w.fds.push_back(Fd{static_cast<RelId>(r), {0}, {1}});
      if (r + 1 < w.n) {
        w.inds.push_back(
            Ind{static_cast<RelId>(r), {1}, static_cast<RelId>(r + 1), {0}});
      }
    }
    workloads.push_back(std::move(w));
  }

  if (smoke) workloads.erase(workloads.begin() + 1, workloads.end());
  for (const Workload& w : workloads) {
    // The FD-only workload uses the closure oracle so the measured cost is
    // the build -> chase -> verify loop itself, not universe
    // classification; the mixed workload needs the chase oracle.
    FdOracle fd_oracle(w.scheme);
    ChaseOracle chase_oracle(w.scheme);
    const ImplicationOracle& oracle =
        w.inds.empty() ? static_cast<const ImplicationOracle&>(fd_oracle)
                       : chase_oracle;
    std::uint64_t wall[2] = {0, 0};
    for (int engine = 0; engine < 2; ++engine) {
      ArmstrongBuildOptions options;
      options.engine = engine == 1 ? ArmstrongEngine::kWorkspace
                                   : ArmstrongEngine::kLegacy;
      wall[engine] = MedianWallNs(smoke ? 1 : 5, [&] {
        Result<ArmstrongReport> report = BuildArmstrongDatabase(
            w.scheme, w.fds, w.inds, w.universe, oracle, options);
        CCFP_CHECK(report.ok());
      });
    }
    reporter.Add(StrCat(w.name, "_legacy"), w.n, wall[0], w.universe.size());
    reporter.Add(StrCat(w.name, "_workspace"), w.n, wall[1],
                 w.universe.size());
    std::fprintf(stderr,
                 "%s (universe %zu): legacy %.2f ms, workspace %.2f ms, "
                 "speedup %.2fx\n",
                 w.name, w.universe.size(), wall[0] / 1e6, wall[1] / 1e6,
                 static_cast<double>(wall[0]) /
                     static_cast<double>(wall[1] == 0 ? 1 : wall[1]));
  }
  reporter.WriteFile();
}

}  // namespace
}  // namespace ccfp

int main(int argc, char** argv) {
  return ccfp::RunBenchMain(argc, argv,
                            [](bool smoke) { ccfp::EmitJsonReport(smoke); });
}
