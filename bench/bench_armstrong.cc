// E13: the Armstrong-database builder (Fagin-Vardi substrate): build +
// verify exactness over growing universes.
#include <benchmark/benchmark.h>

#include "armstrong/builder.h"
#include "axiom/sentence.h"
#include "util/strings.h"

namespace ccfp {
namespace {

void BM_BuildFdArmstrong(benchmark::State& state) {
  const std::size_t arity = static_cast<std::size_t>(state.range(0));
  std::vector<std::string> attrs;
  for (std::size_t i = 0; i < arity; ++i) attrs.push_back(StrCat("A", i));
  SchemePtr scheme = MakeScheme({{"R", attrs}});
  UniverseOptions options;
  options.max_fd_lhs = 1;
  options.include_inds = false;
  std::vector<Dependency> universe = EnumerateUniverse(*scheme, options);
  std::vector<Fd> fds = {Fd{0, {0}, {1}}};
  ChaseOracle oracle(scheme);
  std::size_t tuples = 0;
  int repairs = 0;
  for (auto _ : state) {
    Result<ArmstrongReport> report =
        BuildArmstrongDatabase(scheme, fds, {}, universe, oracle);
    if (report.ok()) {
      tuples = report->db.TotalTuples();
      repairs = report->repair_rounds;
    }
    benchmark::DoNotOptimize(report);
  }
  state.counters["arity"] = static_cast<double>(arity);
  state.counters["universe"] = static_cast<double>(universe.size());
  state.counters["tuples"] = static_cast<double>(tuples);
  state.counters["repairs"] = static_cast<double>(repairs);
}

BENCHMARK(BM_BuildFdArmstrong)->DenseRange(2, 6);

void BM_BuildMixedArmstrong(benchmark::State& state) {
  const std::size_t relations = static_cast<std::size_t>(state.range(0));
  std::vector<std::pair<std::string, std::vector<std::string>>> rels;
  for (std::size_t r = 0; r < relations; ++r) {
    rels.emplace_back(StrCat("R", r), std::vector<std::string>{"A", "B"});
  }
  SchemePtr scheme = MakeScheme(rels);
  UniverseOptions options;
  options.max_fd_lhs = 1;
  options.max_ind_width = 1;
  options.include_rds = true;
  std::vector<Dependency> universe = EnumerateUniverse(*scheme, options);
  // A chain of INDs plus one FD per relation (acyclic: chase terminates).
  std::vector<Fd> fds;
  std::vector<Ind> inds;
  for (std::size_t r = 0; r < relations; ++r) {
    fds.push_back(Fd{static_cast<RelId>(r), {0}, {1}});
    if (r + 1 < relations) {
      inds.push_back(
          Ind{static_cast<RelId>(r), {1}, static_cast<RelId>(r + 1), {0}});
    }
  }
  ChaseOracle oracle(scheme);
  std::size_t tuples = 0;
  for (auto _ : state) {
    Result<ArmstrongReport> report =
        BuildArmstrongDatabase(scheme, fds, inds, universe, oracle);
    if (report.ok()) tuples = report->db.TotalTuples();
    benchmark::DoNotOptimize(report);
  }
  state.counters["relations"] = static_cast<double>(relations);
  state.counters["universe"] = static_cast<double>(universe.size());
  state.counters["tuples"] = static_cast<double>(tuples);
}

BENCHMARK(BM_BuildMixedArmstrong)->DenseRange(2, 5);

}  // namespace
}  // namespace ccfp

BENCHMARK_MAIN();
