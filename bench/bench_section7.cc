// E8: the Theorem 7.1 construction — chase re-derivation of Lemma 7.2 and
// construction of the Lemma 7.9 witness databases, as n grows.
#include <benchmark/benchmark.h>

#include "chase/chase.h"
#include "constructions/section7.h"
#include "core/satisfies.h"

namespace ccfp {
namespace {

void BM_Lemma72Derivation(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Section7Construction c = MakeSection7(n);
  bool implied = false;
  for (auto _ : state) {
    Result<bool> result =
        ChaseImplies(c.scheme, c.fds, c.inds, Dependency(c.sigma));
    if (result.ok()) implied = *result;
    benchmark::DoNotOptimize(result);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["sigma_implied"] = implied ? 1 : 0;  // Lemma 7.2: 1
}

BENCHMARK(BM_Lemma72Derivation)->RangeMultiplier(2)->Range(1, 16);

void BM_Lemma79Witness(benchmark::State& state) {
  // Chase-construct the witness for (phi - sigma) u (lambda - beta_0) and
  // confirm it breaks sigma while satisfying the premise families.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Section7Construction c = MakeSection7(n);
  std::vector<Fd> phi_minus_sigma;
  for (const Fd& fd : c.phi) {
    if (!(fd == c.sigma)) phi_minus_sigma.push_back(fd);
  }
  Ind beta0 = c.beta(0);
  std::vector<Ind> lambda_minus_beta;
  for (const Ind& ind : c.inds) {
    if (!(ind == beta0)) lambda_minus_beta.push_back(ind);
  }
  Chase chase(c.scheme, phi_minus_sigma, lambda_minus_beta);
  bool witness_ok = false;
  for (auto _ : state) {
    Database seed(c.scheme);
    std::uint64_t next_null = 1;
    Tuple t1(3), t2(3);
    for (AttrId a = 0; a < 3; ++a) {
      t1[a] = Value::Null(next_null++);
      t2[a] = (a == 0) ? t1[a] : Value::Null(next_null++);
    }
    seed.Insert(c.f, std::move(t1));
    seed.Insert(c.f, std::move(t2));
    Result<ChaseResult> result = chase.Run(std::move(seed));
    if (result.ok()) {
      witness_ok = !Satisfies(result->db, c.sigma);
    }
    benchmark::DoNotOptimize(result);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["violates_sigma"] = witness_ok ? 1 : 0;  // Lemma 7.9: 1
}

BENCHMARK(BM_Lemma79Witness)->RangeMultiplier(2)->Range(1, 16);

}  // namespace
}  // namespace ccfp

BENCHMARK_MAIN();
