// E8: the Theorem 7.1 construction — chase re-derivation of Lemma 7.2 and
// construction of the Lemma 7.9 witness databases, as n grows. The
// universe sweep over a chased witness is timed under both model-checking
// engines and emitted to BENCH_section7.json.
#include <cstdio>
#include <string_view>

#include <benchmark/benchmark.h>

#include "bench/bench_main.h"
#include "bench/reporter.h"
#include "chase/chase.h"
#include "constructions/section7.h"
#include "core/satisfies.h"
#include "util/check.h"

namespace ccfp {
namespace {

void BM_Lemma72Derivation(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Section7Construction c = MakeSection7(n);
  bool implied = false;
  for (auto _ : state) {
    Result<bool> result =
        ChaseImplies(c.scheme, c.fds, c.inds, Dependency(c.sigma));
    if (result.ok()) implied = *result;
    benchmark::DoNotOptimize(result);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["sigma_implied"] = implied ? 1 : 0;  // Lemma 7.2: 1
}

BENCHMARK(BM_Lemma72Derivation)->RangeMultiplier(2)->Range(1, 16);

void BM_Lemma79Witness(benchmark::State& state) {
  // Chase-construct the witness for (phi - sigma) u (lambda - beta_0) and
  // confirm it breaks sigma while satisfying the premise families.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Section7Construction c = MakeSection7(n);
  std::vector<Fd> phi_minus_sigma;
  for (const Fd& fd : c.phi) {
    if (!(fd == c.sigma)) phi_minus_sigma.push_back(fd);
  }
  Ind beta0 = c.beta(0);
  std::vector<Ind> lambda_minus_beta;
  for (const Ind& ind : c.inds) {
    if (!(ind == beta0)) lambda_minus_beta.push_back(ind);
  }
  Chase chase(c.scheme, phi_minus_sigma, lambda_minus_beta);
  bool witness_ok = false;
  for (auto _ : state) {
    Database seed(c.scheme);
    std::uint64_t next_null = 1;
    Tuple t1(3), t2(3);
    for (AttrId a = 0; a < 3; ++a) {
      t1[a] = Value::Null(next_null++);
      t2[a] = (a == 0) ? t1[a] : Value::Null(next_null++);
    }
    seed.Insert(c.f, std::move(t1));
    seed.Insert(c.f, std::move(t2));
    Result<ChaseResult> result = chase.Run(std::move(seed));
    if (result.ok()) {
      witness_ok = !Satisfies(result->db, c.sigma);
    }
    benchmark::DoNotOptimize(result);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["violates_sigma"] = witness_ok ? 1 : 0;  // Lemma 7.9: 1
}

BENCHMARK(BM_Lemma79Witness)->RangeMultiplier(2)->Range(1, 16);

/// Chases the Section 7 universal model and times SatisfiedSubset over the
/// bounded sentence universe under both engines; BENCH_section7.json gets
/// one legacy/interned entry pair per n (steps = universe size).
void EmitJsonReport(bool smoke) {
  BenchReporter reporter("section7");
  for (std::size_t n : {4, 8}) {
    if (smoke && n != 4) continue;
    Section7Construction c = MakeSection7(n);
    std::vector<Dependency> universe = Section7Universe(c);
    Chase chase(c.scheme, c.fds, c.inds);
    Database seed(c.scheme);
    std::size_t arity = c.scheme->relation(c.f).arity();
    Tuple t(arity);
    for (AttrId a = 0; a < arity; ++a) t[a] = Value::Null(a + 1);
    seed.Insert(c.f, std::move(t));
    Result<ChaseResult> chased = chase.Run(std::move(seed));
    CCFP_CHECK(chased.ok());
    std::uint64_t wall[2] = {0, 0};
    std::size_t satisfied[2] = {0, 0};
    for (int engine = 0; engine < 2; ++engine) {
      SatisfiesOptions options;
      options.engine = engine == 1 ? SatisfiesEngine::kInterned
                                   : SatisfiesEngine::kLegacy;
      wall[engine] = MedianWallNs(smoke ? 1 : 5, [&] {
        satisfied[engine] =
            SatisfiedSubset(chased->db, universe, options).size();
      });
    }
    CCFP_CHECK(satisfied[0] == satisfied[1]);
    reporter.Add("universe_sweep_legacy", n, wall[0], universe.size());
    reporter.Add("universe_sweep_interned", n, wall[1], universe.size());
    std::fprintf(stderr,
                 "universe_sweep n=%zu (%zu sentences over %zu tuples): "
                 "legacy %.2f ms, interned %.2f ms, speedup %.1fx\n",
                 n, universe.size(), chased->db.TotalTuples(),
                 wall[0] / 1e6, wall[1] / 1e6,
                 static_cast<double>(wall[0]) /
                     static_cast<double>(wall[1] == 0 ? 1 : wall[1]));
  }
  reporter.WriteFile();
}

}  // namespace
}  // namespace ccfp

int main(int argc, char** argv) {
  return ccfp::RunBenchMain(argc, argv,
                            [](bool smoke) { ccfp::EmitJsonReport(smoke); });
}
