// E2: the Section 3 superpolynomial family. For gamma of maximal order
// f(m) (Landau's function) the instance sigma(gamma) |= sigma(gamma^{-1})
// forces the decision procedure through exactly f(m) - 1 expression steps:
// log f(m) ~ sqrt(m log m), so the step count is superpolynomial in m even
// though the input is a single IND.
#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench/bench_main.h"
#include "bench/reporter.h"
#include "constructions/permutation_family.h"
#include "ind/implication.h"
#include "util/check.h"
#include "util/landau.h"

namespace ccfp {
namespace {

void BM_LandauInstance(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  LandauInstance instance = MakeLandauInstance(m);
  IndImplication engine(instance.family.scheme, {instance.premise});
  IndDecisionOptions options;
  options.max_expressions = 1u << 26;
  std::uint64_t visited = 0;
  bool implied = false;
  for (auto _ : state) {
    Result<IndDecision> decision = engine.Decide(instance.target, options);
    if (decision.ok()) {
      visited = decision->expressions_visited;
      implied = decision->implied;
    }
    benchmark::DoNotOptimize(decision);
  }
  state.counters["m"] = static_cast<double>(m);
  state.counters["f(m)"] =
      static_cast<double>(static_cast<std::uint64_t>(LandauF(m)));
  state.counters["visited"] = static_cast<double>(visited);
  state.counters["implied"] = implied ? 1 : 0;
}

// f(m): 4, 6, 15, 30, 140, 210, 420, 840, 4620, 55440 (m = 4..48) — the
// paper's "superpolynomial number of steps".
BENCHMARK(BM_LandauInstance)
    ->Arg(4)
    ->Arg(5)
    ->Arg(8)
    ->Arg(10)
    ->Arg(16)
    ->Arg(17)
    ->Arg(19)
    ->Arg(24)
    ->Arg(30)
    ->Arg(48);

// Contrast: the transposition generators imply *every* IND over R (the
// paper's blow-up example for the naive closure) — but any single target is
// still decided by BFS without enumerating all m! of them.
void BM_TranspositionGenerators(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  PermutationFamily family = MakePermutationFamily(m);
  std::vector<Ind> sigma = family.TranspositionInds();
  // Target: the full reversal permutation.
  std::vector<std::uint32_t> rev(m);
  for (std::size_t i = 0; i < m; ++i) {
    rev[i] = static_cast<std::uint32_t>(m - 1 - i);
  }
  Ind target = family.SigmaOf(Permutation::Create(rev).value());
  IndImplication engine(family.scheme, sigma);
  std::uint64_t visited = 0;
  for (auto _ : state) {
    Result<IndDecision> decision = engine.Decide(target);
    if (decision.ok()) visited = decision->expressions_visited;
    benchmark::DoNotOptimize(decision);
  }
  state.counters["m"] = static_cast<double>(m);
  state.counters["visited"] = static_cast<double>(visited);
}

BENCHMARK(BM_TranspositionGenerators)->DenseRange(3, 7);

/// The superpolynomial Landau instance and the transposition-generator
/// contrast (steps = BFS expressions visited — the paper's "number of
/// expression steps").
void EmitJsonReport(bool smoke) {
  BenchReporter reporter("permutation_family");
  for (std::size_t m : {10u, 16u}) {
    if (smoke && m != 10) continue;
    LandauInstance instance = MakeLandauInstance(m);
    IndImplication engine(instance.family.scheme, {instance.premise});
    IndDecisionOptions options;
    options.max_expressions = 1u << 26;
    std::uint64_t visited = 0;
    std::uint64_t wall = MedianWallNs(smoke ? 1 : 5, [&] {
      Result<IndDecision> decision = engine.Decide(instance.target, options);
      CCFP_CHECK(decision.ok() && decision->implied);
      visited = decision->expressions_visited;
    });
    reporter.Add("landau_instance", m, wall, visited);
  }
  {
    const std::size_t m = 6;
    PermutationFamily family = MakePermutationFamily(m);
    std::vector<Ind> sigma = family.TranspositionInds();
    std::vector<std::uint32_t> rev(m);
    for (std::size_t i = 0; i < m; ++i) {
      rev[i] = static_cast<std::uint32_t>(m - 1 - i);
    }
    Ind target = family.SigmaOf(Permutation::Create(rev).value());
    IndImplication engine(family.scheme, sigma);
    std::uint64_t visited = 0;
    std::uint64_t wall = MedianWallNs(smoke ? 1 : 5, [&] {
      Result<IndDecision> decision = engine.Decide(target);
      CCFP_CHECK(decision.ok());
      visited = decision->expressions_visited;
    });
    reporter.Add("transposition_generators", m, wall, visited);
  }
  reporter.WriteFile();
  std::fprintf(stderr, "BENCH_permutation_family.json written\n");
}

}  // namespace
}  // namespace ccfp

int main(int argc, char** argv) {
  return ccfp::RunBenchMain(argc, argv,
                            [](bool smoke) { ccfp::EmitJsonReport(smoke); });
}
