#ifndef CCFP_BENCH_WORKLOADS_H_
#define CCFP_BENCH_WORKLOADS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "chase/chase.h"
#include "core/database.h"
#include "util/strings.h"

namespace ccfp {

/// The deep-IND-cascade workload shared by bench_chase and the chase perf
/// smoke test, so the guard and the bench always measure the same shape.
///
/// R_0 -> R_1 -> ... -> R_levels with the INDs declared in *reverse*
/// order: a restart-loop engine advances one level per outer pass (and so
/// pays O(levels^2 * width) total work) while the delta-driven engine
/// pays O(levels * width). FDs A -> B on every level keep the equality
/// machinery engaged.
struct CascadeInstance {
  SchemePtr scheme;
  std::vector<Fd> fds;
  std::vector<Ind> inds;
};

inline CascadeInstance MakeDeepCascade(std::size_t levels) {
  std::vector<std::pair<std::string, std::vector<std::string>>> rels;
  for (std::size_t i = 0; i <= levels; ++i) {
    rels.emplace_back(StrCat("R", i),
                      std::vector<std::string>{"A", "B", "C"});
  }
  CascadeInstance instance;
  instance.scheme = MakeScheme(rels);
  for (std::size_t i = 0; i <= levels; ++i) {
    instance.fds.push_back(
        MakeFd(*instance.scheme, StrCat("R", i), {"A"}, {"B"}));
  }
  for (std::size_t i = levels; i >= 1; --i) {
    instance.inds.push_back(MakeInd(*instance.scheme, StrCat("R", i - 1),
                                    {"A", "B"}, StrCat("R", i), {"A", "B"}));
  }
  return instance;
}

/// `width` distinct all-null tuples in R_0, plus one pair sharing its
/// A-null so the FD layer actually merges something. After the chase, R_0
/// holds width + 2 tuples (the pair still differs on C) and every deeper
/// level holds the width + 1 distinct [A, B] projections.
inline Database CascadeSeed(const CascadeInstance& instance,
                            std::size_t width) {
  Database db(instance.scheme);
  std::uint64_t next_null = 1;
  for (std::size_t i = 0; i < width; ++i) {
    Tuple t;
    for (int a = 0; a < 3; ++a) t.push_back(Value::Null(next_null++));
    db.Insert(0, std::move(t));
  }
  Value shared = Value::Null(next_null++);
  db.Insert(0,
            {shared, Value::Null(next_null++), Value::Null(next_null++)});
  db.Insert(0,
            {shared, Value::Null(next_null++), Value::Null(next_null++)});
  return db;
}

}  // namespace ccfp

#endif  // CCFP_BENCH_WORKLOADS_H_
