// E10: the FD substrate — attribute-set closure is (near-)linear in the
// total size of the FD set, the paper's Section 3 contrast with the
// PSPACE-complete IND problem ("The FD decision procedure can be
// implemented ... to run in linear time"). Closure timings are emitted to
// BENCH_fd_closure.json (entries: n = attribute count, steps = FD count).
#include <string_view>

#include <benchmark/benchmark.h>

#include "bench/bench_main.h"
#include "bench/reporter.h"
#include "core/schema.h"
#include "fd/closure.h"
#include "util/rng.h"
#include "util/strings.h"

namespace ccfp {
namespace {

SchemePtr WideScheme(std::size_t attrs) {
  std::vector<std::string> names;
  names.reserve(attrs);
  for (std::size_t i = 0; i < attrs; ++i) names.push_back(StrCat("A", i));
  return MakeScheme({{"R", names}});
}

std::vector<Fd> RandomFds(std::size_t attrs, std::size_t count,
                          std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<Fd> fds;
  fds.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Fd fd;
    fd.rel = 0;
    std::size_t lhs_size = 1 + rng.Below(3);
    std::vector<bool> used(attrs, false);
    for (std::size_t j = 0; j < lhs_size; ++j) {
      AttrId a = static_cast<AttrId>(rng.Below(attrs));
      if (!used[a]) {
        used[a] = true;
        fd.lhs.push_back(a);
      }
    }
    AttrId b = static_cast<AttrId>(rng.Below(attrs));
    if (!used[b]) fd.rhs.push_back(b);
    if (fd.rhs.empty()) fd.rhs.push_back(used[0] ? 0 : 1);
    fds.push_back(std::move(fd));
  }
  return fds;
}

// Sweep: number of attributes (FD count scales with it).
void BM_FdClosure(benchmark::State& state) {
  const std::size_t attrs = static_cast<std::size_t>(state.range(0));
  const std::size_t fd_count = attrs * 2;
  SchemePtr scheme = WideScheme(attrs);
  std::vector<Fd> fds = RandomFds(attrs, fd_count, 42);
  FdClosure closure(*scheme, 0, fds);
  std::vector<AttrId> start = {0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(closure.Closure(start));
  }
  state.counters["attrs"] = static_cast<double>(attrs);
  state.counters["fds"] = static_cast<double>(fd_count);
  state.SetComplexityN(static_cast<std::int64_t>(attrs));
}

BENCHMARK(BM_FdClosure)->RangeMultiplier(4)->Range(16, 4096)->Complexity();

// Engine construction cost (index building).
void BM_FdClosureConstruction(benchmark::State& state) {
  const std::size_t attrs = static_cast<std::size_t>(state.range(0));
  SchemePtr scheme = WideScheme(attrs);
  std::vector<Fd> fds = RandomFds(attrs, attrs * 2, 42);
  for (auto _ : state) {
    FdClosure closure(*scheme, 0, fds);
    benchmark::DoNotOptimize(&closure);
  }
  state.SetComplexityN(static_cast<std::int64_t>(attrs));
}

BENCHMARK(BM_FdClosureConstruction)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Complexity();

/// Writes BENCH_fd_closure.json: per attribute count, the median closure
/// query time (index prebuilt) and the construction+query time.
void EmitJsonReport(bool smoke) {
  BenchReporter reporter("fd_closure");
  for (std::size_t attrs : {64, 256, 1024, 4096}) {
    if (smoke && attrs != 64) continue;
    const std::size_t fd_count = attrs * 2;
    SchemePtr scheme = WideScheme(attrs);
    std::vector<Fd> fds = RandomFds(attrs, fd_count, 42);
    FdClosure closure(*scheme, 0, fds);
    std::vector<AttrId> start = {0};
    std::uint64_t query_ns = MedianWallNs(smoke ? 1 : 9, [&] {
      benchmark::DoNotOptimize(closure.Closure(start));
    });
    std::uint64_t build_ns = MedianWallNs(smoke ? 1 : 5, [&] {
      FdClosure fresh(*scheme, 0, fds);
      benchmark::DoNotOptimize(fresh.Closure(start));
    });
    reporter.Add("closure_query", attrs, query_ns, fd_count);
    reporter.Add("closure_build_and_query", attrs, build_ns, fd_count);
  }
  reporter.WriteFile();
}

}  // namespace
}  // namespace ccfp

int main(int argc, char** argv) {
  return ccfp::RunBenchMain(argc, argv,
                            [](bool smoke) { ccfp::EmitJsonReport(smoke); });
}
