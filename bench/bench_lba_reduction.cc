// E4: the Theorem 3.3 PSPACE-hardness reduction — reduction size and
// end-to-end decision cost as the tape length n grows, cross-checked
// against direct configuration-space search.
#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench/bench_main.h"
#include "bench/reporter.h"
#include "ind/implication.h"
#include "lba/lba.h"
#include "lba/reduction.h"
#include "util/check.h"

namespace ccfp {
namespace {

LbaMachine MakeEvenAsMachine(std::uint32_t* a_out) {
  LbaMachine machine;
  std::uint32_t s0 = machine.AddState("s0");
  std::uint32_t s1 = machine.AddState("s1");
  std::uint32_t r = machine.AddState("r");
  std::uint32_t h = machine.AddState("h");
  machine.SetStartState(s0);
  machine.SetHaltState(h);
  std::uint32_t a = machine.AddTapeSymbol("a");
  std::uint32_t blank = machine.blank();
  machine.AddTransition(s0, a, s1, blank, HeadMove::kRight);
  machine.AddTransition(s1, a, s0, blank, HeadMove::kRight);
  machine.AddTransition(s1, a, r, blank, HeadMove::kLeft);
  machine.AddTransition(r, blank, r, blank, HeadMove::kLeft);
  machine.AddTransition(r, blank, h, blank, HeadMove::kStay);
  *a_out = a;
  return machine;
}

void BM_BuildReduction(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::uint32_t a = 0;
  LbaMachine machine = MakeEvenAsMachine(&a);
  std::vector<std::uint32_t> input(n, a);
  std::size_t attrs = 0, inds = 0;
  for (auto _ : state) {
    Result<LbaToIndReduction> red = BuildLbaToIndReduction(machine, input);
    if (red.ok()) {
      attrs = red->scheme->relation(0).arity();
      inds = red->sigma.size();
    }
    benchmark::DoNotOptimize(red);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["attrs"] = static_cast<double>(attrs);
  state.counters["inds"] = static_cast<double>(inds);
}

BENCHMARK(BM_BuildReduction)->DenseRange(2, 10, 2);

void BM_DecideReducedInstance(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::uint32_t a = 0;
  LbaMachine machine = MakeEvenAsMachine(&a);
  std::vector<std::uint32_t> input(n, a);
  Result<LbaToIndReduction> red = BuildLbaToIndReduction(machine, input);
  if (!red.ok()) {
    state.SkipWithError("reduction failed");
    return;
  }
  IndImplication engine(red->scheme, red->sigma);
  bool implied = false;
  for (auto _ : state) {
    Result<IndDecision> decision = engine.Decide(red->target);
    if (decision.ok()) implied = decision->implied;
    benchmark::DoNotOptimize(decision);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["accepts"] = implied ? 1 : 0;  // accepts iff n even
}

BENCHMARK(BM_DecideReducedInstance)->DenseRange(2, 9);

void BM_DirectLbaSearch(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::uint32_t a = 0;
  LbaMachine machine = MakeEvenAsMachine(&a);
  std::vector<std::uint32_t> input(n, a);
  bool accepts = false;
  for (auto _ : state) {
    Result<LbaRunResult> result = LbaAccepts(machine, input);
    if (result.ok()) accepts = result->accepts;
    benchmark::DoNotOptimize(result);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["accepts"] = accepts ? 1 : 0;
}

BENCHMARK(BM_DirectLbaSearch)->DenseRange(2, 9);

/// Build + decide + direct-search costs for one tape length (steps = INDs
/// in the reduction — the instance size the PSPACE-hardness argument
/// charges for).
void EmitJsonReport(bool smoke) {
  BenchReporter reporter("lba_reduction");
  const std::size_t n = 6;
  std::uint32_t a = 0;
  LbaMachine machine = MakeEvenAsMachine(&a);
  std::vector<std::uint32_t> input(n, a);
  std::uint64_t inds = 0;
  std::uint64_t build_wall = MedianWallNs(smoke ? 1 : 5, [&] {
    Result<LbaToIndReduction> red = BuildLbaToIndReduction(machine, input);
    CCFP_CHECK(red.ok());
    inds = red->sigma.size();
  });
  Result<LbaToIndReduction> red = BuildLbaToIndReduction(machine, input);
  CCFP_CHECK(red.ok());
  IndImplication engine(red->scheme, red->sigma);
  std::uint64_t decide_wall = MedianWallNs(smoke ? 1 : 5, [&] {
    Result<IndDecision> decision = engine.Decide(red->target);
    CCFP_CHECK(decision.ok() && decision->implied);  // n = 6 is even
  });
  std::uint64_t direct_wall = MedianWallNs(smoke ? 1 : 5, [&] {
    Result<LbaRunResult> result = LbaAccepts(machine, input);
    CCFP_CHECK(result.ok() && result->accepts);
  });
  reporter.Add("build_reduction", n, build_wall, inds);
  reporter.Add("decide_reduced", n, decide_wall, inds);
  reporter.Add("direct_lba_search", n, direct_wall, inds);
  reporter.WriteFile();
  std::fprintf(stderr, "BENCH_lba_reduction.json written\n");
}

}  // namespace
}  // namespace ccfp

int main(int argc, char** argv) {
  return ccfp::RunBenchMain(argc, argv,
                            [](bool smoke) { ccfp::EmitJsonReport(smoke); });
}
