// The adaptive refutation portfolio (search/portfolio.h): fixed-shape
// vs shape-ladder pairs, and the raced mixed route at pool widths
// 1/2/4/8, emitted to BENCH_portfolio.json.
//
// Two workloads exercise the two regimes:
//   * `wide` — R(A,B,C) with { A -> B, R[B,C] <= R[C,A] } |/= A -> C.
//     The smallest counterexample needs a third tuple, so the fixed 2x2
//     search exhausts (kUnknown) while the ladder's 3-tuple rung refutes.
//   * `implied` — an FD chain whose target really is implied, so no rung
//     ever finds a witness and the portfolio pays for the full ladder
//     scan (the worst case the skip/funding logic has to keep cheap).
#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench/bench_main.h"
#include "bench/reporter.h"
#include "core/schema.h"
#include "search/portfolio.h"
#include "solve/solver.h"
#include "util/budget.h"
#include "util/check.h"
#include "util/strings.h"
#include "util/task_pool.h"

namespace ccfp {
namespace {

struct Workload {
  const char* name;
  SchemePtr scheme;
  std::vector<Dependency> sigma;
  Dependency target{Fd{0, {0}, {0}}};  // placeholder; always overwritten
};

/// Refutable only above the base shape: witness (0,0,0),(0,0,1),(1,0,0).
Workload WideWorkload() {
  Workload w;
  w.name = "wide";
  w.scheme = MakeScheme({{"R", {"A", "B", "C"}}});
  w.sigma.push_back(Dependency(Fd{0, {0}, {1}}));
  w.sigma.push_back(Dependency(Ind{0, {1, 2}, 0, {2, 0}}));
  w.target = Dependency(Fd{0, {0}, {2}});
  return w;
}

/// Implied (A -> B, B -> C |= A -> C): every funded rung fully scans.
Workload ImpliedWorkload() {
  Workload w;
  w.name = "implied";
  w.scheme = MakeScheme({{"R", {"A", "B", "C"}}});
  w.sigma.push_back(Dependency(Fd{0, {0}, {1}}));
  w.sigma.push_back(Dependency(Fd{0, {1}, {2}}));
  w.target = Dependency(Fd{0, {0}, {2}});
  return w;
}

/// Times one portfolio sweep; `max_rungs` 1 is the classic fixed-shape
/// search, 0 keeps the default ladder. Returns candidates via `tested`.
std::uint64_t TimePortfolio(const Workload& w, const Budget& budget,
                            std::size_t max_rungs, bool smoke,
                            std::uint64_t* tested, bool* found) {
  return MedianWallNs(smoke ? 1 : 5, [&] {
    PortfolioOptions options;
    if (max_rungs != 0) options.max_rungs = max_rungs;
    RefutationPortfolio portfolio(w.scheme, w.sigma, w.target, options);
    Result<PortfolioResult> run = portfolio.Run(budget);
    CCFP_CHECK(run.ok());
    *tested = run->candidates_tested;
    *found = run->counterexample.has_value();
  });
}

void EmitJsonReport(bool smoke) {
  BenchReporter reporter("portfolio");

  // --- fixed-shape vs ladder, on the bare portfolio -------------------
  for (const Workload& w : {WideWorkload(), ImpliedWorkload()}) {
    Budget budget;
    // Bound the implied workload's full-ladder scan so its wall time is
    // a deterministic function of the budget, not of the largest shape.
    budget.steps = smoke ? 2000 : 200000;
    std::uint64_t tested[2] = {0, 0};
    bool found[2] = {false, false};
    std::uint64_t fixed_wall =
        TimePortfolio(w, budget, /*max_rungs=*/1, smoke, &tested[0],
                      &found[0]);
    std::uint64_t ladder_wall =
        TimePortfolio(w, budget, /*max_rungs=*/0, smoke, &tested[1],
                      &found[1]);
    // The ladder never loses a refutation the fixed shape had.
    CCFP_CHECK(!found[0] || found[1]);
    reporter.Add(StrCat(w.name, "_fixed"), budget.steps, fixed_wall,
                 tested[0]);
    reporter.Add(StrCat(w.name, "_ladder"), budget.steps, ladder_wall,
                 tested[1]);
    std::fprintf(stderr,
                 "%s: fixed %.2f ms (%llu candidates, found=%d), ladder "
                 "%.2f ms (%llu candidates, found=%d)\n",
                 w.name, fixed_wall / 1e6,
                 static_cast<unsigned long long>(tested[0]), found[0] ? 1 : 0,
                 ladder_wall / 1e6,
                 static_cast<unsigned long long>(tested[1]),
                 found[1] ? 1 : 0);
  }

  // --- fixed-shape vs ladder, through the whole solver ----------------
  {
    Workload w = WideWorkload();
    Budget budget;  // the default budget, identical for both solvers
    ImplicationVerdict outcome[2] = {ImplicationVerdict::kUnknown,
                                     ImplicationVerdict::kUnknown};
    std::uint64_t wall[2] = {0, 0};
    for (int ladder = 0; ladder < 2; ++ladder) {
      SolveOptions options;
      if (ladder == 0) options.search_max_rungs = 1;
      wall[ladder] = MedianWallNs(smoke ? 1 : 5, [&] {
        ImplicationSolver solver(w.scheme, w.sigma, options);
        Result<Verdict> v = solver.Solve(w.target, budget);
        CCFP_CHECK(v.ok());
        outcome[ladder] = v->outcome;
      });
    }
    // The acceptance pair: same budget, kUnknown -> kNotImplied.
    CCFP_CHECK(outcome[0] == ImplicationVerdict::kUnknown);
    CCFP_CHECK(outcome[1] == ImplicationVerdict::kNotImplied);
    reporter.Add("solver_wide_fixed", 1, wall[0], 0);
    reporter.Add("solver_wide_ladder", 1, wall[1], 1);
    std::fprintf(stderr,
                 "solver wide: fixed %.2f ms (kUnknown), ladder %.2f ms "
                 "(kNotImplied)\n",
                 wall[0] / 1e6, wall[1] / 1e6);
  }

  // --- the raced mixed route at pool widths 1/2/4/8 -------------------
  // Chase ∥ rung0 ∥ rung1 ∥ ... on the TaskPool; the verdict is width-
  // invariant (tests/portfolio_property_test.cc), only timing moves.
  {
    Workload w = WideWorkload();
    Budget budget;
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
      if (smoke && threads != 1) continue;
      TaskPool pool(threads);
      SolveOptions options;
      options.pool = &pool;
      std::uint64_t wall = MedianWallNs(smoke ? 1 : 5, [&] {
        ImplicationSolver solver(w.scheme, w.sigma, options);
        Result<Verdict> v = solver.Solve(w.target, budget);
        CCFP_CHECK(v.ok() && v->outcome == ImplicationVerdict::kNotImplied);
      });
      reporter.AddThreaded("solver_wide_raced", 1, wall, 1, threads);
      std::fprintf(stderr, "solver wide raced t=%u: %.2f ms\n", threads,
                   wall / 1e6);
    }
  }

  reporter.WriteFile();
}

}  // namespace
}  // namespace ccfp

int main(int argc, char** argv) {
  return ccfp::RunBenchMain(argc, argv,
                            [](bool smoke) { ccfp::EmitJsonReport(smoke); });
}
