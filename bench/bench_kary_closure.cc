// E12: Theorem 5.1 machinery — cost of verifying k-ary closedness of the
// Section 6 Gamma via counterexample databases, as a function of k. The
// subset enumeration is the dominating factor: C(|Gamma|, k) blows up.
#include <cstdio>

#include <benchmark/benchmark.h>

#include "axiom/kary.h"
#include "axiom/oracle.h"
#include "bench/bench_main.h"
#include "bench/reporter.h"
#include "constructions/section6.h"
#include "util/check.h"

namespace ccfp {
namespace {

void BM_FindKaryEscapeSection6(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  Section6Construction c = MakeSection6(k);
  std::vector<Database> witnesses;
  for (std::size_t j = 0; j <= k; ++j) {
    witnesses.push_back(MakeSection6Armstrong(c, j));
  }
  CounterexampleOracle oracle(std::move(witnesses));
  std::uint64_t queries = 0;
  bool closed = false;
  for (auto _ : state) {
    KaryStats stats;
    auto escape = FindKaryEscape(c.universe, c.gamma, oracle, k, &stats);
    queries = stats.oracle_queries;
    closed = !escape.has_value();
    benchmark::DoNotOptimize(escape);
  }
  state.counters["k"] = static_cast<double>(k);
  state.counters["gamma"] = static_cast<double>(c.gamma.size());
  state.counters["universe"] = static_cast<double>(c.universe.size());
  state.counters["queries"] = static_cast<double>(queries);
  state.counters["closed"] = closed ? 1 : 0;  // Theorem 6.1: always 1
}

BENCHMARK(BM_FindKaryEscapeSection6)->DenseRange(1, 2);

void BM_FullEscapeSection6(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  Section6Construction c = MakeSection6(k);
  UnaryFiniteOracle oracle(c.scheme);
  bool escaped = false;
  for (auto _ : state) {
    auto escape = FindFullEscape(c.universe, c.gamma, oracle);
    escaped = escape.has_value();
    benchmark::DoNotOptimize(escape);
  }
  state.counters["k"] = static_cast<double>(k);
  state.counters["escaped"] = escaped ? 1 : 0;  // always 1: sigma_k escapes
}

BENCHMARK(BM_FullEscapeSection6)->RangeMultiplier(2)->Range(1, 8);

/// The k-ary closedness sweep (steps = oracle queries — each one a full
/// witness-database probe through the interned CounterexampleOracle) and
/// the full escape search per k.
void EmitJsonReport(bool smoke) {
  BenchReporter reporter("kary_closure");
  for (std::size_t k : {1u, 2u}) {
    Section6Construction c = MakeSection6(k);
    std::vector<Database> witnesses;
    for (std::size_t j = 0; j <= k; ++j) {
      witnesses.push_back(MakeSection6Armstrong(c, j));
    }
    CounterexampleOracle oracle(witnesses);
    std::uint64_t queries = 0;
    std::uint64_t wall = MedianWallNs(smoke ? 1 : 5, [&] {
      KaryStats stats;
      auto escape = FindKaryEscape(c.universe, c.gamma, oracle, k, &stats);
      CCFP_CHECK(!escape.has_value());  // Theorem 6.1: Gamma is k-closed
      queries = stats.oracle_queries;
    });
    reporter.Add("kary_escape_section6", k, wall, queries);
  }
  {
    const std::size_t k = 4;
    Section6Construction c = MakeSection6(k);
    UnaryFiniteOracle oracle(c.scheme);
    std::uint64_t wall = MedianWallNs(smoke ? 1 : 5, [&] {
      auto escape = FindFullEscape(c.universe, c.gamma, oracle);
      CCFP_CHECK(escape.has_value());  // sigma_k escapes the full closure
    });
    reporter.Add("full_escape_section6", k, wall, c.universe.size());
  }
  reporter.WriteFile();
  std::fprintf(stderr, "BENCH_kary_closure.json written\n");
}

}  // namespace
}  // namespace ccfp

int main(int argc, char** argv) {
  return ccfp::RunBenchMain(argc, argv,
                            [](bool smoke) { ccfp::EmitJsonReport(smoke); });
}
