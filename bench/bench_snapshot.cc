// E14: the snapshot layer (core/snapshot.h). BENCH_snapshot.json records
// a full-vs-delta entry pair per workload size: the full path serializes
// the whole substrate (interner + union-find + slots + occurrences +
// compiled partitions), the delta path serializes only the in-flight
// mutation journal linked to the last persisted record — the tentpole's
// cost model is that checkpointing a live session scales with the batch,
// not the state. Load-side pairs compare a one-record full restore with
// a base-plus-deltas chain restore (LoadSnapshotChain replay).
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_main.h"
#include "bench/reporter.h"
#include "core/snapshot.h"
#include "core/workspace.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/strings.h"

namespace ccfp {
namespace {

SchemePtr BenchScheme() {
  return MakeScheme({{"R", {"A", "B", "C"}}, {"S", {"D", "E"}}});
}

void AppendOne(InternedWorkspace& ws, SplitMix64& rng,
               std::vector<ValueId>& pool) {
  RelId rel = static_cast<RelId>(rng.Below(ws.scheme().size()));
  std::size_t arity = ws.scheme().relation(rel).arity();
  IdTuple t(arity, 0);
  for (std::size_t a = 0; a < arity; ++a) {
    if (pool.empty() || rng.Chance(1, 4)) {
      pool.push_back(rng.Chance(1, 3)
                         ? ws.InternFreshNull()
                         : ws.Intern(Value::Int(static_cast<std::int64_t>(
                               rng.Below(64)))));
    }
    t[a] = ws.Canon(pool[rng.Below(pool.size())]);
  }
  ws.Append(rel, std::move(t));
}

// The chase-protocol merge sequence (MergeValues, reroute, then
// re-canonicalize every stale occurrence), so merged ids are journaled
// exactly the way a live session journals them.
void MergeOne(InternedWorkspace& ws, SplitMix64& rng,
              const std::vector<ValueId>& pool) {
  if (pool.size() < 2) return;
  ValueId a = ws.Canon(pool[rng.Below(pool.size())]);
  ValueId b = ws.Canon(pool[rng.Below(pool.size())]);
  InternedWorkspace::MergeResult m = ws.MergeValues(a, b);
  if (!m.merged) return;
  std::vector<WorkspaceTupleRef> stale = ws.occurrences(m.loser);
  ws.RerouteOccurrences(m.loser, m.winner);
  for (const WorkspaceTupleRef& ref : stale) {
    ws.CanonicalizeTuple(ref.rel, ref.idx);
  }
}

void MutateBatch(InternedWorkspace& ws, SplitMix64& rng,
                 std::vector<ValueId>& pool, std::size_t ops) {
  for (std::size_t i = 0; i < ops; ++i) {
    if (rng.Chance(5, 6)) {
      AppendOne(ws, rng, pool);
    } else {
      MergeOne(ws, rng, pool);
    }
  }
}

// A lived-in workspace: `n` mutation ops plus compiled partitions (the
// capital a full snapshot carries and a delta deliberately does not).
InternedWorkspace BuildWorkspace(const SchemePtr& scheme, std::size_t n,
                                 SplitMix64& rng,
                                 std::vector<ValueId>& pool) {
  InternedWorkspace ws(scheme);
  MutateBatch(ws, rng, pool, n);
  ws.Satisfies(Dependency(Fd{0, {0}, {1}}));
  ws.Satisfies(Dependency(Fd{0, {1}, {2}}));
  ws.Satisfies(Dependency(Fd{1, {0}, {1}}));
  ws.Satisfies(Dependency(Ind{0, {0}, 1, {0}}));
  return ws;
}

constexpr std::size_t kDeltaBatchOps = 16;

void EmitJsonReport(bool smoke) {
  BenchReporter reporter("snapshot");
  SchemePtr scheme = BenchScheme();
  for (std::size_t n : {256u, 1024u, 4096u}) {
    if (smoke && n != 256) continue;
    SplitMix64 rng(n * 9176 + 5);
    std::vector<ValueId> pool;
    InternedWorkspace ws = BuildWorkspace(scheme, n, rng, pool);

    // Full pair: serialize / restore the whole substrate.
    std::string full = SerializeWorkspace(ws);
    std::uint64_t full_save_ns =
        MedianWallNs(smoke ? 1 : 5, [&] { benchmark::DoNotOptimize(SerializeWorkspace(ws)); });
    std::uint64_t full_load_ns = MedianWallNs(smoke ? 1 : 5, [&] {
      Result<RestoredWorkspace> r = DeserializeWorkspace(scheme, full);
      CCFP_CHECK(r.ok());
    });
    reporter.Add(StrCat("full_save/", n), n, full_save_ns, full.size());
    reporter.Add(StrCat("full_load/", n), n, full_load_ns, full.size());

    // Delta pair: persist the base, run one in-flight batch, serialize
    // just the journal. Same batch size at every n — the delta cost
    // should track the batch while the full cost tracks the state.
    Result<RestoredWorkspace> restored = DeserializeWorkspace(scheme, full);
    CCFP_CHECK(restored.ok());
    ws.MarkJournalPersisted(restored->snapshot_id);
    ws.EnableJournal();
    MutateBatch(ws, rng, pool, kDeltaBatchOps);
    Result<std::string> delta = SerializeWorkspaceDelta(ws);
    CCFP_CHECK(delta.ok());
    std::uint64_t delta_save_ns = MedianWallNs(
        smoke ? 1 : 5, [&] { benchmark::DoNotOptimize(SerializeWorkspaceDelta(ws)); });
    reporter.Add(StrCat("delta_save/", n), n, delta_save_ns, delta->size());

    // Chain restore: base plus four batch deltas, replayed by LoadChain.
    std::string prefix = StrCat("/tmp/ccfp_bench_snapshot_", n);
    SnapshotChainWriter writer(prefix);
    std::vector<ValueId> chain_pool;  // ids are per-workspace
    InternedWorkspace chain_ws = BuildWorkspace(scheme, n, rng, chain_pool);
    CCFP_CHECK(writer.Save(chain_ws).ok());
    std::uint64_t chain_bytes = 0;
    for (int k = 0; k < 4; ++k) {
      MutateBatch(chain_ws, rng, chain_pool, kDeltaBatchOps);
      CCFP_CHECK(writer.Save(chain_ws).ok());
    }
    std::uint64_t chain_load_ns = MedianWallNs(smoke ? 1 : 5, [&] {
      Result<RestoredChain> chain = LoadSnapshotChain(scheme, prefix);
      CCFP_CHECK(chain.ok());
      chain_bytes = chain->base_bytes + chain->delta_bytes;
    });
    reporter.Add(StrCat("chain_load/", n), n, chain_load_ns, chain_bytes);

    std::fprintf(stderr,
                 "n=%zu: full save %.1f us (%zu B), delta save %.1f us "
                 "(%zu B, %.0fx smaller), full load %.1f us, chain load "
                 "%.1f us\n",
                 n, full_save_ns / 1e3, full.size(), delta_save_ns / 1e3,
                 delta->size(),
                 static_cast<double>(full.size()) /
                     static_cast<double>(delta->size() ? delta->size() : 1),
                 full_load_ns / 1e3, chain_load_ns / 1e3);
  }
  reporter.WriteFile();
}

void BM_FullSerialize(benchmark::State& state) {
  SchemePtr scheme = BenchScheme();
  SplitMix64 rng(42);
  std::vector<ValueId> pool;
  InternedWorkspace ws = BuildWorkspace(
      scheme, static_cast<std::size_t>(state.range(0)), rng, pool);
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    std::string blob = SerializeWorkspace(ws);
    bytes = blob.size();
    benchmark::DoNotOptimize(blob);
  }
  state.counters["bytes"] = static_cast<double>(bytes);
}

BENCHMARK(BM_FullSerialize)->Range(256, 4096);

void BM_DeltaSerialize(benchmark::State& state) {
  SchemePtr scheme = BenchScheme();
  SplitMix64 rng(43);
  std::vector<ValueId> pool;
  InternedWorkspace ws = BuildWorkspace(
      scheme, static_cast<std::size_t>(state.range(0)), rng, pool);
  Result<RestoredWorkspace> restored =
      DeserializeWorkspace(scheme, SerializeWorkspace(ws));
  CCFP_CHECK(restored.ok());
  ws.MarkJournalPersisted(restored->snapshot_id);
  ws.EnableJournal();
  MutateBatch(ws, rng, pool, kDeltaBatchOps);
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    Result<std::string> blob = SerializeWorkspaceDelta(ws);
    CCFP_CHECK(blob.ok());
    bytes = blob->size();
    benchmark::DoNotOptimize(blob);
  }
  state.counters["bytes"] = static_cast<double>(bytes);
}

BENCHMARK(BM_DeltaSerialize)->Range(256, 4096);

}  // namespace
}  // namespace ccfp

int main(int argc, char** argv) {
  return ccfp::RunBenchMain(argc, argv,
                            [](bool smoke) { ccfp::EmitJsonReport(smoke); });
}
