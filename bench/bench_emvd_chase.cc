// E14 (PR 3): the EMVD chase engines head to head — the legacy heap-Value
// engine copies and hashes two projected tuples per candidate pair; the
// workspace engine reads two partition group ids off the persistent
// InternedWorkspace and packs them into one word. BENCH_emvd_chase.json
// records a legacy/workspace entry pair per workload.
#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench/bench_main.h"
#include "bench/reporter.h"
#include "chase/emvd_chase.h"
#include "constructions/sagiv_walecka.h"
#include "util/check.h"
#include "util/strings.h"

namespace ccfp {
namespace {

/// R[X, Y, Z] with X ->> Y | Z and `groups` X-groups of `side` distinct
/// Y/Z values each: the fixpoint is the full side x side grid per group.
Database MakeGridSeed(const SchemePtr& scheme, int groups, int side) {
  Database db(scheme);
  for (int g = 0; g < groups; ++g) {
    for (int i = 0; i < side; ++i) {
      db.Insert(0, {Value::Int(g), Value::Int(i), Value::Int(i)});
    }
  }
  return db;
}

Database MakeSagivWaleckaSeed(const SagivWaleckaConstruction& c) {
  Database db(c.scheme);
  std::size_t arity = c.scheme->relation(0).arity();
  std::uint64_t next_null = 1;
  Tuple t1(arity), t2(arity);
  for (AttrId a = 0; a < arity; ++a) {
    t1[a] = Value::Null(next_null++);
    t2[a] = (a == 0) ? t1[a] : Value::Null(next_null++);
  }
  db.Insert(0, std::move(t1));
  db.Insert(0, std::move(t2));
  return db;
}

void BM_GridFixpoint(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  const bool workspace = state.range(1) != 0;
  SchemePtr scheme = MakeScheme({{"R", {"X", "Y", "Z"}}});
  std::vector<Emvd> sigma = {MakeEmvd(*scheme, "R", {"X"}, {"Y"}, {"Z"})};
  EmvdChaseOptions options;
  options.max_tuples = 1u << 16;
  options.engine = workspace ? EmvdChaseEngine::kWorkspace
                             : EmvdChaseEngine::kLegacy;
  std::uint64_t added = 0;
  for (auto _ : state) {
    Database db = MakeGridSeed(scheme, 2, side);
    Result<std::uint64_t> result = EmvdChaseFixpoint(db, sigma, options);
    if (result.ok()) added = *result;
    benchmark::DoNotOptimize(result);
  }
  state.counters["side"] = side;
  state.counters["workspace"] = workspace ? 1 : 0;
  state.counters["added"] = static_cast<double>(added);
}

BENCHMARK(BM_GridFixpoint)
    ->ArgsProduct({{16, 32, 64}, {0, 1}});

void BM_SagivWaleckaBudgeted(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  const bool workspace = state.range(1) != 0;
  SagivWaleckaConstruction c = MakeSagivWalecka(k);
  EmvdChaseOptions options;
  options.max_tuples = 2048;
  options.max_rounds = 8;
  options.engine = workspace ? EmvdChaseEngine::kWorkspace
                             : EmvdChaseEngine::kLegacy;
  std::uint64_t tuples = 0;
  for (auto _ : state) {
    Database db = MakeSagivWaleckaSeed(c);
    Result<std::uint64_t> result = EmvdChaseFixpoint(db, c.sigma, options);
    tuples = db.TotalTuples();
    benchmark::DoNotOptimize(result);
  }
  state.counters["k"] = static_cast<double>(k);
  state.counters["workspace"] = workspace ? 1 : 0;
  state.counters["tuples"] = static_cast<double>(tuples);
}

BENCHMARK(BM_SagivWaleckaBudgeted)->ArgsProduct({{2, 3}, {0, 1}});

/// One legacy/workspace pair per recorded workload; steps = tuples the
/// chase materialized (the work both engines must do).
void EmitJsonReport(bool smoke) {
  BenchReporter reporter("emvd_chase");
  SchemePtr grid_scheme = MakeScheme({{"R", {"X", "Y", "Z"}}});
  std::vector<Emvd> grid_sigma = {
      MakeEmvd(*grid_scheme, "R", {"X"}, {"Y"}, {"Z"})};
  SagivWaleckaConstruction sw = MakeSagivWalecka(3);

  struct Workload {
    std::string name;
    std::uint64_t n;
    Database seed;
    const std::vector<Emvd>* sigma;
    EmvdChaseOptions options;
  };
  std::vector<Workload> workloads;
  {
    Workload w{"grid_fixpoint", 48, MakeGridSeed(grid_scheme, 2, 48),
               &grid_sigma, {}};
    w.options.max_tuples = 1u << 16;
    workloads.push_back(std::move(w));
  }
  {
    Workload w{"sagiv_walecka_budgeted", 3, MakeSagivWaleckaSeed(sw),
               &sw.sigma, {}};
    w.options.max_tuples = 4096;
    w.options.max_rounds = 8;
    workloads.push_back(std::move(w));
  }

  // Smoke keeps only the budgeted workload; the grid fixpoint is the slow one.
  if (smoke) workloads.erase(workloads.begin());
  for (Workload& w : workloads) {
    std::uint64_t wall[2] = {0, 0};
    std::uint64_t tuples[2] = {0, 0};
    for (int engine = 0; engine < 2; ++engine) {
      EmvdChaseOptions options = w.options;
      options.engine = engine == 1 ? EmvdChaseEngine::kWorkspace
                                   : EmvdChaseEngine::kLegacy;
      wall[engine] = MedianWallNs(smoke ? 1 : 5, [&] {
        Database db = w.seed;
        Result<std::uint64_t> result =
            EmvdChaseFixpoint(db, *w.sigma, options);
        CCFP_CHECK(result.ok() ||
                   result.status().code() == StatusCode::kResourceExhausted);
        tuples[engine] = db.TotalTuples();
      });
    }
    CCFP_CHECK(tuples[0] == tuples[1]);
    reporter.Add(StrCat(w.name, "_legacy"), w.n, wall[0], tuples[0]);
    reporter.Add(StrCat(w.name, "_workspace"), w.n, wall[1], tuples[1]);
    std::fprintf(stderr,
                 "%s (%llu tuples): legacy %.2f ms, workspace %.2f ms, "
                 "speedup %.2fx\n",
                 w.name.c_str(),
                 static_cast<unsigned long long>(tuples[0]), wall[0] / 1e6,
                 wall[1] / 1e6,
                 static_cast<double>(wall[0]) /
                     static_cast<double>(wall[1] == 0 ? 1 : wall[1]));
  }
  reporter.WriteFile();
}

}  // namespace
}  // namespace ccfp

int main(int argc, char** argv) {
  return ccfp::RunBenchMain(argc, argv,
                            [](bool smoke) { ccfp::EmitJsonReport(smoke); });
}
