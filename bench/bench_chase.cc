// E11: FD+IND chase behaviour — the Section 7 schema chase terminates
// (its IND graph is acyclic) and scales with n; cyclic IND sets exhaust
// the budget (the undecidability surface of Mitchell / Chandra-Vardi).
// Also the incremental-vs-naive engine comparison on a deep IND cascade,
// emitted to BENCH_chase.json for machine-readable perf tracking.
#include <cstdio>
#include <string_view>

#include <benchmark/benchmark.h>

#include "bench/bench_main.h"
#include "bench/reporter.h"
#include "bench/workloads.h"
#include "chase/chase.h"
#include "constructions/section7.h"
#include "util/check.h"
#include "util/strings.h"

namespace ccfp {
namespace {

// Deep IND cascade (bench/workloads.h): restart-loop engines pay
// O(levels^2), the delta-driven engine O(levels).

void BM_DeepCascade(benchmark::State& state) {
  const std::size_t levels = static_cast<std::size_t>(state.range(0));
  const bool incremental = state.range(1) != 0;
  CascadeInstance instance = MakeDeepCascade(levels);
  Chase chase(instance.scheme, instance.fds, instance.inds);
  Database seed = CascadeSeed(instance, 8);
  ChaseOptions options;
  options.engine =
      incremental ? ChaseEngine::kIncremental : ChaseEngine::kNaive;
  std::uint64_t tuples = 0;
  for (auto _ : state) {
    Result<ChaseResult> result = chase.Run(seed, options);
    if (result.ok()) tuples = result->db.TotalTuples();
    benchmark::DoNotOptimize(result);
  }
  state.counters["levels"] = static_cast<double>(levels);
  state.counters["incremental"] = incremental ? 1 : 0;
  state.counters["tuples"] = static_cast<double>(tuples);
}

BENCHMARK(BM_DeepCascade)
    ->ArgsProduct({{32, 64, 128, 256}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

void BM_Section7ChaseLemma72(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Section7Construction c = MakeSection7(n);
  bool implied = false;
  for (auto _ : state) {
    Result<bool> result =
        ChaseImplies(c.scheme, c.fds, c.inds, Dependency(c.sigma));
    if (result.ok()) implied = *result;
    benchmark::DoNotOptimize(result);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["implied"] = implied ? 1 : 0;  // Lemma 7.2: always 1
  state.counters["deps"] = static_cast<double>(c.fds.size() + c.inds.size());
}

BENCHMARK(BM_Section7ChaseLemma72)->RangeMultiplier(2)->Range(1, 32);

void BM_CyclicChaseHitsBudget(benchmark::State& state) {
  SchemePtr scheme = MakeScheme({{"R", {"A", "B"}}});
  std::vector<Fd> fds = {MakeFd(*scheme, "R", {"A"}, {"B"})};
  std::vector<Ind> inds = {MakeInd(*scheme, "R", {"A"}, "R", {"B"})};
  ChaseOptions options;
  options.max_tuples = static_cast<std::uint64_t>(state.range(0));
  options.max_steps = options.max_tuples * 4;
  std::uint64_t exhausted = 0;
  for (auto _ : state) {
    Result<bool> result =
        ChaseImplies(scheme, fds, inds,
                     Dependency(MakeInd(*scheme, "R", {"B"}, "R", {"A"})),
                     options);
    if (!result.ok()) ++exhausted;
    benchmark::DoNotOptimize(result);
  }
  state.counters["budget"] = static_cast<double>(state.range(0));
  state.counters["exhausted"] = static_cast<double>(exhausted);
}

BENCHMARK(BM_CyclicChaseHitsBudget)->RangeMultiplier(4)->Range(64, 4096);

void BM_ChaseFixpointSize(benchmark::State& state) {
  // Size of the chased universal model for the Section 7 scheme, seeded
  // with one generic F tuple — grows linearly with n.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Section7Construction c = MakeSection7(n);
  Chase chase(c.scheme, c.fds, c.inds);
  std::size_t tuples = 0;
  for (auto _ : state) {
    Database seed(c.scheme);
    std::size_t arity = c.scheme->relation(c.f).arity();
    Tuple t(arity);
    for (AttrId a = 0; a < arity; ++a) t[a] = Value::Null(a + 1);
    seed.Insert(c.f, std::move(t));
    Result<ChaseResult> result = chase.Run(std::move(seed));
    if (result.ok()) tuples = result->db.TotalTuples();
    benchmark::DoNotOptimize(result);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["tuples"] = static_cast<double>(tuples);
}

BENCHMARK(BM_ChaseFixpointSize)->RangeMultiplier(2)->Range(1, 64);

/// Times the deep-cascade workload under both engines and writes
/// BENCH_chase.json. Runs before the google-benchmark suite so the file
/// exists even when benchmarks are filtered out.
void EmitJsonReport(bool smoke) {
  BenchReporter reporter("chase");
  for (std::size_t levels : {64, 128, 256}) {
    if (smoke && levels != 64) continue;
    CascadeInstance instance = MakeDeepCascade(levels);
    Chase chase(instance.scheme, instance.fds, instance.inds);
    Database seed = CascadeSeed(instance, 8);
    std::uint64_t steps[2] = {0, 0};
    std::uint64_t wall[2] = {0, 0};
    for (int engine = 0; engine < 2; ++engine) {
      ChaseOptions options;
      options.engine =
          engine == 1 ? ChaseEngine::kIncremental : ChaseEngine::kNaive;
      wall[engine] = MedianWallNs(smoke ? 1 : 5, [&] {
        Result<ChaseResult> result = chase.Run(seed, options);
        CCFP_CHECK(result.ok());
        CCFP_CHECK(result->outcome == ChaseOutcome::kFixpoint);
        steps[engine] = result->steps;
      });
    }
    reporter.Add("deep_cascade_naive", levels, wall[0], steps[0]);
    reporter.Add("deep_cascade_incremental", levels, wall[1], steps[1]);
    std::fprintf(stderr,
                 "deep_cascade L=%zu: naive %.2f ms, incremental %.2f ms, "
                 "speedup %.1fx\n",
                 levels, wall[0] / 1e6, wall[1] / 1e6,
                 static_cast<double>(wall[0]) /
                     static_cast<double>(wall[1] == 0 ? 1 : wall[1]));
  }
  reporter.WriteFile();
}

}  // namespace
}  // namespace ccfp

int main(int argc, char** argv) {
  return ccfp::RunBenchMain(argc, argv,
                            [](bool smoke) { ccfp::EmitJsonReport(smoke); });
}
