// E11: FD+IND chase behaviour — the Section 7 schema chase terminates
// (its IND graph is acyclic) and scales with n; cyclic IND sets exhaust
// the budget (the undecidability surface of Mitchell / Chandra-Vardi).
#include <benchmark/benchmark.h>

#include "chase/chase.h"
#include "constructions/section7.h"

namespace ccfp {
namespace {

void BM_Section7ChaseLemma72(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Section7Construction c = MakeSection7(n);
  bool implied = false;
  for (auto _ : state) {
    Result<bool> result =
        ChaseImplies(c.scheme, c.fds, c.inds, Dependency(c.sigma));
    if (result.ok()) implied = *result;
    benchmark::DoNotOptimize(result);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["implied"] = implied ? 1 : 0;  // Lemma 7.2: always 1
  state.counters["deps"] = static_cast<double>(c.fds.size() + c.inds.size());
}

BENCHMARK(BM_Section7ChaseLemma72)->RangeMultiplier(2)->Range(1, 32);

void BM_CyclicChaseHitsBudget(benchmark::State& state) {
  SchemePtr scheme = MakeScheme({{"R", {"A", "B"}}});
  std::vector<Fd> fds = {MakeFd(*scheme, "R", {"A"}, {"B"})};
  std::vector<Ind> inds = {MakeInd(*scheme, "R", {"A"}, "R", {"B"})};
  ChaseOptions options;
  options.max_tuples = static_cast<std::uint64_t>(state.range(0));
  options.max_steps = options.max_tuples * 4;
  std::uint64_t exhausted = 0;
  for (auto _ : state) {
    Result<bool> result =
        ChaseImplies(scheme, fds, inds,
                     Dependency(MakeInd(*scheme, "R", {"B"}, "R", {"A"})),
                     options);
    if (!result.ok()) ++exhausted;
    benchmark::DoNotOptimize(result);
  }
  state.counters["budget"] = static_cast<double>(state.range(0));
  state.counters["exhausted"] = static_cast<double>(exhausted);
}

BENCHMARK(BM_CyclicChaseHitsBudget)->RangeMultiplier(4)->Range(64, 4096);

void BM_ChaseFixpointSize(benchmark::State& state) {
  // Size of the chased universal model for the Section 7 scheme, seeded
  // with one generic F tuple — grows linearly with n.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Section7Construction c = MakeSection7(n);
  Chase chase(c.scheme, c.fds, c.inds);
  std::size_t tuples = 0;
  for (auto _ : state) {
    Database seed(c.scheme);
    std::size_t arity = c.scheme->relation(c.f).arity();
    Tuple t(arity);
    for (AttrId a = 0; a < arity; ++a) t[a] = Value::Null(a + 1);
    seed.Insert(c.f, std::move(t));
    Result<ChaseResult> result = chase.Run(std::move(seed));
    if (result.ok()) tuples = result->db.TotalTuples();
    benchmark::DoNotOptimize(result);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["tuples"] = static_cast<double>(tuples);
}

BENCHMARK(BM_ChaseFixpointSize)->RangeMultiplier(2)->Range(1, 64);

}  // namespace
}  // namespace ccfp

BENCHMARK_MAIN();
