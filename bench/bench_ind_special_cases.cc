// E3: the polynomial special cases from the end of Section 3 — unary INDs
// (digraph reachability), typed INDs R[X] <= S[X] (per-name reachability),
// and width-bounded INDs — against the general BFS on the same instances.
#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench/bench_main.h"
#include "bench/reporter.h"
#include "ind/implication.h"
#include "ind/special.h"
#include "util/rng.h"
#include "util/strings.h"

namespace ccfp {
namespace {

SchemePtr ChainScheme(std::size_t relations, std::size_t arity) {
  std::vector<std::pair<std::string, std::vector<std::string>>> rels;
  for (std::size_t r = 0; r < relations; ++r) {
    std::vector<std::string> attrs;
    for (std::size_t a = 0; a < arity; ++a) attrs.push_back(StrCat("A", a));
    rels.emplace_back(StrCat("R", r), attrs);
  }
  return MakeScheme(rels);
}

// Random unary IND set over `relations` relations.
std::vector<Ind> RandomUnaryInds(const DatabaseScheme& scheme,
                                 std::size_t count, std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<Ind> sigma;
  for (std::size_t i = 0; i < count; ++i) {
    RelId r1 = static_cast<RelId>(rng.Below(scheme.size()));
    RelId r2 = static_cast<RelId>(rng.Below(scheme.size()));
    AttrId a1 = static_cast<AttrId>(rng.Below(scheme.relation(r1).arity()));
    AttrId a2 = static_cast<AttrId>(rng.Below(scheme.relation(r2).arity()));
    sigma.push_back(Ind{r1, {a1}, r2, {a2}});
  }
  return sigma;
}

void BM_UnaryGraph(benchmark::State& state) {
  const std::size_t relations = static_cast<std::size_t>(state.range(0));
  SchemePtr scheme = ChainScheme(relations, 3);
  std::vector<Ind> sigma = RandomUnaryInds(*scheme, relations * 3, 5);
  Ind target{0, {0}, static_cast<RelId>(relations - 1), {0}};
  UnaryIndGraph graph(scheme, sigma);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph.Implies(target));
  }
  state.counters["relations"] = static_cast<double>(relations);
}

BENCHMARK(BM_UnaryGraph)->RangeMultiplier(4)->Range(8, 512);

void BM_UnaryViaGeneralBfs(benchmark::State& state) {
  const std::size_t relations = static_cast<std::size_t>(state.range(0));
  SchemePtr scheme = ChainScheme(relations, 3);
  std::vector<Ind> sigma = RandomUnaryInds(*scheme, relations * 3, 5);
  Ind target{0, {0}, static_cast<RelId>(relations - 1), {0}};
  IndImplication engine(scheme, sigma);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Implies(target));
  }
  state.counters["relations"] = static_cast<double>(relations);
}

BENCHMARK(BM_UnaryViaGeneralBfs)->RangeMultiplier(4)->Range(8, 512);

// Typed INDs along a relation chain with projections.
void BM_TypedInds(benchmark::State& state) {
  const std::size_t relations = static_cast<std::size_t>(state.range(0));
  SchemePtr scheme = ChainScheme(relations, 3);
  std::vector<Ind> sigma;
  for (std::size_t r = 0; r + 1 < relations; ++r) {
    sigma.push_back(Ind{static_cast<RelId>(r),
                        {0, 1, 2},
                        static_cast<RelId>(r + 1),
                        {0, 1, 2}});
  }
  Ind target{0, {0, 1}, static_cast<RelId>(relations - 1), {0, 1}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(TypedIndImplies(*scheme, sigma, target));
  }
  state.counters["relations"] = static_cast<double>(relations);
}

BENCHMARK(BM_TypedInds)->RangeMultiplier(4)->Range(8, 512);

void BM_TypedViaGeneralBfs(benchmark::State& state) {
  const std::size_t relations = static_cast<std::size_t>(state.range(0));
  SchemePtr scheme = ChainScheme(relations, 3);
  std::vector<Ind> sigma;
  for (std::size_t r = 0; r + 1 < relations; ++r) {
    sigma.push_back(Ind{static_cast<RelId>(r),
                        {0, 1, 2},
                        static_cast<RelId>(r + 1),
                        {0, 1, 2}});
  }
  Ind target{0, {0, 1}, static_cast<RelId>(relations - 1), {0, 1}};
  IndImplication engine(scheme, sigma);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Implies(target));
  }
  state.counters["relations"] = static_cast<double>(relations);
}

BENCHMARK(BM_TypedViaGeneralBfs)->RangeMultiplier(4)->Range(8, 512);

// Width-bounded decision: the expression space bound P(arity, w) * rels is
// polynomial for fixed w; report it alongside the measured cost.
void BM_WidthBounded(benchmark::State& state) {
  const std::size_t width = static_cast<std::size_t>(state.range(0));
  SchemePtr scheme = ChainScheme(6, 6);
  SplitMix64 rng(17);
  std::vector<Ind> sigma;
  for (int i = 0; i < 36; ++i) {
    RelId r1 = static_cast<RelId>(rng.Below(6));
    RelId r2 = static_cast<RelId>(rng.Below(6));
    std::vector<AttrId> all{0, 1, 2, 3, 4, 5};
    for (std::size_t j = 6; j > 1; --j) {
      std::swap(all[j - 1], all[rng.Below(j)]);
    }
    std::vector<AttrId> lhs(all.begin(), all.begin() + width);
    for (std::size_t j = 6; j > 1; --j) {
      std::swap(all[j - 1], all[rng.Below(j)]);
    }
    std::vector<AttrId> rhs(all.begin(), all.begin() + width);
    sigma.push_back(Ind{r1, lhs, r2, rhs});
  }
  Ind target = sigma.front();
  target.rhs_rel = 5;
  IndImplication engine(scheme, sigma);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Decide(target));
  }
  state.counters["width"] = static_cast<double>(width);
  state.counters["expr_space"] =
      static_cast<double>(ExpressionSpaceBound(*scheme, width));
}

BENCHMARK(BM_WidthBounded)->DenseRange(1, 5);

/// Special-case engines vs the general BFS on one chain size each: the
/// polynomial fragments the end of Section 3 promises, measured
/// (steps = relations in the chain).
void EmitJsonReport(bool smoke) {
  BenchReporter reporter("ind_special_cases");
  const std::size_t relations = 64;
  SchemePtr scheme = ChainScheme(relations, 3);
  {
    std::vector<Ind> sigma = RandomUnaryInds(*scheme, relations * 3, 5);
    Ind target{0, {0}, static_cast<RelId>(relations - 1), {0}};
    UnaryIndGraph graph(scheme, sigma);
    std::uint64_t graph_wall =
        MedianWallNs(smoke ? 1 : 9, [&] { graph.Implies(target); });
    IndImplication engine(scheme, sigma);
    std::uint64_t bfs_wall =
        MedianWallNs(smoke ? 1 : 9, [&] { engine.Implies(target); });
    reporter.Add("unary_graph", relations, graph_wall, relations);
    reporter.Add("unary_general_bfs", relations, bfs_wall, relations);
  }
  {
    std::vector<Ind> sigma;
    for (std::size_t r = 0; r + 1 < relations; ++r) {
      sigma.push_back(Ind{static_cast<RelId>(r),
                          {0, 1, 2},
                          static_cast<RelId>(r + 1),
                          {0, 1, 2}});
    }
    Ind target{0, {0, 1}, static_cast<RelId>(relations - 1), {0, 1}};
    std::uint64_t typed_wall =
        MedianWallNs(smoke ? 1 : 9, [&] { TypedIndImplies(*scheme, sigma, target); });
    IndImplication engine(scheme, sigma);
    std::uint64_t bfs_wall =
        MedianWallNs(smoke ? 1 : 9, [&] { engine.Implies(target); });
    reporter.Add("typed", relations, typed_wall, relations);
    reporter.Add("typed_general_bfs", relations, bfs_wall, relations);
  }
  reporter.WriteFile();
  std::fprintf(stderr, "BENCH_ind_special_cases.json written\n");
}

}  // namespace
}  // namespace ccfp

int main(int argc, char** argv) {
  return ccfp::RunBenchMain(argc, argv,
                            [](bool smoke) { ccfp::EmitJsonReport(smoke); });
}
