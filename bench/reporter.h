#ifndef CCFP_BENCH_REPORTER_H_
#define CCFP_BENCH_REPORTER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ccfp {

/// Shared machine-readable bench output. Each bench binary appends entries
/// (one per measured workload) and writes `BENCH_<bench>.json` next to the
/// working directory, so the perf trajectory across PRs can be diffed by
/// tooling instead of eyeballing google-benchmark console output.
///
/// Schema:
///   {"bench": "chase",
///    "entries": [{"name": "...", "n": 32, "wall_ns": 123456, "steps": 17,
///                 "peak_rss_bytes": 1048576},
///                ...]}
///
/// Entries recorded via AddThreaded additionally carry
/// `"threads": <count>` (omitted entirely for plain Add entries).
class BenchReporter {
 public:
  /// `bench` names the output file: BENCH_<bench>.json.
  explicit BenchReporter(std::string bench) : bench_(std::move(bench)) {}

  /// Records one measurement. `n` is the workload size parameter and
  /// `steps` a workload-defined work counter (chase steps, tuples, nodes
  /// visited, ...) so throughput can be derived from wall time. The
  /// process's peak RSS at Add time is stamped onto the entry — the
  /// physical complement of the logical byte accounting in
  /// util/memory_budget.h (0 where the platform cannot report it).
  void Add(const std::string& name, std::uint64_t n, std::uint64_t wall_ns,
           std::uint64_t steps);

  /// Like Add, but stamps an executor thread count onto the entry (for
  /// sequential-vs-parallel pairs). `threads` must be >= 1; plain Add
  /// leaves the field out of the JSON entirely, so existing reports and
  /// their diff tooling are unaffected.
  void AddThreaded(const std::string& name, std::uint64_t n,
                   std::uint64_t wall_ns, std::uint64_t steps,
                   unsigned threads);

  /// Current process peak resident set size in bytes (getrusage), or 0 if
  /// unavailable. Monotone over the process lifetime: entries added later
  /// report at least the peak of everything run before them.
  static std::uint64_t PeakRssBytes();

  /// Serializes all entries; stable field order, no external deps.
  std::string ToJson() const;

  /// Writes BENCH_<bench>.json into `dir` (default: current directory).
  /// Returns false (after logging to stderr) if the file cannot be written.
  bool WriteFile(const std::string& dir = ".") const;

 private:
  struct Entry {
    std::string name;
    std::uint64_t n = 0;
    std::uint64_t wall_ns = 0;
    std::uint64_t steps = 0;
    std::uint64_t peak_rss_bytes = 0;
    unsigned threads = 0;  ///< 0 = unset; omitted from the JSON
  };

  std::string bench_;
  std::vector<Entry> entries_;
};

/// Convenience: median-of-`reps` wall time of `fn` in nanoseconds.
/// `fn` must be idempotent; each rep runs it once.
template <typename Fn>
std::uint64_t MedianWallNs(int reps, Fn&& fn);

}  // namespace ccfp

#include <algorithm>
#include <chrono>

namespace ccfp {

template <typename Fn>
std::uint64_t MedianWallNs(int reps, Fn&& fn) {
  std::vector<std::uint64_t> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    auto start = std::chrono::steady_clock::now();
    fn();
    auto stop = std::chrono::steady_clock::now();
    samples.push_back(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
            .count()));
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

}  // namespace ccfp

#endif  // CCFP_BENCH_REPORTER_H_
