// Benchmarks for the ImplicationSolver façade: per-fragment routing
// latency (the façade must cost no more than calling the fragment's
// legacy entry point directly) and the staged mixed pipeline. Emits
// BENCH_solver.json with legacy-vs-facade entry pairs per fragment.
#include <cstdio>
#include <vector>

#include "bench/bench_main.h"
#include "bench/reporter.h"
#include "chase/chase.h"
#include "fd/closure.h"
#include "ind/implication.h"
#include "interact/unary_finite.h"
#include "solve/solver.h"
#include "util/strings.h"

namespace ccfp {
namespace {

/// A k-attribute FD chain on one relation: A0 -> A1 -> ... -> A(k-1).
struct FdChain {
  SchemePtr scheme;
  std::vector<Fd> fds;
  std::vector<Dependency> sigma;
  Fd target;  // A0 -> A(k-1): implied through the whole chain
};

FdChain MakeFdChain(std::size_t k) {
  FdChain c;
  std::vector<std::string> attrs;
  for (std::size_t a = 0; a < k; ++a) attrs.push_back(StrCat("A", a));
  c.scheme = MakeScheme({{"R", attrs}});
  for (AttrId a = 0; a + 1 < k; ++a) {
    c.fds.push_back(Fd{0, {a}, {static_cast<AttrId>(a + 1)}});
    c.sigma.push_back(Dependency(c.fds.back()));
  }
  c.target = Fd{0, {0}, {static_cast<AttrId>(k - 1)}};
  return c;
}

/// A k-relation IND chain: R0[A,B] <= R1[A,B] <= ... <= R(k-1)[A,B].
struct IndChain {
  SchemePtr scheme;
  std::vector<Ind> inds;
  std::vector<Dependency> sigma;
  Ind target;  // R0[A,B] <= R(k-1)[A,B]
};

IndChain MakeIndChain(std::size_t k) {
  IndChain c;
  std::vector<std::pair<std::string, std::vector<std::string>>> rels;
  for (std::size_t r = 0; r < k; ++r) {
    rels.emplace_back(StrCat("R", r), std::vector<std::string>{"A", "B"});
  }
  c.scheme = MakeScheme(rels);
  for (RelId r = 0; r + 1 < k; ++r) {
    c.inds.push_back(Ind{r, {0, 1}, static_cast<RelId>(r + 1), {0, 1}});
    c.sigma.push_back(Dependency(c.inds.back()));
  }
  c.target = Ind{0, {0, 1}, static_cast<RelId>(k - 1), {0, 1}};
  return c;
}

/// The Proposition 4.1 pullback shape: mixed sigma, derivation-decidable.
struct MixedInstance {
  SchemePtr scheme;
  std::vector<Fd> fds;
  std::vector<Ind> inds;
  std::vector<Dependency> sigma;
  Fd derivable;    // decided by the sound-rule stage
  Fd chase_only;   // not derivable; decided by the chase stage
};

MixedInstance MakeMixed() {
  MixedInstance m;
  m.scheme = MakeScheme({{"R", {"X", "Y"}}, {"S", {"T", "U"}}});
  m.inds.push_back(Ind{0, {0, 1}, 1, {0, 1}});
  m.fds.push_back(Fd{1, {0}, {1}});
  m.sigma = {Dependency(m.inds[0]), Dependency(m.fds[0])};
  m.derivable = Fd{0, {0}, {1}};
  m.chase_only = Fd{1, {0}, {1}};  // hypothesis itself: chase trivial
  return m;
}

void BM_FacadePureFd(benchmark::State& state) {
  FdChain c = MakeFdChain(static_cast<std::size_t>(state.range(0)));
  ImplicationSolver solver(c.scheme, c.sigma);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve(Dependency(c.target)));
  }
}
BENCHMARK(BM_FacadePureFd)->RangeMultiplier(4)->Range(8, 128);

void BM_LegacyPureFd(benchmark::State& state) {
  FdChain c = MakeFdChain(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(FdImplies(*c.scheme, c.fds, c.target));
  }
}
BENCHMARK(BM_LegacyPureFd)->RangeMultiplier(4)->Range(8, 128);

void BM_FacadePureInd(benchmark::State& state) {
  IndChain c = MakeIndChain(static_cast<std::size_t>(state.range(0)));
  ImplicationSolver solver(c.scheme, c.sigma);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve(Dependency(c.target)));
  }
}
BENCHMARK(BM_FacadePureInd)->RangeMultiplier(4)->Range(8, 128);

void BM_LegacyPureInd(benchmark::State& state) {
  IndChain c = MakeIndChain(static_cast<std::size_t>(state.range(0)));
  IndImplication engine(c.scheme, c.inds);
  IndDecisionOptions options;
  options.want_proof = true;  // the facade extracts a proof by default
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Decide(c.target, options));
  }
}
BENCHMARK(BM_LegacyPureInd)->RangeMultiplier(4)->Range(8, 128);

void BM_FacadeMixedDerivable(benchmark::State& state) {
  MixedInstance m = MakeMixed();
  ImplicationSolver solver(m.scheme, m.sigma);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve(Dependency(m.derivable)));
  }
}
BENCHMARK(BM_FacadeMixedDerivable);

void BM_LegacyMixedChase(benchmark::State& state) {
  MixedInstance m = MakeMixed();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ChaseImplies(m.scheme, m.fds, m.inds, Dependency(m.derivable)));
  }
}
BENCHMARK(BM_LegacyMixedChase);

/// JSON pairs: facade vs legacy per fragment (steps = chain length), plus
/// the staged-pipeline entries.
void EmitJsonReport(bool smoke) {
  BenchReporter reporter("solver");
  const std::size_t k = 64;
  {
    FdChain c = MakeFdChain(k);
    ImplicationSolver solver(c.scheme, c.sigma);
    std::uint64_t facade_wall = MedianWallNs(
        smoke ? 1 : 9, [&] { solver.Solve(Dependency(c.target)).value(); });
    std::uint64_t legacy_wall =
        MedianWallNs(smoke ? 1 : 9, [&] { FdImplies(*c.scheme, c.fds, c.target); });
    reporter.Add("pure_fd_facade", k, facade_wall, k);
    reporter.Add("pure_fd_legacy", k, legacy_wall, k);
  }
  {
    IndChain c = MakeIndChain(k);
    ImplicationSolver solver(c.scheme, c.sigma);
    IndImplication engine(c.scheme, c.inds);
    IndDecisionOptions options;
    options.want_proof = true;
    std::uint64_t facade_wall = MedianWallNs(
        smoke ? 1 : 9, [&] { solver.Solve(Dependency(c.target)).value(); });
    std::uint64_t legacy_wall =
        MedianWallNs(smoke ? 1 : 9, [&] { engine.Decide(c.target, options).value(); });
    reporter.Add("pure_ind_facade", k, facade_wall, k);
    reporter.Add("pure_ind_legacy", k, legacy_wall, k);
  }
  {
    // Unary fragment: the Theorem 4.4 gadget scaled to a 32-column chain.
    std::vector<std::string> attrs;
    for (std::size_t a = 0; a < 32; ++a) attrs.push_back(StrCat("A", a));
    SchemePtr scheme = MakeScheme({{"R", attrs}});
    std::vector<Fd> fds;
    std::vector<Ind> inds;
    std::vector<Dependency> sigma;
    for (AttrId a = 0; a + 1 < 32; ++a) {
      fds.push_back(Fd{0, {a}, {static_cast<AttrId>(a + 1)}});
      sigma.push_back(Dependency(fds.back()));
    }
    // Close the cardinality cycle (|r[A0]| <= |r[A31]| <= ... <= |r[A0]|)
    // so the counting rules reverse the whole chain: the target is
    // finitely implied — exactly the Theorem 4.4-style consequence.
    inds.push_back(Ind{0, {0}, 0, {31}});
    sigma.push_back(Dependency(inds.back()));
    Dependency target(Fd{0, {31}, {0}});
    SolveOptions finite;
    finite.semantics = ImplicationSemantics::kFinite;
    ImplicationSolver solver(scheme, sigma, finite);
    std::uint64_t facade_wall =
        MedianWallNs(smoke ? 1 : 9, [&] { solver.Solve(target).value(); });
    std::uint64_t legacy_wall = MedianWallNs(smoke ? 1 : 9, [&] {
      UnaryFiniteImplication engine(scheme, fds, inds);
      engine.Implies(target);
    });
    reporter.Add("unary_finite_facade", 32, facade_wall, 32);
    reporter.Add("unary_finite_legacy", 32, legacy_wall, 32);
  }
  {
    MixedInstance m = MakeMixed();
    ImplicationSolver solver(m.scheme, m.sigma);
    std::uint64_t derivation_wall = MedianWallNs(
        smoke ? 1 : 9, [&] { solver.Solve(Dependency(m.derivable)).value(); });
    std::uint64_t legacy_wall = MedianWallNs(smoke ? 1 : 9, [&] {
      ChaseImplies(m.scheme, m.fds, m.inds, Dependency(m.derivable))
          .value();
    });
    // A refuted query drives the full pipeline to the chase stage.
    Dependency refuted(Fd{0, {1}, {0}});
    std::uint64_t pipeline_wall =
        MedianWallNs(smoke ? 1 : 9, [&] { solver.Solve(refuted).value(); });
    reporter.Add("mixed_derivable_facade", 1, derivation_wall, 1);
    reporter.Add("mixed_chase_legacy", 1, legacy_wall, 1);
    reporter.Add("mixed_refuted_pipeline_facade", 1, pipeline_wall, 1);
  }
  reporter.WriteFile();
  std::fprintf(stderr, "BENCH_solver.json written\n");
}

}  // namespace
}  // namespace ccfp

int main(int argc, char** argv) {
  return ccfp::RunBenchMain(argc, argv,
                            [](bool smoke) { ccfp::EmitJsonReport(smoke); });
}
