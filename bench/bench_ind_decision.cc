// E1: the Corollary 3.2 decision procedure on random IND sets — cost
// tracks the reachable expression space, which grows with IND width and
// relation count (polynomial for fixed width, per the paper's "k-ary or
// less" discussion; exponential in general).
#include <string_view>

#include <benchmark/benchmark.h>

#include "bench/bench_main.h"
#include "bench/reporter.h"
#include "ind/implication.h"
#include "ind/special.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/strings.h"

namespace ccfp {
namespace {

struct Instance {
  SchemePtr scheme;
  std::vector<Ind> sigma;
  Ind target;
};

Instance RandomInstance(std::size_t relations, std::size_t arity,
                        std::size_t inds, std::size_t width,
                        std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<std::pair<std::string, std::vector<std::string>>> rels;
  for (std::size_t r = 0; r < relations; ++r) {
    std::vector<std::string> attrs;
    for (std::size_t a = 0; a < arity; ++a) {
      attrs.push_back(StrCat("A", a));
    }
    rels.emplace_back(StrCat("R", r), attrs);
  }
  Instance instance;
  instance.scheme = MakeScheme(rels);
  auto random_seq = [&](std::size_t w) {
    std::vector<AttrId> all(arity);
    for (AttrId a = 0; a < arity; ++a) all[a] = a;
    for (std::size_t i = arity; i > 1; --i) {
      std::swap(all[i - 1], all[rng.Below(i)]);
    }
    all.resize(w);
    return all;
  };
  for (std::size_t i = 0; i < inds; ++i) {
    RelId r1 = static_cast<RelId>(rng.Below(relations));
    RelId r2 = static_cast<RelId>(rng.Below(relations));
    instance.sigma.push_back(
        Ind{r1, random_seq(width), r2, random_seq(width)});
  }
  RelId t1 = static_cast<RelId>(rng.Below(relations));
  RelId t2 = static_cast<RelId>(rng.Below(relations));
  instance.target = Ind{t1, random_seq(width), t2, random_seq(width)};
  return instance;
}

// Sweep the number of INDs at fixed width 2.
void BM_IndDecisionVsSigmaSize(benchmark::State& state) {
  Instance instance = RandomInstance(
      /*relations=*/8, /*arity=*/4,
      /*inds=*/static_cast<std::size_t>(state.range(0)), /*width=*/2,
      /*seed=*/7);
  IndImplication engine(instance.scheme, instance.sigma);
  std::uint64_t visited = 0;
  for (auto _ : state) {
    Result<IndDecision> decision = engine.Decide(instance.target);
    visited = decision.ok() ? decision->expressions_visited : 0;
    benchmark::DoNotOptimize(decision);
  }
  state.counters["inds"] = static_cast<double>(state.range(0));
  state.counters["visited"] = static_cast<double>(visited);
}

BENCHMARK(BM_IndDecisionVsSigmaSize)->RangeMultiplier(2)->Range(4, 256);

// Sweep the IND width at fixed Sigma size: the expression space (and so the
// worst-case cost) is sum_rel P(arity, width) — exponential in width.
void BM_IndDecisionVsWidth(benchmark::State& state) {
  const std::size_t width = static_cast<std::size_t>(state.range(0));
  Instance instance = RandomInstance(/*relations=*/4, /*arity=*/8,
                                     /*inds=*/48, width, /*seed=*/11);
  IndImplication engine(instance.scheme, instance.sigma);
  std::uint64_t visited = 0;
  for (auto _ : state) {
    Result<IndDecision> decision = engine.Decide(instance.target);
    visited = decision.ok() ? decision->expressions_visited : 0;
    benchmark::DoNotOptimize(decision);
  }
  state.counters["width"] = static_cast<double>(width);
  state.counters["visited"] = static_cast<double>(visited);
  state.counters["expr_space"] =
      static_cast<double>(ExpressionSpaceBound(*instance.scheme, width));
}

BENCHMARK(BM_IndDecisionVsWidth)->DenseRange(1, 6);

// Chain instances: Sigma a path R_0 -> R_1 -> ... -> R_L; decision walks
// the whole chain.
void BM_IndDecisionChain(benchmark::State& state) {
  const std::size_t length = static_cast<std::size_t>(state.range(0));
  std::vector<std::pair<std::string, std::vector<std::string>>> rels;
  for (std::size_t r = 0; r <= length; ++r) {
    rels.emplace_back(StrCat("R", r),
                      std::vector<std::string>{"A", "B"});
  }
  SchemePtr scheme = MakeScheme(rels);
  std::vector<Ind> sigma;
  for (std::size_t r = 0; r < length; ++r) {
    sigma.push_back(Ind{static_cast<RelId>(r),
                        {0, 1},
                        static_cast<RelId>(r + 1),
                        {0, 1}});
  }
  Ind target{0, {0, 1}, static_cast<RelId>(length), {0, 1}};
  IndImplication engine(scheme, sigma);
  for (auto _ : state) {
    Result<IndDecision> decision = engine.Decide(target);
    benchmark::DoNotOptimize(decision);
  }
  state.counters["chain"] = static_cast<double>(length);
  state.SetComplexityN(static_cast<std::int64_t>(length));
}

BENCHMARK(BM_IndDecisionChain)
    ->RangeMultiplier(2)
    ->Range(8, 1024)
    ->Complexity();

/// Times the chain decision workload and writes BENCH_ind_decision.json
/// (steps = expressions visited by the BFS).
void EmitJsonReport(bool smoke) {
  BenchReporter reporter("ind_decision");
  for (std::size_t length : {64, 256, 1024}) {
    if (smoke && length != 64) continue;
    std::vector<std::pair<std::string, std::vector<std::string>>> rels;
    for (std::size_t r = 0; r <= length; ++r) {
      rels.emplace_back(StrCat("R", r), std::vector<std::string>{"A", "B"});
    }
    SchemePtr scheme = MakeScheme(rels);
    std::vector<Ind> sigma;
    for (std::size_t r = 0; r < length; ++r) {
      sigma.push_back(Ind{static_cast<RelId>(r),
                          {0, 1},
                          static_cast<RelId>(r + 1),
                          {0, 1}});
    }
    Ind target{0, {0, 1}, static_cast<RelId>(length), {0, 1}};
    IndImplication engine(scheme, sigma);
    std::uint64_t visited = 0;
    std::uint64_t wall = MedianWallNs(smoke ? 1 : 5, [&] {
      Result<IndDecision> decision = engine.Decide(target);
      CCFP_CHECK(decision.ok());
      visited = decision->expressions_visited;
    });
    reporter.Add("chain_decide", length, wall, visited);
  }
  reporter.WriteFile();
}

}  // namespace
}  // namespace ccfp

int main(int argc, char** argv) {
  return ccfp::RunBenchMain(argc, argv,
                            [](bool smoke) { ccfp::EmitJsonReport(smoke); });
}
