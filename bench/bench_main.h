#ifndef CCFP_BENCH_BENCH_MAIN_H_
#define CCFP_BENCH_BENCH_MAIN_H_

#include <string_view>

#include <benchmark/benchmark.h>

namespace ccfp {

/// Shared main() body for bench binaries that emit a BENCH_*.json report:
/// runs `emit` first (so the JSON exists even when benchmarks are filtered
/// out), skipping it for introspection-only invocations
/// (--benchmark_list_tests), then hands over to google-benchmark.
template <typename EmitFn>
int RunBenchMain(int argc, char** argv, EmitFn&& emit) {
  bool list_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).starts_with("--benchmark_list_tests")) {
      list_only = true;
    }
  }
  if (!list_only) emit();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace ccfp

#endif  // CCFP_BENCH_BENCH_MAIN_H_
