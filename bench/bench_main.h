#ifndef CCFP_BENCH_BENCH_MAIN_H_
#define CCFP_BENCH_BENCH_MAIN_H_

#include <string_view>

#include <benchmark/benchmark.h>

namespace ccfp {

/// Shared main() body for bench binaries that emit a BENCH_*.json report:
/// runs `emit(smoke)` first (so the JSON exists even when benchmarks are
/// filtered out), skipping it for introspection-only invocations
/// (--benchmark_list_tests), then hands over to google-benchmark.
///
/// `--smoke` runs emit in smoke mode and exits without entering
/// google-benchmark at all: every workload shrinks to a tiny n and a
/// single rep, so the binary finishes in well under a second while still
/// driving the full measurement + reporting path. The `check-bench` ctest
/// entries run exactly this — bench bit-rot (a workload drifting out of
/// sync with the library API, a CHECK tripping on a changed verdict)
/// fails the suite instead of rotting silently until the next manual run.
template <typename EmitFn>
int RunBenchMain(int argc, char** argv, EmitFn&& emit) {
  bool list_only = false;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.starts_with("--benchmark_list_tests")) list_only = true;
    if (arg == "--smoke") {
      emit(/*smoke=*/true);
      return 0;
    }
  }
  if (!list_only) emit(/*smoke=*/false);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace ccfp

#endif  // CCFP_BENCH_BENCH_MAIN_H_
