// E12: bounded counterexample search — the id-space enumeration engine
// (integer-coded candidates, incremental per-dependency counters, sound
// pruning) against the legacy per-candidate materializing engine, on
// exhaustive no-counterexample workloads where the whole bounded space
// must be scanned. Emitted to BENCH_bounded_search.json.
#include <cstdio>
#include <string_view>

#include <benchmark/benchmark.h>

#include "bench/bench_main.h"
#include "bench/reporter.h"
#include "core/dependency.h"
#include "search/bounded.h"
#include "util/check.h"

namespace ccfp {
namespace {

struct Workload {
  const char* name;
  SchemePtr scheme;
  std::vector<Dependency> premises;
  Dependency conclusion;
  BoundedSearchOptions options;
  /// Whether a counterexample exists within the bound (sanity-checked).
  bool expect_counterexample = false;
};

/// {A -> B, B -> C} |= A -> C over one ternary relation: implied, so both
/// engines scan the full bounded space (3304 subsets at domain 3, <= 3
/// tuples). Stresses per-candidate FD checking; the id-space engine also
/// prunes every subtree that already violates a premise FD.
Workload TransitiveFdWorkload(std::size_t domain,
                              std::size_t max_tuples) {
  SchemePtr scheme = MakeScheme({{"R", {"A", "B", "C"}}});
  Workload w{
      "transitive_fd",
      scheme,
      {Dependency(MakeFd(*scheme, "R", {"A"}, {"B"})),
       Dependency(MakeFd(*scheme, "R", {"B"}, {"C"}))},
      Dependency(MakeFd(*scheme, "R", {"A"}, {"C"})),
      {},
  };
  w.options.domain_size = domain;
  w.options.max_tuples_per_relation = max_tuples;
  return w;
}

/// Theorem 4.4 finite implication: {R: A -> B, R[A] <= R[B]} |=fin
/// R[B] <= R[A] — no finite counterexample at any bound, full scan with a
/// self-IND in play. Stresses the incremental IND counters.
Workload Theorem44Workload(std::size_t domain, std::size_t max_tuples) {
  SchemePtr scheme = MakeScheme({{"R", {"A", "B"}}});
  Workload w{
      "theorem44_finite",
      scheme,
      {Dependency(MakeFd(*scheme, "R", {"A"}, {"B"})),
       Dependency(MakeInd(*scheme, "R", {"A"}, "R", {"B"}))},
      Dependency(MakeInd(*scheme, "R", {"B"}, "R", {"A"})),
      {},
  };
  w.options.domain_size = domain;
  w.options.max_tuples_per_relation = max_tuples;
  return w;
}

/// Two-relation product space where the conclusion involves only the first
/// relation: the id-space engine prunes the entire second-relation subtree
/// at the first boundary, the legacy engine enumerates the full product.
Workload ProductPruningWorkload(std::size_t domain,
                                std::size_t max_tuples) {
  SchemePtr scheme = MakeScheme({{"R", {"A", "B"}}, {"S", {"C", "D"}}});
  Workload w{
      "product_pruning",
      scheme,
      {Dependency(MakeFd(*scheme, "R", {"A"}, {"B"})),
       Dependency(MakeFd(*scheme, "S", {"C"}, {"D"}))},
      Dependency(MakeFd(*scheme, "R", {"A"}, {"B"})),
      {},
  };
  w.options.domain_size = domain;
  w.options.max_tuples_per_relation = max_tuples;
  return w;
}

std::uint64_t RunOnce(const Workload& w, BoundedSearchEngine engine,
                      std::uint64_t* candidates, unsigned threads = 0) {
  BoundedSearchOptions options = w.options;
  options.engine = engine;
  options.threads = threads;
  Result<BoundedSearchResult> result =
      FindCounterexample(w.scheme, w.premises, w.conclusion, options);
  CCFP_CHECK(result.ok());
  CCFP_CHECK(result->exhausted);
  CCFP_CHECK(result->counterexample.has_value() == w.expect_counterexample);
  *candidates = result->candidates_tested;
  return 0;
}

void BM_BoundedSearch(benchmark::State& state) {
  const std::size_t workload = static_cast<std::size_t>(state.range(0));
  const std::size_t engine_id = static_cast<std::size_t>(state.range(1));
  Workload w = workload == 0   ? TransitiveFdWorkload(3, 3)
               : workload == 1 ? Theorem44Workload(3, 3)
                               : ProductPruningWorkload(3, 3);
  BoundedSearchEngine engine = engine_id == 0 ? BoundedSearchEngine::kLegacy
                               : engine_id == 1
                                   ? BoundedSearchEngine::kIdSpace
                                   : BoundedSearchEngine::kParallel;
  std::uint64_t candidates = 0;
  for (auto _ : state) {
    RunOnce(w, engine, &candidates, engine_id == 2 ? 4 : 0);
  }
  state.counters["engine"] = static_cast<double>(engine_id);
  state.counters["candidates"] = static_cast<double>(candidates);
}

BENCHMARK(BM_BoundedSearch)
    ->ArgsProduct({{0, 1, 2}, {0, 1, 2}})
    ->Unit(benchmark::kMillisecond);

/// Times each workload under both engines and writes
/// BENCH_bounded_search.json (entries: n = domain size, steps = candidate
/// evaluations of that engine).
void EmitJsonReport(bool smoke) {
  BenchReporter reporter("bounded_search");
  std::vector<Workload> workloads = {
      TransitiveFdWorkload(3, 3),
      TransitiveFdWorkload(4, 2),
      Theorem44Workload(3, 3),
      ProductPruningWorkload(3, 3),
  };
  if (smoke) workloads.erase(workloads.begin() + 1, workloads.end());
  for (const Workload& w : workloads) {
    std::uint64_t wall[2] = {0, 0};
    std::uint64_t candidates[2] = {0, 0};
    for (int engine = 0; engine < 2; ++engine) {
      BoundedSearchEngine e = engine == 1 ? BoundedSearchEngine::kIdSpace
                                          : BoundedSearchEngine::kLegacy;
      wall[engine] = MedianWallNs(smoke ? 1 : 5, [&] {
        RunOnce(w, e, &candidates[engine]);
      });
    }
    std::string legacy_name = std::string(w.name) + "_legacy";
    std::string idspace_name = std::string(w.name) + "_idspace";
    reporter.Add(legacy_name, w.options.domain_size, wall[0],
                 candidates[0]);
    reporter.Add(idspace_name, w.options.domain_size, wall[1],
                 candidates[1]);
    std::fprintf(stderr,
                 "%s d=%zu: legacy %.2f ms (%llu candidates), id-space "
                 "%.2f ms (%llu boundaries), speedup %.1fx\n",
                 w.name, w.options.domain_size, wall[0] / 1e6,
                 static_cast<unsigned long long>(candidates[0]),
                 wall[1] / 1e6,
                 static_cast<unsigned long long>(candidates[1]),
                 static_cast<double>(wall[0]) /
                     static_cast<double>(wall[1] == 0 ? 1 : wall[1]));
    // Sequential-vs-parallel pairs: the id-space engine above is the
    // sequential baseline; the parallel engine runs the same workload at
    // each thread count. Scaling is hardware-bound — on a single-core
    // host all counts time roughly like the baseline plus pool overhead.
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
      std::uint64_t parallel_candidates = 0;
      std::uint64_t parallel_wall = MedianWallNs(smoke ? 1 : 5, [&] {
        RunOnce(w, BoundedSearchEngine::kParallel, &parallel_candidates,
                threads);
      });
      reporter.AddThreaded(std::string(w.name) + "_parallel",
                           w.options.domain_size, parallel_wall,
                           parallel_candidates, threads);
      std::fprintf(stderr,
                   "%s d=%zu: parallel t=%u %.2f ms (%llu boundaries), "
                   "vs id-space %.2fx\n",
                   w.name, w.options.domain_size, threads,
                   parallel_wall / 1e6,
                   static_cast<unsigned long long>(parallel_candidates),
                   static_cast<double>(wall[1]) /
                       static_cast<double>(
                           parallel_wall == 0 ? 1 : parallel_wall));
    }
  }
  reporter.WriteFile();
}

}  // namespace
}  // namespace ccfp

int main(int argc, char** argv) {
  return ccfp::RunBenchMain(argc, argv,
                            [](bool smoke) { ccfp::EmitJsonReport(smoke); });
}
