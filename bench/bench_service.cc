// E15: the concurrent solver service (service/service.h). BENCH_service.json
// records two families:
//
//   * startup pairs — `startup_private/<n>` is the full cost of standing up
//     a private substrate over n warm tuples (interning, sigma
//     verification, premine partition compilation: SolverCore::Build);
//     `startup_shared/<n>` is opening the Nth session against a service
//     whose core is already built (a copy-on-write fork). The gap is the
//     capital the shared core amortizes across sessions.
//   * solve throughput — `solve_throughput/t<k>` drives k caller threads,
//     each with its own session over one shared core, through a fixed
//     mixed-fragment query stream at TaskPool width k (AddThreaded entries
//     at t=1/2/4/8; steps = queries answered).
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_main.h"
#include "bench/reporter.h"
#include "core/database.h"
#include "core/dependency.h"
#include "core/schema.h"
#include "service/service.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/strings.h"

namespace ccfp {
namespace {

SchemePtr BenchScheme() {
  return MakeScheme({{"R", {"A", "B", "C"}}, {"S", {"D", "E"}}});
}

std::vector<Dependency> BenchSigma() {
  return {Dependency(Fd{0, {0}, {1}}), Dependency(Fd{0, {1}, {2}}),
          Dependency(Ind{0, {0}, 1, {0}})};
}

/// n tuples with skewed key reuse, so the premined projections have
/// non-trivial partitions (the compilation the shared core amortizes).
Database WarmData(const SchemePtr& scheme, std::size_t n) {
  SplitMix64 rng(n * 7919 + 3);
  Database db(scheme);
  for (std::size_t i = 0; i < n; ++i) {
    std::int64_t a = static_cast<std::int64_t>(i);
    std::int64_t b = static_cast<std::int64_t>(rng.Below(n / 4 + 1));
    db.Insert(0, {Value::Int(a), Value::Int(b), Value::Int(b % 7)});
    db.Insert(1, {Value::Int(a), Value::Int(b)});
  }
  return db;
}

/// Mixed-fragment targets (non-unary, so they route through the
/// chase/search race rather than the unary decision engines).
std::vector<Dependency> QueryMix() {
  return {
      Dependency(Fd{0, {0}, {1, 2}}),  // implied (A->B->C)
      Dependency(Fd{0, {2}, {0, 1}}),  // refuted
      Dependency(Fd{0, {1}, {0, 2}}),  // refuted (B -> A fails)
      Dependency(Fd{0, {0, 1}, {2}}),  // implied
  };
}

std::uint64_t RunSessions(SolverService& service,
                          const std::vector<SolverService::SessionId>& ids,
                          std::size_t rounds) {
  std::vector<Dependency> queries = QueryMix();
  std::vector<std::thread> callers;
  callers.reserve(ids.size());
  for (SolverService::SessionId id : ids) {
    callers.emplace_back([&service, &queries, id, rounds] {
      for (std::size_t r = 0; r < rounds; ++r) {
        for (const Dependency& q : queries) {
          Result<Verdict> v = service.Solve(id, q);
          CCFP_CHECK(v.ok());
          CCFP_CHECK(v->outcome != ImplicationVerdict::kUnknown);
        }
      }
    });
  }
  for (std::thread& t : callers) t.join();
  return ids.size() * rounds * queries.size();
}

void EmitJsonReport(bool smoke) {
  BenchReporter reporter("service");
  SchemePtr scheme = BenchScheme();

  // Startup pairs: private substrate build vs shared-core session fork.
  for (std::size_t n : {256u, 1024u, 4096u}) {
    if (smoke && n != 256) continue;
    Database warm = WarmData(scheme, n);
    std::uint64_t private_ns = MedianWallNs(smoke ? 1 : 5, [&] {
      Result<std::shared_ptr<const SolverCore>> core =
          SolverCore::Build(scheme, BenchSigma(), &warm);
      CCFP_CHECK(core.ok());
      benchmark::DoNotOptimize(core);
    });

    SolverService service;
    Result<SolverService::SessionId> first = service.OpenMine(scheme, warm);
    CCFP_CHECK(first.ok());  // pays the build; later opens fork it
    std::uint64_t shared_ns = MedianWallNs(smoke ? 1 : 5, [&] {
      Result<SolverService::SessionId> id = service.OpenMine(scheme, warm);
      CCFP_CHECK(id.ok());
      CCFP_CHECK(service.Close(*id).ok());
    });
    reporter.Add(StrCat("startup_private/", n), n, private_ns,
                 warm.TotalTuples());
    reporter.Add(StrCat("startup_shared/", n), n, shared_ns,
                 warm.TotalTuples());
    std::fprintf(stderr,
                 "n=%zu: private build %.1f us, shared open %.1f us "
                 "(%.0fx cheaper)\n",
                 n, private_ns / 1e3, shared_ns / 1e3,
                 static_cast<double>(private_ns) /
                     static_cast<double>(shared_ns ? shared_ns : 1));
  }

  // Throughput at t caller threads == t pool workers, one session each.
  constexpr std::size_t kRounds = 64;
  for (unsigned t : {1u, 2u, 4u, 8u}) {
    if (smoke && t != 1) continue;
    SolverService::Options options;
    options.threads = t;
    SolverService service(options);
    std::vector<SolverService::SessionId> ids;
    for (unsigned s = 0; s < t; ++s) {
      Result<SolverService::SessionId> id =
          service.OpenSolve(scheme, BenchSigma());
      CCFP_CHECK(id.ok());
      ids.push_back(*id);
    }
    std::uint64_t queries = 0;
    std::uint64_t wall_ns = MedianWallNs(
        smoke ? 1 : 3, [&] { queries = RunSessions(service, ids, kRounds); });
    reporter.AddThreaded(StrCat("solve_throughput/t", t), queries, wall_ns,
                         queries, t);
    std::fprintf(stderr,
                 "t=%u: %llu queries in %.1f ms (%.0f q/s)\n", t,
                 static_cast<unsigned long long>(queries), wall_ns / 1e6,
                 queries / (wall_ns / 1e9));
  }

  reporter.WriteFile();
}

void BM_SharedSessionOpen(benchmark::State& state) {
  SchemePtr scheme = BenchScheme();
  Database warm = WarmData(scheme, static_cast<std::size_t>(state.range(0)));
  SolverService service;
  Result<SolverService::SessionId> first = service.OpenMine(scheme, warm);
  CCFP_CHECK(first.ok());
  for (auto _ : state) {
    Result<SolverService::SessionId> id = service.OpenMine(scheme, warm);
    CCFP_CHECK(id.ok());
    CCFP_CHECK(service.Close(*id).ok());
  }
}

BENCHMARK(BM_SharedSessionOpen)->Range(256, 4096);

void BM_ServiceSolve(benchmark::State& state) {
  SchemePtr scheme = BenchScheme();
  SolverService::Options options;
  options.threads = static_cast<unsigned>(state.range(0));
  SolverService service(options);
  std::vector<SolverService::SessionId> ids;
  for (std::int64_t s = 0; s < state.range(0); ++s) {
    Result<SolverService::SessionId> id =
        service.OpenSolve(scheme, BenchSigma());
    CCFP_CHECK(id.ok());
    ids.push_back(*id);
  }
  std::uint64_t queries = 0;
  for (auto _ : state) {
    queries += RunSessions(service, ids, 8);
  }
  state.counters["queries"] = static_cast<double>(queries);
}

BENCHMARK(BM_ServiceSolve)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
}  // namespace ccfp

int main(int argc, char** argv) {
  return ccfp::RunBenchMain(argc, argv,
                            [](bool smoke) { ccfp::EmitJsonReport(smoke); });
}
