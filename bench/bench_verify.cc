// E15: the incremental verification layer. BENCH_verify.json records a
// full-sweep vs incremental entry pair per workload: the sweep engine
// re-checks every dependency against the whole database each round
// (core/model_check.h over cached partitions), the incremental engine
// consumes the workspace change feed through per-dependency watchers
// (verify/verifier.h) and answers from counters.
#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench/bench_main.h"
#include "bench/reporter.h"
#include "chase/workspace_chase.h"
#include "core/workspace.h"
#include "util/budget.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/task_pool.h"
#include "verify/verifier.h"

namespace ccfp {
namespace {

SchemePtr MakeSingleRelationScheme(std::size_t arity) {
  std::vector<std::string> attrs;
  for (std::size_t i = 0; i < arity; ++i) attrs.push_back(StrCat("A", i));
  return MakeScheme({{"R", std::move(attrs)}});
}

/// All FDs over one relation with |lhs| <= 2 and singleton rhs — the
/// Armstrong-style verification universe.
std::vector<Dependency> FdUniverse(std::size_t arity) {
  std::vector<Dependency> out;
  for (AttrId a = 0; a < arity; ++a) {
    for (AttrId rhs = 0; rhs < arity; ++rhs) {
      if (rhs != a) out.push_back(Dependency(Fd{0, {a}, {rhs}}));
    }
    for (AttrId b = a + 1; b < arity; ++b) {
      for (AttrId rhs = 0; rhs < arity; ++rhs) {
        if (rhs == a || rhs == b) continue;
        out.push_back(Dependency(Fd{0, {a, b}, {rhs}}));
      }
    }
  }
  return out;
}

/// Mostly-functional data: every column is a deterministic function of a
/// key drawn from a small domain, with occasional noise rows. Most
/// universe FDs therefore *hold* — the realistic verification regime
/// (and the regime where a sweep must scan whole relations instead of
/// early-exiting on the first violation).
void AppendRandomTuple(InternedWorkspace& ws, SplitMix64& rng,
                       std::size_t arity, std::size_t domain) {
  IdTuple t(arity, 0);
  std::uint64_t k = rng.Below(domain);
  bool noise = rng.Chance(1, 64);
  for (std::size_t a = 0; a < arity; ++a) {
    std::uint64_t v = noise ? rng.Below(domain * arity)
                            : k * arity + a;  // column-a image of key k
    t[a] = ws.Intern(Value::Int(static_cast<std::int64_t>(v)));
  }
  ws.Append(0, std::move(t));
}

/// Workload A: an append-only verify loop — R rounds of "append a small
/// delta, then re-establish every universe member's verdict". This is the
/// Armstrong/mining access pattern with no merges involved.
void BenchAppendRounds(BenchReporter& reporter, bool smoke) {
  const std::size_t arity = 10;
  const std::size_t base = smoke ? 64 : 3000;
  const std::size_t rounds = smoke ? 4 : 160;
  const std::size_t delta = 2;
  std::vector<Dependency> universe = FdUniverse(arity);
  SchemePtr scheme = MakeSingleRelationScheme(arity);

  std::uint64_t wall[2] = {0, 0};
  std::uint64_t checks = universe.size() * rounds;
  for (int engine = 0; engine < 2; ++engine) {
    wall[engine] = MedianWallNs(smoke ? 1 : 3, [&] {
      SplitMix64 rng(7);
      InternedWorkspace ws(scheme);
      for (std::size_t i = 0; i < base; ++i) {
        AppendRandomTuple(ws, rng, arity, 800);
      }
      IncrementalVerifier verifier(&ws);
      std::vector<WatchId> ids;
      if (engine == 1) {
        for (const Dependency& dep : universe) {
          ids.push_back(verifier.Watch(dep));
        }
      }
      std::size_t satisfied = 0;
      for (std::size_t round = 0; round < rounds; ++round) {
        for (std::size_t d = 0; d < delta; ++d) {
          AppendRandomTuple(ws, rng, arity, 800);
        }
        if (engine == 1) {
          verifier.CatchUp();
          for (WatchId id : ids) satisfied += verifier.Satisfies(id);
        } else {
          for (const Dependency& dep : universe) {
            satisfied += ws.Satisfies(dep);
          }
        }
      }
      benchmark::DoNotOptimize(satisfied);
    });
  }
  reporter.Add("append_rounds_fullsweep", universe.size(), wall[0], checks);
  reporter.Add("append_rounds_incremental", universe.size(), wall[1],
               checks);
  std::fprintf(stderr,
               "append_rounds (universe %zu, %zu rounds): fullsweep %.2f "
               "ms, incremental %.2f ms, speedup %.2fx\n",
               universe.size(), rounds, wall[0] / 1e6, wall[1] / 1e6,
               static_cast<double>(wall[0]) /
                   static_cast<double>(wall[1] == 0 ? 1 : wall[1]));
}

/// Workload B: merge-heavy mid-chase verification — every round appends an
/// FD-violating pair, resumes the chase (whose merges rewrite/kill tuples
/// through the surgical partition repair), and re-verifies the universe at
/// the fixpoint. Before PR 5 each round's merges invalidated every cached
/// partition; now the sweep pays a per-round re-scan and the watchers pay
/// only the delta.
void BenchChaseRounds(BenchReporter& reporter, bool smoke) {
  const std::size_t arity = 8;
  const std::size_t base = smoke ? 64 : 2000;
  const std::size_t rounds = smoke ? 4 : 192;
  std::vector<Dependency> universe = FdUniverse(arity);
  SchemePtr scheme = MakeSingleRelationScheme(arity);
  std::vector<Fd> sigma = {Fd{0, {0}, {1}}, Fd{0, {1}, {2}}};

  std::uint64_t wall[2] = {0, 0};
  std::uint64_t checks = universe.size() * rounds;
  for (int engine = 0; engine < 2; ++engine) {
    wall[engine] = MedianWallNs(smoke ? 1 : 3, [&] {
      InternedWorkspace ws(scheme);
      for (std::size_t i = 0; i < base; ++i) {
        IdTuple t(arity, 0);
        for (std::size_t a = 0; a < arity; ++a) t[a] = ws.InternFreshNull();
        ws.Append(0, std::move(t));
      }
      WorkspaceChase chaser(&ws, sigma, {});
      IncrementalVerifier verifier(&ws);
      std::vector<WatchId> ids;
      if (engine == 1) {
        for (const Dependency& dep : universe) {
          ids.push_back(verifier.Watch(dep));
        }
      }
      std::size_t satisfied = 0;
      for (std::size_t round = 0; round < rounds; ++round) {
        // An A0-agreeing pair: the chase merges its A1 values (and
        // transitively A2), exercising rewrite/kill repair.
        IdTuple t1(arity, 0), t2(arity, 0);
        for (std::size_t a = 0; a < arity; ++a) {
          t1[a] = ws.InternFreshNull();
          t2[a] = a == 0 ? t1[a] : ws.InternFreshNull();
        }
        ws.Append(0, std::move(t1));
        ws.Append(0, std::move(t2));
        Result<WorkspaceChaseStats> run = chaser.Run({});
        CCFP_CHECK(run.ok() && run->outcome == ChaseOutcome::kFixpoint);
        if (engine == 1) {
          verifier.CatchUp();
          for (WatchId id : ids) satisfied += verifier.Satisfies(id);
        } else {
          for (const Dependency& dep : universe) {
            satisfied += ws.Satisfies(dep);
          }
        }
      }
      benchmark::DoNotOptimize(satisfied);
    });
  }
  reporter.Add("chase_rounds_fullsweep", universe.size(), wall[0], checks);
  reporter.Add("chase_rounds_incremental", universe.size(), wall[1], checks);
  std::fprintf(stderr,
               "chase_rounds (universe %zu, %zu rounds): fullsweep %.2f "
               "ms, incremental %.2f ms, speedup %.2fx\n",
               universe.size(), rounds, wall[0] / 1e6, wall[1] / 1e6,
               static_cast<double>(wall[0]) /
                   static_cast<double>(wall[1] == 0 ? 1 : wall[1]));
}

/// Workload C: sequential-vs-parallel CatchUp pairs — the append-rounds
/// workload drained via CatchUp() (the baseline entry) and via
/// CatchUpParallel at 1/2/4/8 executors (AddThreaded entries). Scaling is
/// hardware-bound: on a single-core host every thread count times roughly
/// like the baseline plus fan-out overhead.
void BenchParallelCatchUp(BenchReporter& reporter, bool smoke) {
  const std::size_t arity = 10;
  const std::size_t base = smoke ? 64 : 3000;
  const std::size_t rounds = smoke ? 4 : 160;
  const std::size_t delta = 2;
  std::vector<Dependency> universe = FdUniverse(arity);
  SchemePtr scheme = MakeSingleRelationScheme(arity);
  std::uint64_t checks = universe.size() * rounds;

  auto run = [&](TaskPool* pool) {
    SplitMix64 rng(7);
    InternedWorkspace ws(scheme);
    for (std::size_t i = 0; i < base; ++i) {
      AppendRandomTuple(ws, rng, arity, 800);
    }
    IncrementalVerifier verifier(&ws);
    std::vector<WatchId> ids;
    for (const Dependency& dep : universe) {
      ids.push_back(verifier.Watch(dep));
    }
    std::size_t satisfied = 0;
    for (std::size_t round = 0; round < rounds; ++round) {
      for (std::size_t d = 0; d < delta; ++d) {
        AppendRandomTuple(ws, rng, arity, 800);
      }
      if (pool != nullptr) {
        Status st = verifier.CatchUpParallel(Budget::Unlimited(), *pool);
        CCFP_CHECK(st.ok());
      } else {
        verifier.CatchUp();
      }
      for (WatchId id : ids) satisfied += verifier.Satisfies(id);
    }
    benchmark::DoNotOptimize(satisfied);
  };

  std::uint64_t seq_wall = MedianWallNs(smoke ? 1 : 3, [&] { run(nullptr); });
  reporter.Add("catchup_sequential", universe.size(), seq_wall, checks);
  std::fprintf(stderr, "catchup (universe %zu): sequential %.2f ms\n",
               universe.size(), seq_wall / 1e6);
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    TaskPool pool(threads);
    std::uint64_t wall = MedianWallNs(smoke ? 1 : 3, [&] { run(&pool); });
    reporter.AddThreaded("catchup_parallel", universe.size(), wall, checks,
                         threads);
    std::fprintf(stderr,
                 "catchup parallel t=%u: %.2f ms (%.2fx vs sequential)\n",
                 threads, wall / 1e6,
                 static_cast<double>(seq_wall) /
                     static_cast<double>(wall == 0 ? 1 : wall));
  }
}

void EmitJsonReport(bool smoke) {
  BenchReporter reporter("verify");
  BenchAppendRounds(reporter, smoke);
  BenchChaseRounds(reporter, smoke);
  BenchParallelCatchUp(reporter, smoke);
  reporter.WriteFile();
}

void BM_VerifyAppendRound(benchmark::State& state) {
  const std::size_t arity = 10;
  std::vector<Dependency> universe = FdUniverse(arity);
  SchemePtr scheme = MakeSingleRelationScheme(arity);
  SplitMix64 rng(11);
  InternedWorkspace ws(scheme);
  for (int i = 0; i < 160; ++i) AppendRandomTuple(ws, rng, arity, 800);
  IncrementalVerifier verifier(&ws);
  std::vector<WatchId> ids;
  for (const Dependency& dep : universe) ids.push_back(verifier.Watch(dep));
  std::size_t satisfied = 0;
  for (auto _ : state) {
    AppendRandomTuple(ws, rng, arity, 800);
    verifier.CatchUp();
    for (WatchId id : ids) satisfied += verifier.Satisfies(id);
  }
  benchmark::DoNotOptimize(satisfied);
  state.counters["universe"] = static_cast<double>(universe.size());
}

BENCHMARK(BM_VerifyAppendRound);

}  // namespace
}  // namespace ccfp

int main(int argc, char** argv) {
  return ccfp::RunBenchMain(argc, argv,
                            [](bool smoke) { ccfp::EmitJsonReport(smoke); });
}
