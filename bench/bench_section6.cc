// E7: the Theorem 6.1 construction — building the rotated Figure 6.1
// Armstrong database and verifying property (6.1) ("obeys exactly
// Gamma - delta") for growing k. The ObeysExactly sweep is timed under
// both model-checking engines and emitted to BENCH_section6.json so the
// interned-vs-legacy trajectory is machine-trackable.
#include <cstdio>
#include <string_view>

#include <benchmark/benchmark.h>

#include "bench/bench_main.h"
#include "bench/reporter.h"
#include "constructions/section6.h"
#include "core/satisfies.h"
#include "util/check.h"

namespace ccfp {
namespace {

void BM_BuildArmstrongDatabase(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  Section6Construction c = MakeSection6(k);
  std::size_t tuples = 0;
  for (auto _ : state) {
    Database d = MakeSection6Armstrong(c, k / 2);
    tuples = d.TotalTuples();
    benchmark::DoNotOptimize(d);
  }
  state.counters["k"] = static_cast<double>(k);
  state.counters["tuples"] = static_cast<double>(tuples);
}

BENCHMARK(BM_BuildArmstrongDatabase)->RangeMultiplier(2)->Range(1, 64);

void BM_VerifyProperty61(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  Section6Construction c = MakeSection6(k);
  Database d = MakeSection6Armstrong(c, 0);
  std::vector<Dependency> expected = Section6ExpectedSatisfied(c, 0);
  bool exact = false;
  for (auto _ : state) {
    exact = !ObeysExactly(d, c.universe, expected).has_value();
    benchmark::DoNotOptimize(exact);
  }
  state.counters["k"] = static_cast<double>(k);
  state.counters["universe"] = static_cast<double>(c.universe.size());
  state.counters["exact"] = exact ? 1 : 0;  // always 1: property (6.1)
}

BENCHMARK(BM_VerifyProperty61)->RangeMultiplier(2)->Range(1, 16);

/// Times the full property-(6.1) ObeysExactly sweep under the interned and
/// legacy engines and writes BENCH_section6.json (entries: n = k,
/// steps = universe size). Runs before the google-benchmark suite so the
/// file exists even when benchmarks are filtered out.
void EmitJsonReport(bool smoke) {
  BenchReporter reporter("section6");
  for (std::size_t k : {4, 8, 12}) {
    if (smoke && k != 4) continue;
    Section6Construction c = MakeSection6(k);
    Database d = MakeSection6Armstrong(c, 0);
    std::vector<Dependency> expected = Section6ExpectedSatisfied(c, 0);
    std::uint64_t wall[2] = {0, 0};
    for (int engine = 0; engine < 2; ++engine) {
      SatisfiesOptions options;
      options.engine = engine == 1 ? SatisfiesEngine::kInterned
                                   : SatisfiesEngine::kLegacy;
      wall[engine] = MedianWallNs(smoke ? 1 : 5, [&] {
        CCFP_CHECK(!ObeysExactly(d, c.universe, expected, options)
                        .has_value());
      });
    }
    reporter.Add("obeys_exactly_legacy", k, wall[0], c.universe.size());
    reporter.Add("obeys_exactly_interned", k, wall[1], c.universe.size());
    std::fprintf(stderr,
                 "obeys_exactly k=%zu (%zu sentences): legacy %.2f ms, "
                 "interned %.2f ms, speedup %.1fx\n",
                 k, c.universe.size(), wall[0] / 1e6, wall[1] / 1e6,
                 static_cast<double>(wall[0]) /
                     static_cast<double>(wall[1] == 0 ? 1 : wall[1]));
  }
  reporter.WriteFile();
}

}  // namespace
}  // namespace ccfp

int main(int argc, char** argv) {
  return ccfp::RunBenchMain(argc, argv,
                            [](bool smoke) { ccfp::EmitJsonReport(smoke); });
}
