// E7: the Theorem 6.1 construction — building the rotated Figure 6.1
// Armstrong database and verifying property (6.1) ("obeys exactly
// Gamma - delta") for growing k.
#include <benchmark/benchmark.h>

#include "constructions/section6.h"
#include "core/satisfies.h"

namespace ccfp {
namespace {

void BM_BuildArmstrongDatabase(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  Section6Construction c = MakeSection6(k);
  std::size_t tuples = 0;
  for (auto _ : state) {
    Database d = MakeSection6Armstrong(c, k / 2);
    tuples = d.TotalTuples();
    benchmark::DoNotOptimize(d);
  }
  state.counters["k"] = static_cast<double>(k);
  state.counters["tuples"] = static_cast<double>(tuples);
}

BENCHMARK(BM_BuildArmstrongDatabase)->RangeMultiplier(2)->Range(1, 64);

void BM_VerifyProperty61(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  Section6Construction c = MakeSection6(k);
  Database d = MakeSection6Armstrong(c, 0);
  std::vector<Dependency> expected = Section6ExpectedSatisfied(c, 0);
  bool exact = false;
  for (auto _ : state) {
    exact = !ObeysExactly(d, c.universe, expected).has_value();
    benchmark::DoNotOptimize(exact);
  }
  state.counters["k"] = static_cast<double>(k);
  state.counters["universe"] = static_cast<double>(c.universe.size());
  state.counters["exact"] = exact ? 1 : 0;  // always 1: property (6.1)
}

BENCHMARK(BM_VerifyProperty61)->RangeMultiplier(2)->Range(1, 16);

}  // namespace
}  // namespace ccfp

BENCHMARK_MAIN();
