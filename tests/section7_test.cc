// Mechanized verification of the Theorem 7.1 construction (Section 7): the
// chase re-derives Lemma 7.2, the consequence characterizations of Lemmas
// 7.4-7.6 hold over the bounded universe, and the Lemma 7.9 witness
// databases exist and behave as the proof requires.
#include <gtest/gtest.h>

#include "armstrong/builder.h"
#include "axiom/kary.h"
#include "axiom/oracle.h"
#include "chase/chase.h"
#include "constructions/section7.h"
#include "core/satisfies.h"
#include "fd/closure.h"
#include "ind/implication.h"

namespace ccfp {
namespace {

TEST(Section7Test, ConstructionShape) {
  Section7Construction c = MakeSection7(3);
  // Relations: F, G0..G3, H0..H3 = 9.
  EXPECT_EQ(c.scheme->size(), 9u);
  // INDs: alpha (n + 1) + beta (n + 1) + gamma (n + 1) + gamma' (n) = 4n+3.
  EXPECT_EQ(c.inds.size(), 4 * 3u + 3u);
  // FDs: delta_0 + eps_0..eps_n + theta_n = n + 3.
  EXPECT_EQ(c.fds.size(), 3u + 3u);
  // Every FD unary, every IND at most binary, no scheme over 3 attributes.
  for (const Fd& fd : c.fds) {
    EXPECT_EQ(fd.lhs.size(), 1u);
    EXPECT_EQ(fd.rhs.size(), 1u);
  }
  for (const Ind& ind : c.inds) EXPECT_LE(ind.width(), 2u);
  for (const RelationScheme& rel : c.scheme->relations()) {
    EXPECT_LE(rel.arity(), 3u);
  }
}

TEST(Section7Test, Lemma72ChaseDerivesSigma) {
  // Sigma |= F: A -> C, re-derived by the FD+IND chase for several n.
  for (std::size_t n : {1u, 2u, 3u, 4u}) {
    Section7Construction c = MakeSection7(n);
    Result<bool> implied =
        ChaseImplies(c.scheme, c.fds, c.inds, Dependency(c.sigma));
    ASSERT_TRUE(implied.ok()) << "n = " << n << ": " << implied.status();
    EXPECT_TRUE(*implied) << "n = " << n;
  }
}

TEST(Section7Test, Lemma73SigmaImpliesPhi) {
  Section7Construction c = MakeSection7(2);
  for (const Fd& fd : c.phi) {
    Result<bool> implied =
        ChaseImplies(c.scheme, c.fds, c.inds, Dependency(fd));
    ASSERT_TRUE(implied.ok()) << implied.status();
    EXPECT_TRUE(*implied) << Dependency(fd).ToString(*c.scheme);
  }
}

TEST(Section7Test, Lemma74OnlyTrivialRdsAreImplied) {
  Section7Construction c = MakeSection7(2);
  ChaseOracle oracle(c.scheme);
  std::vector<Dependency> sigma = c.SigmaDeps();
  for (const Dependency& tau : Section7Universe(c)) {
    if (!tau.is_rd()) continue;
    ImplicationVerdict verdict = oracle.Implies(sigma, tau);
    ASSERT_NE(verdict, ImplicationVerdict::kUnknown)
        << tau.ToString(*c.scheme);
    EXPECT_EQ(verdict == ImplicationVerdict::kImplied,
              IsTrivial(*c.scheme, tau))
        << tau.ToString(*c.scheme);
  }
}

TEST(Section7Test, Lemma75FdConsequencesArePhiPlus) {
  // Sigma |= delta iff phi |= delta, for every unary-lhs FD delta of the
  // universe.
  Section7Construction c = MakeSection7(2);
  ChaseOracle chase_oracle(c.scheme);
  std::vector<Dependency> sigma = c.SigmaDeps();
  for (const Dependency& tau : Section7Universe(c)) {
    if (!tau.is_fd()) continue;
    ImplicationVerdict verdict = chase_oracle.Implies(sigma, tau);
    ASSERT_NE(verdict, ImplicationVerdict::kUnknown)
        << tau.ToString(*c.scheme);
    bool phi_implies = FdImplies(*c.scheme, c.phi, tau.fd());
    EXPECT_EQ(verdict == ImplicationVerdict::kImplied, phi_implies)
        << tau.ToString(*c.scheme);
  }
}

TEST(Section7Test, Lemma76IndConsequencesAreLambdaPlus) {
  // Sigma |= delta iff lambda (the INDs of Sigma alone) |= delta, for every
  // IND delta of the universe.
  Section7Construction c = MakeSection7(2);
  ChaseOracle chase_oracle(c.scheme);
  IndImplication lambda_engine(c.scheme, c.inds);
  std::vector<Dependency> sigma = c.SigmaDeps();
  for (const Dependency& tau : Section7Universe(c)) {
    if (!tau.is_ind()) continue;
    ImplicationVerdict verdict = chase_oracle.Implies(sigma, tau);
    ASSERT_NE(verdict, ImplicationVerdict::kUnknown)
        << tau.ToString(*c.scheme);
    EXPECT_EQ(verdict == ImplicationVerdict::kImplied,
              *lambda_engine.Implies(tau.ind()))
        << tau.ToString(*c.scheme);
  }
}

// Lemma 7.9 witness: a database satisfying (phi - sigma) u (lambda -
// beta_j) but violating sigma = F: A -> C.
Database MakeLemma79Witness(const Section7Construction& c, std::size_t j) {
  std::vector<Fd> phi_minus_sigma;
  for (const Fd& fd : c.phi) {
    if (!(fd == c.sigma)) phi_minus_sigma.push_back(fd);
  }
  Ind beta_j = c.beta(j);
  std::vector<Ind> lambda_minus_beta;
  for (const Ind& ind : c.inds) {
    if (!(ind == beta_j)) lambda_minus_beta.push_back(ind);
  }
  // Seed: a pair of F-tuples agreeing exactly on A (the sigma violation)
  // plus generic tuples everywhere.
  Database seed(c.scheme);
  std::uint64_t next_null = 1;
  std::size_t f_arity = c.scheme->relation(c.f).arity();
  Tuple t1(f_arity), t2(f_arity);
  for (AttrId a = 0; a < f_arity; ++a) {
    t1[a] = Value::Null(next_null++);
    t2[a] = (a == 0) ? t1[a] : Value::Null(next_null++);
  }
  seed.Insert(c.f, std::move(t1));
  seed.Insert(c.f, std::move(t2));
  for (RelId rel = 0; rel < c.scheme->size(); ++rel) {
    std::size_t arity = c.scheme->relation(rel).arity();
    Tuple t(arity);
    for (AttrId a = 0; a < arity; ++a) t[a] = Value::Null(next_null++);
    seed.Insert(rel, std::move(t));
  }
  Chase chase(c.scheme, phi_minus_sigma, lambda_minus_beta);
  Result<ChaseResult> result = chase.Run(std::move(seed));
  EXPECT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->outcome, ChaseOutcome::kFixpoint);
  return result->db;
}

TEST(Section7Test, Lemma79WitnessSatisfiesPButNotSigma) {
  for (std::size_t n : {2u, 3u}) {
    Section7Construction c = MakeSection7(n);
    for (std::size_t j = 0; j < n; ++j) {
      Database e = MakeLemma79Witness(c, j);
      // e satisfies phi - {F: A -> C}.
      for (const Fd& fd : c.phi) {
        if (fd == c.sigma) continue;
        EXPECT_TRUE(Satisfies(e, fd))
            << "n=" << n << " j=" << j << ": "
            << Dependency(fd).ToString(*c.scheme);
      }
      // e satisfies lambda - {beta_j}.
      Ind beta_j = c.beta(j);
      for (const Ind& ind : c.inds) {
        if (ind == beta_j) continue;
        EXPECT_TRUE(Satisfies(e, ind))
            << "n=" << n << " j=" << j << ": "
            << Dependency(ind).ToString(*c.scheme);
      }
      // e violates sigma = F: A -> C (Lemma 7.9's punchline).
      EXPECT_FALSE(Satisfies(e, c.sigma)) << "n=" << n << " j=" << j;
    }
  }
}

TEST(Section7Test, Lemma78NoMixedConsequencesSneakIn) {
  // Lemma 7.8's computational content: the consequences of
  // Sigma'_j = (phi - sigma) u (lambda - beta_j) within the universe are
  // exactly (FD consequences of phi - sigma) u (IND consequences of
  // lambda - beta_j) u trivial sentences — i.e., no FD/IND interaction.
  Section7Construction c = MakeSection7(2);
  std::size_t j = 0;
  std::vector<Fd> phi_minus_sigma;
  for (const Fd& fd : c.phi) {
    if (!(fd == c.sigma)) phi_minus_sigma.push_back(fd);
  }
  Ind beta_j = c.beta(j);
  std::vector<Ind> lambda_minus_beta;
  for (const Ind& ind : c.inds) {
    if (!(ind == beta_j)) lambda_minus_beta.push_back(ind);
  }
  std::vector<Dependency> sigma_prime;
  for (const Fd& fd : phi_minus_sigma) sigma_prime.push_back(Dependency(fd));
  for (const Ind& ind : lambda_minus_beta) {
    sigma_prime.push_back(Dependency(ind));
  }

  ChaseOracle chase_oracle(c.scheme);
  IndImplication ind_engine(c.scheme, lambda_minus_beta);
  for (const Dependency& tau : Section7Universe(c)) {
    ImplicationVerdict verdict = chase_oracle.Implies(sigma_prime, tau);
    ASSERT_NE(verdict, ImplicationVerdict::kUnknown)
        << tau.ToString(*c.scheme);
    bool structural = false;
    if (IsTrivial(*c.scheme, tau)) {
      structural = true;
    } else if (tau.is_fd()) {
      structural = FdImplies(*c.scheme, phi_minus_sigma, tau.fd());
    } else if (tau.is_ind()) {
      structural = *ind_engine.Implies(tau.ind());
    }
    EXPECT_EQ(verdict == ImplicationVerdict::kImplied, structural)
        << tau.ToString(*c.scheme);
  }
}

TEST(Section7Test, GammaClosedUnderKaryImplication) {
  // The Theorem 5.1 argument for unrestricted implication: with the n
  // Lemma 7.9 witnesses as counterexamples, any T <= Gamma with |T| <= k
  // (k < n) fails to imply anything outside Gamma. We verify over the
  // bounded universe with k = 1, n = 2.
  std::size_t n = 2, k = 1;
  Section7Construction c = MakeSection7(n);
  std::vector<Dependency> universe = Section7Universe(c);

  // Gamma = phi+ u lambda+ u omega - {F: A -> C}, restricted to universe.
  IndImplication lambda_engine(c.scheme, c.inds);
  std::vector<Dependency> gamma;
  for (const Dependency& tau : universe) {
    bool in = false;
    if (IsTrivial(*c.scheme, tau)) {
      in = true;
    } else if (tau.is_fd()) {
      in = FdImplies(*c.scheme, c.phi, tau.fd());
    } else if (tau.is_ind()) {
      in = *lambda_engine.Implies(tau.ind());
    }
    if (in && !(tau.is_fd() && tau.fd() == c.sigma)) gamma.push_back(tau);
  }

  // The witnesses must obey *exactly* p_j = Gamma - {sigma, beta_j}
  // (Lemma 7.8), so the chase-seeded databases are not enough — use the
  // Armstrong builder, which repairs accidental satisfactions.
  ChaseOracle expected_oracle(c.scheme);
  std::vector<Database> witnesses;
  for (std::size_t j = 0; j < n; ++j) {
    std::vector<Fd> phi_minus_sigma;
    for (const Fd& fd : c.phi) {
      if (!(fd == c.sigma)) phi_minus_sigma.push_back(fd);
    }
    Ind beta_j = c.beta(j);
    std::vector<Ind> lambda_minus_beta;
    for (const Ind& ind : c.inds) {
      if (!(ind == beta_j)) lambda_minus_beta.push_back(ind);
    }
    Result<ArmstrongReport> report = BuildArmstrongDatabase(
        c.scheme, phi_minus_sigma, lambda_minus_beta, universe,
        expected_oracle);
    ASSERT_TRUE(report.ok()) << "j = " << j << ": " << report.status();
    witnesses.push_back(std::move(report->db));
  }
  CounterexampleOracle oracle(std::move(witnesses));
  KaryStats stats;
  auto escape = FindKaryEscape(universe, gamma, oracle, k, &stats);
  EXPECT_FALSE(escape.has_value()) << escape->ToString(*c.scheme);
  EXPECT_FALSE(stats.saw_unknown);

  // ... while Gamma is NOT closed under unbounded implication: Gamma
  // contains all of Sigma, and Sigma |= F: A -> C which is outside Gamma.
  ChaseOracle chase_oracle(c.scheme);
  EXPECT_EQ(chase_oracle.Implies(c.SigmaDeps(), Dependency(c.sigma)),
            ImplicationVerdict::kImplied);
}

}  // namespace
}  // namespace ccfp
