// Mechanized verification of Theorem 6.1: no k-ary complete axiomatization
// for finite implication of FDs and INDs (even unary, over two-attribute
// schemes).
#include <gtest/gtest.h>

#include "axiom/kary.h"
#include "axiom/oracle.h"
#include "constructions/section6.h"
#include "core/satisfies.h"
#include "interact/unary_finite.h"

namespace ccfp {
namespace {

TEST(Section6Test, UniverseAndGammaSizesArePinned) {
  // Regression pins for the enumeration (any change to universe options or
  // triviality rules shows up here first). For k: relations = k+1, each
  // 2 attributes. FDs (lhs <= 1): 6 per relation; unary INDs: (2(k+1))^2;
  // binary INDs: (2(k+1))^2; RDs: 4 per relation.
  for (std::size_t k : {1u, 2u, 3u}) {
    Section6Construction c = MakeSection6(k);
    std::size_t rels = k + 1;
    std::size_t cols = 2 * rels;
    EXPECT_EQ(c.universe.size(), 6 * rels + 2 * cols * cols + 4 * rels)
        << "k = " << k;
    // Gamma = trivial sentences + Sigma: per relation 2 trivial FDs,
    // 2 + 2 trivial INDs, 2 trivial RDs; Sigma has 2(k+1) members.
    EXPECT_EQ(c.gamma.size(), 8 * rels + 2 * rels) << "k = " << k;
  }
}

TEST(Section6Test, ConstructionShape) {
  Section6Construction c = MakeSection6(3);
  EXPECT_EQ(c.scheme->size(), 4u);
  EXPECT_EQ(c.fds.size(), 4u);
  EXPECT_EQ(c.inds.size(), 4u);
  // sigma_3 = R0[B] <= R3[A].
  EXPECT_EQ(Dependency(c.sigma_target).ToString(*c.scheme),
            "R0[B] <= R3[A]");
  // Every dependency is unary; every scheme has two attributes.
  for (const Fd& fd : c.fds) {
    EXPECT_EQ(fd.lhs.size(), 1u);
    EXPECT_EQ(fd.rhs.size(), 1u);
  }
  for (const Ind& ind : c.inds) EXPECT_EQ(ind.width(), 1u);
}

TEST(Section6Test, SigmaFinitelyImpliesSigmaTarget) {
  // The counting argument: |r0[A]| <= |r1[B]| <= |r1[A]| <= ... forces all
  // cardinalities equal, reversing every containment on finite databases.
  for (std::size_t k = 0; k <= 6; ++k) {
    Section6Construction c = MakeSection6(k);
    UnaryFiniteImplication engine(c.scheme, c.fds, c.inds);
    EXPECT_TRUE(engine.Implies(c.sigma_target)) << "k = " << k;
    for (const Fd& fd : c.reversed_fds) {
      EXPECT_TRUE(engine.Implies(fd)) << "k = " << k;
    }
  }
}

TEST(Section6Test, DroppingAnyIndKillsTheImplication) {
  // Minimality of the rule "if Sigma_k then sigma_k": no antecedent can be
  // dropped (Section 6's closing observation).
  for (std::size_t k : {1u, 2u, 4u}) {
    Section6Construction c = MakeSection6(k);
    for (std::size_t j = 0; j <= k; ++j) {
      std::vector<Ind> inds;
      for (std::size_t i = 0; i < c.inds.size(); ++i) {
        if (i != j) inds.push_back(c.inds[i]);
      }
      UnaryFiniteImplication engine(c.scheme, c.fds, inds);
      EXPECT_FALSE(engine.Implies(c.sigma_target))
          << "k = " << k << ", dropped j = " << j;
    }
    for (std::size_t j = 0; j <= k; ++j) {
      std::vector<Fd> fds;
      for (std::size_t i = 0; i < c.fds.size(); ++i) {
        if (i != j) fds.push_back(c.fds[i]);
      }
      UnaryFiniteImplication engine(c.scheme, fds, c.inds);
      EXPECT_FALSE(engine.Implies(c.sigma_target))
          << "k = " << k << ", dropped FD j = " << j;
    }
  }
}

TEST(Section6Test, Property61ArmstrongDatabases) {
  // The heart of the proof: for every omitted IND delta_j, the (rotated)
  // Figure 6.1 database obeys exactly Gamma_k - delta_j within the
  // universe of FDs, INDs, and RDs.
  for (std::size_t k = 0; k <= 5; ++k) {
    Section6Construction c = MakeSection6(k);
    for (std::size_t j = 0; j <= k; ++j) {
      Database d = MakeSection6Armstrong(c, j);
      std::vector<Dependency> expected = Section6ExpectedSatisfied(c, j);
      std::optional<std::string> mismatch =
          ObeysExactly(d, c.universe, expected);
      EXPECT_FALSE(mismatch.has_value())
          << "k = " << k << ", j = " << j << ": " << *mismatch;
    }
  }
}

TEST(Section6Test, ArmstrongDatabaseViolatesSigmaTarget) {
  for (std::size_t k : {1u, 3u}) {
    Section6Construction c = MakeSection6(k);
    for (std::size_t j = 0; j <= k; ++j) {
      Database d = MakeSection6Armstrong(c, j);
      EXPECT_FALSE(Satisfies(d, c.sigma_target))
          << "k = " << k << ", j = " << j;
    }
  }
}

TEST(Section6Test, Figure61MatchesThePaperForKEquals3) {
  // Spot-check the canonical contents against Figure 6.1 (k = 3, omitted
  // IND delta_3 = R3[A] <= R0[B]): r_3 has 9 tuples, r_0 has 3.
  Section6Construction c = MakeSection6(3);
  Database d = MakeSection6Armstrong(c, 3);
  EXPECT_EQ(d.relation(0).size(), 3u);   // r_0
  EXPECT_EQ(d.relation(1).size(), 5u);   // r_1: 2*1+3
  EXPECT_EQ(d.relation(2).size(), 7u);   // r_2: 2*2+3
  EXPECT_EQ(d.relation(3).size(), 9u);   // r_3: 2*3+3
}

TEST(Section6Test, GammaClosedUnderKaryFiniteImplication) {
  // Theorem 5.1 in action: with the k+1 Armstrong databases as
  // counterexample witnesses, every (T, tau) with |T| <= k, T <= Gamma,
  // tau outside Gamma is refuted — Gamma is closed under k-ary finite
  // implication.
  for (std::size_t k : {1u, 2u}) {
    Section6Construction c = MakeSection6(k);
    std::vector<Database> witnesses;
    for (std::size_t j = 0; j <= k; ++j) {
      witnesses.push_back(MakeSection6Armstrong(c, j));
    }
    CounterexampleOracle oracle(std::move(witnesses));
    KaryStats stats;
    auto escape = FindKaryEscape(c.universe, c.gamma, oracle, k, &stats);
    EXPECT_FALSE(escape.has_value())
        << "k = " << k << ": " << escape->ToString(*c.scheme);
    EXPECT_FALSE(stats.saw_unknown) << "k = " << k;
  }
}

TEST(Section6Test, GammaNotClosedUnderFullImplication) {
  // ... but Gamma is NOT closed under unbounded (finite) implication: all
  // of Sigma_k together implies sigma_k, which lies outside Gamma. By
  // Theorem 5.1, no k-ary complete axiomatization exists.
  for (std::size_t k : {1u, 2u, 3u}) {
    Section6Construction c = MakeSection6(k);
    UnaryFiniteOracle oracle(c.scheme);
    KaryStats stats;
    auto escape = FindFullEscape(c.universe, c.gamma, oracle, &stats);
    ASSERT_TRUE(escape.has_value()) << "k = " << k;
    // The escape's conclusion is a consequence of Gamma outside Gamma;
    // sigma_k itself qualifies, so at minimum the oracle confirms it:
    EXPECT_EQ(oracle.Implies(c.gamma, Dependency(c.sigma_target)),
              ImplicationVerdict::kImplied);
  }
}

TEST(Section6Test, KPlusOneSubsetEscapes) {
  // Sharpness: there IS an escape using k+1 antecedents — the INDs of
  // Sigma_k plus the FDs... in fact the full Sigma_k (2k+2 members) works;
  // here we exhibit that restricting T to Gamma with |T| = 2(k+1) finds
  // sigma_k, demonstrating where k-ary closure breaks for larger arity.
  std::size_t k = 1;
  Section6Construction c = MakeSection6(k);
  UnaryFiniteOracle oracle(c.scheme);
  // T = Sigma_k exactly.
  EXPECT_EQ(oracle.Implies(c.SigmaDeps(), Dependency(c.sigma_target)),
            ImplicationVerdict::kImplied);
  // No proper subset of Sigma_k suffices (minimality).
  std::vector<Dependency> sigma = c.SigmaDeps();
  for (std::size_t drop = 0; drop < sigma.size(); ++drop) {
    std::vector<Dependency> subset;
    for (std::size_t i = 0; i < sigma.size(); ++i) {
      if (i != drop) subset.push_back(sigma[i]);
    }
    EXPECT_NE(oracle.Implies(subset, Dependency(c.sigma_target)),
              ImplicationVerdict::kImplied)
        << "dropped index " << drop;
  }
}

}  // namespace
}  // namespace ccfp
