// Deterministic fault-injection properties (util/fault.h): a seeded
// injector forces the exhaustion paths of every engine at reproducible
// instants, and the suite pins the degradation contract — a degraded
// answer is ResourceExhausted / kUnknown, never a wrong verdict, and a
// resumed run converges to exactly the answers of a fault-free control
// run over the same trace (tests/trace_util.h).
#include <gtest/gtest.h>

#include <chrono>
#include <vector>

#include "chase/workspace_chase.h"
#include "core/workspace.h"
#include "tests/trace_util.h"
#include "util/budget.h"
#include "util/fault.h"
#include "util/rng.h"
#include "verify/verifier.h"

namespace ccfp {
namespace {

using testutil::AppendRandomTuple;
using testutil::CheckAgreement;
using testutil::MergeRandomValues;
using testutil::RandomScheme;
using testutil::RandomUniverse;

class FaultPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

/// Sigma with a terminating chase: FDs plus an acyclic IND chain.
void RandomSigma(const SchemePtr& scheme, SplitMix64& rng,
                 std::vector<Fd>* fds, std::vector<Ind>* inds) {
  for (const Dependency& dep : RandomUniverse(scheme, rng, 8)) {
    if (dep.is_fd() && !dep.fd().lhs.empty()) fds->push_back(dep.fd());
    if (dep.is_ind() && dep.ind().lhs_rel < dep.ind().rhs_rel) {
      inds->push_back(dep.ind());
    }
  }
}

TEST_P(FaultPropertyTest, ChaseWithInjectedFaultsConvergesToControlAnswers) {
  // Periodic kEngineExhaust + kArenaAppend faults interrupt the faulted
  // chase over and over; every interruption must be ResourceExhausted,
  // and the resumed fixpoint must answer exactly like the fault-free
  // control chase over the identical trace.
  SplitMix64 rng(GetParam() * 6364136223846793005ULL + 29);
  SchemePtr scheme = RandomScheme(rng);
  std::vector<Dependency> universe = RandomUniverse(scheme, rng, 10);
  std::vector<Fd> fds;
  std::vector<Ind> inds;
  RandomSigma(scheme, rng, &fds, &inds);
  if (universe.empty() || (fds.empty() && inds.empty())) return;

  InternedWorkspace control(scheme);
  InternedWorkspace faulted(scheme);
  WorkspaceChase control_chaser(&control, fds, inds);
  WorkspaceChase faulted_chaser(&faulted, fds, inds);
  std::vector<ValueId> control_pool;
  std::vector<ValueId> faulted_pool;

  FaultInjector fi(GetParam());
  fi.ArmEvery(FaultSite::kEngineExhaust, 5);
  fi.ArmEvery(FaultSite::kArenaAppend, 3);

  for (int round = 0; round < 4; ++round) {
    // Identical appends on both sides (cloned rng stream, id-exact pools).
    SplitMix64 rng2 = rng;
    for (int i = 0; i < 4; ++i) AppendRandomTuple(control, rng, control_pool);
    for (int i = 0; i < 4; ++i) AppendRandomTuple(faulted, rng2, faulted_pool);

    Result<WorkspaceChaseStats> control_run = control_chaser.Run({});
    ASSERT_TRUE(control_run.ok()) << control_run.status();

    Result<WorkspaceChaseStats> faulted_run = Status::Internal("never ran");
    int interruptions = 0;
    {
      ScopedFaultInjector scope(&fi);
      for (int attempt = 0; attempt < 500; ++attempt) {
        faulted_run = faulted_chaser.Run({});
        if (faulted_run.ok()) break;
        ASSERT_EQ(faulted_run.status().code(),
                  StatusCode::kResourceExhausted)
            << faulted_run.status();
        ++interruptions;
      }
    }
    ASSERT_TRUE(faulted_run.ok())
        << "faulted chase failed to converge after " << interruptions
        << " resumable interruptions: " << faulted_run.status();
    ASSERT_EQ(faulted_run->outcome, control_run->outcome);
    if (control_run->outcome == ChaseOutcome::kFailed) return;

    // Verdicts are renaming-invariant, so they must match even though the
    // interleaving of fresh-null creation may differ across interruptions.
    for (const Dependency& dep : universe) {
      EXPECT_EQ(faulted.Satisfies(dep), control.Satisfies(dep))
          << dep.ToString(*scheme) << " after " << interruptions
          << " interruptions";
    }
  }
}

TEST_P(FaultPropertyTest, BudgetedCatchUpDegradesToExhaustedNeverWrong) {
  // A kWatcherGrow fault (or a byte ceiling already exceeded) makes the
  // budgeted CatchUp report ResourceExhausted mid-replay; verdicts asked
  // for afterwards — which complete the replay unbudgeted — must still
  // agree with the sweep and a fresh re-intern at every position.
  SplitMix64 rng(GetParam() * 40503 + 101);
  SchemePtr scheme = RandomScheme(rng);
  std::vector<Dependency> deps = RandomUniverse(scheme, rng, 10);
  if (deps.empty()) return;

  InternedWorkspace ws(scheme);
  std::vector<ValueId> pool;
  for (int i = 0; i < 5; ++i) AppendRandomTuple(ws, rng, pool);

  IncrementalVerifier verifier(&ws);
  std::vector<WatchId> ids;
  for (const Dependency& dep : deps) ids.push_back(verifier.Watch(dep));
  CheckAgreement(ws, verifier, deps, ids);

  std::vector<std::uint64_t> seen;
  for (RelId rel = 0; rel < scheme->size(); ++rel) {
    seen.push_back(ws.EventCount(rel));
  }
  FaultInjector fi(GetParam() ^ 0xF00D);
  for (int batch = 0; batch < 6; ++batch) {
    std::size_t ops = 1 + rng.Below(4);
    for (std::size_t op = 0; op < ops; ++op) {
      if (rng.Chance(2, 3)) {
        AppendRandomTuple(ws, rng, pool);
      } else {
        MergeRandomValues(ws, rng, pool);
      }
    }
    bool pending = false;
    for (RelId rel = 0; rel < scheme->size(); ++rel) {
      if (ws.EventCount(rel) != seen[rel]) pending = true;
    }

    if (batch % 2 == 0) {
      // Injected growth failure on the next pending relation.
      fi.Arm(FaultSite::kWatcherGrow, 0);
      ScopedFaultInjector scope(&fi);
      Status st = verifier.CatchUp(Budget::Default());
      if (pending) {
        ASSERT_FALSE(st.ok());
        EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
      } else {
        EXPECT_TRUE(st.ok()) << st;
      }
    } else {
      // A byte ceiling below the live state: same degradation, no fault.
      Status st = verifier.CatchUp(Budget::WithByteCeiling(1));
      if (pending) {
        ASSERT_FALSE(st.ok());
        EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
      } else {
        EXPECT_TRUE(st.ok()) << st;
      }
    }

    // Degraded, not wrong: the unbudgeted resume inside CheckAgreement
    // completes the replay and every verdict/witness is exact.
    CheckAgreement(ws, verifier, deps, ids);
    // A caught-up verifier passes the same budgeted call untouched.
    EXPECT_TRUE(verifier.CatchUp(Budget::WithByteCeiling(1)).ok());
    for (RelId rel = 0; rel < scheme->size(); ++rel) {
      seen[rel] = ws.EventCount(rel);
    }
  }
}

TEST_P(FaultPropertyTest, ChaseDeadlineAndByteCeilingAreResumable) {
  // Satellite contract for Budget inside the chase inner loops: an
  // already-expired deadline or an already-exceeded byte ceiling stops
  // the run with ResourceExhausted, and re-running with headroom reaches
  // the same answers as an unconstrained control.
  SplitMix64 rng(GetParam() * 7129 + 41);
  SchemePtr scheme = RandomScheme(rng);
  std::vector<Dependency> universe = RandomUniverse(scheme, rng, 8);
  std::vector<Fd> fds;
  std::vector<Ind> inds;
  RandomSigma(scheme, rng, &fds, &inds);
  if (universe.empty() || (fds.empty() && inds.empty())) return;

  InternedWorkspace control(scheme);
  InternedWorkspace limited(scheme);
  WorkspaceChase control_chaser(&control, fds, inds);
  WorkspaceChase limited_chaser(&limited, fds, inds);
  std::vector<ValueId> control_pool;
  std::vector<ValueId> limited_pool;
  SplitMix64 rng2 = rng;
  for (int i = 0; i < 6; ++i) AppendRandomTuple(control, rng, control_pool);
  for (int i = 0; i < 6; ++i) AppendRandomTuple(limited, rng2, limited_pool);

  Result<WorkspaceChaseStats> control_run = control_chaser.Run({});
  ASSERT_TRUE(control_run.ok()) << control_run.status();

  ChaseOptions expired;
  expired.deadline = std::chrono::steady_clock::now() -
                     std::chrono::milliseconds(1);
  Result<WorkspaceChaseStats> run = limited_chaser.Run(expired);
  if (!run.ok()) {
    EXPECT_EQ(run.status().code(), StatusCode::kResourceExhausted);
  }

  ChaseOptions squeezed;
  squeezed.max_bytes = 1;  // any live state exceeds this
  run = limited_chaser.Run(squeezed);
  if (!run.ok()) {
    EXPECT_EQ(run.status().code(), StatusCode::kResourceExhausted);
  }

  run = limited_chaser.Run({});  // headroom restored
  ASSERT_TRUE(run.ok()) << run.status();
  ASSERT_EQ(run->outcome, control_run->outcome);
  if (run->outcome == ChaseOutcome::kFailed) return;
  for (const Dependency& dep : universe) {
    EXPECT_EQ(limited.Satisfies(dep), control.Satisfies(dep))
        << dep.ToString(*scheme);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace ccfp
