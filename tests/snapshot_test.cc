// Unit tests for the workspace snapshot layer (core/snapshot.h): the
// round-trip contract (a restored workspace is observably identical,
// including its warm partition capital), the damage contract (every
// single-bit flip and every truncation is InvalidArgument, never a crash
// or a half-restored workspace), the file round-trip, and the injected
// save-side faults (util/fault.h) the recovery suites lean on.
#include "core/snapshot.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/workspace.h"
#include "tests/trace_util.h"
#include "util/fault.h"
#include "util/rng.h"

namespace ccfp {
namespace {

using testutil::AppendRandomTuple;
using testutil::MergeRandomValues;
using testutil::RandomUniverse;

SchemePtr TwoRelScheme() {
  return MakeScheme({{"R0", {"A", "B", "C"}}, {"R1", {"A", "B"}}});
}

/// A small but non-trivial workspace: appends, merges (kills + rewrites),
/// and partitions compiled through the sweep engine — every serialized
/// section is exercised.
InternedWorkspace PopulatedWorkspace(const SchemePtr& scheme,
                                     std::vector<Dependency>* deps_out) {
  SplitMix64 rng(2026);
  InternedWorkspace ws(scheme);
  std::vector<ValueId> pool;
  for (int i = 0; i < 12; ++i) AppendRandomTuple(ws, rng, pool);
  for (int i = 0; i < 4; ++i) MergeRandomValues(ws, rng, pool);
  for (int i = 0; i < 6; ++i) AppendRandomTuple(ws, rng, pool);
  std::vector<Dependency> deps = RandomUniverse(scheme, rng, 8);
  for (const Dependency& dep : deps) ws.Satisfies(dep);  // compile partitions
  if (deps_out != nullptr) *deps_out = std::move(deps);
  return ws;
}

/// Observable equality: same materialization, same feed window, same
/// verdicts and witnesses, same substrate counters.
void ExpectObservablyEqual(const InternedWorkspace& a,
                           const InternedWorkspace& b,
                           const std::vector<Dependency>& deps) {
  EXPECT_EQ(a.Materialize().ToString(), b.Materialize().ToString());
  for (RelId rel = 0; rel < a.scheme().size(); ++rel) {
    EXPECT_EQ(a.EventCount(rel), b.EventCount(rel));
    EXPECT_EQ(a.FeedBase(rel), b.FeedBase(rel));
  }
  for (const Dependency& dep : deps) {
    EXPECT_EQ(a.Satisfies(dep), b.Satisfies(dep))
        << dep.ToString(a.scheme());
    std::optional<IdViolation> va = a.FindViolation(dep);
    std::optional<IdViolation> vb = b.FindViolation(dep);
    ASSERT_EQ(va.has_value(), vb.has_value()) << dep.ToString(a.scheme());
    if (va.has_value()) {
      EXPECT_EQ(va->rel, vb->rel);
      EXPECT_EQ(va->tuple_indices, vb->tuple_indices);
    }
  }
  EXPECT_EQ(a.stats().tuples_appended, b.stats().tuples_appended);
  EXPECT_EQ(a.stats().tuples_killed, b.stats().tuples_killed);
  EXPECT_EQ(a.stats().values_interned, b.stats().values_interned);
  EXPECT_EQ(a.stats().value_merges, b.stats().value_merges);
  EXPECT_EQ(a.stats().partitions_built, b.stats().partitions_built);
  EXPECT_EQ(a.MemoryUsage().tuple_store, b.MemoryUsage().tuple_store);
  EXPECT_EQ(a.MemoryUsage().occurrences, b.MemoryUsage().occurrences);
}

TEST(SnapshotTest, EmptyWorkspaceRoundTrip) {
  SchemePtr scheme = TwoRelScheme();
  InternedWorkspace ws(scheme);
  Result<RestoredWorkspace> restored =
      DeserializeWorkspace(scheme, SerializeWorkspace(ws));
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_TRUE(restored->consumer_cursors.empty());
  ExpectObservablyEqual(ws, restored->ws, {});
}

TEST(SnapshotTest, PopulatedRoundTripIsObservablyIdentical) {
  SchemePtr scheme = TwoRelScheme();
  std::vector<Dependency> deps;
  InternedWorkspace ws = PopulatedWorkspace(scheme, &deps);

  std::vector<std::vector<std::uint64_t>> cursors = {
      {ws.EventCount(0), ws.EventCount(1)}, {3, 0}};
  std::string blob = SerializeWorkspace(ws, cursors);
  Result<RestoredWorkspace> restored = DeserializeWorkspace(scheme, blob);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->consumer_cursors, cursors);
  ExpectObservablyEqual(ws, restored->ws, deps);
}

TEST(SnapshotTest, RestoredPartitionsAreWarmCapital) {
  // Re-checking a dependency whose partition came from the snapshot must
  // reuse it — no rebuild, or the warm start is warm in name only.
  SchemePtr scheme = TwoRelScheme();
  std::vector<Dependency> deps;
  InternedWorkspace ws = PopulatedWorkspace(scheme, &deps);
  Result<RestoredWorkspace> restored =
      DeserializeWorkspace(scheme, SerializeWorkspace(ws));
  ASSERT_TRUE(restored.ok()) << restored.status();

  std::uint64_t built_before = restored->ws.stats().partitions_built;
  for (const Dependency& dep : deps) restored->ws.Satisfies(dep);
  EXPECT_EQ(restored->ws.stats().partitions_built, built_before)
      << "restored partitions were rebuilt instead of reused";
}

TEST(SnapshotTest, SchemeMismatchRejected) {
  SchemePtr scheme = TwoRelScheme();
  InternedWorkspace ws(scheme);
  std::string blob = SerializeWorkspace(ws);
  SchemePtr other = MakeScheme({{"S0", {"A", "B", "C"}}, {"S1", {"A", "B"}}});
  Result<RestoredWorkspace> restored = DeserializeWorkspace(other, blob);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument);
}

TEST(SnapshotTest, EverySingleBitFlipRejected) {
  // The whole blob is covered: magic/version/size by explicit checks,
  // the checksum field and every payload byte by FNV mismatch. No flip
  // may be silently accepted.
  SchemePtr scheme = TwoRelScheme();
  std::vector<Dependency> deps;
  InternedWorkspace ws = PopulatedWorkspace(scheme, &deps);
  std::string blob = SerializeWorkspace(ws, {{1, 2}});

  for (std::size_t off = 0; off < blob.size(); ++off) {
    std::string damaged = blob;
    damaged[off] = static_cast<char>(damaged[off] ^ (1 << (off % 8)));
    Result<RestoredWorkspace> restored = DeserializeWorkspace(scheme, damaged);
    ASSERT_FALSE(restored.ok()) << "bit flip at offset " << off
                                << " was accepted";
    EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument)
        << "offset " << off << ": " << restored.status();
  }
}

TEST(SnapshotTest, EveryTruncationRejected) {
  SchemePtr scheme = TwoRelScheme();
  InternedWorkspace ws = PopulatedWorkspace(scheme, nullptr);
  std::string blob = SerializeWorkspace(ws);

  for (std::size_t len = 0; len < blob.size(); ++len) {
    Result<RestoredWorkspace> restored =
        DeserializeWorkspace(scheme, std::string_view(blob).substr(0, len));
    ASSERT_FALSE(restored.ok()) << "truncation to " << len << " bytes "
                                << "was accepted";
    EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument);
  }
  EXPECT_TRUE(DeserializeWorkspace(scheme, blob).ok());
}

TEST(SnapshotTest, TrailingBytesRejected) {
  SchemePtr scheme = TwoRelScheme();
  InternedWorkspace ws = PopulatedWorkspace(scheme, nullptr);
  std::string blob = SerializeWorkspace(ws) + std::string(1, '\0');
  Result<RestoredWorkspace> restored = DeserializeWorkspace(scheme, blob);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument);
}

TEST(SnapshotTest, FileRoundTrip) {
  SchemePtr scheme = TwoRelScheme();
  std::vector<Dependency> deps;
  InternedWorkspace ws = PopulatedWorkspace(scheme, &deps);
  std::string path = ::testing::TempDir() + "/ccfp_snapshot_roundtrip.bin";

  ASSERT_TRUE(SaveWorkspaceSnapshot(ws, path, {{7}}).ok());
  Result<RestoredWorkspace> restored = LoadWorkspaceSnapshot(scheme, path);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->consumer_cursors,
            (std::vector<std::vector<std::uint64_t>>{{7}}));
  ExpectObservablyEqual(ws, restored->ws, deps);
}

TEST(SnapshotTest, MissingFileIsNotFound) {
  SchemePtr scheme = TwoRelScheme();
  Result<RestoredWorkspace> restored = LoadWorkspaceSnapshot(
      scheme, ::testing::TempDir() + "/ccfp_snapshot_does_not_exist.bin");
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kNotFound);
}

TEST(SnapshotTest, InjectedCorruptionIsDetectedAtLoad) {
  // The save-side kSnapshotCorrupt fault under the *non-atomic* legacy
  // policy simulates bit rot between save and load: the save itself
  // succeeds, the load must reject. (Under the atomic default the damage
  // never reaches the target — snapshot_crash_property_test covers that.)
  SchemePtr scheme = TwoRelScheme();
  InternedWorkspace ws = PopulatedWorkspace(scheme, nullptr);
  std::string path = ::testing::TempDir() + "/ccfp_snapshot_corrupt.bin";
  SnapshotWriteOptions direct;
  direct.atomic = false;

  FaultInjector fi(99);
  fi.Arm(FaultSite::kSnapshotCorrupt, 0);
  {
    ScopedFaultInjector scope(&fi);
    ASSERT_TRUE(SaveWorkspaceSnapshot(ws, path, {}, direct).ok());
  }
  EXPECT_EQ(fi.fired(FaultSite::kSnapshotCorrupt), 1u);
  Result<RestoredWorkspace> restored = LoadWorkspaceSnapshot(scheme, path);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument);
}

TEST(SnapshotTest, InjectedTruncationIsDetectedAtLoad) {
  // kSnapshotTruncate under the non-atomic legacy policy simulates the
  // torn partial write of a crash mid-save reaching the target file.
  SchemePtr scheme = TwoRelScheme();
  InternedWorkspace ws = PopulatedWorkspace(scheme, nullptr);
  std::string path = ::testing::TempDir() + "/ccfp_snapshot_truncated.bin";
  SnapshotWriteOptions direct;
  direct.atomic = false;

  FaultInjector fi(7);
  fi.Arm(FaultSite::kSnapshotTruncate, 0);
  {
    ScopedFaultInjector scope(&fi);
    ASSERT_TRUE(SaveWorkspaceSnapshot(ws, path, {}, direct).ok());
  }
  EXPECT_EQ(fi.fired(FaultSite::kSnapshotTruncate), 1u);
  Result<RestoredWorkspace> restored = LoadWorkspaceSnapshot(scheme, path);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument);
}

TEST(SnapshotTest, UnarmedInjectorIsInvisible) {
  // An installed but unarmed injector must not perturb the bytes.
  SchemePtr scheme = TwoRelScheme();
  std::vector<Dependency> deps;
  InternedWorkspace ws = PopulatedWorkspace(scheme, &deps);
  std::string path = ::testing::TempDir() + "/ccfp_snapshot_unarmed.bin";

  FaultInjector fi(1);
  {
    ScopedFaultInjector scope(&fi);
    ASSERT_TRUE(SaveWorkspaceSnapshot(ws, path).ok());
  }
  Result<RestoredWorkspace> restored = LoadWorkspaceSnapshot(scheme, path);
  ASSERT_TRUE(restored.ok()) << restored.status();
  ExpectObservablyEqual(ws, restored->ws, deps);
}

TEST(SnapshotChainLockTest, ExcludesSecondHolderUntilReleased) {
  std::string prefix = ::testing::TempDir() + "/ccfp_chain_lock_excl";
  std::remove(SnapshotChainLock::LockPath(prefix).c_str());

  SnapshotChainLock a;
  ASSERT_TRUE(a.Acquire(prefix).ok());
  EXPECT_TRUE(a.held());
  EXPECT_FALSE(a.adopted_stale());

  // flock ownership follows the open file description, so a second open
  // in the same process contends exactly like another process would.
  SnapshotChainLock b;
  Status contested = b.Acquire(prefix);
  ASSERT_FALSE(contested.ok());
  EXPECT_EQ(contested.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(contested.message().find("locked by live pid"),
            std::string::npos);
  EXPECT_FALSE(b.held());

  a.Release();
  EXPECT_FALSE(a.held());
  // A clean release clears the pid stamp: the takeover is not "stale".
  ASSERT_TRUE(b.Acquire(prefix).ok());
  EXPECT_FALSE(b.adopted_stale());
}

TEST(SnapshotChainLockTest, DetectsStaleStampFromDeadHolder) {
  std::string prefix = ::testing::TempDir() + "/ccfp_chain_lock_stale";
  std::string lock_path = SnapshotChainLock::LockPath(prefix);
  // A dead holder: its pid stamp is on disk but the kernel dropped its
  // flock when it exited — simulated by writing the stamp with no lock.
  {
    std::ofstream out(lock_path, std::ios::trunc);
    out << 999999 << "\n";
  }
  SnapshotChainLock lock;
  ASSERT_TRUE(lock.Acquire(prefix).ok());
  EXPECT_TRUE(lock.adopted_stale());
  lock.Release();

  // The adoption re-stamped and then cleanly cleared; a fresh acquisition
  // sees nothing stale.
  ASSERT_TRUE(lock.Acquire(prefix).ok());
  EXPECT_FALSE(lock.adopted_stale());
}

TEST(SnapshotChainLockTest, ExclusiveWriterLocksOnFirstSave) {
  SchemePtr scheme = TwoRelScheme();
  InternedWorkspace ws = PopulatedWorkspace(scheme, nullptr);
  std::string prefix = ::testing::TempDir() + "/ccfp_chain_lock_writer";
  std::remove(SnapshotChainLock::LockPath(prefix).c_str());

  SnapshotChainPolicy exclusive;
  exclusive.exclusive = true;
  SnapshotChainWriter first(prefix, exclusive);
  EXPECT_FALSE(first.lock().held());  // construction never contends
  ASSERT_TRUE(first.Save(ws).ok());
  EXPECT_TRUE(first.lock().held());

  // A second exclusive writer on the same chain is refused before it
  // writes a byte; a default (non-exclusive) writer keeps the historical
  // free-for-all the crash-interleaving tests rely on.
  SnapshotChainWriter second(prefix, exclusive);
  Status refused = second.Save(ws);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(second.has_base());

  SnapshotChainWriter carefree(prefix);
  EXPECT_TRUE(carefree.Save(ws).ok());
}

}  // namespace
}  // namespace ccfp
