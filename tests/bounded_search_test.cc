#include <gtest/gtest.h>

#include "core/parser.h"
#include "core/satisfies.h"
#include "fd/closure.h"
#include "ind/implication.h"
#include "search/bounded.h"
#include "util/rng.h"

namespace ccfp {
namespace {

class BoundedSearchTest : public ::testing::Test {
 protected:
  SchemePtr scheme_ = MakeScheme({{"R", {"A", "B"}}, {"S", {"C", "D"}}});

  Dependency Dep(const std::string& text) {
    return ParseDependency(*scheme_, text).value();
  }
};

TEST_F(BoundedSearchTest, FindsFdCounterexample) {
  // {A -> B} does not imply B -> A; a 2-tuple, 2-value counterexample
  // exists.
  Result<BoundedSearchResult> result = FindCounterexample(
      scheme_, {Dep("R: A -> B")}, Dep("R: B -> A"));
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(result->counterexample.has_value());
  const Database& db = *result->counterexample;
  EXPECT_TRUE(Satisfies(db, Dep("R: A -> B")));
  EXPECT_FALSE(Satisfies(db, Dep("R: B -> A")));
}

TEST_F(BoundedSearchTest, SharedWorkspaceReusesCompiledTables) {
  // Two searches over the same scheme through one caller-owned workspace:
  // identical verdicts, and the second search compiles nothing new where
  // the first already projected the same (relation, columns).
  BoundedSearchWorkspace workspace;
  BoundedSearchOptions options;
  options.workspace = &workspace;
  Result<BoundedSearchResult> first = FindCounterexample(
      scheme_, {Dep("R: A -> B")}, Dep("R: B -> A"), options);
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(first->counterexample.has_value());
  std::uint64_t built_after_first = workspace.stats().tables_built;
  EXPECT_GT(built_after_first, 0u);

  // Swapped roles reuse both FD tables (lhs/pair column sets coincide
  // with the first search's), so no new table is compiled.
  Result<BoundedSearchResult> second = FindCounterexample(
      scheme_, {Dep("R: B -> A")}, Dep("R: A -> B"), options);
  ASSERT_TRUE(second.ok()) << second.status();
  ASSERT_TRUE(second->counterexample.has_value());
  EXPECT_GT(workspace.stats().tables_reused, 0u);

  // And the workspace must not change what is found.
  Result<BoundedSearchResult> plain = FindCounterexample(
      scheme_, {Dep("R: A -> B")}, Dep("R: B -> A"));
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(plain->counterexample.has_value());
  EXPECT_EQ(plain->candidates_tested, first->candidates_tested);
  EXPECT_TRUE(*plain->counterexample == *first->counterexample);
}

TEST_F(BoundedSearchTest, ExhaustsOnActualImplication) {
  Result<BoundedSearchResult> result = FindCounterexample(
      scheme_, {Dep("R: A -> B")}, Dep("R: A -> B"));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->counterexample.has_value());
  EXPECT_TRUE(result->exhausted);
}

TEST_F(BoundedSearchTest, FindsIndCounterexample) {
  Result<BoundedSearchResult> result = FindCounterexample(
      scheme_, {Dep("R[A] <= S[C]")}, Dep("S[C] <= R[A]"));
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->counterexample.has_value());
  EXPECT_TRUE(Satisfies(*result->counterexample, Dep("R[A] <= S[C]")));
  EXPECT_FALSE(Satisfies(*result->counterexample, Dep("S[C] <= R[A]")));
}

TEST_F(BoundedSearchTest, RespectsCandidateBudget) {
  BoundedSearchOptions options;
  options.max_candidates = 3;
  options.max_tuples_per_relation = 2;
  Result<BoundedSearchResult> result = FindCounterexample(
      scheme_, {Dep("R: A -> B")}, Dep("R: A -> B"), options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->exhausted);
}

TEST_F(BoundedSearchTest, MixedTheoremFourFourStaysCounterexampleFree) {
  // Theorem 4.4: {R: A -> B, R[A] <= R[B]} |=fin R[B] <= R[A], so no
  // *finite* counterexample exists at any bound — the bounded search must
  // come back empty (this is the finite-implication side of the story).
  SchemePtr scheme = MakeScheme({{"R", {"A", "B"}}});
  std::vector<Dependency> premises = {
      ParseDependency(*scheme, "R: A -> B").value(),
      ParseDependency(*scheme, "R[A] <= R[B]").value(),
  };
  Dependency conclusion = ParseDependency(*scheme, "R[B] <= R[A]").value();
  BoundedSearchOptions options;
  options.max_tuples_per_relation = 3;
  options.domain_size = 3;
  Result<BoundedSearchResult> result =
      FindCounterexample(scheme, premises, conclusion, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->exhausted);
  EXPECT_FALSE(result->counterexample.has_value());
}

// Differential property test: for random small FD/IND instances, the
// bounded search never contradicts the exact engines (a counterexample
// refutes; absence below the bound proves nothing).
class BoundedDifferentialTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BoundedDifferentialTest, NeverContradictsFdEngine) {
  SplitMix64 rng(GetParam());
  SchemePtr scheme = MakeScheme({{"R", {"A", "B", "C"}}});
  std::vector<Fd> sigma;
  for (int i = 0; i < 3; ++i) {
    std::vector<AttrId> lhs, rhs;
    for (AttrId a = 0; a < 3; ++a) {
      if (rng.Chance(1, 2)) lhs.push_back(a);
      if (rng.Chance(1, 3)) rhs.push_back(a);
    }
    if (rhs.empty()) rhs.push_back(static_cast<AttrId>(rng.Below(3)));
    sigma.push_back(Fd{0, lhs, rhs});
  }
  std::vector<AttrId> t_lhs, t_rhs;
  for (AttrId a = 0; a < 3; ++a) {
    if (rng.Chance(1, 2)) t_lhs.push_back(a);
    if (rng.Chance(1, 2)) t_rhs.push_back(a);
  }
  if (t_rhs.empty()) t_rhs.push_back(0);
  Fd target{0, t_lhs, t_rhs};

  std::vector<Dependency> premises;
  for (const Fd& fd : sigma) premises.push_back(Dependency(fd));
  Result<BoundedSearchResult> result =
      FindCounterexample(scheme, premises, Dependency(target));
  ASSERT_TRUE(result.ok());
  bool implied = FdImplies(*scheme, sigma, target);
  if (result->counterexample.has_value()) {
    EXPECT_FALSE(implied) << "bounded counterexample vs implied FD";
  }
  // FDs over a 3-attribute scheme: a 2-tuple counterexample always exists
  // when not implied (the standard two-tuple Armstrong argument), so the
  // search must find one.
  if (!implied) {
    EXPECT_TRUE(result->counterexample.has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundedDifferentialTest,
                         ::testing::Range<std::uint64_t>(1, 31));

TEST_F(BoundedSearchTest, AgreesWithIndEngineOnUnaryInstances) {
  std::vector<Dependency> premises = {Dep("R[A] <= S[C]"),
                                      Dep("S[C] <= S[D]")};
  IndImplication engine(
      scheme_, {premises[0].ind(), premises[1].ind()});
  for (const char* text :
       {"R[A] <= S[D]", "R[B] <= S[C]", "S[D] <= R[A]", "R[A] <= S[C]"}) {
    Dependency target = Dep(text);
    bool implied = *engine.Implies(target.ind());
    Result<BoundedSearchResult> result =
        FindCounterexample(scheme_, premises, target);
    ASSERT_TRUE(result.ok());
    if (implied) {
      EXPECT_FALSE(result->counterexample.has_value()) << text;
    } else {
      // Theorem 3.1: finite implication = implication for INDs, and the
      // Rule (*) counterexamples are small — the bound suffices here.
      EXPECT_TRUE(result->counterexample.has_value()) << text;
    }
  }
}

}  // namespace
}  // namespace ccfp
