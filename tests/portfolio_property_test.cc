// Determinism and coverage properties of the refutation portfolio
// (search/portfolio.h):
//   (a) the parallel portfolio is *bit-identical* to a sequential ladder
//       sweep — verdict, witness, winner, and every per-rung report — at
//       pool widths 1/2/4/8, including budgets that drain mid-rung;
//   (b) shape monotonicity — a counterexample found within shape (t, d)
//       is also found within (t+1, d) and (t, d+1): growing the ladder
//       never loses a refutation;
//   (c) the PR's acceptance workload — a query whose smallest
//       counterexample needs a third tuple, kUnknown under the classic
//       fixed 2x2 search — flips to a verified kNotImplied under the
//       portfolio with the same total Budget, sequentially and at every
//       pool width.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/satisfies.h"
#include "search/portfolio.h"
#include "solve/solver.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/task_pool.h"

namespace ccfp {
namespace {

/// Canonical rendering of everything the determinism contract pins: the
/// winner, the totals, and each rung's (shape, status, share, candidates,
/// note) tuple. Two runs are "bit-identical" iff these strings match and
/// the witnesses compare equal.
std::string Render(const PortfolioResult& r) {
  std::string out = StrCat("winner=", r.winner == PortfolioResult::kNoRung
                                          ? std::string("none")
                                          : StrCat(r.winner),
                           " candidates=", r.candidates_tested,
                           " scanned=", r.rungs_scanned,
                           " skipped=", r.rungs_skipped);
  for (const RungReport& rung : r.rungs) {
    out += StrCat("\n  [", rung.shape.ToString(), "] ",
                  RungStatusToString(rung.status), " share=", rung.share,
                  " candidates=", rung.candidates_tested, " note=", rung.note);
  }
  return out;
}

struct Workload {
  SchemePtr scheme;
  std::vector<Dependency> sigma;
  Dependency target{Fd{0, {0}, {0}}};  // placeholder; always overwritten
};

/// Random two-relation FD+IND workloads over arity-2 relations: small
/// enough that several ladder rungs fully scan, varied enough that some
/// queries refute at rung 0, some only above it, and some not at all.
Workload RandomWorkload(SplitMix64& rng) {
  Workload w;
  w.scheme = MakeScheme({{"R", {"A", "B"}}, {"S", {"C", "D"}}});
  std::size_t deps = 1 + rng.Below(3);
  for (std::size_t i = 0; i < deps; ++i) {
    if (rng.Chance(1, 2)) {
      RelId rel = static_cast<RelId>(rng.Below(2));
      AttrId x = static_cast<AttrId>(rng.Below(2));
      w.sigma.push_back(Dependency(Fd{rel, {x}, {static_cast<AttrId>(1 - x)}}));
    } else {
      Ind ind{static_cast<RelId>(rng.Below(2)),
              {static_cast<AttrId>(rng.Below(2))},
              static_cast<RelId>(rng.Below(2)),
              {static_cast<AttrId>(rng.Below(2))}};
      if (!Validate(*w.scheme, ind).ok() || IsTrivial(ind)) continue;
      w.sigma.push_back(Dependency(ind));
    }
  }
  if (rng.Chance(1, 2)) {
    RelId rel = static_cast<RelId>(rng.Below(2));
    AttrId x = static_cast<AttrId>(rng.Below(2));
    w.target = Dependency(Fd{rel, {x}, {static_cast<AttrId>(1 - x)}});
  } else {
    w.target = Dependency(Ind{0, {static_cast<AttrId>(rng.Below(2))}, 1,
                              {static_cast<AttrId>(rng.Below(2))}});
  }
  return w;
}

/// Runs the same portfolio sequentially and on pools of width 1/2/4/8 and
/// expects identical results throughout.
void ExpectWidthInvariant(const Workload& w, const Budget& budget) {
  PortfolioOptions opts;  // defaults: 2x2 base, +2/+2 growth, 6 rungs
  RefutationPortfolio sequential(w.scheme, w.sigma, w.target, opts);
  Result<PortfolioResult> baseline = sequential.Run(budget);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  std::string want = Render(*baseline);
  for (unsigned width : {1u, 2u, 4u, 8u}) {
    TaskPool pool(width);
    PortfolioOptions popts;
    popts.pool = &pool;
    RefutationPortfolio parallel(w.scheme, w.sigma, w.target, popts);
    Result<PortfolioResult> run = parallel.Run(budget);
    ASSERT_TRUE(run.ok()) << run.status();
    EXPECT_EQ(Render(*run), want)
        << "portfolio diverged from the sequential sweep at pool width "
        << width;
    ASSERT_EQ(run->counterexample.has_value(),
              baseline->counterexample.has_value());
    if (run->counterexample.has_value()) {
      EXPECT_TRUE(*run->counterexample == *baseline->counterexample)
          << "witness differs at pool width " << width;
    }
  }
}

class PortfolioPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

// --- (a) width invariance under an ample budget -------------------------

TEST_P(PortfolioPropertyTest, MatchesSequentialLadderAtEveryWidth) {
  SplitMix64 rng(GetParam() * 193 + 3);
  for (int i = 0; i < 3; ++i) {
    Workload w = RandomWorkload(rng);
    Budget budget;
    budget.steps = 20000;  // funds several rungs, drains the tail
    ExpectWidthInvariant(w, budget);
  }
}

// --- (a) width invariance when the budget drains mid-rung ---------------

TEST_P(PortfolioPropertyTest, MatchesSequentialUnderMidRungStarvation) {
  SplitMix64 rng(GetParam() * 977 + 41);
  Workload w = RandomWorkload(rng);
  // Sweep budgets from "rung 0 stops after one candidate" through "the
  // tail rungs get partial shares": every SplitLadder boundary shape —
  // full shares, truncated shares, drained-to-zero shares — shows up at
  // some point of this ladder of budgets.
  for (std::uint64_t steps : {1ull, 3ull, 10ull, 40ull, 200ull, 1000ull,
                              5000ull}) {
    Budget budget;
    budget.steps = steps;
    ExpectWidthInvariant(w, budget);
  }
}

// --- (b) shape monotonicity ---------------------------------------------

TEST_P(PortfolioPropertyTest, GrowingTheShapeNeverLosesARefutation) {
  SplitMix64 rng(GetParam() * 59 + 17);
  for (int i = 0; i < 3; ++i) {
    Workload w = RandomWorkload(rng);
    BoundedSearchOptions base;
    base.max_tuples_per_relation = 2;
    base.domain_size = 2;
    Result<BoundedSearchResult> small =
        FindCounterexample(w.scheme, w.sigma, w.target, base);
    ASSERT_TRUE(small.ok()) << small.status();
    if (!small->counterexample.has_value()) continue;
    for (int axis = 0; axis < 2; ++axis) {
      BoundedSearchOptions grown = base;
      if (axis == 0) {
        grown.max_tuples_per_relation++;
      } else {
        grown.domain_size++;
      }
      Result<BoundedSearchResult> large =
          FindCounterexample(w.scheme, w.sigma, w.target, grown);
      ASSERT_TRUE(large.ok()) << large.status();
      EXPECT_TRUE(large->counterexample.has_value())
          << "refutation lost growing axis " << axis << " for "
          << w.target.ToString(*w.scheme);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PortfolioPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 9));

// --- (c) the acceptance workload ----------------------------------------

/// R(A,B,C) with sigma = { A -> B, R[B,C] <= R[C,A] } and target
/// R: A -> C. With exactly two tuples any A -> C violation forces, via
/// the IND, a = b = c1 and then c1 = c2 — contradiction — so no 2-tuple
/// counterexample exists at any domain size and the classic fixed 2x2
/// search exhausts its shape; the whole mixed pipeline lands on kUnknown
/// (the cyclic IND diverges the chase, the sound rules cannot derive the
/// target). The ladder's 3-tuple rung finds the minimal witness
/// (0,0,0), (0,0,1), (1,0,0).
Workload WideWorkload() {
  Workload w;
  w.scheme = MakeScheme({{"R", {"A", "B", "C"}}});
  w.sigma.push_back(Dependency(Fd{0, {0}, {1}}));
  w.sigma.push_back(Dependency(Ind{0, {1, 2}, 0, {2, 0}}));
  w.target = Dependency(Fd{0, {0}, {2}});
  return w;
}

TEST(PortfolioAcceptanceTest, WideWorkloadFlipsUnknownToNotImplied) {
  Workload w = WideWorkload();
  Budget budget;  // the default budget, identical for both solvers

  SolveOptions fixed;
  fixed.search_max_rungs = 1;  // the classic single-shape search
  ImplicationSolver fixed_solver(w.scheme, w.sigma, fixed);
  Verdict before = fixed_solver.Solve(w.target, budget).value();
  EXPECT_EQ(before.outcome, ImplicationVerdict::kUnknown)
      << before.ToString(*w.scheme);

  ImplicationSolver portfolio_solver(w.scheme, w.sigma);
  Verdict after = portfolio_solver.Solve(w.target, budget).value();
  EXPECT_EQ(after.outcome, ImplicationVerdict::kNotImplied)
      << after.ToString(*w.scheme);
  ASSERT_TRUE(after.counterexample.has_value());
  EXPECT_TRUE(after.counterexample_verified);
  // Belt and braces: re-check the witness with the legacy model checker.
  SatisfiesOptions legacy{SatisfiesEngine::kLegacy};
  for (const Dependency& dep : w.sigma) {
    EXPECT_TRUE(Satisfies(*after.counterexample, dep, legacy));
  }
  EXPECT_FALSE(Satisfies(*after.counterexample, w.target, legacy));
}

TEST(PortfolioAcceptanceTest, WideWorkloadVerdictIdenticalAtEveryWidth) {
  Workload w = WideWorkload();
  Budget budget;
  ImplicationSolver sequential(w.scheme, w.sigma);
  Verdict baseline = sequential.Solve(w.target, budget).value();
  ASSERT_EQ(baseline.outcome, ImplicationVerdict::kNotImplied);
  std::string want = baseline.ToString(*w.scheme);
  for (unsigned width : {1u, 2u, 4u, 8u}) {
    TaskPool pool(width);
    SolveOptions raced;
    raced.pool = &pool;
    ImplicationSolver solver(w.scheme, w.sigma, raced);
    Verdict v = solver.Solve(w.target, budget).value();
    EXPECT_EQ(v.ToString(*w.scheme), want)
        << "raced verdict diverged at pool width " << width;
    ASSERT_TRUE(v.counterexample.has_value());
    EXPECT_TRUE(*v.counterexample == *baseline.counterexample);
  }
}

}  // namespace
}  // namespace ccfp
