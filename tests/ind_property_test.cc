// Property-based cross-checks of the three independent IND implication
// engines: the Corollary 3.2 BFS (IndImplication), the Theorem 3.1 Rule (*)
// construction (IndChaseDecide), and proof objects (IndProof).
#include <algorithm>
#include <gtest/gtest.h>

#include "chase/ind_chase.h"
#include "core/satisfies.h"
#include "ind/implication.h"
#include "ind/rules.h"
#include "util/rng.h"

namespace ccfp {
namespace {

struct RandomInstance {
  SchemePtr scheme;
  std::vector<Ind> sigma;
  Ind target;
};

// Deterministic random instance: a few relations of small arity, random
// INDs of width 1..2, and a random unary/binary target.
RandomInstance MakeInstance(std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::size_t num_rels = 2 + rng.Below(3);        // 2..4 relations
  std::vector<std::pair<std::string, std::vector<std::string>>> rels;
  for (std::size_t r = 0; r < num_rels; ++r) {
    std::size_t arity = 2 + rng.Below(2);  // 2..3 attributes
    std::vector<std::string> attrs;
    for (std::size_t a = 0; a < arity; ++a) {
      attrs.push_back(std::string(1, static_cast<char>('A' + a)));
    }
    rels.emplace_back(std::string(1, static_cast<char>('R' + r)), attrs);
  }
  RandomInstance instance;
  instance.scheme = MakeScheme(rels);

  auto random_seq = [&](RelId rel, std::size_t width) {
    std::size_t arity = instance.scheme->relation(rel).arity();
    std::vector<AttrId> all(arity);
    for (AttrId a = 0; a < arity; ++a) all[a] = a;
    for (std::size_t i = arity; i > 1; --i) {
      std::swap(all[i - 1], all[rng.Below(i)]);
    }
    all.resize(width);
    return all;
  };

  std::size_t num_inds = 2 + rng.Below(5);
  for (std::size_t i = 0; i < num_inds; ++i) {
    RelId r1 = static_cast<RelId>(rng.Below(num_rels));
    RelId r2 = static_cast<RelId>(rng.Below(num_rels));
    std::size_t max_width =
        std::min(instance.scheme->relation(r1).arity(),
                 instance.scheme->relation(r2).arity());
    std::size_t width = 1 + rng.Below(std::min<std::size_t>(2, max_width));
    instance.sigma.push_back(
        Ind{r1, random_seq(r1, width), r2, random_seq(r2, width)});
  }
  RelId t1 = static_cast<RelId>(rng.Below(num_rels));
  RelId t2 = static_cast<RelId>(rng.Below(num_rels));
  std::size_t max_width = std::min(instance.scheme->relation(t1).arity(),
                                   instance.scheme->relation(t2).arity());
  std::size_t width = 1 + rng.Below(std::min<std::size_t>(2, max_width));
  instance.target = Ind{t1, random_seq(t1, width), t2, random_seq(t2, width)};
  return instance;
}

class IndCrossEngineTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IndCrossEngineTest, BfsAgreesWithRuleStarChase) {
  RandomInstance instance = MakeInstance(GetParam());
  IndImplication bfs(instance.scheme, instance.sigma);
  Result<IndDecision> bfs_decision = bfs.Decide(instance.target);
  ASSERT_TRUE(bfs_decision.ok()) << bfs_decision.status();

  Result<IndChaseResult> chase =
      IndChaseDecide(instance.scheme, instance.sigma, instance.target);
  ASSERT_TRUE(chase.ok()) << chase.status();

  EXPECT_EQ(bfs_decision->implied, chase->implied)
      << Dependency(instance.target).ToString(*instance.scheme);
}

TEST_P(IndCrossEngineTest, ChaseResultSatisfiesSigma) {
  RandomInstance instance = MakeInstance(GetParam());
  Result<IndChaseResult> chase =
      IndChaseDecide(instance.scheme, instance.sigma, instance.target);
  ASSERT_TRUE(chase.ok()) << chase.status();
  for (const Ind& ind : instance.sigma) {
    EXPECT_TRUE(Satisfies(chase->db, ind))
        << Dependency(ind).ToString(*instance.scheme);
  }
}

TEST_P(IndCrossEngineTest, PositiveDecisionsCarryCheckableProofs) {
  RandomInstance instance = MakeInstance(GetParam());
  IndImplication bfs(instance.scheme, instance.sigma);
  IndDecisionOptions options;
  options.want_proof = true;
  Result<IndDecision> decision = bfs.Decide(instance.target, options);
  ASSERT_TRUE(decision.ok());
  if (decision->implied) {
    ASSERT_TRUE(decision->proof.has_value());
    EXPECT_TRUE(decision->proof->Check().ok()) << decision->proof->Check();
    EXPECT_EQ(decision->proof->conclusion(), instance.target);
  } else {
    EXPECT_FALSE(decision->proof.has_value());
  }
}

TEST_P(IndCrossEngineTest, NegativeDecisionsHaveCounterexample) {
  // When the BFS says "not implied", the Rule (*) database is a concrete
  // counterexample: it satisfies Sigma but violates the target.
  RandomInstance instance = MakeInstance(GetParam());
  IndImplication bfs(instance.scheme, instance.sigma);
  Result<IndDecision> decision = bfs.Decide(instance.target);
  ASSERT_TRUE(decision.ok());
  if (decision->implied) return;
  Result<IndChaseResult> chase =
      IndChaseDecide(instance.scheme, instance.sigma, instance.target);
  ASSERT_TRUE(chase.ok());
  EXPECT_TRUE(SatisfiesAll(chase->db, [&] {
    std::vector<Dependency> deps;
    for (const Ind& ind : instance.sigma) deps.push_back(Dependency(ind));
    return deps;
  }()));
  EXPECT_FALSE(Satisfies(chase->db, instance.target));
}

TEST_P(IndCrossEngineTest, ImpliedIndsHoldInChasedModels) {
  // Soundness against model checking: chase an arbitrary seed database to a
  // Sigma-model, then every implied IND must hold in it.
  RandomInstance instance = MakeInstance(GetParam());
  SplitMix64 rng(GetParam() ^ 0xABCDEF);
  Database db(instance.scheme);
  for (RelId rel = 0; rel < instance.scheme->size(); ++rel) {
    for (int i = 0; i < 2; ++i) {
      Tuple t;
      for (std::size_t a = 0; a < instance.scheme->relation(rel).arity();
           ++a) {
        t.push_back(Value::Int(static_cast<std::int64_t>(rng.Below(5))));
      }
      db.Insert(rel, std::move(t));
    }
  }
  Result<std::uint64_t> added = IndChaseFixpoint(db, instance.sigma);
  ASSERT_TRUE(added.ok()) << added.status();

  IndImplication bfs(instance.scheme, instance.sigma);
  for (const Ind& ind : bfs.AllImpliedInds(2)) {
    EXPECT_TRUE(Satisfies(db, ind))
        << "implied IND violated by a Sigma-model: "
        << Dependency(ind).ToString(*instance.scheme);
  }
}

TEST_P(IndCrossEngineTest, MutatedProofsAreRejected) {
  RandomInstance instance = MakeInstance(GetParam());
  IndImplication bfs(instance.scheme, instance.sigma);
  IndDecisionOptions options;
  options.want_proof = true;
  Result<IndDecision> decision = bfs.Decide(instance.target, options);
  ASSERT_TRUE(decision.ok());
  if (!decision->implied || decision->proof->steps().size() < 2) return;

  SplitMix64 rng(GetParam() ^ 0x5EED);
  const IndProof& good = *decision->proof;

  // Mutation 1: swap the conclusion of a random step for a different IND
  // (the target's reverse — rarely equal to any legitimate line).
  {
    IndProof mutated(instance.scheme, instance.sigma);
    std::size_t victim = rng.Below(good.steps().size());
    for (std::size_t i = 0; i < good.steps().size(); ++i) {
      IndProofStep step = good.steps()[i];
      if (i == victim) {
        step.conclusion = Ind{instance.target.rhs_rel, instance.target.rhs,
                              instance.target.lhs_rel, instance.target.lhs};
      }
      mutated.AddStep(std::move(step));
    }
    // Either the checker rejects, or (rarely) the mutation coincided with
    // a valid line; in that case the final conclusion changed and the
    // proof proves something else.
    if (mutated.Check().ok()) {
      EXPECT_FALSE(victim == good.steps().size() - 1 &&
                   mutated.conclusion() == instance.target);
    }
  }

  // Mutation 2: corrupt a projection step's position list but keep its
  // claimed conclusion — the checker must notice the mismatch (or the
  // rotated positions coincidentally produce the same conclusion, which
  // IndProjectPermute determinism rules out unless the step was symmetric).
  {
    IndProof corrupted(instance.scheme, instance.sigma);
    bool mutated_any = false;
    for (std::size_t i = 0; i < good.steps().size(); ++i) {
      IndProofStep step = good.steps()[i];
      if (!mutated_any && step.rule == IndRule::kProjection &&
          step.positions.size() >= 2) {
        std::rotate(step.positions.begin(), step.positions.begin() + 1,
                    step.positions.end());
        mutated_any = true;
        // The claimed conclusion no longer matches unless rotation is a
        // no-op on this particular IND; verify rejection in that case.
        IndProofStep original = good.steps()[i];
        Result<Ind> reprojected = IndProjectPermute(
            *instance.scheme,
            good.steps()[original.antecedents[0]].conclusion,
            step.positions);
        if (reprojected.ok() && *reprojected == step.conclusion) {
          mutated_any = false;  // harmless rotation; skip the expectation
        }
      }
      corrupted.AddStep(std::move(step));
    }
    if (mutated_any) {
      EXPECT_FALSE(corrupted.Check().ok())
          << "corrupted projection positions must be rejected";
    }
  }

  // Mutation 3: point a transitivity step at wrong antecedents.
  {
    IndProof rewired(instance.scheme, instance.sigma);
    bool mutated_any = false;
    for (std::size_t i = 0; i < good.steps().size(); ++i) {
      IndProofStep step = good.steps()[i];
      if (!mutated_any && step.rule == IndRule::kTransitivity && i >= 2) {
        step.antecedents = {0, 0};
        mutated_any = true;
      }
      rewired.AddStep(std::move(step));
    }
    if (mutated_any) {
      // Rewiring both antecedents to line 0 composes a line with itself;
      // valid only if line 0 happens to be self-composable AND the result
      // matches — overwhelmingly it is not.
      Status status = rewired.Check();
      if (status.ok()) {
        EXPECT_EQ(rewired.conclusion(), instance.target);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, IndCrossEngineTest,
                         ::testing::Range<std::uint64_t>(1, 61));

}  // namespace
}  // namespace ccfp
