// Cross-oracle property tests for the id-space bounded searcher: on random
// small FD+IND instances the searcher must (a) agree with the legacy
// candidate-materializing engine on counterexample existence, (b) never
// contradict the chase-based implication oracle, and (c) return only
// genuine counterexamples — databases that pass interned Satisfies on
// every premise and fail the conclusion.
#include <gtest/gtest.h>

#include "chase/chase.h"
#include "core/satisfies.h"
#include "fd/closure.h"
#include "search/bounded.h"
#include "util/rng.h"

namespace ccfp {
namespace {

struct RandomInstance {
  SchemePtr scheme;
  std::vector<Fd> fds;
  std::vector<Ind> inds;

  std::vector<Dependency> Premises() const {
    std::vector<Dependency> out;
    for (const Fd& fd : fds) out.push_back(Dependency(fd));
    for (const Ind& ind : inds) out.push_back(Dependency(ind));
    return out;
  }
};

// Random FD+IND instance with forward-only (acyclic) INDs, so the chase
// oracle always terminates.
RandomInstance MakeInstance(std::uint64_t seed, std::size_t relations,
                            std::size_t arity) {
  SplitMix64 rng(seed);
  std::vector<std::pair<std::string, std::vector<std::string>>> rels;
  for (std::size_t r = 0; r < relations; ++r) {
    std::vector<std::string> attrs;
    for (std::size_t a = 0; a < arity; ++a) {
      attrs.push_back(std::string(1, static_cast<char>('A' + a)));
    }
    rels.emplace_back("R" + std::to_string(r), attrs);
  }
  RandomInstance instance;
  instance.scheme = MakeScheme(rels);
  for (std::size_t r = 0; r < relations; ++r) {
    for (int i = 0; i < 2; ++i) {
      AttrId x = static_cast<AttrId>(rng.Below(arity));
      AttrId y = static_cast<AttrId>(rng.Below(arity));
      if (x == y) continue;
      instance.fds.push_back(Fd{static_cast<RelId>(r), {x}, {y}});
    }
  }
  std::size_t count = 1 + rng.Below(3);
  for (std::size_t i = 0; i < count && relations >= 2; ++i) {
    RelId r1 = static_cast<RelId>(rng.Below(relations - 1));
    RelId r2 = static_cast<RelId>(r1 + 1 + rng.Below(relations - r1 - 1));
    instance.inds.push_back(
        Ind{r1,
            {static_cast<AttrId>(rng.Below(arity))},
            r2,
            {static_cast<AttrId>(rng.Below(arity))}});
  }
  return instance;
}

Dependency RandomTarget(const RandomInstance& instance, SplitMix64& rng,
                        std::size_t arity) {
  RelId rel = static_cast<RelId>(rng.Below(instance.scheme->size()));
  AttrId x = static_cast<AttrId>(rng.Below(arity));
  AttrId y = static_cast<AttrId>(rng.Below(arity));
  if (x == y) y = static_cast<AttrId>((y + 1) % arity);
  if (rng.Chance(1, 2)) {
    return Dependency(Fd{rel, {x}, {y}});
  }
  return Dependency(
      Ind{rel,
          {x},
          static_cast<RelId>(rng.Below(instance.scheme->size())),
          {y}});
}

class BoundedCrossOracleTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BoundedCrossOracleTest, IdSpaceAndLegacyEnginesAgree) {
  RandomInstance instance = MakeInstance(GetParam(), 3, 2);
  std::vector<Dependency> premises = instance.Premises();
  SplitMix64 rng(GetParam() * 71 + 3);
  for (int t = 0; t < 3; ++t) {
    Dependency target = RandomTarget(instance, rng, 2);
    if (!Validate(*instance.scheme, target).ok()) continue;
    BoundedSearchOptions id_space;
    id_space.engine = BoundedSearchEngine::kIdSpace;
    BoundedSearchOptions legacy;
    legacy.engine = BoundedSearchEngine::kLegacy;
    Result<BoundedSearchResult> a =
        FindCounterexample(instance.scheme, premises, target, id_space);
    Result<BoundedSearchResult> b =
        FindCounterexample(instance.scheme, premises, target, legacy);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_TRUE(a->exhausted);
    ASSERT_TRUE(b->exhausted);
    EXPECT_EQ(a->counterexample.has_value(), b->counterexample.has_value())
        << target.ToString(*instance.scheme);
    // Same pre-order enumeration: when both find one, it is the same
    // database, not merely an equivalent one.
    if (a->counterexample.has_value() && b->counterexample.has_value()) {
      EXPECT_TRUE(*a->counterexample == *b->counterexample)
          << a->counterexample->ToString() << "\nvs\n"
          << b->counterexample->ToString();
    }
  }
}

TEST_P(BoundedCrossOracleTest, CounterexamplesAreGenuineAndChaseConsistent) {
  RandomInstance instance = MakeInstance(GetParam() * 101 + 7, 3, 2);
  std::vector<Dependency> premises = instance.Premises();
  SplitMix64 rng(GetParam() * 13 + 11);
  for (int t = 0; t < 3; ++t) {
    Dependency target = RandomTarget(instance, rng, 2);
    if (!Validate(*instance.scheme, target).ok()) continue;
    Result<BoundedSearchResult> search =
        FindCounterexample(instance.scheme, premises, target);
    ASSERT_TRUE(search.ok());
    Result<bool> implied = ChaseImplies(instance.scheme, instance.fds,
                                        instance.inds, target);
    if (search->counterexample.has_value()) {
      // (c) genuineness: the witness passes interned Satisfies on every
      // premise and fails the conclusion.
      const Database& db = *search->counterexample;
      IdDatabase interned(db);
      for (const Dependency& p : premises) {
        EXPECT_TRUE(interned.Satisfies(p))
            << "counterexample violates premise " <<
            p.ToString(*instance.scheme) << "\n" << db.ToString();
      }
      EXPECT_FALSE(interned.Satisfies(target))
          << "counterexample satisfies the conclusion "
          << target.ToString(*instance.scheme) << "\n" << db.ToString();
      // (b) a finite counterexample refutes unrestricted implication.
      if (implied.ok()) {
        EXPECT_FALSE(*implied)
            << "chase says implied but a counterexample exists: "
            << target.ToString(*instance.scheme) << "\n" << db.ToString();
      }
    }
  }
}

// Pure-FD instances: implication is decidable and the standard two-tuple
// Armstrong argument bounds counterexamples, so bounded-search existence
// must agree with the FD closure oracle in BOTH directions.
TEST_P(BoundedCrossOracleTest, PureFdSearchMatchesClosureOracle) {
  SplitMix64 rng(GetParam() * 997 + 1);
  SchemePtr scheme = MakeScheme({{"R", {"A", "B", "C"}}});
  std::vector<Fd> sigma;
  for (int i = 0; i < 3; ++i) {
    std::vector<AttrId> lhs, rhs;
    for (AttrId a = 0; a < 3; ++a) {
      if (rng.Chance(1, 2)) lhs.push_back(a);
      if (rng.Chance(1, 3)) rhs.push_back(a);
    }
    if (rhs.empty()) rhs.push_back(static_cast<AttrId>(rng.Below(3)));
    sigma.push_back(Fd{0, lhs, rhs});
  }
  std::vector<AttrId> t_lhs, t_rhs;
  for (AttrId a = 0; a < 3; ++a) {
    if (rng.Chance(1, 2)) t_lhs.push_back(a);
    if (rng.Chance(1, 2)) t_rhs.push_back(a);
  }
  if (t_rhs.empty()) t_rhs.push_back(0);
  Fd target{0, t_lhs, t_rhs};

  std::vector<Dependency> premises;
  for (const Fd& fd : sigma) premises.push_back(Dependency(fd));
  bool implied = FdImplies(*scheme, sigma, target);
  Result<bool> has_counterexample =
      HasBoundedCounterexample(scheme, premises, Dependency(target));
  ASSERT_TRUE(has_counterexample.ok()) << has_counterexample.status();
  EXPECT_EQ(implied, !*has_counterexample);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundedCrossOracleTest,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace ccfp
