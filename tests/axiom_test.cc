#include <algorithm>
#include <gtest/gtest.h>

#include "axiom/kary.h"
#include "axiom/oracle.h"
#include "axiom/sentence.h"
#include "core/parser.h"

namespace ccfp {
namespace {

// --- Universe enumeration ---------------------------------------------

TEST(UniverseTest, CountsMatchCombinatorics) {
  SchemePtr scheme = MakeScheme({{"R", {"A", "B"}}});
  UniverseOptions options;
  options.include_fds = true;
  options.include_inds = false;
  options.include_rds = false;
  options.max_fd_lhs = 1;
  // lhs in { {}, {A}, {B} }, rhs in {A, B}: 6 FDs.
  EXPECT_EQ(EnumerateUniverse(*scheme, options).size(), 6u);

  options.include_fds = false;
  options.include_inds = true;
  options.max_ind_width = 2;
  // width 1: 2*2 = 4; width 2: 2 sequences each side = 4; total 8.
  EXPECT_EQ(EnumerateUniverse(*scheme, options).size(), 8u);

  options.include_inds = false;
  options.include_rds = true;
  // ordered attr pairs: 4.
  EXPECT_EQ(EnumerateUniverse(*scheme, options).size(), 4u);
}

TEST(UniverseTest, AllMembersValidate) {
  SchemePtr scheme = MakeScheme({{"R", {"A", "B", "C"}}, {"S", {"D", "E"}}});
  UniverseOptions options;
  options.include_rds = true;
  options.max_fd_lhs = 2;
  options.max_ind_width = 2;
  for (const Dependency& dep : EnumerateUniverse(*scheme, options)) {
    EXPECT_TRUE(Validate(*scheme, dep).ok()) << dep.ToString(*scheme);
  }
}

TEST(UniverseTest, TrivialSubsetIsExactlyTheTautologies) {
  SchemePtr scheme = MakeScheme({{"R", {"A", "B"}}});
  UniverseOptions options;
  options.include_rds = true;
  std::vector<Dependency> universe = EnumerateUniverse(*scheme, options);
  std::vector<Dependency> trivial = TrivialSubset(*scheme, universe);
  for (const Dependency& dep : trivial) {
    EXPECT_TRUE(IsTrivial(*scheme, dep));
  }
  std::size_t count = 0;
  for (const Dependency& dep : universe) {
    if (IsTrivial(*scheme, dep)) ++count;
  }
  EXPECT_EQ(trivial.size(), count);
}

// --- Oracles ---------------------------------------------------------

class OracleTest : public ::testing::Test {
 protected:
  SchemePtr scheme_ = MakeScheme({{"R", {"A", "B", "C"}}, {"S", {"D", "E"}}});

  Dependency Dep(const std::string& text) {
    return ParseDependency(*scheme_, text).value();
  }
};

TEST_F(OracleTest, FdOracleIsExactOnFds) {
  FdOracle oracle(scheme_);
  EXPECT_EQ(oracle.Implies({Dep("R: A -> B"), Dep("R: B -> C")},
                           Dep("R: A -> C")),
            ImplicationVerdict::kImplied);
  EXPECT_EQ(oracle.Implies({Dep("R: A -> B")}, Dep("R: B -> A")),
            ImplicationVerdict::kNotImplied);
  EXPECT_EQ(oracle.Implies({Dep("R: A -> B")}, Dep("R[A] <= R[B]")),
            ImplicationVerdict::kUnknown);
}

TEST_F(OracleTest, IndOracleIsExactOnInds) {
  IndOracle oracle(scheme_);
  EXPECT_EQ(oracle.Implies({Dep("R[A] <= S[D]"), Dep("S[D] <= S[E]")},
                           Dep("R[A] <= S[E]")),
            ImplicationVerdict::kImplied);
  EXPECT_EQ(oracle.Implies({Dep("R[A] <= S[D]")}, Dep("S[D] <= R[A]")),
            ImplicationVerdict::kNotImplied);
  EXPECT_EQ(oracle.Implies({Dep("R: A -> B")}, Dep("R[A] <= S[D]")),
            ImplicationVerdict::kUnknown);
}

TEST_F(OracleTest, ChaseOracleHandlesMixedSets) {
  SchemePtr scheme = MakeScheme({{"R", {"X", "Y"}}, {"S", {"T", "U"}}});
  ChaseOracle oracle(scheme);
  std::vector<Dependency> premises = {
      ParseDependency(*scheme, "R[X, Y] <= S[T, U]").value(),
      ParseDependency(*scheme, "S: T -> U").value(),
  };
  EXPECT_EQ(oracle.Implies(premises,
                           ParseDependency(*scheme, "R: X -> Y").value()),
            ImplicationVerdict::kImplied);
  EXPECT_EQ(oracle.Implies(premises,
                           ParseDependency(*scheme, "R: Y -> X").value()),
            ImplicationVerdict::kNotImplied);
}

TEST_F(OracleTest, CounterexampleOracleRefutesFromWitness) {
  Database witness(scheme_);
  // Satisfies R: A -> B but violates R: B -> A.
  witness.Insert(0, TupleOfInts({1, 5, 0}));
  witness.Insert(0, TupleOfInts({2, 5, 0}));
  std::vector<Database> witnesses;
  witnesses.push_back(std::move(witness));
  CounterexampleOracle oracle(std::move(witnesses));
  EXPECT_EQ(oracle.Implies({Dep("R: A -> B")}, Dep("R: B -> A")),
            ImplicationVerdict::kNotImplied);
  // Cannot *prove* implication.
  EXPECT_EQ(oracle.Implies({Dep("R: A -> B")}, Dep("R: A -> B")),
            ImplicationVerdict::kUnknown);
}

TEST_F(OracleTest, ChainOracleTakesFirstDefiniteAnswer) {
  CounterexampleOracle empty({});
  FdOracle fd_oracle(scheme_);
  ChainOracle chain({&empty, &fd_oracle});
  EXPECT_EQ(chain.Implies({Dep("R: A -> B")}, Dep("R: A -> B")),
            ImplicationVerdict::kImplied);
  EXPECT_EQ(chain.Implies({Dep("R: A -> B")}, Dep("R[A] <= R[B]")),
            ImplicationVerdict::kUnknown);
  EXPECT_NE(chain.name().find("chain"), std::string::npos);
}

TEST_F(OracleTest, UnaryFiniteOracleUsesCountingRules) {
  SchemePtr scheme = MakeScheme({{"R", {"A", "B"}}});
  UnaryFiniteOracle oracle(scheme);
  std::vector<Dependency> premises = {
      ParseDependency(*scheme, "R: A -> B").value(),
      ParseDependency(*scheme, "R[A] <= R[B]").value(),
  };
  EXPECT_EQ(oracle.Implies(premises,
                           ParseDependency(*scheme, "R[B] <= R[A]").value()),
            ImplicationVerdict::kImplied);
  EXPECT_EQ(oracle.Implies({premises[0]},
                           ParseDependency(*scheme, "R[B] <= R[A]").value()),
            ImplicationVerdict::kNotImplied);
}

// --- k-ary closure machinery ------------------------------------------

TEST_F(OracleTest, KaryClosureFdExample) {
  // FDs have a 2-ary complete axiomatization [Ar], so the 2-ary closure of
  // an FD set within the FD universe equals its full consequence set...
  // but k-ary *closure* as defined in Theorem 5.1 uses |T| <= k subsets of
  // the *closure*, which for FDs reaches everything anyway (Armstrong's
  // rules are at most 2-ary). Verify on a small example.
  SchemePtr scheme = MakeScheme({{"R", {"A", "B", "C"}}});
  UniverseOptions options;
  options.max_fd_lhs = 2;
  options.include_inds = false;
  std::vector<Dependency> universe = EnumerateUniverse(*scheme, options);

  FdOracle oracle(scheme);
  std::vector<Dependency> start = {
      ParseDependency(*scheme, "R: A -> B").value(),
      ParseDependency(*scheme, "R: B -> C").value(),
  };
  KaryStats stats;
  std::vector<Dependency> closure =
      KaryClosure(universe, start, oracle, 2, &stats);
  EXPECT_FALSE(stats.saw_unknown);

  // The closure must contain exactly the FD consequences present in the
  // universe.
  for (const Dependency& tau : universe) {
    bool in_closure =
        std::find(closure.begin(), closure.end(), tau) != closure.end();
    bool implied =
        oracle.Implies(start, tau) == ImplicationVerdict::kImplied;
    EXPECT_EQ(in_closure, implied) << tau.ToString(*scheme);
  }
}

TEST_F(OracleTest, FindKaryEscapeDetectsUnclosedSets) {
  SchemePtr scheme = MakeScheme({{"R", {"A", "B", "C"}}});
  UniverseOptions options;
  options.max_fd_lhs = 1;
  options.include_inds = false;
  std::vector<Dependency> universe = EnumerateUniverse(*scheme, options);
  FdOracle oracle(scheme);
  // {A -> B, B -> C} is not closed under 2-ary implication: A -> C escapes.
  std::vector<Dependency> gamma = {
      ParseDependency(*scheme, "R: A -> B").value(),
      ParseDependency(*scheme, "R: B -> C").value(),
  };
  auto escape = FindKaryEscape(universe, gamma, oracle, 2);
  ASSERT_TRUE(escape.has_value());
  EXPECT_EQ(oracle.Implies(escape->premises, escape->conclusion),
            ImplicationVerdict::kImplied);
  EXPECT_FALSE(escape->ToString(*scheme).empty());
}

TEST_F(OracleTest, FullEscapeFindsUnboundedConsequence) {
  SchemePtr scheme = MakeScheme({{"R", {"A", "B"}}});
  UniverseOptions options;
  options.max_fd_lhs = 1;
  options.include_inds = true;
  options.max_ind_width = 1;
  std::vector<Dependency> universe = EnumerateUniverse(*scheme, options);
  UnaryFiniteOracle oracle(scheme);
  std::vector<Dependency> gamma = {
      ParseDependency(*scheme, "R: A -> B").value(),
      ParseDependency(*scheme, "R[A] <= R[B]").value(),
  };
  auto escape = FindFullEscape(universe, gamma, oracle);
  ASSERT_TRUE(escape.has_value());  // e.g. R[B] <= R[A]
}

TEST_F(OracleTest, Corollary52HoldsForArmstrongCounterexampleShape) {
  // The Section 5 warning example: T_k = {A1 -> A2, ..., A_{k+1} -> A_{k+2}}
  // with target A1 -> A_{k+2} satisfies (i) and (ii) but NOT (iii) — FDs
  // have a 2-ary axiomatization, so Corollary 5.2 must not apply.
  SchemePtr scheme =
      MakeScheme({{"R", {"A1", "A2", "A3", "A4"}}});
  UniverseOptions options;
  options.max_fd_lhs = 1;
  options.include_inds = false;
  std::vector<Dependency> universe = EnumerateUniverse(*scheme, options);
  FdOracle oracle(scheme);
  std::vector<Dependency> sigma = {
      ParseDependency(*scheme, "R: A1 -> A2").value(),
      ParseDependency(*scheme, "R: A2 -> A3").value(),
      ParseDependency(*scheme, "R: A3 -> A4").value(),
  };
  Dependency target = ParseDependency(*scheme, "R: A1 -> A4").value();
  auto failure = CheckCorollary52(universe, sigma, target, oracle,
                                  /*k=*/2, *scheme);
  ASSERT_TRUE(failure.has_value());
  EXPECT_NE(failure->find("(iii)"), std::string::npos);
}

}  // namespace
}  // namespace ccfp
