#include <gtest/gtest.h>

#include "chase/chase.h"
#include "core/satisfies.h"
#include "interact/finite_vs_unrestricted.h"
#include "interact/rules.h"
#include "interact/unary_finite.h"
#include "util/rng.h"

namespace ccfp {
namespace {

// --- Propositions 4.1-4.3 (rule appliers) -------------------------------

class InteractRulesTest : public ::testing::Test {
 protected:
  SchemePtr scheme_ =
      MakeScheme({{"R", {"X", "Y", "Z"}}, {"S", {"T", "U", "V"}}});
};

TEST_F(InteractRulesTest, PullbackLiteralForm) {
  // Proposition 4.1: {R[XY] <= S[TU], S: T -> U} |= R: X -> Y.
  Ind ind = MakeInd(*scheme_, "R", {"X", "Y"}, "S", {"T", "U"});
  Fd fd = MakeFd(*scheme_, "S", {"T"}, {"U"});
  Result<Fd> derived = ApplyPullback(*scheme_, ind, fd);
  ASSERT_TRUE(derived.ok()) << derived.status();
  EXPECT_EQ(*derived, MakeFd(*scheme_, "R", {"X"}, {"Y"}));
}

TEST_F(InteractRulesTest, PullbackPositionGeneralized) {
  // IND R[Z,X] <= S[U,T] with FD S: T -> U gives R: X -> Z.
  Ind ind = MakeInd(*scheme_, "R", {"Z", "X"}, "S", {"U", "T"});
  Fd fd = MakeFd(*scheme_, "S", {"T"}, {"U"});
  Result<Fd> derived = ApplyPullback(*scheme_, ind, fd);
  ASSERT_TRUE(derived.ok());
  EXPECT_EQ(*derived, MakeFd(*scheme_, "R", {"X"}, {"Z"}));
}

TEST_F(InteractRulesTest, PullbackRejectsUncoveredFd) {
  Ind ind = MakeInd(*scheme_, "R", {"X"}, "S", {"T"});
  Fd fd = MakeFd(*scheme_, "S", {"T"}, {"U"});  // U not in the IND rhs
  EXPECT_FALSE(ApplyPullback(*scheme_, ind, fd).ok());
}

TEST_F(InteractRulesTest, CollectionLiteralForm) {
  // Proposition 4.2: {R[XY] <= S[TU], R[XZ] <= S[TV], S: T -> U}
  //                  |= R[XYZ] <= S[TUV].
  Ind ind_xy = MakeInd(*scheme_, "R", {"X", "Y"}, "S", {"T", "U"});
  Ind ind_xz = MakeInd(*scheme_, "R", {"X", "Z"}, "S", {"T", "V"});
  Fd fd = MakeFd(*scheme_, "S", {"T"}, {"U"});
  Result<Ind> derived = ApplyCollection(*scheme_, ind_xy, ind_xz, fd);
  ASSERT_TRUE(derived.ok()) << derived.status();
  EXPECT_EQ(*derived, MakeInd(*scheme_, "R", {"X", "Y", "Z"}, "S",
                              {"T", "U", "V"}));
}

TEST_F(InteractRulesTest, CollectionRejectsMismatchedPrefix) {
  Ind ind_xy = MakeInd(*scheme_, "R", {"X", "Y"}, "S", {"T", "U"});
  Ind ind_zz = MakeInd(*scheme_, "R", {"Y", "Z"}, "S", {"T", "V"});
  Fd fd = MakeFd(*scheme_, "S", {"T"}, {"U"});
  EXPECT_FALSE(ApplyCollection(*scheme_, ind_xy, ind_zz, fd).ok());
}

TEST_F(InteractRulesTest, CollectionRejectsOverlap) {
  // Z == Y would repeat an attribute in the conclusion.
  Ind ind_xy = MakeInd(*scheme_, "R", {"X", "Y"}, "S", {"T", "U"});
  Ind ind_xz = MakeInd(*scheme_, "R", {"X", "Y"}, "S", {"T", "V"});
  Fd fd = MakeFd(*scheme_, "S", {"T"}, {"U"});
  EXPECT_FALSE(ApplyCollection(*scheme_, ind_xy, ind_xz, fd).ok());
}

TEST_F(InteractRulesTest, DeriveRdProposition43) {
  Ind ind_xy = MakeInd(*scheme_, "R", {"X", "Y"}, "S", {"T", "U"});
  Ind ind_xz = MakeInd(*scheme_, "R", {"X", "Z"}, "S", {"T", "U"});
  Fd fd = MakeFd(*scheme_, "S", {"T"}, {"U"});
  Result<Rd> derived = DeriveRd(*scheme_, ind_xy, ind_xz, fd);
  ASSERT_TRUE(derived.ok()) << derived.status();
  EXPECT_EQ(*derived, MakeRd(*scheme_, "R", {"Y"}, {"Z"}));
}

TEST_F(InteractRulesTest, DeriveRdRequiresSharedRhs) {
  Ind ind_xy = MakeInd(*scheme_, "R", {"X", "Y"}, "S", {"T", "U"});
  Ind ind_xz = MakeInd(*scheme_, "R", {"X", "Z"}, "S", {"T", "V"});
  Fd fd = MakeFd(*scheme_, "S", {"T"}, {"U"});
  EXPECT_FALSE(DeriveRd(*scheme_, ind_xy, ind_xz, fd).ok());
}

TEST_F(InteractRulesTest, SplitRdYieldsUnaryRds) {
  Rd rd = MakeRd(*scheme_, "R", {"X", "Y"}, {"Y", "Z"});
  std::vector<Rd> parts = SplitRd(rd);
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], MakeRd(*scheme_, "R", {"X"}, {"Y"}));
  EXPECT_EQ(parts[1], MakeRd(*scheme_, "R", {"Y"}, {"Z"}));
}

// Soundness of the derived dependencies: every random database satisfying
// the premises satisfies the conclusion (parameterized property test).
class InteractSoundnessTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(InteractSoundnessTest, DerivedDependenciesHoldInRandomModels) {
  SchemePtr scheme =
      MakeScheme({{"R", {"X", "Y", "Z"}}, {"S", {"T", "U", "V"}}});
  Ind ind_xy = MakeInd(*scheme, "R", {"X", "Y"}, "S", {"T", "U"});
  Ind ind_xz = MakeInd(*scheme, "R", {"X", "Z"}, "S", {"T", "V"});
  Ind ind_xz_same = MakeInd(*scheme, "R", {"X", "Z"}, "S", {"T", "U"});
  Fd fd = MakeFd(*scheme, "S", {"T"}, {"U"});

  Fd pullback = ApplyPullback(*scheme, ind_xy, fd).value();
  Ind collection = ApplyCollection(*scheme, ind_xy, ind_xz, fd).value();
  Rd rd = DeriveRd(*scheme, ind_xy, ind_xz_same, fd).value();

  SplitMix64 rng(GetParam());
  int models_tested = 0;
  for (int attempt = 0; attempt < 400 && models_tested < 5; ++attempt) {
    Database db(scheme);
    int r_size = 1 + static_cast<int>(rng.Below(3));
    int s_size = 2 + static_cast<int>(rng.Below(5));
    for (int i = 0; i < r_size; ++i) {
      db.Insert(0, {Value::Int(static_cast<std::int64_t>(rng.Below(3))),
                    Value::Int(static_cast<std::int64_t>(rng.Below(3))),
                    Value::Int(static_cast<std::int64_t>(rng.Below(3)))});
    }
    for (int i = 0; i < s_size; ++i) {
      db.Insert(1, {Value::Int(static_cast<std::int64_t>(rng.Below(3))),
                    Value::Int(static_cast<std::int64_t>(rng.Below(3))),
                    Value::Int(static_cast<std::int64_t>(rng.Below(3)))});
    }
    // Premise sets for the three propositions.
    if (Satisfies(db, ind_xy) && Satisfies(db, fd)) {
      EXPECT_TRUE(Satisfies(db, pullback)) << "Prop 4.1 unsound";
      if (Satisfies(db, ind_xz)) {
        EXPECT_TRUE(Satisfies(db, collection)) << "Prop 4.2 unsound";
        ++models_tested;
      }
      if (Satisfies(db, ind_xz_same)) {
        EXPECT_TRUE(Satisfies(db, rd)) << "Prop 4.3 unsound";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InteractSoundnessTest,
                         ::testing::Range<std::uint64_t>(1, 21));

// --- Unary finite implication (counting rules) ---------------------------

class UnaryFiniteTest : public ::testing::Test {
 protected:
  SchemePtr scheme_ = MakeScheme({{"R", {"A", "B"}}});
};

TEST_F(UnaryFiniteTest, Theorem44FiniteConsequences) {
  std::vector<Fd> fds = {MakeFd(*scheme_, "R", {"A"}, {"B"})};
  std::vector<Ind> inds = {MakeInd(*scheme_, "R", {"A"}, "R", {"B"})};
  UnaryFiniteImplication engine(scheme_, fds, inds);
  // Theorem 4.4(a): |=fin R[B] <= R[A].
  EXPECT_TRUE(engine.Implies(MakeInd(*scheme_, "R", {"B"}, "R", {"A"})));
  // Theorem 4.4(b): |=fin R: B -> A.
  EXPECT_TRUE(engine.Implies(MakeFd(*scheme_, "R", {"B"}, {"A"})));
}

TEST_F(UnaryFiniteTest, NoSpuriousConsequencesWithoutCycle) {
  // Without the IND, the FD alone implies nothing new.
  std::vector<Fd> fds = {MakeFd(*scheme_, "R", {"A"}, {"B"})};
  UnaryFiniteImplication engine(scheme_, fds, {});
  EXPECT_FALSE(engine.Implies(MakeFd(*scheme_, "R", {"B"}, {"A"})));
  EXPECT_FALSE(engine.Implies(MakeInd(*scheme_, "R", {"A"}, "R", {"B"})));
  EXPECT_TRUE(engine.Implies(MakeFd(*scheme_, "R", {"A"}, {"A"})));
}

TEST_F(UnaryFiniteTest, AcyclicMixtureStaysDirected) {
  SchemePtr scheme = MakeScheme({{"R", {"A", "B"}}, {"S", {"C", "D"}}});
  std::vector<Fd> fds = {MakeFd(*scheme, "R", {"A"}, {"B"})};
  std::vector<Ind> inds = {MakeInd(*scheme, "R", {"B"}, "S", {"C"})};
  UnaryFiniteImplication engine(scheme, fds, inds);
  EXPECT_TRUE(engine.Implies(MakeInd(*scheme, "R", {"B"}, "S", {"C"})));
  EXPECT_FALSE(engine.Implies(MakeInd(*scheme, "S", {"C"}, "R", {"B"})));
  EXPECT_FALSE(engine.Implies(MakeFd(*scheme, "R", {"B"}, {"A"})));
}

TEST_F(UnaryFiniteTest, SectionSixCycleReversesEverything) {
  // The Theorem 6.1 cycle for k = 2: R_i: A -> B, R_i[A] <= R_{i+1}[B].
  SchemePtr scheme = MakeScheme(
      {{"R0", {"A", "B"}}, {"R1", {"A", "B"}}, {"R2", {"A", "B"}}});
  std::vector<Fd> fds;
  std::vector<Ind> inds;
  for (int i = 0; i < 3; ++i) {
    std::string ri = "R" + std::to_string(i);
    std::string rn = "R" + std::to_string((i + 1) % 3);
    fds.push_back(MakeFd(*scheme, ri, {"A"}, {"B"}));
    inds.push_back(MakeInd(*scheme, ri, {"A"}, rn, {"B"}));
  }
  UnaryFiniteImplication engine(scheme, fds, inds);
  // sigma_2 = R0[B] <= R2[A].
  EXPECT_TRUE(engine.Implies(MakeInd(*scheme, "R0", {"B"}, "R2", {"A"})));
  // All FDs reverse.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(engine.Implies(
        MakeFd(*scheme, "R" + std::to_string(i), {"B"}, {"A"})));
  }
  // All INDs reverse.
  EXPECT_TRUE(engine.Implies(MakeInd(*scheme, "R1", {"B"}, "R0", {"A"})));
}

TEST_F(UnaryFiniteTest, BrokenCycleImpliesNothingExtra) {
  // Drop one IND from the k = 2 cycle: no reversals any more.
  SchemePtr scheme = MakeScheme(
      {{"R0", {"A", "B"}}, {"R1", {"A", "B"}}, {"R2", {"A", "B"}}});
  std::vector<Fd> fds;
  std::vector<Ind> inds;
  for (int i = 0; i < 3; ++i) {
    fds.push_back(MakeFd(*scheme, "R" + std::to_string(i), {"A"}, {"B"}));
  }
  inds.push_back(MakeInd(*scheme, "R0", {"A"}, "R1", {"B"}));
  inds.push_back(MakeInd(*scheme, "R1", {"A"}, "R2", {"B"}));
  // R2[A] <= R0[B] omitted.
  UnaryFiniteImplication engine(scheme, fds, inds);
  EXPECT_FALSE(engine.Implies(MakeInd(*scheme, "R0", {"B"}, "R2", {"A"})));
  EXPECT_FALSE(engine.Implies(MakeFd(*scheme, "R0", {"B"}, {"A"})));
  EXPECT_FALSE(engine.Implies(MakeInd(*scheme, "R1", {"B"}, "R0", {"A"})));
}

// Soundness of the finite engine against explicit finite models.
TEST_F(UnaryFiniteTest, FiniteConsequencesHoldInRandomFiniteModels) {
  std::vector<Fd> fds = {MakeFd(*scheme_, "R", {"A"}, {"B"})};
  std::vector<Ind> inds = {MakeInd(*scheme_, "R", {"A"}, "R", {"B"})};
  UnaryFiniteImplication engine(scheme_, fds, inds);
  std::vector<Dependency> consequences;
  for (const Fd& fd : engine.ClosureFds()) {
    consequences.push_back(Dependency(fd));
  }
  for (const Ind& ind : engine.ClosureInds()) {
    consequences.push_back(Dependency(ind));
  }

  SplitMix64 rng(5150);
  int models = 0;
  for (int attempt = 0; attempt < 3000 && models < 10; ++attempt) {
    Database db(scheme_);
    int size = 1 + static_cast<int>(rng.Below(4));
    for (int i = 0; i < size; ++i) {
      db.Insert(0, {Value::Int(static_cast<std::int64_t>(rng.Below(4))),
                    Value::Int(static_cast<std::int64_t>(rng.Below(4)))});
    }
    bool model = Satisfies(db, fds[0]) && Satisfies(db, inds[0]);
    if (!model) continue;
    ++models;
    for (const Dependency& dep : consequences) {
      EXPECT_TRUE(Satisfies(db, dep))
          << dep.ToString(*scheme_) << " violated by a finite model";
    }
  }
  EXPECT_GE(models, 5);
}

// --- Unary unrestricted implication (KCV non-interaction) -----------------

TEST_F(UnaryFiniteTest, UnrestrictedEngineRefusesCountingConsequences) {
  std::vector<Fd> fds = {MakeFd(*scheme_, "R", {"A"}, {"B"})};
  std::vector<Ind> inds = {MakeInd(*scheme_, "R", {"A"}, "R", {"B"})};
  UnaryUnrestrictedImplication engine(scheme_, fds, inds);
  EXPECT_FALSE(engine.Implies(MakeInd(*scheme_, "R", {"B"}, "R", {"A"})));
  EXPECT_FALSE(engine.Implies(MakeFd(*scheme_, "R", {"B"}, {"A"})));
  // Plain one-family consequences still work.
  EXPECT_TRUE(engine.Implies(MakeInd(*scheme_, "R", {"A"}, "R", {"B"})));
  EXPECT_TRUE(engine.Implies(MakeFd(*scheme_, "R", {"A"}, {"B"})));
}

// --- CompareImplication ------------------------------------------------

TEST(CompareImplicationTest, Theorem44SeparatesTheTwoSemantics) {
  SchemePtr scheme = MakeScheme({{"R", {"A", "B"}}});
  std::vector<Fd> fds = {MakeFd(*scheme, "R", {"A"}, {"B"})};
  std::vector<Ind> inds = {MakeInd(*scheme, "R", {"A"}, "R", {"B"})};

  FiniteVsUnrestricted ind_verdict = CompareImplication(
      scheme, fds, inds,
      Dependency(MakeInd(*scheme, "R", {"B"}, "R", {"A"})));
  EXPECT_EQ(ind_verdict.finite, ImplicationVerdict::kImplied);
  EXPECT_EQ(ind_verdict.unrestricted, ImplicationVerdict::kNotImplied);

  FiniteVsUnrestricted fd_verdict = CompareImplication(
      scheme, fds, inds, Dependency(MakeFd(*scheme, "R", {"B"}, {"A"})));
  EXPECT_EQ(fd_verdict.finite, ImplicationVerdict::kImplied);
  EXPECT_EQ(fd_verdict.unrestricted, ImplicationVerdict::kNotImplied);
}

TEST(CompareImplicationTest, PureIndsAgreeAcrossSemantics) {
  // Theorem 3.1: |= equals |=fin for INDs.
  SchemePtr scheme = MakeScheme({{"R", {"A", "B"}}, {"S", {"C", "D"}}});
  std::vector<Ind> inds = {MakeInd(*scheme, "R", {"A"}, "S", {"C"})};
  FiniteVsUnrestricted verdict = CompareImplication(
      scheme, {}, inds, Dependency(MakeInd(*scheme, "R", {"A"}, "S", {"C"})));
  EXPECT_EQ(verdict.finite, verdict.unrestricted);
  EXPECT_EQ(verdict.unrestricted, ImplicationVerdict::kImplied);
}

TEST(CompareImplicationTest, UnrestrictedImpliedTransfersToFinite) {
  // Proposition 4.1 instance (binary IND, so not the unary engines): the
  // chase proves |=, and |= transfers to |=fin.
  SchemePtr scheme = MakeScheme({{"R", {"X", "Y"}}, {"S", {"T", "U"}}});
  std::vector<Fd> fds = {MakeFd(*scheme, "S", {"T"}, {"U"})};
  std::vector<Ind> inds = {
      MakeInd(*scheme, "R", {"X", "Y"}, "S", {"T", "U"})};
  FiniteVsUnrestricted verdict = CompareImplication(
      scheme, fds, inds, Dependency(MakeFd(*scheme, "R", {"X"}, {"Y"})));
  EXPECT_EQ(verdict.unrestricted, ImplicationVerdict::kImplied);
  EXPECT_EQ(verdict.finite, ImplicationVerdict::kImplied);
}

}  // namespace
}  // namespace ccfp
