// Differential property test for the EMVD chase engines: the id-space
// workspace engine (default since PR 3) against the legacy heap-Value
// engine on randomized Sagiv–Walecka-style instances. The engines must
// agree on everything observable — fixpoint verdicts, tuples added, the
// databases themselves (same tuples, same null labels, same order), and
// the exact point at which a matched budget trips ResourceExhausted.
#include <gtest/gtest.h>

#include "chase/emvd_chase.h"
#include "constructions/sagiv_walecka.h"
#include "core/satisfies.h"
#include "util/rng.h"

namespace ccfp {
namespace {

/// A random EMVD over one relation of `arity`: X, Y, Z disjoint, Y and Z
/// nonempty (trivial EMVDs never fire and only dilute the trial).
Emvd RandomEmvd(SplitMix64& rng, std::size_t arity) {
  while (true) {
    Emvd e;
    e.rel = 0;
    for (AttrId a = 0; a < arity; ++a) {
      switch (rng.Below(4)) {
        case 0:
          e.x.push_back(a);
          break;
        case 1:
          e.y.push_back(a);
          break;
        case 2:
          e.z.push_back(a);
          break;
        default:
          break;  // attribute constrained by neither side
      }
    }
    if (!e.y.empty() && !e.z.empty()) return e;
  }
}

Database RandomDatabase(SplitMix64& rng, const SchemePtr& scheme,
                        std::size_t max_tuples, std::size_t domain) {
  Database db(scheme);
  std::size_t arity = scheme->relation(0).arity();
  std::size_t n = 1 + rng.Below(max_tuples);
  for (std::size_t i = 0; i < n; ++i) {
    Tuple t;
    t.reserve(arity);
    for (std::size_t a = 0; a < arity; ++a) {
      // Mix constants and labeled nulls, as chase inputs do.
      if (rng.Chance(1, 4)) {
        t.push_back(Value::Null(1 + rng.Below(6)));
      } else {
        t.push_back(Value::Int(static_cast<std::int64_t>(rng.Below(domain))));
      }
    }
    db.Insert(0, std::move(t));
  }
  return db;
}

void ExpectSameOutcome(const Database& seed, const std::vector<Emvd>& sigma,
                       EmvdChaseOptions options, const char* context) {
  Database legacy_db = seed;
  Database ws_db = seed;
  options.engine = EmvdChaseEngine::kLegacy;
  Result<std::uint64_t> legacy = EmvdChaseFixpoint(legacy_db, sigma, options);
  options.engine = EmvdChaseEngine::kWorkspace;
  Result<std::uint64_t> ws = EmvdChaseFixpoint(ws_db, sigma, options);

  ASSERT_EQ(legacy.ok(), ws.ok()) << context << "\nlegacy: "
                                  << legacy.status().ToString()
                                  << "\nworkspace: " << ws.status().ToString();
  if (legacy.ok()) {
    EXPECT_EQ(*legacy, *ws) << context;
  } else {
    EXPECT_EQ(legacy.status().code(), ws.status().code()) << context;
    EXPECT_EQ(legacy.status().code(), StatusCode::kResourceExhausted)
        << context;
  }
  // Same database either way — on ResourceExhausted both hold the same
  // partial chase, so matched budgets trip at the same tuple.
  EXPECT_TRUE(legacy_db == ws_db)
      << context << "\nlegacy:\n" << legacy_db.ToString() << "\nworkspace:\n"
      << ws_db.ToString();
}

TEST(EmvdChasePropertyTest, RandomInstancesAgree) {
  SplitMix64 rng(20260730);
  for (int trial = 0; trial < 120; ++trial) {
    std::size_t arity = 3 + rng.Below(3);
    std::vector<std::string> attrs;
    for (std::size_t a = 0; a < arity; ++a) {
      attrs.push_back("A" + std::to_string(a));
    }
    SchemePtr scheme = MakeScheme({{"R", attrs}});
    std::vector<Emvd> sigma;
    std::size_t deps = 1 + rng.Below(3);
    for (std::size_t i = 0; i < deps; ++i) {
      sigma.push_back(RandomEmvd(rng, arity));
    }
    Database seed = RandomDatabase(rng, scheme, 6, 3);

    EmvdChaseOptions options;
    options.max_tuples = 512;
    options.max_rounds = 16;
    ExpectSameOutcome(seed, sigma, options,
                      ("random trial " + std::to_string(trial)).c_str());
  }
}

TEST(EmvdChasePropertyTest, TightBudgetsTripAtTheSameBoundary) {
  // Sweep shrinking budgets over instances that blow up (Sagiv–Walecka
  // cycles): wherever the ResourceExhausted boundary falls, it must fall
  // identically for both engines, and the partial databases must match.
  SplitMix64 rng(715);
  for (std::size_t k : {1u, 2u, 3u}) {
    SagivWaleckaConstruction c = MakeSagivWalecka(k);
    Database seed(c.scheme);
    std::size_t arity = c.scheme->relation(0).arity();
    std::uint64_t next_null = 1;
    Tuple t1(arity), t2(arity);
    for (AttrId a = 0; a < arity; ++a) {
      t1[a] = Value::Null(next_null++);
      t2[a] = (a == 0) ? t1[a] : Value::Null(next_null++);
    }
    seed.Insert(0, std::move(t1));
    seed.Insert(0, std::move(t2));

    for (std::uint64_t max_tuples : {4u, 9u, 17u, 64u, 333u}) {
      for (std::uint64_t max_rounds : {1u, 2u, 5u}) {
        EmvdChaseOptions options;
        options.max_tuples = max_tuples;
        options.max_rounds = max_rounds;
        ExpectSameOutcome(
            seed, c.sigma, options,
            ("SW k=" + std::to_string(k) + " tuples=" +
             std::to_string(max_tuples) + " rounds=" +
             std::to_string(max_rounds))
                .c_str());
      }
    }
  }
}

TEST(EmvdChasePropertyTest, ImpliesAgreesAcrossEngines) {
  for (std::size_t k : {1u, 2u, 3u}) {
    SagivWaleckaConstruction c = MakeSagivWalecka(k);
    EmvdChaseOptions options;
    options.max_tuples = 1024;
    options.max_rounds = 10;
    options.engine = EmvdChaseEngine::kLegacy;
    Result<bool> legacy = EmvdChaseImplies(c.scheme, c.sigma, c.target,
                                           options);
    options.engine = EmvdChaseEngine::kWorkspace;
    Result<bool> ws = EmvdChaseImplies(c.scheme, c.sigma, c.target, options);
    ASSERT_EQ(legacy.ok(), ws.ok()) << "k = " << k;
    if (legacy.ok()) {
      EXPECT_EQ(*legacy, *ws) << "k = " << k;
    } else {
      EXPECT_EQ(legacy.status().code(), ws.status().code()) << "k = " << k;
    }
  }
}

TEST(EmvdChasePropertyTest, FixpointSatisfiesSigma) {
  // Not a differential check: whenever the workspace engine reports a
  // fixpoint, the chased database must actually satisfy every EMVD (the
  // point of chasing), and re-running must add nothing.
  SplitMix64 rng(99);
  int fixpoints = 0;
  for (int trial = 0; trial < 60; ++trial) {
    std::size_t arity = 3 + rng.Below(2);
    std::vector<std::string> attrs;
    for (std::size_t a = 0; a < arity; ++a) {
      attrs.push_back("A" + std::to_string(a));
    }
    SchemePtr scheme = MakeScheme({{"R", attrs}});
    std::vector<Emvd> sigma = {RandomEmvd(rng, arity),
                               RandomEmvd(rng, arity)};
    Database db = RandomDatabase(rng, scheme, 5, 2);
    EmvdChaseOptions options;
    options.max_tuples = 4096;
    options.max_rounds = 32;
    Result<std::uint64_t> added = EmvdChaseFixpoint(db, sigma, options);
    if (!added.ok()) continue;
    ++fixpoints;
    for (const Emvd& e : sigma) {
      EXPECT_TRUE(Satisfies(db, e)) << Dependency(e).ToString(*scheme);
    }
    Result<std::uint64_t> again = EmvdChaseFixpoint(db, sigma, options);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(*again, 0u);
  }
  EXPECT_GE(fixpoints, 30);  // the harness must mostly exercise real work
}

}  // namespace
}  // namespace ccfp
