// Theorem 5.3 (Sagiv-Walecka, via Corollary 5.2): the EMVD family
// Sigma_k = { A1 ->> A2 | B, ..., A_{k+1} ->> A1 | B } with target
// A1 ->> A_{k+1} | B. EMVD implication has no known decision procedure, so
// these tests combine the bounded EMVD chase (exact when it converges) with
// counterexample search over sampled finite models.
#include <gtest/gtest.h>

#include "axiom/kary.h"
#include "chase/emvd_chase.h"
#include "constructions/sagiv_walecka.h"
#include "core/satisfies.h"
#include "util/rng.h"

namespace ccfp {
namespace {

TEST(SagivWaleckaTest, ConstructionShape) {
  SagivWaleckaConstruction c = MakeSagivWalecka(3);
  EXPECT_EQ(c.scheme->relation(0).arity(), 5u);  // A1..A4, B
  EXPECT_EQ(c.sigma.size(), 4u);                 // k + 1 EMVDs
  EXPECT_EQ(Dependency(c.target).ToString(*c.scheme), "R: A1 ->> A4 | B");
}

TEST(SagivWaleckaTest, SigmaImpliesTargetViaChaseForKOne) {
  // k = 1: Sigma = {A1 ->> A2 | B, A2 ->> A1 | B}, target A1 ->> A2 | B —
  // which is literally a member, so the chase trivially confirms it.
  SagivWaleckaConstruction c = MakeSagivWalecka(1);
  Result<bool> implied = EmvdChaseImplies(c.scheme, c.sigma, c.target);
  ASSERT_TRUE(implied.ok()) << implied.status();
  EXPECT_TRUE(*implied);
}

TEST(SagivWaleckaTest, ConditionIHoldsOnSampledModels) {
  // (i) Sigma |= target: every sampled finite model of Sigma satisfies the
  // target (evidence-mode check; the general claim is Sagiv-Walecka's).
  for (std::size_t k : {1u, 2u}) {
    SagivWaleckaConstruction c = MakeSagivWalecka(k);
    std::size_t arity = c.scheme->relation(0).arity();
    SplitMix64 rng(k * 7919 + 1);
    int models = 0;
    for (int attempt = 0; attempt < 4000 && models < 8; ++attempt) {
      Database db(c.scheme);
      int size = 1 + static_cast<int>(rng.Below(4));
      for (int i = 0; i < size; ++i) {
        Tuple t;
        for (std::size_t a = 0; a < arity; ++a) {
          t.push_back(Value::Int(static_cast<std::int64_t>(rng.Below(2))));
        }
        db.Insert(0, std::move(t));
      }
      bool model = true;
      for (const Emvd& e : c.sigma) model = model && Satisfies(db, e);
      if (!model) continue;
      ++models;
      EXPECT_TRUE(Satisfies(db, c.target))
          << "k = " << k << ", model:\n" << db.ToString();
    }
    EXPECT_GE(models, 4) << "k = " << k;
  }
}

TEST(SagivWaleckaTest, ConditionIiNoSingleMemberImpliesTarget) {
  // (ii) For each tau in Sigma, find a finite database satisfying tau but
  // violating the target — an exact refutation of {tau} |= target.
  std::size_t k = 2;
  SagivWaleckaConstruction c = MakeSagivWalecka(k);
  std::size_t arity = c.scheme->relation(0).arity();
  SplitMix64 rng(31337);
  for (const Emvd& tau : c.sigma) {
    bool refuted = false;
    for (int attempt = 0; attempt < 20000 && !refuted; ++attempt) {
      Database db(c.scheme);
      int size = 2 + static_cast<int>(rng.Below(3));
      for (int i = 0; i < size; ++i) {
        Tuple t;
        for (std::size_t a = 0; a < arity; ++a) {
          t.push_back(Value::Int(static_cast<std::int64_t>(rng.Below(2))));
        }
        db.Insert(0, std::move(t));
      }
      if (Satisfies(db, tau) && !Satisfies(db, c.target)) refuted = true;
    }
    EXPECT_TRUE(refuted) << "no counterexample found for "
                         << Dependency(tau).ToString(*c.scheme);
  }
}

TEST(SagivWaleckaTest, ChaseNeverRefutesTheImplication) {
  // The bounded chase on (Sigma, target) either converges to "implied" or
  // runs out of budget; it must never produce a countermodel (that would
  // contradict Sagiv-Walecka).
  for (std::size_t k : {1u, 2u, 3u}) {
    SagivWaleckaConstruction c = MakeSagivWalecka(k);
    EmvdChaseOptions options;
    options.max_tuples = 2048;
    options.max_rounds = 12;
    Result<bool> implied =
        EmvdChaseImplies(c.scheme, c.sigma, c.target, options);
    if (implied.ok()) {
      EXPECT_TRUE(*implied) << "k = " << k;
    } else {
      EXPECT_EQ(implied.status().code(), StatusCode::kResourceExhausted);
    }
  }
}

// Minimal exact oracle for EMVDs: counterexample sampling first, then the
// bounded chase. Used to exercise the Corollary 5.2 checker's plumbing.
class EmvdSampledOracle : public ImplicationOracle {
 public:
  explicit EmvdSampledOracle(SchemePtr scheme) : scheme_(std::move(scheme)) {}

  ImplicationVerdict Implies(const std::vector<Dependency>& premises,
                             const Dependency& conclusion) const override {
    if (!conclusion.is_emvd()) return ImplicationVerdict::kUnknown;
    std::vector<Emvd> emvds;
    for (const Dependency& p : premises) {
      if (!p.is_emvd()) return ImplicationVerdict::kUnknown;
      emvds.push_back(p.emvd());
    }
    // Counterexample sampling.
    std::size_t arity = scheme_->relation(0).arity();
    SplitMix64 rng(12345);
    for (int attempt = 0; attempt < 3000; ++attempt) {
      Database db(scheme_);
      int size = 2 + static_cast<int>(rng.Below(3));
      for (int i = 0; i < size; ++i) {
        Tuple t;
        for (std::size_t a = 0; a < arity; ++a) {
          t.push_back(Value::Int(static_cast<std::int64_t>(rng.Below(2))));
        }
        db.Insert(0, std::move(t));
      }
      bool premises_hold = true;
      for (const Emvd& e : emvds) {
        premises_hold = premises_hold && Satisfies(db, e);
      }
      if (premises_hold && !Satisfies(db, conclusion.emvd())) {
        return ImplicationVerdict::kNotImplied;
      }
    }
    // Bounded chase.
    EmvdChaseOptions options;
    options.max_tuples = 512;
    options.max_rounds = 8;
    Result<bool> implied =
        EmvdChaseImplies(scheme_, emvds, conclusion.emvd(), options);
    if (implied.ok() && *implied) return ImplicationVerdict::kImplied;
    return ImplicationVerdict::kUnknown;
  }

  std::string name() const override { return "emvd-sampled"; }

 private:
  SchemePtr scheme_;
};

TEST(SagivWaleckaTest, Corollary52ConditionsOneAndTwoViaChecker) {
  // Run the Corollary 5.2 checker restricted to conditions it can decide
  // with the sampled oracle: we pass universe = {target} so (iii) reduces
  // to subsets of Sigma against the target only. With k = 1 and the k=2
  // construction, no 1-subset implies the target, so (iii) holds; (i) and
  // (ii) are checked directly.
  SagivWaleckaConstruction c = MakeSagivWalecka(2);
  EmvdSampledOracle oracle(c.scheme);
  // (ii) directly:
  for (const Emvd& tau : c.sigma) {
    EXPECT_EQ(oracle.Implies({Dependency(tau)}, Dependency(c.target)),
              ImplicationVerdict::kNotImplied)
        << Dependency(tau).ToString(*c.scheme);
  }
  KaryStats stats;
  auto failure =
      CheckCorollary52({Dependency(c.target)}, c.SigmaDeps(),
                       Dependency(c.target), oracle, 1, *c.scheme, &stats);
  // (i) needs the full Sigma |= target, which the sampled oracle may not
  // prove (chase budget); accept either a clean pass or an (i) failure
  // flagged as unknown — but never a (ii)/(iii) failure.
  if (failure.has_value()) {
    EXPECT_NE(failure->find("(i)"), std::string::npos) << *failure;
  }
}

}  // namespace
}  // namespace ccfp
