// Perf smoke test (ctest -L smoke): the workspace-backed Armstrong builder
// must finish its build -> chase -> verify -> repair loop in well under a
// second on a mixed FD+IND chain, and the substrate counters must show the
// rounds reusing one workspace (appends + partition extensions) instead of
// re-interning the database per round.
#include <chrono>
#include <gtest/gtest.h>

#include "armstrong/builder.h"
#include "axiom/sentence.h"
#include "chase/workspace_chase.h"
#include "core/satisfies.h"
#include "util/strings.h"

namespace ccfp {
namespace {

/// The bench_armstrong mixed workload: a chain of INDs plus one FD per
/// relation (acyclic, so the chase terminates).
struct MixedInstance {
  SchemePtr scheme;
  std::vector<Fd> fds;
  std::vector<Ind> inds;
  std::vector<Dependency> universe;
};

MixedInstance MakeMixedInstance(std::size_t relations) {
  MixedInstance instance;
  std::vector<std::pair<std::string, std::vector<std::string>>> rels;
  for (std::size_t r = 0; r < relations; ++r) {
    rels.emplace_back(StrCat("R", r), std::vector<std::string>{"A", "B"});
  }
  instance.scheme = MakeScheme(rels);
  UniverseOptions options;
  options.max_fd_lhs = 1;
  options.max_ind_width = 1;
  options.include_rds = true;
  instance.universe = EnumerateUniverse(*instance.scheme, options);
  for (std::size_t r = 0; r < relations; ++r) {
    instance.fds.push_back(Fd{static_cast<RelId>(r), {0}, {1}});
    if (r + 1 < relations) {
      instance.inds.push_back(
          Ind{static_cast<RelId>(r), {1}, static_cast<RelId>(r + 1), {0}});
    }
  }
  return instance;
}

TEST(ArmstrongSmokeTest, WorkspaceBuildFinishesFast) {
  MixedInstance instance = MakeMixedInstance(6);
  ChaseOracle oracle(instance.scheme);

  auto start = std::chrono::steady_clock::now();
  Result<ArmstrongReport> report = BuildArmstrongDatabase(
      instance.scheme, instance.fds, instance.inds, instance.universe,
      oracle);
  auto elapsed = std::chrono::steady_clock::now() - start;

  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(ObeysExactly(report->db, instance.universe, report->expected)
                   .has_value());
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            1000)
      << "workspace Armstrong build regressed";
}

TEST(ArmstrongSmokeTest, RepairRoundsReuseOneWorkspace) {
  MixedInstance instance = MakeMixedInstance(5);
  ChaseOracle oracle(instance.scheme);
  Result<ArmstrongReport> report = BuildArmstrongDatabase(
      instance.scheme, instance.fds, instance.inds, instance.universe,
      oracle);
  ASSERT_TRUE(report.ok()) << report.status();

  const InternedWorkspace::Stats& stats = report->workspace_stats;
  // Every value the build ever interned is a fresh labeled null born in
  // id-space — seeds and repair seeds alike. If a round re-interned the
  // database, this count would jump by a database's worth of values per
  // round instead of staying equal to the distinct nulls created.
  EXPECT_GT(stats.values_interned, 0u);
  EXPECT_LE(stats.values_interned,
            stats.tuples_appended * 2u /* arity */ + stats.value_merges);
  if (report->repair_rounds > 0) {
    // Later rounds verified on partitions carried over from earlier ones:
    // extensions/reuses, with rebuilds only for relations a merge touched.
    EXPECT_GT(stats.partitions_extended + stats.partitions_reused, 0u)
        << "repair rounds rebuilt every partition from scratch";
  }
}

TEST(ArmstrongSmokeTest, ResumedChaseProcessesOnlyTheRepairDelta) {
  // The builder's repair loop in miniature, driven directly so the
  // delta-only property is observable even on instances whose exact
  // oracles never trigger a repair: chase a full seed to fixpoint, append
  // one repair-style seed pair, and resume. The second Run must re-chase
  // only the delta — a handful of steps against the first run's hundreds —
  // and the workspace must extend its verification partitions rather than
  // rebuild them.
  MixedInstance instance = MakeMixedInstance(6);
  InternedWorkspace ws(instance.scheme);
  for (RelId rel = 0; rel < instance.scheme->size(); ++rel) {
    for (int copy = 0; copy < 8; ++copy) {
      IdTuple t = {ws.InternFreshNull(), ws.InternFreshNull()};
      ws.Append(rel, std::move(t));
    }
  }
  WorkspaceChase chaser(&ws, instance.fds, instance.inds);
  Result<WorkspaceChaseStats> first = chaser.Run({});
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_EQ(first->outcome, ChaseOutcome::kFixpoint);
  ASSERT_GT(first->steps, 50u);

  // Verify once so every (relation, column-set) partition exists.
  for (const Fd& fd : instance.fds) EXPECT_TRUE(ws.Satisfies(fd));
  for (const Ind& ind : instance.inds) EXPECT_TRUE(ws.Satisfies(ind));
  std::uint64_t interned_before = ws.stats().values_interned;
  std::uint64_t built_before = ws.stats().partitions_built;

  // One repair-style seed pair into the first relation; resume.
  IdTuple t1 = {ws.InternFreshNull(), ws.InternFreshNull()};
  IdTuple t2 = {t1[0], ws.InternFreshNull()};
  ws.Append(0, std::move(t1));
  ws.Append(0, std::move(t2));
  Result<WorkspaceChaseStats> second = chaser.Run({});
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(second->outcome, ChaseOutcome::kFixpoint);
  EXPECT_LT(second->steps, first->steps / 2)
      << "resumed chase re-processed the whole database, not the delta";

  // Re-verify: still a model, nothing re-interned beyond the delta's own
  // values, and no partition column-set compiled twice from scratch for
  // relations the resumed chase never touched.
  for (const Fd& fd : instance.fds) EXPECT_TRUE(ws.Satisfies(fd));
  for (const Ind& ind : instance.inds) EXPECT_TRUE(ws.Satisfies(ind));
  std::uint64_t delta_interned =
      ws.stats().values_interned - interned_before;
  EXPECT_LE(delta_interned, 3u + 2u * second->ind_tuples);
  EXPECT_LT(ws.stats().partitions_built - built_before, built_before)
      << "re-verification rebuilt partitions for untouched relations";
}

TEST(ArmstrongSmokeTest, EnginesAgreeOnExactness) {
  // Differential: both engines must produce *verified-exact* databases
  // certifying the same consequence set (their tuples may differ — the
  // workspace engine keeps chase consequences across rounds).
  MixedInstance instance = MakeMixedInstance(4);
  ChaseOracle oracle(instance.scheme);
  ArmstrongBuildOptions options;
  options.engine = ArmstrongEngine::kWorkspace;
  Result<ArmstrongReport> ws = BuildArmstrongDatabase(
      instance.scheme, instance.fds, instance.inds, instance.universe,
      oracle, options);
  options.engine = ArmstrongEngine::kLegacy;
  Result<ArmstrongReport> legacy = BuildArmstrongDatabase(
      instance.scheme, instance.fds, instance.inds, instance.universe,
      oracle, options);
  ASSERT_TRUE(ws.ok()) << ws.status();
  ASSERT_TRUE(legacy.ok()) << legacy.status();
  EXPECT_EQ(ws->expected, legacy->expected);
  for (const Dependency& tau : instance.universe) {
    EXPECT_EQ(Satisfies(ws->db, tau), Satisfies(legacy->db, tau))
        << tau.ToString(*instance.scheme);
  }
}

}  // namespace
}  // namespace ccfp
