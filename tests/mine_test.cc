#include <algorithm>
#include <gtest/gtest.h>

#include "core/parser.h"
#include "core/satisfies.h"
#include "interact/rules.h"
#include "mine/discovery.h"
#include "util/rng.h"

namespace ccfp {
namespace {

class MineTest : public ::testing::Test {
 protected:
  SchemePtr scheme_ = MakeScheme({{"R", {"A", "B", "C"}}, {"S", {"D", "E"}}});

  Database Db(const std::string& text) {
    return ParseDatabase(scheme_, text).value();
  }
};

TEST_F(MineTest, MinesKeyFd) {
  Database db = Db("R(1, 10, 5)\nR(2, 20, 5)\nR(3, 20, 5)");
  std::vector<Fd> fds = MineFds(db, 0);
  // A -> B holds, B -> A fails (20 maps to 2 and 3).
  EXPECT_NE(std::find(fds.begin(), fds.end(),
                      MakeFd(*scheme_, "R", {"A"}, {"B"})),
            fds.end());
  EXPECT_EQ(std::find(fds.begin(), fds.end(),
                      MakeFd(*scheme_, "R", {"B"}, {"A"})),
            fds.end());
}

TEST_F(MineTest, MinimalityPrunesAugmentedLhs) {
  Database db = Db("R(1, 10, 5)\nR(2, 20, 6)");
  FdMiningOptions options;
  options.max_lhs = 2;
  std::vector<Fd> fds = MineFds(db, 0, options);
  // A -> B mined; A,C -> B subsumed by it.
  EXPECT_NE(std::find(fds.begin(), fds.end(),
                      MakeFd(*scheme_, "R", {"A"}, {"B"})),
            fds.end());
  EXPECT_EQ(std::find(fds.begin(), fds.end(),
                      MakeFd(*scheme_, "R", {"A", "C"}, {"B"})),
            fds.end());
}

TEST_F(MineTest, NonMinimalModeKeepsEverything) {
  Database db = Db("R(1, 10, 5)\nR(2, 20, 6)");
  FdMiningOptions options;
  options.max_lhs = 2;
  options.minimal_only = false;
  std::vector<Fd> all = MineFds(db, 0, options);
  options.minimal_only = true;
  std::vector<Fd> minimal = MineFds(db, 0, options);
  EXPECT_GT(all.size(), minimal.size());
}

TEST_F(MineTest, ConstantColumnsNeedOptIn) {
  Database db = Db("R(1, 10, 5)\nR(2, 20, 5)");
  FdMiningOptions options;
  options.include_constants = true;
  std::vector<Fd> with_constants = MineFds(db, 0, options);
  // {} -> C (column C constant).
  EXPECT_NE(std::find(with_constants.begin(), with_constants.end(),
                      MakeFd(*scheme_, "R", {}, {"C"})),
            with_constants.end());
  std::vector<Fd> without = MineFds(db, 0);
  EXPECT_EQ(std::find(without.begin(), without.end(),
                      MakeFd(*scheme_, "R", {}, {"C"})),
            without.end());
}

TEST_F(MineTest, MinesUnaryInds) {
  Database db = Db("R(1, 10, 5)\nS(1, 99)\nS(2, 98)");
  std::vector<Ind> inds = MineInds(db);
  EXPECT_NE(std::find(inds.begin(), inds.end(),
                      MakeInd(*scheme_, "R", {"A"}, "S", {"D"})),
            inds.end());
  EXPECT_EQ(std::find(inds.begin(), inds.end(),
                      MakeInd(*scheme_, "S", {"D"}, "R", {"A"})),
            inds.end());
}

TEST_F(MineTest, MinesWiderIndsOnDemand) {
  Database db = Db("R(1, 10, 5)\nS(1, 10)");
  IndMiningOptions options;
  options.max_width = 2;
  std::vector<Ind> inds = MineInds(db, options);
  EXPECT_NE(std::find(inds.begin(), inds.end(),
                      MakeInd(*scheme_, "R", {"A", "B"}, "S", {"D", "E"})),
            inds.end());
}

TEST_F(MineTest, SkipsVacuousIndsByDefault) {
  Database db = Db("S(1, 99)");  // R empty
  std::vector<Ind> inds = MineInds(db);
  for (const Ind& ind : inds) {
    EXPECT_NE(ind.lhs_rel, 0u) << "vacuous IND from empty R reported";
  }
  IndMiningOptions options;
  options.skip_vacuous = false;
  std::vector<Ind> all = MineInds(db, options);
  EXPECT_GT(all.size(), inds.size());
}

TEST_F(MineTest, MinesRds) {
  Database db = Db("R(1, 1, 5)\nR(2, 2, 7)");
  std::vector<Rd> rds = MineRds(db);
  ASSERT_EQ(rds.size(), 1u);
  EXPECT_EQ(rds[0], MakeRd(*scheme_, "R", {"A"}, {"B"}));
}

// Everything mined must actually hold (mining is model checking).
TEST_F(MineTest, MinedDependenciesHoldOnRandomDatabases) {
  SplitMix64 rng(4711);
  for (int trial = 0; trial < 20; ++trial) {
    Database db(scheme_);
    for (int i = 0; i < 4; ++i) {
      db.Insert(0, TupleOfInts({static_cast<std::int64_t>(rng.Below(3)),
                                static_cast<std::int64_t>(rng.Below(3)),
                                static_cast<std::int64_t>(rng.Below(3))}));
      db.Insert(1, TupleOfInts({static_cast<std::int64_t>(rng.Below(3)),
                                static_cast<std::int64_t>(rng.Below(3))}));
    }
    for (RelId rel = 0; rel < scheme_->size(); ++rel) {
      for (const Fd& fd : MineFds(db, rel)) {
        EXPECT_TRUE(Satisfies(db, fd));
      }
    }
    IndMiningOptions options;
    options.max_width = 2;
    for (const Ind& ind : MineInds(db, options)) {
      EXPECT_TRUE(Satisfies(db, ind));
    }
    for (const Rd& rd : MineRds(db)) {
      EXPECT_TRUE(Satisfies(db, rd));
      // The mined RD's FD/IND consequences must hold too (soundness of
      // RdConsequences).
      for (const Dependency& dep : RdConsequences(*scheme_, rd)) {
        EXPECT_TRUE(Satisfies(db, dep)) << dep.ToString(*scheme_);
      }
    }
  }
}

TEST_F(MineTest, WorkspaceOverloadsMatchAndReusePartitions) {
  Database db = Db("R(1, 10, 5)\nR(2, 20, 5)\nR(3, 20, 5)\nS(10, 1)");
  InternedWorkspace ws(scheme_);
  ws.AppendDatabase(db);
  // Same results as the Database overloads...
  EXPECT_EQ(MineFds(ws, 0), MineFds(db, 0));
  IndMiningOptions ind_options;
  ind_options.max_width = 2;
  EXPECT_EQ(MineInds(ws, ind_options), MineInds(db, ind_options));
  EXPECT_EQ(MineRds(ws), MineRds(db));
  // ...with all three sweeps sharing one workspace: nothing was interned
  // twice, and repeated probes of a column set reused its partition.
  EXPECT_EQ(ws.stats().tuples_appended, db.TotalTuples());
  EXPECT_GT(ws.stats().partitions_reused, 0u);
  EXPECT_EQ(ws.stats().partitions_invalidated, 0u);
}

// An RD is strictly stronger than its FD+IND consequences: separating
// database (the paper: nontrivial RDs are not equivalent to FD+IND sets).
TEST_F(MineTest, RdStrictlyStrongerThanConsequences) {
  Rd rd = MakeRd(*scheme_, "S", {"D"}, {"E"});
  std::vector<Dependency> consequences = RdConsequences(*scheme_, rd);
  // d = {(1,2), (2,1)}: D <-> E bijection, both INDs hold, both FDs hold,
  // but no tuple has D = E.
  Database db = Db("S(1, 2)\nS(2, 1)");
  for (const Dependency& dep : consequences) {
    if (dep.is_rd()) continue;  // the mirrored RD is equally violated
    EXPECT_TRUE(Satisfies(db, dep)) << dep.ToString(*scheme_);
  }
  EXPECT_FALSE(Satisfies(db, rd));
}

}  // namespace
}  // namespace ccfp
