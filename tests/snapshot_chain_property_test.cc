// Randomized delta-chain equivalence for the v2 snapshot wire format
// (core/snapshot.h): a live journaling workspace and a mirror advanced
// only by applying the serialized deltas must stay *observably*
// identical at every persisted cursor — same materialization, same raw
// slots and feed windows, same verdicts and witnesses against the full
// random dependency universe — across appends, chase-protocol merges,
// partition compilation (live side only; partitions are consumer
// capital, not replayed state), and journaled feed trims. Also pinned:
// hash-chain linkage rejects stale deltas without touching the target,
// and a quiescent delta serializes O(in-flight journal) bytes, not
// O(state).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/snapshot.h"
#include "core/workspace.h"
#include "tests/trace_util.h"
#include "util/rng.h"
#include "verify/verifier.h"

namespace ccfp {
namespace {

using testutil::AppendRandomTuple;
using testutil::CheckAgreement;
using testutil::ExpectObservablyEquivalent;
using testutil::MergeRandomValues;
using testutil::RandomScheme;
using testutil::RandomUniverse;

class SnapshotChainPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

// Fresh watchers on both sides agree with the sweep, the fresh
// re-intern, and *each other*. Scoped per batch: a persistent watcher
// would pin the mirror's feed, and replayed kTrim entries use the
// forced TrimFeedTo path that ignores registered cursors.
void CheckBothSides(const InternedWorkspace& live,
                    const InternedWorkspace& mirror,
                    const std::vector<Dependency>& deps) {
  IncrementalVerifier lv(&live);
  IncrementalVerifier mv(&mirror);
  std::vector<WatchId> lids, mids;
  for (const Dependency& dep : deps) {
    lids.push_back(lv.Watch(dep));
    mids.push_back(mv.Watch(dep));
  }
  CheckAgreement(live, lv, deps, lids);
  CheckAgreement(mirror, mv, deps, mids);
  for (std::size_t i = 0; i < deps.size(); ++i) {
    EXPECT_EQ(lv.Satisfies(lids[i]), mv.Satisfies(mids[i]))
        << deps[i].ToString(live.scheme());
  }
}

TEST_P(SnapshotChainPropertyTest, DeltaChainMirrorsLiveStateAtEveryCursor) {
  SplitMix64 rng(GetParam() * 6364136223846793005ull + 29);
  SchemePtr scheme = RandomScheme(rng);
  std::vector<Dependency> deps = RandomUniverse(scheme, rng, 10);
  if (deps.empty()) return;

  InternedWorkspace ws(scheme);
  std::vector<ValueId> pool;
  std::size_t seed_ops = 3 + rng.Below(8);
  for (std::size_t i = 0; i < seed_ops; ++i) {
    AppendRandomTuple(ws, rng, pool);
  }
  MergeRandomValues(ws, rng, pool);

  // Base record: serialize in memory, restore the mirror from it, and
  // re-base the live side onto the record's identity (what the chain
  // writer does after a durable base save).
  std::string base = SerializeWorkspace(ws, {}, "base-aux");
  Result<RestoredWorkspace> restored = DeserializeWorkspace(scheme, base);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->aux, "base-aux");
  EXPECT_EQ(restored->snapshot_id, Fnv1a64(base.substr(26)));
  InternedWorkspace mirror = std::move(restored->ws);
  ws.MarkJournalPersisted(restored->snapshot_id);
  ws.EnableJournal();
  ExpectObservablyEquivalent(ws, mirror);

  std::string first_delta;
  std::uint64_t tip = restored->snapshot_id;
  for (int batch = 0; batch < 6; ++batch) {
    std::size_t ops = 1 + rng.Below(5);
    for (std::size_t op = 0; op < ops; ++op) {
      if (rng.Chance(2, 3)) {
        AppendRandomTuple(ws, rng, pool);
      } else {
        MergeRandomValues(ws, rng, pool);
      }
    }
    // Live-only consumer activity: compiled partitions are rebuilt by
    // each side's own consumers, never shipped in a delta.
    ws.Satisfies(deps[rng.Below(deps.size())]);
    if (rng.Chance(1, 2)) {
      ws.CompactFeeds();  // journaled as kTrim entries
    }

    std::string aux = "delta-aux-" + std::to_string(batch);
    Result<std::string> delta = SerializeWorkspaceDelta(
        ws, {{static_cast<std::uint64_t>(batch)}}, aux);
    ASSERT_TRUE(delta.ok()) << delta.status();
    if (first_delta.empty()) first_delta = *delta;

    Result<WorkspaceDeltaInfo> info = ApplyWorkspaceDelta(mirror, *delta);
    ASSERT_TRUE(info.ok()) << info.status();
    EXPECT_EQ(info->base_id, tip) << "hash-chain link broken";
    EXPECT_EQ(info->aux, aux);
    ASSERT_EQ(info->consumer_cursors.size(), 1u);
    EXPECT_EQ(info->consumer_cursors[0][0],
              static_cast<std::uint64_t>(batch));
    ws.MarkJournalPersisted(info->id);
    tip = info->id;

    ExpectObservablyEquivalent(ws, mirror);
    CheckBothSides(ws, mirror, deps);
  }

  // A stale delta (pre-fold leftover) links to an id the mirror has
  // moved past: graceful FailedPrecondition, mirror untouched.
  ASSERT_FALSE(first_delta.empty());
  std::string before = mirror.Materialize().ToString();
  Result<WorkspaceDeltaInfo> stale = ApplyWorkspaceDelta(mirror, first_delta);
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(mirror.Materialize().ToString(), before);
  ExpectObservablyEquivalent(ws, mirror);
}

TEST_P(SnapshotChainPropertyTest, QuiescentDeltaIsJournalSizedNotStateSized) {
  // The tentpole's cost model: once the journal is persisted, saving a
  // quiescent session serializes a near-empty delta — bytes proportional
  // to the in-flight journal (here: none), independent of how much state
  // the workspace carries.
  SplitMix64 rng(GetParam() * 2862933555777941757ull + 41);
  SchemePtr scheme = RandomScheme(rng);
  InternedWorkspace ws(scheme);
  std::vector<ValueId> pool;
  std::size_t n_ops = 30 + rng.Below(40);
  for (std::size_t i = 0; i < n_ops; ++i) {
    if (rng.Chance(3, 4)) {
      AppendRandomTuple(ws, rng, pool);
    } else {
      MergeRandomValues(ws, rng, pool);
    }
  }

  std::string base = SerializeWorkspace(ws);
  Result<RestoredWorkspace> restored = DeserializeWorkspace(scheme, base);
  ASSERT_TRUE(restored.ok()) << restored.status();
  ws.MarkJournalPersisted(restored->snapshot_id);
  ws.EnableJournal();

  Result<std::string> quiescent = SerializeWorkspaceDelta(ws);
  ASSERT_TRUE(quiescent.ok()) << quiescent.status();
  // Header + kind + fingerprint + chain link + interner watermarks + an
  // empty journal + empty cursors/aux: a small constant, regardless of
  // the tuples the base carries.
  EXPECT_LT(quiescent->size(), 160u);
  EXPECT_LT(quiescent->size() * 4, base.size())
      << "quiescent delta should be far smaller than the full record "
         "(base " << base.size() << " bytes)";

  // One mutation batch later the delta grows by the journal, not by the
  // state: still far under a full serialization.
  for (int i = 0; i < 3; ++i) AppendRandomTuple(ws, rng, pool);
  Result<std::string> small = SerializeWorkspaceDelta(ws);
  ASSERT_TRUE(small.ok()) << small.status();
  EXPECT_LT(small->size(), SerializeWorkspace(ws).size());

  // And it round-trips: the mirror catches up through it.
  InternedWorkspace mirror = std::move(restored->ws);
  Result<WorkspaceDeltaInfo> info = ApplyWorkspaceDelta(mirror, *small);
  ASSERT_TRUE(info.ok()) << info.status();
  ws.MarkJournalPersisted(info->id);
  ExpectObservablyEquivalent(ws, mirror);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotChainPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 33));

}  // namespace
}  // namespace ccfp
