#include <gtest/gtest.h>

#include "core/parser.h"
#include "core/satisfies.h"

namespace ccfp {
namespace {

class SatisfiesTest : public ::testing::Test {
 protected:
  SchemePtr scheme_ =
      MakeScheme({{"R", {"A", "B", "C"}}, {"S", {"D", "E"}}});

  Database Db(const std::string& text) {
    Result<Database> db = ParseDatabase(scheme_, text);
    EXPECT_TRUE(db.ok()) << db.status();
    return db.MoveValue();
  }
};

TEST_F(SatisfiesTest, FdHoldsAndFails) {
  Database ok = Db("R(1, 2, 3)\nR(1, 2, 3)\nR(4, 2, 3)");
  EXPECT_TRUE(Satisfies(ok, MakeFd(*scheme_, "R", {"A"}, {"B"})));
  Database bad = Db("R(1, 2, 3)\nR(1, 5, 3)");
  EXPECT_FALSE(Satisfies(bad, MakeFd(*scheme_, "R", {"A"}, {"B"})));
  EXPECT_TRUE(Satisfies(bad, MakeFd(*scheme_, "R", {"A"}, {"C"})));
}

TEST_F(SatisfiesTest, EmptyLhsFdMeansConstantColumn) {
  Database constant = Db("R(1, 2, 3)\nR(4, 2, 5)");
  EXPECT_TRUE(Satisfies(constant, MakeFd(*scheme_, "R", {}, {"B"})));
  EXPECT_FALSE(Satisfies(constant, MakeFd(*scheme_, "R", {}, {"A"})));
}

TEST_F(SatisfiesTest, FdOnEmptyRelationHolds) {
  Database empty = Db("");
  EXPECT_TRUE(Satisfies(empty, MakeFd(*scheme_, "R", {"A"}, {"B"})));
}

TEST_F(SatisfiesTest, IndHoldsAndFails) {
  Database db = Db("R(1, 2, 3)\nS(1, 2)\nS(9, 9)");
  EXPECT_TRUE(
      Satisfies(db, MakeInd(*scheme_, "R", {"A", "B"}, "S", {"D", "E"})));
  EXPECT_FALSE(
      Satisfies(db, MakeInd(*scheme_, "R", {"B", "A"}, "S", {"D", "E"})));
  EXPECT_FALSE(Satisfies(db, MakeInd(*scheme_, "S", {"D"}, "R", {"A"})));
}

TEST_F(SatisfiesTest, IndOrderMatters) {
  Database db = Db("R(1, 2, 3)\nS(2, 1)");
  // (A,B) = (1,2) appears as (E,D), not as (D,E).
  EXPECT_FALSE(
      Satisfies(db, MakeInd(*scheme_, "R", {"A", "B"}, "S", {"D", "E"})));
  EXPECT_TRUE(
      Satisfies(db, MakeInd(*scheme_, "R", {"A", "B"}, "S", {"E", "D"})));
}

TEST_F(SatisfiesTest, IndFromEmptyLhsHolds) {
  Database db = Db("S(1, 2)");
  EXPECT_TRUE(Satisfies(db, MakeInd(*scheme_, "R", {"A"}, "S", {"D"})));
}

TEST_F(SatisfiesTest, RdHoldsAndFails) {
  Database eq = Db("R(1, 1, 3)\nR(2, 2, 5)");
  EXPECT_TRUE(Satisfies(eq, MakeRd(*scheme_, "R", {"A"}, {"B"})));
  EXPECT_FALSE(Satisfies(eq, MakeRd(*scheme_, "R", {"A"}, {"C"})));
}

TEST_F(SatisfiesTest, EmvdHoldsOnWitnessClosedRelation) {
  // Classic MVD pattern: A ->> B | C requires the cross product within
  // each A-group.
  Database closed = Db(
      "R(1, 10, 100)\nR(1, 20, 200)\nR(1, 10, 200)\nR(1, 20, 100)");
  EXPECT_TRUE(
      Satisfies(closed, MakeEmvd(*scheme_, "R", {"A"}, {"B"}, {"C"})));
  Database open = Db("R(1, 10, 100)\nR(1, 20, 200)");
  EXPECT_FALSE(
      Satisfies(open, MakeEmvd(*scheme_, "R", {"A"}, {"B"}, {"C"})));
}

TEST_F(SatisfiesTest, EmvdWithEmptyXIsGlobalCross) {
  Database db = Db("R(1, 10, 100)\nR(2, 20, 200)\nR(1, 10, 200)");
  // {} ->> B | C: need (t1.B, t2.C) pairs for ALL tuple pairs; (20, 100)
  // is missing.
  EXPECT_FALSE(Satisfies(db, MakeEmvd(*scheme_, "R", {}, {"B"}, {"C"})));
}

TEST_F(SatisfiesTest, MvdMatchesEquivalentEmvd) {
  Database db = Db(
      "R(1, 10, 100)\nR(1, 20, 200)\nR(1, 10, 200)\nR(1, 20, 100)\n"
      "R(2, 5, 6)");
  Mvd mvd = MakeMvd(*scheme_, "R", {"A"}, {"B"});
  Emvd emvd = MakeEmvd(*scheme_, "R", {"A"}, {"B"}, {"C"});
  EXPECT_EQ(Satisfies(db, mvd), Satisfies(db, emvd));
  EXPECT_TRUE(Satisfies(db, mvd));
}

TEST_F(SatisfiesTest, SatisfiedSubsetAndAll) {
  Database db = Db("R(1, 2, 3)\nR(1, 2, 4)");
  std::vector<Dependency> deps = {
      Dependency(MakeFd(*scheme_, "R", {"A"}, {"B"})),
      Dependency(MakeFd(*scheme_, "R", {"A"}, {"C"})),
  };
  EXPECT_FALSE(SatisfiesAll(db, deps));
  std::vector<Dependency> subset = SatisfiedSubset(db, deps);
  ASSERT_EQ(subset.size(), 1u);
  EXPECT_EQ(subset[0], deps[0]);
}

TEST_F(SatisfiesTest, FindViolationDescribesFd) {
  Database db = Db("R(1, 2, 3)\nR(1, 5, 3)");
  auto violation =
      FindViolation(db, Dependency(MakeFd(*scheme_, "R", {"A"}, {"B"})));
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->description.find("FD"), std::string::npos);
  EXPECT_FALSE(
      FindViolation(db, Dependency(MakeFd(*scheme_, "R", {"A"}, {"C"})))
          .has_value());
}

TEST_F(SatisfiesTest, FindViolationDescribesInd) {
  Database db = Db("R(1, 2, 3)");
  auto violation = FindViolation(
      db, Dependency(MakeInd(*scheme_, "R", {"A"}, "S", {"D"})));
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->description.find("no counterpart"),
            std::string::npos);
}

TEST_F(SatisfiesTest, ObeysExactlyAcceptsAndRejects) {
  Database db = Db("R(1, 2, 3)\nR(4, 2, 3)");
  std::vector<Dependency> universe = {
      Dependency(MakeFd(*scheme_, "R", {"A"}, {"B"})),  // holds
      Dependency(MakeFd(*scheme_, "R", {"B"}, {"A"})),  // fails
  };
  EXPECT_FALSE(ObeysExactly(db, universe, {universe[0]}).has_value());
  // Claiming both should fail, as should claiming only the second.
  EXPECT_TRUE(ObeysExactly(db, universe, universe).has_value());
  EXPECT_TRUE(ObeysExactly(db, universe, {universe[1]}).has_value());
}

}  // namespace
}  // namespace ccfp
