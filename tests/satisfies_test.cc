#include <gtest/gtest.h>

#include "core/parser.h"
#include "core/satisfies.h"

namespace ccfp {
namespace {

class SatisfiesTest : public ::testing::Test {
 protected:
  SchemePtr scheme_ =
      MakeScheme({{"R", {"A", "B", "C"}}, {"S", {"D", "E"}}});

  Database Db(const std::string& text) {
    Result<Database> db = ParseDatabase(scheme_, text);
    EXPECT_TRUE(db.ok()) << db.status();
    return db.MoveValue();
  }
};

TEST_F(SatisfiesTest, FdHoldsAndFails) {
  Database ok = Db("R(1, 2, 3)\nR(1, 2, 3)\nR(4, 2, 3)");
  EXPECT_TRUE(Satisfies(ok, MakeFd(*scheme_, "R", {"A"}, {"B"})));
  Database bad = Db("R(1, 2, 3)\nR(1, 5, 3)");
  EXPECT_FALSE(Satisfies(bad, MakeFd(*scheme_, "R", {"A"}, {"B"})));
  EXPECT_TRUE(Satisfies(bad, MakeFd(*scheme_, "R", {"A"}, {"C"})));
}

TEST_F(SatisfiesTest, EmptyLhsFdMeansConstantColumn) {
  Database constant = Db("R(1, 2, 3)\nR(4, 2, 5)");
  EXPECT_TRUE(Satisfies(constant, MakeFd(*scheme_, "R", {}, {"B"})));
  EXPECT_FALSE(Satisfies(constant, MakeFd(*scheme_, "R", {}, {"A"})));
}

TEST_F(SatisfiesTest, FdOnEmptyRelationHolds) {
  Database empty = Db("");
  EXPECT_TRUE(Satisfies(empty, MakeFd(*scheme_, "R", {"A"}, {"B"})));
}

TEST_F(SatisfiesTest, IndHoldsAndFails) {
  Database db = Db("R(1, 2, 3)\nS(1, 2)\nS(9, 9)");
  EXPECT_TRUE(
      Satisfies(db, MakeInd(*scheme_, "R", {"A", "B"}, "S", {"D", "E"})));
  EXPECT_FALSE(
      Satisfies(db, MakeInd(*scheme_, "R", {"B", "A"}, "S", {"D", "E"})));
  EXPECT_FALSE(Satisfies(db, MakeInd(*scheme_, "S", {"D"}, "R", {"A"})));
}

TEST_F(SatisfiesTest, IndOrderMatters) {
  Database db = Db("R(1, 2, 3)\nS(2, 1)");
  // (A,B) = (1,2) appears as (E,D), not as (D,E).
  EXPECT_FALSE(
      Satisfies(db, MakeInd(*scheme_, "R", {"A", "B"}, "S", {"D", "E"})));
  EXPECT_TRUE(
      Satisfies(db, MakeInd(*scheme_, "R", {"A", "B"}, "S", {"E", "D"})));
}

TEST_F(SatisfiesTest, IndFromEmptyLhsHolds) {
  Database db = Db("S(1, 2)");
  EXPECT_TRUE(Satisfies(db, MakeInd(*scheme_, "R", {"A"}, "S", {"D"})));
}

TEST_F(SatisfiesTest, RdHoldsAndFails) {
  Database eq = Db("R(1, 1, 3)\nR(2, 2, 5)");
  EXPECT_TRUE(Satisfies(eq, MakeRd(*scheme_, "R", {"A"}, {"B"})));
  EXPECT_FALSE(Satisfies(eq, MakeRd(*scheme_, "R", {"A"}, {"C"})));
}

TEST_F(SatisfiesTest, EmvdHoldsOnWitnessClosedRelation) {
  // Classic MVD pattern: A ->> B | C requires the cross product within
  // each A-group.
  Database closed = Db(
      "R(1, 10, 100)\nR(1, 20, 200)\nR(1, 10, 200)\nR(1, 20, 100)");
  EXPECT_TRUE(
      Satisfies(closed, MakeEmvd(*scheme_, "R", {"A"}, {"B"}, {"C"})));
  Database open = Db("R(1, 10, 100)\nR(1, 20, 200)");
  EXPECT_FALSE(
      Satisfies(open, MakeEmvd(*scheme_, "R", {"A"}, {"B"}, {"C"})));
}

TEST_F(SatisfiesTest, EmvdWithEmptyXIsGlobalCross) {
  Database db = Db("R(1, 10, 100)\nR(2, 20, 200)\nR(1, 10, 200)");
  // {} ->> B | C: need (t1.B, t2.C) pairs for ALL tuple pairs; (20, 100)
  // is missing.
  EXPECT_FALSE(Satisfies(db, MakeEmvd(*scheme_, "R", {}, {"B"}, {"C"})));
}

TEST_F(SatisfiesTest, MvdMatchesEquivalentEmvd) {
  Database db = Db(
      "R(1, 10, 100)\nR(1, 20, 200)\nR(1, 10, 200)\nR(1, 20, 100)\n"
      "R(2, 5, 6)");
  Mvd mvd = MakeMvd(*scheme_, "R", {"A"}, {"B"});
  Emvd emvd = MakeEmvd(*scheme_, "R", {"A"}, {"B"}, {"C"});
  EXPECT_EQ(Satisfies(db, mvd), Satisfies(db, emvd));
  EXPECT_TRUE(Satisfies(db, mvd));
}

TEST_F(SatisfiesTest, SatisfiedSubsetAndAll) {
  Database db = Db("R(1, 2, 3)\nR(1, 2, 4)");
  std::vector<Dependency> deps = {
      Dependency(MakeFd(*scheme_, "R", {"A"}, {"B"})),
      Dependency(MakeFd(*scheme_, "R", {"A"}, {"C"})),
  };
  EXPECT_FALSE(SatisfiesAll(db, deps));
  std::vector<Dependency> subset = SatisfiedSubset(db, deps);
  ASSERT_EQ(subset.size(), 1u);
  EXPECT_EQ(subset[0], deps[0]);
}

TEST_F(SatisfiesTest, FindViolationDescribesFd) {
  Database db = Db("R(1, 2, 3)\nR(1, 5, 3)");
  auto violation =
      FindViolation(db, Dependency(MakeFd(*scheme_, "R", {"A"}, {"B"})));
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->description.find("FD"), std::string::npos);
  EXPECT_FALSE(
      FindViolation(db, Dependency(MakeFd(*scheme_, "R", {"A"}, {"C"})))
          .has_value());
}

TEST_F(SatisfiesTest, FindViolationDescribesInd) {
  Database db = Db("R(1, 2, 3)");
  auto violation = FindViolation(
      db, Dependency(MakeInd(*scheme_, "R", {"A"}, "S", {"D"})));
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->description.find("no counterpart"),
            std::string::npos);
}

TEST_F(SatisfiesTest, FdViolationCarriesStructuredWitness) {
  Database db = Db("R(9, 9, 9)\nR(1, 2, 3)\nR(1, 5, 3)");
  auto v = FindViolation(db, Dependency(MakeFd(*scheme_, "R", {"A"}, {"B"})));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->kind, DependencyKind::kFd);
  EXPECT_EQ(v->rel, 0u);
  ASSERT_EQ(v->tuple_indices, (std::vector<std::size_t>{1, 2}));
  ASSERT_EQ(v->tuples.size(), 2u);
  // The witness is genuine: it matches the database tuples and exhibits
  // the violation (agree on lhs, differ on rhs).
  EXPECT_EQ(v->tuples[0], db.relation(0).tuples()[1]);
  EXPECT_EQ(v->tuples[1], db.relation(0).tuples()[2]);
  EXPECT_EQ(v->tuples[0][0], v->tuples[1][0]);
  EXPECT_NE(v->tuples[0][1], v->tuples[1][1]);
}

TEST_F(SatisfiesTest, IndViolationCarriesStructuredWitness) {
  Database db = Db("R(7, 2, 3)\nR(8, 2, 3)\nS(7, 0)");
  auto v = FindViolation(
      db, Dependency(MakeInd(*scheme_, "R", {"A"}, "S", {"D"})));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->kind, DependencyKind::kInd);
  EXPECT_EQ(v->rel, 0u);  // the lhs relation
  ASSERT_EQ(v->tuple_indices, (std::vector<std::size_t>{1}));
  ASSERT_EQ(v->tuples.size(), 1u);
  EXPECT_EQ(v->tuples[0], db.relation(0).tuples()[1]);
  EXPECT_EQ(db.relation(1)
                .ProjectSet({0})
                .count(ProjectTuple(v->tuples[0], {0})),
            0u);
}

TEST_F(SatisfiesTest, EmvdViolationCarriesCombiningPair) {
  Database open = Db("R(1, 10, 100)\nR(1, 20, 200)");
  auto v = FindViolation(
      open, Dependency(MakeEmvd(*scheme_, "R", {"A"}, {"B"}, {"C"})));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->kind, DependencyKind::kEmvd);
  ASSERT_EQ(v->tuples.size(), 2u);
  // Same X-group, and no tuple combines t1[XY] with t2[XZ].
  EXPECT_EQ(v->tuples[0][0], v->tuples[1][0]);
  EXPECT_NE(v->tuples[0], v->tuples[1]);
}

TEST_F(SatisfiesTest, FindFirstViolationReportsDependencyIndex) {
  Database db = Db("R(1, 2, 3)\nR(1, 2, 4)");
  std::vector<Dependency> deps = {
      Dependency(MakeFd(*scheme_, "R", {"A"}, {"B"})),  // holds
      Dependency(MakeFd(*scheme_, "R", {"A"}, {"C"})),  // fails
  };
  auto v = FindFirstViolation(db, deps);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->dep_index, 1u);
  EXPECT_FALSE(FindFirstViolation(db, {deps[0]}).has_value());
}

TEST_F(SatisfiesTest, LegacyEngineAgreesOnViolationWitness) {
  Database db = Db("R(1, 2, 3)\nR(1, 5, 3)");
  Dependency fd(MakeFd(*scheme_, "R", {"A"}, {"B"}));
  SatisfiesOptions legacy{SatisfiesEngine::kLegacy};
  auto interned = FindViolation(db, fd);
  auto reference = FindViolation(db, fd, legacy);
  ASSERT_TRUE(interned.has_value());
  ASSERT_TRUE(reference.has_value());
  EXPECT_EQ(interned->tuple_indices, reference->tuple_indices);
  EXPECT_EQ(interned->description, reference->description);
}

TEST_F(SatisfiesTest, ObeysExactlyAcceptsAndRejects) {
  Database db = Db("R(1, 2, 3)\nR(4, 2, 3)");
  std::vector<Dependency> universe = {
      Dependency(MakeFd(*scheme_, "R", {"A"}, {"B"})),  // holds
      Dependency(MakeFd(*scheme_, "R", {"B"}, {"A"})),  // fails
  };
  EXPECT_FALSE(ObeysExactly(db, universe, {universe[0]}).has_value());
  // Claiming both should fail, as should claiming only the second.
  EXPECT_TRUE(ObeysExactly(db, universe, universe).has_value());
  EXPECT_TRUE(ObeysExactly(db, universe, {universe[1]}).has_value());
}

}  // namespace
}  // namespace ccfp
