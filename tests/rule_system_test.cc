#include <algorithm>
#include <gtest/gtest.h>

#include "axiom/rule_system.h"
#include "axiom/sentence.h"
#include "core/parser.h"
#include "ind/implication.h"
#include "interact/unary_finite.h"

namespace ccfp {
namespace {

class RuleSystemTest : public ::testing::Test {
 protected:
  SchemePtr scheme_ = MakeScheme({{"R", {"A", "B"}}, {"S", {"C", "D"}}});

  Dependency Dep(const std::string& text) {
    return ParseDependency(*scheme_, text).value();
  }
};

TEST_F(RuleSystemTest, InstantiatedIndRulesAreTwoAry) {
  std::vector<GenericRule> rules = InstantiateIndRules(*scheme_, 2);
  RuleSystem system(rules);
  EXPECT_EQ(system.MaxArity(), 2u);
  EXPECT_FALSE(rules.empty());
}

TEST_F(RuleSystemTest, InstantiatedIndRulesAreSound) {
  std::vector<GenericRule> rules = InstantiateIndRules(*scheme_, 2);
  RuleSystem system(rules);
  IndOracle oracle(scheme_);
  EXPECT_TRUE(system.CheckSoundness(oracle, *scheme_).ok());
}

TEST_F(RuleSystemTest, ForwardChainingMatchesDecisionProcedure) {
  // The ground IND1/IND2/IND3 system is a complete axiomatization for the
  // width-<=2 INDs over this scheme: forward chaining from Sigma derives
  // exactly the consequences the BFS engine reports.
  std::vector<GenericRule> rules = InstantiateIndRules(*scheme_, 2);
  RuleSystem system(rules);

  std::vector<Dependency> sigma = {Dep("R[A, B] <= S[C, D]"),
                                   Dep("S[C] <= S[D]")};
  std::vector<Dependency> derived = system.DeriveAll(sigma);

  std::vector<Ind> sigma_inds;
  for (const Dependency& d : sigma) sigma_inds.push_back(d.ind());
  IndImplication engine(scheme_, sigma_inds);
  std::vector<Ind> implied = engine.AllImpliedInds(2);

  // derived (as a set) == implied (as a set).
  auto to_sorted = [](std::vector<Dependency> deps) {
    std::sort(deps.begin(), deps.end());
    deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
    return deps;
  };
  std::vector<Dependency> implied_deps;
  for (const Ind& ind : implied) implied_deps.push_back(Dependency(ind));
  EXPECT_EQ(to_sorted(derived), to_sorted(implied_deps));
}

TEST_F(RuleSystemTest, DerivesAnswersPointQueries) {
  std::vector<GenericRule> rules = InstantiateIndRules(*scheme_, 2);
  RuleSystem system(rules);
  std::vector<Dependency> sigma = {Dep("R[A] <= S[C]"),
                                   Dep("S[C] <= S[D]")};
  EXPECT_TRUE(system.Derives(sigma, Dep("R[A] <= S[D]")));
  EXPECT_FALSE(system.Derives(sigma, Dep("S[D] <= R[A]")));
  EXPECT_TRUE(system.Derives(sigma, Dep("R[A] <= R[A]")));  // IND1 axiom
}

TEST_F(RuleSystemTest, UnsoundRuleIsDetected) {
  std::vector<GenericRule> rules = {
      GenericRule{{Dep("R[A] <= S[C]")}, Dep("S[C] <= R[A]")},
  };
  RuleSystem system(rules);
  IndOracle oracle(scheme_);
  Status status = system.CheckSoundness(oracle, *scheme_);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(RuleSystemTest, RuleToStringShowsShape) {
  GenericRule axiom{{}, Dep("R[A] <= R[A]")};
  EXPECT_NE(axiom.ToString(*scheme_).find("axiom"), std::string::npos);
  GenericRule rule{{Dep("R[A] <= S[C]")}, Dep("R[A] <= S[C]")};
  EXPECT_NE(rule.ToString(*scheme_).find("if {"), std::string::npos);
}

// The KCV binary system for unary FDs + unary INDs (unrestricted): ground
// forward chaining must coincide with the UnaryUnrestrictedImplication
// engine — including NOT deriving the Theorem 4.4 counting consequences.
TEST_F(RuleSystemTest, UnaryFdIndSystemMatchesNonInteractionEngine) {
  std::vector<GenericRule> rules = InstantiateUnaryFdIndRules(*scheme_);
  RuleSystem system(rules);
  EXPECT_EQ(system.MaxArity(), 2u);

  std::vector<Dependency> sigma = {Dep("R: A -> B"), Dep("R[A] <= S[C]"),
                                   Dep("S[C] <= S[D]")};
  std::vector<Fd> fds = {sigma[0].fd()};
  std::vector<Ind> inds = {sigma[1].ind(), sigma[2].ind()};
  UnaryUnrestrictedImplication engine(scheme_, fds, inds);

  for (const char* text :
       {"R: A -> B", "R: B -> A", "R[A] <= S[D]", "S[C] <= R[A]",
        "R[A] <= S[C]", "R[B] <= S[C]"}) {
    Dependency target = Dep(text);
    EXPECT_EQ(system.Derives(sigma, target), engine.Implies(target))
        << text;
  }
}

TEST_F(RuleSystemTest, UnaryFdIndSystemRefusesCountingConsequences) {
  // Theorem 4.4 through the rule-system lens: the binary unrestricted
  // system does NOT derive R[B] <= R[A] from {R: A -> B, R[A] <= R[B]} —
  // and no ground rule set of any fixed arity for |=fin could be complete
  // (Theorem 6.1).
  SchemePtr scheme = MakeScheme({{"R", {"A", "B"}}});
  std::vector<GenericRule> rules = InstantiateUnaryFdIndRules(*scheme);
  RuleSystem system(rules);
  auto dep = [&](const std::string& text) {
    return ParseDependency(*scheme, text).value();
  };
  std::vector<Dependency> sigma = {dep("R: A -> B"), dep("R[A] <= R[B]")};
  EXPECT_FALSE(system.Derives(sigma, dep("R[B] <= R[A]")));
  EXPECT_FALSE(system.Derives(sigma, dep("R: B -> A")));
}

TEST_F(RuleSystemTest, UnaryFdIndSystemIsSoundForFiniteImplicationToo) {
  // Soundness of the unary system holds under both semantics; check it
  // against the *finite* oracle as well (|= implies |=fin).
  std::vector<GenericRule> rules = InstantiateUnaryFdIndRules(*scheme_);
  RuleSystem system(rules);
  UnaryFiniteOracle oracle(scheme_);
  EXPECT_TRUE(system.CheckSoundness(oracle, *scheme_).ok());
}

}  // namespace
}  // namespace ccfp
