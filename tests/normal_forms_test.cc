#include <gtest/gtest.h>

#include "fd/closure.h"
#include "fd/normal_forms.h"

namespace ccfp {
namespace {

class NormalFormsTest : public ::testing::Test {
 protected:
  SchemePtr scheme_ = MakeScheme({{"R", {"A", "B", "C"}}});
};

TEST_F(NormalFormsTest, KeyOnlySchemaIsBcnf) {
  // A -> BC: A is the key, and the only nontrivial lhs that determines
  // anything is a superkey.
  std::vector<Fd> sigma = {MakeFd(*scheme_, "R", {"A"}, {"B", "C"})};
  EXPECT_TRUE(IsBcnf(*scheme_, 0, sigma));
  EXPECT_TRUE(Is3nf(*scheme_, 0, sigma));
}

TEST_F(NormalFormsTest, TransitiveDependencyBreaksBcnf) {
  // A -> B, B -> C: B -> C violates BCNF (B is not a superkey) and 3NF
  // (C is not prime).
  std::vector<Fd> sigma = {MakeFd(*scheme_, "R", {"A"}, {"B"}),
                           MakeFd(*scheme_, "R", {"B"}, {"C"})};
  EXPECT_FALSE(IsBcnf(*scheme_, 0, sigma));
  EXPECT_FALSE(Is3nf(*scheme_, 0, sigma));
  std::vector<NormalFormViolation> violations =
      BcnfViolations(*scheme_, 0, sigma);
  ASSERT_FALSE(violations.empty());
  bool found_b_to_c = false;
  for (const NormalFormViolation& v : violations) {
    if (v.fd.lhs == std::vector<AttrId>{1} &&
        v.fd.rhs == std::vector<AttrId>{2}) {
      found_b_to_c = true;
      EXPECT_FALSE(v.reason.empty());
    }
  }
  EXPECT_TRUE(found_b_to_c);
}

TEST_F(NormalFormsTest, ThreeNfButNotBcnf) {
  // Classic: AB -> C, C -> A (street/city/zip pattern). Keys: AB, CB.
  // C -> A breaks BCNF; but A is prime, so 3NF holds.
  std::vector<Fd> sigma = {MakeFd(*scheme_, "R", {"A", "B"}, {"C"}),
                           MakeFd(*scheme_, "R", {"C"}, {"A"})};
  EXPECT_FALSE(IsBcnf(*scheme_, 0, sigma));
  EXPECT_TRUE(Is3nf(*scheme_, 0, sigma));
}

TEST_F(NormalFormsTest, NoFdsIsTriviallyBcnf) {
  EXPECT_TRUE(IsBcnf(*scheme_, 0, {}));
  EXPECT_TRUE(Is3nf(*scheme_, 0, {}));
}

TEST_F(NormalFormsTest, PrimeAttributes) {
  std::vector<Fd> sigma = {MakeFd(*scheme_, "R", {"A", "B"}, {"C"}),
                           MakeFd(*scheme_, "R", {"C"}, {"A"})};
  std::vector<AttrId> prime = PrimeAttributes(*scheme_, 0, sigma);
  // Keys {A,B} and {B,C}: every attribute is prime.
  EXPECT_EQ(prime.size(), 3u);
}

TEST_F(NormalFormsTest, ViolationsOnlyMentionImpliedFds) {
  std::vector<Fd> sigma = {MakeFd(*scheme_, "R", {"A"}, {"B"})};
  for (const NormalFormViolation& v : BcnfViolations(*scheme_, 0, sigma)) {
    // Each reported FD must actually be implied.
    FdClosure closure(*scheme_, 0, sigma);
    EXPECT_TRUE(closure.Implies(v.fd))
        << Dependency(v.fd).ToString(*scheme_);
  }
}

}  // namespace
}  // namespace ccfp
