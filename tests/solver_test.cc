// Unit coverage for the ImplicationSolver façade: one Solve() front door
// across all five fragments (pure-FD, pure-IND, unary special case,
// mixed-derivable, mixed-undecidable), three-valued Verdicts with
// checkable evidence, and the de-CHECKed budget behavior (exhaustion is a
// Status / kUnknown, never an abort).
#include <gtest/gtest.h>

#include "constructions/section7.h"
#include "constructions/theorem44.h"
#include "core/parser.h"
#include "core/satisfies.h"
#include "fd/closure.h"
#include "ind/implication.h"
#include "search/bounded.h"
#include "solve/solver.h"

namespace ccfp {
namespace {

Verdict MustSolve(ImplicationSolver& solver, const Dependency& target,
                  const Budget& budget = Budget()) {
  Result<Verdict> v = solver.Solve(target, budget);
  EXPECT_TRUE(v.ok()) << v.status();
  return v.MoveValue();
}

/// Every attached counterexample must be genuine: satisfies sigma,
/// violates the target — re-checked here with the independent legacy
/// model checker, not the solver's own workspace.
void ExpectGenuineCounterexample(const Verdict& v,
                                 const std::vector<Dependency>& sigma,
                                 const Dependency& target,
                                 const DatabaseScheme& scheme) {
  ASSERT_TRUE(v.counterexample.has_value());
  EXPECT_TRUE(v.counterexample_verified);
  SatisfiesOptions legacy{SatisfiesEngine::kLegacy};
  for (const Dependency& dep : sigma) {
    if (IsTrivial(scheme, dep)) continue;
    EXPECT_TRUE(Satisfies(*v.counterexample, dep, legacy))
        << dep.ToString(scheme);
  }
  EXPECT_FALSE(Satisfies(*v.counterexample, target, legacy))
      << target.ToString(scheme);
}

// --- Fragment routing ---------------------------------------------------

TEST(SolverClassifyTest, RoutesAllFiveFragments) {
  SchemePtr scheme = MakeScheme({{"R", {"A", "B", "C"}},
                                 {"S", {"D", "E", "F"}}});
  auto dep = [&](const char* text) {
    return ParseDependency(*scheme, text).value();
  };
  std::vector<Dependency> pure_fd = {dep("R: A -> B")};
  std::vector<Dependency> pure_ind = {dep("R[A, B] <= S[D, E]")};
  std::vector<Dependency> unary = {dep("R: A -> B"), dep("R[A] <= S[D]")};
  std::vector<Dependency> mixed = {dep("R: A -> B"),
                                   dep("R[A, B] <= S[D, E]")};

  EXPECT_EQ(ClassifyImplicationFragment(*scheme, pure_fd, dep("R: A -> C")),
            ImplicationFragment::kPureFd);
  EXPECT_EQ(
      ClassifyImplicationFragment(*scheme, pure_ind, dep("R[A] <= S[D]")),
      ImplicationFragment::kPureInd);
  EXPECT_EQ(ClassifyImplicationFragment(*scheme, unary, dep("R: B -> A")),
            ImplicationFragment::kUnary);
  EXPECT_EQ(ClassifyImplicationFragment(*scheme, mixed, dep("R: A -> C")),
            ImplicationFragment::kMixed);
  EXPECT_EQ(ClassifyImplicationFragment(*scheme, mixed,
                                        dep("R: A ->> B | C")),
            ImplicationFragment::kUnsupported);
  // Non-unary target over a unary sigma is mixed, not unary.
  EXPECT_EQ(ClassifyImplicationFragment(*scheme, unary, dep("R: A, B -> C")),
            ImplicationFragment::kMixed);
}

// --- Pure FD ------------------------------------------------------------

TEST(SolverTest, PureFdImpliedWithClosureEvidence) {
  SchemePtr scheme = MakeScheme({{"R", {"A", "B", "C"}}});
  ImplicationSolver solver(
      scheme, ParseDependencies(*scheme, "R: A -> B\nR: B -> C").value());
  Verdict v = MustSolve(solver, MakeFd(*scheme, "R", {"A"}, {"C"}));
  EXPECT_EQ(v.outcome, ImplicationVerdict::kImplied);
  EXPECT_EQ(v.fragment, ImplicationFragment::kPureFd);
  // Closure evidence: A+ = {A, B, C}, and the closure must re-check
  // against the standalone closure engine.
  EXPECT_EQ(v.fd_closure,
            AttributeClosure(*scheme, 0,
                             {MakeFd(*scheme, "R", {"A"}, {"B"}),
                              MakeFd(*scheme, "R", {"B"}, {"C"})},
                             {0}));
}

TEST(SolverTest, PureFdNotImpliedWithVerifiedCounterexample) {
  SchemePtr scheme = MakeScheme({{"R", {"A", "B", "C"}}});
  std::vector<Dependency> sigma =
      ParseDependencies(*scheme, "R: A -> B").value();
  ImplicationSolver solver(scheme, sigma);
  Dependency target(MakeFd(*scheme, "R", {"A"}, {"C"}));
  Verdict v = MustSolve(solver, target);
  EXPECT_EQ(v.outcome, ImplicationVerdict::kNotImplied);
  ExpectGenuineCounterexample(v, sigma, target, *scheme);
}

// --- Pure IND -----------------------------------------------------------

TEST(SolverTest, PureIndImpliedWithCheckedProof) {
  SchemePtr scheme = MakeScheme({{"R", {"A", "B"}},
                                 {"S", {"C", "D"}},
                                 {"T", {"E", "F"}}});
  std::vector<Dependency> sigma =
      ParseDependencies(*scheme, "R[A, B] <= S[C, D]\nS[C] <= T[E]")
          .value();
  ImplicationSolver solver(scheme, sigma);
  Verdict v =
      MustSolve(solver, MakeInd(*scheme, "R", {"A"}, "T", {"E"}));
  EXPECT_EQ(v.outcome, ImplicationVerdict::kImplied);
  EXPECT_EQ(v.fragment, ImplicationFragment::kPureInd);
  // Proof evidence, already Check()ed by the rule system inside Decide;
  // re-check here for good measure.
  ASSERT_TRUE(v.ind_proof.has_value());
  EXPECT_TRUE(v.ind_proof->Check().ok());
  EXPECT_GE(v.ind_chain.size(), 2u);
}

TEST(SolverTest, PureIndNotImpliedWithRuleStarCounterexample) {
  SchemePtr scheme = MakeScheme({{"R", {"A", "B"}}, {"S", {"C", "D"}}});
  std::vector<Dependency> sigma =
      ParseDependencies(*scheme, "R[A] <= S[C]").value();
  ImplicationSolver solver(scheme, sigma);
  Dependency target(MakeInd(*scheme, "S", {"C"}, "R", {"A"}));
  Verdict v = MustSolve(solver, target);
  EXPECT_EQ(v.outcome, ImplicationVerdict::kNotImplied);
  ExpectGenuineCounterexample(v, sigma, target, *scheme);
}

TEST(SolverTest, PureIndSpecialCaseEnginesWhenNoProofWanted) {
  SchemePtr scheme = MakeScheme({{"R", {"A", "B"}}, {"S", {"A", "B"}}});
  SolveOptions options;
  options.want_proof = false;
  options.want_counterexample = false;
  // Unary sigma: the width-1 query routes to digraph reachability.
  {
    ImplicationSolver solver(
        scheme, ParseDependencies(*scheme, "R[A] <= S[A]").value(),
        options);
    Verdict v =
        MustSolve(solver, MakeInd(*scheme, "R", {"A"}, "S", {"A"}));
    EXPECT_EQ(v.outcome, ImplicationVerdict::kImplied);
    EXPECT_NE(v.engine.find("unary-ind-graph"), std::string::npos);
  }
  // Typed sigma + target: per-name-set reachability.
  {
    ImplicationSolver solver(
        scheme,
        ParseDependencies(*scheme, "R[A, B] <= S[A, B]").value(), options);
    Verdict v = MustSolve(
        solver, MakeInd(*scheme, "R", {"A", "B"}, "S", {"A", "B"}));
    EXPECT_EQ(v.outcome, ImplicationVerdict::kImplied);
    EXPECT_NE(v.engine.find("typed"), std::string::npos);
  }
}

// --- Unary fragment (Theorem 4.4 both ways) -----------------------------

TEST(SolverTest, UnarySemanticsSplitOnTheorem44Gadget) {
  Theorem44Gadget g = MakeTheorem44Gadget();
  std::vector<Dependency> sigma = {Dependency(g.fd), Dependency(g.ind)};
  for (const Dependency& target :
       {Dependency(g.ind_conclusion), Dependency(g.fd_conclusion)}) {
    SolveOptions finite;
    finite.semantics = ImplicationSemantics::kFinite;
    Verdict vf =
        SolveImplication(g.scheme, sigma, target, Budget(), finite).value();
    Verdict vu = SolveImplication(g.scheme, sigma, target).value();
    EXPECT_EQ(vf.fragment, ImplicationFragment::kUnary);
    EXPECT_EQ(vf.outcome, ImplicationVerdict::kImplied)
        << target.ToString(*g.scheme);
    EXPECT_EQ(vu.outcome, ImplicationVerdict::kNotImplied)
        << target.ToString(*g.scheme);
    // Finitely implied: no finite counterexample can exist, and the
    // solver must say so instead of attaching one.
    EXPECT_FALSE(vu.counterexample.has_value());
  }
}

TEST(SolverTest, UnaryUnrestrictedCounterexampleWhenFiniteAlsoFails) {
  // The IND keeps sigma out of the pure-FD fragment, but everything stays
  // unary; neither |= nor |=fin gives R: B -> A, so a finite witness
  // exists and the best-effort search must find and verify one.
  SchemePtr scheme = MakeScheme({{"R", {"A", "B"}}, {"S", {"C", "D"}}});
  std::vector<Dependency> sigma =
      ParseDependencies(*scheme, "R: A -> B\nS[C] <= S[D]").value();
  ImplicationSolver solver(scheme, sigma);
  Dependency target(MakeFd(*scheme, "R", {"B"}, {"A"}));
  Verdict v = MustSolve(solver, target);
  EXPECT_EQ(v.fragment, ImplicationFragment::kUnary);
  EXPECT_EQ(v.outcome, ImplicationVerdict::kNotImplied);
  // |=fin fails too, so a finite witness exists and the search is small.
  ExpectGenuineCounterexample(v, sigma, target, *scheme);
}

// --- Mixed fragment -----------------------------------------------------

TEST(SolverTest, MixedDerivableViaSoundRules) {
  // The Proposition 4.1 pullback: derivable without any chase.
  SchemePtr scheme = MakeScheme({{"R", {"X", "Y"}}, {"S", {"T", "U"}}});
  std::vector<Dependency> sigma =
      ParseDependencies(*scheme, "R[X, Y] <= S[T, U]\nS: T -> U").value();
  ImplicationSolver solver(scheme, sigma);
  Verdict v = MustSolve(solver, MakeFd(*scheme, "R", {"X"}, {"Y"}));
  EXPECT_EQ(v.fragment, ImplicationFragment::kMixed);
  EXPECT_EQ(v.outcome, ImplicationVerdict::kImplied);
  EXPECT_NE(v.engine.find("derivation"), std::string::npos);
  EXPECT_FALSE(v.derivation_trace.empty());
}

TEST(SolverTest, MixedChaseProofBeyondTheRuleArsenal) {
  // The Section 7 gap witness: phi is chase-derivable from Sigma but NOT
  // derivable by the k-ary sound rules (Theorem 7.1 made concrete), so
  // the pipeline must fall through derivation to the chase stage.
  Section7Construction c = MakeSection7(2);
  ImplicationSolver solver(c.scheme, c.SigmaDeps());
  Verdict v = MustSolve(solver, Dependency(c.sigma));
  EXPECT_EQ(v.fragment, ImplicationFragment::kMixed);
  EXPECT_EQ(v.outcome, ImplicationVerdict::kImplied);
  EXPECT_NE(v.engine.find("chase"), std::string::npos) << v.engine;
  ASSERT_TRUE(v.chase_stats.has_value());
  // The derivation stage must have run (and failed) first.
  ASSERT_GE(v.stages.size(), 2u);
  EXPECT_EQ(v.stages[0].stage, "derivation");
  EXPECT_EQ(v.stages[0].verdict, ImplicationVerdict::kUnknown);
}

TEST(SolverTest, MixedNotImpliedChaseFixpointIsTheCounterexample) {
  SchemePtr scheme = MakeScheme({{"R", {"A", "B"}}, {"S", {"C", "D"}}});
  std::vector<Dependency> sigma =
      ParseDependencies(*scheme, "R: A -> B\nR[A, B] <= S[C, D]").value();
  ImplicationSolver solver(scheme, sigma);
  Dependency target(MakeFd(*scheme, "S", {"C"}, {"D"}));
  Verdict v = MustSolve(solver, target);
  EXPECT_EQ(v.fragment, ImplicationFragment::kMixed);
  EXPECT_EQ(v.outcome, ImplicationVerdict::kNotImplied);
  ExpectGenuineCounterexample(v, sigma, target, *scheme);
}

TEST(SolverTest, MixedUndecidableReturnsStructuredUnknown) {
  // Cyclic INDs + an FD, with a target none of the stages can decide
  // under a tiny budget: the chase diverges, the bounded search finds no
  // counterexample. The verdict must be a *structured* kUnknown — reason
  // text plus one report per stage with its budget use.
  SchemePtr scheme = MakeScheme({{"R", {"A", "B", "C"}}});
  std::vector<Dependency> sigma =
      ParseDependencies(*scheme,
                        "R: A -> B\nR[B, C] <= R[A, B]\nR[A] <= R[C]")
          .value();
  ImplicationSolver solver(scheme, sigma);
  Dependency target(MakeFd(*scheme, "R", {"C"}, {"B"}));
  Budget tiny = Budget::Tiny();
  Verdict v = MustSolve(solver, target, tiny);
  EXPECT_EQ(v.fragment, ImplicationFragment::kMixed);
  EXPECT_EQ(v.outcome, ImplicationVerdict::kUnknown);
  EXPECT_FALSE(v.reason.empty());
  ASSERT_GE(v.stages.size(), 3u);
  EXPECT_EQ(v.stages[0].stage, "derivation");
  EXPECT_EQ(v.stages[1].stage, "chase");
  EXPECT_EQ(v.stages[2].stage, "search");
  // The chase stage must report its (exhausted) step consumption.
  EXPECT_GT(v.stages[1].used.steps, 0u);
}

TEST(SolverTest, SearchStageDecidesWithoutEvidenceAttachment) {
  // want_counterexample=false must not cost decisiveness: a search-found
  // refutation is still verified and still flips the verdict — only the
  // database attachment is skipped.
  SchemePtr scheme = MakeScheme({{"R", {"A", "B", "C"}}});
  SolveOptions options;
  options.want_counterexample = false;
  ImplicationSolver solver(scheme, {Dependency(Emvd{0, {0}, {1}, {2}})},
                           options);
  Verdict v = MustSolve(solver, Dependency(Fd{0, {0}, {1}}));
  EXPECT_EQ(v.fragment, ImplicationFragment::kUnsupported);
  EXPECT_EQ(v.outcome, ImplicationVerdict::kNotImplied);
  EXPECT_FALSE(v.counterexample.has_value());
}

// --- The evidence-carrying ChaseImplies overload ------------------------

TEST(SolverTest, ChaseImpliesBudgetOverloadCarriesEvidence) {
  SchemePtr scheme = MakeScheme({{"R", {"A", "B"}}, {"S", {"C", "D"}}});
  std::vector<Fd> fds = {MakeFd(*scheme, "S", {"C"}, {"D"})};
  std::vector<Ind> inds = {MakeInd(*scheme, "R", {"A", "B"}, "S", {"C", "D"})};
  // Implied: the Proposition 4.1 pullback, proved via the chase.
  Result<ChaseImplication> implied = ChaseImplies(
      scheme, fds, inds, Dependency(MakeFd(*scheme, "R", {"A"}, {"B"})),
      Budget());
  ASSERT_TRUE(implied.ok()) << implied.status();
  EXPECT_EQ(implied->verdict, ImplicationVerdict::kImplied);
  EXPECT_GT(implied->used.steps, 0u);
  // Not implied: the fixpoint must come back as a genuine, sigma-checked
  // counterexample.
  Dependency bogus(MakeFd(*scheme, "R", {"B"}, {"A"}));
  Result<ChaseImplication> refuted =
      ChaseImplies(scheme, fds, inds, bogus, Budget());
  ASSERT_TRUE(refuted.ok()) << refuted.status();
  EXPECT_EQ(refuted->verdict, ImplicationVerdict::kNotImplied);
  ASSERT_TRUE(refuted->counterexample.has_value());
  SatisfiesOptions legacy{SatisfiesEngine::kLegacy};
  for (const Fd& fd : fds) {
    EXPECT_TRUE(Satisfies(*refuted->counterexample, Dependency(fd), legacy));
  }
  for (const Ind& ind : inds) {
    EXPECT_TRUE(
        Satisfies(*refuted->counterexample, Dependency(ind), legacy));
  }
  EXPECT_FALSE(Satisfies(*refuted->counterexample, bogus, legacy));
  // Exhaustion: cyclic INDs under a tiny budget are kUnknown, not an
  // error and not an abort.
  SchemePtr cyc = MakeScheme({{"T", {"X", "Y", "Z"}}});
  Result<ChaseImplication> unknown = ChaseImplies(
      cyc, {}, {MakeInd(*cyc, "T", {"X", "Y"}, "T", {"Y", "Z"})},
      Dependency(MakeFd(*cyc, "T", {"X"}, {"Y"})), Budget::Tiny());
  ASSERT_TRUE(unknown.ok()) << unknown.status();
  EXPECT_EQ(unknown->verdict, ImplicationVerdict::kUnknown);
  EXPECT_FALSE(unknown->counterexample.has_value());
}

// --- Budgets ------------------------------------------------------------

TEST(SolverTest, BudgetSplitDividesCountersKeepsDeadline) {
  Budget b;
  b.steps = 90;
  b.tuples = 2;
  b.expressions = 7;
  b.deadline = std::chrono::steady_clock::now();
  Budget s = b.Split(3);
  EXPECT_EQ(s.steps, 30u);
  EXPECT_EQ(s.tuples, 1u);  // never splits to zero
  EXPECT_EQ(s.expressions, 2u);
  EXPECT_EQ(s.deadline, b.deadline);
  EXPECT_TRUE(s.Expired());
  EXPECT_FALSE(Budget().Expired());
}

TEST(SolverTest, DeadlineSkipsLaterStages) {
  SchemePtr scheme = MakeScheme({{"R", {"A", "B"}}, {"S", {"C", "D"}}});
  ImplicationSolver solver(
      scheme,
      ParseDependencies(*scheme, "R: A -> B\nS[C, D] <= R[A, B]").value());
  Budget expired;
  expired.deadline = std::chrono::steady_clock::now() -
                     std::chrono::milliseconds(1);
  // Mixed-fragment query with the deadline already passed: the pipeline
  // must skip every stage and answer a structured kUnknown.
  Verdict v =
      MustSolve(solver, Dependency(MakeFd(*scheme, "R", {"B"}, {"A"})),
                expired);
  EXPECT_EQ(v.outcome, ImplicationVerdict::kUnknown);
  EXPECT_NE(v.reason.find("deadline"), std::string::npos) << v.reason;
}

TEST(SolverTest, InvalidInputsAreStatusesNotAborts) {
  SchemePtr scheme = MakeScheme({{"R", {"A", "B"}}});
  // Invalid sigma member (unknown attribute id).
  ImplicationSolver bad_sigma(scheme, {Dependency(Fd{0, {7}, {1}})});
  Result<Verdict> v1 =
      bad_sigma.Solve(Dependency(MakeFd(*scheme, "R", {"A"}, {"B"})));
  EXPECT_FALSE(v1.ok());
  EXPECT_EQ(v1.status().code(), StatusCode::kInvalidArgument);
  // Invalid target.
  ImplicationSolver ok_sigma(scheme, {});
  Result<Verdict> v2 = ok_sigma.Solve(Dependency(Fd{0, {0}, {9}}));
  EXPECT_FALSE(v2.ok());
}

// --- De-CHECKed legacy entry points ------------------------------------

TEST(SolverTest, IndImpliesReturnsStatusOnBudgetExhaustion) {
  SchemePtr scheme = MakeScheme({{"R", {"A", "B", "C"}}});
  std::vector<Ind> sigma = {
      MakeInd(*scheme, "R", {"A", "B"}, "R", {"B", "A"}),
  };
  IndImplication engine(scheme, sigma);
  IndDecisionOptions options;
  options.max_expressions = 1;  // the swap cycle exhausts this at once
  Result<bool> implied = engine.Implies(
      MakeInd(*scheme, "R", {"A", "B"}, "R", {"C", "A"}), options);
  ASSERT_FALSE(implied.ok());
  EXPECT_EQ(implied.status().code(), StatusCode::kResourceExhausted);
}

TEST(SolverTest, HasBoundedCounterexampleReturnsStatusOnExhaustion) {
  SchemePtr scheme = MakeScheme({{"R", {"A", "B", "C"}}});
  std::vector<Dependency> premises =
      ParseDependencies(*scheme, "R: A -> B").value();
  BoundedSearchOptions options;
  options.max_candidates = 1;  // stops the scan immediately
  options.max_tuples_per_relation = 2;
  Result<bool> found = HasBoundedCounterexample(
      scheme, premises, Dependency(MakeFd(*scheme, "R", {"A"}, {"C"})),
      options);
  ASSERT_FALSE(found.ok());
  EXPECT_EQ(found.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace ccfp
