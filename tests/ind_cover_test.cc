#include <gtest/gtest.h>

#include "ind/cover.h"
#include "ind/implication.h"

namespace ccfp {
namespace {

class IndCoverTest : public ::testing::Test {
 protected:
  SchemePtr scheme_ = MakeScheme(
      {{"R", {"A", "B"}}, {"S", {"C", "D"}}, {"T", {"E", "F"}}});
};

TEST_F(IndCoverTest, DetectsTransitiveRedundancy) {
  std::vector<Ind> sigma = {
      MakeInd(*scheme_, "R", {"A", "B"}, "S", {"C", "D"}),
      MakeInd(*scheme_, "S", {"C", "D"}, "T", {"E", "F"}),
      MakeInd(*scheme_, "R", {"A", "B"}, "T", {"E", "F"}),  // redundant
  };
  Result<std::vector<std::size_t>> redundant = RedundantInds(scheme_, sigma);
  ASSERT_TRUE(redundant.ok()) << redundant.status();
  ASSERT_EQ(redundant->size(), 1u);
  EXPECT_EQ((*redundant)[0], 2u);
}

TEST_F(IndCoverTest, DetectsProjectionRedundancy) {
  std::vector<Ind> sigma = {
      MakeInd(*scheme_, "R", {"A", "B"}, "S", {"C", "D"}),
      MakeInd(*scheme_, "R", {"B"}, "S", {"D"}),  // IND2-projection
  };
  Result<std::vector<std::size_t>> redundant = RedundantInds(scheme_, sigma);
  ASSERT_TRUE(redundant.ok());
  ASSERT_EQ(redundant->size(), 1u);
  EXPECT_EQ((*redundant)[0], 1u);
}

TEST_F(IndCoverTest, NoFalsePositives) {
  std::vector<Ind> sigma = {
      MakeInd(*scheme_, "R", {"A"}, "S", {"C"}),
      MakeInd(*scheme_, "S", {"D"}, "T", {"E"}),
  };
  Result<std::vector<std::size_t>> redundant = RedundantInds(scheme_, sigma);
  ASSERT_TRUE(redundant.ok());
  EXPECT_TRUE(redundant->empty());
}

TEST_F(IndCoverTest, MinimalCoverIsEquivalentAndIrredundant) {
  std::vector<Ind> sigma = {
      MakeInd(*scheme_, "R", {"A", "B"}, "S", {"C", "D"}),
      MakeInd(*scheme_, "S", {"C", "D"}, "T", {"E", "F"}),
      MakeInd(*scheme_, "R", {"A", "B"}, "T", {"E", "F"}),
      MakeInd(*scheme_, "R", {"A"}, "S", {"C"}),
      MakeInd(*scheme_, "R", {"B"}, "T", {"F"}),
  };
  Result<std::vector<Ind>> cover = MinimalIndCover(scheme_, sigma);
  ASSERT_TRUE(cover.ok()) << cover.status();
  EXPECT_LT(cover->size(), sigma.size());

  Result<bool> equivalent = EquivalentIndSets(scheme_, sigma, *cover);
  ASSERT_TRUE(equivalent.ok());
  EXPECT_TRUE(*equivalent);

  Result<std::vector<std::size_t>> redundant =
      RedundantInds(scheme_, *cover);
  ASSERT_TRUE(redundant.ok());
  EXPECT_TRUE(redundant->empty());
}

TEST_F(IndCoverTest, TrivialMembersAreAlwaysRedundant) {
  std::vector<Ind> sigma = {
      MakeInd(*scheme_, "R", {"A"}, "R", {"A"}),  // IND1 instance
      MakeInd(*scheme_, "R", {"A"}, "S", {"C"}),
  };
  Result<std::vector<Ind>> cover = MinimalIndCover(scheme_, sigma);
  ASSERT_TRUE(cover.ok());
  ASSERT_EQ(cover->size(), 1u);
  EXPECT_EQ((*cover)[0], sigma[1]);
}

TEST_F(IndCoverTest, EquivalentIndSetsDistinguishes) {
  std::vector<Ind> a = {MakeInd(*scheme_, "R", {"A"}, "S", {"C"})};
  std::vector<Ind> b = {MakeInd(*scheme_, "S", {"C"}, "R", {"A"})};
  Result<bool> equivalent = EquivalentIndSets(scheme_, a, b);
  ASSERT_TRUE(equivalent.ok());
  EXPECT_FALSE(*equivalent);
  Result<bool> self = EquivalentIndSets(scheme_, a, a);
  ASSERT_TRUE(self.ok());
  EXPECT_TRUE(*self);
}

TEST_F(IndCoverTest, ChainExtractionMatchesChainLength) {
  std::vector<Ind> sigma = {
      MakeInd(*scheme_, "R", {"A", "B"}, "S", {"C", "D"}),
      MakeInd(*scheme_, "S", {"C"}, "T", {"E"}),
  };
  IndImplication engine(scheme_, sigma);
  IndDecisionOptions options;
  options.want_proof = true;
  Result<IndDecision> decision =
      engine.Decide(MakeInd(*scheme_, "R", {"A"}, "T", {"E"}), options);
  ASSERT_TRUE(decision.ok());
  ASSERT_TRUE(decision->implied);
  ASSERT_EQ(decision->chain.size(), decision->chain_length);
  // Chain starts at the target's lhs expression and ends at its rhs.
  EXPECT_EQ(decision->chain.front().rel, 0u);
  EXPECT_EQ(decision->chain.back().rel, 2u);
  EXPECT_FALSE(
      decision->chain.front().ToString(*scheme_).empty());
}

}  // namespace
}  // namespace ccfp
