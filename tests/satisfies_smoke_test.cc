// Perf smoke tests (ctest -L smoke) for the interned model-checking core:
// ObeysExactly over a Section 6/7-sized sentence universe and a bounded
// counterexample search must finish well under a second. Both workloads
// were the dominant costs of witness verification before the IdDatabase
// layer; a regression back to per-probe Value hashing (or per-candidate
// database materialization) fails here fast instead of surfacing as a
// slow bench.
#include <chrono>
#include <gtest/gtest.h>

#include "constructions/section6.h"
#include "constructions/section7.h"
#include "core/satisfies.h"
#include "search/bounded.h"

namespace ccfp {
namespace {

std::int64_t MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

TEST(SatisfiesSmokeTest, Section6ObeysExactlyFinishesFast) {
  constexpr std::size_t kK = 12;
  Section6Construction c = MakeSection6(kK);
  Database d = MakeSection6Armstrong(c, 0);
  std::vector<Dependency> expected = Section6ExpectedSatisfied(c, 0);

  auto start = std::chrono::steady_clock::now();
  std::optional<std::string> mismatch =
      ObeysExactly(d, c.universe, expected);
  std::int64_t elapsed_ms = MsSince(start);

  EXPECT_FALSE(mismatch.has_value()) << *mismatch;  // property (6.1)
  EXPECT_LT(elapsed_ms, 1000)
      << "interned ObeysExactly regressed to per-probe Value hashing over "
      << c.universe.size() << " universe sentences";
}

TEST(SatisfiesSmokeTest, Section7UniverseSweepFinishesFast) {
  constexpr std::size_t kN = 8;
  Section7Construction c = MakeSection7(kN);
  std::vector<Dependency> universe = Section7Universe(c);
  // The Lemma 7.9-style witness seed: two F-tuples agreeing on A.
  Database db(c.scheme);
  std::uint64_t next_null = 1;
  Tuple t1(3), t2(3);
  for (AttrId a = 0; a < 3; ++a) {
    t1[a] = Value::Null(next_null++);
    t2[a] = (a == 0) ? t1[a] : Value::Null(next_null++);
  }
  db.Insert(c.f, std::move(t1));
  db.Insert(c.f, std::move(t2));

  auto start = std::chrono::steady_clock::now();
  std::vector<Dependency> satisfied = SatisfiedSubset(db, universe);
  std::int64_t elapsed_ms = MsSince(start);

  EXPECT_FALSE(satisfied.empty());
  EXPECT_LT(elapsed_ms, 1000)
      << "interned SatisfiedSubset regressed over " << universe.size()
      << " universe sentences";
}

TEST(SatisfiesSmokeTest, BoundedSearchFinishesFast) {
  // Exhaustive no-counterexample workload: {A -> B, B -> C} |= A -> C over
  // domain 3 with up to 3 tuples — 3304 candidate subsets for the legacy
  // engine, a few hundred boundary evaluations after FD pruning for the
  // id-space engine.
  SchemePtr scheme = MakeScheme({{"R", {"A", "B", "C"}}});
  std::vector<Dependency> premises = {
      Dependency(MakeFd(*scheme, "R", {"A"}, {"B"})),
      Dependency(MakeFd(*scheme, "R", {"B"}, {"C"})),
  };
  Dependency conclusion(MakeFd(*scheme, "R", {"A"}, {"C"}));
  BoundedSearchOptions options;
  options.domain_size = 3;
  options.max_tuples_per_relation = 3;

  auto start = std::chrono::steady_clock::now();
  Result<BoundedSearchResult> result =
      FindCounterexample(scheme, premises, conclusion, options);
  std::int64_t elapsed_ms = MsSince(start);

  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->exhausted);
  EXPECT_FALSE(result->counterexample.has_value());
  EXPECT_LT(elapsed_ms, 1000)
      << "id-space bounded search regressed to per-candidate "
         "materialization";
}

}  // namespace
}  // namespace ccfp
