// Differential property suites for the parallel hot paths (PR 8): at
// every thread count the parallel engines must produce exactly the
// sequential results —
//   * bounded search: same verdict and the same counterexample database
//     (lowest-task-index reduction = the sequential pre-order witness),
//     and the same candidates_tested on full no-find scans;
//   * verifier CatchUpParallel: same verdicts, witnesses, and stats as
//     the sequential CatchUp on the same trace;
//   * workspace chase: byte-identical materialized fixpoints and identical
//     fd_merges/ind_tuples/steps counters;
// including when Budget exhaustion or an injected fault trips mid-fan-out
// (one ResourceExhausted, never a wrong verdict, resumable state).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "chase/workspace_chase.h"
#include "core/satisfies.h"
#include "search/bounded.h"
#include "tests/trace_util.h"
#include "util/budget.h"
#include "util/fault.h"
#include "util/rng.h"
#include "util/task_pool.h"
#include "verify/verifier.h"

namespace ccfp {
namespace {

constexpr unsigned kThreadCounts[] = {1, 2, 4, 8};

// ---------------------------------------------------------------------------
// Bounded search: kParallel vs kIdSpace.

struct SearchInstance {
  SchemePtr scheme;
  std::vector<Dependency> premises;
  Dependency conclusion = Dependency(Fd{0, {0}, {1}});
};

SearchInstance RandomSearchInstance(std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::size_t relations = 1 + rng.Below(2);
  std::size_t arity = 2 + rng.Below(2);
  std::vector<std::pair<std::string, std::vector<std::string>>> rels;
  for (std::size_t r = 0; r < relations; ++r) {
    std::vector<std::string> attrs;
    for (std::size_t a = 0; a < arity; ++a) {
      attrs.push_back(std::string(1, static_cast<char>('A' + a)));
    }
    rels.emplace_back("R" + std::to_string(r), attrs);
  }
  SearchInstance instance;
  instance.scheme = MakeScheme(rels);
  std::size_t count = 1 + rng.Below(3);
  for (std::size_t i = 0; i < count; ++i) {
    RelId rel = static_cast<RelId>(rng.Below(relations));
    AttrId x = static_cast<AttrId>(rng.Below(arity));
    AttrId y = static_cast<AttrId>(rng.Below(arity));
    if (rng.Chance(1, 3) && relations >= 1) {
      RelId rhs = static_cast<RelId>(rng.Below(relations));
      instance.premises.push_back(Dependency(Ind{rel, {x}, rhs, {y}}));
    } else if (x != y) {
      instance.premises.push_back(Dependency(Fd{rel, {x}, {y}}));
    }
  }
  AttrId x = static_cast<AttrId>(rng.Below(arity));
  AttrId y = static_cast<AttrId>((x + 1 + rng.Below(arity - 1)) % arity);
  instance.conclusion = Dependency(Fd{0, {x}, {y}});
  return instance;
}

class ParallelSearchTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParallelSearchTest, MatchesSequentialAtEveryThreadCount) {
  SearchInstance instance = RandomSearchInstance(GetParam());
  BoundedSearchOptions sequential;
  sequential.engine = BoundedSearchEngine::kIdSpace;
  sequential.domain_size = 2;
  sequential.max_tuples_per_relation = 2;
  Result<BoundedSearchResult> base = FindCounterexample(
      instance.scheme, instance.premises, instance.conclusion, sequential);
  ASSERT_TRUE(base.ok()) << base.status();

  for (unsigned threads : kThreadCounts) {
    BoundedSearchOptions parallel = sequential;
    parallel.engine = BoundedSearchEngine::kParallel;
    parallel.threads = threads;
    Result<BoundedSearchResult> got = FindCounterexample(
        instance.scheme, instance.premises, instance.conclusion, parallel);
    ASSERT_TRUE(got.ok()) << got.status();
    ASSERT_EQ(got->exhausted, base->exhausted) << "threads=" << threads;
    ASSERT_EQ(got->counterexample.has_value(),
              base->counterexample.has_value())
        << "threads=" << threads;
    if (base->counterexample.has_value()) {
      // The lowest-task-index reduction pins the parallel witness to the
      // sequential pre-order one: the same database, byte for byte.
      EXPECT_TRUE(*got->counterexample == *base->counterexample)
          << "threads=" << threads << "\n"
          << got->counterexample->ToString() << "\nvs\n"
          << base->counterexample->ToString();
    } else if (base->exhausted) {
      // Full no-find scans visit every boundary in both engines, so the
      // candidate counters agree exactly.
      EXPECT_EQ(got->candidates_tested, base->candidates_tested)
          << "threads=" << threads;
    }
    if (threads == 1) {
      // One executor runs the task list in submission order — the exact
      // sequential traversal, counter included.
      EXPECT_EQ(got->candidates_tested, base->candidates_tested);
    }
  }
}

TEST_P(ParallelSearchTest, SharedMeterExhaustionIsNeverAWrongVerdict) {
  SearchInstance instance = RandomSearchInstance(GetParam() * 131 + 7);
  for (unsigned threads : kThreadCounts) {
    BoundedSearchOptions tiny;
    tiny.engine = BoundedSearchEngine::kParallel;
    tiny.threads = threads;
    tiny.domain_size = 2;
    tiny.max_tuples_per_relation = 2;
    tiny.max_candidates = 3;  // trips mid-fan-out on any non-trivial scan
    Result<BoundedSearchResult> got = FindCounterexample(
        instance.scheme, instance.premises, instance.conclusion, tiny);
    ASSERT_TRUE(got.ok()) << got.status();
    if (got->counterexample.has_value()) {
      // Budget or not, an attached witness must be genuine.
      IdDatabase interned(*got->counterexample);
      for (const Dependency& p : instance.premises) {
        EXPECT_TRUE(interned.Satisfies(p))
            << p.ToString(*instance.scheme);
      }
      EXPECT_FALSE(interned.Satisfies(instance.conclusion));
    } else if (!got->exhausted) {
      // Exhausted mid-scan without a find: the budgeted retry converges
      // to the sequential verdict — exhaustion lost no answers.
      BoundedSearchOptions full = tiny;
      full.max_candidates = 1u << 24;
      Result<BoundedSearchResult> retry = FindCounterexample(
          instance.scheme, instance.premises, instance.conclusion, full);
      ASSERT_TRUE(retry.ok());
      BoundedSearchOptions sequential = full;
      sequential.engine = BoundedSearchEngine::kIdSpace;
      sequential.threads = 0;
      Result<BoundedSearchResult> base = FindCounterexample(
          instance.scheme, instance.premises, instance.conclusion,
          sequential);
      ASSERT_TRUE(base.ok());
      EXPECT_EQ(retry->counterexample.has_value(),
                base->counterexample.has_value());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelSearchTest,
                         ::testing::Range<std::uint64_t>(1, 31));

// ---------------------------------------------------------------------------
// Verifier: CatchUpParallel vs CatchUp on one shared trace.

class ParallelCatchUpTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ParallelCatchUpTest, MatchesSequentialCatchUp) {
  SplitMix64 rng(GetParam());
  SchemePtr scheme = testutil::RandomScheme(rng);
  InternedWorkspace ws(scheme);
  std::vector<Dependency> universe =
      testutil::RandomUniverse(scheme, rng, 12);
  if (universe.empty()) return;

  // Two verifiers on one workspace: each owns a feed cursor, so they
  // drain the same trace independently.
  IncrementalVerifier sequential(&ws);
  IncrementalVerifier parallel(&ws);
  std::vector<WatchId> seq_ids, par_ids;
  for (const Dependency& dep : universe) {
    seq_ids.push_back(sequential.Watch(dep));
    par_ids.push_back(parallel.Watch(dep));
  }

  std::vector<ValueId> pool;
  for (unsigned threads : kThreadCounts) {
    TaskPool task_pool(threads);
    for (int round = 0; round < 4; ++round) {
      std::size_t appends = 1 + rng.Below(6);
      for (std::size_t i = 0; i < appends; ++i) {
        testutil::AppendRandomTuple(ws, rng, pool);
      }
      if (rng.Chance(1, 2)) testutil::MergeRandomValues(ws, rng, pool);
      sequential.CatchUp();
      Status st =
          parallel.CatchUpParallel(Budget::Unlimited(), task_pool);
      ASSERT_TRUE(st.ok()) << st.ToString();
      for (std::size_t i = 0; i < universe.size(); ++i) {
        ASSERT_EQ(parallel.Satisfies(par_ids[i]),
                  sequential.Satisfies(seq_ids[i]))
            << "threads=" << threads << " "
            << universe[i].ToString(*scheme);
        std::optional<IdViolation> pv = parallel.FindViolation(par_ids[i]);
        std::optional<IdViolation> sv =
            sequential.FindViolation(seq_ids[i]);
        ASSERT_EQ(pv.has_value(), sv.has_value());
        if (pv.has_value()) {
          EXPECT_EQ(pv->rel, sv->rel);
          EXPECT_EQ(pv->tuple_indices, sv->tuple_indices);
        }
      }
      // The fan-out replays the same events through the same watchers;
      // the serial epilogue accounts them identically.
      EXPECT_EQ(parallel.stats().events_consumed,
                sequential.stats().events_consumed);
      EXPECT_EQ(parallel.stats().watcher_events,
                sequential.stats().watcher_events);
      EXPECT_EQ(parallel.stats().horizon_rebuilds,
                sequential.stats().horizon_rebuilds);
    }
    // Full three-way agreement (watchers / sweep / fresh intern) after
    // each thread-count block.
    testutil::CheckAgreement(ws, parallel, universe, par_ids);
  }
}

TEST_P(ParallelCatchUpTest, InjectedExhaustionMidFanOutIsResumable) {
  SplitMix64 rng(GetParam() * 977 + 5);
  SchemePtr scheme = testutil::RandomScheme(rng);
  InternedWorkspace ws(scheme);
  std::vector<Dependency> universe =
      testutil::RandomUniverse(scheme, rng, 10);
  if (universe.empty()) return;
  IncrementalVerifier sequential(&ws);
  IncrementalVerifier parallel(&ws);
  std::vector<WatchId> seq_ids, par_ids;
  for (const Dependency& dep : universe) {
    seq_ids.push_back(sequential.Watch(dep));
    par_ids.push_back(parallel.Watch(dep));
  }
  std::vector<ValueId> pool;
  for (int i = 0; i < 24; ++i) testutil::AppendRandomTuple(ws, rng, pool);

  TaskPool task_pool(4);
  {
    FaultInjector faults(1);
    ScopedFaultInjector scoped(&faults);
    faults.ArmEvery(FaultSite::kWatcherGrow, 2);
    Status st = parallel.CatchUpParallel(Budget::Unlimited(), task_pool);
    // Exactly one ResourceExhausted surfaces, and no cursor moved — the
    // retry below re-replays everything.
    ASSERT_EQ(st.code(), StatusCode::kResourceExhausted) << st.ToString();
  }
  Status retry = parallel.CatchUpParallel(Budget::Unlimited(), task_pool);
  ASSERT_TRUE(retry.ok()) << retry.ToString();
  sequential.CatchUp();
  for (std::size_t i = 0; i < universe.size(); ++i) {
    EXPECT_EQ(parallel.Satisfies(par_ids[i]),
              sequential.Satisfies(seq_ids[i]))
        << universe[i].ToString(*scheme);
  }
  testutil::CheckAgreement(ws, parallel, universe, par_ids);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelCatchUpTest,
                         ::testing::Range<std::uint64_t>(1, 21));

// ---------------------------------------------------------------------------
// Chase: parallel FD rounds vs the sequential engine.

struct ChaseSigma {
  std::vector<Fd> fds;
  std::vector<Ind> inds;
};

ChaseSigma RandomSigma(const SchemePtr& scheme, SplitMix64& rng) {
  ChaseSigma sigma;
  for (RelId rel = 0; rel < scheme->size(); ++rel) {
    std::size_t arity = scheme->relation(rel).arity();
    for (int i = 0; i < 2; ++i) {
      AttrId x = static_cast<AttrId>(rng.Below(arity));
      AttrId y = static_cast<AttrId>(rng.Below(arity));
      if (x != y) sigma.fds.push_back(Fd{rel, {x}, {y}});
    }
  }
  // Forward-only INDs so the chase terminates.
  for (RelId rel = 0; rel + 1 < scheme->size(); ++rel) {
    if (!rng.Chance(1, 2)) continue;
    std::size_t la = scheme->relation(rel).arity();
    std::size_t ra = scheme->relation(rel + 1).arity();
    sigma.inds.push_back(Ind{rel,
                             {static_cast<AttrId>(rng.Below(la))},
                             static_cast<RelId>(rel + 1),
                             {static_cast<AttrId>(rng.Below(ra))}});
  }
  return sigma;
}

/// Seeds `ws` with `count` tuples drawn from a small value pool — enough
/// agreeing lhs values that the first FD round is both large (past the
/// parallel threshold) and merge-heavy.
void SeedWorkspace(InternedWorkspace& ws, std::uint64_t seed,
                   std::size_t count) {
  SplitMix64 rng(seed);
  std::vector<ValueId> pool;
  for (std::size_t i = 0; i < count; ++i) {
    testutil::AppendRandomTuple(ws, rng, pool);
  }
}

void ExpectSameFixpoint(const InternedWorkspace& seq_ws,
                        const WorkspaceChaseStats& seq,
                        const InternedWorkspace& par_ws,
                        const WorkspaceChaseStats& par,
                        const std::string& label) {
  EXPECT_EQ(par.outcome, seq.outcome) << label;
  EXPECT_EQ(par.fd_merges, seq.fd_merges) << label;
  EXPECT_EQ(par.ind_tuples, seq.ind_tuples) << label;
  EXPECT_EQ(par.steps, seq.steps) << label;
  // Byte-identical materialized fixpoints: same tuples, same labeled-null
  // numbering, same order.
  EXPECT_EQ(par_ws.Materialize().ToString(), seq_ws.Materialize().ToString())
      << label;
  for (RelId rel = 0; rel < seq_ws.scheme().size(); ++rel) {
    ASSERT_EQ(par_ws.size(rel), seq_ws.size(rel)) << label;
    EXPECT_EQ(par_ws.AliveTuples(rel), seq_ws.AliveTuples(rel)) << label;
    for (std::uint32_t i = 0; i < seq_ws.size(rel); ++i) {
      ASSERT_EQ(par_ws.alive(rel, i), seq_ws.alive(rel, i))
          << label << " slot " << i;
      if (seq_ws.alive(rel, i)) {
        EXPECT_EQ(par_ws.tuple(rel, i), seq_ws.tuple(rel, i))
            << label << " rel " << rel << " slot " << i;
      }
    }
  }
}

class ParallelChaseTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParallelChaseTest, FixpointMatchesSequentialAtEveryThreadCount) {
  SplitMix64 rng(GetParam());
  SchemePtr scheme = testutil::RandomScheme(rng);
  ChaseSigma sigma = RandomSigma(scheme, rng);

  InternedWorkspace seq_ws(scheme);
  SeedWorkspace(seq_ws, GetParam() * 31 + 1, 96);
  WorkspaceChase seq_chase(&seq_ws, sigma.fds, sigma.inds);
  Result<WorkspaceChaseStats> seq = seq_chase.Run({});
  ASSERT_TRUE(seq.ok()) << seq.status();

  for (unsigned threads : {2u, 4u, 8u}) {
    InternedWorkspace par_ws(scheme);
    SeedWorkspace(par_ws, GetParam() * 31 + 1, 96);
    WorkspaceChase par_chase(&par_ws, sigma.fds, sigma.inds);
    ChaseOptions options;
    options.threads = threads;
    Result<WorkspaceChaseStats> par = par_chase.Run(options);
    ASSERT_TRUE(par.ok()) << par.status();
    ExpectSameFixpoint(seq_ws, *seq, par_ws, *par,
                       "threads=" + std::to_string(threads));
  }
}

TEST_P(ParallelChaseTest, InjectedExhaustionMidRoundIsResumable) {
  SplitMix64 rng(GetParam() * 613 + 3);
  SchemePtr scheme = testutil::RandomScheme(rng);
  ChaseSigma sigma = RandomSigma(scheme, rng);

  InternedWorkspace seq_ws(scheme);
  SeedWorkspace(seq_ws, GetParam() * 67 + 9, 80);
  WorkspaceChase seq_chase(&seq_ws, sigma.fds, sigma.inds);
  Result<WorkspaceChaseStats> seq = seq_chase.Run({});
  ASSERT_TRUE(seq.ok()) << seq.status();

  InternedWorkspace par_ws(scheme);
  SeedWorkspace(par_ws, GetParam() * 67 + 9, 80);
  WorkspaceChase par_chase(&par_ws, sigma.fds, sigma.inds);
  ChaseOptions options;
  options.threads = 4;
  std::uint64_t total_merges = 0;
  std::uint64_t total_ind_tuples = 0;
  int exhaustions = 0;
  {
    FaultInjector faults(1);
    ScopedFaultInjector scoped(&faults);
    faults.ArmEvery(FaultSite::kEngineExhaust, 37);
    for (int attempt = 0; attempt < 64; ++attempt) {
      Result<WorkspaceChaseStats> run = par_chase.Run(options);
      if (run.ok()) {
        total_merges += run->fd_merges;
        total_ind_tuples += run->ind_tuples;
        break;
      }
      ASSERT_EQ(run.status().code(), StatusCode::kResourceExhausted)
          << run.status().ToString();
      ++exhaustions;
      // Requeued state must survive the trip: the next Run resumes.
    }
  }
  // Finish without faults (the loop above may have hit the cap mid-chase).
  Result<WorkspaceChaseStats> final_run = par_chase.Run(options);
  ASSERT_TRUE(final_run.ok()) << final_run.status();
  total_merges += final_run->fd_merges;
  total_ind_tuples += final_run->ind_tuples;
  EXPECT_GT(exhaustions, 0) << "fault never fired; tighten the period";
  EXPECT_EQ(final_run->outcome, seq->outcome);
  if (seq->outcome == ChaseOutcome::kFixpoint) {
    // Across however many resumed Runs, the same total work happened and
    // the same fixpoint came out.
    EXPECT_EQ(total_merges, seq->fd_merges);
    EXPECT_EQ(total_ind_tuples, seq->ind_tuples);
    EXPECT_EQ(par_ws.Materialize().ToString(),
              seq_ws.Materialize().ToString());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelChaseTest,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace ccfp
