// Perf smoke test (ctest -L smoke) for the parallel bounded search: on a
// deep full-scan workload, the kParallel engine at 4 executors must not be
// meaningfully slower than the sequential kIdSpace engine. The guard is
// deliberately tolerant — CI hosts may expose a single core, where every
// thread count degrades to the sequential traversal plus pool overhead —
// so it catches pathologies (lock convulsions, per-boundary allocation,
// busy-wait storms), not missing speedups. Everything stays well under a
// second.
#include <algorithm>
#include <chrono>
#include <gtest/gtest.h>

#include "core/dependency.h"
#include "search/bounded.h"
#include "util/check.h"

namespace ccfp {
namespace {

std::uint64_t MedianRunNs(const SchemePtr& scheme,
                          const std::vector<Dependency>& premises,
                          const Dependency& conclusion,
                          const BoundedSearchOptions& options) {
  std::uint64_t samples[3];
  for (int i = 0; i < 3; ++i) {
    auto start = std::chrono::steady_clock::now();
    Result<BoundedSearchResult> result =
        FindCounterexample(scheme, premises, conclusion, options);
    auto stop = std::chrono::steady_clock::now();
    CCFP_CHECK(result.ok());
    CCFP_CHECK(result->exhausted);
    CCFP_CHECK(!result->counterexample.has_value());
    samples[i] = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
            .count());
  }
  std::sort(std::begin(samples), std::end(samples));
  return samples[1];
}

TEST(ParallelSmokeTest, ParallelSearchNotSlowerThanSequential) {
  // {A -> B, B -> C} |= A -> C at domain 3, <= 3 tuples: implied, so both
  // engines scan the full bounded space (thousands of boundaries).
  SchemePtr scheme = MakeScheme({{"R", {"A", "B", "C"}}});
  std::vector<Dependency> premises = {
      Dependency(MakeFd(*scheme, "R", {"A"}, {"B"})),
      Dependency(MakeFd(*scheme, "R", {"B"}, {"C"}))};
  Dependency conclusion(MakeFd(*scheme, "R", {"A"}, {"C"}));

  BoundedSearchOptions sequential;
  sequential.engine = BoundedSearchEngine::kIdSpace;
  sequential.domain_size = 3;
  sequential.max_tuples_per_relation = 3;

  BoundedSearchOptions parallel = sequential;
  parallel.engine = BoundedSearchEngine::kParallel;
  parallel.threads = 4;

  std::uint64_t seq_ns =
      MedianRunNs(scheme, premises, conclusion, sequential);
  std::uint64_t par_ns = MedianRunNs(scheme, premises, conclusion, parallel);

  // Single-core tolerance: parallel may pay the pool plus per-task scratch
  // setup, but must stay within 1.5x of sequential plus a 50 ms floor for
  // scheduler noise on loaded CI machines.
  EXPECT_LT(par_ns, seq_ns + seq_ns / 2 + 50'000'000ull)
      << "parallel(4) " << par_ns / 1e6 << " ms vs sequential "
      << seq_ns / 1e6 << " ms — fork/join overhead pathology";
  EXPECT_LT(seq_ns, 1'000'000'000ull);
  EXPECT_LT(par_ns, 1'000'000'000ull);
}

}  // namespace
}  // namespace ccfp
