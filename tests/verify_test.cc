// Unit coverage for the delta-driven verification layer: the workspace
// change feed and surgical partition repair (core/workspace.h), the
// incremental dependency watchers (verify/verifier.h), the solver-owned
// witness cache (verify/witness_cache.h), the multi-round ArmstrongSession,
// and the watcher-backed mining overloads.
#include <gtest/gtest.h>

#include "armstrong/builder.h"
#include "axiom/sentence.h"
#include "chase/workspace_chase.h"
#include "core/satisfies.h"
#include "core/workspace.h"
#include "mine/discovery.h"
#include "solve/solver.h"
#include "util/strings.h"
#include "verify/verifier.h"
#include "verify/witness_cache.h"

namespace ccfp {
namespace {

SchemePtr TwoColScheme() { return MakeScheme({{"R", {"A", "B"}}}); }

/// Chase-protocol merge: union, reroute, re-canonicalize occurrences.
void MergeAndCanonicalize(InternedWorkspace& ws, ValueId a, ValueId b) {
  InternedWorkspace::MergeResult m = ws.MergeValues(ws.Canon(a), ws.Canon(b));
  ASSERT_TRUE(m.merged);
  std::vector<WorkspaceTupleRef> stale = ws.occurrences(m.loser);
  ws.RerouteOccurrences(m.loser, m.winner);
  for (const WorkspaceTupleRef& ref : stale) {
    ws.CanonicalizeTuple(ref.rel, ref.idx);
  }
}

TEST(ChangeFeedTest, PublishesAppendRewriteAndKill) {
  SchemePtr scheme = TwoColScheme();
  InternedWorkspace ws(scheme);
  ValueId n1 = ws.InternFreshNull();
  ValueId n2 = ws.InternFreshNull();
  ValueId n3 = ws.InternFreshNull();
  ws.Append(0, {n1, n2});
  ws.Append(0, {n1, n3});
  ASSERT_EQ(ws.EventCount(0), 2u);
  EXPECT_EQ(ws.events(0)[0].kind, WorkspaceEventKind::kAppend);
  EXPECT_EQ(ws.events(0)[0].idx, 0u);
  EXPECT_EQ(ws.events(0)[1].idx, 1u);

  // Merging n2 and n3 rewrites one slot and collapses it onto its twin.
  MergeAndCanonicalize(ws, n2, n3);
  ASSERT_EQ(ws.EventCount(0), 3u);
  EXPECT_EQ(ws.events(0)[2].kind, WorkspaceEventKind::kKill);
  EXPECT_EQ(ws.AliveTuples(0), 1u);
  EXPECT_EQ(ws.stats().tuples_killed, 1u);

  // A merge that changes a tuple without killing it publishes kRewrite.
  ValueId n4 = ws.InternFreshNull();
  ValueId n5 = ws.InternFreshNull();
  ws.Append(0, {n4, n5});
  MergeAndCanonicalize(ws, n4, n1);
  bool saw_rewrite = false;
  for (std::uint64_t s = 4; s < ws.EventCount(0); ++s) {
    if (ws.events(0)[s].kind == WorkspaceEventKind::kRewrite) {
      saw_rewrite = true;
    }
  }
  EXPECT_TRUE(saw_rewrite);
}

TEST(SurgicalRepairTest, MergeRepairsInsteadOfRebuilding) {
  SchemePtr scheme = TwoColScheme();
  InternedWorkspace ws(scheme);
  ValueId a = ws.Intern(Value::Int(1));
  ValueId n1 = ws.InternFreshNull();
  ValueId n2 = ws.InternFreshNull();
  ValueId n3 = ws.InternFreshNull();
  ws.Append(0, {a, n1});
  ws.Append(0, {n2, n3});

  // Compile a partition, then merge: the partition must be repaired in
  // place (no invalidation, no rebuild) and stay correct.
  const InternedWorkspace::Partition& pa = ws.partition(0, {0});
  EXPECT_EQ(pa.alive_groups, 2u);
  std::uint64_t built = ws.stats().partitions_built;
  MergeAndCanonicalize(ws, n2, a);  // slot 1 now starts with constant 1
  EXPECT_GT(ws.stats().partition_slots_repaired, 0u);
  EXPECT_EQ(ws.stats().partitions_invalidated, 0u);
  const InternedWorkspace::Partition& pa2 = ws.partition(0, {0});
  EXPECT_EQ(&pa, &pa2) << "partition identity must be stable";
  EXPECT_EQ(ws.stats().partitions_built, built) << "rebuild happened";
  EXPECT_EQ(pa2.alive_groups, 1u) << "the two A-groups merged";
  // Group ids are stable: the surviving group keeps its id; the vacated
  // one is a tombstone with group_size 0.
  std::uint32_t tombstones = 0;
  for (std::uint32_t g = 0; g < pa2.group_count; ++g) {
    if (pa2.group_size[g] == 0) ++tombstones;
  }
  EXPECT_EQ(tombstones, pa2.group_count - pa2.alive_groups);
}

TEST(SurgicalRepairTest, SweepVerdictsSurviveRepairs) {
  SchemePtr scheme = TwoColScheme();
  InternedWorkspace ws(scheme);
  ValueId n1 = ws.InternFreshNull();
  ValueId n2 = ws.InternFreshNull();
  ValueId n3 = ws.InternFreshNull();
  ValueId n4 = ws.InternFreshNull();
  ws.Append(0, {n1, n2});
  ws.Append(0, {n3, n4});
  Fd fd{0, {0}, {1}};
  EXPECT_TRUE(ws.Satisfies(fd));  // all-distinct nulls: lhs groups singleton
  MergeAndCanonicalize(ws, n1, n3);  // now both agree on A, differ on B
  EXPECT_FALSE(ws.Satisfies(fd));
  std::optional<IdViolation> v = ws.FindViolation(Dependency(fd));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->tuple_indices, (std::vector<std::uint32_t>{0, 1}));
  MergeAndCanonicalize(ws, n2, n4);  // B values join: FD restored, slot dies
  EXPECT_TRUE(ws.Satisfies(fd));
  EXPECT_EQ(ws.AliveTuples(0), 1u);
}

TEST(IncrementalVerifierTest, FdWatcherTracksAppendsAndMerges) {
  SchemePtr scheme = TwoColScheme();
  InternedWorkspace ws(scheme);
  IncrementalVerifier verifier(&ws);
  Dependency fd(Fd{0, {0}, {1}});
  WatchId id = verifier.Watch(fd);
  EXPECT_TRUE(verifier.Satisfies(id)) << "empty relation obeys every FD";

  ValueId one = ws.Intern(Value::Int(1));
  ValueId two = ws.Intern(Value::Int(2));
  ValueId three = ws.Intern(Value::Int(3));
  ws.Append(0, {one, two});
  EXPECT_TRUE(verifier.Satisfies(id));
  ws.Append(0, {one, three});  // violates A -> B
  EXPECT_FALSE(verifier.Satisfies(id));
  std::optional<IdViolation> v = verifier.FindViolation(id);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->tuple_indices, (std::vector<std::uint32_t>{0, 1}));
  // The witness is the sweep's witness, verbatim.
  EXPECT_EQ(v->tuple_indices, ws.FindViolation(fd)->tuple_indices);
}

TEST(IncrementalVerifierTest, IndWatcherTracksBothSides) {
  SchemePtr scheme = MakeScheme({{"R", {"A", "B"}}, {"S", {"C", "D"}}});
  InternedWorkspace ws(scheme);
  IncrementalVerifier verifier(&ws);
  Dependency ind(Ind{0, {0}, 1, {0}});  // R[A] <= S[C]
  WatchId id = verifier.Watch(ind);
  EXPECT_TRUE(verifier.Satisfies(id));

  ValueId one = ws.Intern(Value::Int(1));
  ValueId two = ws.Intern(Value::Int(2));
  ws.Append(0, {one, two});
  EXPECT_FALSE(verifier.Satisfies(id)) << "1 not in S[C]";
  ws.Append(1, {one, one});
  EXPECT_TRUE(verifier.Satisfies(id)) << "witness appeared on the rhs";
  ws.Append(0, {two, one});
  EXPECT_FALSE(verifier.Satisfies(id)) << "2 not in S[C]";
  std::optional<IdViolation> v = verifier.FindViolation(id);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->rel, 0u);
  EXPECT_EQ(v->tuple_indices, (std::vector<std::uint32_t>{1}));
}

TEST(IncrementalVerifierTest, WatcherStateSurvivesChaseRounds) {
  // The mid-chase verification contract: chase -> CatchUp -> O(1) reads,
  // with counters that saw only the delta.
  SchemePtr scheme = MakeScheme({{"R", {"A", "B"}}, {"S", {"C", "D"}}});
  InternedWorkspace ws(scheme);
  std::vector<Fd> fds = {Fd{0, {0}, {1}}};
  std::vector<Ind> inds = {Ind{0, {1}, 1, {0}}};
  for (int i = 0; i < 4; ++i) {
    ws.Append(0, {ws.InternFreshNull(), ws.InternFreshNull()});
  }
  WorkspaceChase chaser(&ws, fds, inds);
  IncrementalVerifier verifier(&ws);
  WatchId fd_id = verifier.Watch(Dependency(fds[0]));
  WatchId ind_id = verifier.Watch(Dependency(inds[0]));

  ASSERT_TRUE(chaser.Run({}).ok());
  EXPECT_TRUE(verifier.Satisfies(fd_id));
  EXPECT_TRUE(verifier.Satisfies(ind_id));
  std::uint64_t consumed = verifier.stats().events_consumed;

  // Append a violating pair; the verifier sees it *before* the chase
  // repairs it, and again after the resumed chase restores sigma.
  ValueId n1 = ws.InternFreshNull();
  ws.Append(0, {n1, ws.InternFreshNull()});
  ws.Append(0, {n1, ws.InternFreshNull()});
  EXPECT_FALSE(verifier.Satisfies(fd_id));
  ASSERT_TRUE(chaser.Run({}).ok());
  EXPECT_TRUE(verifier.Satisfies(fd_id));
  EXPECT_TRUE(verifier.Satisfies(ind_id));
  EXPECT_GT(verifier.stats().events_consumed, consumed);
  EXPECT_LT(verifier.stats().events_consumed - consumed, 16u)
      << "the verifier replayed the whole history, not the delta";
}

TEST(IncrementalVerifierTest, EmvdAndRdAndMvdWatchersAgreeWithSweep) {
  SchemePtr scheme = MakeScheme({{"R", {"A", "B", "C"}}});
  InternedWorkspace ws(scheme);
  IncrementalVerifier verifier(&ws);
  Dependency emvd(Emvd{0, {0}, {1}, {2}});
  Dependency mvd(Mvd{0, {0}, {1}});
  Dependency rd(Rd{0, {0}, {1}});
  WatchId e = verifier.Watch(emvd);
  WatchId m = verifier.Watch(mvd);
  WatchId r = verifier.Watch(rd);

  ValueId one = ws.Intern(Value::Int(1));
  ValueId two = ws.Intern(Value::Int(2));
  ValueId three = ws.Intern(Value::Int(3));
  ws.Append(0, {one, one, one});
  ws.Append(0, {one, two, three});
  for (int step = 0; step < 2; ++step) {
    EXPECT_EQ(verifier.Satisfies(e), ws.Satisfies(emvd));
    EXPECT_EQ(verifier.Satisfies(m), ws.Satisfies(mvd));
    EXPECT_EQ(verifier.Satisfies(r), ws.Satisfies(rd));
    ws.Append(0, {one, one, three});  // completes one missing combination
  }
  EXPECT_FALSE(verifier.Satisfies(r));  // (1,2,3) has A != B
}

TEST(IncrementalVerifierTest, ObeysExactlyWatchedMatchesSweep) {
  SchemePtr scheme = MakeScheme({{"R", {"A", "B", "C"}}});
  InternedWorkspace ws(scheme);
  ws.AppendTuple(0, {Value::Int(1), Value::Int(2), Value::Int(2)});
  ws.AppendTuple(0, {Value::Int(2), Value::Int(2), Value::Int(3)});
  std::vector<Dependency> universe = {
      Dependency(Fd{0, {0}, {1}}), Dependency(Fd{0, {1}, {2}}),
      Dependency(Rd{0, {1}, {2}}), Dependency(Mvd{0, {0}, {1}})};
  std::vector<Dependency> satisfied;
  for (const Dependency& dep : universe) {
    if (ws.Satisfies(dep)) satisfied.push_back(dep);
  }
  IncrementalVerifier verifier(&ws);
  EXPECT_FALSE(
      ObeysExactlyWatched(verifier, universe, satisfied).has_value());
  // Perturbations reject with the sweep's diagnostic strings.
  std::vector<Dependency> wrong = satisfied;
  wrong.pop_back();
  std::optional<std::string> watched =
      ObeysExactlyWatched(verifier, universe, wrong);
  std::optional<std::string> swept = ObeysExactly(ws, universe, wrong);
  ASSERT_TRUE(watched.has_value());
  ASSERT_TRUE(swept.has_value());
  EXPECT_EQ(*watched, *swept);
}

TEST(WitnessCacheTest, AdmitsVerifiesAndReplays) {
  SchemePtr scheme = TwoColScheme();
  std::vector<Dependency> sigma = {Dependency(Fd{0, {0}, {1}})};
  WitnessCache cache(scheme, sigma, 2);

  // Satisfies sigma, violates B -> A.
  Database good(scheme);
  good.Insert(0, {Value::Int(1), Value::Int(9)});
  good.Insert(0, {Value::Int(2), Value::Int(9)});
  Dependency target(Fd{0, {1}, {0}});
  WitnessCache::AdmitOutcome out = cache.Admit(good, target);
  EXPECT_TRUE(out.admitted);
  EXPECT_TRUE(out.genuine);
  EXPECT_EQ(cache.size(), 1u);

  // Violates sigma: rejected, and its target flag is not misreported.
  Database bad(scheme);
  bad.Insert(0, {Value::Int(1), Value::Int(2)});
  bad.Insert(0, {Value::Int(1), Value::Int(3)});
  out = cache.Admit(bad, target);
  EXPECT_FALSE(out.admitted);
  EXPECT_FALSE(out.genuine);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().rejected, 1u);

  // Replay: the cached database refutes the same target and any other
  // dependency it happens to violate; it cannot refute a consequence.
  EXPECT_NE(cache.Refute(target), nullptr);
  EXPECT_EQ(cache.Refute(Dependency(Fd{0, {0}, {1}})), nullptr);
  EXPECT_EQ(cache.stats().hits, 1u);

  // Duplicate admission does not grow the cache.
  out = cache.Admit(good, target);
  EXPECT_TRUE(out.admitted);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(WitnessCacheTest, WatchCapBoundsPerEntryWatcherGrowth) {
  // Every distinct probed target registers a watcher on every cached
  // entry and the verifier has no unwatch, so a long-lived solver
  // probing many targets used to grow each entry's watcher set without
  // bound. The cap forces a fresh rebuild over sigma instead; verdicts
  // must be unaffected across resets.
  SchemePtr scheme = TwoColScheme();
  std::vector<Dependency> sigma = {Dependency(Fd{0, {0}, {1}})};
  WitnessCache cache(scheme, sigma, 2, /*max_watches_per_entry=*/2);

  Database good(scheme);  // satisfies A -> B, violates plenty else
  good.Insert(0, {Value::Int(1), Value::Int(9)});
  good.Insert(0, {Value::Int(2), Value::Int(9)});
  WitnessCache::AdmitOutcome out = cache.Admit(good, Dependency(Fd{0, {1}, {0}}));
  ASSERT_TRUE(out.admitted);
  ASSERT_TRUE(out.genuine);

  struct Probe {
    Dependency target;
    bool refuted;
  };
  std::vector<Probe> probes = {
      {Dependency(Fd{0, {1}, {0}}), true},      // 9 -> {1, 2}
      {Dependency(Fd{0, {}, {0}}), true},       // A not constant
      {Dependency(Fd{0, {}, {1}}), false},      // B constant
      {Dependency(Fd{0, {}, {0, 1}}), true},
      {Dependency(Fd{0, {1}, {0, 1}}), true},
      {Dependency(Fd{0, {0, 1}, {0}}), false},  // trivial
      {Dependency(Fd{0, {0}, {0, 1}}), false},  // equivalent to sigma
      {Dependency(Ind{0, {0}, 0, {1}}), true},  // {1,2} not in {9}
      {Dependency(Ind{0, {1}, 0, {0}}), true},  // {9} not in {1,2}
  };
  for (int round = 0; round < 3; ++round) {
    for (const Probe& probe : probes) {
      EXPECT_EQ(cache.Refute(probe.target) != nullptr, probe.refuted)
          << probe.target.ToString(*scheme) << " round " << round;
    }
  }
  // Nine distinct targets against a cap of two forced resets; memory
  // stayed bounded instead of accreting one watcher per target forever.
  EXPECT_GT(cache.stats().watcher_resets, 0u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(WitnessCacheTest, ByteCeilingEvictsColdestUntilUnderBudget) {
  SchemePtr scheme = TwoColScheme();
  std::vector<Dependency> sigma = {Dependency(Fd{0, {0}, {1}})};
  WitnessCache cache(scheme, sigma, 4);
  Dependency target(Fd{0, {1}, {0}});
  for (int k = 0; k < 3; ++k) {
    Database db(scheme);
    db.Insert(0, {Value::Int(10 + k), Value::Int(7)});
    db.Insert(0, {Value::Int(20 + k), Value::Int(7)});
    WitnessCache::AdmitOutcome out = cache.Admit(db, target);
    ASSERT_TRUE(out.admitted);
    ASSERT_TRUE(out.genuine);
  }
  ASSERT_EQ(cache.size(), 3u);
  std::uint64_t bytes = cache.MemoryBytes();
  ASSERT_GT(bytes, 0u);

  // A ceiling at the live footprint evicts nothing.
  cache.EnforceByteCeiling(bytes);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.stats().byte_evictions, 0u);

  // Below it, coldest entries go first until the cache fits.
  cache.EnforceByteCeiling(bytes - 1);
  EXPECT_LT(cache.size(), 3u);
  EXPECT_GT(cache.size(), 0u);
  EXPECT_GT(cache.stats().byte_evictions, 0u);
  EXPECT_LE(cache.MemoryBytes(), bytes - 1);
  // The survivors still answer.
  EXPECT_NE(cache.Refute(target), nullptr);

  // A zero ceiling empties the cache; probes miss but stay well-defined.
  cache.EnforceByteCeiling(0);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.MemoryBytes(), 0u);
  EXPECT_EQ(cache.Refute(target), nullptr);
  EXPECT_EQ(cache.stats().evicted, cache.stats().byte_evictions)
      << "capacity never overflowed, so every eviction is a byte eviction";
}

TEST(WitnessCacheTest, SolverReplaysRefutationsAcrossSolves) {
  // Mixed-fragment sigma; the first Solve pays the staged pipeline, the
  // second is answered from the witness cache before any engine runs.
  SchemePtr scheme = MakeScheme({{"R", {"A", "B"}}, {"S", {"C", "D"}}});
  std::vector<Dependency> sigma = {
      Dependency(Fd{0, {0}, {1}}),
      Dependency(Ind{0, {0, 1}, 1, {0, 1}}),
  };
  ImplicationSolver solver(scheme, sigma);
  Dependency target(Fd{1, {0}, {1}});  // S: C -> D is not implied
  Result<Verdict> first = solver.Solve(target);
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_EQ(first->outcome, ImplicationVerdict::kNotImplied);
  ASSERT_TRUE(first->counterexample_verified);
  EXPECT_EQ(first->engine.find("witness-cache"), std::string::npos);

  Result<Verdict> second = solver.Solve(target);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(second->outcome, ImplicationVerdict::kNotImplied);
  EXPECT_NE(second->engine.find("witness-cache"), std::string::npos)
      << second->engine;
  ASSERT_TRUE(second->counterexample.has_value());
  // The replayed evidence is genuine.
  EXPECT_TRUE(second->counterexample_verified);
  EXPECT_FALSE(Satisfies(*second->counterexample, target));
  EXPECT_TRUE(SatisfiesAll(*second->counterexample, sigma));

  // A *different* target the same witness refutes is also near-free.
  Result<Verdict> third = solver.Solve(Dependency(Fd{1, {1}, {0}}));
  ASSERT_TRUE(third.ok()) << third.status();
  if (third->not_implied() &&
      third->engine.find("witness-cache") != std::string::npos) {
    EXPECT_TRUE(third->counterexample_verified);
  }
}

TEST(ArmstrongSessionTest, IncrementalMatchesFullSweepAcrossExtends) {
  // Universe grown in chunks; after every Extend both verify engines must
  // hold a verified-exact database certifying the same consequence set.
  SchemePtr scheme = MakeScheme({{"R", {"A", "B", "C"}}});
  std::vector<Fd> fds = {Fd{0, {0}, {1}}, Fd{0, {1}, {2}}};
  UniverseOptions uopts;
  uopts.max_fd_lhs = 2;
  uopts.include_inds = false;
  std::vector<Dependency> universe = EnumerateUniverse(*scheme, uopts);
  ASSERT_GT(universe.size(), 8u);
  FdOracle oracle(scheme);

  ArmstrongBuildOptions inc_opts;
  inc_opts.verify = ArmstrongVerifyEngine::kIncremental;
  ArmstrongBuildOptions sweep_opts;
  sweep_opts.verify = ArmstrongVerifyEngine::kFullSweep;
  ArmstrongSession inc(scheme, fds, {}, &oracle, inc_opts);
  ArmstrongSession sweep(scheme, fds, {}, &oracle, sweep_opts);

  std::size_t chunk = universe.size() / 4 + 1;
  for (std::size_t at = 0; at < universe.size(); at += chunk) {
    std::vector<Dependency> delta(
        universe.begin() + at,
        universe.begin() + std::min(at + chunk, universe.size()));
    ASSERT_TRUE(inc.Extend(delta).ok());
    ASSERT_TRUE(sweep.Extend(delta).ok());
    EXPECT_EQ(inc.expected(), sweep.expected());
    // Cross-check with the independent sweep engine on materialized dbs.
    EXPECT_FALSE(
        ObeysExactly(inc.Snapshot(), inc.universe(), inc.expected())
            .has_value());
    EXPECT_FALSE(
        ObeysExactly(sweep.Snapshot(), sweep.universe(), sweep.expected())
            .has_value());
  }
  // Extending with already-known members is a no-op beyond re-verifying.
  ASSERT_TRUE(inc.Extend(universe).ok());
  EXPECT_EQ(inc.universe().size(), universe.size());
}

TEST(ArmstrongBuilderTest, VerifyEnginesAgreeOnOneShotBuilds) {
  SchemePtr scheme = MakeScheme(
      {{"R0", {"A", "B"}}, {"R1", {"A", "B"}}, {"R2", {"A", "B"}}});
  std::vector<Fd> fds = {Fd{0, {0}, {1}}, Fd{1, {0}, {1}}, Fd{2, {0}, {1}}};
  std::vector<Ind> inds = {Ind{0, {1}, 1, {0}}, Ind{1, {1}, 2, {0}}};
  UniverseOptions uopts;
  uopts.max_fd_lhs = 1;
  uopts.max_ind_width = 1;
  uopts.include_rds = true;
  std::vector<Dependency> universe = EnumerateUniverse(*scheme, uopts);
  ChaseOracle oracle(scheme);

  ArmstrongBuildOptions options;
  options.verify = ArmstrongVerifyEngine::kIncremental;
  Result<ArmstrongReport> inc =
      BuildArmstrongDatabase(scheme, fds, inds, universe, oracle, options);
  options.verify = ArmstrongVerifyEngine::kFullSweep;
  Result<ArmstrongReport> sweep =
      BuildArmstrongDatabase(scheme, fds, inds, universe, oracle, options);
  ASSERT_TRUE(inc.ok()) << inc.status();
  ASSERT_TRUE(sweep.ok()) << sweep.status();
  EXPECT_EQ(inc->expected, sweep->expected);
  EXPECT_EQ(inc->db, sweep->db)
      << "verification strategy must not change the built database";
}

TEST(MiningTest, WatcherOverloadsMatchSweepsAndRemineCheaply) {
  SchemePtr scheme = MakeScheme({{"R", {"A", "B", "C"}}, {"S", {"A", "B"}}});
  InternedWorkspace ws(scheme);
  ws.AppendTuple(0, {Value::Int(1), Value::Int(1), Value::Int(2)});
  ws.AppendTuple(0, {Value::Int(2), Value::Int(1), Value::Int(2)});
  ws.AppendTuple(1, {Value::Int(1), Value::Int(1)});

  IncrementalVerifier verifier(&ws);
  FdMiningOptions fd_opts;
  fd_opts.max_lhs = 2;
  EXPECT_EQ(MineFds(verifier, 0, fd_opts), MineFds(ws, 0, fd_opts));
  IndMiningOptions ind_opts;
  EXPECT_EQ(MineInds(verifier, ind_opts), MineInds(ws, ind_opts));
  EXPECT_EQ(MineRds(verifier), MineRds(ws));
  std::size_t watchers = verifier.watch_count();

  // Re-mining after a delta: watcher state is shared across calls (no new
  // watchers for old candidates) and verdicts still match the sweeps.
  ws.AppendTuple(0, {Value::Int(1), Value::Int(3), Value::Int(3)});
  EXPECT_EQ(MineFds(verifier, 0, fd_opts), MineFds(ws, 0, fd_opts));
  EXPECT_EQ(MineInds(verifier, ind_opts), MineInds(ws, ind_opts));
  EXPECT_EQ(MineRds(verifier), MineRds(ws));
  EXPECT_EQ(verifier.watch_count(), watchers)
      << "re-mining created duplicate watchers";
}

}  // namespace
}  // namespace ccfp
