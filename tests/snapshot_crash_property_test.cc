// Crash-safety properties for the atomic snapshot chain
// (core/snapshot.h): with the fault injector (util/fault.h) "killing the
// process" at every modeled crash instant — torn temp write, bit rot,
// pre-fsync loss, post-rename loss — a chain save either lands
// completely or not at all. Whatever the random state and crash site,
// LoadSnapshotChain afterwards restores *exactly* the previous persisted
// state or *exactly* the new one, never a torn hybrid; the saver always
// observes failure, keeps its journal, and the retried save repairs the
// chain in place. The session-level test is the ISSUE's acceptance
// scenario: an ArmstrongSession checkpointing through a delta chain is
// crashed mid-save, warm-reloaded from the persisted classification
// record (zero oracle replay), and must answer identically to a control
// session that never crashed.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "armstrong/builder.h"
#include "axiom/oracle.h"
#include "axiom/sentence.h"
#include "core/satisfies.h"
#include "core/snapshot.h"
#include "core/workspace.h"
#include "tests/trace_util.h"
#include "util/fault.h"
#include "util/rng.h"
#include "verify/verifier.h"

namespace ccfp {
namespace {

using testutil::AppendRandomTuple;
using testutil::CheckAgreement;
using testutil::ExpectObservablyEquivalent;
using testutil::MergeRandomValues;
using testutil::RandomScheme;
using testutil::RandomUniverse;

constexpr FaultSite kCrashSites[] = {
    FaultSite::kSnapshotCorrupt,
    FaultSite::kSnapshotTruncate,
    FaultSite::kSnapshotFsync,
    FaultSite::kSnapshotRename,
};

class SnapshotCrashPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

void MutateBatch(InternedWorkspace& ws, SplitMix64& rng,
                 std::vector<ValueId>& pool, std::size_t ops) {
  for (std::size_t op = 0; op < ops; ++op) {
    if (rng.Chance(2, 3)) {
      AppendRandomTuple(ws, rng, pool);
    } else {
      MergeRandomValues(ws, rng, pool);
    }
  }
}

TEST_P(SnapshotCrashPropertyTest, CrashedChainSaveLeavesOldOrNewExactly) {
  const std::uint64_t seed = GetParam();
  SplitMix64 rng(seed * 0x9E3779B97F4A7C15ull + 7);
  SchemePtr scheme = RandomScheme(rng);
  std::vector<Dependency> deps = RandomUniverse(scheme, rng, 8);
  InternedWorkspace ws(scheme);
  std::vector<ValueId> pool;
  MutateBatch(ws, rng, pool, 4 + rng.Below(10));
  for (const Dependency& dep : deps) ws.Satisfies(dep);

  std::string prefix = ::testing::TempDir() + "/ccfp_crash_chain_" +
                       std::to_string(seed);
  SnapshotChainWriter writer(prefix);
  ASSERT_TRUE(writer.Save(ws, {}, "s0").ok());
  Result<RestoredChain> s0 = LoadSnapshotChain(scheme, prefix);
  ASSERT_TRUE(s0.ok()) << s0.status();

  // Advance to S1 with the journal recording, then crash the delta save.
  MutateBatch(ws, rng, pool, 2 + rng.Below(6));
  if (rng.Chance(1, 2)) ws.CompactFeeds();
  FaultSite site = kCrashSites[seed % 4];
  FaultInjector fi(seed);
  fi.Arm(site, 0);
  Status crashed;
  {
    ScopedFaultInjector scope(&fi);
    crashed = writer.Save(ws, {}, "s1");
  }
  ASSERT_EQ(fi.fired(site), 1u);
  ASSERT_FALSE(crashed.ok())
      << "the saver must never observe success across a crash instant";
  EXPECT_EQ(crashed.code(), StatusCode::kInternal);

  // Whatever the crash instant, the chain on disk is one *complete*
  // state: exactly the old S0 (crash before the rename landed) or
  // exactly the new S1 (crash just after) — never a torn hybrid.
  Result<RestoredChain> after = LoadSnapshotChain(scheme, prefix);
  ASSERT_TRUE(after.ok()) << after.status();
  if (site == FaultSite::kSnapshotRename) {
    EXPECT_EQ(after->restored.aux, "s1");
    ExpectObservablyEquivalent(after->restored.ws, ws);
  } else {
    EXPECT_EQ(after->restored.aux, "s0");
    ExpectObservablyEquivalent(after->restored.ws, s0->restored.ws);
  }

  // Failure kept the journal, so the retried save rewrites the same
  // chain position and the tip catches up to S1.
  ASSERT_TRUE(writer.Save(ws, {}, "s1").ok());
  Result<RestoredChain> retried = LoadSnapshotChain(scheme, prefix);
  ASSERT_TRUE(retried.ok()) << retried.status();
  EXPECT_EQ(retried->restored.aux, "s1");
  EXPECT_EQ(retried->deltas_applied, 1u);
  ExpectObservablyEquivalent(retried->restored.ws, ws);

  // The restored tip still answers exactly (watchers vs sweep vs fresh
  // re-intern) over the whole random universe.
  IncrementalVerifier verifier(&retried->restored.ws);
  std::vector<WatchId> ids;
  for (const Dependency& dep : deps) ids.push_back(verifier.Watch(dep));
  CheckAgreement(retried->restored.ws, verifier, deps, ids);
}

TEST_P(SnapshotCrashPropertyTest, CrashedFoldKeepsACompleteChainLoadable) {
  // Folding rewrites the base under the live chain. Its crash safety is
  // by linkage: the new base renames into place *first*, stale deltas
  // are unlinked after — so a crash anywhere in between leaves either
  // the old base with its still-linked delta (old state) or the new
  // base with orphaned deltas that no longer link (new state).
  const std::uint64_t seed = GetParam();
  SplitMix64 rng(seed * 0xBF58476D1CE4E5B9ull + 11);
  SchemePtr scheme = RandomScheme(rng);
  InternedWorkspace ws(scheme);
  std::vector<ValueId> pool;
  MutateBatch(ws, rng, pool, 3 + rng.Below(6));

  std::string prefix = ::testing::TempDir() + "/ccfp_crash_fold_" +
                       std::to_string(seed);
  SnapshotChainPolicy policy;
  policy.max_deltas = 1;  // base, one delta, then every save folds
  policy.fold_delta_percent = 0;
  SnapshotChainWriter writer(prefix, policy);
  ASSERT_TRUE(writer.Save(ws).ok());  // base: S0
  MutateBatch(ws, rng, pool, 1 + rng.Below(4));
  ASSERT_TRUE(writer.Save(ws).ok());  // delta 1: S1
  Result<RestoredChain> s1 = LoadSnapshotChain(scheme, prefix);
  ASSERT_TRUE(s1.ok()) << s1.status();
  ASSERT_EQ(s1->deltas_applied, 1u);

  MutateBatch(ws, rng, pool, 1 + rng.Below(4));  // S2; next save folds
  FaultSite site = kCrashSites[seed % 4];
  FaultInjector fi(seed * 3 + 1);
  fi.Arm(site, 0);
  Status crashed;
  {
    ScopedFaultInjector scope(&fi);
    crashed = writer.Save(ws);
  }
  ASSERT_EQ(fi.fired(site), 1u);
  ASSERT_FALSE(crashed.ok());

  Result<RestoredChain> after = LoadSnapshotChain(scheme, prefix);
  ASSERT_TRUE(after.ok()) << after.status();
  if (site == FaultSite::kSnapshotRename) {
    // New base landed; the old delta survives on disk but its base link
    // no longer matches, so the load treats it as end-of-chain.
    EXPECT_EQ(after->deltas_applied, 0u);
    ExpectObservablyEquivalent(after->restored.ws, ws);
  } else {
    EXPECT_EQ(after->deltas_applied, 1u);
    ExpectObservablyEquivalent(after->restored.ws, s1->restored.ws);
  }

  // The retried fold completes and sweeps the stale delta files.
  ASSERT_TRUE(writer.Save(ws).ok());
  EXPECT_FALSE(std::ifstream(writer.DeltaPath(1)).good())
      << "fold left a stale delta file behind";
  Result<RestoredChain> folded = LoadSnapshotChain(scheme, prefix);
  ASSERT_TRUE(folded.ok()) << folded.status();
  EXPECT_EQ(folded->deltas_applied, 0u);
  ExpectObservablyEquivalent(folded->restored.ws, ws);
}

TEST_P(SnapshotCrashPropertyTest, WarmReloadAfterMidSaveCrashMatchesControl) {
  // The acceptance scenario: a session checkpointing through a delta
  // chain crashes mid-save, is warm-reloaded from the chain tip's
  // classification record (no oracle replay of the persisted prefix),
  // and from there must be indistinguishable from a control session
  // that never crashed.
  const std::uint64_t seed = GetParam();
  SchemePtr scheme = MakeScheme({{"R", {"A", "B", "C"}}});
  std::vector<Fd> fds = {MakeFd(*scheme, "R", {"A"}, {"B"}),
                         MakeFd(*scheme, "R", {"B"}, {"C"})};
  UniverseOptions uopts;
  uopts.max_fd_lhs = 2;
  uopts.include_inds = false;
  std::vector<Dependency> universe = EnumerateUniverse(*scheme, uopts);
  ASSERT_GT(universe.size(), 4u);
  FdOracle oracle(scheme);

  ArmstrongBuildOptions copts;
  copts.verify = ArmstrongVerifyEngine::kIncremental;
  ArmstrongSession control(scheme, fds, {}, &oracle, copts);

  std::string prefix = ::testing::TempDir() + "/ccfp_crash_session_" +
                       std::to_string(seed);
  SnapshotChainPolicy policy;
  policy.max_deltas = 3;  // the crash lands on a delta or a fold by seed
  SnapshotChainWriter chain(prefix, policy);
  ArmstrongBuildOptions vopts = copts;
  vopts.checkpoint.chain = &chain;  // thresholds 0: checkpoint per Extend
  ArmstrongSession victim(scheme, fds, {}, &oracle, vopts);

  std::size_t crash_at = 1 + seed % (universe.size() - 1);
  FaultSite site = kCrashSites[seed % 4];
  for (std::size_t i = 0; i < universe.size(); ++i) {
    ASSERT_TRUE(control.Extend({universe[i]}).ok());
    if (i < crash_at) {
      ASSERT_TRUE(victim.Extend({universe[i]}).ok());
    } else if (i == crash_at) {
      FaultInjector fi(seed);
      fi.Arm(site, 0);
      ScopedFaultInjector scope(&fi);
      Status st = victim.Extend({universe[i]});
      ASSERT_EQ(fi.fired(site), 1u);
      ASSERT_FALSE(st.ok()) << "a crashed checkpoint must fail the Extend";
    }
    // i > crash_at: the victim process is dead; only the control runs.
  }

  // Recovery: load the chain, decode the tip's classification record.
  Result<RestoredChain> loaded = LoadSnapshotChain(scheme, prefix);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  Result<SessionClassificationRecord> record =
      DeserializeSessionRecord(*scheme, loaded->restored.aux);
  ASSERT_TRUE(record.ok()) << record.status();
  // The durable tip is the last checkpoint before the crash — or, when
  // the crash hit just after the rename landed, the crashed save itself.
  ASSERT_GE(record->universe.size(), crash_at);
  ASSERT_LE(record->universe.size(), crash_at + 1);
  for (std::size_t i = 0; i < record->universe.size(); ++i) {
    EXPECT_EQ(record->universe[i], universe[i])
        << "persisted classification is not an extend-order prefix";
  }

  // Warm start from the record (zero oracle calls for the persisted
  // prefix), adopt the chain, and re-extend the full universe: known
  // members are no-ops, the lost tail is re-classified.
  SnapshotChainWriter chain2(prefix, policy);
  chain2.Adopt(*loaded);
  ArmstrongBuildOptions wopts = copts;
  wopts.checkpoint.chain = &chain2;
  ArmstrongSession warm(std::move(loaded->restored.ws), record.MoveValue(),
                        fds, {}, &oracle, wopts);
  for (const Dependency& dep : universe) {
    ASSERT_TRUE(warm.Extend({dep}).ok()) << dep.ToString(*scheme);
  }

  ASSERT_EQ(warm.universe().size(), control.universe().size());
  EXPECT_EQ(warm.expected(), control.expected());
  EXPECT_FALSE(
      ObeysExactly(warm.Snapshot(), warm.universe(), warm.expected())
          .has_value())
      << "warm-reloaded session disagrees with the fresh sweep re-check";

  // And the recovered session's own checkpoints are durable in turn.
  Result<RestoredChain> final_chain = LoadSnapshotChain(scheme, prefix);
  ASSERT_TRUE(final_chain.ok()) << final_chain.status();
  Result<SessionClassificationRecord> final_record =
      DeserializeSessionRecord(*scheme, final_chain->restored.aux);
  ASSERT_TRUE(final_record.ok()) << final_record.status();
  EXPECT_EQ(final_record->universe.size(), warm.universe().size());
  std::vector<Dependency> persisted_expected;
  for (std::size_t i = 0; i < final_record->universe.size(); ++i) {
    if (final_record->expected[i]) {
      persisted_expected.push_back(final_record->universe[i]);
    }
  }
  EXPECT_EQ(persisted_expected, warm.expected());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotCrashPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace ccfp
