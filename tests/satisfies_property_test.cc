// Differential property tests for the interned model-checking core:
// random databases and dependency universes, asserting that the interned
// engine (core/interned.h) agrees with the legacy Value-hashing engine on
// every Satisfies / FindViolation / ObeysExactly query, and that reported
// violation witnesses are genuine (re-checkable against the database).
#include <algorithm>
#include <gtest/gtest.h>

#include "core/satisfies.h"
#include "util/rng.h"

namespace ccfp {
namespace {

constexpr SatisfiesOptions kInterned{SatisfiesEngine::kInterned};
constexpr SatisfiesOptions kLegacy{SatisfiesEngine::kLegacy};

SchemePtr RandomScheme(SplitMix64& rng) {
  std::size_t relations = 2 + rng.Below(2);
  std::vector<std::pair<std::string, std::vector<std::string>>> rels;
  for (std::size_t r = 0; r < relations; ++r) {
    std::size_t arity = 2 + rng.Below(3);
    std::vector<std::string> attrs;
    for (std::size_t a = 0; a < arity; ++a) {
      attrs.push_back(std::string(1, static_cast<char>('A' + a)));
    }
    rels.emplace_back("R" + std::to_string(r), std::move(attrs));
  }
  return MakeScheme(std::move(rels));
}

// Random database mixing ints, labeled nulls, and strings, with heavy
// value reuse so FDs/INDs actually have a chance to hold.
Database RandomDatabase(const SchemePtr& scheme, SplitMix64& rng) {
  Database db(scheme);
  for (RelId rel = 0; rel < scheme->size(); ++rel) {
    std::size_t arity = scheme->relation(rel).arity();
    std::size_t tuples = rng.Below(6);
    for (std::size_t i = 0; i < tuples; ++i) {
      Tuple t;
      for (std::size_t a = 0; a < arity; ++a) {
        switch (rng.Below(4)) {
          case 0:
            t.push_back(Value::Null(1 + rng.Below(3)));
            break;
          case 1:
            t.push_back(Value::Str(rng.Chance(1, 2) ? "x" : "y"));
            break;
          default:
            t.push_back(Value::Int(static_cast<std::int64_t>(rng.Below(3))));
        }
      }
      db.Insert(rel, std::move(t));
    }
  }
  return db;
}

std::vector<AttrId> RandomAttrs(SplitMix64& rng, std::size_t arity,
                                std::size_t max_len, bool allow_empty) {
  std::vector<AttrId> all(arity);
  for (AttrId a = 0; a < arity; ++a) all[a] = a;
  for (std::size_t j = arity; j > 1; --j) {
    std::swap(all[j - 1], all[rng.Below(j)]);
  }
  std::size_t lo = allow_empty ? 0 : 1;
  std::size_t len = lo + rng.Below(std::min(max_len, arity) - lo + 1);
  return std::vector<AttrId>(all.begin(), all.begin() + len);
}

// A batch of random dependencies of every kind, filtered through Validate.
// Duplicate-free: ObeysExactly treats the expected set as a set, so a
// universe with repeats would make single-element perturbations invisible.
std::vector<Dependency> RandomUniverse(const SchemePtr& scheme,
                                       SplitMix64& rng, std::size_t count) {
  std::vector<Dependency> out;
  std::size_t attempts = 0;
  while (out.size() < count && ++attempts < count * 20) {
    RelId rel = static_cast<RelId>(rng.Below(scheme->size()));
    std::size_t arity = scheme->relation(rel).arity();
    Dependency dep = Dependency(Fd{0, {}, {0}});
    switch (rng.Below(5)) {
      case 0:
        dep = Dependency(Fd{rel, RandomAttrs(rng, arity, 2, true),
                            RandomAttrs(rng, arity, 2, false)});
        break;
      case 1: {
        RelId rhs_rel = static_cast<RelId>(rng.Below(scheme->size()));
        std::size_t rhs_arity = scheme->relation(rhs_rel).arity();
        std::size_t width = 1 + rng.Below(2);
        std::vector<AttrId> lhs = RandomAttrs(rng, arity, width, false);
        std::vector<AttrId> rhs = RandomAttrs(rng, rhs_arity, width, false);
        std::size_t w = std::min(lhs.size(), rhs.size());
        lhs.resize(w);
        rhs.resize(w);
        dep = Dependency(Ind{rel, std::move(lhs), rhs_rel, std::move(rhs)});
        break;
      }
      case 2: {
        std::size_t w = 1 + rng.Below(2);
        std::vector<AttrId> lhs = RandomAttrs(rng, arity, w, false);
        std::vector<AttrId> rhs = RandomAttrs(rng, arity, w, false);
        std::size_t n = std::min(lhs.size(), rhs.size());
        lhs.resize(n);
        rhs.resize(n);
        dep = Dependency(Rd{rel, std::move(lhs), std::move(rhs)});
        break;
      }
      case 3: {
        std::vector<AttrId> x = RandomAttrs(rng, arity, 2, true);
        std::vector<AttrId> y, z;
        for (AttrId a = 0; a < arity; ++a) {
          if (std::find(x.begin(), x.end(), a) != x.end()) continue;
          if (rng.Chance(1, 2)) {
            y.push_back(a);
          } else {
            z.push_back(a);
          }
        }
        std::sort(x.begin(), x.end());
        dep = Dependency(Emvd{rel, std::move(x), std::move(y),
                              std::move(z)});
        break;
      }
      default: {
        std::vector<AttrId> x = RandomAttrs(rng, arity, 2, true);
        std::vector<AttrId> y = RandomAttrs(rng, arity, 2, false);
        std::sort(x.begin(), x.end());
        std::sort(y.begin(), y.end());
        dep = Dependency(Mvd{rel, std::move(x), std::move(y)});
        break;
      }
    }
    if (!Validate(*scheme, dep).ok()) continue;
    if (std::find(out.begin(), out.end(), dep) != out.end()) continue;
    out.push_back(std::move(dep));
  }
  return out;
}

class SatisfiesPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SatisfiesPropertyTest, EnginesAgreeOnSatisfies) {
  SplitMix64 rng(GetParam());
  SchemePtr scheme = RandomScheme(rng);
  Database db = RandomDatabase(scheme, rng);
  for (const Dependency& dep : RandomUniverse(scheme, rng, 24)) {
    EXPECT_EQ(Satisfies(db, dep, kInterned), Satisfies(db, dep, kLegacy))
        << dep.ToString(*scheme) << "\n" << db.ToString();
  }
}

TEST_P(SatisfiesPropertyTest, EnginesAgreeOnFindViolation) {
  SplitMix64 rng(GetParam() * 1000003);
  SchemePtr scheme = RandomScheme(rng);
  Database db = RandomDatabase(scheme, rng);
  for (const Dependency& dep : RandomUniverse(scheme, rng, 24)) {
    std::optional<Violation> a = FindViolation(db, dep, kInterned);
    std::optional<Violation> b = FindViolation(db, dep, kLegacy);
    ASSERT_EQ(a.has_value(), b.has_value())
        << dep.ToString(*scheme) << "\n" << db.ToString();
    if (!a.has_value()) continue;
    EXPECT_EQ(a->kind, dep.kind());
    EXPECT_EQ(a->rel, b->rel);
    // Witnesses of every kind scan front-to-back in both engines, so the
    // reported indices must be identical, not merely both valid.
    EXPECT_EQ(a->tuple_indices, b->tuple_indices) << dep.ToString(*scheme);
    EXPECT_EQ(a->description, b->description);
  }
}

// Violation witnesses must be genuine: re-checkable against the database
// by hand, not just plausible-looking indices.
TEST_P(SatisfiesPropertyTest, ViolationWitnessesAreGenuine) {
  SplitMix64 rng(GetParam() * 77 + 9);
  SchemePtr scheme = RandomScheme(rng);
  Database db = RandomDatabase(scheme, rng);
  for (const Dependency& dep : RandomUniverse(scheme, rng, 24)) {
    std::optional<Violation> v = FindViolation(db, dep);
    if (!v.has_value()) continue;
    const Relation& r = db.relation(v->rel);
    ASSERT_EQ(v->tuple_indices.size(), v->tuples.size());
    for (std::size_t i = 0; i < v->tuple_indices.size(); ++i) {
      ASSERT_LT(v->tuple_indices[i], r.size());
      EXPECT_EQ(r.tuples()[v->tuple_indices[i]], v->tuples[i])
          << "witness tuple does not match the database";
    }
    switch (dep.kind()) {
      case DependencyKind::kFd: {
        ASSERT_EQ(v->tuples.size(), 2u);
        EXPECT_EQ(ProjectTuple(v->tuples[0], dep.fd().lhs),
                  ProjectTuple(v->tuples[1], dep.fd().lhs));
        EXPECT_NE(ProjectTuple(v->tuples[0], dep.fd().rhs),
                  ProjectTuple(v->tuples[1], dep.fd().rhs));
        break;
      }
      case DependencyKind::kInd: {
        ASSERT_EQ(v->tuples.size(), 1u);
        auto rhs_proj =
            db.relation(dep.ind().rhs_rel).ProjectSet(dep.ind().rhs);
        EXPECT_EQ(rhs_proj.count(ProjectTuple(v->tuples[0], dep.ind().lhs)),
                  0u);
        break;
      }
      case DependencyKind::kRd: {
        ASSERT_EQ(v->tuples.size(), 1u);
        EXPECT_NE(ProjectTuple(v->tuples[0], dep.rd().lhs),
                  ProjectTuple(v->tuples[0], dep.rd().rhs));
        break;
      }
      case DependencyKind::kEmvd:
      case DependencyKind::kMvd: {
        // Two same-X-group tuples whose (XY, XZ) combination no tuple of
        // the relation witnesses.
        const std::vector<AttrId>& x =
            dep.is_emvd() ? dep.emvd().x : dep.mvd().x;
        const std::vector<AttrId>& y =
            dep.is_emvd() ? dep.emvd().y : dep.mvd().y;
        std::vector<AttrId> z = dep.is_emvd()
                                    ? dep.emvd().z
                                    : MvdComplement(*scheme, dep.mvd());
        ASSERT_EQ(v->tuples.size(), 2u) << dep.ToString(*scheme);
        EXPECT_EQ(ProjectTuple(v->tuples[0], x),
                  ProjectTuple(v->tuples[1], x));
        std::vector<AttrId> xy = AppendDistinctAttrs(x, y);
        std::vector<AttrId> xz = AppendDistinctAttrs(x, z);
        Tuple need = ProjectTuple(v->tuples[0], xy);
        Tuple xz_part = ProjectTuple(v->tuples[1], xz);
        need.insert(need.end(), xz_part.begin(), xz_part.end());
        bool witnessed = false;
        for (const Tuple& t : r.tuples()) {
          Tuple combo = ProjectTuple(t, xy);
          Tuple t_xz = ProjectTuple(t, xz);
          combo.insert(combo.end(), t_xz.begin(), t_xz.end());
          if (combo == need) {
            witnessed = true;
            break;
          }
        }
        EXPECT_FALSE(witnessed)
            << "the reported (XY, XZ) combination is present, so the "
               "witness pair does not violate " << dep.ToString(*scheme);
        break;
      }
    }
  }
}

TEST_P(SatisfiesPropertyTest, EnginesAgreeOnObeysExactly) {
  SplitMix64 rng(GetParam() * 31 + 1);
  SchemePtr scheme = RandomScheme(rng);
  Database db = RandomDatabase(scheme, rng);
  std::vector<Dependency> universe = RandomUniverse(scheme, rng, 16);
  std::vector<Dependency> satisfied = SatisfiedSubset(db, universe);
  EXPECT_EQ(SatisfiedSubset(db, universe, kLegacy), satisfied);
  // Exactly the satisfied subset: both engines must accept.
  EXPECT_FALSE(ObeysExactly(db, universe, satisfied, kInterned).has_value());
  EXPECT_FALSE(ObeysExactly(db, universe, satisfied, kLegacy).has_value());
  // Any perturbation of the expected set: both engines must reject, with
  // the same diagnostic.
  if (!universe.empty()) {
    std::vector<Dependency> wrong = satisfied;
    const Dependency& flip = universe[rng.Below(universe.size())];
    auto it = std::find(wrong.begin(), wrong.end(), flip);
    if (it != wrong.end()) {
      wrong.erase(it);
    } else {
      wrong.push_back(flip);
    }
    std::optional<std::string> a = ObeysExactly(db, universe, wrong,
                                                kInterned);
    std::optional<std::string> b = ObeysExactly(db, universe, wrong,
                                                kLegacy);
    EXPECT_TRUE(a.has_value());
    EXPECT_TRUE(b.has_value());
    if (a.has_value() && b.has_value()) EXPECT_EQ(*a, *b);
  }
}

TEST_P(SatisfiesPropertyTest, FindFirstViolationReportsDepIndex) {
  SplitMix64 rng(GetParam() * 13 + 5);
  SchemePtr scheme = RandomScheme(rng);
  Database db = RandomDatabase(scheme, rng);
  std::vector<Dependency> universe = RandomUniverse(scheme, rng, 12);
  std::optional<Violation> first = FindFirstViolation(db, universe);
  std::optional<Violation> first_legacy =
      FindFirstViolation(db, universe, kLegacy);
  ASSERT_EQ(first.has_value(), first_legacy.has_value());
  if (!first.has_value()) {
    EXPECT_TRUE(SatisfiesAll(db, universe));
    return;
  }
  EXPECT_EQ(first->dep_index, first_legacy->dep_index);
  // Everything before the reported index holds; the reported one fails.
  for (std::size_t i = 0; i < first->dep_index; ++i) {
    EXPECT_TRUE(Satisfies(db, universe[i], kInterned));
  }
  EXPECT_FALSE(Satisfies(db, universe[first->dep_index], kInterned));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatisfiesPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 61));

}  // namespace
}  // namespace ccfp
