#include <algorithm>

#include <gtest/gtest.h>

#include "ind/implication.h"
#include "ind/proof.h"
#include "ind/rules.h"
#include "ind/special.h"

namespace ccfp {
namespace {

class IndRulesTest : public ::testing::Test {
 protected:
  SchemePtr scheme_ = MakeScheme(
      {{"R", {"A", "B", "C"}}, {"S", {"D", "E", "F"}}, {"T", {"G", "H"}}});
};

TEST_F(IndRulesTest, ReflexivityBuildsTrivialInd) {
  Result<Ind> ind = IndReflexivity(*scheme_, 0, {1, 0});
  ASSERT_TRUE(ind.ok());
  EXPECT_TRUE(IsTrivial(*ind));
  EXPECT_FALSE(IndReflexivity(*scheme_, 0, {0, 0}).ok());
}

TEST_F(IndRulesTest, ProjectPermuteSelectsPositions) {
  Ind base = MakeInd(*scheme_, "R", {"A", "B", "C"}, "S", {"D", "E", "F"});
  Result<Ind> projected = IndProjectPermute(*scheme_, base, {2, 0});
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(*projected, MakeInd(*scheme_, "R", {"C", "A"}, "S", {"F", "D"}));
}

TEST_F(IndRulesTest, ProjectPermuteRejectsBadPositions) {
  Ind base = MakeInd(*scheme_, "R", {"A", "B"}, "S", {"D", "E"});
  EXPECT_FALSE(IndProjectPermute(*scheme_, base, {0, 0}).ok());
  EXPECT_FALSE(IndProjectPermute(*scheme_, base, {2}).ok());
}

TEST_F(IndRulesTest, TransitivityComposesOnExactMiddle) {
  Ind a = MakeInd(*scheme_, "R", {"A"}, "S", {"D"});
  Ind b = MakeInd(*scheme_, "S", {"D"}, "T", {"G"});
  Result<Ind> composed = IndTransitivity(*scheme_, a, b);
  ASSERT_TRUE(composed.ok());
  EXPECT_EQ(*composed, MakeInd(*scheme_, "R", {"A"}, "T", {"G"}));

  // Mismatched middle (different attribute order) must be rejected.
  Ind b2 = MakeInd(*scheme_, "S", {"E"}, "T", {"G"});
  EXPECT_FALSE(IndTransitivity(*scheme_, a, b2).ok());
}

TEST_F(IndRulesTest, IsProjectionPermutationOf) {
  Ind base = MakeInd(*scheme_, "R", {"A", "B", "C"}, "S", {"D", "E", "F"});
  EXPECT_TRUE(IsProjectionPermutationOf(
      MakeInd(*scheme_, "R", {"B"}, "S", {"E"}), base));
  EXPECT_TRUE(IsProjectionPermutationOf(
      MakeInd(*scheme_, "R", {"C", "A"}, "S", {"F", "D"}), base));
  EXPECT_FALSE(IsProjectionPermutationOf(
      MakeInd(*scheme_, "R", {"A"}, "S", {"E"}), base));
  EXPECT_FALSE(IsProjectionPermutationOf(
      MakeInd(*scheme_, "R", {"A"}, "T", {"G"}), base));
}

// --- The decision procedure ------------------------------------------------

class IndImplicationTest : public ::testing::Test {
 protected:
  SchemePtr scheme_ = MakeScheme(
      {{"R", {"A", "B", "C"}}, {"S", {"D", "E", "F"}}, {"T", {"G", "H"}}});
};

TEST_F(IndImplicationTest, TrivialTargetIsAlwaysImplied) {
  IndImplication engine(scheme_, {});
  Ind trivial = MakeInd(*scheme_, "R", {"A", "C"}, "R", {"A", "C"});
  Result<IndDecision> decision = engine.Decide(trivial);
  ASSERT_TRUE(decision.ok());
  EXPECT_TRUE(decision->implied);
  EXPECT_EQ(decision->chain_length, 1u);
}

TEST_F(IndImplicationTest, HypothesisIsImplied) {
  Ind hyp = MakeInd(*scheme_, "R", {"A", "B"}, "S", {"D", "E"});
  IndImplication engine(scheme_, {hyp});
  EXPECT_TRUE(*engine.Implies(hyp));
}

TEST_F(IndImplicationTest, ProjectionOfHypothesisIsImplied) {
  Ind hyp = MakeInd(*scheme_, "R", {"A", "B", "C"}, "S", {"D", "E", "F"});
  IndImplication engine(scheme_, {hyp});
  EXPECT_TRUE(*engine.Implies(MakeInd(*scheme_, "R", {"B"}, "S", {"E"})));
  EXPECT_TRUE(*engine.Implies(
      MakeInd(*scheme_, "R", {"C", "A"}, "S", {"F", "D"})));
  EXPECT_FALSE(*engine.Implies(MakeInd(*scheme_, "R", {"A"}, "S", {"E"})));
}

TEST_F(IndImplicationTest, TransitiveChainIsImplied) {
  std::vector<Ind> sigma = {
      MakeInd(*scheme_, "R", {"A", "B"}, "S", {"D", "E"}),
      MakeInd(*scheme_, "S", {"D"}, "T", {"G"}),
  };
  IndImplication engine(scheme_, sigma);
  EXPECT_TRUE(*engine.Implies(MakeInd(*scheme_, "R", {"A"}, "T", {"G"})));
  EXPECT_FALSE(*engine.Implies(MakeInd(*scheme_, "R", {"B"}, "T", {"G"})));
}

TEST_F(IndImplicationTest, DirectionMatters) {
  std::vector<Ind> sigma = {MakeInd(*scheme_, "R", {"A"}, "S", {"D"})};
  IndImplication engine(scheme_, sigma);
  EXPECT_FALSE(*engine.Implies(MakeInd(*scheme_, "S", {"D"}, "R", {"A"})));
}

TEST_F(IndImplicationTest, ManagerEmployeeExample) {
  // The paper's running example: every manager is an employee of the
  // department they manage.
  SchemePtr scheme = MakeScheme(
      {{"MGR", {"NAME", "DEPT"}}, {"EMP", {"NAME", "DEPT", "SAL"}}});
  std::vector<Ind> sigma = {
      MakeInd(*scheme, "MGR", {"NAME", "DEPT"}, "EMP", {"NAME", "DEPT"})};
  IndImplication engine(scheme, sigma);
  // Every manager name is an employee name (projection).
  EXPECT_TRUE(
      *engine.Implies(MakeInd(*scheme, "MGR", {"NAME"}, "EMP", {"NAME"})));
  // But manager names need not be departments.
  EXPECT_FALSE(
      *engine.Implies(MakeInd(*scheme, "MGR", {"NAME"}, "EMP", {"DEPT"})));
}

TEST_F(IndImplicationTest, ProofExtractionChecks) {
  std::vector<Ind> sigma = {
      MakeInd(*scheme_, "R", {"A", "B"}, "S", {"D", "E"}),
      MakeInd(*scheme_, "S", {"D", "E"}, "T", {"G", "H"}),
  };
  IndImplication engine(scheme_, sigma);
  IndDecisionOptions options;
  options.want_proof = true;
  Result<IndDecision> decision =
      engine.Decide(MakeInd(*scheme_, "R", {"B"}, "T", {"H"}), options);
  ASSERT_TRUE(decision.ok());
  ASSERT_TRUE(decision->implied);
  ASSERT_TRUE(decision->proof.has_value());
  EXPECT_TRUE(decision->proof->Check().ok()) << decision->proof->Check();
  EXPECT_EQ(decision->proof->conclusion(),
            MakeInd(*scheme_, "R", {"B"}, "T", {"H"}));
  EXPECT_EQ(decision->chain_length, 3u);
}

TEST_F(IndImplicationTest, ProofForTrivialTargetIsReflexivity) {
  IndImplication engine(scheme_, {});
  IndDecisionOptions options;
  options.want_proof = true;
  Result<IndDecision> decision =
      engine.Decide(MakeInd(*scheme_, "R", {"B", "A"}, "R", {"B", "A"}),
                    options);
  ASSERT_TRUE(decision.ok());
  ASSERT_TRUE(decision->proof.has_value());
  ASSERT_EQ(decision->proof->steps().size(), 1u);
  EXPECT_EQ(decision->proof->steps()[0].rule, IndRule::kReflexivity);
}

TEST_F(IndImplicationTest, BudgetExhaustionIsReported) {
  // Permutation cycle: reaching the goal needs many steps; a budget of 2
  // expressions must trip.
  SchemePtr scheme = MakeScheme({{"R", {"A", "B", "C", "D", "E"}}});
  Ind rot = MakeInd(*scheme, "R", {"A", "B", "C", "D", "E"}, "R",
                    {"B", "C", "D", "E", "A"});
  IndImplication engine(scheme, {rot});
  IndDecisionOptions options;
  options.max_expressions = 2;
  Result<IndDecision> decision = engine.Decide(
      MakeInd(*scheme, "R", {"A", "B", "C", "D", "E"}, "R",
              {"E", "A", "B", "C", "D"}),
      options);
  EXPECT_FALSE(decision.ok());
  EXPECT_EQ(decision.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(IndImplicationTest, AllImpliedIndsMatchesPointQueries) {
  std::vector<Ind> sigma = {
      MakeInd(*scheme_, "R", {"A", "B"}, "S", {"D", "E"}),
      MakeInd(*scheme_, "S", {"D"}, "T", {"G"}),
  };
  IndImplication engine(scheme_, sigma);
  std::vector<Ind> implied = engine.AllImpliedInds(2);
  // Spot-check membership.
  auto contains = [&](const Ind& ind) {
    for (const Ind& i : implied) {
      if (i == ind) return true;
    }
    return false;
  };
  EXPECT_TRUE(contains(MakeInd(*scheme_, "R", {"A"}, "T", {"G"})));
  EXPECT_TRUE(contains(MakeInd(*scheme_, "R", {"B", "A"}, "S", {"E", "D"})));
  EXPECT_FALSE(contains(MakeInd(*scheme_, "T", {"G"}, "S", {"D"})));
  // Every member must pass a point query; every width-1/2 point query that
  // succeeds must be a member.
  for (const Ind& ind : implied) {
    EXPECT_TRUE(*engine.Implies(ind)) << Dependency(ind).ToString(*scheme_);
  }
}

// --- Special cases -----------------------------------------------------

TEST(UnaryIndGraphTest, ReachabilityMatchesGeneralEngine) {
  SchemePtr scheme = MakeScheme({{"R", {"A", "B"}}, {"S", {"C", "D"}}});
  std::vector<Ind> sigma = {
      MakeInd(*scheme, "R", {"A"}, "S", {"C"}),
      MakeInd(*scheme, "S", {"C"}, "S", {"D"}),
  };
  UnaryIndGraph graph(scheme, sigma);
  IndImplication general(scheme, sigma);
  for (const Ind& target :
       {MakeInd(*scheme, "R", {"A"}, "S", {"D"}),
        MakeInd(*scheme, "S", {"D"}, "R", {"A"}),
        MakeInd(*scheme, "R", {"A"}, "R", {"B"}),
        MakeInd(*scheme, "R", {"B"}, "R", {"B"})}) {
    EXPECT_EQ(graph.Implies(target), *general.Implies(target))
        << Dependency(target).ToString(*scheme);
  }
}

TEST(UnaryIndGraphTest, AllImpliedMatchesGeneralEnumeration) {
  SchemePtr scheme = MakeScheme({{"R", {"A", "B"}}, {"S", {"C"}}});
  std::vector<Ind> sigma = {
      MakeInd(*scheme, "R", {"A"}, "R", {"B"}),
      MakeInd(*scheme, "R", {"B"}, "S", {"C"}),
  };
  UnaryIndGraph graph(scheme, sigma);
  IndImplication general(scheme, sigma);
  std::vector<Ind> from_graph = graph.AllImpliedUnaryInds();
  std::vector<Ind> from_general = general.AllImpliedInds(1);
  auto sorter = [](std::vector<Ind>& v) {
    std::sort(v.begin(), v.end());
  };
  sorter(from_graph);
  sorter(from_general);
  EXPECT_EQ(from_graph, from_general);
}

TEST(TypedIndTest, DetectsTypedness) {
  SchemePtr scheme = MakeScheme(
      {{"MGR", {"NAME", "DEPT"}}, {"EMP", {"NAME", "DEPT"}}});
  EXPECT_TRUE(IsTypedInd(
      *scheme, MakeInd(*scheme, "MGR", {"NAME", "DEPT"}, "EMP",
                       {"NAME", "DEPT"})));
  EXPECT_FALSE(IsTypedInd(
      *scheme,
      MakeInd(*scheme, "MGR", {"NAME"}, "EMP", {"DEPT"})));
}

TEST(TypedIndTest, TypedImplicationMatchesGeneral) {
  SchemePtr scheme = MakeScheme({{"R", {"A", "B"}},
                                 {"S", {"A", "B"}},
                                 {"T", {"A", "B"}}});
  std::vector<Ind> sigma = {
      MakeInd(*scheme, "R", {"A", "B"}, "S", {"A", "B"}),
      MakeInd(*scheme, "S", {"A"}, "T", {"A"}),
  };
  IndImplication general(scheme, sigma);
  for (const Ind& target :
       {MakeInd(*scheme, "R", {"A"}, "T", {"A"}),
        MakeInd(*scheme, "R", {"B"}, "T", {"B"}),
        MakeInd(*scheme, "R", {"A", "B"}, "T", {"A", "B"}),
        MakeInd(*scheme, "T", {"A"}, "R", {"A"})}) {
    Result<bool> typed = TypedIndImplies(*scheme, sigma, target);
    ASSERT_TRUE(typed.ok()) << typed.status();
    EXPECT_EQ(*typed, *general.Implies(target))
        << Dependency(target).ToString(*scheme);
  }
}

TEST(TypedIndTest, RejectsNonTypedInputs) {
  SchemePtr scheme = MakeScheme({{"R", {"A", "B"}}, {"S", {"A", "B"}}});
  Ind untyped = MakeInd(*scheme, "R", {"A"}, "S", {"B"});
  Ind typed = MakeInd(*scheme, "R", {"A"}, "S", {"A"});
  EXPECT_FALSE(TypedIndImplies(*scheme, {typed}, untyped).ok());
  EXPECT_FALSE(TypedIndImplies(*scheme, {untyped}, typed).ok());
}

TEST(ExpressionSpaceBoundTest, CountsPermutations) {
  SchemePtr scheme = MakeScheme({{"R", {"A", "B", "C"}}, {"S", {"D", "E"}}});
  // width 1: 3 + 2; width 2: 3*2 + 2*1 = 8.
  EXPECT_EQ(ExpressionSpaceBound(*scheme, 1), 5u);
  EXPECT_EQ(ExpressionSpaceBound(*scheme, 2), 8u);
  EXPECT_EQ(ExpressionSpaceBound(*scheme, 3), 6u);
}

}  // namespace
}  // namespace ccfp
