// Theorem 3.3: the reduction from LBA acceptance to IND implication.
#include <gtest/gtest.h>

#include "ind/implication.h"
#include "lba/lba.h"
#include "lba/reduction.h"

namespace ccfp {
namespace {

// Machine accepting inputs consisting solely of 'a's (length >= 2):
// sweep right erasing a's; nondeterministically guess the last cell and
// turn around; sweep left; halt at the left edge on an all-blank tape.
struct AllAsMachine {
  LbaMachine machine;
  std::uint32_t a = 0;

  AllAsMachine() {
    std::uint32_t s = machine.AddState("s");
    std::uint32_t r = machine.AddState("r");
    std::uint32_t h = machine.AddState("h");
    machine.SetStartState(s);
    machine.SetHaltState(h);
    a = machine.AddTapeSymbol("a");
    std::uint32_t blank = machine.blank();
    // Erase and move right.
    machine.AddTransition(s, a, s, blank, HeadMove::kRight);
    // Guess the last cell: erase and turn around.
    machine.AddTransition(s, a, r, blank, HeadMove::kLeft);
    // Return left over blanks.
    machine.AddTransition(r, blank, r, blank, HeadMove::kLeft);
    // At the left edge (cannot move left any more): become h. A stay-move
    // works at every position; only the leftmost one yields h B^n.
    machine.AddTransition(r, blank, h, blank, HeadMove::kStay);
  }
};

// Machine accepting a^n for even n >= 2: like AllAsMachine but toggling a
// parity state, turning around only on odd-indexed (1-based even count)
// erasures.
struct EvenAsMachine {
  LbaMachine machine;
  std::uint32_t a = 0;

  EvenAsMachine() {
    std::uint32_t s0 = machine.AddState("s0");  // even count so far
    std::uint32_t s1 = machine.AddState("s1");  // odd count so far
    std::uint32_t r = machine.AddState("r");
    std::uint32_t h = machine.AddState("h");
    machine.SetStartState(s0);
    machine.SetHaltState(h);
    a = machine.AddTapeSymbol("a");
    std::uint32_t blank = machine.blank();
    machine.AddTransition(s0, a, s1, blank, HeadMove::kRight);
    machine.AddTransition(s1, a, s0, blank, HeadMove::kRight);
    // Turn around when this erasure makes the count even.
    machine.AddTransition(s1, a, r, blank, HeadMove::kLeft);
    machine.AddTransition(r, blank, r, blank, HeadMove::kLeft);
    machine.AddTransition(r, blank, h, blank, HeadMove::kStay);
  }
};

TEST(LbaTest, AllAsMachineAcceptsAllAs) {
  AllAsMachine m;
  for (std::size_t n : {2u, 3u, 4u, 6u}) {
    std::vector<std::uint32_t> input(n, m.a);
    Result<LbaRunResult> result = LbaAccepts(m.machine, input);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_TRUE(result->accepts) << "n = " << n;
    ASSERT_FALSE(result->accepting_run.empty());
    EXPECT_EQ(result->accepting_run.front(),
              m.machine.InitialConfiguration(input));
    EXPECT_EQ(result->accepting_run.back(),
              m.machine.FinalConfiguration(n));
  }
}

TEST(LbaTest, AllAsMachineRejectsBlankInInput) {
  AllAsMachine m;
  std::vector<std::uint32_t> input = {m.a, m.machine.blank(), m.a};
  Result<LbaRunResult> result = LbaAccepts(m.machine, input);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->accepts);
}

TEST(LbaTest, EvenAsMachineChecksParity) {
  EvenAsMachine m;
  for (std::size_t n : {2u, 3u, 4u, 5u, 6u}) {
    std::vector<std::uint32_t> input(n, m.a);
    Result<LbaRunResult> result = LbaAccepts(m.machine, input);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->accepts, n % 2 == 0) << "n = " << n;
  }
}

TEST(LbaTest, AcceptingRunStepsAreWindowRewrites) {
  AllAsMachine m;
  std::vector<std::uint32_t> input(3, m.a);
  Result<LbaRunResult> result = LbaAccepts(m.machine, input);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->accepts);
  const auto& run = result->accepting_run;
  for (std::size_t i = 0; i + 1 < run.size(); ++i) {
    // Consecutive configurations differ within a window of 3 positions.
    const auto& from = run[i];
    const auto& to = run[i + 1];
    ASSERT_EQ(from.size(), to.size());
    std::size_t first_diff = from.size(), last_diff = 0;
    for (std::size_t p = 0; p < from.size(); ++p) {
      if (!(from[p] == to[p])) {
        first_diff = std::min(first_diff, p);
        last_diff = std::max(last_diff, p);
      }
    }
    ASSERT_LT(first_diff, from.size()) << "identical steps in run";
    EXPECT_LE(last_diff - first_diff, 2u);
  }
}

TEST(LbaTest, BudgetIsHonored) {
  AllAsMachine m;
  std::vector<std::uint32_t> input(6, m.a);
  LbaRunOptions options;
  options.max_configurations = 2;
  Result<LbaRunResult> result = LbaAccepts(m.machine, input, options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

// --- The reduction itself ---------------------------------------------

TEST(LbaReductionTest, SchemeShapeMatchesTheProof) {
  AllAsMachine m;
  std::vector<std::uint32_t> input(3, m.a);
  Result<LbaToIndReduction> red = BuildLbaToIndReduction(m.machine, input);
  ASSERT_TRUE(red.ok()) << red.status();
  // One relation over (K u Gamma) x {1..n+1} attributes.
  EXPECT_EQ(red->scheme->size(), 1u);
  EXPECT_EQ(red->scheme->relation(0).arity(),
            (m.machine.num_states() + m.machine.num_tape_symbols()) *
                (input.size() + 1));
  // One IND per (rewrite, window) pair.
  EXPECT_EQ(red->sigma.size(),
            m.machine.rewrites().size() * (input.size() - 1));
  // The target IND encodes initial <= final configuration.
  EXPECT_EQ(red->target.lhs.size(), input.size() + 1);
}

TEST(LbaReductionTest, RejectsTooShortInputs) {
  AllAsMachine m;
  EXPECT_FALSE(BuildLbaToIndReduction(m.machine, {m.a}).ok());
}

TEST(LbaReductionTest, AcceptanceMatchesImplicationAllAs) {
  AllAsMachine m;
  for (std::size_t n : {2u, 3u, 4u}) {
    std::vector<std::uint32_t> input(n, m.a);
    Result<LbaToIndReduction> red =
        BuildLbaToIndReduction(m.machine, input);
    ASSERT_TRUE(red.ok());
    IndImplication engine(red->scheme, red->sigma);
    Result<IndDecision> decision = engine.Decide(red->target);
    ASSERT_TRUE(decision.ok()) << decision.status();
    EXPECT_TRUE(decision->implied) << "n = " << n;
  }
  // Negative instance: blank inside the input.
  std::vector<std::uint32_t> bad = {m.a, m.machine.blank(), m.a};
  Result<LbaToIndReduction> red = BuildLbaToIndReduction(m.machine, bad);
  ASSERT_TRUE(red.ok());
  IndImplication engine(red->scheme, red->sigma);
  Result<IndDecision> decision = engine.Decide(red->target);
  ASSERT_TRUE(decision.ok());
  EXPECT_FALSE(decision->implied);
}

TEST(LbaReductionTest, AcceptanceMatchesImplicationParity) {
  EvenAsMachine m;
  for (std::size_t n : {2u, 3u, 4u, 5u}) {
    std::vector<std::uint32_t> input(n, m.a);
    Result<LbaRunResult> direct = LbaAccepts(m.machine, input);
    ASSERT_TRUE(direct.ok());
    Result<LbaToIndReduction> red =
        BuildLbaToIndReduction(m.machine, input);
    ASSERT_TRUE(red.ok());
    IndImplication engine(red->scheme, red->sigma);
    Result<IndDecision> decision = engine.Decide(red->target);
    ASSERT_TRUE(decision.ok()) << decision.status();
    EXPECT_EQ(decision->implied, direct->accepts) << "n = " << n;
  }
}

TEST(LbaReductionTest, ImplicationProofTracksAcceptingRun) {
  // Corollary 3.2's correspondence: the expression chain realizing the
  // implication has the same length as some accepting computation (every
  // chain step is one machine move).
  AllAsMachine m;
  std::vector<std::uint32_t> input(3, m.a);
  Result<LbaRunResult> direct = LbaAccepts(m.machine, input);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(direct->accepts);

  Result<LbaToIndReduction> red = BuildLbaToIndReduction(m.machine, input);
  ASSERT_TRUE(red.ok());
  IndImplication engine(red->scheme, red->sigma);
  IndDecisionOptions options;
  options.want_proof = true;
  Result<IndDecision> decision = engine.Decide(red->target, options);
  ASSERT_TRUE(decision.ok());
  ASSERT_TRUE(decision->implied);
  // BFS finds a *shortest* chain; the direct BFS over configurations also
  // finds a shortest run; they must agree in length.
  EXPECT_EQ(decision->chain_length, direct->accepting_run.size());
  ASSERT_TRUE(decision->proof.has_value());
  EXPECT_TRUE(decision->proof->Check().ok());
}

TEST(LbaReductionTest, ConfigurationExpressionRoundTrip) {
  AllAsMachine m;
  std::vector<std::uint32_t> input(3, m.a);
  Result<LbaToIndReduction> red = BuildLbaToIndReduction(m.machine, input);
  ASSERT_TRUE(red.ok());
  std::vector<LbaSymbol> config = m.machine.InitialConfiguration(input);
  std::vector<AttrId> expr = red->ConfigurationExpression(config);
  ASSERT_EQ(expr.size(), config.size());
  EXPECT_EQ(expr, red->target.lhs);
  // Attribute names encode symbol and position.
  const RelationScheme& rel = red->scheme->relation(0);
  EXPECT_EQ(rel.attr_name(expr[0]), "q:s@1");
  EXPECT_EQ(rel.attr_name(expr[1]), "t:a@2");
}

}  // namespace
}  // namespace ccfp
