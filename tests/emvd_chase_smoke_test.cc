// Perf smoke test (ctest -L smoke): the id-space EMVD chase must saturate
// a dense cross-product workload in well under a second. The legacy engine
// builds and hashes a heap projection Tuple per candidate pair; the
// workspace engine reads two partition group ids and packs them into one
// word, and its partitions only *extend* across rounds — a regression back
// to per-pair projection copies fails here fast.
#include <chrono>
#include <gtest/gtest.h>

#include "chase/emvd_chase.h"
#include "constructions/sagiv_walecka.h"
#include "core/satisfies.h"

namespace ccfp {
namespace {

/// R[X, Y, Z] with X ->> Y | Z and two X-groups of `side` distinct
/// Y-values and Z-values: the fixpoint is the full side x side grid per
/// group. All pair discovery runs through the cached partitions.
Database MakeGrid(const SchemePtr& scheme, int side) {
  Database db(scheme);
  for (int g = 0; g < 2; ++g) {
    for (int i = 0; i < side; ++i) {
      db.Insert(0, {Value::Int(g), Value::Int(i), Value::Int(i)});
    }
  }
  return db;
}

std::int64_t RunGridMs(const SchemePtr& scheme,
                       const std::vector<Emvd>& sigma, int side,
                       EmvdChaseEngine engine, std::uint64_t* added) {
  Database db = MakeGrid(scheme, side);
  EmvdChaseOptions options;
  options.max_tuples = 1 << 14;
  options.engine = engine;
  auto start = std::chrono::steady_clock::now();
  Result<std::uint64_t> result = EmvdChaseFixpoint(db, sigma, options);
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_TRUE(result.ok()) << result.status();
  if (result.ok()) *added = *result;
  EXPECT_TRUE(Satisfies(db, sigma[0]));
  return std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
      .count();
}

TEST(EmvdChaseSmokeTest, DenseCrossProductFinishesFast) {
  const int side = 20;
  SchemePtr scheme = MakeScheme({{"R", {"X", "Y", "Z"}}});
  std::vector<Emvd> sigma = {MakeEmvd(*scheme, "R", {"X"}, {"Y"}, {"Z"})};
  std::uint64_t ws_added = 0;
  std::int64_t ws_ms =
      RunGridMs(scheme, sigma, side, EmvdChaseEngine::kWorkspace, &ws_added);
  EXPECT_EQ(ws_added, 2u * side * side - 2u * side);
  // The absolute wall: three orders of magnitude of headroom in Release
  // (~5 ms), still comfortable under a sanitized parallel ctest run.
  EXPECT_LT(ws_ms, 1000)
      << "id-space EMVD chase regressed to per-pair projection copies";

  // The ratio guard (robust to machine load, which hits both engines
  // alike): the id-space engine is ~16x faster than the legacy engine on
  // this shape; demand a loose 2x so only a real representation
  // regression — not scheduler noise — can trip it.
  std::uint64_t legacy_added = 0;
  std::int64_t legacy_ms = RunGridMs(scheme, sigma, side,
                                     EmvdChaseEngine::kLegacy, &legacy_added);
  EXPECT_EQ(legacy_added, ws_added);
  EXPECT_LT(ws_ms, std::max<std::int64_t>(legacy_ms / 2, 1))
      << "workspace engine no faster than per-pair copies: ws " << ws_ms
      << " ms vs legacy " << legacy_ms << " ms";
}

TEST(EmvdChaseSmokeTest, WorkspacePartitionsExtendInsteadOfRebuilding) {
  // Drive the chase on a caller-owned workspace and read the substrate
  // counters: across rounds the X/XY/XZ partitions must be *extended*
  // over the delta, never invalidated (the EMVD chase is append-only).
  SagivWaleckaConstruction c = MakeSagivWalecka(2);
  InternedWorkspace ws(c.scheme);
  std::size_t arity = c.scheme->relation(0).arity();
  std::uint64_t next_null = 1;
  Tuple t1(arity), t2(arity);
  for (AttrId a = 0; a < arity; ++a) {
    t1[a] = Value::Null(next_null++);
    t2[a] = (a == 0) ? t1[a] : Value::Null(next_null++);
  }
  ws.AppendTuple(0, t1);
  ws.AppendTuple(0, t2);

  EmvdChaseOptions options;
  options.max_tuples = 2048;
  options.max_rounds = 6;
  auto start = std::chrono::steady_clock::now();
  Result<std::uint64_t> added =
      EmvdChaseFixpointOnWorkspace(ws, c.sigma, options);
  auto elapsed = std::chrono::steady_clock::now() - start;

  // Fixpoint or budget are both acceptable (Sagiv–Walecka cycles can
  // blow up); what matters here is the maintenance profile and the wall.
  if (!added.ok()) {
    EXPECT_EQ(added.status().code(), StatusCode::kResourceExhausted);
  }
  const InternedWorkspace::Stats& stats = ws.stats();
  EXPECT_EQ(stats.partitions_invalidated, 0u)
      << "append-only chase must never invalidate a partition";
  EXPECT_GT(stats.partitions_extended + stats.partitions_reused, 0u)
      << "later rounds must reuse round-0 partitions";
  // Each distinct (X / XY / XZ) column set is built exactly once.
  EXPECT_LE(stats.partitions_built, 3u * c.sigma.size());
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            1000);
}

}  // namespace
}  // namespace ccfp
