// Generalized INDs (Mitchell [Mi1], cited in Section 4): INDs with
// repeated attributes, and the paper's observation that RDs are a special
// case of them.
#include <gtest/gtest.h>

#include "core/gind.h"
#include "core/parser.h"
#include "core/satisfies.h"
#include "util/rng.h"

namespace ccfp {
namespace {

class GIndTest : public ::testing::Test {
 protected:
  SchemePtr scheme_ = MakeScheme({{"R", {"A", "B", "C"}}, {"S", {"D", "E"}}});
};

TEST_F(GIndTest, ValidatesRepetitionsButNotWidthMismatch) {
  GInd repeated{0, {0, 0}, 1, {0, 1}};
  EXPECT_TRUE(Validate(*scheme_, repeated).ok());
  GInd mismatch{0, {0}, 1, {0, 1}};
  EXPECT_FALSE(Validate(*scheme_, mismatch).ok());
  GInd empty{0, {}, 1, {}};
  EXPECT_FALSE(Validate(*scheme_, empty).ok());
}

TEST_F(GIndTest, SatisfactionWithRepeatedColumns) {
  // R[A, A] <= S[D, E]: every (a, a) diagonal pair must appear in S's
  // (D, E) projection.
  Database db = ParseDatabase(scheme_, "R(1, 9, 9)\nS(1, 1)").value();
  EXPECT_TRUE(Satisfies(db, GInd{0, {0, 0}, 1, {0, 1}}));
  Database bad = ParseDatabase(scheme_, "R(1, 9, 9)\nS(1, 2)").value();
  EXPECT_FALSE(Satisfies(bad, GInd{0, {0, 0}, 1, {0, 1}}));
}

TEST_F(GIndTest, PlainIndDetectionAndConversion) {
  GInd plain{0, {0, 1}, 1, {0, 1}};
  EXPECT_TRUE(IsPlainInd(plain));
  Result<Ind> ind = ToPlainInd(*scheme_, plain);
  ASSERT_TRUE(ind.ok());
  EXPECT_EQ(Dependency(*ind).ToString(*scheme_), "R[A, B] <= S[D, E]");

  GInd repeated{0, {0, 0}, 1, {0, 1}};
  EXPECT_FALSE(IsPlainInd(repeated));
  EXPECT_FALSE(ToPlainInd(*scheme_, repeated).ok());
}

TEST_F(GIndTest, RdEncodingMatchesRdSemanticsExactly) {
  // The Section 4 observation, verified by exhaustive small models: for
  // every database over R with values in {0,1} and up to 3 tuples,
  // d |= R[A = B] iff d |= RdAsGind(R[A = B]).
  Rd rd = MakeRd(*scheme_, "R", {"A"}, {"B"});
  GInd encoded = RdAsGind(rd);
  ASSERT_TRUE(Validate(*scheme_, encoded).ok());

  // Enumerate all subsets of the 2^3 = 8 tuple space of size <= 3.
  std::vector<Tuple> space;
  for (int code = 0; code < 8; ++code) {
    space.push_back(TupleOfInts({code & 1, (code >> 1) & 1,
                                 (code >> 2) & 1}));
  }
  int checked = 0;
  for (int mask = 0; mask < (1 << 8); ++mask) {
    if (__builtin_popcount(static_cast<unsigned>(mask)) > 3) continue;
    Database db(scheme_);
    for (int i = 0; i < 8; ++i) {
      if (mask & (1 << i)) db.Insert(0, space[i]);
    }
    EXPECT_EQ(Satisfies(db, rd), Satisfies(db, encoded))
        << db.ToString();
    ++checked;
  }
  EXPECT_GT(checked, 90);
}

TEST_F(GIndTest, WideRdEncoding) {
  Rd rd = MakeRd(*scheme_, "R", {"A", "B"}, {"B", "C"});
  GInd encoded = RdAsGind(rd);
  SplitMix64 rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    Database db(scheme_);
    int size = 1 + static_cast<int>(rng.Below(3));
    for (int i = 0; i < size; ++i) {
      db.Insert(0, TupleOfInts({static_cast<std::int64_t>(rng.Below(2)),
                                static_cast<std::int64_t>(rng.Below(2)),
                                static_cast<std::int64_t>(rng.Below(2))}));
    }
    EXPECT_EQ(Satisfies(db, rd), Satisfies(db, encoded)) << db.ToString();
  }
}

TEST_F(GIndTest, ToStringMarksGeneralized) {
  GInd g{0, {0, 0}, 1, {0, 1}};
  EXPECT_NE(g.ToString(*scheme_).find("generalized"), std::string::npos);
}

}  // namespace
}  // namespace ccfp
