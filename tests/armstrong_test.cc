#include <algorithm>

#include <gtest/gtest.h>

#include "armstrong/builder.h"
#include "axiom/sentence.h"
#include "core/satisfies.h"
#include "fd/armstrong_relation.h"
#include "fd/closure.h"
#include "util/rng.h"

namespace ccfp {
namespace {

TEST(ArmstrongTest, FdOnlyArmstrongDatabase) {
  SchemePtr scheme = MakeScheme({{"R", {"A", "B", "C"}}});
  UniverseOptions options;
  options.max_fd_lhs = 2;
  options.include_inds = false;
  std::vector<Dependency> universe = EnumerateUniverse(*scheme, options);

  std::vector<Fd> fds = {MakeFd(*scheme, "R", {"A"}, {"B"})};
  ChaseOracle oracle(scheme);
  Result<ArmstrongReport> report =
      BuildArmstrongDatabase(scheme, fds, {}, universe, oracle);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(ObeysExactly(report->db, universe, report->expected)
                   .has_value());
  // Spot checks: A -> B holds, B -> A and A -> C fail.
  EXPECT_TRUE(Satisfies(report->db, MakeFd(*scheme, "R", {"A"}, {"B"})));
  EXPECT_FALSE(Satisfies(report->db, MakeFd(*scheme, "R", {"B"}, {"A"})));
  EXPECT_FALSE(Satisfies(report->db, MakeFd(*scheme, "R", {"A"}, {"C"})));
}

TEST(ArmstrongTest, MixedFdIndArmstrongDatabase) {
  SchemePtr scheme = MakeScheme({{"R", {"A", "B"}}, {"S", {"C", "D"}}});
  UniverseOptions options;
  options.max_fd_lhs = 1;
  options.max_ind_width = 2;
  options.include_rds = true;
  std::vector<Dependency> universe = EnumerateUniverse(*scheme, options);

  std::vector<Fd> fds = {MakeFd(*scheme, "S", {"C"}, {"D"})};
  std::vector<Ind> inds = {MakeInd(*scheme, "R", {"A"}, "S", {"C"})};
  ChaseOracle oracle(scheme);
  Result<ArmstrongReport> report =
      BuildArmstrongDatabase(scheme, fds, inds, universe, oracle);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(ObeysExactly(report->db, universe, report->expected)
                   .has_value());
  EXPECT_TRUE(Satisfies(report->db, inds[0]));
  EXPECT_FALSE(
      Satisfies(report->db, MakeInd(*scheme, "S", {"C"}, "R", {"A"})));
}

TEST(ArmstrongTest, EmptySigmaViolatesEveryNontrivialSentence) {
  SchemePtr scheme = MakeScheme({{"R", {"A", "B"}}});
  UniverseOptions options;
  options.max_fd_lhs = 1;
  options.max_ind_width = 2;
  options.include_rds = true;
  std::vector<Dependency> universe = EnumerateUniverse(*scheme, options);
  ChaseOracle oracle(scheme);
  Result<ArmstrongReport> report =
      BuildArmstrongDatabase(scheme, {}, {}, universe, oracle);
  ASSERT_TRUE(report.ok()) << report.status();
  for (const Dependency& tau : universe) {
    EXPECT_EQ(Satisfies(report->db, tau), IsTrivial(*scheme, tau))
        << tau.ToString(*scheme);
  }
}

TEST(ArmstrongTest, ExpectedSetEqualsOracleConsequences) {
  SchemePtr scheme = MakeScheme({{"R", {"A", "B"}}, {"S", {"C", "D"}}});
  UniverseOptions options;
  options.max_fd_lhs = 1;
  options.max_ind_width = 1;
  std::vector<Dependency> universe = EnumerateUniverse(*scheme, options);
  std::vector<Fd> fds = {MakeFd(*scheme, "R", {"A"}, {"B"})};
  std::vector<Ind> inds = {MakeInd(*scheme, "R", {"B"}, "S", {"D"})};
  ChaseOracle oracle(scheme);
  Result<ArmstrongReport> report =
      BuildArmstrongDatabase(scheme, fds, inds, universe, oracle);
  ASSERT_TRUE(report.ok()) << report.status();
  std::vector<Dependency> sigma_deps = {Dependency(fds[0]),
                                        Dependency(inds[0])};
  for (const Dependency& tau : universe) {
    bool expected =
        std::find(report->expected.begin(), report->expected.end(), tau) !=
        report->expected.end();
    EXPECT_EQ(expected,
              oracle.Implies(sigma_deps, tau) == ImplicationVerdict::kImplied)
        << tau.ToString(*scheme);
  }
}

// --- Closed-form FD Armstrong relation (Fagin [Fa2]) ----------------------

TEST(ArmstrongRelationTest, ClosedSetsFormAnIntersectionClosedFamily) {
  SchemePtr scheme = MakeScheme({{"R", {"A", "B", "C"}}});
  std::vector<Fd> sigma = {MakeFd(*scheme, "R", {"A"}, {"B"})};
  Result<std::vector<std::vector<AttrId>>> closed =
      ClosedAttributeSets(*scheme, 0, sigma);
  ASSERT_TRUE(closed.ok());
  // {} closed, {B}, {C}, {B,C}, {A,B}, {A,B,C}; {A} and {A,C} are not.
  EXPECT_EQ(closed->size(), 6u);
  for (const auto& w : *closed) {
    EXPECT_NE(w, (std::vector<AttrId>{0}));
    EXPECT_NE(w, (std::vector<AttrId>{0, 2}));
  }
}

TEST(ArmstrongRelationTest, SatisfiesExactlyTheConsequences) {
  SchemePtr scheme = MakeScheme({{"R", {"A", "B", "C", "D"}}});
  SplitMix64 rng(20240611);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<Fd> sigma;
    for (int i = 0; i < 4; ++i) {
      std::vector<AttrId> lhs, rhs;
      for (AttrId a = 0; a < 4; ++a) {
        if (rng.Chance(1, 3)) lhs.push_back(a);
        if (rng.Chance(1, 4)) rhs.push_back(a);
      }
      if (rhs.empty()) rhs.push_back(static_cast<AttrId>(rng.Below(4)));
      sigma.push_back(Fd{0, lhs, rhs});
    }
    Result<Relation> relation = ArmstrongRelationForFds(*scheme, 0, sigma);
    ASSERT_TRUE(relation.ok()) << relation.status();
    Database db(scheme);
    for (const Tuple& t : relation->tuples()) db.Insert(0, t);

    // Every FD with sorted lhs of size <= 2 and singleton rhs: satisfied
    // iff implied.
    for (AttrId x = 0; x < 4; ++x) {
      for (AttrId y = 0; y < 4; ++y) {
        Fd unary{0, {x}, {y}};
        EXPECT_EQ(Satisfies(db, unary), FdImplies(*scheme, sigma, unary))
            << Dependency(unary).ToString(*scheme);
        for (AttrId x2 = x + 1; x2 < 4; ++x2) {
          Fd binary{0, {x, x2}, {y}};
          if (!Validate(*scheme, binary).ok()) continue;
          EXPECT_EQ(Satisfies(db, binary),
                    FdImplies(*scheme, sigma, binary))
              << Dependency(binary).ToString(*scheme);
        }
      }
    }
  }
}

TEST(ArmstrongRelationTest, AgreesWithChaseBasedBuilder) {
  // Two independent Armstrong constructions must certify the same FD
  // consequence sets.
  SchemePtr scheme = MakeScheme({{"R", {"A", "B", "C"}}});
  std::vector<Fd> sigma = {MakeFd(*scheme, "R", {"A"}, {"B"}),
                           MakeFd(*scheme, "R", {"B", "C"}, {"A"})};
  Result<Relation> closed_form = ArmstrongRelationForFds(*scheme, 0, sigma);
  ASSERT_TRUE(closed_form.ok());
  Database closed_db(scheme);
  for (const Tuple& t : closed_form->tuples()) closed_db.Insert(0, t);

  UniverseOptions options;
  options.max_fd_lhs = 2;
  options.include_inds = false;
  std::vector<Dependency> universe = EnumerateUniverse(*scheme, options);
  ChaseOracle oracle(scheme);
  Result<ArmstrongReport> chased =
      BuildArmstrongDatabase(scheme, sigma, {}, universe, oracle);
  ASSERT_TRUE(chased.ok());

  for (const Dependency& tau : universe) {
    EXPECT_EQ(Satisfies(closed_db, tau), Satisfies(chased->db, tau))
        << tau.ToString(*scheme);
  }
}

TEST(ArmstrongRelationTest, RejectsOverlyWideRelations) {
  std::vector<std::string> attrs;
  for (int i = 0; i < 24; ++i) attrs.push_back("A" + std::to_string(i));
  SchemePtr scheme = MakeScheme({{"R", attrs}});
  EXPECT_FALSE(ArmstrongRelationForFds(*scheme, 0, {}).ok());
}

}  // namespace
}  // namespace ccfp
