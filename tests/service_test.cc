// Unit tests for the concurrent solver service (service/service.h): core
// deduplication with the zero-re-interning reuse proof, admission control
// (session capacity, in-flight ceiling, lifetime step budgets — always
// ResourceExhausted, never a wrong verdict), snapshot-backed eviction and
// revival for every session kind, and the per-session stats counters.
#include "service/service.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/database.h"
#include "mine/discovery.h"
#include "service/shared_core.h"
#include "solve/solver.h"

namespace ccfp {
namespace {

SchemePtr RsScheme() {
  return MakeScheme({{"R", {"A", "B"}}, {"S", {"C", "D"}}});
}

std::vector<Dependency> MixedSigma() {
  return {Dependency(Fd{0, {0}, {1}}), Dependency(Ind{0, {0}, 1, {0}})};
}

Database WarmData(const SchemePtr& scheme) {
  Database db(scheme);
  db.Insert(0, {Value::Int(1), Value::Int(10)});
  db.Insert(0, {Value::Int(2), Value::Int(10)});
  db.Insert(0, {Value::Int(3), Value::Int(30)});
  db.Insert(1, {Value::Int(1), Value::Int(7)});
  db.Insert(1, {Value::Int(2), Value::Int(7)});
  db.Insert(1, {Value::Int(3), Value::Int(9)});
  return db;
}

TEST(SolverCoreTest, IdentityDedupsAndValidates) {
  SchemePtr scheme = RsScheme();
  EXPECT_EQ(SolverCore::Identity(*scheme, MixedSigma()),
            SolverCore::Identity(*scheme, MixedSigma()));
  EXPECT_NE(SolverCore::Identity(*scheme, MixedSigma()),
            SolverCore::Identity(*scheme, {}));

  // A sigma member that does not fit the scheme is refused at Build.
  Result<std::shared_ptr<const SolverCore>> bad =
      SolverCore::Build(scheme, {Dependency(Fd{5, {0}, {1}})});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(SolverCoreTest, ForkPaysZeroReInterningAndZeroCompilation) {
  SchemePtr scheme = RsScheme();
  Database warm = WarmData(scheme);
  Result<std::shared_ptr<const SolverCore>> core =
      SolverCore::Build(scheme, MixedSigma(), &warm);
  ASSERT_TRUE(core.ok()) << core.status();

  // The fork inherits the sealed base's counters; a session that only
  // reads warm state (here: re-verifying sigma and re-mining) moves
  // neither values_interned nor partitions_built.
  InternedWorkspace fork = (*core)->ForkWorkspace();
  for (const Dependency& dep : (*core)->sigma()) fork.Satisfies(dep);
  (void)MineFds(fork, 0);
  (void)MineInds(fork);
  EXPECT_EQ(fork.stats().values_interned,
            (*core)->base_stats().values_interned);
  EXPECT_EQ(fork.stats().partitions_built,
            (*core)->base_stats().partitions_built);
  EXPECT_GT(fork.stats().partitions_reused,
            (*core)->base_stats().partitions_reused);

  // Session-local growth stays local: the shared base is frozen.
  EXPECT_TRUE(fork.interner().has_shared_base());
  fork.Intern(Value::Int(424242));
  EXPECT_EQ(fork.stats().values_interned,
            (*core)->base_stats().values_interned + 1);
  EXPECT_EQ((*core)->base().stats().values_interned,
            (*core)->base_stats().values_interned);
}

TEST(ServiceTest, SecondMiningSessionReusesTheCoreForFree) {
  SchemePtr scheme = RsScheme();
  Database data = WarmData(scheme);
  SolverService service;

  Result<SolverService::SessionId> a = service.OpenMine(scheme, data);
  ASSERT_TRUE(a.ok()) << a.status();
  Result<SolverService::SessionId> b = service.OpenMine(scheme, data);
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ(service.stats().cores, 1u);
  EXPECT_EQ(service.stats().core_reuses, 1u);

  // Both sessions mine identical results, equal to mining the raw data.
  Result<std::vector<Fd>> fds_a = service.MineSessionFds(*a, 0);
  Result<std::vector<Fd>> fds_b = service.MineSessionFds(*b, 0);
  ASSERT_TRUE(fds_a.ok() && fds_b.ok());
  EXPECT_EQ(*fds_a, *fds_b);
  EXPECT_EQ(*fds_a, MineFds(data, 0));

  // The reuse proof: the second session re-interned nothing and compiled
  // no partitions — all capital came from the shared core.
  Result<SolverService::SessionStats> stats = service.Stats(*b);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->values_interned, 0u);
  EXPECT_EQ(stats->partitions_built, 0u);
  EXPECT_EQ(stats->ops, 1u);
}

TEST(ServiceTest, SolveSessionMatchesStandaloneSolver) {
  SchemePtr scheme = RsScheme();
  SolverService service;
  Result<SolverService::SessionId> id =
      service.OpenSolve(scheme, MixedSigma());
  ASSERT_TRUE(id.ok()) << id.status();

  ImplicationSolver reference(scheme, MixedSigma());
  std::vector<Dependency> targets = {
      Dependency(Fd{0, {0}, {1}}),  // member: implied
      Dependency(Fd{0, {1}, {0}}),  // not implied: counterexample
      Dependency(Ind{1, {0}, 0, {0}}),  // reverse IND: not implied
  };
  for (const Dependency& target : targets) {
    Result<Verdict> got = service.Solve(*id, target);
    Result<Verdict> want = reference.Solve(target);
    ASSERT_TRUE(got.ok() && want.ok());
    EXPECT_EQ(got->outcome, want->outcome) << target.ToString(*scheme);
    EXPECT_EQ(got->ToString(*scheme), want->ToString(*scheme));
  }
  Result<SolverService::SessionStats> stats = service.Stats(*id);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->ops, targets.size());
  EXPECT_GT(stats->steps_used, 0u);
}

TEST(ServiceTest, SessionCapacityIsResourceExhausted) {
  SolverService::Options options;
  options.max_sessions = 1;
  SolverService service(options);
  SchemePtr scheme = RsScheme();
  ASSERT_TRUE(service.OpenSolve(scheme, MixedSigma()).ok());
  Result<SolverService::SessionId> refused =
      service.OpenSolve(scheme, MixedSigma());
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(service.stats().rejected_capacity, 1u);
  EXPECT_EQ(service.stats().sessions_resident, 1u);
}

TEST(ServiceTest, InflightCeilingIsResourceExhausted) {
  SolverService::Options options;
  options.max_inflight = 0;  // every op refused — the ceiling, isolated
  SolverService service(options);
  SchemePtr scheme = RsScheme();
  Result<SolverService::SessionId> id =
      service.OpenSolve(scheme, MixedSigma());
  ASSERT_TRUE(id.ok());
  Result<Verdict> refused = service.Solve(*id, Dependency(Fd{0, {0}, {1}}));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(service.stats().rejected_inflight, 1u);
}

TEST(ServiceTest, LifetimeStepCeilingTripsAfterTheHonestVerdict) {
  SolverService::Options options;
  options.session_step_ceiling = 1;  // the first op charges past it
  SolverService service(options);
  SchemePtr scheme = RsScheme();
  Result<SolverService::SessionId> id =
      service.OpenSolve(scheme, MixedSigma());
  ASSERT_TRUE(id.ok());

  // The op that crosses the ceiling still returns its correct verdict…
  Result<Verdict> first = service.Solve(*id, Dependency(Fd{0, {1}, {0}}));
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_TRUE(first->not_implied());

  // …and only later ops are refused.
  Result<Verdict> second = service.Solve(*id, Dependency(Fd{0, {0}, {1}}));
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(service.stats().rejected_budget, 1u);
  Result<SolverService::SessionStats> stats = service.Stats(*id);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->budget_exhausted);
}

TEST(ServiceTest, SolveSessionEvictionDropsEnginesAndRevivesTransparently) {
  SolverService service;  // no spill_dir: solve sessions are pure capital
  SchemePtr scheme = RsScheme();
  Result<SolverService::SessionId> id =
      service.OpenSolve(scheme, MixedSigma());
  ASSERT_TRUE(id.ok());
  Dependency target(Fd{0, {1}, {0}});
  Result<Verdict> before = service.Solve(*id, target);
  ASSERT_TRUE(before.ok());

  ASSERT_TRUE(service.Evict(*id).ok());
  Result<SolverService::SessionStats> evicted = service.Stats(*id);
  ASSERT_TRUE(evicted.ok());
  EXPECT_TRUE(evicted->evicted);
  EXPECT_EQ(evicted->evictions, 1u);

  Result<Verdict> after = service.Solve(*id, target);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->outcome, before->outcome);
  Result<SolverService::SessionStats> revived = service.Stats(*id);
  ASSERT_TRUE(revived.ok());
  EXPECT_FALSE(revived->evicted);
  EXPECT_EQ(revived->revivals, 1u);
  EXPECT_EQ(service.stats().sessions_evicted, 1u);
  EXPECT_EQ(service.stats().sessions_revived, 1u);
}

TEST(ServiceTest, MiningEvictionSpillsAndRevivesWithLocalAppends) {
  SolverService::Options options;
  options.spill_dir = ::testing::TempDir();
  SolverService service(options);
  SchemePtr scheme = RsScheme();
  Database data = WarmData(scheme);
  Result<SolverService::SessionId> id = service.OpenMine(scheme, data);
  ASSERT_TRUE(id.ok());

  // A session-local append that breaks A -> B in R: mined FDs change.
  Database delta(scheme);
  delta.Insert(0, {Value::Int(1), Value::Int(99)});
  ASSERT_TRUE(service.Append(*id, delta).ok());
  Result<std::vector<Fd>> before = service.MineSessionFds(*id, 0);
  ASSERT_TRUE(before.ok());

  ASSERT_TRUE(service.Evict(*id).ok());
  // Revival is implicit: the next op warm-starts from the spill chain,
  // with the session-local delta intact.
  Result<std::vector<Fd>> after = service.MineSessionFds(*id, 0);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(*before, *after);

  // Evict/revive again: the chain continues (delta records), state holds.
  ASSERT_TRUE(service.Evict(*id).ok());
  Result<std::vector<Ind>> inds = service.MineSessionInds(*id);
  ASSERT_TRUE(inds.ok());
  Database combined = data;
  combined.Insert(0, {Value::Int(1), Value::Int(99)});
  EXPECT_EQ(*inds, MineInds(combined));
}

TEST(ServiceTest, MiningEvictionWithoutSpillDirIsFailedPrecondition) {
  SolverService service;
  SchemePtr scheme = RsScheme();
  Database data = WarmData(scheme);
  Result<SolverService::SessionId> id = service.OpenMine(scheme, data);
  ASSERT_TRUE(id.ok());
  Status refused = service.Evict(*id);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.code(), StatusCode::kFailedPrecondition);
}

TEST(ServiceTest, ArmstrongEvictionRevivesWithoutOracleReplay) {
  SolverService::Options options;
  options.spill_dir = ::testing::TempDir();
  SolverService service(options);
  SchemePtr scheme = MakeScheme({{"R", {"A", "B", "C"}}});
  std::vector<Fd> fds = {Fd{0, {0}, {1}}};
  Result<SolverService::SessionId> id =
      service.OpenArmstrong(scheme, fds, {});
  ASSERT_TRUE(id.ok()) << id.status();

  std::vector<Dependency> universe = {
      Dependency(Fd{0, {0}, {1}}),
      Dependency(Fd{0, {0}, {2}}),
      Dependency(Fd{0, {1}, {0}}),
  };
  ASSERT_TRUE(service.Extend(*id, universe).ok());
  Result<Database> before = service.ArmstrongDatabase(*id);
  ASSERT_TRUE(before.ok());

  ASSERT_TRUE(service.Evict(*id).ok());
  // The revived session adopts workspace + classification (zero oracle
  // calls); its database is bit-identical and it keeps extending.
  Result<Database> after = service.ArmstrongDatabase(*id);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(before->ToString(), after->ToString());
  ASSERT_TRUE(
      service.Extend(*id, {Dependency(Fd{0, {2}, {0}})}).ok());
}

TEST(ServiceTest, OpsOnTheWrongKindOrUnknownSessionFailCleanly) {
  SolverService service;
  SchemePtr scheme = RsScheme();
  Result<SolverService::SessionId> solve =
      service.OpenSolve(scheme, MixedSigma());
  ASSERT_TRUE(solve.ok());

  Result<std::vector<Fd>> wrong = service.MineSessionFds(*solve, 0);
  ASSERT_FALSE(wrong.ok());
  EXPECT_EQ(wrong.status().code(), StatusCode::kFailedPrecondition);

  Result<Verdict> missing =
      service.Solve(9999, Dependency(Fd{0, {0}, {1}}));
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  ASSERT_TRUE(service.Close(*solve).ok());
  Result<Verdict> closed =
      service.Solve(*solve, Dependency(Fd{0, {0}, {1}}));
  ASSERT_FALSE(closed.ok());
  EXPECT_EQ(closed.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(service.stats().sessions_resident, 0u);
}

TEST(ServiceTest, SessionIdsEncodeTheirShard) {
  SolverService::Options options;
  options.shards = 4;
  SolverService service(options);
  SchemePtr scheme = RsScheme();
  for (int i = 0; i < 3; ++i) {
    Result<SolverService::SessionId> id =
        service.OpenSolve(scheme, MixedSigma());
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(*id % service.shard_count(), service.ShardOf(*scheme));
  }
}

TEST(ServiceTest, PerSessionWitnessCountersAreIsolated) {
  SolverService service;
  SchemePtr scheme = RsScheme();
  Result<SolverService::SessionId> a =
      service.OpenSolve(scheme, MixedSigma());
  Result<SolverService::SessionId> b =
      service.OpenSolve(scheme, MixedSigma());
  ASSERT_TRUE(a.ok() && b.ok());

  // A non-unary target routes to the mixed fragment, which probes the
  // witness cache (the unary decision engines never consult it).
  Dependency refuted(Fd{0, {1}, {0, 1}});
  // Session a: first solve admits a witness, second replays it.
  ASSERT_TRUE(service.Solve(*a, refuted).ok());
  ASSERT_TRUE(service.Solve(*a, refuted).ok());
  Result<SolverService::SessionStats> sa = service.Stats(*a);
  Result<SolverService::SessionStats> sb = service.Stats(*b);
  ASSERT_TRUE(sa.ok() && sb.ok());
  EXPECT_GT(sa->witness.admitted, 0u);
  EXPECT_GT(sa->witness.hits, 0u);
  // Session b never solved: its private cache is untouched.
  EXPECT_EQ(sb->witness.admitted, 0u);
  EXPECT_EQ(sb->witness.probes, 0u);
}

}  // namespace
}  // namespace ccfp
