// The service determinism property (the PR's acceptance bar): N
// concurrent sessions served from one shared core produce verdicts AND
// evidence bit-identical to a standalone sequential ImplicationSolver
// running the same per-session query streams — at every TaskPool width
// (1/2/4/8), with the mixed route's chase/search race on, including
// queries that exhaust their step budget mid-flight and sessions that are
// evicted and revived between queries. Runs under TSan and ASan via the
// property label.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "core/dependency.h"
#include "core/schema.h"
#include "mine/discovery.h"
#include "service/service.h"
#include "solve/solver.h"
#include "util/budget.h"

namespace ccfp {
namespace {

SchemePtr RsScheme() {
  return MakeScheme({{"R", {"A", "B"}}, {"S", {"C", "D"}}});
}

std::vector<Dependency> MixedSigma() {
  return {Dependency(Fd{0, {0}, {1}}), Dependency(Ind{0, {0}, 1, {0}})};
}

struct Query {
  Dependency target;
  Budget budget;
};

/// One session's query stream: implied members, refuted targets (the
/// bounded search finds counterexamples), trivia, and a deliberately
/// starved query (Budget::Tiny -> kUnknown) to pin the mid-flight
/// exhaustion behavior. Streams differ per session so the comparison is
/// not accidentally symmetric.
std::vector<Query> QueryStream(std::size_t session) {
  Budget step_budget;           // counter-only: no deadline, deterministic
  std::vector<Query> all = {
      {Dependency(Fd{0, {0}, {1}}), step_budget},      // member: implied
      {Dependency(Fd{0, {1}, {0}}), step_budget},      // refuted
      {Dependency(Ind{1, {0}, 0, {0}}), step_budget},  // reverse: refuted
      {Dependency(Fd{0, {0}, {0, 1}}), step_budget},   // equivalent member
      {Dependency(Ind{0, {1}, 1, {1}}), step_budget},  // refuted
      {Dependency(Fd{0, {1}, {0}}), Budget::Tiny()},   // starved: unknown
      {Dependency(Fd{0, {1}, {0}}), step_budget},      // cache replay
  };
  // Rotate so sessions issue different orders (and hence different
  // private-cache histories) while staying individually deterministic.
  std::vector<Query> stream;
  stream.reserve(all.size());
  for (std::size_t k = 0; k < all.size(); ++k) {
    stream.push_back(all[(k + session) % all.size()]);
  }
  return stream;
}

/// The full observable answer, rendered: outcome, route, engine, reason,
/// stage reports with their budget use, and the counterexample bytes.
std::string Render(const Verdict& v, const DatabaseScheme& scheme) {
  std::string s = v.ToString(scheme);
  if (v.counterexample.has_value()) {
    s += "\n--counterexample--\n";
    s += v.counterexample->ToString();
    s += v.counterexample_verified ? "\n(verified)" : "\n(unverified)";
  }
  return s;
}

/// The sequential ground truth for one session's stream: a fresh
/// standalone solver (private caches, no pool), queries in order.
std::vector<std::string> SequentialReference(const SchemePtr& scheme,
                                             std::size_t session,
                                             const SolveOptions& base) {
  ImplicationSolver solver(scheme, MixedSigma(), base);
  std::vector<std::string> out;
  for (const Query& q : QueryStream(session)) {
    Result<Verdict> v = solver.Solve(q.target, q.budget);
    out.push_back(v.ok() ? Render(*v, *scheme) : v.status().ToString());
  }
  return out;
}

TEST(ServicePropertyTest, ConcurrentSessionsMatchSequentialAtEveryWidth) {
  SchemePtr scheme = RsScheme();
  constexpr std::size_t kSessions = 4;

  std::vector<std::vector<std::string>> want;
  for (std::size_t s = 0; s < kSessions; ++s) {
    want.push_back(SequentialReference(scheme, s, SolveOptions()));
  }

  for (unsigned width : {1u, 2u, 4u, 8u}) {
    SolverService::Options options;
    options.threads = width;
    SolverService service(options);

    std::vector<SolverService::SessionId> ids;
    for (std::size_t s = 0; s < kSessions; ++s) {
      Result<SolverService::SessionId> id =
          service.OpenSolve(scheme, MixedSigma());
      ASSERT_TRUE(id.ok()) << id.status();
      ids.push_back(*id);
    }
    // The Nth session adopted the first's core.
    EXPECT_EQ(service.stats().cores, 1u);
    EXPECT_EQ(service.stats().core_reuses, kSessions - 1);

    std::vector<std::vector<std::string>> got(kSessions);
    {
      std::vector<std::thread> callers;
      callers.reserve(kSessions);
      for (std::size_t s = 0; s < kSessions; ++s) {
        callers.emplace_back([&, s] {
          for (const Query& q : QueryStream(s)) {
            Result<Verdict> v = service.Solve(ids[s], q.target, q.budget);
            got[s].push_back(v.ok() ? Render(*v, *scheme)
                                    : v.status().ToString());
          }
        });
      }
      for (std::thread& t : callers) t.join();
    }

    for (std::size_t s = 0; s < kSessions; ++s) {
      ASSERT_EQ(got[s].size(), want[s].size());
      for (std::size_t k = 0; k < want[s].size(); ++k) {
        EXPECT_EQ(got[s][k], want[s][k])
            << "width " << width << " session " << s << " query " << k;
      }
    }
  }
}

TEST(ServicePropertyTest, EvictionMidStreamPreservesDeterminism) {
  // With the witness cache off, a solver is memoryless across queries, so
  // dropping and reviving the session's engines mid-stream must be
  // invisible — the whole stream still matches the uninterrupted
  // sequential reference bit-for-bit.
  SchemePtr scheme = RsScheme();
  constexpr std::size_t kSessions = 4;
  SolveOptions cacheless;
  cacheless.use_witness_cache = false;

  std::vector<std::vector<std::string>> want;
  for (std::size_t s = 0; s < kSessions; ++s) {
    want.push_back(SequentialReference(scheme, s, cacheless));
  }

  for (unsigned width : {2u, 8u}) {
    SolverService::Options options;
    options.threads = width;
    options.solve = cacheless;
    SolverService service(options);

    std::vector<SolverService::SessionId> ids;
    for (std::size_t s = 0; s < kSessions; ++s) {
      Result<SolverService::SessionId> id =
          service.OpenSolve(scheme, MixedSigma());
      ASSERT_TRUE(id.ok()) << id.status();
      ids.push_back(*id);
    }

    std::vector<std::vector<std::string>> got(kSessions);
    std::vector<std::thread> callers;
    for (std::size_t s = 0; s < kSessions; ++s) {
      callers.emplace_back([&, s] {
        std::size_t k = 0;
        for (const Query& q : QueryStream(s)) {
          // Each session evicts itself at a different point in its
          // stream; revival happens inside the next Solve.
          if (k++ == s) ASSERT_TRUE(service.Evict(ids[s]).ok());
          Result<Verdict> v = service.Solve(ids[s], q.target, q.budget);
          got[s].push_back(v.ok() ? Render(*v, *scheme)
                                  : v.status().ToString());
        }
      });
    }
    for (std::thread& t : callers) t.join();

    for (std::size_t s = 0; s < kSessions; ++s) {
      ASSERT_EQ(got[s].size(), want[s].size());
      for (std::size_t k = 0; k < want[s].size(); ++k) {
        EXPECT_EQ(got[s][k], want[s][k])
            << "width " << width << " session " << s << " query " << k;
      }
    }
  }
}

TEST(ServicePropertyTest, SharedWitnessCacheKeepsVerdictsExact) {
  // Cross-session replay changes which evidence answers first (that is
  // its point), so this mode asserts the weaker — but still hard —
  // property: outcomes never change, and every attached counterexample
  // is verified genuine.
  SchemePtr scheme = RsScheme();
  constexpr std::size_t kSessions = 4;

  std::vector<std::vector<ImplicationVerdict>> want(kSessions);
  for (std::size_t s = 0; s < kSessions; ++s) {
    ImplicationSolver solver(scheme, MixedSigma());
    for (const Query& q : QueryStream(s)) {
      Result<Verdict> v = solver.Solve(q.target, q.budget);
      ASSERT_TRUE(v.ok());
      want[s].push_back(v->outcome);
    }
  }

  SolverService::Options options;
  options.threads = 4;
  options.share_witness_cache = true;
  SolverService service(options);
  std::vector<SolverService::SessionId> ids;
  for (std::size_t s = 0; s < kSessions; ++s) {
    Result<SolverService::SessionId> id =
        service.OpenSolve(scheme, MixedSigma());
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }

  std::vector<std::vector<Verdict>> got(kSessions);
  std::vector<std::thread> callers;
  for (std::size_t s = 0; s < kSessions; ++s) {
    callers.emplace_back([&, s] {
      for (const Query& q : QueryStream(s)) {
        Result<Verdict> v = service.Solve(ids[s], q.target, q.budget);
        ASSERT_TRUE(v.ok()) << v.status();
        got[s].push_back(std::move(*v));
      }
    });
  }
  for (std::thread& t : callers) t.join();

  for (std::size_t s = 0; s < kSessions; ++s) {
    ASSERT_EQ(got[s].size(), want[s].size());
    for (std::size_t k = 0; k < want[s].size(); ++k) {
      EXPECT_EQ(got[s][k].outcome, want[s][k]) << "session " << s
                                               << " query " << k;
      if (got[s][k].counterexample.has_value()) {
        EXPECT_TRUE(got[s][k].counterexample_verified);
      }
    }
  }
}

TEST(ServicePropertyTest, ConcurrentMiningSessionsAgreeWithDirectMining) {
  SchemePtr scheme = RsScheme();
  Database data(scheme);
  data.Insert(0, {Value::Int(1), Value::Int(10)});
  data.Insert(0, {Value::Int(2), Value::Int(10)});
  data.Insert(0, {Value::Int(3), Value::Int(30)});
  data.Insert(1, {Value::Int(1), Value::Int(7)});
  data.Insert(1, {Value::Int(2), Value::Int(7)});

  std::vector<Fd> want_fds = MineFds(data, 0);
  std::vector<Ind> want_inds = MineInds(data);

  SolverService::Options options;
  options.threads = 4;
  SolverService service(options);
  constexpr std::size_t kSessions = 4;
  std::vector<SolverService::SessionId> ids;
  for (std::size_t s = 0; s < kSessions; ++s) {
    Result<SolverService::SessionId> id = service.OpenMine(scheme, data);
    ASSERT_TRUE(id.ok()) << id.status();
    ids.push_back(*id);
  }
  EXPECT_EQ(service.stats().cores, 1u);

  std::vector<std::thread> callers;
  for (std::size_t s = 0; s < kSessions; ++s) {
    callers.emplace_back([&, s] {
      for (int round = 0; round < 3; ++round) {
        Result<std::vector<Fd>> fds = service.MineSessionFds(ids[s], 0);
        Result<std::vector<Ind>> inds = service.MineSessionInds(ids[s]);
        ASSERT_TRUE(fds.ok() && inds.ok());
        EXPECT_EQ(*fds, want_fds);
        EXPECT_EQ(*inds, want_inds);
      }
    });
  }
  for (std::thread& t : callers) t.join();

  // Every session mined purely from the shared core's sealed capital.
  for (std::size_t s = 0; s < kSessions; ++s) {
    Result<SolverService::SessionStats> stats = service.Stats(ids[s]);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->values_interned, 0u);
    EXPECT_EQ(stats->partitions_built, 0u);
  }
}

}  // namespace
}  // namespace ccfp
