#include <gtest/gtest.h>

#include "core/parser.h"
#include "util/rng.h"

namespace ccfp {
namespace {

class ParserTest : public ::testing::Test {
 protected:
  SchemePtr scheme_ =
      MakeScheme({{"R", {"A", "B", "C"}}, {"S", {"D", "E"}}});

  Dependency Parse(const std::string& text) {
    Result<Dependency> dep = ParseDependency(*scheme_, text);
    EXPECT_TRUE(dep.ok()) << text << ": " << dep.status();
    return dep.MoveValue();
  }
};

TEST_F(ParserTest, ParsesFd) {
  Dependency dep = Parse("R: A, B -> C");
  ASSERT_TRUE(dep.is_fd());
  EXPECT_EQ(dep, Dependency(MakeFd(*scheme_, "R", {"A", "B"}, {"C"})));
}

TEST_F(ParserTest, ParsesEmptyLhsFd) {
  Dependency dep = Parse("R: -> C");
  ASSERT_TRUE(dep.is_fd());
  EXPECT_TRUE(dep.fd().lhs.empty());
}

TEST_F(ParserTest, ParsesInd) {
  Dependency dep = Parse("R[A, B] <= S[D, E]");
  ASSERT_TRUE(dep.is_ind());
  EXPECT_EQ(dep,
            Dependency(MakeInd(*scheme_, "R", {"A", "B"}, "S", {"D", "E"})));
}

TEST_F(ParserTest, ParsesSelfInd) {
  Dependency dep = Parse("R[A] <= R[B]");
  ASSERT_TRUE(dep.is_ind());
  EXPECT_EQ(dep.ind().lhs_rel, dep.ind().rhs_rel);
}

TEST_F(ParserTest, ParsesRd) {
  Dependency dep = Parse("R[A = B]");
  ASSERT_TRUE(dep.is_rd());
  EXPECT_EQ(dep, Dependency(MakeRd(*scheme_, "R", {"A"}, {"B"})));
}

TEST_F(ParserTest, ParsesWideRd) {
  Dependency dep = Parse("R[A, B = B, C]");
  ASSERT_TRUE(dep.is_rd());
  EXPECT_EQ(dep.rd().lhs.size(), 2u);
}

TEST_F(ParserTest, ParsesMvd) {
  Dependency dep = Parse("R: A ->> B");
  ASSERT_TRUE(dep.is_mvd());
}

TEST_F(ParserTest, ParsesEmvd) {
  Dependency dep = Parse("R: A ->> B | C");
  ASSERT_TRUE(dep.is_emvd());
  EXPECT_EQ(dep, Dependency(MakeEmvd(*scheme_, "R", {"A"}, {"B"}, {"C"})));
}

TEST_F(ParserTest, RoundTripsThroughToString) {
  for (const char* text :
       {"R: A, B -> C", "R[A, B] <= S[D, E]", "R[A = B]", "R: A ->> B | C",
        "R: A ->> B"}) {
    Dependency dep = Parse(text);
    Dependency again = Parse(dep.ToString(*scheme_));
    EXPECT_EQ(dep, again) << text;
  }
}

TEST_F(ParserTest, RejectsUnknownNames) {
  EXPECT_FALSE(ParseDependency(*scheme_, "T: A -> B").ok());
  EXPECT_FALSE(ParseDependency(*scheme_, "R: A -> Z").ok());
  EXPECT_FALSE(ParseDependency(*scheme_, "R[A] <= T[D]").ok());
}

TEST_F(ParserTest, RejectsMalformedSyntax) {
  EXPECT_FALSE(ParseDependency(*scheme_, "").ok());
  EXPECT_FALSE(ParseDependency(*scheme_, "R A -> B").ok());
  EXPECT_FALSE(ParseDependency(*scheme_, "R[A, B]").ok());
  EXPECT_FALSE(ParseDependency(*scheme_, "R[A] <= S[D, E]").ok());
  EXPECT_FALSE(ParseDependency(*scheme_, "R: A, A -> B").ok());
}

TEST_F(ParserTest, ParseDependenciesSkipsCommentsAndBlanks) {
  Result<std::vector<Dependency>> deps = ParseDependencies(*scheme_, R"(
# functional dependencies
R: A -> B

# inclusion dependencies
R[A] <= S[D]
)");
  ASSERT_TRUE(deps.ok()) << deps.status();
  EXPECT_EQ(deps->size(), 2u);
}

TEST_F(ParserTest, ParseDependenciesReportsLineNumber) {
  Result<std::vector<Dependency>> deps =
      ParseDependencies(*scheme_, "R: A -> B\nbogus line\n");
  ASSERT_FALSE(deps.ok());
  EXPECT_NE(deps.status().message().find("line 2"), std::string::npos);
}

TEST_F(ParserTest, ParsesDatabaseValues) {
  Result<Database> db = ParseDatabase(scheme_, R"(
R(1, -2, hello)
R(3, "quoted text", _n7)
S(1, 2)
)");
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ(db->relation(0).size(), 2u);
  EXPECT_EQ(db->relation(1).size(), 1u);
  const Tuple& t0 = db->relation(0).tuples()[0];
  EXPECT_EQ(t0[0], Value::Int(1));
  EXPECT_EQ(t0[1], Value::Int(-2));
  EXPECT_EQ(t0[2], Value::Str("hello"));
  const Tuple& t1 = db->relation(0).tuples()[1];
  EXPECT_EQ(t1[1], Value::Str("quoted text"));
  EXPECT_EQ(t1[2], Value::Null(7));
}

TEST_F(ParserTest, ParseDatabaseRejectsArityMismatch) {
  EXPECT_FALSE(ParseDatabase(scheme_, "R(1, 2)").ok());
  EXPECT_FALSE(ParseDatabase(scheme_, "T(1)").ok());
  EXPECT_FALSE(ParseDatabase(scheme_, "R 1, 2, 3").ok());
}

// Robustness fuzz: random byte soup must produce an error Status, never a
// crash or a silently-accepted dependency.
class ParserFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzzTest, GarbageNeverCrashes) {
  SchemePtr scheme = MakeScheme({{"R", {"A", "B"}}, {"S", {"C"}}});
  SplitMix64 rng(GetParam());
  const char alphabet[] = "RSABC:<=->[](),| \t#0123456789abc\"";
  for (int trial = 0; trial < 200; ++trial) {
    std::string text;
    std::size_t len = rng.Below(24);
    for (std::size_t i = 0; i < len; ++i) {
      text.push_back(alphabet[rng.Below(sizeof(alphabet) - 1)]);
    }
    Result<Dependency> dep = ParseDependency(*scheme, text);
    if (dep.ok()) {
      // Whatever parsed must be valid and must round-trip.
      EXPECT_TRUE(Validate(*scheme, *dep).ok()) << text;
      Result<Dependency> again =
          ParseDependency(*scheme, dep->ToString(*scheme));
      ASSERT_TRUE(again.ok()) << text;
      EXPECT_EQ(*again, *dep) << text;
    }
    // Database lines too.
    Result<Database> db = ParseDatabase(scheme, text);
    (void)db;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace ccfp
