// Shared randomized-trace driver for the workspace/verifier test suites:
// random schemes, dependency universes, append/merge mutations under the
// chase protocol, and the three-way verdict/witness agreement check
// (watchers vs. workspace sweep vs. fresh re-intern). Extracted from
// tests/verify_property_test.cc so the snapshot round-trip, fault
// injection, and soak suites drive the exact same traces.
#ifndef CCFP_TESTS_TRACE_UTIL_H_
#define CCFP_TESTS_TRACE_UTIL_H_

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/satisfies.h"
#include "core/workspace.h"
#include "util/rng.h"
#include "verify/verifier.h"

namespace ccfp {
namespace testutil {

inline SchemePtr RandomScheme(SplitMix64& rng) {
  std::size_t relations = 2 + rng.Below(2);
  std::vector<std::pair<std::string, std::vector<std::string>>> rels;
  for (std::size_t r = 0; r < relations; ++r) {
    std::size_t arity = 2 + rng.Below(3);
    std::vector<std::string> attrs;
    for (std::size_t a = 0; a < arity; ++a) {
      attrs.push_back(std::string(1, static_cast<char>('A' + a)));
    }
    rels.emplace_back("R" + std::to_string(r), std::move(attrs));
  }
  return MakeScheme(std::move(rels));
}

inline std::vector<AttrId> RandomAttrs(SplitMix64& rng, std::size_t arity,
                                       std::size_t max_len,
                                       bool allow_empty) {
  std::vector<AttrId> all(arity);
  for (AttrId a = 0; a < arity; ++a) all[a] = a;
  for (std::size_t j = arity; j > 1; --j) {
    std::swap(all[j - 1], all[rng.Below(j)]);
  }
  std::size_t lo = allow_empty ? 0 : 1;
  std::size_t len = lo + rng.Below(std::min(max_len, arity) - lo + 1);
  return std::vector<AttrId>(all.begin(), all.begin() + len);
}

// A batch of random dependencies of every kind, duplicate-free.
inline std::vector<Dependency> RandomUniverse(const SchemePtr& scheme,
                                              SplitMix64& rng,
                                              std::size_t count) {
  std::vector<Dependency> out;
  std::size_t attempts = 0;
  while (out.size() < count && ++attempts < count * 20) {
    RelId rel = static_cast<RelId>(rng.Below(scheme->size()));
    std::size_t arity = scheme->relation(rel).arity();
    Dependency dep = Dependency(Fd{0, {}, {0}});
    switch (rng.Below(5)) {
      case 0:
        dep = Dependency(Fd{rel, RandomAttrs(rng, arity, 2, true),
                            RandomAttrs(rng, arity, 2, false)});
        break;
      case 1: {
        RelId rhs_rel = static_cast<RelId>(rng.Below(scheme->size()));
        std::size_t rhs_arity = scheme->relation(rhs_rel).arity();
        std::size_t width = 1 + rng.Below(2);
        std::vector<AttrId> lhs = RandomAttrs(rng, arity, width, false);
        std::vector<AttrId> rhs = RandomAttrs(rng, rhs_arity, width, false);
        std::size_t w = std::min(lhs.size(), rhs.size());
        lhs.resize(w);
        rhs.resize(w);
        dep = Dependency(Ind{rel, std::move(lhs), rhs_rel, std::move(rhs)});
        break;
      }
      case 2: {
        std::size_t w = 1 + rng.Below(2);
        std::vector<AttrId> lhs = RandomAttrs(rng, arity, w, false);
        std::vector<AttrId> rhs = RandomAttrs(rng, arity, w, false);
        std::size_t n = std::min(lhs.size(), rhs.size());
        lhs.resize(n);
        rhs.resize(n);
        dep = Dependency(Rd{rel, std::move(lhs), std::move(rhs)});
        break;
      }
      case 3: {
        std::vector<AttrId> x = RandomAttrs(rng, arity, 2, true);
        std::vector<AttrId> y, z;
        for (AttrId a = 0; a < arity; ++a) {
          if (std::find(x.begin(), x.end(), a) != x.end()) continue;
          if (rng.Chance(1, 2)) {
            y.push_back(a);
          } else {
            z.push_back(a);
          }
        }
        std::sort(x.begin(), x.end());
        dep = Dependency(Emvd{rel, std::move(x), std::move(y),
                              std::move(z)});
        break;
      }
      default: {
        std::vector<AttrId> x = RandomAttrs(rng, arity, 2, true);
        std::vector<AttrId> y = RandomAttrs(rng, arity, 2, false);
        std::sort(x.begin(), x.end());
        std::sort(y.begin(), y.end());
        dep = Dependency(Mvd{rel, std::move(x), std::move(y)});
        break;
      }
    }
    if (!Validate(*scheme, dep).ok()) continue;
    if (std::find(out.begin(), out.end(), dep) != out.end()) continue;
    out.push_back(std::move(dep));
  }
  return out;
}

/// Appends a random tuple drawn from a small shared id pool (so merges
/// and duplicate collisions actually happen). Stored ids are mapped
/// through the union-find first: appended tuples must be canonical at
/// birth (the workspace contract every chase engine upholds).
inline void AppendRandomTuple(InternedWorkspace& ws, SplitMix64& rng,
                              std::vector<ValueId>& pool) {
  RelId rel = static_cast<RelId>(rng.Below(ws.scheme().size()));
  std::size_t arity = ws.scheme().relation(rel).arity();
  IdTuple t(arity, 0);
  for (std::size_t a = 0; a < arity; ++a) {
    if (pool.empty() || rng.Chance(1, 4)) {
      pool.push_back(rng.Chance(1, 3)
                         ? ws.InternFreshNull()
                         : ws.Intern(Value::Int(static_cast<std::int64_t>(
                               rng.Below(4)))));
    }
    t[a] = ws.Canon(pool[rng.Below(pool.size())]);
  }
  ws.Append(rel, std::move(t));
}

/// Merges two random pool ids under the chase protocol: MergeValues, then
/// re-canonicalize every occurrence of the loser (the exact sequence
/// WorkspaceChase drives through its dirty worklist), so the workspace is
/// quiescent again when this returns.
inline void MergeRandomValues(InternedWorkspace& ws, SplitMix64& rng,
                              const std::vector<ValueId>& pool) {
  if (pool.size() < 2) return;
  ValueId a = ws.Canon(pool[rng.Below(pool.size())]);
  ValueId b = ws.Canon(pool[rng.Below(pool.size())]);
  InternedWorkspace::MergeResult m = ws.MergeValues(a, b);
  if (!m.merged) return;  // equal already, or a constant clash
  std::vector<WorkspaceTupleRef> stale = ws.occurrences(m.loser);
  ws.RerouteOccurrences(m.loser, m.winner);
  for (const WorkspaceTupleRef& ref : stale) {
    ws.CanonicalizeTuple(ref.rel, ref.idx);
  }
}

/// Maps workspace slot indices to alive ranks (the tuple indices of the
/// materialized database, which drops dead slots but preserves order).
inline std::vector<std::size_t> AliveRanks(
    const InternedWorkspace& ws, RelId rel,
    const std::vector<std::uint32_t>& slots) {
  std::vector<std::size_t> ranks;
  for (std::uint32_t slot : slots) {
    std::size_t rank = 0;
    for (std::uint32_t i = 0; i < slot; ++i) {
      if (ws.alive(rel, i)) ++rank;
    }
    EXPECT_TRUE(ws.alive(rel, slot)) << "witness names a dead slot";
    ranks.push_back(rank);
  }
  return ranks;
}

/// The cursor-position invariant: watchers, the workspace sweep, and a
/// fresh interned database agree on every verdict and witness.
inline void CheckAgreement(const InternedWorkspace& ws,
                           IncrementalVerifier& verifier,
                           const std::vector<Dependency>& deps,
                           const std::vector<WatchId>& ids) {
  Database mat = ws.Materialize();
  for (std::size_t i = 0; i < deps.size(); ++i) {
    const Dependency& dep = deps[i];
    bool sweep = ws.Satisfies(dep);
    bool fresh = Satisfies(mat, dep);
    bool watched = verifier.Satisfies(ids[i]);
    ASSERT_EQ(sweep, fresh)
        << "surgically repaired partitions disagree with a fresh intern "
           "on " << dep.ToString(ws.scheme()) << "\n" << mat.ToString();
    ASSERT_EQ(watched, sweep)
        << "watcher disagrees with the sweep on "
        << dep.ToString(ws.scheme()) << "\n" << mat.ToString();

    std::optional<IdViolation> sv = ws.FindViolation(dep);
    std::optional<Violation> fv = FindViolation(mat, dep);
    ASSERT_EQ(sv.has_value(), fv.has_value()) << dep.ToString(ws.scheme());
    if (sv.has_value() && !sv->tuple_indices.empty()) {
      EXPECT_EQ(AliveRanks(ws, sv->rel, sv->tuple_indices),
                fv->tuple_indices)
          << "sweep witness over repaired partitions differs from the "
             "fresh-intern witness for " << dep.ToString(ws.scheme());
    }
    std::optional<IdViolation> wv = verifier.FindViolation(ids[i]);
    ASSERT_EQ(wv.has_value(), sv.has_value());
    if (wv.has_value()) {
      EXPECT_EQ(wv->rel, sv->rel);
      EXPECT_EQ(wv->tuple_indices, sv->tuple_indices);
    }
  }
}

/// Asserts two workspaces are *observably* equivalent: same materialized
/// database, same raw stored ids and alive flags per slot, and the same
/// retained feed windows. Deliberately does NOT compare the union-find
/// arrays or the partition-maintenance stats: a journal-replayed
/// workspace takes its own path-halving history (fewer Finds than the
/// live one ran), and its consumers compile partitions on their own
/// schedule — neither is observable through verdicts, witnesses, or
/// exports, which is the equivalence the snapshot layer promises.
inline void ExpectObservablyEquivalent(const InternedWorkspace& a,
                                       const InternedWorkspace& b) {
  ASSERT_EQ(a.scheme().size(), b.scheme().size());
  EXPECT_EQ(a.Materialize().ToString(), b.Materialize().ToString());
  for (RelId rel = 0; rel < a.scheme().size(); ++rel) {
    ASSERT_EQ(a.size(rel), b.size(rel)) << "slot count, rel " << rel;
    EXPECT_EQ(a.AliveTuples(rel), b.AliveTuples(rel));
    ASSERT_EQ(a.FeedBase(rel), b.FeedBase(rel)) << "feed horizon";
    ASSERT_EQ(a.EventCount(rel), b.EventCount(rel)) << "feed tip";
    for (std::uint64_t s = a.FeedBase(rel); s < a.EventCount(rel); ++s) {
      EXPECT_EQ(a.event(rel, s).kind, b.event(rel, s).kind);
      EXPECT_EQ(a.event(rel, s).idx, b.event(rel, s).idx);
    }
    for (std::uint32_t i = 0; i < a.size(rel); ++i) {
      ASSERT_EQ(a.alive(rel, i), b.alive(rel, i)) << "slot " << i;
      ASSERT_EQ(a.tuple(rel, i), b.tuple(rel, i))
          << "raw stored ids, rel " << rel << " slot " << i;
    }
  }
  // Mutation counters are part of the replayed history (unlike the
  // partition counters, which track each side's own query schedule).
  EXPECT_EQ(a.stats().tuples_appended, b.stats().tuples_appended);
  EXPECT_EQ(a.stats().tuples_killed, b.stats().tuples_killed);
  EXPECT_EQ(a.stats().value_merges, b.stats().value_merges);
  EXPECT_EQ(a.stats().values_interned, b.stats().values_interned);
}

}  // namespace testutil
}  // namespace ccfp

#endif  // CCFP_TESTS_TRACE_UTIL_H_
