// MVD implication via the dependency basis (Beeri; BFH axiomatization
// context of Section 5).
#include <gtest/gtest.h>

#include "core/satisfies.h"
#include "mvd/dependency_basis.h"
#include "util/rng.h"

namespace ccfp {
namespace {

class MvdTest : public ::testing::Test {
 protected:
  SchemePtr scheme_ = MakeScheme({{"R", {"A", "B", "C", "D"}}});

  Mvd M(const std::vector<std::string>& x,
        const std::vector<std::string>& y) {
    return MakeMvd(*scheme_, "R", x, y);
  }
};

TEST_F(MvdTest, BasisWithNoMvdsIsOneBlock) {
  Result<std::vector<std::vector<AttrId>>> basis =
      DependencyBasis(*scheme_, 0, {}, {0});
  ASSERT_TRUE(basis.ok());
  ASSERT_EQ(basis->size(), 1u);
  EXPECT_EQ((*basis)[0], (std::vector<AttrId>{1, 2, 3}));
}

TEST_F(MvdTest, BasisSplitsOnGivenMvd) {
  // A ->> B: basis of {A} is {B}, {C, D}.
  Result<std::vector<std::vector<AttrId>>> basis =
      DependencyBasis(*scheme_, 0, {M({"A"}, {"B"})}, {0});
  ASSERT_TRUE(basis.ok());
  ASSERT_EQ(basis->size(), 2u);
  EXPECT_EQ((*basis)[0], (std::vector<AttrId>{1}));
  EXPECT_EQ((*basis)[1], (std::vector<AttrId>{2, 3}));
}

TEST_F(MvdTest, ReflexivityAndTrivialMvds) {
  // X ->> Y with Y <= X is trivial; X u Y = R also trivial.
  EXPECT_TRUE(MvdImplies(*scheme_, {}, M({"A", "B"}, {"A"})).value());
  EXPECT_TRUE(
      MvdImplies(*scheme_, {}, M({"A", "B"}, {"C", "D"})).value());
  EXPECT_FALSE(MvdImplies(*scheme_, {}, M({"A"}, {"B"})).value());
}

TEST_F(MvdTest, Complementation) {
  // A ->> B implies A ->> CD (complement within R - A).
  std::vector<Mvd> sigma = {M({"A"}, {"B"})};
  EXPECT_TRUE(MvdImplies(*scheme_, sigma, M({"A"}, {"C", "D"})).value());
  // ... but not A ->> C alone.
  EXPECT_FALSE(MvdImplies(*scheme_, sigma, M({"A"}, {"C"})).value());
}

TEST_F(MvdTest, Augmentation) {
  // A ->> B implies AC ->> B.
  std::vector<Mvd> sigma = {M({"A"}, {"B"})};
  EXPECT_TRUE(MvdImplies(*scheme_, sigma, M({"A", "C"}, {"B"})).value());
}

TEST_F(MvdTest, Transitivity) {
  // A ->> B and B ->> C imply A ->> C - B = C.
  std::vector<Mvd> sigma = {M({"A"}, {"B"}), M({"B"}, {"C"})};
  EXPECT_TRUE(MvdImplies(*scheme_, sigma, M({"A"}, {"C"})).value());
  // The reverse direction is not implied.
  EXPECT_FALSE(MvdImplies(*scheme_, sigma, M({"C"}, {"A"})).value());
}

TEST_F(MvdTest, BasisBlocksPartitionTheComplement) {
  SplitMix64 rng(8080);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<Mvd> sigma;
    for (int i = 0; i < 3; ++i) {
      std::vector<AttrId> x, y;
      for (AttrId a = 0; a < 4; ++a) {
        if (rng.Chance(1, 3)) x.push_back(a);
        if (rng.Chance(1, 3)) y.push_back(a);
      }
      sigma.push_back(Mvd{0, x, y});
    }
    std::vector<AttrId> x;
    for (AttrId a = 0; a < 4; ++a) {
      if (rng.Chance(1, 2)) x.push_back(a);
    }
    Result<std::vector<std::vector<AttrId>>> basis =
        DependencyBasis(*scheme_, 0, sigma, x);
    ASSERT_TRUE(basis.ok());
    // Blocks are disjoint, nonempty, and cover exactly R - X.
    std::set<AttrId> seen;
    for (const auto& block : *basis) {
      ASSERT_FALSE(block.empty());
      for (AttrId a : block) {
        EXPECT_TRUE(seen.insert(a).second) << "blocks overlap";
        EXPECT_EQ(std::count(x.begin(), x.end(), a), 0)
            << "block contains an X attribute";
      }
    }
    EXPECT_EQ(seen.size() + x.size(), 4u);
  }
}

TEST_F(MvdTest, ImpliedMvdsHoldInSampledModels) {
  // Soundness against model checking: every sampled database satisfying
  // sigma satisfies each implied MVD.
  std::vector<Mvd> sigma = {M({"A"}, {"B"})};
  std::vector<Mvd> implied_candidates = {
      M({"A"}, {"C", "D"}), M({"A", "C"}, {"B"}), M({"A"}, {"B"})};
  std::vector<Mvd> refuted_candidates = {M({"B"}, {"A"}), M({"A"}, {"C"})};
  SplitMix64 rng(27182);
  int models = 0;
  for (int attempt = 0; attempt < 4000 && models < 10; ++attempt) {
    Database db(scheme_);
    int size = 1 + static_cast<int>(rng.Below(4));
    for (int i = 0; i < size; ++i) {
      db.Insert(0, TupleOfInts({static_cast<std::int64_t>(rng.Below(2)),
                                static_cast<std::int64_t>(rng.Below(2)),
                                static_cast<std::int64_t>(rng.Below(2)),
                                static_cast<std::int64_t>(rng.Below(2))}));
    }
    if (!Satisfies(db, sigma[0])) continue;
    ++models;
    for (const Mvd& mvd : implied_candidates) {
      ASSERT_TRUE(MvdImplies(*scheme_, sigma, mvd).value());
      EXPECT_TRUE(Satisfies(db, mvd)) << Dependency(mvd).ToString(*scheme_);
    }
  }
  EXPECT_GE(models, 5);
  // Refuted candidates really are refuted (by the engine; a concrete
  // countermodel exists but sampling need not hit it).
  for (const Mvd& mvd : refuted_candidates) {
    EXPECT_FALSE(MvdImplies(*scheme_, sigma, mvd).value());
  }
}

TEST_F(MvdTest, RejectsCrossRelationQueries) {
  SchemePtr two = MakeScheme({{"R", {"A", "B"}}, {"S", {"C", "D"}}});
  Mvd on_s = MakeMvd(*two, "S", {"C"}, {"D"});
  Mvd on_r = MakeMvd(*two, "R", {"A"}, {"B"});
  EXPECT_FALSE(MvdImplies(*two, {on_s}, on_r).ok());
}

}  // namespace
}  // namespace ccfp
