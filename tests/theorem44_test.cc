#include <gtest/gtest.h>

#include "constructions/theorem44.h"
#include "core/satisfies.h"
#include "interact/finite_vs_unrestricted.h"
#include "interact/unary_finite.h"

namespace ccfp {
namespace {

TEST(Theorem44Test, GadgetShape) {
  Theorem44Gadget g = MakeTheorem44Gadget();
  EXPECT_EQ(Dependency(g.fd).ToString(*g.scheme), "R: A -> B");
  EXPECT_EQ(Dependency(g.ind).ToString(*g.scheme), "R[A] <= R[B]");
  EXPECT_EQ(Dependency(g.ind_conclusion).ToString(*g.scheme),
            "R[B] <= R[A]");
  EXPECT_EQ(Dependency(g.fd_conclusion).ToString(*g.scheme), "R: B -> A");
}

TEST(Theorem44Test, EveryFigure41PrefixViolatesSigma) {
  // The infinite witness r = {(i+1, i)} obeys Sigma, but every finite
  // prefix violates the IND: the maximal A entry has no B counterpart.
  // This is the computational content of "only infinite counterexamples
  // exist".
  Theorem44Gadget g = MakeTheorem44Gadget();
  for (std::size_t n : {1u, 2u, 5u, 32u, 256u}) {
    Database prefix = Figure41Prefix(g, n);
    EXPECT_TRUE(Satisfies(prefix, g.fd)) << "n = " << n;
    EXPECT_FALSE(Satisfies(prefix, g.ind)) << "n = " << n;
  }
}

TEST(Theorem44Test, EveryFigure42PrefixViolatesSigma) {
  Theorem44Gadget g = MakeTheorem44Gadget();
  for (std::size_t n : {2u, 5u, 32u, 256u}) {
    Database prefix = Figure42Prefix(g, n);
    EXPECT_TRUE(Satisfies(prefix, g.fd)) << "n = " << n;
    EXPECT_FALSE(Satisfies(prefix, g.ind)) << "n = " << n;
  }
}

TEST(Theorem44Test, PrefixViolationIsExactlyAtTheBoundary) {
  // Removing the boundary tuple's obligation: prefix minus its maximal
  // A-tuple still violates (the new maximum takes over) — the violation
  // chases the boundary forever, which is why the limit relation obeys
  // Sigma.
  Theorem44Gadget g = MakeTheorem44Gadget();
  Database prefix = Figure41Prefix(g, 10);
  auto violation = FindViolation(prefix, Dependency(g.ind));
  ASSERT_TRUE(violation.has_value());
  // The witness must mention the maximal A entry, 10.
  EXPECT_NE(violation->description.find("10"), std::string::npos);
}

TEST(Theorem44Test, FiniteImplicationHoldsByCounting) {
  Theorem44Gadget g = MakeTheorem44Gadget();
  UnaryFiniteImplication engine(g.scheme, {g.fd}, {g.ind});
  EXPECT_TRUE(engine.Implies(g.ind_conclusion));
  EXPECT_TRUE(engine.Implies(g.fd_conclusion));
}

TEST(Theorem44Test, UnrestrictedImplicationFailsPerWitnessReports) {
  Theorem44Gadget g = MakeTheorem44Gadget();
  InfiniteWitnessReport fig41 = Figure41Witness();
  EXPECT_TRUE(fig41.obeys_fd);
  EXPECT_TRUE(fig41.obeys_ind);
  EXPECT_FALSE(fig41.obeys_ind_conclusion);
  EXPECT_FALSE(fig41.explanation.empty());

  InfiniteWitnessReport fig42 = Figure42Witness();
  EXPECT_TRUE(fig42.obeys_fd);
  EXPECT_TRUE(fig42.obeys_ind);
  EXPECT_TRUE(fig42.obeys_ind_conclusion);
  EXPECT_FALSE(fig42.obeys_fd_conclusion);
}

TEST(Theorem44Test, WitnessReportsMatchLargePrefixBehaviour) {
  // Consistency between the symbolic reports and finite evidence: on the
  // prefix, all claims *except* those broken only at the boundary match.
  Theorem44Gadget g = MakeTheorem44Gadget();
  Database prefix = Figure41Prefix(g, 128);
  // FD and FD-conclusion claims are boundary-free and must match exactly.
  EXPECT_EQ(Satisfies(prefix, g.fd), Figure41Witness().obeys_fd);
  EXPECT_EQ(Satisfies(prefix, g.fd_conclusion),
            Figure41Witness().obeys_fd_conclusion);
  // The IND-conclusion violation (0 not an A entry) is also visible in
  // every prefix.
  EXPECT_FALSE(Satisfies(prefix, g.ind_conclusion));
}

TEST(Theorem44Test, CompareImplicationTellsTheWholeStory) {
  Theorem44Gadget g = MakeTheorem44Gadget();
  FiniteVsUnrestricted verdict = CompareImplication(
      g.scheme, {g.fd}, {g.ind}, Dependency(g.ind_conclusion));
  EXPECT_EQ(verdict.finite, ImplicationVerdict::kImplied);
  EXPECT_EQ(verdict.unrestricted, ImplicationVerdict::kNotImplied);
  EXPECT_FALSE(verdict.finite_engine.empty());
  EXPECT_FALSE(verdict.unrestricted_engine.empty());
}

}  // namespace
}  // namespace ccfp
