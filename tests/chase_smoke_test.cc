// Perf smoke test (ctest -L smoke): the delta-driven chase engine must
// chew through a deep IND cascade in well under a second. The naive
// engine's restart loop is O(depth^2) on this shape; the incremental
// engine is O(total tuples), so a regression back to rescan-the-world
// behavior fails here fast instead of surfacing as a slow bench.
#include <chrono>
#include <gtest/gtest.h>

#include "bench/workloads.h"
#include "chase/chase.h"
#include "core/satisfies.h"

namespace ccfp {
namespace {

TEST(ChaseSmokeTest, DeepCascadeFinishesFast) {
  constexpr std::size_t kLevels = 96;
  constexpr std::size_t kWidth = 8;
  CascadeInstance instance = MakeDeepCascade(kLevels);
  Database seed = CascadeSeed(instance, kWidth);
  Chase chase(instance.scheme, instance.fds, instance.inds);
  ChaseOptions options;
  options.engine = ChaseEngine::kIncremental;

  auto start = std::chrono::steady_clock::now();
  Result<ChaseResult> result = chase.Run(seed, options);
  auto elapsed = std::chrono::steady_clock::now() - start;

  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->outcome, ChaseOutcome::kFixpoint);
  // R_0 keeps its seed (the shared-A pair merges B but still differs on
  // C); every deeper level holds the distinct [A, B] projections.
  EXPECT_EQ(result->db.relation(0).size(), kWidth + 2);
  for (RelId rel = 1; rel <= kLevels; ++rel) {
    EXPECT_EQ(result->db.relation(rel).size(), kWidth + 1);
  }
  EXPECT_GE(result->fd_merges, 1u);
  for (const Fd& fd : instance.fds) EXPECT_TRUE(Satisfies(result->db, fd));
  for (const Ind& ind : instance.inds) {
    EXPECT_TRUE(Satisfies(result->db, ind));
  }
  // The perf guard: this workload is ~1k tuples of delta work; a second is
  // three orders of magnitude of headroom on any machine we build on.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            1000)
      << "delta-driven chase regressed to rescan-the-world behavior";
}

TEST(ChaseSmokeTest, EnginesAgreeOnSmallCascade) {
  CascadeInstance instance = MakeDeepCascade(12);
  Database seed = CascadeSeed(instance, 4);
  Chase chase(instance.scheme, instance.fds, instance.inds);
  ChaseOptions options;
  options.engine = ChaseEngine::kIncremental;
  Result<ChaseResult> inc = chase.Run(seed, options);
  options.engine = ChaseEngine::kNaive;
  Result<ChaseResult> naive = chase.Run(seed, options);
  ASSERT_TRUE(inc.ok());
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ(inc->outcome, naive->outcome);
  EXPECT_EQ(inc->fd_merges, naive->fd_merges);
  EXPECT_EQ(inc->ind_tuples, naive->ind_tuples);
  EXPECT_TRUE(inc->db == naive->db);
}

}  // namespace
}  // namespace ccfp
