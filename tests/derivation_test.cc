// The MixedDerivation engine: sound forward chaining over Armstrong +
// IND1-3 + Propositions 4.1-4.3 — and its *provable* incompleteness on the
// Section 7 construction (the executable content of Theorem 7.1).
#include <gtest/gtest.h>

#include "chase/chase.h"
#include "constructions/section7.h"
#include "core/parser.h"
#include "core/satisfies.h"
#include "interact/derivation.h"
#include "util/rng.h"

namespace ccfp {
namespace {

class DerivationTest : public ::testing::Test {
 protected:
  SchemePtr scheme_ =
      MakeScheme({{"R", {"X", "Y", "Z"}}, {"S", {"T", "U", "V"}}});

  Dependency Dep(const std::string& text) {
    return ParseDependency(*scheme_, text).value();
  }
};

TEST_F(DerivationTest, DerivesHypothesesAndFdClosure) {
  MixedDerivation engine(scheme_, {Dep("R: X -> Y"), Dep("R: Y -> Z")});
  ASSERT_TRUE(engine.Saturate().ok());
  EXPECT_TRUE(engine.Derives(Dep("R: X -> Y")));
  EXPECT_TRUE(engine.Derives(Dep("R: X -> Z")));       // transitivity
  EXPECT_TRUE(engine.Derives(Dep("R: X, Z -> Y")));    // augmentation-ish
  EXPECT_FALSE(engine.Derives(Dep("R: Z -> X")));
}

TEST_F(DerivationTest, DerivesIndConsequences) {
  MixedDerivation engine(
      scheme_, {Dep("R[X, Y] <= S[T, U]"), Dep("S[T] <= S[V]")});
  ASSERT_TRUE(engine.Saturate().ok());
  EXPECT_TRUE(engine.Derives(Dep("R[X] <= S[T]")));  // IND2
  EXPECT_TRUE(engine.Derives(Dep("R[X] <= S[V]")));  // IND3
  EXPECT_FALSE(engine.Derives(Dep("S[T] <= R[X]")));
}

TEST_F(DerivationTest, DerivesProposition41Pullback) {
  MixedDerivation engine(
      scheme_, {Dep("R[X, Y] <= S[T, U]"), Dep("S: T -> U")});
  ASSERT_TRUE(engine.Saturate().ok());
  EXPECT_TRUE(engine.Derives(Dep("R: X -> Y")));
  EXPECT_FALSE(engine.Derives(Dep("R: Y -> X")));
  EXPECT_FALSE(engine.trace().empty());
}

TEST_F(DerivationTest, DerivesProposition42Collection) {
  MixedDerivation engine(scheme_,
                         {Dep("R[X, Y] <= S[T, U]"),
                          Dep("R[X, Z] <= S[T, V]"), Dep("S: T -> U")});
  ASSERT_TRUE(engine.Saturate().ok());
  EXPECT_TRUE(engine.Derives(Dep("R[X, Y, Z] <= S[T, U, V]")));
}

TEST_F(DerivationTest, DerivesProposition43Rd) {
  MixedDerivation engine(scheme_,
                         {Dep("R[X, Y] <= S[T, U]"),
                          Dep("R[X, Z] <= S[T, U]"), Dep("S: T -> U")});
  ASSERT_TRUE(engine.Saturate().ok());
  EXPECT_TRUE(engine.Derives(Dep("R[Y = Z]")));
  EXPECT_TRUE(engine.Derives(Dep("R[Z = Y]")));  // symmetric orientation
  EXPECT_TRUE(engine.Derives(Dep("R[X = X]")));  // trivial
  EXPECT_FALSE(engine.Derives(Dep("R[X = Y]")));
}

TEST_F(DerivationTest, NormalizationHandlesPermutedInds) {
  // The FD sits at non-prefix positions of the IND's rhs; the engine must
  // normalize via IND2 before applying the interaction rules.
  MixedDerivation engine(
      scheme_, {Dep("R[Z, X, Y] <= S[V, T, U]"), Dep("S: T -> U")});
  ASSERT_TRUE(engine.Saturate().ok());
  EXPECT_TRUE(engine.Derives(Dep("R: X -> Y")));
}

TEST_F(DerivationTest, ChainsInteractionsAcrossRounds) {
  // Pullback produces an FD on R; a second pullback through an IND into R
  // uses it. T -> U on S pulls back through Q[?, ?] <= R[?, ?]...
  SchemePtr scheme = MakeScheme({{"Q", {"E", "F"}},
                                 {"R", {"X", "Y"}},
                                 {"S", {"T", "U"}}});
  auto dep = [&](const std::string& text) {
    return ParseDependency(*scheme, text).value();
  };
  MixedDerivation engine(scheme, {dep("Q[E, F] <= R[X, Y]"),
                                  dep("R[X, Y] <= S[T, U]"),
                                  dep("S: T -> U")});
  ASSERT_TRUE(engine.Saturate().ok());
  EXPECT_TRUE(engine.Derives(dep("R: X -> Y")));  // round 1
  EXPECT_TRUE(engine.Derives(dep("Q: E -> F")));  // round 2 (via derived FD)
}

TEST_F(DerivationTest, SoundnessAgainstChaseOnDerivedFacts) {
  MixedDerivation engine(scheme_,
                         {Dep("R[X, Y] <= S[T, U]"),
                          Dep("R[X, Z] <= S[T, V]"), Dep("S: T -> U"),
                          Dep("S: U -> V")});
  ASSERT_TRUE(engine.Saturate().ok());
  std::vector<Fd> fds = {MakeFd(*scheme_, "S", {"T"}, {"U"}),
                         MakeFd(*scheme_, "S", {"U"}, {"V"})};
  std::vector<Ind> inds = {
      MakeInd(*scheme_, "R", {"X", "Y"}, "S", {"T", "U"}),
      MakeInd(*scheme_, "R", {"X", "Z"}, "S", {"T", "V"})};
  // Every interaction-rule conclusion in the trace must be chase-implied.
  for (const MixedDerivation::Step& step : engine.trace()) {
    Result<bool> implied =
        ChaseImplies(scheme_, fds, inds, step.conclusion);
    ASSERT_TRUE(implied.ok()) << step.ToString(*scheme_);
    EXPECT_TRUE(*implied) << "unsound: " << step.ToString(*scheme_);
  }
}

TEST_F(DerivationTest, IncompleteOnSection7ByTheorem71) {
  // Theorem 7.1 made concrete: the chase proves Sigma |= F: A -> C, but
  // this (or any) fixed finite rule arsenal cannot derive it. The Section 7
  // construction was engineered so that every bounded-antecedent rule
  // misses the global interaction.
  for (std::size_t n : {1u, 2u, 3u}) {
    Section7Construction c = MakeSection7(n);
    Result<bool> chase_implied =
        ChaseImplies(c.scheme, c.fds, c.inds, Dependency(c.sigma));
    ASSERT_TRUE(chase_implied.ok());
    ASSERT_TRUE(*chase_implied);

    MixedDerivation engine(c.scheme, c.SigmaDeps());
    ASSERT_TRUE(engine.Saturate().ok());
    EXPECT_FALSE(engine.Derives(Dependency(c.sigma)))
        << "n = " << n
        << ": the finite arsenal unexpectedly derived sigma — Theorem 7.1 "
           "says a derivation must use unboundedly many premises";
  }
}

TEST_F(DerivationTest, ArsenalReachesExactlyPhiMinusSigmaOnSection7) {
  // Lemma 7.3's mechanics: every member of phi EXCEPT sigma = F: A -> C
  // follows by chained Proposition 4.1 pullbacks (e.g. H_n: B -> C from
  // gamma_n and eps_n; then H_n: B -> D with theta_n; then F: B -> C
  // through beta_n). Only sigma itself needs the unbounded global argument
  // — exactly the boundary Theorem 7.1 draws.
  for (std::size_t n : {1u, 2u}) {
    Section7Construction c = MakeSection7(n);
    MixedDerivation engine(c.scheme, c.SigmaDeps());
    ASSERT_TRUE(engine.Saturate().ok());
    for (const Fd& fd : c.phi) {
      if (fd == c.sigma) {
        EXPECT_FALSE(engine.Derives(Dependency(fd)))
            << "n = " << n << ": " << Dependency(fd).ToString(*c.scheme);
      } else {
        EXPECT_TRUE(engine.Derives(Dependency(fd)))
            << "n = " << n << ": " << Dependency(fd).ToString(*c.scheme);
      }
    }
  }
}

TEST_F(DerivationTest, RejectsEmvdHypotheses) {
  MixedDerivation engine(scheme_, {Dep("R: X ->> Y | Z")});
  Status status = engine.Saturate();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kUnimplemented);
}

TEST_F(DerivationTest, TraceStepsAreWellFormed) {
  MixedDerivation engine(
      scheme_, {Dep("R[X, Y] <= S[T, U]"), Dep("S: T -> U")});
  ASSERT_TRUE(engine.Saturate().ok());
  for (const MixedDerivation::Step& step : engine.trace()) {
    EXPECT_TRUE(Validate(*scheme_, step.conclusion).ok());
    EXPECT_FALSE(step.rule.empty());
    EXPECT_FALSE(step.ToString(*scheme_).empty());
  }
}

}  // namespace
}  // namespace ccfp
