#include <algorithm>
#include <gtest/gtest.h>

#include "core/satisfies.h"
#include "fd/armstrong_rules.h"
#include "fd/closure.h"
#include "fd/keys.h"
#include "fd/minimal_cover.h"
#include "util/rng.h"

namespace ccfp {
namespace {

class FdTest : public ::testing::Test {
 protected:
  SchemePtr scheme_ = MakeScheme({{"R", {"A", "B", "C", "D", "E"}}});

  Fd F(const std::vector<std::string>& lhs,
       const std::vector<std::string>& rhs) {
    return MakeFd(*scheme_, "R", lhs, rhs);
  }
};

TEST_F(FdTest, ClosureTextbookExample) {
  // A -> B, B -> C: closure(A) = {A, B, C}.
  std::vector<Fd> sigma = {F({"A"}, {"B"}), F({"B"}, {"C"})};
  FdClosure closure(*scheme_, 0, sigma);
  std::vector<AttrId> result = closure.Closure({0});
  EXPECT_EQ(result, (std::vector<AttrId>{0, 1, 2}));
}

TEST_F(FdTest, ClosureWithCompositeLhs) {
  // AB -> C, C -> D; closure(A) = {A}; closure(AB) = {A,B,C,D}.
  std::vector<Fd> sigma = {F({"A", "B"}, {"C"}), F({"C"}, {"D"})};
  FdClosure closure(*scheme_, 0, sigma);
  EXPECT_EQ(closure.Closure({0}), (std::vector<AttrId>{0}));
  EXPECT_EQ(closure.Closure({0, 1}), (std::vector<AttrId>{0, 1, 2, 3}));
}

TEST_F(FdTest, EmptyLhsFdsFireUnconditionally) {
  // {} -> A, A -> B: closure({}) = {A, B}.
  std::vector<Fd> sigma = {F({}, {"A"}), F({"A"}, {"B"})};
  FdClosure closure(*scheme_, 0, sigma);
  EXPECT_EQ(closure.Closure({}), (std::vector<AttrId>{0, 1}));
}

TEST_F(FdTest, ImpliesDecomposesAndAugments) {
  std::vector<Fd> sigma = {F({"A"}, {"B", "C"})};
  EXPECT_TRUE(FdImplies(*scheme_, sigma, F({"A"}, {"B"})));
  EXPECT_TRUE(FdImplies(*scheme_, sigma, F({"A", "D"}, {"B", "D"})));
  EXPECT_FALSE(FdImplies(*scheme_, sigma, F({"B"}, {"A"})));
  EXPECT_TRUE(FdImplies(*scheme_, sigma, F({"A"}, {"A"})));  // trivial
}

TEST_F(FdTest, ImpliesIgnoresOtherRelations) {
  SchemePtr two = MakeScheme({{"R", {"A", "B"}}, {"S", {"A", "B"}}});
  std::vector<Fd> sigma = {MakeFd(*two, "S", {"A"}, {"B"})};
  EXPECT_FALSE(FdImplies(*two, sigma, MakeFd(*two, "R", {"A"}, {"B"})));
}

TEST_F(FdTest, ClosureMonotoneIdempotentExtensive) {
  SplitMix64 rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Fd> sigma;
    for (int i = 0; i < 6; ++i) {
      std::vector<AttrId> lhs, rhs;
      for (AttrId a = 0; a < 5; ++a) {
        if (rng.Chance(1, 3)) lhs.push_back(a);
        if (rng.Chance(1, 3)) rhs.push_back(a);
      }
      sigma.push_back(Fd{0, lhs, rhs});
    }
    FdClosure closure(*scheme_, 0, sigma);
    std::vector<AttrId> start;
    for (AttrId a = 0; a < 5; ++a) {
      if (rng.Chance(1, 2)) start.push_back(a);
    }
    std::vector<AttrId> once = closure.Closure(start);
    // Extensive: start <= closure(start).
    for (AttrId a : start) {
      EXPECT_TRUE(std::binary_search(once.begin(), once.end(), a));
    }
    // Idempotent: closure(closure(start)) == closure(start).
    EXPECT_EQ(closure.Closure(once), once);
    // Monotone: closure(start u {x}) includes closure(start).
    std::vector<AttrId> bigger = start;
    AttrId extra = static_cast<AttrId>(rng.Below(5));
    if (std::find(bigger.begin(), bigger.end(), extra) == bigger.end()) {
      bigger.push_back(extra);
    }
    std::vector<AttrId> bigger_closure = closure.Closure(bigger);
    for (AttrId a : once) {
      EXPECT_TRUE(std::binary_search(bigger_closure.begin(),
                                     bigger_closure.end(), a));
    }
  }
}

// --- Armstrong proofs -----------------------------------------------------

TEST_F(FdTest, DeriveProofForTransitivityChain) {
  std::vector<Fd> sigma = {F({"A"}, {"B"}), F({"B"}, {"C"}),
                           F({"C"}, {"D"})};
  Result<FdProof> proof = DeriveFdProof(scheme_, sigma, F({"A"}, {"D"}));
  ASSERT_TRUE(proof.ok()) << proof.status();
  EXPECT_TRUE(proof->Check().ok()) << proof->Check();
  EXPECT_EQ(proof->conclusion(), F({"A"}, {"D"}));
  EXPECT_FALSE(proof->ToString().empty());
}

TEST_F(FdTest, DeriveProofFailsOnNonConsequence) {
  std::vector<Fd> sigma = {F({"A"}, {"B"})};
  Result<FdProof> proof = DeriveFdProof(scheme_, sigma, F({"B"}, {"A"}));
  EXPECT_FALSE(proof.ok());
}

TEST_F(FdTest, ProofCheckerRejectsMutations) {
  std::vector<Fd> sigma = {F({"A"}, {"B"}), F({"B"}, {"C"})};
  Result<FdProof> proof = DeriveFdProof(scheme_, sigma, F({"A"}, {"C"}));
  ASSERT_TRUE(proof.ok());

  // Mutate: claim a hypothesis that is not in sigma.
  FdProof forged(scheme_, sigma);
  forged.AddStep({F({"C"}, {"A"}), FdRule::kHypothesis, {}});
  EXPECT_FALSE(forged.Check().ok());

  // Mutate: bogus reflexivity.
  FdProof bogus(scheme_, sigma);
  bogus.AddStep({F({"A"}, {"B"}), FdRule::kReflexivity, {}});
  EXPECT_FALSE(bogus.Check().ok());

  // Mutate: transitivity with mismatched middle.
  FdProof mismatched(scheme_, sigma);
  mismatched.AddStep({F({"A"}, {"B"}), FdRule::kHypothesis, {}});
  mismatched.AddStep({F({"C"}, {"D"}), FdRule::kHypothesis, {}});
  EXPECT_FALSE(mismatched.Check().ok());  // second step not a hypothesis
}

TEST_F(FdTest, ProofCheckerRejectsForwardReferences) {
  FdProof proof(scheme_, {F({"A"}, {"B"})});
  proof.AddStep({F({"A"}, {"B"}), FdRule::kDecomposition, {0}});
  EXPECT_FALSE(proof.Check().ok());
}

TEST_F(FdTest, DerivedProofsSoundOnRandomInstances) {
  SplitMix64 rng(4242);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<Fd> sigma;
    for (int i = 0; i < 5; ++i) {
      std::vector<AttrId> lhs, rhs;
      for (AttrId a = 0; a < 5; ++a) {
        if (rng.Chance(1, 3)) lhs.push_back(a);
        if (rng.Chance(1, 4)) rhs.push_back(a);
      }
      sigma.push_back(Fd{0, lhs, rhs});
    }
    std::vector<AttrId> lhs;
    for (AttrId a = 0; a < 5; ++a) {
      if (rng.Chance(1, 2)) lhs.push_back(a);
    }
    FdClosure closure(*scheme_, 0, sigma);
    std::vector<AttrId> target_rhs = closure.Closure(lhs);
    Fd target{0, lhs, target_rhs};
    Result<FdProof> proof = DeriveFdProof(scheme_, sigma, target);
    ASSERT_TRUE(proof.ok()) << proof.status();
    EXPECT_TRUE(proof->Check().ok());
  }
}

// --- Minimal cover -----------------------------------------------------

TEST_F(FdTest, MinimalCoverSplitsAndPrunes) {
  std::vector<Fd> sigma = {F({"A"}, {"B", "C"}), F({"B"}, {"C"}),
                           F({"A"}, {"C"})};  // A -> C is redundant
  std::vector<Fd> cover = MinimalCover(*scheme_, sigma);
  EXPECT_TRUE(EquivalentFdSets(*scheme_, sigma, cover));
  for (const Fd& fd : cover) EXPECT_EQ(fd.rhs.size(), 1u);
  // A -> C must have been dropped: cover = {A -> B, B -> C}.
  EXPECT_EQ(cover.size(), 2u);
}

TEST_F(FdTest, MinimalCoverLeftReduces) {
  // AB -> C with A -> B: A alone determines C.
  std::vector<Fd> sigma = {F({"A", "B"}, {"C"}), F({"A"}, {"B"})};
  std::vector<Fd> cover = MinimalCover(*scheme_, sigma);
  EXPECT_TRUE(EquivalentFdSets(*scheme_, sigma, cover));
  for (const Fd& fd : cover) {
    if (fd.rhs == std::vector<AttrId>{2}) {
      EXPECT_EQ(fd.lhs.size(), 1u) << "lhs not reduced";
    }
  }
}

TEST_F(FdTest, MinimalCoverOfRandomSetsIsEquivalent) {
  SplitMix64 rng(777);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<Fd> sigma;
    for (int i = 0; i < 6; ++i) {
      std::vector<AttrId> lhs, rhs;
      for (AttrId a = 0; a < 5; ++a) {
        if (rng.Chance(1, 3)) lhs.push_back(a);
        if (rng.Chance(1, 3)) rhs.push_back(a);
      }
      if (rhs.empty()) rhs.push_back(static_cast<AttrId>(rng.Below(5)));
      sigma.push_back(Fd{0, lhs, rhs});
    }
    std::vector<Fd> cover = MinimalCover(*scheme_, sigma);
    EXPECT_TRUE(EquivalentFdSets(*scheme_, sigma, cover));
  }
}

// --- Keys ------------------------------------------------------------------

TEST_F(FdTest, CandidateKeysSimple) {
  // A -> BCDE: A is the unique key.
  std::vector<Fd> sigma = {F({"A"}, {"B", "C", "D", "E"})};
  auto keys = CandidateKeys(*scheme_, 0, sigma);
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], (std::vector<AttrId>{0}));
}

TEST_F(FdTest, CandidateKeysCycle) {
  // A -> B, B -> A, AB determine nothing else: keys need C, D, E too.
  // Use a 3-attribute scheme for clarity: A <-> B, key must contain C.
  SchemePtr small = MakeScheme({{"T", {"A", "B", "C"}}});
  std::vector<Fd> sigma = {MakeFd(*small, "T", {"A"}, {"B"}),
                           MakeFd(*small, "T", {"B"}, {"A"})};
  auto keys = CandidateKeys(*small, 0, sigma);
  // Keys: {A, C} and {B, C}.
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], (std::vector<AttrId>{0, 2}));
  EXPECT_EQ(keys[1], (std::vector<AttrId>{1, 2}));
}

TEST_F(FdTest, IsSuperkey) {
  std::vector<Fd> sigma = {F({"A"}, {"B", "C"}), F({"B", "C"}, {"D", "E"})};
  EXPECT_TRUE(IsSuperkey(*scheme_, 0, sigma, {0}));
  EXPECT_FALSE(IsSuperkey(*scheme_, 0, sigma, {1}));
  EXPECT_TRUE(IsSuperkey(*scheme_, 0, sigma, {0, 1}));
}

TEST_F(FdTest, KeysAreMinimalAndDetermineEverything) {
  SplitMix64 rng(31415);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Fd> sigma;
    for (int i = 0; i < 5; ++i) {
      std::vector<AttrId> lhs, rhs;
      for (AttrId a = 0; a < 5; ++a) {
        if (rng.Chance(1, 3)) lhs.push_back(a);
        if (rng.Chance(1, 3)) rhs.push_back(a);
      }
      sigma.push_back(Fd{0, lhs, rhs});
    }
    for (const auto& key : CandidateKeys(*scheme_, 0, sigma)) {
      EXPECT_TRUE(IsSuperkey(*scheme_, 0, sigma, key));
      for (std::size_t i = 0; i < key.size(); ++i) {
        std::vector<AttrId> smaller = key;
        smaller.erase(smaller.begin() + static_cast<std::ptrdiff_t>(i));
        EXPECT_FALSE(IsSuperkey(*scheme_, 0, sigma, smaller))
            << "key not minimal";
      }
    }
  }
}

// Cross-check: FD implication agrees with model checking on small random
// databases (soundness of the closure engine).
TEST_F(FdTest, ImpliedFdsHoldInRandomModelsOfSigma) {
  SplitMix64 rng(2718);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<Fd> sigma = {F({"A"}, {"B"}), F({"B", "C"}, {"D"})};
    // Random database; keep only if it satisfies sigma.
    Database db(scheme_);
    for (int i = 0; i < 6; ++i) {
      Tuple t;
      for (int a = 0; a < 5; ++a) {
        t.push_back(Value::Int(static_cast<std::int64_t>(rng.Below(2))));
      }
      db.Insert(0, std::move(t));
    }
    bool model = true;
    for (const Fd& fd : sigma) model = model && Satisfies(db, fd);
    if (!model) continue;
    // Every implied FD must hold in the model.
    for (const Fd& candidate :
         {F({"A", "C"}, {"D"}), F({"A"}, {"A", "B"}), F({"A", "C"}, {"B"})}) {
      if (FdImplies(*scheme_, sigma, candidate)) {
        EXPECT_TRUE(Satisfies(db, candidate))
            << Dependency(candidate).ToString(*scheme_);
      }
    }
  }
}

}  // namespace
}  // namespace ccfp
