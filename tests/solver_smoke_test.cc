// Perf smoke tests (ctest -L smoke) for the ImplicationSolver façade:
// fragment routing must stay cheap — a batch of queries against each
// fragment's native engine has to finish well under a second. A
// regression here means the façade started paying for engines the
// fragment does not need (e.g. running the chase on pure-FD queries) or
// rebuilding per-query state that should persist across Solve calls.
#include <chrono>
#include <gtest/gtest.h>

#include "solve/solver.h"
#include "util/strings.h"

namespace ccfp {
namespace {

std::int64_t MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

TEST(SolverSmokeTest, PureFragmentBatchesFinishFast) {
  // One scheme per fragment, 200 queries each.
  constexpr int kQueries = 200;

  // Pure FD: a 64-attribute chain A0 -> A1 -> ... -> A63.
  std::vector<std::string> attrs;
  for (int a = 0; a < 64; ++a) attrs.push_back(StrCat("A", a));
  SchemePtr fd_scheme = MakeScheme({{"R", attrs}});
  std::vector<Dependency> fd_sigma;
  for (AttrId a = 0; a + 1 < 64; ++a) {
    fd_sigma.push_back(Dependency(Fd{0, {a}, {static_cast<AttrId>(a + 1)}}));
  }
  // Pure IND: a 64-relation chain R0[A,B] <= R1[A,B] <= ...
  std::vector<std::pair<std::string, std::vector<std::string>>> rels;
  for (int r = 0; r < 64; ++r) {
    rels.emplace_back(StrCat("R", r), std::vector<std::string>{"A", "B"});
  }
  SchemePtr ind_scheme = MakeScheme(rels);
  std::vector<Dependency> ind_sigma;
  for (RelId r = 0; r + 1 < 64; ++r) {
    ind_sigma.push_back(Dependency(
        Ind{r, {0, 1}, static_cast<RelId>(r + 1), {0, 1}}));
  }

  auto start = std::chrono::steady_clock::now();
  ImplicationSolver fd_solver(fd_scheme, fd_sigma);
  for (int q = 0; q < kQueries; ++q) {
    Fd target{0, {static_cast<AttrId>(q % 32)},
              {static_cast<AttrId>(32 + q % 32)}};
    Verdict v = fd_solver.Solve(Dependency(target)).value();
    ASSERT_NE(v.outcome, ImplicationVerdict::kUnknown);
    ASSERT_EQ(v.fragment, ImplicationFragment::kPureFd);
  }
  std::int64_t fd_ms = MsSince(start);

  start = std::chrono::steady_clock::now();
  ImplicationSolver ind_solver(ind_scheme, ind_sigma);
  for (int q = 0; q < kQueries; ++q) {
    Ind target{static_cast<RelId>(q % 32), {0, 1},
               static_cast<RelId>(32 + q % 32), {0, 1}};
    Verdict v = ind_solver.Solve(Dependency(target)).value();
    ASSERT_NE(v.outcome, ImplicationVerdict::kUnknown);
    ASSERT_EQ(v.fragment, ImplicationFragment::kPureInd);
  }
  std::int64_t ind_ms = MsSince(start);

  EXPECT_LT(fd_ms, 1000) << "pure-FD routing regressed";
  EXPECT_LT(ind_ms, 1000) << "pure-IND routing regressed";
}

TEST(SolverSmokeTest, MixedPipelineBatchFinishesFast) {
  // The Proposition 4.1 shape: derivable in the first stage, so the
  // pipeline must never reach the chase or the search.
  SchemePtr scheme = MakeScheme({{"R", {"X", "Y"}}, {"S", {"T", "U"}}});
  std::vector<Dependency> sigma = {
      Dependency(Ind{0, {0, 1}, 1, {0, 1}}),
      Dependency(Fd{1, {0}, {1}}),
  };
  ImplicationSolver solver(scheme, sigma);
  auto start = std::chrono::steady_clock::now();
  for (int q = 0; q < 200; ++q) {
    Verdict v = solver.Solve(Dependency(Fd{0, {0}, {1}})).value();
    ASSERT_TRUE(v.implied());
    ASSERT_EQ(v.stages.size(), 1u) << "pipeline ran past the derivation";
  }
  std::int64_t ms = MsSince(start);
  EXPECT_LT(ms, 1000) << "mixed-derivable pipeline regressed";
}

TEST(SolverSmokeTest, RefutationSearchReusesCompiledTables) {
  // An EMVD hypothesis routes to the refutation-only path, so every query
  // runs a bounded search. 50 queries over one scheme share the solver's
  // BoundedSearchWorkspace (compiled key tables) and must stay well under
  // a second.
  SchemePtr scheme = MakeScheme({{"R", {"A", "B", "C"}}});
  std::vector<Dependency> sigma = {
      Dependency(Emvd{0, {0}, {1}, {2}}),
  };
  ImplicationSolver solver(scheme, sigma);
  auto start = std::chrono::steady_clock::now();
  for (int q = 0; q < 50; ++q) {
    // The EMVD does not imply R: A -> B; a two-tuple counterexample
    // exists within the default search shape, so this is decisive.
    Verdict v = solver.Solve(Dependency(Fd{0, {0}, {1}})).value();
    ASSERT_EQ(v.outcome, ImplicationVerdict::kNotImplied);
    ASSERT_EQ(v.fragment, ImplicationFragment::kUnsupported);
  }
  std::int64_t ms = MsSince(start);
  EXPECT_LT(ms, 1000) << "refutation path regressed";
}

}  // namespace
}  // namespace ccfp
