// Verdict-consistency properties of the ImplicationSolver façade:
//   (a) on each fragment's native instances the solver agrees with the
//       legacy entry point for that fragment (FdImplies, the IND BFS, the
//       unary engines, ChaseImplies);
//   (b) monotonicity — a decisive verdict (kImplied / kNotImplied) never
//       flips under a larger Budget; only kUnknown may resolve;
//   (c) every attached counterexample is genuine (re-checked with the
//       legacy Value-hashing model checker).
#include <gtest/gtest.h>

#include "chase/chase.h"
#include "core/satisfies.h"
#include "fd/closure.h"
#include "ind/implication.h"
#include "interact/unary_finite.h"
#include "solve/solver.h"
#include "util/rng.h"

namespace ccfp {
namespace {

void ExpectCounterexampleGenuine(const Verdict& v,
                                 const std::vector<Dependency>& sigma,
                                 const Dependency& target,
                                 const DatabaseScheme& scheme) {
  if (!v.counterexample.has_value()) return;
  SatisfiesOptions legacy{SatisfiesEngine::kLegacy};
  for (const Dependency& dep : sigma) {
    if (IsTrivial(scheme, dep)) continue;
    EXPECT_TRUE(Satisfies(*v.counterexample, dep, legacy))
        << "counterexample violates sigma member "
        << dep.ToString(scheme);
  }
  EXPECT_FALSE(Satisfies(*v.counterexample, target, legacy))
      << "counterexample satisfies the target "
      << target.ToString(scheme);
}

/// Monotonicity: solve under a tiny budget and under the default budget;
/// a decisive tiny-budget verdict must be preserved.
void ExpectMonotone(ImplicationSolver& solver, const Dependency& target,
                    const DatabaseScheme& scheme) {
  Result<Verdict> small = solver.Solve(target, Budget::Tiny());
  Result<Verdict> large = solver.Solve(target, Budget());
  ASSERT_TRUE(small.ok()) << small.status();
  ASSERT_TRUE(large.ok()) << large.status();
  if (small->outcome != ImplicationVerdict::kUnknown) {
    EXPECT_EQ(small->outcome, large->outcome)
        << "verdict flipped under a larger budget for "
        << target.ToString(scheme);
  }
}

class SolverPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

// --- (a) pure-FD agreement with FdImplies -------------------------------

TEST_P(SolverPropertyTest, PureFdAgreesWithClosure) {
  SplitMix64 rng(GetParam() * 77 + 5);
  SchemePtr scheme = MakeScheme({{"R", {"A", "B", "C", "D"}}});
  std::vector<Fd> fds;
  std::vector<Dependency> sigma;
  for (int i = 0; i < 4; ++i) {
    AttrId x = static_cast<AttrId>(rng.Below(4));
    AttrId y = static_cast<AttrId>(rng.Below(4));
    if (x == y) continue;
    Fd fd{0, {x}, {y}};
    if (rng.Chance(1, 3)) fd.lhs.push_back(static_cast<AttrId>((y + 1) % 4));
    if (fd.lhs.size() == 2 && fd.lhs[0] == fd.lhs[1]) fd.lhs.pop_back();
    fds.push_back(fd);
    sigma.push_back(Dependency(fd));
  }
  ImplicationSolver solver(scheme, sigma);
  for (int t = 0; t < 6; ++t) {
    AttrId x = static_cast<AttrId>(rng.Below(4));
    AttrId y = static_cast<AttrId>(rng.Below(4));
    if (x == y) continue;
    Fd target{0, {x}, {y}};
    Verdict v = solver.Solve(Dependency(target)).value();
    EXPECT_EQ(v.implied(), FdImplies(*scheme, fds, target))
        << Dependency(target).ToString(*scheme);
    EXPECT_NE(v.outcome, ImplicationVerdict::kUnknown);
    ExpectCounterexampleGenuine(v, sigma, Dependency(target), *scheme);
    ExpectMonotone(solver, Dependency(target), *scheme);
  }
}

// --- (a) pure-IND agreement with the Corollary 3.2 BFS ------------------

TEST_P(SolverPropertyTest, PureIndAgreesWithBfs) {
  SplitMix64 rng(GetParam() * 131 + 7);
  std::size_t relations = 3;
  std::vector<std::pair<std::string, std::vector<std::string>>> rels;
  for (std::size_t r = 0; r < relations; ++r) {
    rels.emplace_back("R" + std::to_string(r),
                      std::vector<std::string>{"A", "B", "C"});
  }
  SchemePtr scheme = MakeScheme(rels);
  std::vector<Ind> inds;
  std::vector<Dependency> sigma;
  std::size_t count = 2 + rng.Below(3);
  for (std::size_t i = 0; i < count; ++i) {
    RelId r1 = static_cast<RelId>(rng.Below(relations));
    RelId r2 = static_cast<RelId>(rng.Below(relations));
    std::size_t width = 1 + rng.Below(2);
    std::vector<AttrId> all = {0, 1, 2};
    std::swap(all[rng.Below(3)], all[2]);
    std::vector<AttrId> lhs(all.begin(), all.begin() + width);
    std::swap(all[rng.Below(3)], all[2]);
    std::vector<AttrId> rhs(all.begin(), all.begin() + width);
    inds.push_back(Ind{r1, lhs, r2, rhs});
    sigma.push_back(Dependency(inds.back()));
  }
  ImplicationSolver solver(scheme, sigma);
  IndImplication engine(scheme, inds);
  for (int t = 0; t < 5; ++t) {
    RelId r1 = static_cast<RelId>(rng.Below(relations));
    RelId r2 = static_cast<RelId>(rng.Below(relations));
    AttrId a = static_cast<AttrId>(rng.Below(3));
    AttrId b = static_cast<AttrId>(rng.Below(3));
    Ind target{r1, {a}, r2, {b}};
    if (!Validate(*scheme, target).ok()) continue;
    Verdict v = solver.Solve(Dependency(target)).value();
    Result<bool> via_bfs = engine.Implies(target);
    ASSERT_TRUE(via_bfs.ok()) << via_bfs.status();
    EXPECT_NE(v.outcome, ImplicationVerdict::kUnknown);
    EXPECT_EQ(v.implied(), *via_bfs)
        << Dependency(target).ToString(*scheme);
    ExpectCounterexampleGenuine(v, sigma, Dependency(target), *scheme);
    ExpectMonotone(solver, Dependency(target), *scheme);
  }
}

// --- (a) unary agreement with both unary engines ------------------------

TEST_P(SolverPropertyTest, UnaryAgreesWithBothSemantics) {
  SplitMix64 rng(GetParam() * 17 + 29);
  SchemePtr scheme = MakeScheme({{"R", {"A", "B"}}, {"S", {"C", "D"}}});
  std::vector<Fd> fds;
  std::vector<Ind> inds;
  std::vector<Dependency> sigma;
  for (int i = 0; i < 4; ++i) {
    if (rng.Chance(1, 2)) {
      RelId rel = static_cast<RelId>(rng.Below(2));
      AttrId x = static_cast<AttrId>(rng.Below(2));
      Fd fd{rel, {x}, {static_cast<AttrId>(1 - x)}};
      fds.push_back(fd);
      sigma.push_back(Dependency(fd));
    } else {
      RelId r1 = static_cast<RelId>(rng.Below(2));
      RelId r2 = static_cast<RelId>(rng.Below(2));
      Ind ind{r1,
              {static_cast<AttrId>(rng.Below(2))},
              r2,
              {static_cast<AttrId>(rng.Below(2))}};
      if (!Validate(*scheme, ind).ok() || IsTrivial(ind)) continue;
      inds.push_back(ind);
      sigma.push_back(Dependency(ind));
    }
  }
  if (fds.empty() || inds.empty()) return;  // pure fragments covered above
  UnaryFiniteImplication finite(scheme, fds, inds);
  UnaryUnrestrictedImplication unrestricted(scheme, fds, inds);
  SolveOptions finite_opts;
  finite_opts.semantics = ImplicationSemantics::kFinite;
  ImplicationSolver finite_solver(scheme, sigma, finite_opts);
  ImplicationSolver unrestricted_solver(scheme, sigma);
  for (int t = 0; t < 6; ++t) {
    RelId rel = static_cast<RelId>(rng.Below(2));
    AttrId x = static_cast<AttrId>(rng.Below(2));
    Dependency target =
        rng.Chance(1, 2)
            ? Dependency(Fd{rel, {x}, {static_cast<AttrId>(1 - x)}})
            : Dependency(Ind{rel,
                             {x},
                             static_cast<RelId>(rng.Below(2)),
                             {static_cast<AttrId>(rng.Below(2))}});
    if (!Validate(*scheme, target).ok()) continue;
    if (ClassifyImplicationFragment(*scheme, sigma, target) !=
        ImplicationFragment::kUnary) {
      continue;  // e.g. trivial-after-filter sigma demotes to pure
    }
    Verdict vf = finite_solver.Solve(target).value();
    Verdict vu = unrestricted_solver.Solve(target).value();
    EXPECT_EQ(vf.implied(), finite.Implies(target))
        << target.ToString(*scheme);
    EXPECT_EQ(vu.implied(), unrestricted.Implies(target))
        << target.ToString(*scheme);
    ExpectCounterexampleGenuine(vu, sigma, target, *scheme);
    ExpectMonotone(unrestricted_solver, target, *scheme);
  }
}

// --- (a) mixed agreement with ChaseImplies on acyclic instances ---------

TEST_P(SolverPropertyTest, MixedAgreesWithChaseOnAcyclic) {
  SplitMix64 rng(GetParam() * 313 + 11);
  // Acyclic IND graph (forward edges only): the chase terminates, so the
  // legacy semi-decision is exact and the solver must match it.
  std::size_t relations = 3;
  std::vector<std::pair<std::string, std::vector<std::string>>> rels;
  for (std::size_t r = 0; r < relations; ++r) {
    rels.emplace_back("R" + std::to_string(r),
                      std::vector<std::string>{"A", "B", "C"});
  }
  SchemePtr scheme = MakeScheme(rels);
  std::vector<Fd> fds;
  std::vector<Ind> inds;
  std::vector<Dependency> sigma;
  for (std::size_t r = 0; r < relations; ++r) {
    AttrId x = static_cast<AttrId>(rng.Below(3));
    AttrId y = static_cast<AttrId>(rng.Below(3));
    if (x == y) continue;
    fds.push_back(Fd{static_cast<RelId>(r), {x}, {y}});
    sigma.push_back(Dependency(fds.back()));
  }
  for (int i = 0; i < 3; ++i) {
    RelId r1 = static_cast<RelId>(rng.Below(relations - 1));
    RelId r2 =
        static_cast<RelId>(r1 + 1 + rng.Below(relations - r1 - 1));
    std::size_t width = 1 + rng.Below(2);
    std::vector<AttrId> all = {0, 1, 2};
    std::swap(all[rng.Below(3)], all[2]);
    std::vector<AttrId> lhs(all.begin(), all.begin() + width);
    std::swap(all[rng.Below(3)], all[2]);
    std::vector<AttrId> rhs(all.begin(), all.begin() + width);
    inds.push_back(Ind{r1, lhs, r2, rhs});
    sigma.push_back(Dependency(inds.back()));
  }
  if (fds.empty() || inds.empty()) return;
  ImplicationSolver solver(scheme, sigma);
  for (int t = 0; t < 5; ++t) {
    RelId rel = static_cast<RelId>(rng.Below(relations));
    AttrId x = static_cast<AttrId>(rng.Below(3));
    AttrId y = static_cast<AttrId>(rng.Below(3));
    if (x == y) continue;
    Dependency target =
        rng.Chance(1, 2)
            ? Dependency(Fd{rel, {x}, {y}})
            : Dependency(
                  Ind{rel, {x}, static_cast<RelId>(rng.Below(relations)),
                      {y}});
    if (!Validate(*scheme, target).ok()) continue;
    Result<bool> via_chase = ChaseImplies(scheme, fds, inds, target);
    if (!via_chase.ok()) continue;  // budget (should not happen: acyclic)
    Verdict v = solver.Solve(target).value();
    EXPECT_NE(v.outcome, ImplicationVerdict::kUnknown)
        << target.ToString(*scheme);
    EXPECT_EQ(v.implied(), *via_chase) << target.ToString(*scheme);
    ExpectCounterexampleGenuine(v, sigma, target, *scheme);
    ExpectMonotone(solver, target, *scheme);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace ccfp
