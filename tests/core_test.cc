#include <gtest/gtest.h>

#include "core/database.h"
#include "core/dependency.h"
#include "core/relation.h"
#include "core/schema.h"
#include "core/tuple.h"
#include "core/value.h"

namespace ccfp {
namespace {

// --- Value ------------------------------------------------------------

TEST(ValueTest, Kinds) {
  EXPECT_TRUE(Value::Int(3).is_int());
  EXPECT_TRUE(Value::Str("x").is_str());
  EXPECT_TRUE(Value::Null(7).is_null());
  EXPECT_EQ(Value::Int(3).as_int(), 3);
  EXPECT_EQ(Value::Str("x").as_str(), "x");
  EXPECT_EQ(Value::Null(7).null_id(), 7u);
}

TEST(ValueTest, EqualityAndOrdering) {
  EXPECT_EQ(Value::Int(1), Value::Int(1));
  EXPECT_NE(Value::Int(1), Value::Int(2));
  EXPECT_NE(Value::Int(1), Value::Str("1"));
  EXPECT_NE(Value::Null(1), Value::Int(1));
  EXPECT_LT(Value::Null(0), Value::Int(-5));  // kind-major order
  EXPECT_LT(Value::Int(5), Value::Str(""));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(42).Hash(), Value::Int(42).Hash());
  EXPECT_EQ(Value::Str("ab").Hash(), Value::Str("ab").Hash());
  EXPECT_NE(Value::Int(42).Hash(), Value::Null(42).Hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Int(-3).ToString(), "-3");
  EXPECT_EQ(Value::Str("hi").ToString(), "\"hi\"");
  EXPECT_EQ(Value::Null(3).ToString(), "_n3");
}

// --- Schema -----------------------------------------------------------

TEST(SchemaTest, BuilderBuildsAndIndexes) {
  SchemePtr scheme = MakeScheme({{"R", {"A", "B"}}, {"S", {"C"}}});
  EXPECT_EQ(scheme->size(), 2u);
  EXPECT_EQ(scheme->relation(0).name(), "R");
  EXPECT_EQ(scheme->relation(0).arity(), 2u);
  EXPECT_EQ(scheme->FindRelation("S").value(), 1u);
  EXPECT_EQ(scheme->relation(0).FindAttr("B").value(), 1u);
  EXPECT_TRUE(scheme->relation(0).HasAttr("A"));
  EXPECT_FALSE(scheme->relation(0).HasAttr("C"));
}

TEST(SchemaTest, BuilderRejectsDuplicateRelation) {
  DatabaseSchemeBuilder builder;
  builder.AddRelation("R", {"A"}).AddRelation("R", {"B"});
  EXPECT_FALSE(builder.Build().ok());
}

TEST(SchemaTest, BuilderRejectsDuplicateAttr) {
  DatabaseSchemeBuilder builder;
  builder.AddRelation("R", {"A", "A"});
  EXPECT_FALSE(builder.Build().ok());
}

TEST(SchemaTest, BuilderRejectsEmptyNames) {
  {
    DatabaseSchemeBuilder builder;
    builder.AddRelation("", {"A"});
    EXPECT_FALSE(builder.Build().ok());
  }
  {
    DatabaseSchemeBuilder builder;
    builder.AddRelation("R", {""});
    EXPECT_FALSE(builder.Build().ok());
  }
}

TEST(SchemaTest, FindRelationErrors) {
  SchemePtr scheme = MakeScheme({{"R", {"A"}}});
  Result<RelId> missing = scheme->FindRelation("T");
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, ToStringShowsSequences) {
  SchemePtr scheme = MakeScheme({{"R", {"A", "B"}}});
  EXPECT_EQ(scheme->relation(0).ToString(), "R[A, B]");
}

// --- Tuple / Relation -----------------------------------------------------

TEST(TupleTest, ProjectTuple) {
  Tuple t = TupleOfInts({10, 20, 30});
  Tuple p = ProjectTuple(t, {2, 0});
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p[0], Value::Int(30));
  EXPECT_EQ(p[1], Value::Int(10));
}

TEST(RelationTest, InsertDeduplicates) {
  Relation r(2);
  EXPECT_TRUE(r.Insert(TupleOfInts({1, 2})));
  EXPECT_FALSE(r.Insert(TupleOfInts({1, 2})));
  EXPECT_TRUE(r.Insert(TupleOfInts({1, 3})));
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.Contains(TupleOfInts({1, 2})));
  EXPECT_FALSE(r.Contains(TupleOfInts({2, 1})));
}

TEST(RelationTest, ProjectDeduplicates) {
  Relation r(2);
  r.Insert(TupleOfInts({1, 2}));
  r.Insert(TupleOfInts({1, 3}));
  std::vector<Tuple> proj = r.Project({0});
  ASSERT_EQ(proj.size(), 1u);
  EXPECT_EQ(proj[0], TupleOfInts({1}));
  EXPECT_EQ(r.CountDistinct({0}), 1u);
  EXPECT_EQ(r.CountDistinct({1}), 2u);
}

TEST(RelationTest, MapValuesRemapsAndDeduplicates) {
  Relation r(1);
  r.Insert({Value::Null(1)});
  r.Insert({Value::Null(2)});
  r.MapValues([](const Value& v) {
    return v.is_null() ? Value::Int(9) : v;
  });
  EXPECT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.Contains({Value::Int(9)}));
}

TEST(RelationTest, EqualityIsSetEquality) {
  Relation a(1), b(1);
  a.Insert(TupleOfInts({1}));
  a.Insert(TupleOfInts({2}));
  b.Insert(TupleOfInts({2}));
  b.Insert(TupleOfInts({1}));
  EXPECT_TRUE(a == b);
  b.Insert(TupleOfInts({3}));
  EXPECT_FALSE(a == b);
}

// --- Database ---------------------------------------------------------

TEST(DatabaseTest, InsertByName) {
  SchemePtr scheme = MakeScheme({{"R", {"A", "B"}}});
  Database db(scheme);
  EXPECT_TRUE(db.InsertByName("R", TupleOfInts({1, 2})).ok());
  EXPECT_FALSE(db.InsertByName("T", TupleOfInts({1, 2})).ok());
  EXPECT_FALSE(db.InsertByName("R", TupleOfInts({1})).ok());
  EXPECT_EQ(db.TotalTuples(), 1u);
}

// --- Dependencies -----------------------------------------------------

class DependencyTest : public ::testing::Test {
 protected:
  SchemePtr scheme_ = MakeScheme({{"R", {"A", "B", "C"}}, {"S", {"D", "E"}}});
};

TEST_F(DependencyTest, MakeAndPrint) {
  Fd fd = MakeFd(*scheme_, "R", {"A", "B"}, {"C"});
  EXPECT_EQ(Dependency(fd).ToString(*scheme_), "R: A, B -> C");

  Ind ind = MakeInd(*scheme_, "R", {"A", "B"}, "S", {"D", "E"});
  EXPECT_EQ(Dependency(ind).ToString(*scheme_), "R[A, B] <= S[D, E]");

  Rd rd = MakeRd(*scheme_, "R", {"A"}, {"B"});
  EXPECT_EQ(Dependency(rd).ToString(*scheme_), "R[A = B]");

  Emvd emvd = MakeEmvd(*scheme_, "R", {"A"}, {"B"}, {"C"});
  EXPECT_EQ(Dependency(emvd).ToString(*scheme_), "R: A ->> B | C");

  Mvd mvd = MakeMvd(*scheme_, "R", {"A"}, {"B"});
  EXPECT_EQ(Dependency(mvd).ToString(*scheme_), "R: A ->> B");
}

TEST_F(DependencyTest, EmptyLhsFdPrints) {
  Fd fd = MakeFd(*scheme_, "R", {}, {"A"});
  EXPECT_EQ(Dependency(fd).ToString(*scheme_), "R:  -> A");
}

TEST_F(DependencyTest, ValidateRejectsRepeatedAttrs) {
  Fd fd{0, {0, 0}, {1}};
  EXPECT_FALSE(Validate(*scheme_, fd).ok());
  Ind ind{0, {0, 0}, 1, {0, 1}};
  EXPECT_FALSE(Validate(*scheme_, ind).ok());
}

TEST_F(DependencyTest, ValidateRejectsWidthMismatch) {
  Ind ind{0, {0, 1}, 1, {0}};
  EXPECT_FALSE(Validate(*scheme_, ind).ok());
  Rd rd{0, {0, 1}, {2}};
  EXPECT_FALSE(Validate(*scheme_, rd).ok());
}

TEST_F(DependencyTest, ValidateRejectsBadIds) {
  Fd fd{5, {0}, {1}};
  EXPECT_FALSE(Validate(*scheme_, fd).ok());
  Fd fd2{1, {0}, {7}};
  EXPECT_FALSE(Validate(*scheme_, fd2).ok());
}

TEST_F(DependencyTest, ValidateRejectsZeroWidthInd) {
  Ind ind{0, {}, 1, {}};
  EXPECT_FALSE(Validate(*scheme_, ind).ok());
}

TEST_F(DependencyTest, ValidateRejectsOverlappingEmvdYZ) {
  Emvd e{0, {0}, {1}, {1}};
  EXPECT_FALSE(Validate(*scheme_, e).ok());
}

TEST_F(DependencyTest, Triviality) {
  EXPECT_TRUE(IsTrivial(MakeFd(*scheme_, "R", {"A", "B"}, {"A"})));
  EXPECT_FALSE(IsTrivial(MakeFd(*scheme_, "R", {"A"}, {"B"})));
  EXPECT_TRUE(IsTrivial(MakeInd(*scheme_, "R", {"A", "B"}, "R", {"A", "B"})));
  EXPECT_FALSE(IsTrivial(MakeInd(*scheme_, "R", {"A", "B"}, "R", {"B", "A"})));
  EXPECT_FALSE(IsTrivial(MakeInd(*scheme_, "R", {"A"}, "S", {"D"})));
  EXPECT_TRUE(IsTrivial(MakeRd(*scheme_, "R", {"A"}, {"A"})));
  EXPECT_FALSE(IsTrivial(MakeRd(*scheme_, "R", {"A"}, {"B"})));
  EXPECT_TRUE(IsTrivial(MakeEmvd(*scheme_, "R", {"A", "B"}, {"B"}, {"C"})));
  EXPECT_FALSE(IsTrivial(MakeEmvd(*scheme_, "R", {"A"}, {"B"}, {"C"})));
  // MVD with X u Y covering everything is trivial.
  EXPECT_TRUE(IsTrivial(*scheme_, Dependency(MakeMvd(*scheme_, "R",
                                                     {"A", "B"}, {"C"}))));
  EXPECT_FALSE(IsTrivial(*scheme_, Dependency(MakeMvd(*scheme_, "R", {"A"},
                                                      {"B"}))));
}

TEST_F(DependencyTest, OrderingAndHashing) {
  Dependency a = Dependency(MakeFd(*scheme_, "R", {"A"}, {"B"}));
  Dependency b = Dependency(MakeFd(*scheme_, "R", {"A"}, {"C"}));
  Dependency c = Dependency(MakeInd(*scheme_, "R", {"A"}, "S", {"D"}));
  EXPECT_NE(a, b);
  EXPECT_LT(a, c);  // FDs order before INDs (kind-major)
  EXPECT_EQ(a.Hash(), Dependency(MakeFd(*scheme_, "R", {"A"}, {"B"})).Hash());
}

TEST_F(DependencyTest, SequenceSensitivity) {
  // INDs are sequences: R[A,B] <= S[D,E] differs from R[B,A] <= S[D,E].
  Dependency x = Dependency(MakeInd(*scheme_, "R", {"A", "B"}, "S",
                                    {"D", "E"}));
  Dependency y = Dependency(MakeInd(*scheme_, "R", {"B", "A"}, "S",
                                    {"D", "E"}));
  EXPECT_NE(x, y);
}

}  // namespace
}  // namespace ccfp
