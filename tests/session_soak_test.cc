// Soak coverage (`ctest -L soak`) for memory-bounded long-lived sessions:
// an ArmstrongSession driven through many Extends under a fixed byte
// ceiling must keep its live logical footprint under that ceiling, keep
// its change feeds trimmed to nothing between rounds (the caught-up
// consumers un-pin the whole retained window), keep answering exactly
// like a fresh full-sweep re-check, and survive a snapshot/restore
// warm-start cycle mid-session with identical answers afterwards.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "armstrong/builder.h"
#include "axiom/oracle.h"
#include "axiom/sentence.h"
#include "core/satisfies.h"
#include "core/snapshot.h"
#include "core/workspace.h"

namespace ccfp {
namespace {

/// The invariants every soak round re-asserts: ceiling held, feeds
/// trimmed, database verified-exact by the independent sweep engine.
void ExpectSessionHealthy(const ArmstrongSession& session,
                          std::uint64_t byte_ceiling) {
  const InternedWorkspace& ws = session.workspace();
  EXPECT_LE(ws.MemoryUsage().Total(), byte_ceiling)
      << ws.MemoryUsage().ToString();
  for (RelId rel = 0; rel < session.scheme().size(); ++rel) {
    EXPECT_EQ(ws.FeedBase(rel), ws.EventCount(rel))
        << "retained feed window not trimmed for relation " << rel;
  }
  EXPECT_FALSE(ObeysExactly(session.Snapshot(), session.universe(),
                            session.expected())
                   .has_value())
      << "session database disagrees with the fresh sweep re-check";
}

TEST(SessionSoakTest, LongFdSessionHoldsByteCeilingWithTrimmedFeeds) {
  SchemePtr scheme = MakeScheme({{"R", {"A", "B", "C"}}});
  std::vector<Fd> fds = {MakeFd(*scheme, "R", {"A"}, {"B"})};
  UniverseOptions uopts;
  uopts.max_fd_lhs = 2;
  uopts.include_inds = false;
  std::vector<Dependency> universe = EnumerateUniverse(*scheme, uopts);
  ASSERT_GT(universe.size(), 10u);
  FdOracle oracle(scheme);

  constexpr std::uint64_t kCeiling = 1u << 20;
  ArmstrongBuildOptions opts;
  opts.verify = ArmstrongVerifyEngine::kIncremental;
  opts.chase.max_bytes = kCeiling;
  ArmstrongSession session(scheme, fds, {}, &oracle, opts);

  // Three full passes, one sentence per Extend: the first pass grows the
  // universe member by member, the later passes re-verify known members —
  // the long-lived interactive shape that used to accrete feed forever.
  for (int pass = 0; pass < 3; ++pass) {
    for (const Dependency& dep : universe) {
      ASSERT_TRUE(session.Extend({dep}).ok()) << dep.ToString(*scheme);
      ExpectSessionHealthy(session, kCeiling);
    }
  }
  EXPECT_EQ(session.universe().size(), universe.size());
  EXPECT_GT(session.workspace_stats().feed_compactions, 0u);
  // The soak's point: hundreds of rounds, zero retained feed events.
  for (RelId rel = 0; rel < scheme->size(); ++rel) {
    EXPECT_EQ(session.workspace().events(rel).size(), 0u);
  }
}

TEST(SessionSoakTest, MixedFdIndSessionStaysBoundedAcrossExtends) {
  SchemePtr scheme = MakeScheme({{"R", {"A", "B"}}, {"S", {"C", "D"}}});
  std::vector<Fd> fds = {MakeFd(*scheme, "S", {"C"}, {"D"})};
  std::vector<Ind> inds = {MakeInd(*scheme, "R", {"A"}, "S", {"C"})};
  UniverseOptions uopts;
  uopts.max_fd_lhs = 1;
  uopts.max_ind_width = 1;
  std::vector<Dependency> universe = EnumerateUniverse(*scheme, uopts);
  ASSERT_GT(universe.size(), 6u);
  ChaseOracle oracle(scheme);

  constexpr std::uint64_t kCeiling = 1u << 21;
  ArmstrongBuildOptions opts;
  opts.verify = ArmstrongVerifyEngine::kIncremental;
  opts.chase.max_bytes = kCeiling;
  ArmstrongSession session(scheme, fds, inds, &oracle, opts);

  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t at = 0; at < universe.size(); at += 3) {
      std::vector<Dependency> delta(
          universe.begin() + at,
          universe.begin() + std::min(at + 3, universe.size()));
      ASSERT_TRUE(session.Extend(delta).ok());
      ExpectSessionHealthy(session, kCeiling);
    }
  }
  EXPECT_GT(session.workspace_stats().feed_compactions, 0u);
}

TEST(SessionSoakTest, SnapshotCycleWarmStartsAnEquivalentSession) {
  // Mid-session persistence: save the workspace, load it, adopt it via
  // the warm-start constructor, replay the universe to rebuild the
  // (non-persisted) classification — from there the restored session
  // must certify the same consequence sets as the uninterrupted one.
  SchemePtr scheme = MakeScheme({{"R", {"A", "B", "C"}}});
  std::vector<Fd> fds = {MakeFd(*scheme, "R", {"A"}, {"B"}),
                         MakeFd(*scheme, "R", {"B"}, {"C"})};
  UniverseOptions uopts;
  uopts.max_fd_lhs = 2;
  uopts.include_inds = false;
  std::vector<Dependency> universe = EnumerateUniverse(*scheme, uopts);
  ASSERT_GT(universe.size(), 8u);
  FdOracle oracle(scheme);

  ArmstrongBuildOptions opts;
  opts.verify = ArmstrongVerifyEngine::kIncremental;
  ArmstrongSession session(scheme, fds, {}, &oracle, opts);

  std::vector<Dependency> first_half(universe.begin(),
                                     universe.begin() + universe.size() / 2);
  std::vector<Dependency> second_half(
      universe.begin() + universe.size() / 2, universe.end());
  ASSERT_TRUE(session.Extend(first_half).ok());

  std::string path =
      ::testing::TempDir() + "/ccfp_session_soak_snapshot.bin";
  ASSERT_TRUE(SaveWorkspaceSnapshot(session.workspace(), path).ok());
  Result<RestoredWorkspace> restored = LoadWorkspaceSnapshot(scheme, path);
  ASSERT_TRUE(restored.ok()) << restored.status();

  std::uint64_t interned_at_restore = restored->ws.stats().values_interned;
  ArmstrongSession warm(std::move(restored->ws), fds, {}, &oracle, opts);
  ASSERT_TRUE(warm.Extend(first_half).ok());
  EXPECT_EQ(warm.expected(), session.expected());

  // Both sessions continue; the warm one must stay indistinguishable.
  ASSERT_TRUE(session.Extend(second_half).ok());
  ASSERT_TRUE(warm.Extend(second_half).ok());
  EXPECT_EQ(warm.universe().size(), session.universe().size());
  EXPECT_EQ(warm.expected(), session.expected());
  EXPECT_FALSE(
      ObeysExactly(warm.Snapshot(), warm.universe(), warm.expected())
          .has_value());
  // Warm start means adopted capital: the restored values were reused,
  // not re-interned (only genuinely new seed values intern afterwards).
  EXPECT_GE(warm.workspace_stats().values_interned, interned_at_restore);
  EXPECT_GT(interned_at_restore, 0u);
}

}  // namespace
}  // namespace ccfp
