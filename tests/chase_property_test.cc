// Differential property tests for the FD+IND chase: random *acyclic*
// instances (where termination is guaranteed) cross-checked against the
// bounded-model searcher and the unary engines.
#include <algorithm>
#include <gtest/gtest.h>

#include "chase/chase.h"
#include "chase/workspace_chase.h"
#include "core/satisfies.h"
#include "interact/unary_finite.h"
#include "search/bounded.h"
#include "util/rng.h"

namespace ccfp {
namespace {

struct AcyclicInstance {
  SchemePtr scheme;
  std::vector<Fd> fds;
  std::vector<Ind> inds;
};

// Random instance whose IND graph only points from lower-numbered to
// higher-numbered relations — acyclic, so the chase terminates.
AcyclicInstance MakeAcyclic(std::uint64_t seed, std::size_t relations,
                            std::size_t arity, bool unary_only) {
  SplitMix64 rng(seed);
  std::vector<std::pair<std::string, std::vector<std::string>>> rels;
  for (std::size_t r = 0; r < relations; ++r) {
    std::vector<std::string> attrs;
    for (std::size_t a = 0; a < arity; ++a) {
      attrs.push_back(std::string(1, static_cast<char>('A' + a)));
    }
    rels.emplace_back("R" + std::to_string(r), attrs);
  }
  AcyclicInstance instance;
  instance.scheme = MakeScheme(rels);
  // FDs: a few unary ones per relation.
  for (std::size_t r = 0; r < relations; ++r) {
    for (int i = 0; i < 2; ++i) {
      AttrId x = static_cast<AttrId>(rng.Below(arity));
      AttrId y = static_cast<AttrId>(rng.Below(arity));
      if (x == y) continue;
      instance.fds.push_back(Fd{static_cast<RelId>(r), {x}, {y}});
    }
  }
  // INDs: forward edges only.
  std::size_t count = 1 + rng.Below(4);
  for (std::size_t i = 0; i < count && relations >= 2; ++i) {
    RelId r1 = static_cast<RelId>(rng.Below(relations - 1));
    RelId r2 = static_cast<RelId>(r1 + 1 + rng.Below(relations - r1 - 1));
    std::size_t width = unary_only ? 1 : 1 + rng.Below(2);
    std::vector<AttrId> all(arity);
    for (AttrId a = 0; a < arity; ++a) all[a] = a;
    for (std::size_t j = arity; j > 1; --j) {
      std::swap(all[j - 1], all[rng.Below(j)]);
    }
    std::vector<AttrId> lhs(all.begin(), all.begin() + width);
    for (std::size_t j = arity; j > 1; --j) {
      std::swap(all[j - 1], all[rng.Below(j)]);
    }
    std::vector<AttrId> rhs(all.begin(), all.begin() + width);
    instance.inds.push_back(Ind{r1, lhs, r2, rhs});
  }
  return instance;
}

class ChasePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChasePropertyTest, FixpointSatisfiesAllDependencies) {
  AcyclicInstance instance = MakeAcyclic(GetParam(), 3, 3, false);
  Chase chase(instance.scheme, instance.fds, instance.inds);
  Database seed(instance.scheme);
  SplitMix64 rng(GetParam() * 31 + 7);
  std::uint64_t next_null = 1;
  for (RelId rel = 0; rel < instance.scheme->size(); ++rel) {
    for (int i = 0; i < 2; ++i) {
      Tuple t;
      for (std::size_t a = 0; a < 3; ++a) {
        t.push_back(Value::Null(next_null++));
      }
      seed.Insert(rel, std::move(t));
    }
  }
  Result<ChaseResult> result = chase.Run(std::move(seed));
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->outcome, ChaseOutcome::kFixpoint);
  for (const Fd& fd : instance.fds) {
    EXPECT_TRUE(Satisfies(result->db, fd))
        << Dependency(fd).ToString(*instance.scheme);
  }
  for (const Ind& ind : instance.inds) {
    EXPECT_TRUE(Satisfies(result->db, ind))
        << Dependency(ind).ToString(*instance.scheme);
  }
}

TEST_P(ChasePropertyTest, ChaseImpliesNeverContradictsBoundedSearch) {
  AcyclicInstance instance = MakeAcyclic(GetParam(), 3, 2, false);
  std::vector<Dependency> premises;
  for (const Fd& fd : instance.fds) premises.push_back(Dependency(fd));
  for (const Ind& ind : instance.inds) premises.push_back(Dependency(ind));

  SplitMix64 rng(GetParam() * 101 + 13);
  // A few random targets per instance.
  for (int t = 0; t < 3; ++t) {
    RelId rel = static_cast<RelId>(rng.Below(instance.scheme->size()));
    AttrId x = static_cast<AttrId>(rng.Below(2));
    Dependency target =
        rng.Chance(1, 2)
            ? Dependency(Fd{rel, {x}, {static_cast<AttrId>(1 - x)}})
            : Dependency(Ind{
                  rel,
                  {x},
                  static_cast<RelId>(rng.Below(instance.scheme->size())),
                  {static_cast<AttrId>(rng.Below(2))}});
    if (!Validate(*instance.scheme, target).ok()) continue;
    Result<bool> implied = ChaseImplies(instance.scheme, instance.fds,
                                        instance.inds, target);
    if (!implied.ok()) continue;  // budget (should not happen: acyclic)
    Result<BoundedSearchResult> search =
        FindCounterexample(instance.scheme, premises, target);
    ASSERT_TRUE(search.ok());
    if (search->counterexample.has_value()) {
      EXPECT_FALSE(*implied)
          << "chase claims implied but a finite counterexample exists: "
          << target.ToString(*instance.scheme) << "\n"
          << search->counterexample->ToString();
    }
  }
}

TEST_P(ChasePropertyTest, UnaryUnrestrictedAgreesWithChaseOnAcyclic) {
  AcyclicInstance instance = MakeAcyclic(GetParam(), 3, 3, true);
  UnaryUnrestrictedImplication engine(instance.scheme, instance.fds,
                                      instance.inds);
  SplitMix64 rng(GetParam() * 7 + 3);
  for (int t = 0; t < 4; ++t) {
    RelId rel = static_cast<RelId>(rng.Below(instance.scheme->size()));
    AttrId x = static_cast<AttrId>(rng.Below(3));
    AttrId y = static_cast<AttrId>(rng.Below(3));
    if (x == y) continue;
    Dependency target =
        rng.Chance(1, 2)
            ? Dependency(Fd{rel, {x}, {y}})
            : Dependency(Ind{
                  rel,
                  {x},
                  static_cast<RelId>(rng.Below(instance.scheme->size())),
                  {y}});
    Result<bool> via_chase = ChaseImplies(instance.scheme, instance.fds,
                                          instance.inds, target);
    if (!via_chase.ok()) continue;
    EXPECT_EQ(engine.Implies(target), *via_chase)
        << target.ToString(*instance.scheme);
  }
}

// --- Incremental vs naive engine equivalence ---------------------------
// The delta-driven engine must be observationally identical to the naive
// reference: same outcome, same per-relation tuple counts, same merge and
// generation counters, and the same Satisfies verdict for every premise
// and for random targets.

Database RandomSeed(const AcyclicInstance& instance, std::uint64_t seed) {
  SplitMix64 rng(seed);
  Database db(instance.scheme);
  std::uint64_t next_null = 1;
  std::vector<Value> recent;  // reused nulls provoke FD merges
  for (RelId rel = 0; rel < instance.scheme->size(); ++rel) {
    std::size_t arity = instance.scheme->relation(rel).arity();
    for (int i = 0; i < 3; ++i) {
      Tuple t;
      for (std::size_t a = 0; a < arity; ++a) {
        if (!recent.empty() && rng.Chance(1, 3)) {
          t.push_back(recent[rng.Below(recent.size())]);
        } else if (rng.Chance(1, 4)) {
          t.push_back(Value::Int(static_cast<std::int64_t>(rng.Below(3))));
        } else {
          Value v = Value::Null(next_null++);
          recent.push_back(v);
          t.push_back(v);
        }
      }
      db.Insert(rel, std::move(t));
    }
  }
  return db;
}

TEST_P(ChasePropertyTest, IncrementalAndNaiveEnginesAgree) {
  AcyclicInstance instance = MakeAcyclic(GetParam(), 4, 3, false);
  Chase chase(instance.scheme, instance.fds, instance.inds);
  Database seed = RandomSeed(instance, GetParam() * 97 + 5);

  ChaseOptions incremental;
  incremental.engine = ChaseEngine::kIncremental;
  ChaseOptions naive;
  naive.engine = ChaseEngine::kNaive;

  Result<ChaseResult> a = chase.Run(seed, incremental);
  Result<ChaseResult> b = chase.Run(seed, naive);
  ASSERT_EQ(a.ok(), b.ok()) << a.status() << " vs " << b.status();
  if (!a.ok()) return;  // both exhausted: nothing more to compare

  EXPECT_EQ(a->outcome, b->outcome);
  // A failing chase bails out mid-flight; which merges are already applied
  // at that point is engine-specific, so only the outcome must agree.
  if (a->outcome != ChaseOutcome::kFixpoint) return;

  EXPECT_EQ(a->fd_merges, b->fd_merges);
  EXPECT_EQ(a->ind_tuples, b->ind_tuples);
  EXPECT_EQ(a->db.TotalTuples(), b->db.TotalTuples());
  for (RelId rel = 0; rel < instance.scheme->size(); ++rel) {
    EXPECT_EQ(a->db.relation(rel).size(), b->db.relation(rel).size())
        << "relation " << instance.scheme->relation(rel).name();
  }
  // Same rule-application strategy => identical fresh-null numbering =>
  // the databases are equal, not merely isomorphic.
  EXPECT_TRUE(a->db == b->db);
  for (const Fd& fd : instance.fds) {
    EXPECT_EQ(Satisfies(a->db, fd), Satisfies(b->db, fd));
  }
  for (const Ind& ind : instance.inds) {
    EXPECT_EQ(Satisfies(a->db, ind), Satisfies(b->db, ind));
  }
}

TEST_P(ChasePropertyTest, ChaseImpliesAgreesAcrossEngines) {
  AcyclicInstance instance = MakeAcyclic(GetParam(), 3, 3, false);
  ChaseOptions incremental;
  incremental.engine = ChaseEngine::kIncremental;
  ChaseOptions naive;
  naive.engine = ChaseEngine::kNaive;

  SplitMix64 rng(GetParam() * 53 + 17);
  for (int t = 0; t < 4; ++t) {
    RelId rel = static_cast<RelId>(rng.Below(instance.scheme->size()));
    AttrId x = static_cast<AttrId>(rng.Below(3));
    AttrId y = static_cast<AttrId>(rng.Below(3));
    if (x == y) continue;
    Dependency target =
        rng.Chance(1, 2)
            ? Dependency(Fd{rel, {x}, {y}})
            : Dependency(Ind{
                  rel,
                  {x},
                  static_cast<RelId>(rng.Below(instance.scheme->size())),
                  {y}});
    Result<bool> via_inc = ChaseImplies(instance.scheme, instance.fds,
                                        instance.inds, target, incremental);
    Result<bool> via_naive = ChaseImplies(instance.scheme, instance.fds,
                                          instance.inds, target, naive);
    ASSERT_EQ(via_inc.ok(), via_naive.ok())
        << target.ToString(*instance.scheme);
    if (!via_inc.ok()) continue;
    EXPECT_EQ(*via_inc, *via_naive) << target.ToString(*instance.scheme);
  }
}

TEST_P(ChasePropertyTest, ResumingAfterBudgetExhaustionReachesAModel) {
  // Drip-feed the step budget: run WorkspaceChase with a tiny per-call
  // budget, re-running on ResourceExhausted until it reports a fixpoint.
  // This pins the resume contract — an exhausted return must leave the
  // worklists (dirty queue, IND dirty lists, cursors) in a state a later
  // Run can pick up without losing merges or probes. A lost merge leaves
  // stale tuples no worklist entry ever revisits, and the "fixpoint" then
  // fails to satisfy Sigma — which is exactly what we check. (Literal
  // database equality with the one-shot engine is NOT required: the
  // interruption point legitimately reorders FD-drain vs IND-pass work,
  // so the fixpoints agree only up to null renaming.)
  AcyclicInstance instance = MakeAcyclic(GetParam(), 3, 3, false);
  Database seed(instance.scheme);
  SplitMix64 rng(GetParam() * 97 + 3);
  std::uint64_t next_null = 1;
  for (RelId rel = 0; rel < instance.scheme->size(); ++rel) {
    for (int i = 0; i < 3; ++i) {
      Tuple t;
      for (std::size_t a = 0; a < 3; ++a) {
        // Occasional shared nulls so FD merges actually fire.
        if (rng.Chance(1, 3) && next_null > 1) {
          t.push_back(Value::Null(1 + rng.Below(next_null - 1)));
        } else {
          t.push_back(Value::Null(next_null++));
        }
      }
      seed.Insert(rel, std::move(t));
    }
  }

  Chase chase(instance.scheme, instance.fds, instance.inds);
  Result<ChaseResult> one_shot = chase.Run(seed);
  ASSERT_TRUE(one_shot.ok()) << one_shot.status();
  ASSERT_EQ(one_shot->outcome, ChaseOutcome::kFixpoint);

  InternedWorkspace ws(instance.scheme);
  ws.AppendDatabase(seed);
  WorkspaceChase chaser(&ws, instance.fds, instance.inds);
  ChaseOptions drip;
  drip.max_steps = 2;
  int runs = 0;
  while (true) {
    ASSERT_LT(runs++, 10000) << "drip-fed chase failed to converge";
    Result<WorkspaceChaseStats> stats = chaser.Run(drip);
    if (stats.ok()) {
      ASSERT_EQ(stats->outcome, ChaseOutcome::kFixpoint);
      break;
    }
    ASSERT_EQ(stats.status().code(), StatusCode::kResourceExhausted)
        << stats.status();
  }
  // The resumed fixpoint must be a genuine Sigma-model, checked both on
  // the workspace (cached partitions over canonical ids — stale tuples
  // would poison these) and independently on the materialized heap
  // database through the legacy checker.
  Database materialized = ws.Materialize();
  SatisfiesOptions legacy;
  legacy.engine = SatisfiesEngine::kLegacy;
  for (const Fd& fd : instance.fds) {
    EXPECT_TRUE(ws.Satisfies(fd))
        << Dependency(fd).ToString(*instance.scheme) << " after " << runs
        << " drip-fed runs";
    EXPECT_TRUE(Satisfies(materialized, Dependency(fd), legacy))
        << Dependency(fd).ToString(*instance.scheme);
  }
  for (const Ind& ind : instance.inds) {
    EXPECT_TRUE(ws.Satisfies(ind))
        << Dependency(ind).ToString(*instance.scheme) << " after " << runs
        << " drip-fed runs";
    EXPECT_TRUE(Satisfies(materialized, Dependency(ind), legacy))
        << Dependency(ind).ToString(*instance.scheme);
  }
  // And it still contains everything the one-shot fixpoint derived from
  // the same seed, size-wise within the renaming: both are finite chase
  // fixpoints of (seed, Sigma), so neither can be empty where the other
  // is populated.
  for (RelId rel = 0; rel < instance.scheme->size(); ++rel) {
    EXPECT_EQ(materialized.relation(rel).empty(),
              one_shot->db.relation(rel).empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChasePropertyTest,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace ccfp
