// Randomized round-trip properties for the snapshot layer
// (core/snapshot.h): a workspace serialized mid-session and restored must
// answer *identically* to the original at every later cursor position —
// same materialization, same watcher verdicts, same witnesses — while
// both sides keep agreeing with the sweep engine and a fresh re-intern
// (tests/trace_util.h drives the same traces as the verifier suite). The
// restored side replays the identical mutation suffix, which works
// because a restore is id-exact: the shared value pool carries over.
// Also pinned here: save-side injected corruption/truncation across
// random states is always rejected at load, never half-restored.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "core/snapshot.h"
#include "core/workspace.h"
#include "tests/trace_util.h"
#include "util/fault.h"
#include "util/rng.h"
#include "verify/verifier.h"

namespace ccfp {
namespace {

using testutil::AppendRandomTuple;
using testutil::CheckAgreement;
using testutil::MergeRandomValues;
using testutil::RandomScheme;
using testutil::RandomUniverse;

class SnapshotPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SnapshotPropertyTest, RestoredSessionAnswersIdenticallyAtEveryCursor) {
  SplitMix64 rng(GetParam() * 48271 + 13);
  SchemePtr scheme = RandomScheme(rng);
  std::vector<Dependency> deps = RandomUniverse(scheme, rng, 12);
  if (deps.empty()) return;

  InternedWorkspace ws(scheme);
  std::vector<ValueId> pool;
  for (int i = 0; i < 6; ++i) AppendRandomTuple(ws, rng, pool);
  MergeRandomValues(ws, rng, pool);

  IncrementalVerifier verifier(&ws);
  std::vector<WatchId> ids;
  for (const Dependency& dep : deps) ids.push_back(verifier.Watch(dep));

  // A lived-in prefix: several verified batches before the snapshot.
  for (int batch = 0; batch < 3; ++batch) {
    std::size_t ops = 1 + rng.Below(4);
    for (std::size_t op = 0; op < ops; ++op) {
      if (rng.Chance(2, 3)) {
        AppendRandomTuple(ws, rng, pool);
      } else {
        MergeRandomValues(ws, rng, pool);
      }
    }
    CheckAgreement(ws, verifier, deps, ids);
  }

  // Snapshot mid-session and restore into a second, independent session.
  Result<RestoredWorkspace> restored =
      DeserializeWorkspace(scheme, SerializeWorkspace(ws));
  ASSERT_TRUE(restored.ok()) << restored.status();
  InternedWorkspace ws2 = std::move(restored->ws);
  IncrementalVerifier verifier2(&ws2);
  std::vector<WatchId> ids2;
  for (const Dependency& dep : deps) ids2.push_back(verifier2.Watch(dep));
  EXPECT_EQ(ws.Materialize().ToString(), ws2.Materialize().ToString());

  // Replay an identical suffix on both sides: the restore is id-exact, so
  // a cloned rng + cloned pool drive bit-identical mutations.
  SplitMix64 rng2 = rng;
  std::vector<ValueId> pool2 = pool;
  for (int batch = 0; batch < 5; ++batch) {
    std::size_t ops = 1 + rng.Below(4);
    std::size_t ops2 = 1 + rng2.Below(4);
    ASSERT_EQ(ops, ops2);
    for (std::size_t op = 0; op < ops; ++op) {
      if (rng.Chance(2, 3)) {
        AppendRandomTuple(ws, rng, pool);
        ASSERT_TRUE(rng2.Chance(2, 3));
        AppendRandomTuple(ws2, rng2, pool2);
      } else {
        MergeRandomValues(ws, rng, pool);
        ASSERT_FALSE(rng2.Chance(2, 3));
        MergeRandomValues(ws2, rng2, pool2);
      }
    }
    // Every cursor position: both sessions self-consistent (watchers vs
    // sweep vs fresh re-intern) *and* mutually identical.
    CheckAgreement(ws, verifier, deps, ids);
    CheckAgreement(ws2, verifier2, deps, ids2);
    EXPECT_EQ(ws.Materialize().ToString(), ws2.Materialize().ToString());
    for (std::size_t i = 0; i < deps.size(); ++i) {
      EXPECT_EQ(verifier.Satisfies(ids[i]), verifier2.Satisfies(ids2[i]))
          << deps[i].ToString(*scheme);
    }
  }
}

TEST_P(SnapshotPropertyTest, InjectedSaveFaultsAlwaysRejectedAtLoad) {
  // Whatever state the trace reached, a save whose bytes were damaged by
  // the injector (bit rot or torn write) must be rejected by the load —
  // and an undamaged save must restore observably intact.
  SplitMix64 rng(GetParam() * 2654435761 + 17);
  SchemePtr scheme = RandomScheme(rng);
  InternedWorkspace ws(scheme);
  std::vector<ValueId> pool;
  std::size_t n_ops = 4 + rng.Below(20);
  for (std::size_t i = 0; i < n_ops; ++i) {
    if (rng.Chance(2, 3)) {
      AppendRandomTuple(ws, rng, pool);
    } else {
      MergeRandomValues(ws, rng, pool);
    }
  }
  for (const Dependency& dep : RandomUniverse(scheme, rng, 4)) {
    ws.Satisfies(dep);  // compile some partitions into the snapshot
  }

  std::string path = ::testing::TempDir() + "/ccfp_snapshot_prop_" +
                     std::to_string(GetParam()) + ".bin";
  // Non-atomic legacy policy: the damage must reach the target file (the
  // atomic default confines it to the temp file and fails the save —
  // snapshot_crash_property_test exercises that side).
  SnapshotWriteOptions direct;
  direct.atomic = false;
  FaultInjector fi(GetParam());
  FaultSite site = rng.Chance(1, 2) ? FaultSite::kSnapshotCorrupt
                                    : FaultSite::kSnapshotTruncate;
  fi.Arm(site, 0);
  {
    ScopedFaultInjector scope(&fi);
    ASSERT_TRUE(SaveWorkspaceSnapshot(ws, path, {}, direct).ok());
  }
  ASSERT_EQ(fi.fired(site), 1u);
  Result<RestoredWorkspace> damaged = LoadWorkspaceSnapshot(scheme, path);
  ASSERT_FALSE(damaged.ok()) << "damaged snapshot restored";
  EXPECT_EQ(damaged.status().code(), StatusCode::kInvalidArgument);

  // The recovery path: re-save without the fault, load, verify verdicts.
  ASSERT_TRUE(SaveWorkspaceSnapshot(ws, path).ok());
  Result<RestoredWorkspace> ok = LoadWorkspaceSnapshot(scheme, path);
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_EQ(ws.Materialize().ToString(), ok->ws.Materialize().ToString());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace ccfp
