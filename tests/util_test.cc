#include <gtest/gtest.h>

#include "util/budget.h"
#include "util/permutation.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/strings.h"

namespace ccfp {
namespace {

// --- Status / Result ---------------------------------------------------

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad attribute");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad attribute");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad attribute");
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kResourceExhausted),
               "ResourceExhausted");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> Doubled(Result<int> input) {
  CCFP_ASSIGN_OR_RETURN(int v, std::move(input));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagatesValue) {
  Result<int> r = Doubled(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  Result<int> r = Doubled(Status::Internal("boom"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

// --- Strings ------------------------------------------------------------

TEST(StringsTest, JoinStrings) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ", "), "");
  EXPECT_EQ(JoinStrings({"only"}, ", "), "only");
}

TEST(StringsTest, StrCat) {
  EXPECT_EQ(StrCat("x", 1, "y", 2), "x1y2");
  EXPECT_EQ(StrCat(), "");
}

TEST(StringsTest, SplitAndTrim) {
  std::vector<std::string> parts = SplitAndTrim(" a , b ,c ", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringsTest, SplitKeepsEmptyPieces) {
  std::vector<std::string> parts = SplitAndTrim("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(StringsTest, TrimWhitespace) {
  EXPECT_EQ(TrimWhitespace("  x  "), "x");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace("   "), "");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("abcdef", "abc"));
  EXPECT_FALSE(StartsWith("ab", "abc"));
}

// --- Permutations ---------------------------------------------------------

TEST(PermutationTest, IdentityIsIdentity) {
  Permutation id = Permutation::Identity(5);
  EXPECT_TRUE(id.IsIdentity());
  EXPECT_EQ(static_cast<std::uint64_t>(id.Order()), 1u);
}

TEST(PermutationTest, CreateRejectsNonBijections) {
  EXPECT_FALSE(Permutation::Create({0, 0, 1}).ok());
  EXPECT_FALSE(Permutation::Create({0, 3, 1}).ok());
  EXPECT_TRUE(Permutation::Create({2, 0, 1}).ok());
}

TEST(PermutationTest, ComposeAndInverse) {
  Permutation p = Permutation::Create({1, 2, 0}).value();  // 3-cycle
  Permutation q = p.Compose(p.Inverse());
  EXPECT_TRUE(q.IsIdentity());
  EXPECT_EQ(static_cast<std::uint64_t>(p.Order()), 3u);
}

TEST(PermutationTest, ComposeIsFunctionComposition) {
  // p = (0 1), q = (1 2); p.Compose(q) maps i to p(q(i)).
  Permutation p = Permutation::Create({1, 0, 2}).value();
  Permutation q = Permutation::Create({0, 2, 1}).value();
  Permutation pq = p.Compose(q);
  EXPECT_EQ(pq(0), 1u);  // q(0)=0, p(0)=1
  EXPECT_EQ(pq(1), 2u);  // q(1)=2, p(2)=2
  EXPECT_EQ(pq(2), 0u);  // q(2)=1, p(1)=0
}

TEST(PermutationTest, PowerMatchesRepeatedComposition) {
  Permutation p = Permutation::Create({1, 2, 3, 4, 0}).value();  // 5-cycle
  Permutation p3 = p.Compose(p).Compose(p);
  EXPECT_EQ(p.Power(3), p3);
  EXPECT_TRUE(p.Power(5).IsIdentity());
  EXPECT_TRUE(p.Power(0).IsIdentity());
}

TEST(PermutationTest, CycleLengths) {
  // (0 1 2)(3 4) on 6 points: cycles 3, 2, 1.
  Permutation p = Permutation::FromCycleLengths(6, {3, 2}).value();
  std::vector<std::uint64_t> lengths = p.CycleLengths();
  ASSERT_EQ(lengths.size(), 3u);
  EXPECT_EQ(lengths[0], 3u);
  EXPECT_EQ(lengths[1], 2u);
  EXPECT_EQ(lengths[2], 1u);
  EXPECT_EQ(static_cast<std::uint64_t>(p.Order()), 6u);
}

TEST(PermutationTest, OrderIsLcmOfCycleLengths) {
  Permutation p = Permutation::FromCycleLengths(9, {4, 3, 2}).value();
  EXPECT_EQ(static_cast<std::uint64_t>(p.Order()), 12u);
  EXPECT_TRUE(p.Power(12).IsIdentity());
  EXPECT_FALSE(p.Power(6).IsIdentity());
}

TEST(PermutationTest, TranspositionSwapsZeroAndI) {
  Permutation t = Permutation::Transposition(4, 2);
  EXPECT_EQ(t(0), 2u);
  EXPECT_EQ(t(2), 0u);
  EXPECT_EQ(t(1), 1u);
  EXPECT_EQ(static_cast<std::uint64_t>(t.Order()), 2u);
}

TEST(PermutationTest, FromCycleLengthsRejectsOverflow) {
  EXPECT_FALSE(Permutation::FromCycleLengths(3, {2, 2}).ok());
  EXPECT_FALSE(Permutation::FromCycleLengths(3, {0}).ok());
}

TEST(PermutationTest, ToStringUsesCycleNotation) {
  Permutation p = Permutation::FromCycleLengths(5, {3, 2}).value();
  EXPECT_EQ(p.ToString(), "(0 1 2)(3 4)");
  EXPECT_EQ(Permutation::Identity(3).ToString(), "()");
}

TEST(Uint128Test, ToStringSmallAndLarge) {
  EXPECT_EQ(Uint128ToString(0), "0");
  EXPECT_EQ(Uint128ToString(12345), "12345");
  unsigned __int128 big = static_cast<unsigned __int128>(1) << 100;
  EXPECT_EQ(Uint128ToString(big), "1267650600228229401496703205376");
}

// --- Budget ----------------------------------------------------------------

TEST(BudgetTest, SplitSharesEveryCounterWithAFloorOfOne) {
  Budget b;
  b.steps = 10;
  b.tuples = 3;
  b.expressions = 100;
  Budget share = b.Split(4);
  EXPECT_EQ(share.steps, 2u);
  EXPECT_EQ(share.expressions, 25u);
  // A nonzero counter smaller than the part count still yields a sliver
  // of 1: every stage can fire at least once.
  EXPECT_EQ(share.tuples, 1u);
  // Byte ceiling and deadline bound *shared* state, not consumable
  // rates: they pass through unchanged.
  EXPECT_EQ(share.bytes, b.bytes);
  EXPECT_EQ(share.deadline, b.deadline);
}

TEST(BudgetTest, SplitOfADrainedCounterStaysDrained) {
  // The regression this pins: the floor-of-one used to apply to drained
  // counters too, so splitting an exhausted budget resurrected one step
  // per stage and a hard stop leaked extra work downstream. A counter
  // at 0 must split to 0 (engines treat 0 as immediate exhaustion).
  Budget drained;
  drained.steps = 0;
  drained.tuples = 0;
  drained.expressions = 5;
  Budget share = drained.Split(8);
  EXPECT_EQ(share.steps, 0u);
  EXPECT_EQ(share.tuples, 0u);
  EXPECT_EQ(share.expressions, 1u);
  // Splitting the drained share again keeps it drained.
  EXPECT_EQ(share.Split(3).steps, 0u);
  EXPECT_EQ(share.Split(3).expressions, 1u);
}

// --- RNG -------------------------------------------------------------------

TEST(RngTest, Deterministic) {
  SplitMix64 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, BelowStaysInRange) {
  SplitMix64 rng(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
    std::uint64_t v = rng.Between(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

}  // namespace
}  // namespace ccfp
