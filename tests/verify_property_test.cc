// Differential property tests for the incremental verification layer
// (verify/verifier.h) and the surgical partition repair underneath it
// (core/workspace.h): randomized append / merge / kill traces driven
// through an InternedWorkspace, asserting at every cursor position that
//   * watcher verdicts agree with the workspace full-sweep engine AND
//     with a freshly interned IdDatabase of the materialized state (whose
//     partitions were never repaired — the ground truth for the repair
//     machinery);
//   * violation witnesses agree across all three, modulo the alive-rank
//     index mapping between workspace slots and the materialized tuples;
//   * feed compaction is invisible: cursor-respecting CompactFeeds never
//     changes a verdict, and a *forced* trim past the verifier's cursor
//     triggers a horizon rebuild that still lands on the same answers.
// The shared trace driver lives in tests/trace_util.h.
#include <gtest/gtest.h>

#include <vector>

#include "chase/workspace_chase.h"
#include "core/workspace.h"
#include "tests/trace_util.h"
#include "util/rng.h"
#include "verify/verifier.h"

namespace ccfp {
namespace {

using testutil::AppendRandomTuple;
using testutil::CheckAgreement;
using testutil::MergeRandomValues;
using testutil::RandomScheme;
using testutil::RandomUniverse;

class VerifyPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VerifyPropertyTest, WatchersMatchSweepOnRandomTraces) {
  SplitMix64 rng(GetParam());
  SchemePtr scheme = RandomScheme(rng);
  std::vector<Dependency> deps = RandomUniverse(scheme, rng, 14);
  if (deps.empty()) return;

  InternedWorkspace ws(scheme);
  std::vector<ValueId> pool;
  // A prefix of mutations *before* the verifier exists: watchers must
  // initialize from non-trivial state, not just consume a feed from zero.
  for (int i = 0; i < 6; ++i) AppendRandomTuple(ws, rng, pool);
  MergeRandomValues(ws, rng, pool);

  IncrementalVerifier verifier(&ws);
  std::vector<WatchId> ids;
  for (const Dependency& dep : deps) ids.push_back(verifier.Watch(dep));
  // Watching twice returns the same id (watcher state is shared).
  for (std::size_t i = 0; i < deps.size(); ++i) {
    EXPECT_EQ(verifier.Watch(deps[i]), ids[i]);
  }
  CheckAgreement(ws, verifier, deps, ids);

  for (int batch = 0; batch < 8; ++batch) {
    std::size_t ops = 1 + rng.Below(4);
    for (std::size_t op = 0; op < ops; ++op) {
      if (rng.Chance(2, 3)) {
        AppendRandomTuple(ws, rng, pool);
      } else {
        MergeRandomValues(ws, rng, pool);
      }
    }
    CheckAgreement(ws, verifier, deps, ids);
  }
}

TEST_P(VerifyPropertyTest, WatchersMatchSweepAcrossChaseRounds) {
  // The real producer of rewrite/kill events: a resumable FD+IND chase.
  // After every fixpoint the verifier must agree with the sweep engine —
  // this is the "verify mid-chase without epoch churn" contract.
  SplitMix64 rng(GetParam() * 7919 + 3);
  SchemePtr scheme = RandomScheme(rng);
  std::vector<Dependency> universe = RandomUniverse(scheme, rng, 12);
  if (universe.empty()) return;

  std::vector<Fd> fds;
  std::vector<Ind> inds;
  for (const Dependency& dep : RandomUniverse(scheme, rng, 8)) {
    if (dep.is_fd() && !dep.fd().lhs.empty()) fds.push_back(dep.fd());
    // Acyclic IND sigma (strictly ascending relation chain), so the
    // chase terminates without a budget dance.
    if (dep.is_ind() && dep.ind().lhs_rel < dep.ind().rhs_rel) {
      inds.push_back(dep.ind());
    }
  }

  InternedWorkspace ws(scheme);
  std::vector<ValueId> pool;
  for (int i = 0; i < 5; ++i) AppendRandomTuple(ws, rng, pool);

  WorkspaceChase chaser(&ws, fds, inds);
  IncrementalVerifier verifier(&ws);
  std::vector<WatchId> ids;
  for (const Dependency& dep : universe) ids.push_back(verifier.Watch(dep));

  for (int round = 0; round < 4; ++round) {
    Result<WorkspaceChaseStats> run = chaser.Run({});
    ASSERT_TRUE(run.ok()) << run.status();
    if (run->outcome == ChaseOutcome::kFailed) return;  // constant clash
    // The chase is caught up with the feed at a fixpoint.
    for (RelId rel = 0; rel < scheme->size(); ++rel) {
      EXPECT_EQ(chaser.event_cursor(rel), ws.EventCount(rel));
    }
    CheckAgreement(ws, verifier, universe, ids);
    for (int i = 0; i < 3; ++i) AppendRandomTuple(ws, rng, pool);
  }
}

TEST_P(VerifyPropertyTest, CursorRespectingCompactionIsInvisible) {
  // CompactFeeds between batches: the verifier's registered cursor pins
  // the un-replayed suffix, so compaction must never change a verdict and
  // must never force a rebuild.
  SplitMix64 rng(GetParam() * 104729 + 11);
  SchemePtr scheme = RandomScheme(rng);
  std::vector<Dependency> deps = RandomUniverse(scheme, rng, 10);
  if (deps.empty()) return;

  InternedWorkspace ws(scheme);
  std::vector<ValueId> pool;
  for (int i = 0; i < 5; ++i) AppendRandomTuple(ws, rng, pool);

  IncrementalVerifier verifier(&ws);
  std::vector<WatchId> ids;
  for (const Dependency& dep : deps) ids.push_back(verifier.Watch(dep));

  for (int batch = 0; batch < 6; ++batch) {
    std::size_t ops = 1 + rng.Below(4);
    for (std::size_t op = 0; op < ops; ++op) {
      if (rng.Chance(2, 3)) {
        AppendRandomTuple(ws, rng, pool);
      } else {
        MergeRandomValues(ws, rng, pool);
      }
    }
    // Compact *before* the verifier catches up: the registered cursor
    // must hold the unconsumed suffix in place.
    ws.CompactFeeds();
    CheckAgreement(ws, verifier, deps, ids);
    // Caught up: now the whole retained window is trimmable.
    ws.CompactFeeds();
    for (RelId rel = 0; rel < scheme->size(); ++rel) {
      EXPECT_EQ(ws.FeedBase(rel), ws.EventCount(rel))
          << "caught-up consumer should not pin the feed";
    }
    CheckAgreement(ws, verifier, deps, ids);
  }
  EXPECT_EQ(verifier.stats().horizon_rebuilds, 0u)
      << "cursor-respecting compaction must never strand the verifier";
  EXPECT_GT(ws.stats().feed_compactions, 0u);
}

TEST_P(VerifyPropertyTest, ForcedTrimTriggersHorizonRebuildSameVerdicts) {
  // TrimFeedTo ignores registered cursors — the disaster-recovery path.
  // The verifier must notice it is stranded, rebuild that relation's
  // counters from alive ranks, and still agree with the sweep and a
  // fresh re-intern at every later cursor position.
  SplitMix64 rng(GetParam() * 65537 + 7);
  SchemePtr scheme = RandomScheme(rng);
  std::vector<Dependency> deps = RandomUniverse(scheme, rng, 12);
  if (deps.empty()) return;

  InternedWorkspace ws(scheme);
  std::vector<ValueId> pool;
  for (int i = 0; i < 6; ++i) AppendRandomTuple(ws, rng, pool);

  IncrementalVerifier verifier(&ws);
  std::vector<WatchId> ids;
  for (const Dependency& dep : deps) ids.push_back(verifier.Watch(dep));
  CheckAgreement(ws, verifier, deps, ids);

  bool stranded = false;
  for (int batch = 0; batch < 6; ++batch) {
    std::vector<std::uint64_t> before;
    for (RelId rel = 0; rel < scheme->size(); ++rel) {
      before.push_back(ws.EventCount(rel));
    }
    std::size_t ops = 1 + rng.Below(4);
    for (std::size_t op = 0; op < ops; ++op) {
      if (rng.Chance(2, 3)) {
        AppendRandomTuple(ws, rng, pool);
      } else {
        MergeRandomValues(ws, rng, pool);
      }
    }
    // Force-trim every relation's full feed while the verifier has not
    // replayed this batch yet.
    for (RelId rel = 0; rel < scheme->size(); ++rel) {
      if (ws.EventCount(rel) > before[rel]) stranded = true;
      ws.TrimFeedTo(rel, ws.EventCount(rel));
    }
    CheckAgreement(ws, verifier, deps, ids);
  }
  if (stranded) {
    EXPECT_GT(verifier.stats().horizon_rebuilds, 0u)
        << "forced trims with pending events should have stranded the "
           "cursor";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VerifyPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 61));

}  // namespace
}  // namespace ccfp
