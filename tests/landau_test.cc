#include <gtest/gtest.h>

#include "util/landau.h"
#include "util/permutation.h"

namespace ccfp {
namespace {

// Landau's function g(m) (OEIS A000793) for m = 0..20.
constexpr std::uint64_t kKnown[] = {1,  1,  2,  3,   4,   6,   6,
                                    12, 15, 20, 30,  30,  60,  60,
                                    84, 105, 140, 210, 210, 420, 420};

TEST(LandauTest, KnownSmallValues) {
  for (std::size_t m = 0; m <= 20; ++m) {
    EXPECT_EQ(static_cast<std::uint64_t>(LandauF(m)), kKnown[m])
        << "f(" << m << ")";
  }
}

TEST(LandauTest, MediumValues) {
  // f(30) = 4620, f(40) = 27720, f(50) = 180180 (OEIS A000793).
  EXPECT_EQ(static_cast<std::uint64_t>(LandauF(30)), 4620u);
  EXPECT_EQ(static_cast<std::uint64_t>(LandauF(40)), 27720u);
  EXPECT_EQ(static_cast<std::uint64_t>(LandauF(50)), 180180u);
}

TEST(LandauTest, MonotoneNondecreasing) {
  unsigned __int128 prev = 1;
  for (std::size_t m = 1; m <= 128; ++m) {
    unsigned __int128 cur = LandauF(m);
    EXPECT_GE(Uint128ToString(cur).size(), Uint128ToString(prev).size());
    EXPECT_TRUE(cur >= prev) << "f not monotone at m = " << m;
    prev = cur;
  }
}

TEST(LandauTest, PartitionAchievesTheValue) {
  for (std::size_t m : {5, 12, 16, 20, 31, 47, 64, 100}) {
    std::vector<std::uint64_t> parts = LandauPartition(m);
    std::uint64_t total = 0;
    for (std::uint64_t p : parts) total += p;
    EXPECT_LE(total, m);
    Permutation perm = Permutation::FromCycleLengths(m, parts).value();
    EXPECT_TRUE(perm.Order() == LandauF(m)) << "m = " << m;
  }
}

TEST(LandauTest, MaxOrderPermutationHasOrderF) {
  for (std::size_t m = 1; m <= 64; ++m) {
    Permutation perm = MaxOrderPermutation(m);
    EXPECT_EQ(perm.size(), m);
    EXPECT_TRUE(perm.Order() == LandauF(m)) << "m = " << m;
  }
}

TEST(LandauTest, NoPermutationBeatsF) {
  // Exhaustive sanity for tiny m: try a few hundred random permutations of
  // m points and check none has order above f(m).
  for (std::size_t m : {4, 6, 8, 10}) {
    unsigned __int128 f = LandauF(m);
    std::vector<std::uint32_t> map(m);
    for (std::size_t i = 0; i < m; ++i) map[i] = static_cast<std::uint32_t>(i);
    // Deterministic pseudo-shuffles.
    std::uint64_t state = 12345;
    for (int trial = 0; trial < 300; ++trial) {
      for (std::size_t i = m; i > 1; --i) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        std::swap(map[i - 1], map[state % i]);
      }
      Permutation p = Permutation::Create(map).value();
      EXPECT_TRUE(p.Order() <= f);
    }
  }
}

TEST(LandauTest, GrowthIsSuperpolynomial) {
  // log f(m) ~ sqrt(m log m) (Landau). Check the paper-relevant shape:
  // f(4m) / f(m) eventually exceeds any fixed polynomial ratio; a weak but
  // robust proxy: f(64) / f(16) > 64 and f(256) / f(64) > 256.
  EXPECT_TRUE(LandauF(64) > LandauF(16) * 64);
  EXPECT_TRUE(LandauF(256) > LandauF(64) * 256);
}

}  // namespace
}  // namespace ccfp
