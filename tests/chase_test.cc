#include <gtest/gtest.h>

#include "chase/chase.h"
#include "chase/emvd_chase.h"
#include "chase/ind_chase.h"
#include "core/parser.h"
#include "core/satisfies.h"

namespace ccfp {
namespace {

// --- Rule (*) IND chase --------------------------------------------------

TEST(IndChaseTest, PaperConstructionDecidesSimpleChain) {
  SchemePtr scheme = MakeScheme({{"R", {"A", "B"}}, {"S", {"C", "D"}}});
  std::vector<Ind> sigma = {MakeInd(*scheme, "R", {"A"}, "S", {"C"})};
  Result<IndChaseResult> yes = IndChaseDecide(
      scheme, sigma, MakeInd(*scheme, "R", {"A"}, "S", {"C"}));
  ASSERT_TRUE(yes.ok());
  EXPECT_TRUE(yes->implied);
  Result<IndChaseResult> no = IndChaseDecide(
      scheme, sigma, MakeInd(*scheme, "R", {"B"}, "S", {"C"}));
  ASSERT_TRUE(no.ok());
  EXPECT_FALSE(no->implied);
}

TEST(IndChaseTest, EntriesStayInZeroToM) {
  SchemePtr scheme = MakeScheme({{"R", {"A", "B"}}, {"S", {"C", "D"}}});
  std::vector<Ind> sigma = {
      MakeInd(*scheme, "R", {"A", "B"}, "S", {"C", "D"}),
      MakeInd(*scheme, "S", {"D"}, "R", {"A"}),
  };
  Result<IndChaseResult> result = IndChaseDecide(
      scheme, sigma, MakeInd(*scheme, "R", {"A", "B"}, "S", {"C", "D"}));
  ASSERT_TRUE(result.ok());
  const std::int64_t m = 2;  // target width
  for (RelId rel = 0; rel < scheme->size(); ++rel) {
    for (const Tuple& t : result->db.relation(rel).tuples()) {
      for (const Value& v : t) {
        ASSERT_TRUE(v.is_int());
        EXPECT_GE(v.as_int(), 0);
        EXPECT_LE(v.as_int(), m);
      }
    }
  }
}

TEST(IndChaseTest, FixpointSaturatesExistingDatabase) {
  SchemePtr scheme = MakeScheme({{"R", {"A"}}, {"S", {"B"}}});
  Database db(scheme);
  db.Insert(0, TupleOfInts({7}));
  std::vector<Ind> sigma = {MakeInd(*scheme, "R", {"A"}, "S", {"B"})};
  Result<std::uint64_t> added = IndChaseFixpoint(db, sigma);
  ASSERT_TRUE(added.ok());
  EXPECT_EQ(*added, 1u);
  EXPECT_TRUE(db.relation(1).Contains(TupleOfInts({7})));
  EXPECT_TRUE(Satisfies(db, sigma[0]));
}

TEST(IndChaseTest, BudgetTripsOnLargeConstructions) {
  SchemePtr scheme = MakeScheme({{"R", {"A", "B", "C"}}});
  // Rotation IND: generates many tuples under Rule (*).
  std::vector<Ind> sigma = {
      MakeInd(*scheme, "R", {"A", "B", "C"}, "R", {"B", "C", "A"})};
  IndChaseOptions options;
  options.max_tuples = 1;
  Result<IndChaseResult> result = IndChaseDecide(
      scheme, sigma,
      MakeInd(*scheme, "R", {"A", "B", "C"}, "R", {"C", "A", "B"}), options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

// --- FD+IND chase ------------------------------------------------------

class ChaseTest : public ::testing::Test {
 protected:
  SchemePtr scheme_ = MakeScheme({{"R", {"A", "B"}}, {"S", {"C", "D"}}});
};

TEST_F(ChaseTest, FdMergesNulls) {
  Database db(scheme_);
  db.Insert(0, {Value::Int(1), Value::Null(1)});
  db.Insert(0, {Value::Int(1), Value::Null(2)});
  Chase chase(scheme_, {MakeFd(*scheme_, "R", {"A"}, {"B"})}, {});
  Result<ChaseResult> result = chase.Run(db);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->outcome, ChaseOutcome::kFixpoint);
  EXPECT_EQ(result->db.relation(0).size(), 1u);
  EXPECT_GE(result->fd_merges, 1u);
}

TEST_F(ChaseTest, FdConstantClashFails) {
  Database db(scheme_);
  db.Insert(0, TupleOfInts({1, 10}));
  db.Insert(0, TupleOfInts({1, 20}));
  Chase chase(scheme_, {MakeFd(*scheme_, "R", {"A"}, {"B"})}, {});
  Result<ChaseResult> result = chase.Run(db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome, ChaseOutcome::kFailed);
}

TEST_F(ChaseTest, FdResolvesNullToConstant) {
  Database db(scheme_);
  db.Insert(0, {Value::Int(1), Value::Int(42)});
  db.Insert(0, {Value::Int(1), Value::Null(5)});
  Chase chase(scheme_, {MakeFd(*scheme_, "R", {"A"}, {"B"})}, {});
  Result<ChaseResult> result = chase.Run(db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome, ChaseOutcome::kFixpoint);
  ASSERT_EQ(result->db.relation(0).size(), 1u);
  EXPECT_EQ(result->db.relation(0).tuples()[0][1], Value::Int(42));
}

TEST_F(ChaseTest, IndCreatesTupleWithFreshNulls) {
  Database db(scheme_);
  db.Insert(0, TupleOfInts({1, 2}));
  Chase chase(scheme_, {}, {MakeInd(*scheme_, "R", {"A"}, "S", {"C"})});
  Result<ChaseResult> result = chase.Run(db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome, ChaseOutcome::kFixpoint);
  ASSERT_EQ(result->db.relation(1).size(), 1u);
  const Tuple& t = result->db.relation(1).tuples()[0];
  EXPECT_EQ(t[0], Value::Int(1));
  EXPECT_TRUE(t[1].is_null());  // D padded with a fresh null
  EXPECT_TRUE(Satisfies(result->db, MakeInd(*scheme_, "R", {"A"}, "S",
                                            {"C"})));
}

TEST_F(ChaseTest, CyclicIndsExhaustBudget) {
  // R[A] <= R[B] with an FD forcing divergence is fine, but a plain
  // "shift" cycle with fresh nulls never closes: R[A] <= S[C], S[D] <= R[A]
  // keeps manufacturing tuples.
  SchemePtr scheme = MakeScheme({{"R", {"A", "B"}}, {"S", {"C", "D"}}});
  std::vector<Ind> inds = {MakeInd(*scheme, "R", {"B"}, "S", {"C"}),
                           MakeInd(*scheme, "S", {"D"}, "R", {"B"})};
  Database db(scheme);
  db.Insert(0, {Value::Null(1), Value::Null(2)});
  Chase chase(scheme, {}, inds);
  ChaseOptions options;
  options.max_steps = 200;
  options.max_tuples = 100;
  Result<ChaseResult> result = chase.Run(db, options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(ChaseTest, FixpointSatisfiesAllDependencies) {
  Database db(scheme_);
  db.Insert(0, {Value::Null(1), Value::Null(2)});
  db.Insert(0, {Value::Null(1), Value::Null(3)});
  std::vector<Fd> fds = {MakeFd(*scheme_, "R", {"A"}, {"B"}),
                         MakeFd(*scheme_, "S", {"C"}, {"D"})};
  std::vector<Ind> inds = {
      MakeInd(*scheme_, "R", {"A", "B"}, "S", {"C", "D"})};
  Chase chase(scheme_, fds, inds);
  Result<ChaseResult> result = chase.Run(db);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->outcome, ChaseOutcome::kFixpoint);
  for (const Fd& fd : fds) EXPECT_TRUE(Satisfies(result->db, fd));
  for (const Ind& ind : inds) EXPECT_TRUE(Satisfies(result->db, ind));
}

// --- ChaseImplies (semi-decision of |=) -------------------------------

TEST_F(ChaseTest, ChaseImpliesProposition41) {
  // {R[A,B] <= S[C,D], S: C -> D} |= R: A -> B  (Proposition 4.1 with
  // X = A, Y = B, T = C, U = D).
  std::vector<Fd> fds = {MakeFd(*scheme_, "S", {"C"}, {"D"})};
  std::vector<Ind> inds = {
      MakeInd(*scheme_, "R", {"A", "B"}, "S", {"C", "D"})};
  Result<bool> implied = ChaseImplies(
      scheme_, fds, inds, Dependency(MakeFd(*scheme_, "R", {"A"}, {"B"})));
  ASSERT_TRUE(implied.ok()) << implied.status();
  EXPECT_TRUE(*implied);
  // And not the converse FD.
  Result<bool> not_implied = ChaseImplies(
      scheme_, fds, inds, Dependency(MakeFd(*scheme_, "R", {"B"}, {"A"})));
  ASSERT_TRUE(not_implied.ok());
  EXPECT_FALSE(*not_implied);
}

TEST_F(ChaseTest, ChaseImpliesProposition43Rd) {
  // {R[XY] <= S[TU], R[XZ] <= S[TU], S: T -> U} |= R[Y = Z].
  SchemePtr scheme = MakeScheme({{"R", {"X", "Y", "Z"}}, {"S", {"T", "U"}}});
  std::vector<Fd> fds = {MakeFd(*scheme, "S", {"T"}, {"U"})};
  std::vector<Ind> inds = {
      MakeInd(*scheme, "R", {"X", "Y"}, "S", {"T", "U"}),
      MakeInd(*scheme, "R", {"X", "Z"}, "S", {"T", "U"})};
  Result<bool> implied = ChaseImplies(
      scheme, fds, inds, Dependency(MakeRd(*scheme, "R", {"Y"}, {"Z"})));
  ASSERT_TRUE(implied.ok()) << implied.status();
  EXPECT_TRUE(*implied);
}

TEST_F(ChaseTest, ChaseDivergesOnTheorem44Gadget) {
  // Theorem 4.4's gadget {R: A -> B, R[A] <= R[B]} has only *infinite*
  // countermodels for its conclusions, so the chase cannot terminate: its
  // universal model is the infinite Figure 4.1 relation. The budgeted
  // chase must report ResourceExhausted rather than guess.
  std::vector<Fd> fds = {MakeFd(*scheme_, "R", {"A"}, {"B"})};
  std::vector<Ind> inds = {MakeInd(*scheme_, "R", {"A"}, "R", {"B"})};
  ChaseOptions options;
  options.max_steps = 500;
  options.max_tuples = 500;
  Result<bool> ind_concl = ChaseImplies(
      scheme_, fds, inds,
      Dependency(MakeInd(*scheme_, "R", {"B"}, "R", {"A"})), options);
  ASSERT_FALSE(ind_concl.ok());
  EXPECT_EQ(ind_concl.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(ChaseTest, ChaseAgreesWithIndEngineOnPureInds) {
  SchemePtr scheme = MakeScheme(
      {{"R", {"A", "B"}}, {"S", {"C", "D"}}, {"T", {"E", "F"}}});
  std::vector<Ind> inds = {
      MakeInd(*scheme, "R", {"A", "B"}, "S", {"C", "D"}),
      MakeInd(*scheme, "S", {"D", "C"}, "T", {"E", "F"}),
  };
  for (const Ind& target :
       {MakeInd(*scheme, "R", {"B", "A"}, "T", {"E", "F"}),
        MakeInd(*scheme, "R", {"A"}, "T", {"E"}),
        MakeInd(*scheme, "R", {"A"}, "T", {"F"})}) {
    Result<bool> via_chase =
        ChaseImplies(scheme, {}, inds, Dependency(target));
    ASSERT_TRUE(via_chase.ok());
    Result<IndChaseResult> via_rule_star =
        IndChaseDecide(scheme, inds, target);
    ASSERT_TRUE(via_rule_star.ok());
    EXPECT_EQ(*via_chase, via_rule_star->implied)
        << Dependency(target).ToString(*scheme);
  }
}

TEST_F(ChaseTest, DeepNullMergeChainDoesNotOverflowTheStack) {
  // Regression: pairs unioned in decreasing null order build a
  // root-under-root parent chain that is only walked when the merged
  // values are substituted back — at ~120k links the old *recursive*
  // ValueUnion::Find blew the stack. Both engines must chew through it.
  constexpr std::uint64_t kChain = 120000;
  Database db(scheme_);
  for (std::uint64_t k = kChain; k >= 1; --k) {
    db.Insert(0, {Value::Int(static_cast<std::int64_t>(k)), Value::Null(k)});
    db.Insert(0,
              {Value::Int(static_cast<std::int64_t>(k)), Value::Null(k + 1)});
  }
  Chase chase(scheme_, {MakeFd(*scheme_, "R", {"A"}, {"B"})}, {});
  ChaseOptions options;
  options.max_steps = 4 * kChain;
  options.max_tuples = 4 * kChain;
  for (ChaseEngine engine : {ChaseEngine::kNaive, ChaseEngine::kIncremental}) {
    options.engine = engine;
    Result<ChaseResult> result = chase.Run(db, options);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->outcome, ChaseOutcome::kFixpoint);
    // Every null collapses into _n1; the pairs dedupe to one tuple per key.
    EXPECT_EQ(result->db.relation(0).size(), kChain);
    EXPECT_EQ(result->fd_merges, kChain);
    for (const Tuple& t : result->db.relation(0).tuples()) {
      EXPECT_EQ(t[1], Value::Null(1));
    }
  }
}

TEST_F(ChaseTest, ChaseIsDeterministic) {
  // Same input, same output: fresh-null numbering, worklist order, and
  // merge tie-breaking are all deterministic.
  SchemePtr scheme = MakeScheme({{"R", {"A", "B"}}, {"S", {"C", "D"}}});
  std::vector<Fd> fds = {MakeFd(*scheme, "S", {"C"}, {"D"})};
  std::vector<Ind> inds = {
      MakeInd(*scheme, "R", {"A", "B"}, "S", {"C", "D"})};
  Chase chase(scheme, fds, inds);
  auto run_once = [&]() {
    Database seed(scheme);
    seed.Insert(0, {Value::Null(1), Value::Null(2)});
    seed.Insert(0, {Value::Null(1), Value::Null(3)});
    Result<ChaseResult> result = chase.Run(std::move(seed));
    EXPECT_TRUE(result.ok());
    return result->db;
  };
  Database first = run_once();
  Database second = run_once();
  EXPECT_TRUE(first == second);
  EXPECT_EQ(first.ToString(), second.ToString());
}

// --- EMVD chase -----------------------------------------------------------

TEST(EmvdChaseTest, SingleEmvdImpliesItself) {
  SchemePtr scheme = MakeScheme({{"R", {"A", "B", "C"}}});
  Emvd e = MakeEmvd(*scheme, "R", {"A"}, {"B"}, {"C"});
  Result<bool> implied = EmvdChaseImplies(scheme, {e}, e);
  ASSERT_TRUE(implied.ok()) << implied.status();
  EXPECT_TRUE(*implied);
}

TEST(EmvdChaseTest, IndependentEmvdNotImplied) {
  SchemePtr scheme = MakeScheme({{"R", {"A", "B", "C", "D"}}});
  Emvd premise = MakeEmvd(*scheme, "R", {"A"}, {"B"}, {"C"});
  Emvd target = MakeEmvd(*scheme, "R", {"B"}, {"C"}, {"D"});
  Result<bool> implied = EmvdChaseImplies(scheme, {premise}, target);
  // Either the chase reaches a fixpoint and refutes, or the budget trips;
  // it must never claim implication.
  if (implied.ok()) {
    EXPECT_FALSE(*implied);
  } else {
    EXPECT_EQ(implied.status().code(), StatusCode::kResourceExhausted);
  }
}

TEST(EmvdChaseTest, CrossPairWitnessedByLaterTupleIsNotDuplicated) {
  // Regression for the delta-driven rounds: the cross pair
  // (t2[XY], t1[XZ]) = (a,b2 | a,c1) is already witnessed by t3 itself,
  // so only the (t1[XY], t2[XZ]) = (a,b1 | a,c2) witness may be created.
  // Lazily seeding self-pairs per tuple (instead of for the whole delta
  // up front) used to spawn a spurious second witness.
  SchemePtr scheme = MakeScheme({{"R", {"A", "B", "C", "D"}}});
  Emvd e = MakeEmvd(*scheme, "R", {"A"}, {"B"}, {"C"});
  Database db(scheme);
  db.Insert(0, TupleOfInts({1, 10, 100, 1000}));
  db.Insert(0, TupleOfInts({1, 20, 200, 2000}));
  db.Insert(0, TupleOfInts({1, 20, 100, 3000}));
  Result<std::uint64_t> added = EmvdChaseFixpoint(db, {e});
  ASSERT_TRUE(added.ok()) << added.status();
  EXPECT_EQ(*added, 1u);
  EXPECT_EQ(db.relation(0).size(), 4u);
  EXPECT_TRUE(Satisfies(db, e));
}

TEST(EmvdChaseTest, FixpointSatisfiesSigma) {
  SchemePtr scheme = MakeScheme({{"R", {"A", "B", "C"}}});
  Emvd e = MakeEmvd(*scheme, "R", {"A"}, {"B"}, {"C"});
  Database db(scheme);
  db.Insert(0, TupleOfInts({1, 10, 100}));
  db.Insert(0, TupleOfInts({1, 20, 200}));
  Result<std::uint64_t> added = EmvdChaseFixpoint(db, {e});
  ASSERT_TRUE(added.ok()) << added.status();
  EXPECT_TRUE(Satisfies(db, e));
  EXPECT_EQ(*added, 2u);  // the two missing cross tuples
}

}  // namespace
}  // namespace ccfp
