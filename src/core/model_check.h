#ifndef CCFP_CORE_MODEL_CHECK_H_
#define CCFP_CORE_MODEL_CHECK_H_

#include <cstdint>
#include <optional>
#include <unordered_set>
#include <vector>

#include "core/dependency.h"
#include "core/intern.h"
#include "core/interned.h"
#include "core/tuple.h"

namespace ccfp {
namespace model_check {

/// The one id-space model-checking implementation, shared by the two
/// interned substrates via a *partition provider*:
///
///   * `IdDatabase` (core/interned.h) — an immutable snapshot; every slot
///     is alive;
///   * `InternedWorkspace` (core/workspace.h) — the mutable chase
///     substrate, whose partitions carry kNoGroup dead slots for tuples
///     merged away mid-chase.
///
/// A provider exposes the slot store and cached projection partitions:
///
///   std::uint32_t SlotCount(RelId) const;      // slots, dead included
///   std::size_t AliveCount(RelId) const;       // alive slots only
///   bool Alive(RelId, std::uint32_t) const;
///   const IdTuple& Slot(RelId, std::uint32_t) const;
///   const P& Partition(RelId, const std::vector<AttrId>&) const;
///
/// where P has `group_of` / `group_count` / `group_size` / `alive_groups`
/// / `key_to_group` (IdRelation::Partition and InternedWorkspace::
/// Partition are field-compatible). Dead slots are those whose `group_of`
/// entry is `kDeadGroup`; providers without dead slots simply never
/// produce it. A workspace partition that went through surgical repair
/// can additionally carry *tombstoned* groups (`group_size == 0`) whose
/// `key_to_group` entry lingers — every check below treats a key hit on a
/// tombstone as a miss, and none relies on group ids being in
/// first-occurrence order (repairs keep ids stable rather than sorted).
///
/// Both substrates are pinned by the differential suites
/// (tests/satisfies_property_test.cc, tests/emvd_chase_property_test.cc),
/// which rely on the witness order being identical across engines: every
/// scan below walks slots front-to-back, so the first violation reported
/// matches a legacy front-to-back scan.
inline constexpr std::uint32_t kDeadGroup = UINT32_MAX;

template <typename Provider>
bool SatisfiesFd(const Provider& p, const Fd& fd) {
  if (p.AliveCount(fd.rel) == 0) return true;
  const auto& lhs = p.Partition(fd.rel, fd.lhs);
  const auto& rhs = p.Partition(fd.rel, fd.rhs);
  // The FD holds iff the lhs partition refines the rhs partition.
  std::vector<std::uint32_t> seen(lhs.group_count, UINT32_MAX);
  std::uint32_t n = p.SlotCount(fd.rel);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint32_t g = lhs.group_of[i];
    if (g == kDeadGroup) continue;
    std::uint32_t h = rhs.group_of[i];
    if (seen[g] == UINT32_MAX) {
      seen[g] = h;
    } else if (seen[g] != h) {
      return false;
    }
  }
  return true;
}

/// True iff `key` names a group with at least one alive member of `p`
/// (tombstoned groups left behind by surgical repair do not count).
template <typename P>
bool HasAliveGroup(const P& p, const IdTuple& key) {
  auto it = p.key_to_group.find(key);
  return it != p.key_to_group.end() && p.group_size[it->second] > 0;
}

template <typename Provider>
bool SatisfiesInd(const Provider& p, const Ind& ind) {
  if (p.AliveCount(ind.lhs_rel) == 0) return true;
  const auto& lhs_p = p.Partition(ind.lhs_rel, ind.lhs);
  const auto& rhs_p = p.Partition(ind.rhs_rel, ind.rhs);
  // Each alive lhs group's key IS the projection of its members onto
  // ind.lhs — probe it into the rhs partition directly.
  for (const auto& [key, g] : lhs_p.key_to_group) {
    if (lhs_p.group_size[g] == 0) continue;  // tombstone
    if (!HasAliveGroup(rhs_p, key)) return false;
  }
  return true;
}

template <typename Provider>
bool SatisfiesRd(const Provider& p, const Rd& rd) {
  std::uint32_t n = p.SlotCount(rd.rel);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (!p.Alive(rd.rel, i)) continue;
    const IdTuple& t = p.Slot(rd.rel, i);
    for (std::size_t k = 0; k < rd.lhs.size(); ++k) {
      if (t[rd.lhs[k]] != t[rd.rhs[k]]) return false;
    }
  }
  return true;
}

template <typename Provider>
bool SatisfiesEmvdOn(const Provider& p, RelId rel,
                     const std::vector<AttrId>& x,
                     const std::vector<AttrId>& y,
                     const std::vector<AttrId>& z) {
  if (p.AliveCount(rel) == 0) return true;
  std::vector<AttrId> xy = AppendDistinctAttrs(x, y);
  std::vector<AttrId> xz = AppendDistinctAttrs(x, z);
  const auto& x_p = p.Partition(rel, x);
  const auto& xy_p = p.Partition(rel, xy);
  const auto& xz_p = p.Partition(rel, xz);
  // Per X-group distinct XY / XZ / (XY, XZ) counts. XY refines X, so an XY
  // group belongs to exactly one X group (likewise XZ and pairs) — the
  // group obeys the EMVD iff pairs == xy_distinct * xz_distinct.
  std::vector<std::uint32_t> ny(x_p.group_count, 0);
  std::vector<std::uint32_t> nz(x_p.group_count, 0);
  std::vector<std::uint64_t> np(x_p.group_count, 0);
  std::vector<std::uint8_t> seen_xy(xy_p.group_count, 0);
  std::vector<std::uint8_t> seen_xz(xz_p.group_count, 0);
  std::unordered_set<std::uint64_t> pairs;
  pairs.reserve(p.AliveCount(rel));
  std::uint32_t n = p.SlotCount(rel);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint32_t g = x_p.group_of[i];
    if (g == kDeadGroup) continue;
    std::uint32_t gy = xy_p.group_of[i];
    std::uint32_t gz = xz_p.group_of[i];
    if (!seen_xy[gy]) {
      seen_xy[gy] = 1;
      ++ny[g];
    }
    if (!seen_xz[gz]) {
      seen_xz[gz] = 1;
      ++nz[g];
    }
    if (pairs.insert(PackIdPair(gy, gz)).second) ++np[g];
  }
  for (std::uint32_t g = 0; g < x_p.group_count; ++g) {
    if (static_cast<std::uint64_t>(ny[g]) * nz[g] != np[g]) return false;
  }
  return true;
}

template <typename Provider>
bool SatisfiesDependency(const Provider& p, const DatabaseScheme& scheme,
                         const Dependency& dep) {
  switch (dep.kind()) {
    case DependencyKind::kFd:
      return SatisfiesFd(p, dep.fd());
    case DependencyKind::kInd:
      return SatisfiesInd(p, dep.ind());
    case DependencyKind::kRd:
      return SatisfiesRd(p, dep.rd());
    case DependencyKind::kEmvd:
      return SatisfiesEmvdOn(p, dep.emvd().rel, dep.emvd().x, dep.emvd().y,
                             dep.emvd().z);
    case DependencyKind::kMvd:
      return SatisfiesEmvdOn(p, dep.mvd().rel, dep.mvd().x, dep.mvd().y,
                             MvdComplement(scheme, dep.mvd()));
  }
  return false;
}

template <typename Provider>
std::optional<IdViolation> FindEmvdViolation(const Provider& p, RelId rel,
                                             const std::vector<AttrId>& x,
                                             const std::vector<AttrId>& y,
                                             const std::vector<AttrId>& z) {
  if (SatisfiesEmvdOn(p, rel, x, y, z)) return std::nullopt;
  std::vector<AttrId> xy = AppendDistinctAttrs(x, y);
  std::vector<AttrId> xz = AppendDistinctAttrs(x, z);
  const auto& x_p = p.Partition(rel, x);
  const auto& xy_p = p.Partition(rel, xy);
  const auto& xz_p = p.Partition(rel, xz);
  std::uint32_t n = p.SlotCount(rel);
  std::unordered_set<std::uint64_t> pairs;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (x_p.group_of[i] == kDeadGroup) continue;
    pairs.insert(PackIdPair(xy_p.group_of[i], xz_p.group_of[i]));
  }
  // Diagnostics path only: quadratic scan for the first same-group pair
  // whose (XY, XZ) combination has no witness tuple.
  for (std::uint32_t i = 0; i < n; ++i) {
    if (x_p.group_of[i] == kDeadGroup) continue;
    for (std::uint32_t j = 0; j < n; ++j) {
      if (x_p.group_of[i] != x_p.group_of[j]) continue;
      if (pairs.count(PackIdPair(xy_p.group_of[i], xz_p.group_of[j])) == 0) {
        return IdViolation{rel, {i, j}};
      }
    }
  }
  return IdViolation{rel, {}};  // unreachable if Satisfies was false
}

template <typename Provider>
std::optional<IdViolation> FindViolation(const Provider& p,
                                         const DatabaseScheme& scheme,
                                         const Dependency& dep) {
  switch (dep.kind()) {
    case DependencyKind::kFd: {
      const Fd& fd = dep.fd();
      if (p.AliveCount(fd.rel) == 0) return std::nullopt;
      const auto& lhs = p.Partition(fd.rel, fd.lhs);
      const auto& rhs = p.Partition(fd.rel, fd.rhs);
      std::vector<std::uint32_t> first(lhs.group_count, UINT32_MAX);
      std::uint32_t n = p.SlotCount(fd.rel);
      for (std::uint32_t i = 0; i < n; ++i) {
        std::uint32_t g = lhs.group_of[i];
        if (g == kDeadGroup) continue;
        if (first[g] == UINT32_MAX) {
          first[g] = i;
        } else if (rhs.group_of[first[g]] != rhs.group_of[i]) {
          return IdViolation{fd.rel, {first[g], i}};
        }
      }
      return std::nullopt;
    }
    case DependencyKind::kInd: {
      const Ind& ind = dep.ind();
      const auto& lhs_p = p.Partition(ind.lhs_rel, ind.lhs);
      const auto& rhs_p = p.Partition(ind.rhs_rel, ind.rhs);
      IdTuple key;
      // Front-to-back over slots, probing each group once — the first
      // slot of the first missing group in slot order is the witness,
      // identical to a legacy front-to-back scan (and independent of the
      // group numbering, which repairs do not keep sorted).
      std::vector<std::uint8_t> checked(lhs_p.group_count, 0);
      std::uint32_t n = p.SlotCount(ind.lhs_rel);
      for (std::uint32_t i = 0; i < n; ++i) {
        std::uint32_t g = lhs_p.group_of[i];
        if (g == kDeadGroup || checked[g]) continue;
        checked[g] = 1;
        const IdTuple& t = p.Slot(ind.lhs_rel, i);
        key.clear();
        for (AttrId c : ind.lhs) key.push_back(t[c]);
        if (!HasAliveGroup(rhs_p, key)) {
          return IdViolation{ind.lhs_rel, {i}};
        }
      }
      return std::nullopt;
    }
    case DependencyKind::kRd: {
      const Rd& rd = dep.rd();
      std::uint32_t n = p.SlotCount(rd.rel);
      for (std::uint32_t i = 0; i < n; ++i) {
        if (!p.Alive(rd.rel, i)) continue;
        const IdTuple& t = p.Slot(rd.rel, i);
        for (std::size_t k = 0; k < rd.lhs.size(); ++k) {
          if (t[rd.lhs[k]] != t[rd.rhs[k]]) {
            return IdViolation{rd.rel, {i}};
          }
        }
      }
      return std::nullopt;
    }
    case DependencyKind::kEmvd:
      return FindEmvdViolation(p, dep.emvd().rel, dep.emvd().x,
                               dep.emvd().y, dep.emvd().z);
    case DependencyKind::kMvd:
      return FindEmvdViolation(p, dep.mvd().rel, dep.mvd().x, dep.mvd().y,
                               MvdComplement(scheme, dep.mvd()));
  }
  return std::nullopt;
}

}  // namespace model_check
}  // namespace ccfp

#endif  // CCFP_CORE_MODEL_CHECK_H_
