#include "core/value.h"

#include "util/strings.h"

namespace ccfp {

std::string Value::ToString() const {
  switch (kind_) {
    case Kind::kNull:
      return StrCat("_n", int_);
    case Kind::kInt:
      return std::to_string(int_);
    case Kind::kStr:
      return StrCat("\"", str_, "\"");
  }
  return "?";
}

std::size_t Value::Hash() const {
  std::size_t h = static_cast<std::size_t>(kind_) * 0x9E3779B97F4A7C15ULL;
  h ^= std::hash<std::int64_t>{}(int_) + 0x9E3779B97F4A7C15ULL + (h << 6) +
       (h >> 2);
  if (kind_ == Kind::kStr) {
    h ^= std::hash<std::string>{}(str_) + 0x9E3779B97F4A7C15ULL + (h << 6) +
         (h >> 2);
  }
  return h;
}

}  // namespace ccfp
