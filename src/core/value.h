#ifndef CCFP_CORE_VALUE_H_
#define CCFP_CORE_VALUE_H_

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace ccfp {

/// A single column entry. Three kinds:
///  - Int: the constants the paper's constructions use (0, 1, ..., m);
///  - Str: named constants for user-facing examples ("Hilbert", "Math");
///  - Null: a *labeled null* (chase variable) with an identity. Two nulls are
///    equal iff their ids are equal; the FD chase merges null ids.
///
/// Values have a total order (kind, then payload) so relations can be kept
/// canonical and projections compared cheaply.
class Value {
 public:
  enum class Kind : std::uint8_t { kNull = 0, kInt = 1, kStr = 2 };

  /// Default-constructs the labeled null #0 (needed by containers).
  Value() : kind_(Kind::kNull), int_(0) {}

  static Value Null(std::uint64_t id) {
    Value v;
    v.kind_ = Kind::kNull;
    v.int_ = static_cast<std::int64_t>(id);
    return v;
  }
  static Value Int(std::int64_t x) {
    Value v;
    v.kind_ = Kind::kInt;
    v.int_ = x;
    return v;
  }
  static Value Str(std::string s) {
    Value v;
    v.kind_ = Kind::kStr;
    v.str_ = std::move(s);
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_int() const { return kind_ == Kind::kInt; }
  bool is_str() const { return kind_ == Kind::kStr; }

  /// Payload accessors; calling the wrong one is a programming error whose
  /// result is unspecified (kept unchecked: these sit on hot chase loops).
  std::int64_t as_int() const { return int_; }
  std::uint64_t null_id() const { return static_cast<std::uint64_t>(int_); }
  const std::string& as_str() const { return str_; }

  /// "7", "\"abc\"", or "_n3" for the labeled null #3.
  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.kind_ == b.kind_ && a.int_ == b.int_ && a.str_ == b.str_;
  }
  friend std::strong_ordering operator<=>(const Value& a, const Value& b) {
    if (a.kind_ != b.kind_) return a.kind_ <=> b.kind_;
    if (a.int_ != b.int_) return a.int_ <=> b.int_;
    return a.str_ <=> b.str_;
  }

  std::size_t Hash() const;

 private:
  Kind kind_;
  std::int64_t int_;  // Int payload or null id
  std::string str_;   // Str payload; empty otherwise
};

struct ValueHash {
  std::size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace ccfp

#endif  // CCFP_CORE_VALUE_H_
