#ifndef CCFP_CORE_GIND_H_
#define CCFP_CORE_GIND_H_

#include <string>
#include <vector>

#include "core/database.h"
#include "core/dependency.h"
#include "core/schema.h"
#include "util/status.h"

namespace ccfp {

/// A *generalized* inclusion dependency in the sense Mitchell [Mi1] uses
/// (cited in Section 4 of the paper): like an IND, but an attribute may be
/// repeated on either side. The paper observes that repeating dependencies
/// "are equivalent to a special case of a generalized type of IND ...
/// where we allow an attribute to be repeated several times on the same
/// side".
///
/// Example: the RD R[A = B] is the generalized IND R[A, A] <= R[A, B]...
/// more precisely it is captured by R[A, B] <= R[A, A] (every (a, b) pair
/// of R appears as a pair with equal components, forcing a = b when
/// combined with membership — see RdAsGind below for the exact encoding).
struct GInd {
  RelId lhs_rel = 0;
  std::vector<AttrId> lhs;  // repetitions allowed
  RelId rhs_rel = 0;
  std::vector<AttrId> rhs;  // repetitions allowed

  std::size_t width() const { return lhs.size(); }

  friend bool operator==(const GInd&, const GInd&) = default;
  friend std::strong_ordering operator<=>(const GInd&, const GInd&) = default;

  std::string ToString(const DatabaseScheme& scheme) const;
};

/// Index validity + equal widths (repetition is allowed, so no
/// distinctness checks).
Status Validate(const DatabaseScheme& scheme, const GInd& gind);

/// d |= R[X] <= S[Y] with the same semantics as for INDs (projection
/// containment, projections now possibly with repeated columns).
bool Satisfies(const Database& db, const GInd& gind);

/// The generalized-IND encoding of an RD: R[X = Y] holds iff
/// R[X ++ Y] <= R[X ++ X] holds (each tuple's (X, Y) projection must occur
/// as an equal-pair projection... of itself — see the proof in gind.cc's
/// tests). The encoding direction used here is sound and complete and is
/// verified against RD semantics in the test suite.
GInd RdAsGind(const Rd& rd);

/// True iff the generalized IND is an ordinary IND (no repetitions).
bool IsPlainInd(const GInd& gind);

/// Converts to a plain Ind; InvalidArgument if attributes repeat.
Result<Ind> ToPlainInd(const DatabaseScheme& scheme, const GInd& gind);

}  // namespace ccfp

#endif  // CCFP_CORE_GIND_H_
