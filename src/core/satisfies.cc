#include "core/satisfies.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "util/strings.h"

namespace ccfp {

bool Satisfies(const Database& db, const Fd& fd) {
  const Relation& r = db.relation(fd.rel);
  std::unordered_map<Tuple, Tuple, TupleHash> lhs_to_rhs;
  lhs_to_rhs.reserve(r.size());
  for (const Tuple& t : r.tuples()) {
    Tuple key = ProjectTuple(t, fd.lhs);
    Tuple val = ProjectTuple(t, fd.rhs);
    auto [it, inserted] = lhs_to_rhs.emplace(std::move(key), val);
    if (!inserted && it->second != val) return false;
  }
  return true;
}

bool Satisfies(const Database& db, const Ind& ind) {
  const Relation& lhs = db.relation(ind.lhs_rel);
  const Relation& rhs = db.relation(ind.rhs_rel);
  std::unordered_set<Tuple, TupleHash> rhs_proj = rhs.ProjectSet(ind.rhs);
  for (const Tuple& t : lhs.tuples()) {
    if (rhs_proj.count(ProjectTuple(t, ind.lhs)) == 0) return false;
  }
  return true;
}

bool Satisfies(const Database& db, const Rd& rd) {
  const Relation& r = db.relation(rd.rel);
  for (const Tuple& t : r.tuples()) {
    if (ProjectTuple(t, rd.lhs) != ProjectTuple(t, rd.rhs)) return false;
  }
  return true;
}

namespace {

// Shared EMVD checker on explicit X/Y/Z attribute sets.
bool SatisfiesEmvdImpl(const Relation& r, const std::vector<AttrId>& x,
                       const std::vector<AttrId>& y,
                       const std::vector<AttrId>& z) {
  // XY and XZ as de-duplicated sequences (sets in the paper).
  std::vector<AttrId> xy = x;
  for (AttrId a : y) {
    if (std::find(xy.begin(), xy.end(), a) == xy.end()) xy.push_back(a);
  }
  std::vector<AttrId> xz = x;
  for (AttrId a : z) {
    if (std::find(xz.begin(), xz.end(), a) == xz.end()) xz.push_back(a);
  }
  // All (t[XY], t[XZ]) pairs present in r, flattened into one tuple.
  std::unordered_set<Tuple, TupleHash> pairs;
  pairs.reserve(r.size());
  for (const Tuple& t : r.tuples()) {
    Tuple key = ProjectTuple(t, xy);
    Tuple xz_part = ProjectTuple(t, xz);
    key.insert(key.end(), xz_part.begin(), xz_part.end());
    pairs.insert(std::move(key));
  }
  // Group tuples by t[X].
  std::unordered_map<Tuple, std::vector<const Tuple*>, TupleHash> groups;
  for (const Tuple& t : r.tuples()) {
    groups[ProjectTuple(t, x)].push_back(&t);
  }
  for (const auto& [key, members] : groups) {
    for (const Tuple* t1 : members) {
      Tuple t1_xy = ProjectTuple(*t1, xy);
      for (const Tuple* t2 : members) {
        Tuple need = t1_xy;
        Tuple t2_xz = ProjectTuple(*t2, xz);
        need.insert(need.end(), t2_xz.begin(), t2_xz.end());
        if (pairs.count(need) == 0) return false;
      }
    }
  }
  return true;
}

}  // namespace

bool Satisfies(const Database& db, const Emvd& emvd) {
  return SatisfiesEmvdImpl(db.relation(emvd.rel), emvd.x, emvd.y, emvd.z);
}

bool Satisfies(const Database& db, const Mvd& mvd) {
  // X ->> Y is the EMVD X ->> Y | Z with Z = attrs - X - Y.
  std::set<AttrId> in_xy(mvd.x.begin(), mvd.x.end());
  in_xy.insert(mvd.y.begin(), mvd.y.end());
  std::vector<AttrId> z;
  std::size_t arity = db.scheme().relation(mvd.rel).arity();
  for (AttrId a = 0; a < arity; ++a) {
    if (in_xy.count(a) == 0) z.push_back(a);
  }
  return SatisfiesEmvdImpl(db.relation(mvd.rel), mvd.x, mvd.y, z);
}

bool Satisfies(const Database& db, const Dependency& dep) {
  switch (dep.kind()) {
    case DependencyKind::kFd:
      return Satisfies(db, dep.fd());
    case DependencyKind::kInd:
      return Satisfies(db, dep.ind());
    case DependencyKind::kRd:
      return Satisfies(db, dep.rd());
    case DependencyKind::kEmvd:
      return Satisfies(db, dep.emvd());
    case DependencyKind::kMvd:
      return Satisfies(db, dep.mvd());
  }
  return false;
}

bool SatisfiesAll(const Database& db, const std::vector<Dependency>& deps) {
  for (const Dependency& dep : deps) {
    if (!Satisfies(db, dep)) return false;
  }
  return true;
}

std::vector<Dependency> SatisfiedSubset(const Database& db,
                                        const std::vector<Dependency>& deps) {
  std::vector<Dependency> out;
  for (const Dependency& dep : deps) {
    if (Satisfies(db, dep)) out.push_back(dep);
  }
  return out;
}

std::optional<Violation> FindViolation(const Database& db,
                                       const Dependency& dep) {
  if (Satisfies(db, dep)) return std::nullopt;
  const DatabaseScheme& scheme = db.scheme();
  // Re-run the check collecting a witness. Keeping the fast path witness-free
  // and paying a second pass only on violation keeps Satisfies() lean.
  switch (dep.kind()) {
    case DependencyKind::kFd: {
      const Fd& fd = dep.fd();
      const Relation& r = db.relation(fd.rel);
      std::unordered_map<Tuple, const Tuple*, TupleHash> first;
      for (const Tuple& t : r.tuples()) {
        Tuple key = ProjectTuple(t, fd.lhs);
        auto [it, inserted] = first.emplace(std::move(key), &t);
        if (!inserted &&
            ProjectTuple(*it->second, fd.rhs) != ProjectTuple(t, fd.rhs)) {
          return Violation{StrCat(
              "FD ", dep.ToString(scheme), " violated by tuples ",
              TupleToString(*it->second), " and ", TupleToString(t))};
        }
      }
      break;
    }
    case DependencyKind::kInd: {
      const Ind& ind = dep.ind();
      const Relation& lhs = db.relation(ind.lhs_rel);
      std::unordered_set<Tuple, TupleHash> rhs_proj =
          db.relation(ind.rhs_rel).ProjectSet(ind.rhs);
      for (const Tuple& t : lhs.tuples()) {
        Tuple p = ProjectTuple(t, ind.lhs);
        if (rhs_proj.count(p) == 0) {
          return Violation{StrCat("IND ", dep.ToString(scheme),
                                  " violated: projection ", TupleToString(p),
                                  " of tuple ", TupleToString(t),
                                  " has no counterpart")};
        }
      }
      break;
    }
    case DependencyKind::kRd: {
      const Rd& rd = dep.rd();
      for (const Tuple& t : db.relation(rd.rel).tuples()) {
        if (ProjectTuple(t, rd.lhs) != ProjectTuple(t, rd.rhs)) {
          return Violation{StrCat("RD ", dep.ToString(scheme),
                                  " violated by tuple ", TupleToString(t))};
        }
      }
      break;
    }
    case DependencyKind::kEmvd:
    case DependencyKind::kMvd:
      return Violation{
          StrCat(DependencyKindToString(dep.kind()), " ",
                 dep.ToString(scheme), " violated (no tuple witness: the "
                 "failure is a missing tuple, not a present one)")};
  }
  return Violation{StrCat(dep.ToString(scheme), " violated")};
}

std::optional<std::string> ObeysExactly(
    const Database& db, const std::vector<Dependency>& universe,
    const std::vector<Dependency>& expected) {
  std::unordered_set<Dependency, DependencyHash> expected_set(
      expected.begin(), expected.end());
  for (const Dependency& dep : universe) {
    bool holds = Satisfies(db, dep);
    bool should = expected_set.count(dep) > 0;
    if (holds && !should) {
      return StrCat("database obeys ", dep.ToString(db.scheme()),
                    " which is outside the expected set");
    }
    if (!holds && should) {
      return StrCat("database violates ", dep.ToString(db.scheme()),
                    " which is inside the expected set");
    }
  }
  return std::nullopt;
}

}  // namespace ccfp
