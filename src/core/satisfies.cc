#include "core/satisfies.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "core/workspace.h"
#include "util/strings.h"

namespace ccfp {

namespace {

/// The relations a dependency's satisfaction depends on — the interned
/// single-dependency fast path interns only these.
std::vector<RelId> InvolvedRels(const Dependency& dep) {
  switch (dep.kind()) {
    case DependencyKind::kFd:
      return {dep.fd().rel};
    case DependencyKind::kInd:
      return {dep.ind().lhs_rel, dep.ind().rhs_rel};
    case DependencyKind::kRd:
      return {dep.rd().rel};
    case DependencyKind::kEmvd:
      return {dep.emvd().rel};
    case DependencyKind::kMvd:
      return {dep.mvd().rel};
  }
  return {};
}

/// --- Legacy engine --------------------------------------------------------
/// The original heap-Value hashing checks, kept verbatim in behavior as the
/// differential reference for the interned engine.

namespace legacy {

bool Satisfies(const Database& db, const Fd& fd) {
  const Relation& r = db.relation(fd.rel);
  std::unordered_map<Tuple, Tuple, TupleHash> lhs_to_rhs;
  lhs_to_rhs.reserve(r.size());
  for (const Tuple& t : r.tuples()) {
    Tuple key = ProjectTuple(t, fd.lhs);
    Tuple val = ProjectTuple(t, fd.rhs);
    auto [it, inserted] = lhs_to_rhs.emplace(std::move(key), val);
    if (!inserted && it->second != val) return false;
  }
  return true;
}

bool Satisfies(const Database& db, const Ind& ind) {
  const Relation& lhs = db.relation(ind.lhs_rel);
  const Relation& rhs = db.relation(ind.rhs_rel);
  std::unordered_set<Tuple, TupleHash> rhs_proj = rhs.ProjectSet(ind.rhs);
  for (const Tuple& t : lhs.tuples()) {
    if (rhs_proj.count(ProjectTuple(t, ind.lhs)) == 0) return false;
  }
  return true;
}

bool Satisfies(const Database& db, const Rd& rd) {
  const Relation& r = db.relation(rd.rel);
  for (const Tuple& t : r.tuples()) {
    if (ProjectTuple(t, rd.lhs) != ProjectTuple(t, rd.rhs)) return false;
  }
  return true;
}

// Shared EMVD checker on explicit X/Y/Z attribute sets.
bool SatisfiesEmvdImpl(const Relation& r, const std::vector<AttrId>& x,
                       const std::vector<AttrId>& y,
                       const std::vector<AttrId>& z) {
  // XY and XZ as de-duplicated sequences (sets in the paper).
  std::vector<AttrId> xy = AppendDistinctAttrs(x, y);
  std::vector<AttrId> xz = AppendDistinctAttrs(x, z);
  // All (t[XY], t[XZ]) pairs present in r, flattened into one tuple.
  std::unordered_set<Tuple, TupleHash> pairs;
  pairs.reserve(r.size());
  for (const Tuple& t : r.tuples()) {
    Tuple key = ProjectTuple(t, xy);
    Tuple xz_part = ProjectTuple(t, xz);
    key.insert(key.end(), xz_part.begin(), xz_part.end());
    pairs.insert(std::move(key));
  }
  // Group tuples by t[X].
  std::unordered_map<Tuple, std::vector<const Tuple*>, TupleHash> groups;
  for (const Tuple& t : r.tuples()) {
    groups[ProjectTuple(t, x)].push_back(&t);
  }
  for (const auto& [key, members] : groups) {
    for (const Tuple* t1 : members) {
      Tuple t1_xy = ProjectTuple(*t1, xy);
      for (const Tuple* t2 : members) {
        Tuple need = t1_xy;
        Tuple t2_xz = ProjectTuple(*t2, xz);
        need.insert(need.end(), t2_xz.begin(), t2_xz.end());
        if (pairs.count(need) == 0) return false;
      }
    }
  }
  return true;
}

bool Satisfies(const Database& db, const Emvd& emvd) {
  return SatisfiesEmvdImpl(db.relation(emvd.rel), emvd.x, emvd.y, emvd.z);
}

bool Satisfies(const Database& db, const Mvd& mvd) {
  // X ->> Y is the EMVD X ->> Y | Z with Z = attrs - X - Y.
  return SatisfiesEmvdImpl(db.relation(mvd.rel), mvd.x, mvd.y,
                           MvdComplement(db.scheme(), mvd));
}

bool Satisfies(const Database& db, const Dependency& dep) {
  switch (dep.kind()) {
    case DependencyKind::kFd:
      return legacy::Satisfies(db, dep.fd());
    case DependencyKind::kInd:
      return legacy::Satisfies(db, dep.ind());
    case DependencyKind::kRd:
      return legacy::Satisfies(db, dep.rd());
    case DependencyKind::kEmvd:
      return legacy::Satisfies(db, dep.emvd());
    case DependencyKind::kMvd:
      return legacy::Satisfies(db, dep.mvd());
  }
  return false;
}

/// Legacy witness search; same scan order as the interned engine, so both
/// report identical offending tuple indices (differentially tested).
std::optional<Violation> FindViolation(const Database& db,
                                       const Dependency& dep) {
  if (legacy::Satisfies(db, dep)) return std::nullopt;
  const DatabaseScheme& scheme = db.scheme();
  Violation v;
  v.kind = dep.kind();
  switch (dep.kind()) {
    case DependencyKind::kFd: {
      const Fd& fd = dep.fd();
      const Relation& r = db.relation(fd.rel);
      v.rel = fd.rel;
      std::unordered_map<Tuple, std::size_t, TupleHash> first;
      for (std::size_t i = 0; i < r.tuples().size(); ++i) {
        const Tuple& t = r.tuples()[i];
        auto [it, inserted] = first.emplace(ProjectTuple(t, fd.lhs), i);
        if (!inserted) {
          const Tuple& rep = r.tuples()[it->second];
          if (ProjectTuple(rep, fd.rhs) != ProjectTuple(t, fd.rhs)) {
            v.tuple_indices = {it->second, i};
            v.tuples = {rep, t};
            v.description = StrCat(
                "FD ", dep.ToString(scheme), " violated by tuples ",
                TupleToString(rep), " and ", TupleToString(t));
            return v;
          }
        }
      }
      break;
    }
    case DependencyKind::kInd: {
      const Ind& ind = dep.ind();
      const Relation& lhs = db.relation(ind.lhs_rel);
      v.rel = ind.lhs_rel;
      std::unordered_set<Tuple, TupleHash> rhs_proj =
          db.relation(ind.rhs_rel).ProjectSet(ind.rhs);
      for (std::size_t i = 0; i < lhs.tuples().size(); ++i) {
        const Tuple& t = lhs.tuples()[i];
        Tuple p = ProjectTuple(t, ind.lhs);
        if (rhs_proj.count(p) == 0) {
          v.tuple_indices = {i};
          v.tuples = {t};
          v.description = StrCat("IND ", dep.ToString(scheme),
                                 " violated: projection ", TupleToString(p),
                                 " of tuple ", TupleToString(t),
                                 " has no counterpart");
          return v;
        }
      }
      break;
    }
    case DependencyKind::kRd: {
      const Rd& rd = dep.rd();
      const Relation& r = db.relation(rd.rel);
      v.rel = rd.rel;
      for (std::size_t i = 0; i < r.tuples().size(); ++i) {
        const Tuple& t = r.tuples()[i];
        if (ProjectTuple(t, rd.lhs) != ProjectTuple(t, rd.rhs)) {
          v.tuple_indices = {i};
          v.tuples = {t};
          v.description = StrCat("RD ", dep.ToString(scheme),
                                 " violated by tuple ", TupleToString(t));
          return v;
        }
      }
      break;
    }
    case DependencyKind::kEmvd:
    case DependencyKind::kMvd: {
      // Same witness as the interned engine's FindEmvdViolation: the
      // first slot pair (i, j) in the same X-group whose (XY, XZ)
      // combination no tuple witnesses, in the identical scan order.
      const std::vector<AttrId>& x =
          dep.is_emvd() ? dep.emvd().x : dep.mvd().x;
      const std::vector<AttrId>& y =
          dep.is_emvd() ? dep.emvd().y : dep.mvd().y;
      std::vector<AttrId> z = dep.is_emvd()
                                  ? dep.emvd().z
                                  : MvdComplement(scheme, dep.mvd());
      v.rel = dep.is_emvd() ? dep.emvd().rel : dep.mvd().rel;
      const Relation& r = db.relation(v.rel);
      std::vector<AttrId> xy = AppendDistinctAttrs(x, y);
      std::vector<AttrId> xz = AppendDistinctAttrs(x, z);
      std::unordered_set<Tuple, TupleHash> pairs;
      pairs.reserve(r.size());
      for (const Tuple& t : r.tuples()) {
        Tuple combo = ProjectTuple(t, xy);
        Tuple xz_part = ProjectTuple(t, xz);
        combo.insert(combo.end(), xz_part.begin(), xz_part.end());
        pairs.insert(std::move(combo));
      }
      std::vector<Tuple> proj_x, proj_xy, proj_xz;
      proj_x.reserve(r.size());
      proj_xy.reserve(r.size());
      proj_xz.reserve(r.size());
      for (const Tuple& t : r.tuples()) {
        proj_x.push_back(ProjectTuple(t, x));
        proj_xy.push_back(ProjectTuple(t, xy));
        proj_xz.push_back(ProjectTuple(t, xz));
      }
      for (std::size_t i = 0; i < r.tuples().size(); ++i) {
        for (std::size_t j = 0; j < r.tuples().size(); ++j) {
          if (proj_x[i] != proj_x[j]) continue;
          Tuple need = proj_xy[i];
          need.insert(need.end(), proj_xz[j].begin(), proj_xz[j].end());
          if (pairs.count(need) == 0) {
            v.tuple_indices = {i, j};
            v.tuples = {r.tuples()[i], r.tuples()[j]};
            v.description = StrCat(
                DependencyKindToString(dep.kind()), " ",
                dep.ToString(scheme), " violated: no tuple combines ",
                TupleToString(r.tuples()[i]), " with ",
                TupleToString(r.tuples()[j]));
            return v;
          }
        }
      }
      // Unreachable if Satisfies was false; mirrors the interned
      // fallback of an empty witness.
      v.description = StrCat(DependencyKindToString(dep.kind()), " ",
                             dep.ToString(scheme), " violated");
      return v;
    }
  }
  v.description = StrCat(dep.ToString(scheme), " violated");
  return v;
}

}  // namespace legacy

/// Renders an IdViolation into the user-facing Violation, materializing the
/// offending tuples from the interner.
Violation RenderViolation(const IdDatabase& db, const Dependency& dep,
                          const IdViolation& idv) {
  const DatabaseScheme& scheme = db.scheme();
  Violation v;
  v.kind = dep.kind();
  v.rel = idv.rel;
  v.tuple_indices.assign(idv.tuple_indices.begin(), idv.tuple_indices.end());
  for (std::uint32_t idx : idv.tuple_indices) {
    const IdTuple& it = db.relation(idv.rel).tuple(idx);
    Tuple t;
    t.reserve(it.size());
    for (ValueId id : it) t.push_back(db.interner().value(id));
    v.tuples.push_back(std::move(t));
  }
  switch (dep.kind()) {
    case DependencyKind::kFd:
      v.description = StrCat("FD ", dep.ToString(scheme),
                             " violated by tuples ",
                             TupleToString(v.tuples[0]), " and ",
                             TupleToString(v.tuples[1]));
      break;
    case DependencyKind::kInd:
      v.description =
          StrCat("IND ", dep.ToString(scheme), " violated: projection ",
                 TupleToString(ProjectTuple(v.tuples[0], dep.ind().lhs)),
                 " of tuple ", TupleToString(v.tuples[0]),
                 " has no counterpart");
      break;
    case DependencyKind::kRd:
      v.description = StrCat("RD ", dep.ToString(scheme),
                             " violated by tuple ",
                             TupleToString(v.tuples[0]));
      break;
    case DependencyKind::kEmvd:
    case DependencyKind::kMvd:
      if (v.tuples.size() == 2) {
        v.description = StrCat(
            DependencyKindToString(dep.kind()), " ", dep.ToString(scheme),
            " violated: no tuple combines ", TupleToString(v.tuples[0]),
            " with ", TupleToString(v.tuples[1]));
      } else {
        v.description = StrCat(DependencyKindToString(dep.kind()), " ",
                               dep.ToString(scheme), " violated");
      }
      break;
  }
  return v;
}

}  // namespace

bool Satisfies(const Database& db, const Fd& fd) {
  return IdDatabase(db, {fd.rel}).Satisfies(fd);
}

bool Satisfies(const Database& db, const Ind& ind) {
  return IdDatabase(db, {ind.lhs_rel, ind.rhs_rel}).Satisfies(ind);
}

bool Satisfies(const Database& db, const Rd& rd) {
  return IdDatabase(db, {rd.rel}).Satisfies(rd);
}

bool Satisfies(const Database& db, const Emvd& emvd) {
  return IdDatabase(db, {emvd.rel}).Satisfies(emvd);
}

bool Satisfies(const Database& db, const Mvd& mvd) {
  return IdDatabase(db, {mvd.rel}).Satisfies(mvd);
}

bool Satisfies(const Database& db, const Dependency& dep,
               const SatisfiesOptions& options) {
  if (options.engine == SatisfiesEngine::kLegacy) {
    return legacy::Satisfies(db, dep);
  }
  return IdDatabase(db, InvolvedRels(dep)).Satisfies(dep);
}

bool SatisfiesAll(const Database& db, const std::vector<Dependency>& deps,
                  const SatisfiesOptions& options) {
  if (options.engine == SatisfiesEngine::kLegacy) {
    for (const Dependency& dep : deps) {
      if (!legacy::Satisfies(db, dep)) return false;
    }
    return true;
  }
  IdDatabase id_db(db);
  return id_db.SatisfiesAll(deps);
}

std::vector<Dependency> SatisfiedSubset(const Database& db,
                                        const std::vector<Dependency>& deps,
                                        const SatisfiesOptions& options) {
  std::vector<Dependency> out;
  if (options.engine == SatisfiesEngine::kLegacy) {
    for (const Dependency& dep : deps) {
      if (legacy::Satisfies(db, dep)) out.push_back(dep);
    }
    return out;
  }
  IdDatabase id_db(db);
  for (const Dependency& dep : deps) {
    if (id_db.Satisfies(dep)) out.push_back(dep);
  }
  return out;
}

std::optional<Violation> FindViolation(const Database& db,
                                       const Dependency& dep,
                                       const SatisfiesOptions& options) {
  if (options.engine == SatisfiesEngine::kLegacy) {
    return legacy::FindViolation(db, dep);
  }
  IdDatabase id_db(db, InvolvedRels(dep));
  return FindViolation(id_db, dep);
}

std::optional<Violation> FindFirstViolation(
    const Database& db, const std::vector<Dependency>& deps,
    const SatisfiesOptions& options) {
  if (options.engine == SatisfiesEngine::kLegacy) {
    for (std::size_t i = 0; i < deps.size(); ++i) {
      std::optional<Violation> v = legacy::FindViolation(db, deps[i]);
      if (v.has_value()) {
        v->dep_index = i;
        return v;
      }
    }
    return std::nullopt;
  }
  IdDatabase id_db(db);
  for (std::size_t i = 0; i < deps.size(); ++i) {
    std::optional<Violation> v = FindViolation(id_db, deps[i]);
    if (v.has_value()) {
      v->dep_index = i;
      return v;
    }
  }
  return std::nullopt;
}

std::optional<std::string> ObeysExactly(
    const Database& db, const std::vector<Dependency>& universe,
    const std::vector<Dependency>& expected,
    const SatisfiesOptions& options) {
  if (options.engine == SatisfiesEngine::kLegacy) {
    std::unordered_set<Dependency, DependencyHash> expected_set(
        expected.begin(), expected.end());
    for (const Dependency& dep : universe) {
      bool holds = legacy::Satisfies(db, dep);
      bool should = expected_set.count(dep) > 0;
      if (holds && !should) {
        return StrCat("database obeys ", dep.ToString(db.scheme()),
                      " which is outside the expected set");
      }
      if (!holds && should) {
        return StrCat("database violates ", dep.ToString(db.scheme()),
                      " which is inside the expected set");
      }
    }
    return std::nullopt;
  }
  return ObeysExactly(IdDatabase(db), universe, expected);
}

std::optional<Violation> FindViolation(const IdDatabase& db,
                                       const Dependency& dep) {
  std::optional<IdViolation> idv = db.FindViolation(dep);
  if (!idv.has_value()) return std::nullopt;
  return RenderViolation(db, dep, *idv);
}

namespace {

/// Shared body of the interned ObeysExactly overloads: any model exposing
/// Satisfies(Dependency) and scheme() (IdDatabase, InternedWorkspace).
template <typename Model>
std::optional<std::string> ObeysExactlyIn(
    const Model& model, const std::vector<Dependency>& universe,
    const std::vector<Dependency>& expected) {
  std::unordered_set<Dependency, DependencyHash> expected_set(
      expected.begin(), expected.end());
  for (const Dependency& dep : universe) {
    bool holds = model.Satisfies(dep);
    bool should = expected_set.count(dep) > 0;
    if (holds && !should) {
      return StrCat("database obeys ", dep.ToString(model.scheme()),
                    " which is outside the expected set");
    }
    if (!holds && should) {
      return StrCat("database violates ", dep.ToString(model.scheme()),
                    " which is inside the expected set");
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<std::string> ObeysExactly(
    const IdDatabase& db, const std::vector<Dependency>& universe,
    const std::vector<Dependency>& expected) {
  return ObeysExactlyIn(db, universe, expected);
}

std::optional<std::string> ObeysExactly(
    const InternedWorkspace& ws, const std::vector<Dependency>& universe,
    const std::vector<Dependency>& expected) {
  return ObeysExactlyIn(ws, universe, expected);
}

}  // namespace ccfp
