#include "core/tuple.h"

#include "util/strings.h"

namespace ccfp {

Tuple ProjectTuple(const Tuple& t, const std::vector<AttrId>& cols) {
  Tuple out;
  out.reserve(cols.size());
  for (AttrId c : cols) out.push_back(t[c]);
  return out;
}

Tuple TupleOfInts(const std::vector<std::int64_t>& values) {
  Tuple t;
  t.reserve(values.size());
  for (std::int64_t v : values) t.push_back(Value::Int(v));
  return t;
}

Tuple TupleOfStrs(const std::vector<std::string>& values) {
  Tuple t;
  t.reserve(values.size());
  for (const std::string& v : values) t.push_back(Value::Str(v));
  return t;
}

std::string TupleToString(const Tuple& t) {
  return StrCat(
      "(", JoinMapped(t, ", ", [](const Value& v) { return v.ToString(); }),
      ")");
}

}  // namespace ccfp
