#include "core/dependency.h"

#include <algorithm>
#include <set>

#include "util/check.h"
#include "util/strings.h"

namespace ccfp {

namespace {

// Validates that `attrs` are valid, distinct attribute ids of `rel`.
Status ValidateAttrSeq(const DatabaseScheme& scheme, RelId rel,
                       const std::vector<AttrId>& attrs,
                       const char* side) {
  if (!scheme.ValidRel(rel)) {
    return Status::InvalidArgument(StrCat("invalid relation id ", rel));
  }
  std::set<AttrId> seen;
  for (AttrId a : attrs) {
    if (!scheme.ValidAttr(rel, a)) {
      return Status::InvalidArgument(
          StrCat("invalid attribute id ", a, " for relation ",
                 scheme.relation(rel).name()));
    }
    if (!seen.insert(a).second) {
      return Status::InvalidArgument(
          StrCat("repeated attribute '", scheme.relation(rel).attr_name(a),
                 "' in ", side));
    }
  }
  return Status::OK();
}

bool IsSubsetOf(const std::vector<AttrId>& a, const std::vector<AttrId>& b) {
  for (AttrId x : a) {
    if (std::find(b.begin(), b.end(), x) == b.end()) return false;
  }
  return true;
}

std::size_t HashSeq(std::size_t h, const std::vector<AttrId>& attrs) {
  for (AttrId a : attrs) {
    h ^= a + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  }
  h ^= attrs.size() + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

const char* DependencyKindToString(DependencyKind kind) {
  switch (kind) {
    case DependencyKind::kFd:
      return "FD";
    case DependencyKind::kInd:
      return "IND";
    case DependencyKind::kRd:
      return "RD";
    case DependencyKind::kEmvd:
      return "EMVD";
    case DependencyKind::kMvd:
      return "MVD";
  }
  return "?";
}

std::string Dependency::ToString(const DatabaseScheme& scheme) const {
  switch (kind()) {
    case DependencyKind::kFd: {
      const Fd& f = fd();
      return StrCat(scheme.relation(f.rel).name(), ": ",
                    AttrNames(scheme, f.rel, f.lhs), " -> ",
                    AttrNames(scheme, f.rel, f.rhs));
    }
    case DependencyKind::kInd: {
      const Ind& i = ind();
      return StrCat(scheme.relation(i.lhs_rel).name(), "[",
                    AttrNames(scheme, i.lhs_rel, i.lhs), "] <= ",
                    scheme.relation(i.rhs_rel).name(), "[",
                    AttrNames(scheme, i.rhs_rel, i.rhs), "]");
    }
    case DependencyKind::kRd: {
      const Rd& r = rd();
      return StrCat(scheme.relation(r.rel).name(), "[",
                    AttrNames(scheme, r.rel, r.lhs), " = ",
                    AttrNames(scheme, r.rel, r.rhs), "]");
    }
    case DependencyKind::kEmvd: {
      const Emvd& e = emvd();
      return StrCat(scheme.relation(e.rel).name(), ": ",
                    AttrNames(scheme, e.rel, e.x), " ->> ",
                    AttrNames(scheme, e.rel, e.y), " | ",
                    AttrNames(scheme, e.rel, e.z));
    }
    case DependencyKind::kMvd: {
      const Mvd& m = mvd();
      return StrCat(scheme.relation(m.rel).name(), ": ",
                    AttrNames(scheme, m.rel, m.x), " ->> ",
                    AttrNames(scheme, m.rel, m.y));
    }
  }
  return "?";
}

std::size_t Dependency::Hash() const {
  std::size_t h = static_cast<std::size_t>(kind()) * 0x2545F4914F6CDD1DULL;
  switch (kind()) {
    case DependencyKind::kFd:
      h ^= fd().rel;
      h = HashSeq(h, fd().lhs);
      h = HashSeq(h, fd().rhs);
      break;
    case DependencyKind::kInd:
      h ^= ind().lhs_rel * 31 + ind().rhs_rel;
      h = HashSeq(h, ind().lhs);
      h = HashSeq(h, ind().rhs);
      break;
    case DependencyKind::kRd:
      h ^= rd().rel;
      h = HashSeq(h, rd().lhs);
      h = HashSeq(h, rd().rhs);
      break;
    case DependencyKind::kEmvd:
      h ^= emvd().rel;
      h = HashSeq(h, emvd().x);
      h = HashSeq(h, emvd().y);
      h = HashSeq(h, emvd().z);
      break;
    case DependencyKind::kMvd:
      h ^= mvd().rel;
      h = HashSeq(h, mvd().x);
      h = HashSeq(h, mvd().y);
      break;
  }
  return h;
}

Status Validate(const DatabaseScheme& scheme, const Fd& fd) {
  CCFP_RETURN_NOT_OK(ValidateAttrSeq(scheme, fd.rel, fd.lhs, "FD lhs"));
  CCFP_RETURN_NOT_OK(ValidateAttrSeq(scheme, fd.rel, fd.rhs, "FD rhs"));
  return Status::OK();
}

Status Validate(const DatabaseScheme& scheme, const Ind& ind) {
  CCFP_RETURN_NOT_OK(
      ValidateAttrSeq(scheme, ind.lhs_rel, ind.lhs, "IND lhs"));
  CCFP_RETURN_NOT_OK(
      ValidateAttrSeq(scheme, ind.rhs_rel, ind.rhs, "IND rhs"));
  if (ind.lhs.size() != ind.rhs.size()) {
    return Status::InvalidArgument(
        StrCat("IND sides have different widths: ", ind.lhs.size(), " vs ",
               ind.rhs.size()));
  }
  if (ind.lhs.empty()) {
    return Status::InvalidArgument("IND must have positive width");
  }
  return Status::OK();
}

Status Validate(const DatabaseScheme& scheme, const Rd& rd) {
  // Note: RD sides may *share* attributes with each other (R[A = B] has
  // disjoint singletons, but R[AB = BA] is legal); within one side
  // attributes must be distinct, which ValidateAttrSeq enforces.
  CCFP_RETURN_NOT_OK(ValidateAttrSeq(scheme, rd.rel, rd.lhs, "RD lhs"));
  CCFP_RETURN_NOT_OK(ValidateAttrSeq(scheme, rd.rel, rd.rhs, "RD rhs"));
  if (rd.lhs.size() != rd.rhs.size()) {
    return Status::InvalidArgument(
        StrCat("RD sides have different lengths: ", rd.lhs.size(), " vs ",
               rd.rhs.size()));
  }
  return Status::OK();
}

Status Validate(const DatabaseScheme& scheme, const Emvd& emvd) {
  CCFP_RETURN_NOT_OK(ValidateAttrSeq(scheme, emvd.rel, emvd.x, "EMVD X"));
  CCFP_RETURN_NOT_OK(ValidateAttrSeq(scheme, emvd.rel, emvd.y, "EMVD Y"));
  CCFP_RETURN_NOT_OK(ValidateAttrSeq(scheme, emvd.rel, emvd.z, "EMVD Z"));
  for (AttrId a : emvd.y) {
    if (std::find(emvd.z.begin(), emvd.z.end(), a) != emvd.z.end()) {
      return Status::InvalidArgument("EMVD Y and Z must be disjoint");
    }
  }
  return Status::OK();
}

Status Validate(const DatabaseScheme& scheme, const Mvd& mvd) {
  CCFP_RETURN_NOT_OK(ValidateAttrSeq(scheme, mvd.rel, mvd.x, "MVD X"));
  CCFP_RETURN_NOT_OK(ValidateAttrSeq(scheme, mvd.rel, mvd.y, "MVD Y"));
  return Status::OK();
}

Status Validate(const DatabaseScheme& scheme, const Dependency& dep) {
  switch (dep.kind()) {
    case DependencyKind::kFd:
      return Validate(scheme, dep.fd());
    case DependencyKind::kInd:
      return Validate(scheme, dep.ind());
    case DependencyKind::kRd:
      return Validate(scheme, dep.rd());
    case DependencyKind::kEmvd:
      return Validate(scheme, dep.emvd());
    case DependencyKind::kMvd:
      return Validate(scheme, dep.mvd());
  }
  return Status::Internal("unknown dependency kind");
}

bool IsTrivial(const Fd& fd) { return IsSubsetOf(fd.rhs, fd.lhs); }

bool IsTrivial(const Ind& ind) {
  return ind.lhs_rel == ind.rhs_rel && ind.lhs == ind.rhs;
}

bool IsTrivial(const Rd& rd) { return rd.lhs == rd.rhs; }

bool IsTrivial(const Emvd& emvd) {
  return emvd.y.empty() || emvd.z.empty() || IsSubsetOf(emvd.y, emvd.x) ||
         IsSubsetOf(emvd.z, emvd.x);
}

bool IsTrivial(const DatabaseScheme& scheme, const Mvd& mvd) {
  if (IsSubsetOf(mvd.y, mvd.x)) return true;
  // X union Y covering all attributes makes the complement empty.
  std::set<AttrId> xy(mvd.x.begin(), mvd.x.end());
  xy.insert(mvd.y.begin(), mvd.y.end());
  return xy.size() == scheme.relation(mvd.rel).arity();
}

bool IsTrivial(const DatabaseScheme& scheme, const Dependency& dep) {
  switch (dep.kind()) {
    case DependencyKind::kFd:
      return IsTrivial(dep.fd());
    case DependencyKind::kInd:
      return IsTrivial(dep.ind());
    case DependencyKind::kRd:
      return IsTrivial(dep.rd());
    case DependencyKind::kEmvd:
      return IsTrivial(dep.emvd());
    case DependencyKind::kMvd:
      return IsTrivial(scheme, dep.mvd());
  }
  return false;
}

std::vector<AttrId> AttrIds(const DatabaseScheme& scheme, RelId rel,
                            const std::vector<std::string>& names) {
  std::vector<AttrId> ids;
  ids.reserve(names.size());
  for (const std::string& name : names) {
    Result<AttrId> id = scheme.relation(rel).FindAttr(name);
    CCFP_CHECK_MSG(id.ok(), id.status().ToString().c_str());
    ids.push_back(*id);
  }
  return ids;
}

std::string AttrNames(const DatabaseScheme& scheme, RelId rel,
                      const std::vector<AttrId>& attrs) {
  return JoinMapped(attrs, ", ", [&](AttrId a) {
    return scheme.relation(rel).attr_name(a);
  });
}

namespace {
RelId RelIdOf(const DatabaseScheme& scheme, const std::string& name) {
  Result<RelId> rel = scheme.FindRelation(name);
  CCFP_CHECK_MSG(rel.ok(), rel.status().ToString().c_str());
  return *rel;
}
}  // namespace

Fd MakeFd(const DatabaseScheme& scheme, const std::string& rel,
          const std::vector<std::string>& lhs,
          const std::vector<std::string>& rhs) {
  RelId r = RelIdOf(scheme, rel);
  Fd fd{r, AttrIds(scheme, r, lhs), AttrIds(scheme, r, rhs)};
  Status st = Validate(scheme, fd);
  CCFP_CHECK_MSG(st.ok(), st.ToString().c_str());
  return fd;
}

Ind MakeInd(const DatabaseScheme& scheme, const std::string& lhs_rel,
            const std::vector<std::string>& lhs, const std::string& rhs_rel,
            const std::vector<std::string>& rhs) {
  RelId lr = RelIdOf(scheme, lhs_rel);
  RelId rr = RelIdOf(scheme, rhs_rel);
  Ind ind{lr, AttrIds(scheme, lr, lhs), rr, AttrIds(scheme, rr, rhs)};
  Status st = Validate(scheme, ind);
  CCFP_CHECK_MSG(st.ok(), st.ToString().c_str());
  return ind;
}

Rd MakeRd(const DatabaseScheme& scheme, const std::string& rel,
          const std::vector<std::string>& lhs,
          const std::vector<std::string>& rhs) {
  RelId r = RelIdOf(scheme, rel);
  Rd rd{r, AttrIds(scheme, r, lhs), AttrIds(scheme, r, rhs)};
  Status st = Validate(scheme, rd);
  CCFP_CHECK_MSG(st.ok(), st.ToString().c_str());
  return rd;
}

Emvd MakeEmvd(const DatabaseScheme& scheme, const std::string& rel,
              const std::vector<std::string>& x,
              const std::vector<std::string>& y,
              const std::vector<std::string>& z) {
  RelId r = RelIdOf(scheme, rel);
  Emvd emvd{r, AttrIds(scheme, r, x), AttrIds(scheme, r, y),
            AttrIds(scheme, r, z)};
  Status st = Validate(scheme, emvd);
  CCFP_CHECK_MSG(st.ok(), st.ToString().c_str());
  return emvd;
}

Mvd MakeMvd(const DatabaseScheme& scheme, const std::string& rel,
            const std::vector<std::string>& x,
            const std::vector<std::string>& y) {
  RelId r = RelIdOf(scheme, rel);
  Mvd mvd{r, AttrIds(scheme, r, x), AttrIds(scheme, r, y)};
  Status st = Validate(scheme, mvd);
  CCFP_CHECK_MSG(st.ok(), st.ToString().c_str());
  return mvd;
}

std::vector<AttrId> AppendDistinctAttrs(const std::vector<AttrId>& base,
                                        const std::vector<AttrId>& extra) {
  std::vector<AttrId> out = base;
  for (AttrId a : extra) {
    if (std::find(out.begin(), out.end(), a) == out.end()) out.push_back(a);
  }
  return out;
}

std::vector<AttrId> MvdComplement(const DatabaseScheme& scheme,
                                  const Mvd& mvd) {
  std::set<AttrId> in_xy(mvd.x.begin(), mvd.x.end());
  in_xy.insert(mvd.y.begin(), mvd.y.end());
  std::vector<AttrId> z;
  std::size_t arity = scheme.relation(mvd.rel).arity();
  for (AttrId a = 0; a < arity; ++a) {
    if (in_xy.count(a) == 0) z.push_back(a);
  }
  return z;
}

}  // namespace ccfp
