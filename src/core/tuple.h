#ifndef CCFP_CORE_TUPLE_H_
#define CCFP_CORE_TUPLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/schema.h"
#include "core/value.h"

namespace ccfp {

/// A tuple over R[A1,...,Am] is a sequence (a1,...,am) of the same length m
/// (Section 2 of the paper: tuples are sequences, not attribute maps).
using Tuple = std::vector<Value>;

/// t[X]: the projection of `t` onto the attribute sequence `cols`
/// (paper notation t[X] for X = (A_{i1},...,A_{ik})).
Tuple ProjectTuple(const Tuple& t, const std::vector<AttrId>& cols);

/// Convenience constructors for test/example literals.
Tuple TupleOfInts(const std::vector<std::int64_t>& values);
Tuple TupleOfStrs(const std::vector<std::string>& values);

/// "(1, 2, \"x\")"
std::string TupleToString(const Tuple& t);

struct TupleHash {
  std::size_t operator()(const Tuple& t) const {
    std::size_t h = 0xCBF29CE484222325ULL;
    for (const Value& v : t) {
      h ^= v.Hash();
      h *= 0x100000001B3ULL;
    }
    return h;
  }
};

/// An *interned* tuple: the same sequence, but with every Value replaced by
/// a dense uint32 id (see core/intern.h). The delta-driven chase engine and
/// the interned model checker (core/interned.h) work exclusively on these —
/// hashing is FNV-1a over raw ids, an order of magnitude cheaper than
/// TupleHash's per-Value hashing. (Projection lives with the engine, which
/// must canonicalize ids through its union-find.)
using IdTuple = std::vector<std::uint32_t>;

struct IdTupleHash {
  std::size_t operator()(const IdTuple& t) const {
    std::size_t h = 0xCBF29CE484222325ULL;
    for (std::uint32_t v : t) {
      h ^= v;
      h *= 0x100000001B3ULL;
    }
    return h;
  }
};

/// Packs two dense ids (partition group ids, value ids) into one hashable
/// word — the EMVD checkers' and the id-space EMVD chase's pair key.
inline std::uint64_t PackIdPair(std::uint32_t a, std::uint32_t b) {
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

}  // namespace ccfp

#endif  // CCFP_CORE_TUPLE_H_
