#ifndef CCFP_CORE_WORKSPACE_H_
#define CCFP_CORE_WORKSPACE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/database.h"
#include "core/dependency.h"
#include "core/intern.h"
#include "core/interned.h"
#include "core/tuple.h"
#include "util/memory_budget.h"

namespace ccfp {

/// A tuple slot inside a workspace: relation + index into its tuple store.
struct WorkspaceTupleRef {
  RelId rel = 0;
  std::uint32_t idx = 0;
};

/// One entry of a relation's change feed (see InternedWorkspace). The
/// feed is the replication log of the tuple store: every mutation that can
/// change a model-checking verdict is exactly one event.
enum class WorkspaceEventKind : std::uint8_t {
  /// A new alive slot appeared at `idx` (Append / AppendTuple).
  kAppend = 0,
  /// Slot `idx`'s stored ids were remapped in place by CanonicalizeTuple
  /// (a merge made them non-canonical). Its projections may have changed.
  kRewrite = 1,
  /// Slot `idx` was killed: its canonical form collided with an alive
  /// twin, which carries all duties from now on.
  kKill = 2,
};

struct WorkspaceEvent {
  WorkspaceEventKind kind = WorkspaceEventKind::kAppend;
  std::uint32_t idx = 0;
};

/// One entry of the opt-in mutation journal (EnableJournal): the logical
/// operation log delta snapshots serialize (core/snapshot.h wire format
/// v2). Replaying retained entries through the public mutation API
/// reproduces the workspace's *observable* state exactly — including
/// occurrence-list order (which drives deterministic chase worklists) and
/// per-relation feed windows. The change feed alone cannot: its events
/// carry no payloads, and a value merge between tuple-less ids publishes
/// no event at all.
struct WorkspaceJournalEntry {
  enum class Op : std::uint8_t {
    kAppend = 0,        ///< Append(rel, ids) inserted a new slot
    kMerge = 1,         ///< MergeValues(a, b) actually merged
    kReroute = 2,       ///< RerouteOccurrences(loser, winner)
    kCanonicalize = 3,  ///< CanonicalizeTuple(rel, idx) changed the slot
    kTrim = 4,          ///< TrimFeedTo(rel, horizon) dropped events
  };
  Op op = Op::kAppend;
  std::uint32_t rel = 0;      ///< kAppend / kCanonicalize / kTrim
  std::uint32_t idx = 0;      ///< kCanonicalize: the slot
  ValueId a = 0;              ///< kMerge: a; kReroute: loser
  ValueId b = 0;              ///< kMerge: b; kReroute: winner
  std::uint64_t horizon = 0;  ///< kTrim: the (clamped) new feed base
  IdTuple ids;                ///< kAppend: the raw stored ids
};

/// The persistent interned substrate shared by every engine that used to
/// re-intern per call: the FD+IND chase (chase/workspace_chase.h), the
/// EMVD chase (chase/emvd_chase.h), Armstrong build -> chase -> verify ->
/// repair rounds (armstrong/builder.cc), the counterexample oracle
/// (axiom/oracle.cc), dependency mining (mine/discovery.h), and the
/// incremental dependency watchers (verify/verifier.h).
///
/// Where `IdDatabase` interns one immutable snapshot and rebuilds all of
/// its projection partitions per instance, the workspace is *incrementally
/// maintainable*:
///
///   * tuples can be appended at any time (heap Values are interned on
///     first sight, id-tuples are adopted as-is); duplicates are rejected
///     against a persistent per-relation dedup index;
///   * value ids can be merged (the FD chase's null unification) through a
///     dense union-find with per-id occurrence lists, so only the tuples
///     that actually store a losing id are re-canonicalized;
///   * every (relation, column-sequence) projection partition is cached
///     and *maintained*: appends extend it over just the delta, and a
///     merge-driven rewrite or kill repairs only the touched groups
///     (surgical split/merge — partitions are never rebuilt from scratch
///     once compiled, and group ids are stable for the workspace's
///     lifetime);
///   * every mutation is published on a per-relation *change feed* with
///     stable sequence numbers, so mid-stream verifiers
///     (verify/verifier.h) and resumable engines can consume the delta
///     from a cursor instead of re-scanning the store.
///
/// ## Change feed
///
/// Each relation owns an append-only event log. `EventCount(rel)` is the
/// current sequence number; `events(rel)[s]` is the event with sequence
/// `s` (never mutated once published). A consumer that remembers a cursor
/// `c` can reconstruct every verdict-relevant mutation since by replaying
/// `events(rel)[c .. EventCount(rel))`:
///   * kAppend  — slot born alive at idx;
///   * kRewrite — slot idx's ids remapped (consumers that cached its old
///                projections must re-read them);
///   * kKill    — slot idx died (an identical alive twin remains).
/// A slot appears at most once per kind run: append, then any number of
/// rewrites, then at most one kill. Events are published *after* the
/// mutation (and its partition repair) is applied, so a consumer reading
/// the log sees store state at least as new as the event.
///
/// ### Compaction
///
/// Sequence numbers are *stable forever*, but the events themselves are
/// retained only back to a per-relation *compaction horizon*
/// `FeedBase(rel)`: long-lived consumers register a cursor
/// (`RegisterFeedCursor`) and advance it as they consume
/// (`AdvanceFeedCursor`), and `CompactFeed(s)` trims the prefix every
/// registered cursor has passed. `event(rel, seq)` serves any retained
/// sequence; asking for a trimmed one is a programming error
/// (CCFP_CHECK). A consumer that finds its cursor *behind* the horizon —
/// possible only via the forced `TrimFeedTo` path, since CompactFeed
/// never outruns a registered cursor — must rebuild its state from the
/// alive ranks instead of replaying (verify/verifier.h does exactly
/// that). With no cursors registered, CompactFeed trims everything: a
/// workspace used purely for model checking carries no log at all.
///
/// ## Partition maintenance contract
///
/// A cached partition covers a prefix of the relation's slots:
///   * same size            -> served as-is (zero work);
///   * new tuples appended  -> extended over the appended suffix only;
///   * a covered slot rewritten/killed -> repaired in place at mutation
///     time: the slot leaves its old group (which may become an empty
///     *tombstone* — group ids are never reused or renumbered) and, for a
///     rewrite, joins the group of its new key (created on demand).
/// `group_size[g]` counts the alive covered members of `g`;
/// `alive_groups` counts the groups with `group_size > 0`. Tombstoned
/// groups keep their `key_to_group` entry: a stale key contains at least
/// one merged-away (non-root) id in the changed column, so it can never
/// collide with a canonical probe key; probes must still treat a hit on a
/// `group_size == 0` group as a miss (see core/model_check.h). Repairs
/// keep group ids stable, NOT sorted: nothing may assume group ids follow
/// first-occurrence slot order.
///
/// Appending never disturbs existing groups, so append-only workloads
/// (the EMVD chase, mining, the oracle) pay for each partition row exactly
/// once no matter how many rounds or probes run over it; merge-heavy
/// chases pay per (touched slot, cached column-set), never per relation.
///
/// ## Staleness
///
/// `MergeValues` leaves the tuples that contain the losing id *stale*
/// (their stored ids are no longer canonical) until `CanonicalizeTuple` is
/// called on each — the chase engine drives that through its dirty
/// worklist so a tuple touched by many merges is re-canonicalized once.
/// Model checking (`Satisfies` / `FindViolation`), `partition()`, and
/// feed consumption (verify/verifier.h CatchUp) are only valid when no
/// tuple is stale; every chase entry point restores that invariant before
/// returning.
class InternedWorkspace {
 public:
  /// Group id assigned to dead (merged-away) tuple slots in partitions.
  static constexpr std::uint32_t kNoGroup = UINT32_MAX;

  /// Same shape as IdRelation::Partition, over the workspace's tuple
  /// slots. Dead slots carry kNoGroup and are not counted in any group.
  struct Partition {
    std::vector<std::uint32_t> group_of;
    std::uint32_t group_count = 0;
    /// Number of groups with at least one alive covered member. Equal to
    /// group_count until a repair tombstones a group.
    std::uint32_t alive_groups = 0;
    /// group_size[g]: alive covered members of group g (0 = tombstone).
    std::vector<std::uint32_t> group_size;
    std::unordered_map<IdTuple, std::uint32_t, IdTupleHash> key_to_group;
  };

  /// Substrate-level maintenance counters, exposed so tests and benches
  /// can prove reuse (e.g. "repair round 2 extended partitions instead of
  /// rebuilding them").
  struct Stats {
    std::uint64_t partitions_built = 0;     ///< built from scratch
    std::uint64_t partitions_extended = 0;  ///< refreshed over a delta only
    std::uint64_t partitions_reused = 0;    ///< served unchanged
    /// Discarded whole. Always 0 since surgical repair replaced epoch
    /// invalidation (PR 5); kept so stat-schema consumers can assert it.
    std::uint64_t partitions_invalidated = 0;
    /// Per-(slot, cached partition) surgical group repairs (split/merge/
    /// tombstone) applied by rewrites and kills.
    std::uint64_t partition_slots_repaired = 0;
    std::uint64_t tuples_appended = 0;
    std::uint64_t tuples_killed = 0;  ///< merged onto an alive twin
    std::uint64_t values_interned = 0;
    std::uint64_t value_merges = 0;
    std::uint64_t feed_compactions = 0;       ///< trims that dropped events
    std::uint64_t feed_events_compacted = 0;  ///< events dropped in total
  };

  /// Handle to a registered change-feed cursor (see RegisterFeedCursor).
  using FeedCursorId = std::uint32_t;

  explicit InternedWorkspace(SchemePtr scheme);

  const DatabaseScheme& scheme() const { return *scheme_; }
  const SchemePtr& scheme_ptr() const { return scheme_; }
  const ValueInterner& interner() const { return interner_; }
  const Stats& stats() const { return stats_; }

  /// --- value space --------------------------------------------------------

  /// Interns `v` (noting null labels so fresh nulls stay above them).
  ValueId Intern(const Value& v);
  /// Interns a fresh labeled null, numbered above every label seen so far.
  ValueId InternFreshNull();
  /// Canonical (union-find root) id of `id`.
  ValueId Canon(ValueId id) const { return uf_.Find(id); }
  /// Semantic representative of `id`'s class: its constant if one was
  /// merged in, else its lowest-labeled null.
  ValueId Rep(ValueId id) const { return uf_.Rep(id); }

  /// --- tuples -------------------------------------------------------------

  /// Appends `t` (ids must come from this workspace's interner). Returns
  /// true if the tuple was new; duplicates (on raw ids) are rejected.
  /// Registers per-id occurrences so later merges can find the tuple.
  bool Append(RelId rel, IdTuple t);
  /// Interns every Value of `t` and appends.
  bool AppendTuple(RelId rel, const Tuple& t);
  /// Appends every tuple of `db` (relations in scheme order, tuples in
  /// insertion order — the deterministic id assignment the chase relies
  /// on). The scheme must be the workspace's.
  void AppendDatabase(const Database& db);
  /// Appends only relation `rel` of `db` (the single-relation fast path:
  /// probing one relation's FDs does not pay for interning the others).
  void AppendRelation(const Database& db, RelId rel);

  /// Number of tuple *slots* in `rel`, dead ones included.
  std::size_t size(RelId rel) const { return rels_[rel].tuples.size(); }
  bool alive(RelId rel, std::uint32_t idx) const {
    return rels_[rel].alive[idx] != 0;
  }
  const IdTuple& tuple(RelId rel, std::uint32_t idx) const {
    return rels_[rel].tuples[idx];
  }
  std::size_t AliveTuples(RelId rel) const { return rels_[rel].alive_count; }
  /// O(1): maintained by Append / CanonicalizeTuple (the chase engines
  /// consult it per generated tuple for their budget checks).
  std::size_t TotalAliveTuples() const { return total_alive_; }

  /// --- change feed --------------------------------------------------------

  /// Sequence number one past the last event published for `rel` (== the
  /// number of events published so far, trimmed ones included). Monotone;
  /// a consumer's cursor into the feed is a value previously returned by
  /// this.
  std::uint64_t EventCount(RelId rel) const {
    return rels_[rel].feed_base + rels_[rel].feed.size();
  }
  /// The compaction horizon of `rel`: the lowest sequence number still
  /// retained. 0 until a compaction trims the feed.
  std::uint64_t FeedBase(RelId rel) const { return rels_[rel].feed_base; }
  /// The event with sequence `seq`; requires FeedBase(rel) <= seq <
  /// EventCount(rel). Never mutated once published.
  const WorkspaceEvent& event(RelId rel, std::uint64_t seq) const;
  /// The *retained* event window of `rel`: entry `i` has sequence
  /// FeedBase(rel) + i. Entries are never mutated once published; the
  /// reference is invalidated by the next mutation or compaction of
  /// `rel`, so consume before mutating.
  const std::vector<WorkspaceEvent>& events(RelId rel) const {
    return rels_[rel].feed;
  }

  /// Registers a long-lived feed consumer (a chase admit cursor, a
  /// verifier, a miner). The cursor starts at sequence 0 on every
  /// relation — holding the entire retained feed — and pins compaction:
  /// CompactFeed never trims past the minimum registered position.
  /// Registry maintenance is const (like union-find path halving): it is
  /// consumer bookkeeping, not observable tuple/feed state, so read-only
  /// consumers (the verifier) can register too.
  FeedCursorId RegisterFeedCursor() const;
  /// Records that cursor `id` has consumed `rel`'s events below `seq`.
  /// Monotone per (cursor, rel); `seq` may not exceed EventCount(rel).
  void AdvanceFeedCursor(FeedCursorId id, RelId rel,
                         std::uint64_t seq) const;
  /// Retained position of cursor `id` on `rel`.
  std::uint64_t FeedCursorPosition(FeedCursorId id, RelId rel) const;
  /// Unregisters `id`; it no longer pins compaction. Safe on an already
  /// released id (so owners can release on destruction unconditionally).
  void ReleaseFeedCursor(FeedCursorId id) const;
  /// Number of currently registered cursors.
  std::size_t RegisteredFeedCursors() const;

  /// Trims `rel`'s feed prefix below the minimum registered cursor (or
  /// the whole feed when no cursor is registered). Returns the number of
  /// events dropped. Cheap when there is nothing to trim.
  std::uint64_t CompactFeed(RelId rel);
  /// CompactFeed over every relation; returns the total dropped.
  std::uint64_t CompactFeeds();
  /// Forced trim of `rel`'s feed below `horizon` (clamped to
  /// [FeedBase, EventCount]), *ignoring* registered cursors — the
  /// operator/test path that strands slow consumers behind the horizon so
  /// their rebuild path can be exercised. Returns the events dropped.
  std::uint64_t TrimFeedTo(RelId rel, std::uint64_t horizon);

  /// --- mutation journal (incremental persistence) -------------------------
  ///
  /// Off by default (hot paths and non-persisting sessions pay nothing —
  /// every mutator's journal hook is one branch on a bool). A session
  /// that persists through delta snapshots (core/snapshot.h) enables the
  /// journal once; from then on every state-changing mutation appends one
  /// entry, and a delta snapshot serializes exactly the retained suffix
  /// plus the interner growth since the last persisted record. After a
  /// record is durably written, `MarkJournalPersisted` drops the suffix —
  /// so a quiescent session's journal, like its compacted feed, stays
  /// O(in-flight delta).

  /// Turns journaling on (idempotent). Entries accrue from this point.
  /// Const like the cursor registry: persistence bookkeeping, enabled
  /// from const save/restore paths.
  void EnableJournal() const { journal_enabled_ = true; }
  bool journal_enabled() const { return journal_enabled_; }
  /// The retained (not yet persisted) entries, oldest first.
  const std::vector<WorkspaceJournalEntry>& journal() const {
    return journal_;
  }
  /// Logical bytes of the retained journal (MemoryUsage().journal).
  std::uint64_t JournalBytes() const { return journal_bytes_; }
  /// Interner size at the last persisted record: values [this, size())
  /// are the growth a delta snapshot must carry.
  std::uint64_t JournalValuesBase() const { return journal_values_base_; }
  /// Identity (header checksum) of the last chain record this state was
  /// persisted as / restored from; a delta snapshot links to it.
  std::uint64_t SnapshotBaseId() const { return snapshot_base_id_; }
  bool HasSnapshotBase() const { return has_snapshot_base_; }
  /// Called by the snapshot layer after the retained journal was durably
  /// persisted as (or restored from) chain record `id`: drops the
  /// retained entries and re-bases the chain identity. Const like the
  /// cursor registry — persistence bookkeeping, not observable
  /// tuple/feed state (saves take a const workspace).
  void MarkJournalPersisted(std::uint64_t id) const {
    journal_.clear();
    journal_bytes_ = 0;
    journal_values_base_ = interner_.size();
    snapshot_base_id_ = id;
    has_snapshot_base_ = true;
  }

  /// --- merging (the chase's equality-generating moves) --------------------

  struct MergeResult {
    ValueId winner = 0;   ///< structural winner (root of the merged class)
    ValueId loser = 0;    ///< structural loser; its tuples are now stale
    bool merged = false;  ///< false when already equal or on clash
    bool clash = false;   ///< two distinct constants met
  };

  /// Unions the classes of `a` and `b` under the chase's merge semantics
  /// (constant beats null, lower label wins between nulls, two constants
  /// clash). Does NOT rewrite any tuple: every slot listed in
  /// `occurrences(loser)` is now stale and must be passed to
  /// `CanonicalizeTuple` (the chase engine enqueues them) before the next
  /// partition or Satisfies call. Call `RerouteOccurrences` after reading
  /// the list.
  MergeResult MergeValues(ValueId a, ValueId b);

  /// Tuple slots whose stored (raw) ids include `id`.
  const std::vector<WorkspaceTupleRef>& occurrences(ValueId id) const {
    return occurrences_[id];
  }
  /// Splices `loser`'s occurrence list onto `winner`'s (the merged class
  /// keeps one list; the loser's empties).
  void RerouteOccurrences(ValueId loser, ValueId winner);

  enum class CanonOutcome : std::uint8_t {
    kUnchanged = 0,  ///< already canonical (or dead)
    kRewritten = 1,  ///< ids remapped in place; partitions repaired
    kKilled = 2,     ///< canonical form collided with an alive twin
  };

  /// Re-canonicalizes the slot's stored ids through the union-find,
  /// re-deduplicates, surgically repairs every cached partition over the
  /// relation, and publishes the rewrite/kill on the change feed.
  CanonOutcome CanonicalizeTuple(RelId rel, std::uint32_t idx);

  /// The canonical projection of slot (rel, idx) onto `cols` — ids mapped
  /// through the union-find, valid even while the slot is stale.
  IdTuple CanonicalProjection(RelId rel, std::uint32_t idx,
                              const std::vector<AttrId>& cols) const;

  /// Same projection through the non-compacting union-find read
  /// (DenseUnionFind::FindReadOnly), appended into `out`. Safe to call
  /// from parallel readers while no thread mutates the workspace; the
  /// sequential engines keep the compacting variant above.
  void CanonicalProjectionReadOnly(RelId rel, std::uint32_t idx,
                                   const std::vector<AttrId>& cols,
                                   IdTuple& out) const;

  /// Read-only Canon (no path halving) for frozen parallel probe phases.
  ValueId CanonReadOnly(ValueId id) const { return uf_.FindReadOnly(id); }

  /// --- partitions ---------------------------------------------------------

  /// The partition of `rel` by the column sequence `cols`, maintained under
  /// the contract above. The returned reference stays valid across later
  /// partition() calls (node-based cache) and its group ids are stable for
  /// the workspace's lifetime; its contents are refreshed by later calls.
  /// Requires no stale tuples.
  const Partition& partition(RelId rel, const std::vector<AttrId>& cols) const;

  /// Extends every cached partition of `rel` over the appended suffix in
  /// one map traversal — the bulk-refresh used by feed consumers
  /// (verify/verifier.h) before replaying events, cheaper than a
  /// per-column-set `partition()` lookup when many sets are cached.
  void ExtendAllPartitions(RelId rel) const;

  /// --- model checking -----------------------------------------------------
  /// Same semantics as IdDatabase / the legacy Value-hashing checks
  /// (differentially tested); requires no stale tuples. One shared
  /// implementation serves this class and IdDatabase via the
  /// partition-provider templates in core/model_check.h. For watcher-based
  /// delta-driven verdicts over the same workspace see verify/verifier.h.

  bool Satisfies(const Fd& fd) const;
  bool Satisfies(const Ind& ind) const;
  bool Satisfies(const Rd& rd) const;
  bool Satisfies(const Emvd& emvd) const;
  bool Satisfies(const Mvd& mvd) const;
  bool Satisfies(const Dependency& dep) const;
  bool SatisfiesAll(const std::vector<Dependency>& deps) const;

  /// Violation witness with offending tuple slots (see IdViolation; slots
  /// may skip dead indices), or nullopt if `dep` holds.
  std::optional<IdViolation> FindViolation(const Dependency& dep) const;

  /// --- memory -------------------------------------------------------------

  /// Logical bytes of live substrate state, by component (see
  /// util/memory_budget.h for what "logical" means). O(#relations +
  /// #cached partitions): the per-tuple and per-occurrence sums are
  /// maintained incrementally, so engines can afford to call this at
  /// periodic budget checkpoints.
  MemoryBreakdown MemoryUsage() const;

  /// --- shared core (fork semantics) ---------------------------------------
  ///
  /// A long-lived *base* workspace can be sealed once and then forked per
  /// session: `SealSharedBase` freezes the interner's value tables into an
  /// immutable refcounted base (core/intern.h) and compacts the feeds, and
  /// `Fork` produces an independent overlay workspace that shares that
  /// base — so the Nth session over a warmed scheme pays zero re-interning
  /// of the base values and inherits every compiled projection partition
  /// instead of rebuilding it (the forked stats_ carry over, letting
  /// callers assert a zero `values_interned` / `partitions_built` delta).

  /// Seals this workspace as a shareable base: freezes the interner and
  /// compacts all feeds. Idempotent. The workspace stays fully usable
  /// (and mutable) afterwards, but a typical base is left untouched and
  /// only forked from.
  void SealSharedBase();

  /// An independent copy sharing the frozen interner base (cheap after
  /// SealSharedBase; a deep copy of tuples/partitions either way).
  /// Session-local state that must not leak across sessions is reset:
  /// registered feed cursors, the mutation journal, and the snapshot-chain
  /// identity. Stats counters are inherited so reuse deltas read zero.
  InternedWorkspace Fork() const;

  /// --- export -------------------------------------------------------------

  /// Converts the alive tuples to a heap-Value Database, slot order
  /// preserved, each id printed as its class's semantic representative.
  Database Materialize() const;

  /// Hands the alive tuples (ids mapped to representatives) and the
  /// interner over as an immutable IdDatabase — the zero-copy exit used by
  /// Chase::RunInterned. The workspace is consumed.
  IdDatabase ExportIdDatabase() &&;

 private:
  friend class WorkspaceSnapshotAccess;

  struct RelStore {
    std::vector<IdTuple> tuples;
    std::vector<std::uint8_t> alive;
    /// Raw-id form -> owning alive slot (duplicate detection).
    std::unordered_map<IdTuple, std::uint32_t, IdTupleHash> dedup;
    /// The relation's retained change feed: entry i has sequence
    /// feed_base + i (the prefix below feed_base was compacted away).
    std::vector<WorkspaceEvent> feed;
    std::uint64_t feed_base = 0;
    std::size_t alive_count = 0;
  };

  struct FeedCursor {
    bool active = false;
    std::vector<std::uint64_t> pos;  ///< per relation
  };

  struct CachedPartition {
    std::uint32_t covered = 0;  ///< tuple slots incorporated so far
    Partition p;
  };

  void RegisterOccurrences(RelId rel, std::uint32_t idx, const IdTuple& t);
  /// Appends `e` to the mutation journal when journaling is on.
  void JournalRecord(WorkspaceJournalEntry e) const;
  /// Incorporates slots [from, size) into `cp` (skipping dead ones).
  void ExtendPartition(RelId rel, const std::vector<AttrId>& cols,
                       CachedPartition& cp) const;
  /// Surgical repair of every cached partition covering slot (rel, idx)
  /// after its stored ids changed: leave the old group (tombstoning it if
  /// emptied) and join/create the group of the new projection key.
  void RepairPartitionsForRewrite(RelId rel, std::uint32_t idx);
  /// Same, after the slot was killed: leave the old group only.
  void RepairPartitionsForKill(RelId rel, std::uint32_t idx);

  SchemePtr scheme_;
  ValueInterner interner_;
  mutable DenseUnionFind uf_;  ///< Find path-halves; logically const
  std::vector<RelStore> rels_;
  std::size_t total_alive_ = 0;
  std::vector<std::vector<WorkspaceTupleRef>> occurrences_;  // by ValueId
  mutable std::vector<FeedCursor> cursors_;  ///< by id; logically const
  /// Maintained sums for O(1)-amortized MemoryUsage: total id cells
  /// stored across all tuple slots, and total occurrence refs (constant
  /// under RerouteOccurrences, which splices without copying growth).
  std::uint64_t tuple_id_cells_ = 0;
  std::uint64_t occurrence_refs_ = 0;
  /// Per relation: column sequence -> cached partition. std::map keeps
  /// Partition references stable across inserts.
  mutable std::vector<std::map<std::vector<AttrId>, CachedPartition>>
      partitions_;
  mutable Stats stats_;
  /// Mutation journal (see EnableJournal). Mutable for the same reason as
  /// cursors_: persistence bookkeeping updated from const save paths
  /// (MarkJournalPersisted) and suppressed during const-disabled replay.
  mutable bool journal_enabled_ = false;
  mutable std::vector<WorkspaceJournalEntry> journal_;
  mutable std::uint64_t journal_bytes_ = 0;
  mutable std::uint64_t journal_values_base_ = 0;
  mutable std::uint64_t snapshot_base_id_ = 0;
  mutable bool has_snapshot_base_ = false;
};

}  // namespace ccfp

#endif  // CCFP_CORE_WORKSPACE_H_
