#ifndef CCFP_CORE_RELATION_H_
#define CCFP_CORE_RELATION_H_

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/schema.h"
#include "core/tuple.h"

namespace ccfp {

/// A relation over R[U]: a *set* of tuples over U. Insertion order is
/// preserved for iteration (deterministic output), duplicates are rejected.
class Relation {
 public:
  explicit Relation(std::size_t arity) : arity_(arity) {}

  std::size_t arity() const { return arity_; }
  std::size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  /// Pre-sizes the tuple store and hash index for `n` tuples. The chase
  /// engines call this before bulk materialization to avoid rehash storms.
  void Reserve(std::size_t n) {
    tuples_.reserve(n);
    index_.reserve(n);
  }

  /// Inserts `t`; returns true if the tuple was new. CHECK-fails on arity
  /// mismatch (arity errors are programming errors, not data errors).
  bool Insert(Tuple t);

  bool Contains(const Tuple& t) const { return index_.count(t) > 0; }

  const std::vector<Tuple>& tuples() const { return tuples_; }

  /// r[X]: the projection of every tuple onto `cols`, de-duplicated,
  /// in first-occurrence order (paper notation r[X] = {t[X] : t in r}).
  std::vector<Tuple> Project(const std::vector<AttrId>& cols) const;

  /// r[X] as a hash set, for containment tests.
  std::unordered_set<Tuple, TupleHash> ProjectSet(
      const std::vector<AttrId>& cols) const;

  /// |r[X]|: number of distinct projections.
  std::size_t CountDistinct(const std::vector<AttrId>& cols) const;

  /// Rebuilds the relation applying `fn` to every value (used by the chase
  /// when labeled nulls are merged). De-duplicates the result.
  template <typename Fn>
  void MapValues(Fn fn) {
    std::vector<Tuple> old = std::move(tuples_);
    tuples_.clear();
    index_.clear();
    for (Tuple& t : old) {
      for (Value& v : t) v = fn(v);
      Insert(std::move(t));
    }
  }

  bool operator==(const Relation& other) const;

  /// One tuple per line, prefixed by two spaces.
  std::string ToString() const;

 private:
  std::size_t arity_;
  std::vector<Tuple> tuples_;
  std::unordered_set<Tuple, TupleHash> index_;
};

}  // namespace ccfp

#endif  // CCFP_CORE_RELATION_H_
