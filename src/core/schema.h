#ifndef CCFP_CORE_SCHEMA_H_
#define CCFP_CORE_SCHEMA_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace ccfp {

/// Index of a relation scheme within a DatabaseScheme.
using RelId = std::uint32_t;
/// Index of an attribute within a relation scheme (position in the sequence).
using AttrId = std::uint32_t;

/// A relation scheme R[A1,...,Am]: a name plus a *sequence* of attributes.
/// Following Section 2 of the paper, attribute order matters (tuples are
/// sequences, and INDs interrelate positions across relations).
class RelationScheme {
 public:
  RelationScheme(std::string name, std::vector<std::string> attrs);

  const std::string& name() const { return name_; }
  const std::vector<std::string>& attrs() const { return attrs_; }
  std::size_t arity() const { return attrs_.size(); }
  const std::string& attr_name(AttrId id) const { return attrs_[id]; }

  /// Looks up an attribute by name.
  Result<AttrId> FindAttr(const std::string& name) const;
  bool HasAttr(const std::string& name) const;

  /// "R[A, B, C]"
  std::string ToString() const;

 private:
  std::string name_;
  std::vector<std::string> attrs_;
  std::map<std::string, AttrId> attr_index_;
};

class DatabaseScheme;
using SchemePtr = std::shared_ptr<const DatabaseScheme>;

/// A database scheme D = {R1[U1], ..., Rn[Un]}. Immutable once built; all
/// dependencies and databases hold a SchemePtr and refer to relations and
/// attributes by index, so cross-object consistency is checkable.
class DatabaseScheme {
 public:
  /// Number of relation schemes.
  std::size_t size() const { return relations_.size(); }

  const RelationScheme& relation(RelId id) const { return relations_[id]; }
  const std::vector<RelationScheme>& relations() const { return relations_; }

  Result<RelId> FindRelation(const std::string& name) const;
  bool HasRelation(const std::string& name) const;

  /// Validates rel/attr indices.
  bool ValidRel(RelId rel) const { return rel < relations_.size(); }
  bool ValidAttr(RelId rel, AttrId attr) const {
    return ValidRel(rel) && attr < relations_[rel].arity();
  }

  /// Multi-line rendering of all relation schemes.
  std::string ToString() const;

 private:
  friend class DatabaseSchemeBuilder;
  DatabaseScheme() = default;

  std::vector<RelationScheme> relations_;
  std::map<std::string, RelId> relation_index_;
};

/// Builder for DatabaseScheme. Relation names must be unique; attribute names
/// must be unique within a relation.
class DatabaseSchemeBuilder {
 public:
  DatabaseSchemeBuilder& AddRelation(std::string name,
                                     std::vector<std::string> attrs);

  /// Validates and freezes the scheme.
  Result<SchemePtr> Build();

 private:
  struct Pending {
    std::string name;
    std::vector<std::string> attrs;
  };
  std::vector<Pending> pending_;
};

/// Convenience: builds a scheme from (name, attrs) pairs, CHECK-failing on
/// invalid input. Intended for tests, examples, and paper constructions where
/// the input is a program literal.
SchemePtr MakeScheme(
    std::vector<std::pair<std::string, std::vector<std::string>>> relations);

}  // namespace ccfp

#endif  // CCFP_CORE_SCHEMA_H_
