#ifndef CCFP_CORE_DATABASE_H_
#define CCFP_CORE_DATABASE_H_

#include <string>
#include <vector>

#include "core/relation.h"
#include "core/schema.h"

namespace ccfp {

/// A database over a scheme D: one relation per relation scheme.
class Database {
 public:
  /// Creates an empty database over `scheme`.
  explicit Database(SchemePtr scheme);

  const SchemePtr& scheme_ptr() const { return scheme_; }
  const DatabaseScheme& scheme() const { return *scheme_; }

  Relation& relation(RelId rel) { return relations_[rel]; }
  const Relation& relation(RelId rel) const { return relations_[rel]; }

  /// Inserts `t` into relation `rel`; returns true if the tuple was new.
  bool Insert(RelId rel, Tuple t) {
    return relations_[rel].Insert(std::move(t));
  }

  /// Inserts by relation name; Status error if the name is unknown or the
  /// arity does not match.
  Status InsertByName(const std::string& rel_name, Tuple t);

  /// Total number of tuples across all relations.
  std::size_t TotalTuples() const;

  bool operator==(const Database& other) const;

  /// Multi-line rendering: "R[A, B]:\n  (1, 2)\n...".
  std::string ToString() const;

 private:
  SchemePtr scheme_;
  std::vector<Relation> relations_;
};

}  // namespace ccfp

#endif  // CCFP_CORE_DATABASE_H_
