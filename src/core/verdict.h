#ifndef CCFP_CORE_VERDICT_H_
#define CCFP_CORE_VERDICT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/budget.h"

namespace ccfp {

/// Three-valued verdict for an implication query. FD+IND implication is
/// undecidable in general, so engines may have to answer "unknown".
/// (Moved here from interact/finite_vs_unrestricted.h so the whole stack —
/// oracles, the solver façade, the comparison driver — shares one
/// vocabulary.)
enum class ImplicationVerdict : std::uint8_t {
  kImplied,
  kNotImplied,
  kUnknown,
};

const char* ImplicationVerdictToString(ImplicationVerdict verdict);

/// One stage of a multi-engine implication attempt: which engine ran (or
/// why it was skipped), what it concluded, and what it consumed. The
/// ImplicationSolver's Verdict carries one of these per stage so a
/// kUnknown is never a shrug — it names exactly which engines were tried
/// and how much of the budget each burned.
struct StageReport {
  std::string stage;   ///< e.g. "classify", "derivation", "chase", "search"
  std::string engine;  ///< engine that ran; empty if the stage was skipped
  ImplicationVerdict verdict = ImplicationVerdict::kUnknown;
  std::string note;    ///< status message, skip reason, or evidence note
  BudgetUse used;      ///< budget consumed by this stage

  /// "chase [workspace-chase]: unknown (budget exhausted; steps=42 ...)".
  std::string ToString() const;
};

}  // namespace ccfp

#endif  // CCFP_CORE_VERDICT_H_
