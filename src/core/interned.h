#ifndef CCFP_CORE_INTERNED_H_
#define CCFP_CORE_INTERNED_H_

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/database.h"
#include "core/dependency.h"
#include "core/intern.h"
#include "core/tuple.h"

namespace ccfp {

/// Structured violation witness in id-space. `tuple_indices` index into
/// `IdDatabase::relation(rel).tuples()` — which, for an IdDatabase built
/// from a Database, is position-for-position the source relation's tuple
/// order, so the witness is directly re-checkable against the original.
struct IdViolation {
  RelId rel = 0;
  std::vector<std::uint32_t> tuple_indices;
};

/// One relation of an IdDatabase: the tuples as dense ValueId sequences,
/// plus a lazily-built cache of *projection partitions*. A partition for a
/// column sequence X assigns every tuple a dense group id such that two
/// tuples share a group iff they agree on X. Once a partition exists, every
/// FD/IND/EMVD probe over X is pure integer indexing — no hashing at all —
/// and the partition is shared across all dependencies mentioning X.
class IdRelation {
 public:
  struct Partition {
    /// group_of[i]: dense group id of tuple i (groups numbered by first
    /// occurrence, so ascending group id == ascending first-tuple index).
    std::vector<std::uint32_t> group_of;
    std::uint32_t group_count = 0;
    /// Number of groups with at least one member. Always == group_count
    /// for the immutable substrate; InternedWorkspace's repairs can
    /// tombstone groups, and the shared checks (core/model_check.h) read
    /// this field on either substrate.
    std::uint32_t alive_groups = 0;
    /// group_size[g]: members of group g (never 0 here; a workspace
    /// partition can carry tombstoned groups of size 0).
    std::vector<std::uint32_t> group_size;
    /// Canonical projection key -> group id (used for cross-relation
    /// probes, e.g. IND left keys against the right relation's partition).
    std::unordered_map<IdTuple, std::uint32_t, IdTupleHash> key_to_group;
  };

  std::size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }
  const std::vector<IdTuple>& tuples() const { return tuples_; }
  const IdTuple& tuple(std::uint32_t idx) const { return tuples_[idx]; }

  /// The partition of this relation by the column sequence `cols`, built on
  /// first use and cached. Not thread-safe (lazy mutable cache).
  const Partition& partition(const std::vector<AttrId>& cols) const;

 private:
  friend class IdDatabase;

  std::vector<IdTuple> tuples_;
  mutable std::map<std::vector<AttrId>, Partition> partitions_;
};

/// An immutable, fully interned database: every Value is interned into a
/// dense uint32 id exactly once, after which all model checking
/// (FD/IND/RD/EMVD/MVD satisfaction, violation witnesses) runs on flat
/// integer arrays and cached projection partitions. This is the interned
/// model-checking core behind core/satisfies.h, search/bounded.cc, and the
/// Armstrong builders: intern once, then every probe is an integer-key
/// lookup.
class IdDatabase {
 public:
  /// Interns every tuple of `db` (one pass over every Value). Tuple order
  /// within each relation is preserved 1:1, so indices in an IdViolation
  /// address `db.relation(rel).tuples()` directly.
  explicit IdDatabase(const Database& db);

  /// Interns only the relations in `rels` (others stay empty). Used by the
  /// single-dependency Satisfies fast path so checking one FD does not pay
  /// for interning unrelated relations.
  IdDatabase(const Database& db, const std::vector<RelId>& rels);

  /// Adopts pre-interned storage — the chase-exit path: the incremental
  /// engine hands over its interner and canonicalized id-tuples so a
  /// build -> chase -> verify round trip interns values exactly once.
  /// Tuples must be deduplicated and every id must be < interner.size().
  IdDatabase(SchemePtr scheme, ValueInterner interner,
             std::vector<std::vector<IdTuple>> tuples);

  const DatabaseScheme& scheme() const { return *scheme_; }
  const SchemePtr& scheme_ptr() const { return scheme_; }
  const ValueInterner& interner() const { return interner_; }
  const IdRelation& relation(RelId rel) const { return relations_[rel]; }

  std::size_t TotalTuples() const;

  /// Model checking in id-space. Semantics identical to the legacy
  /// Value-hashing checks in core/satisfies.cc (differentially tested).
  /// One shared implementation serves this class and InternedWorkspace via
  /// the partition-provider templates in core/model_check.h.
  bool Satisfies(const Fd& fd) const;
  bool Satisfies(const Ind& ind) const;
  bool Satisfies(const Rd& rd) const;
  bool Satisfies(const Emvd& emvd) const;
  bool Satisfies(const Mvd& mvd) const;
  bool Satisfies(const Dependency& dep) const;
  bool SatisfiesAll(const std::vector<Dependency>& deps) const;

  /// Violation witness with offending tuple indices, or nullopt if `dep`
  /// holds. For FDs the two tuples agree on lhs and differ on rhs; for
  /// INDs/RDs the single tuple is the violator; for EMVDs/MVDs the two
  /// tuples share the X-group but their (XY, XZ) combination is absent.
  std::optional<IdViolation> FindViolation(const Dependency& dep) const;

  /// Converts back to a heap-Value Database, preserving tuple order.
  Database Materialize() const;

 private:
  void InternRelation(const Database& db, RelId rel);

  SchemePtr scheme_;
  ValueInterner interner_;
  std::vector<IdRelation> relations_;
};

}  // namespace ccfp

#endif  // CCFP_CORE_INTERNED_H_
