#include "core/verdict.h"

#include "util/strings.h"

namespace ccfp {

const char* ImplicationVerdictToString(ImplicationVerdict verdict) {
  switch (verdict) {
    case ImplicationVerdict::kImplied:
      return "implied";
    case ImplicationVerdict::kNotImplied:
      return "not implied";
    case ImplicationVerdict::kUnknown:
      return "unknown";
  }
  return "?";
}

std::string StageReport::ToString() const {
  std::string out = StrCat(stage, engine.empty() ? "" : " [", engine,
                           engine.empty() ? "" : "]", ": ",
                           ImplicationVerdictToString(verdict));
  if (!note.empty()) out += StrCat(" (", note, ")");
  out += StrCat(" {", used.ToString(), "}");
  return out;
}

}  // namespace ccfp
