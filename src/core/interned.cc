#include "core/interned.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "core/model_check.h"
#include "util/check.h"

namespace ccfp {

namespace {

/// Partition provider over the immutable snapshot (every slot alive); the
/// shared id-space checks in core/model_check.h run on it.
struct IdDatabaseProvider {
  const IdDatabase& db;

  std::uint32_t SlotCount(RelId rel) const {
    return static_cast<std::uint32_t>(db.relation(rel).size());
  }
  std::size_t AliveCount(RelId rel) const { return db.relation(rel).size(); }
  bool Alive(RelId, std::uint32_t) const { return true; }
  const IdTuple& Slot(RelId rel, std::uint32_t idx) const {
    return db.relation(rel).tuple(idx);
  }
  const IdRelation::Partition& Partition(
      RelId rel, const std::vector<AttrId>& cols) const {
    return db.relation(rel).partition(cols);
  }
};

}  // namespace

const IdRelation::Partition& IdRelation::partition(
    const std::vector<AttrId>& cols) const {
  auto it = partitions_.find(cols);
  if (it != partitions_.end()) return it->second;
  Partition& p = partitions_[cols];
  p.group_of.reserve(tuples_.size());
  IdTuple key;
  key.reserve(cols.size());
  for (std::uint32_t i = 0; i < tuples_.size(); ++i) {
    key.clear();
    for (AttrId c : cols) key.push_back(tuples_[i][c]);
    auto [kit, inserted] = p.key_to_group.emplace(key, p.group_count);
    if (inserted) {
      p.group_size.push_back(1);
      ++p.group_count;
      ++p.alive_groups;
    } else {
      ++p.group_size[kit->second];
    }
    p.group_of.push_back(kit->second);
  }
  return p;
}

IdDatabase::IdDatabase(const Database& db)
    : scheme_(db.scheme_ptr()), relations_(scheme_->size()) {
  for (RelId rel = 0; rel < scheme_->size(); ++rel) {
    InternRelation(db, rel);
  }
}

IdDatabase::IdDatabase(const Database& db, const std::vector<RelId>& rels)
    : scheme_(db.scheme_ptr()), relations_(scheme_->size()) {
  for (RelId rel : rels) {
    if (relations_[rel].tuples_.empty()) InternRelation(db, rel);
  }
}

IdDatabase::IdDatabase(SchemePtr scheme, ValueInterner interner,
                       std::vector<std::vector<IdTuple>> tuples)
    : scheme_(std::move(scheme)),
      interner_(std::move(interner)),
      relations_(scheme_->size()) {
  CCFP_CHECK(tuples.size() == scheme_->size());
  for (RelId rel = 0; rel < scheme_->size(); ++rel) {
    relations_[rel].tuples_ = std::move(tuples[rel]);
  }
}

void IdDatabase::InternRelation(const Database& db, RelId rel) {
  const Relation& r = db.relation(rel);
  std::vector<IdTuple>& out = relations_[rel].tuples_;
  out.reserve(r.size());
  for (const Tuple& t : r.tuples()) {
    IdTuple it;
    it.reserve(t.size());
    for (const Value& v : t) it.push_back(interner_.Intern(v));
    out.push_back(std::move(it));
  }
}

std::size_t IdDatabase::TotalTuples() const {
  std::size_t n = 0;
  for (const IdRelation& r : relations_) n += r.size();
  return n;
}

bool IdDatabase::Satisfies(const Fd& fd) const {
  return model_check::SatisfiesFd(IdDatabaseProvider{*this}, fd);
}

bool IdDatabase::Satisfies(const Ind& ind) const {
  return model_check::SatisfiesInd(IdDatabaseProvider{*this}, ind);
}

bool IdDatabase::Satisfies(const Rd& rd) const {
  return model_check::SatisfiesRd(IdDatabaseProvider{*this}, rd);
}

bool IdDatabase::Satisfies(const Emvd& emvd) const {
  return model_check::SatisfiesEmvdOn(IdDatabaseProvider{*this}, emvd.rel,
                                      emvd.x, emvd.y, emvd.z);
}

bool IdDatabase::Satisfies(const Mvd& mvd) const {
  return model_check::SatisfiesEmvdOn(IdDatabaseProvider{*this}, mvd.rel,
                                      mvd.x, mvd.y,
                                      MvdComplement(*scheme_, mvd));
}

bool IdDatabase::Satisfies(const Dependency& dep) const {
  return model_check::SatisfiesDependency(IdDatabaseProvider{*this},
                                          *scheme_, dep);
}

bool IdDatabase::SatisfiesAll(const std::vector<Dependency>& deps) const {
  for (const Dependency& dep : deps) {
    if (!Satisfies(dep)) return false;
  }
  return true;
}

std::optional<IdViolation> IdDatabase::FindViolation(
    const Dependency& dep) const {
  return model_check::FindViolation(IdDatabaseProvider{*this}, *scheme_,
                                    dep);
}

Database IdDatabase::Materialize() const {
  Database out(scheme_);
  for (RelId rel = 0; rel < scheme_->size(); ++rel) {
    const IdRelation& r = relations_[rel];
    out.relation(rel).Reserve(r.size());
    for (const IdTuple& it : r.tuples()) {
      Tuple t;
      t.reserve(it.size());
      for (ValueId id : it) t.push_back(interner_.value(id));
      out.Insert(rel, std::move(t));
    }
  }
  return out;
}

}  // namespace ccfp
