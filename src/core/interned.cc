#include "core/interned.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "util/check.h"

namespace ccfp {

namespace {

}  // namespace

const IdRelation::Partition& IdRelation::partition(
    const std::vector<AttrId>& cols) const {
  auto it = partitions_.find(cols);
  if (it != partitions_.end()) return it->second;
  Partition& p = partitions_[cols];
  p.group_of.reserve(tuples_.size());
  IdTuple key;
  key.reserve(cols.size());
  for (std::uint32_t i = 0; i < tuples_.size(); ++i) {
    key.clear();
    for (AttrId c : cols) key.push_back(tuples_[i][c]);
    auto [kit, inserted] = p.key_to_group.emplace(key, p.group_count);
    if (inserted) {
      p.first_of_group.push_back(i);
      ++p.group_count;
    }
    p.group_of.push_back(kit->second);
  }
  return p;
}

IdDatabase::IdDatabase(const Database& db)
    : scheme_(db.scheme_ptr()), relations_(scheme_->size()) {
  for (RelId rel = 0; rel < scheme_->size(); ++rel) {
    InternRelation(db, rel);
  }
}

IdDatabase::IdDatabase(const Database& db, const std::vector<RelId>& rels)
    : scheme_(db.scheme_ptr()), relations_(scheme_->size()) {
  for (RelId rel : rels) {
    if (relations_[rel].tuples_.empty()) InternRelation(db, rel);
  }
}

IdDatabase::IdDatabase(SchemePtr scheme, ValueInterner interner,
                       std::vector<std::vector<IdTuple>> tuples)
    : scheme_(std::move(scheme)),
      interner_(std::move(interner)),
      relations_(scheme_->size()) {
  CCFP_CHECK(tuples.size() == scheme_->size());
  for (RelId rel = 0; rel < scheme_->size(); ++rel) {
    relations_[rel].tuples_ = std::move(tuples[rel]);
  }
}

void IdDatabase::InternRelation(const Database& db, RelId rel) {
  const Relation& r = db.relation(rel);
  std::vector<IdTuple>& out = relations_[rel].tuples_;
  out.reserve(r.size());
  for (const Tuple& t : r.tuples()) {
    IdTuple it;
    it.reserve(t.size());
    for (const Value& v : t) it.push_back(interner_.Intern(v));
    out.push_back(std::move(it));
  }
}

std::size_t IdDatabase::TotalTuples() const {
  std::size_t n = 0;
  for (const IdRelation& r : relations_) n += r.size();
  return n;
}

bool IdDatabase::Satisfies(const Fd& fd) const {
  const IdRelation& r = relations_[fd.rel];
  if (r.empty()) return true;
  const IdRelation::Partition& lhs = r.partition(fd.lhs);
  const IdRelation::Partition& rhs = r.partition(fd.rhs);
  // The FD holds iff the lhs partition refines the rhs partition.
  std::vector<std::uint32_t> seen(lhs.group_count, UINT32_MAX);
  for (std::uint32_t i = 0; i < r.size(); ++i) {
    std::uint32_t g = lhs.group_of[i];
    std::uint32_t h = rhs.group_of[i];
    if (seen[g] == UINT32_MAX) {
      seen[g] = h;
    } else if (seen[g] != h) {
      return false;
    }
  }
  return true;
}

bool IdDatabase::Satisfies(const Ind& ind) const {
  const IdRelation& lhs = relations_[ind.lhs_rel];
  if (lhs.empty()) return true;
  const IdRelation::Partition& lhs_p = lhs.partition(ind.lhs);
  const IdRelation::Partition& rhs_p =
      relations_[ind.rhs_rel].partition(ind.rhs);
  IdTuple key;
  key.reserve(ind.lhs.size());
  for (std::uint32_t g = 0; g < lhs_p.group_count; ++g) {
    const IdTuple& t = lhs.tuple(lhs_p.first_of_group[g]);
    key.clear();
    for (AttrId c : ind.lhs) key.push_back(t[c]);
    if (rhs_p.key_to_group.count(key) == 0) return false;
  }
  return true;
}

bool IdDatabase::Satisfies(const Rd& rd) const {
  const IdRelation& r = relations_[rd.rel];
  for (const IdTuple& t : r.tuples()) {
    for (std::size_t i = 0; i < rd.lhs.size(); ++i) {
      if (t[rd.lhs[i]] != t[rd.rhs[i]]) return false;
    }
  }
  return true;
}

bool IdDatabase::SatisfiesEmvdOn(RelId rel, const std::vector<AttrId>& x,
                                 const std::vector<AttrId>& y,
                                 const std::vector<AttrId>& z) const {
  const IdRelation& r = relations_[rel];
  if (r.empty()) return true;
  std::vector<AttrId> xy = AppendDistinctAttrs(x, y);
  std::vector<AttrId> xz = AppendDistinctAttrs(x, z);
  const IdRelation::Partition& x_p = r.partition(x);
  const IdRelation::Partition& xy_p = r.partition(xy);
  const IdRelation::Partition& xz_p = r.partition(xz);
  // Per X-group distinct XY / XZ / (XY, XZ) counts. XY refines X, so an XY
  // group belongs to exactly one X group (likewise XZ and pairs) — the
  // group obeys the EMVD iff pairs == xy_distinct * xz_distinct.
  std::vector<std::uint32_t> ny(x_p.group_count, 0);
  std::vector<std::uint32_t> nz(x_p.group_count, 0);
  std::vector<std::uint64_t> np(x_p.group_count, 0);
  std::vector<std::uint8_t> seen_xy(xy_p.group_count, 0);
  std::vector<std::uint8_t> seen_xz(xz_p.group_count, 0);
  std::unordered_set<std::uint64_t> pairs;
  pairs.reserve(r.size());
  for (std::uint32_t i = 0; i < r.size(); ++i) {
    std::uint32_t g = x_p.group_of[i];
    std::uint32_t gy = xy_p.group_of[i];
    std::uint32_t gz = xz_p.group_of[i];
    if (!seen_xy[gy]) {
      seen_xy[gy] = 1;
      ++ny[g];
    }
    if (!seen_xz[gz]) {
      seen_xz[gz] = 1;
      ++nz[g];
    }
    if (pairs.insert(PackIdPair(gy, gz)).second) ++np[g];
  }
  for (std::uint32_t g = 0; g < x_p.group_count; ++g) {
    if (static_cast<std::uint64_t>(ny[g]) * nz[g] != np[g]) return false;
  }
  return true;
}

bool IdDatabase::Satisfies(const Emvd& emvd) const {
  return SatisfiesEmvdOn(emvd.rel, emvd.x, emvd.y, emvd.z);
}

bool IdDatabase::Satisfies(const Mvd& mvd) const {
  return SatisfiesEmvdOn(mvd.rel, mvd.x, mvd.y,
                         MvdComplement(*scheme_, mvd));
}

bool IdDatabase::Satisfies(const Dependency& dep) const {
  switch (dep.kind()) {
    case DependencyKind::kFd:
      return Satisfies(dep.fd());
    case DependencyKind::kInd:
      return Satisfies(dep.ind());
    case DependencyKind::kRd:
      return Satisfies(dep.rd());
    case DependencyKind::kEmvd:
      return Satisfies(dep.emvd());
    case DependencyKind::kMvd:
      return Satisfies(dep.mvd());
  }
  return false;
}

bool IdDatabase::SatisfiesAll(const std::vector<Dependency>& deps) const {
  for (const Dependency& dep : deps) {
    if (!Satisfies(dep)) return false;
  }
  return true;
}

std::optional<IdViolation> IdDatabase::FindEmvdViolation(
    RelId rel, const std::vector<AttrId>& x, const std::vector<AttrId>& y,
    const std::vector<AttrId>& z) const {
  if (SatisfiesEmvdOn(rel, x, y, z)) return std::nullopt;
  const IdRelation& r = relations_[rel];
  std::vector<AttrId> xy = AppendDistinctAttrs(x, y);
  std::vector<AttrId> xz = AppendDistinctAttrs(x, z);
  const IdRelation::Partition& x_p = r.partition(x);
  const IdRelation::Partition& xy_p = r.partition(xy);
  const IdRelation::Partition& xz_p = r.partition(xz);
  std::unordered_set<std::uint64_t> pairs;
  for (std::uint32_t i = 0; i < r.size(); ++i) {
    pairs.insert(PackIdPair(xy_p.group_of[i], xz_p.group_of[i]));
  }
  // Diagnostics path only: quadratic scan for the first same-group pair
  // whose (XY, XZ) combination has no witness tuple.
  for (std::uint32_t i = 0; i < r.size(); ++i) {
    for (std::uint32_t j = 0; j < r.size(); ++j) {
      if (x_p.group_of[i] != x_p.group_of[j]) continue;
      if (pairs.count(PackIdPair(xy_p.group_of[i], xz_p.group_of[j])) == 0) {
        return IdViolation{rel, {i, j}};
      }
    }
  }
  return IdViolation{rel, {}};  // unreachable if Satisfies was false
}

std::optional<IdViolation> IdDatabase::FindViolation(
    const Dependency& dep) const {
  switch (dep.kind()) {
    case DependencyKind::kFd: {
      const Fd& fd = dep.fd();
      const IdRelation& r = relations_[fd.rel];
      if (r.empty()) return std::nullopt;
      const IdRelation::Partition& lhs = r.partition(fd.lhs);
      const IdRelation::Partition& rhs = r.partition(fd.rhs);
      std::vector<std::uint32_t> first(lhs.group_count, UINT32_MAX);
      for (std::uint32_t i = 0; i < r.size(); ++i) {
        std::uint32_t g = lhs.group_of[i];
        if (first[g] == UINT32_MAX) {
          first[g] = i;
        } else if (rhs.group_of[first[g]] != rhs.group_of[i]) {
          return IdViolation{fd.rel, {first[g], i}};
        }
      }
      return std::nullopt;
    }
    case DependencyKind::kInd: {
      const Ind& ind = dep.ind();
      const IdRelation& lhs = relations_[ind.lhs_rel];
      const IdRelation::Partition& lhs_p = lhs.partition(ind.lhs);
      const IdRelation::Partition& rhs_p =
          relations_[ind.rhs_rel].partition(ind.rhs);
      IdTuple key;
      // Ascending group id == ascending first-occurrence index, so the
      // first missing group's first tuple is the first violating tuple —
      // identical to a legacy front-to-back scan.
      for (std::uint32_t g = 0; g < lhs_p.group_count; ++g) {
        const IdTuple& t = lhs.tuple(lhs_p.first_of_group[g]);
        key.clear();
        for (AttrId c : ind.lhs) key.push_back(t[c]);
        if (rhs_p.key_to_group.count(key) == 0) {
          return IdViolation{ind.lhs_rel, {lhs_p.first_of_group[g]}};
        }
      }
      return std::nullopt;
    }
    case DependencyKind::kRd: {
      const Rd& rd = dep.rd();
      const IdRelation& r = relations_[rd.rel];
      for (std::uint32_t i = 0; i < r.size(); ++i) {
        const IdTuple& t = r.tuple(i);
        for (std::size_t k = 0; k < rd.lhs.size(); ++k) {
          if (t[rd.lhs[k]] != t[rd.rhs[k]]) {
            return IdViolation{rd.rel, {i}};
          }
        }
      }
      return std::nullopt;
    }
    case DependencyKind::kEmvd:
      return FindEmvdViolation(dep.emvd().rel, dep.emvd().x, dep.emvd().y,
                               dep.emvd().z);
    case DependencyKind::kMvd:
      return FindEmvdViolation(dep.mvd().rel, dep.mvd().x, dep.mvd().y,
                               MvdComplement(*scheme_, dep.mvd()));
  }
  return std::nullopt;
}

Database IdDatabase::Materialize() const {
  Database out(scheme_);
  for (RelId rel = 0; rel < scheme_->size(); ++rel) {
    const IdRelation& r = relations_[rel];
    out.relation(rel).Reserve(r.size());
    for (const IdTuple& it : r.tuples()) {
      Tuple t;
      t.reserve(it.size());
      for (ValueId id : it) t.push_back(interner_.value(id));
      out.Insert(rel, std::move(t));
    }
  }
  return out;
}

}  // namespace ccfp
