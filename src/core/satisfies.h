#ifndef CCFP_CORE_SATISFIES_H_
#define CCFP_CORE_SATISFIES_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/dependency.h"
#include "core/interned.h"

namespace ccfp {

class InternedWorkspace;  // core/workspace.h

/// Which model-checking engine to run.
enum class SatisfiesEngine : std::uint8_t {
  /// Interns the involved relations into an IdDatabase once, then checks
  /// over dense uint32 ids and cached projection partitions
  /// (core/interned.h). The default.
  kInterned = 0,
  /// The original heap-Value hashing checks, kept as the differential
  /// reference (tests/satisfies_property_test.cc).
  kLegacy = 1,
};

struct SatisfiesOptions {
  SatisfiesEngine engine = SatisfiesEngine::kInterned;
};

/// Model checking: does database `db` obey the given dependency?
/// (Section 2 of the paper: "r obeys the FD ...", "d obeys the IND ...").
bool Satisfies(const Database& db, const Fd& fd);
bool Satisfies(const Database& db, const Ind& ind);
bool Satisfies(const Database& db, const Rd& rd);
bool Satisfies(const Database& db, const Emvd& emvd);
bool Satisfies(const Database& db, const Mvd& mvd);
bool Satisfies(const Database& db, const Dependency& dep,
               const SatisfiesOptions& options = {});

/// True iff `db` obeys every dependency in `deps`. The interned engine
/// interns `db` once and reuses the projection partitions across all
/// dependencies.
bool SatisfiesAll(const Database& db, const std::vector<Dependency>& deps,
                  const SatisfiesOptions& options = {});

/// The subset of `deps` that `db` obeys.
std::vector<Dependency> SatisfiedSubset(const Database& db,
                                        const std::vector<Dependency>& deps,
                                        const SatisfiesOptions& options = {});

/// A concrete witness that `db` violates a dependency, for diagnostics and
/// for re-checking that reported violations are genuine.
struct Violation {
  /// Human-readable explanation referencing the offending tuples.
  std::string description;
  /// Kind of the violated dependency.
  DependencyKind kind = DependencyKind::kFd;
  /// Relation holding the offending tuples (the lhs relation for INDs).
  RelId rel = 0;
  /// Index of the violated dependency within the query list; 0 for the
  /// single-dependency entry points, set by FindFirstViolation.
  std::size_t dep_index = 0;
  /// Indices of the offending tuples into `db.relation(rel).tuples()`:
  /// FD — two tuples agreeing on lhs and differing on rhs; IND — one tuple
  /// whose projection is missing from the rhs relation; RD — one tuple with
  /// t[X] != t[Y]; EMVD/MVD — two same-X-group tuples whose (XY, XZ)
  /// combination no tuple witnesses. All five kinds carry identical
  /// witnesses across both engines (differentially tested).
  std::vector<std::size_t> tuple_indices;
  /// Copies of the tuples at `tuple_indices`, in the same order.
  std::vector<Tuple> tuples;
};

/// Returns a violation witness, or nullopt if `db` obeys `dep`.
std::optional<Violation> FindViolation(const Database& db,
                                       const Dependency& dep,
                                       const SatisfiesOptions& options = {});

/// Returns the first violated dependency of `deps` (by list position) with
/// its witness (`dep_index` set), or nullopt if `db` obeys all of them.
std::optional<Violation> FindFirstViolation(
    const Database& db, const std::vector<Dependency>& deps,
    const SatisfiesOptions& options = {});

/// Checks that `db` obeys *exactly* the dependencies of `universe` that are
/// in `expected` (Fagin's Armstrong-database property, used to verify the
/// Section 6/7 witness databases). On failure returns a description of the
/// first discrepancy. The interned engine interns `db` once for the whole
/// universe sweep.
std::optional<std::string> ObeysExactly(
    const Database& db, const std::vector<Dependency>& universe,
    const std::vector<Dependency>& expected,
    const SatisfiesOptions& options = {});

/// --- IdDatabase entry points ----------------------------------------------
/// For callers that already hold an interned database (the Armstrong
/// builders verify chase output without re-interning a single Value).

/// Violation witness against an interned database; `tuple_indices` address
/// `db.relation(rel).tuples()`.
std::optional<Violation> FindViolation(const IdDatabase& db,
                                       const Dependency& dep);

std::optional<std::string> ObeysExactly(
    const IdDatabase& db, const std::vector<Dependency>& universe,
    const std::vector<Dependency>& expected);

/// Same check against a persistent workspace (core/workspace.h) — the
/// Armstrong repair loop verifies each round on the workspace it chased,
/// reusing its cached partitions. Requires no stale tuples.
std::optional<std::string> ObeysExactly(
    const InternedWorkspace& ws, const std::vector<Dependency>& universe,
    const std::vector<Dependency>& expected);

}  // namespace ccfp

#endif  // CCFP_CORE_SATISFIES_H_
