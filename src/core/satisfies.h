#ifndef CCFP_CORE_SATISFIES_H_
#define CCFP_CORE_SATISFIES_H_

#include <optional>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/dependency.h"

namespace ccfp {

/// Model checking: does database `db` obey the given dependency?
/// (Section 2 of the paper: "r obeys the FD ...", "d obeys the IND ...").
bool Satisfies(const Database& db, const Fd& fd);
bool Satisfies(const Database& db, const Ind& ind);
bool Satisfies(const Database& db, const Rd& rd);
bool Satisfies(const Database& db, const Emvd& emvd);
bool Satisfies(const Database& db, const Mvd& mvd);
bool Satisfies(const Database& db, const Dependency& dep);

/// True iff `db` obeys every dependency in `deps`.
bool SatisfiesAll(const Database& db, const std::vector<Dependency>& deps);

/// The subset of `deps` that `db` obeys.
std::vector<Dependency> SatisfiedSubset(const Database& db,
                                        const std::vector<Dependency>& deps);

/// A concrete witness that `db` violates a dependency, for diagnostics.
struct Violation {
  /// Human-readable explanation referencing the offending tuples.
  std::string description;
};

/// Returns a violation witness, or nullopt if `db` obeys `dep`.
std::optional<Violation> FindViolation(const Database& db,
                                       const Dependency& dep);

/// Checks that `db` obeys *exactly* the dependencies of `universe` that are
/// in `expected` (Fagin's Armstrong-database property, used to verify the
/// Section 6/7 witness databases). On failure returns a description of the
/// first discrepancy.
std::optional<std::string> ObeysExactly(
    const Database& db, const std::vector<Dependency>& universe,
    const std::vector<Dependency>& expected);

}  // namespace ccfp

#endif  // CCFP_CORE_SATISFIES_H_
