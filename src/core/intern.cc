#include "core/intern.h"

namespace ccfp {

ValueId ValueInterner::Intern(const Value& v) {
  if (base_ != nullptr) {
    auto bit = base_->ids.find(v);
    if (bit != base_->ids.end()) return bit->second;
  }
  auto it = ids_.find(v);
  if (it != ids_.end()) return it->second;
  ValueId id = base_size_ + static_cast<ValueId>(values_.size());
  values_.push_back(v);
  ids_.emplace(v, id);
  if (v.is_null()) NoteNullLabel(v.null_id());
  return id;
}

ValueId ValueInterner::InternFreshNull() {
  return Intern(Value::Null(next_null_label_));
}

bool ValueInterner::InternNew(const Value& v) {
  if (base_ != nullptr && base_->ids.count(v) != 0) return false;
  ValueId id = base_size_ + static_cast<ValueId>(values_.size());
  if (!ids_.emplace(v, id).second) return false;
  values_.push_back(v);
  return true;
}

void ValueInterner::Freeze() {
  if (values_.empty() && base_ != nullptr) return;  // nothing new to seal
  auto frozen = std::make_shared<Frozen>();
  frozen->values.reserve(size());
  if (base_ != nullptr) frozen->values = base_->values;
  for (Value& v : values_) frozen->values.push_back(std::move(v));
  frozen->ids.reserve(frozen->values.size());
  for (ValueId id = 0; id < frozen->values.size(); ++id) {
    frozen->ids.emplace(frozen->values[id], id);
  }
  base_size_ = static_cast<ValueId>(frozen->values.size());
  base_ = std::move(frozen);
  values_.clear();
  ids_.clear();
}

void ValueInterner::NoteNullLabel(std::uint64_t label) {
  if (label >= next_null_label_) next_null_label_ = label + 1;
}

DenseUnionFind::UnionResult DenseUnionFind::Union(
    ValueId a, ValueId b, const ValueInterner& interner) {
  UnionResult result;
  ValueId ra = Find(a), rb = Find(b);
  if (ra == rb) {
    result.winner = ra;
    result.loser = ra;
    return result;
  }
  // Semantic representative of the merged class.
  ValueId pa = rep_[ra], pb = rep_[rb];
  bool a_const = interner.is_const(pa);
  bool b_const = interner.is_const(pb);
  if (a_const && b_const) {
    // Distinct classes can only hold distinct constants (a constant has
    // one id, and an id is in one class) — so this is always a clash.
    result.clash = true;
    return result;
  }
  ValueId rep;
  if (a_const) {
    rep = pa;
  } else if (b_const) {
    rep = pb;
  } else {
    rep = interner.null_label(pa) < interner.null_label(pb) ? pa : pb;
  }
  // Structural union by size; ties break toward the lower root id so the
  // result is deterministic.
  if (size_[ra] > size_[rb] || (size_[ra] == size_[rb] && ra < rb)) {
    result.winner = ra;
    result.loser = rb;
  } else {
    result.winner = rb;
    result.loser = ra;
  }
  parent_[result.loser] = result.winner;
  size_[result.winner] += size_[result.loser];
  rep_[result.winner] = rep;
  result.merged = true;
  return result;
}

}  // namespace ccfp
