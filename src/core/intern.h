#ifndef CCFP_CORE_INTERN_H_
#define CCFP_CORE_INTERN_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/value.h"

namespace ccfp {

/// Dense id of an interned Value inside one interning scope (a chase run,
/// an IdDatabase, ...).
using ValueId = std::uint32_t;

/// Interns `Value`s into dense uint32 ids so hot loops (the chase, the
/// interned model checker in core/interned.h) work on flat integer arrays
/// instead of rehashing heap `Value` objects. Ids are assigned in interning
/// order, so a deterministic input order yields a deterministic id
/// assignment.
///
/// ## Shared frozen base (copy-on-write extension)
///
/// `Freeze()` seals the current contents into an immutable, reference-
/// counted base table. A frozen interner keeps interning: new values land
/// in a local extension whose ids continue the dense sequence, and lookups
/// probe the base first (ids never change across a freeze). Copying a
/// frozen interner copies only the local extension and a refcount bump on
/// the base — the substrate trick behind InternedWorkspace::Fork(), where
/// the Nth session over a scheme shares one value table instead of
/// duplicating it. Freezing is a representation change only: every public
/// observation (ids, values, size, the null watermark) is unaffected.
class ValueInterner {
 public:
  /// Returns the id of `v`, interning it on first sight.
  ValueId Intern(const Value& v);

  /// Interns a fresh labeled null (label = one past the largest label seen
  /// via `NoteNullLabel` or previous fresh nulls).
  ValueId InternFreshNull();

  /// Makes sure future fresh nulls are numbered strictly above `label`.
  void NoteNullLabel(std::uint64_t label);

  /// Seals the current contents (base + local extension) into a new
  /// immutable shared base; the local extension empties. Idempotent when
  /// nothing was interned since the last freeze. O(size) once; every
  /// subsequent copy of this interner is O(local extension).
  void Freeze();

  /// True when a frozen base is attached (size of the base table is
  /// `base_size()`; local ids start there).
  bool has_shared_base() const { return base_ != nullptr; }
  std::size_t base_size() const { return base_size_; }

  const Value& value(ValueId id) const {
    return id < base_size_ ? base_->values[id] : values_[id - base_size_];
  }
  bool is_const(ValueId id) const { return !value(id).is_null(); }
  std::uint64_t null_label(ValueId id) const { return value(id).null_id(); }
  std::size_t size() const { return base_size_ + values_.size(); }

 private:
  friend class WorkspaceSnapshotAccess;  ///< serialization (core/snapshot.h)

  /// The sealed table: values in id order plus their reverse index.
  /// Immutable after construction; shared across forks by shared_ptr.
  struct Frozen {
    std::vector<Value> values;
    std::unordered_map<Value, ValueId, ValueHash> ids;
  };

  /// Snapshot-restore append: interns `v` asserting it is unseen. Returns
  /// false (without interning) when `v` is already present in the base or
  /// the local extension — restore paths treat that as corruption. Does
  /// not touch the null watermark (restores set it explicitly).
  bool InternNew(const Value& v);

  std::shared_ptr<const Frozen> base_;  ///< null until the first Freeze
  ValueId base_size_ = 0;               ///< == base_->values.size()
  /// Local extension: entry i holds the value with id base_size_ + i.
  std::vector<Value> values_;
  std::unordered_map<Value, ValueId, ValueHash> ids_;
  std::uint64_t next_null_label_ = 1;
};

/// Array-based union-find over dense value ids with *iterative path
/// halving* — no recursion, so arbitrarily long merge chains cannot blow
/// the stack (the failure mode of the old map-based ValueUnion).
///
/// The *structural* union is by class size (smaller class under larger),
/// which is what keeps the engine's change-propagation near-linear: the
/// caller re-visits only the losing side, and with union-by-size each
/// element loses O(log n) times total. The chase's *merge semantics* —
/// a constant beats a labeled null, between nulls the lower label wins,
/// two distinct constants clash — live in a per-class representative
/// (`Rep`), deliberately decoupled from the tree shape so a semantically
/// dominant value never forces the large class to be the one re-visited.
class DenseUnionFind {
 public:
  struct UnionResult {
    ValueId winner = 0;   ///< structural winner (root of the merged class)
    ValueId loser = 0;    ///< structural loser (its refs need re-visiting)
    bool merged = false;  ///< false when already equal or on clash
    bool clash = false;   ///< true when two distinct constants met
  };

  /// Grows the arrays to cover every id the interner has handed out.
  void EnsureSize(std::size_t n) {
    while (parent_.size() < n) {
      ValueId id = static_cast<ValueId>(parent_.size());
      parent_.push_back(id);
      size_.push_back(1);
      rep_.push_back(id);
    }
  }

  ValueId Find(ValueId x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  /// Same root as Find, but performs no path halving — a pure read. The
  /// parallel engines' frozen probe phases use this so concurrent lookups
  /// on a quiescent structure are race-free; sequential callers should
  /// keep using Find for its compaction.
  ValueId FindReadOnly(ValueId x) const {
    while (parent_[x] != x) x = parent_[x];
    return x;
  }

  /// The semantically preferred member of x's class: its constant if one
  /// was merged in, else its lowest-labeled null. This is what the class
  /// prints as — identical to the naive engine's merge preference.
  ValueId Rep(ValueId x) { return rep_[Find(x)]; }

  UnionResult Union(ValueId a, ValueId b, const ValueInterner& interner);

  std::size_t size() const { return parent_.size(); }

 private:
  friend class WorkspaceSnapshotAccess;  ///< serialization (core/snapshot.h)

  std::vector<ValueId> parent_;
  std::vector<std::uint32_t> size_;
  std::vector<ValueId> rep_;  ///< per root: semantic representative
};

}  // namespace ccfp

#endif  // CCFP_CORE_INTERN_H_
