#ifndef CCFP_CORE_INTERN_H_
#define CCFP_CORE_INTERN_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/value.h"

namespace ccfp {

/// Dense id of an interned Value inside one interning scope (a chase run,
/// an IdDatabase, ...).
using ValueId = std::uint32_t;

/// Interns `Value`s into dense uint32 ids so hot loops (the chase, the
/// interned model checker in core/interned.h) work on flat integer arrays
/// instead of rehashing heap `Value` objects. Ids are assigned in interning
/// order, so a deterministic input order yields a deterministic id
/// assignment.
class ValueInterner {
 public:
  /// Returns the id of `v`, interning it on first sight.
  ValueId Intern(const Value& v);

  /// Interns a fresh labeled null (label = one past the largest label seen
  /// via `NoteNullLabel` or previous fresh nulls).
  ValueId InternFreshNull();

  /// Makes sure future fresh nulls are numbered strictly above `label`.
  void NoteNullLabel(std::uint64_t label);

  const Value& value(ValueId id) const { return values_[id]; }
  bool is_const(ValueId id) const { return !values_[id].is_null(); }
  std::uint64_t null_label(ValueId id) const { return values_[id].null_id(); }
  std::size_t size() const { return values_.size(); }

 private:
  friend class WorkspaceSnapshotAccess;  ///< serialization (core/snapshot.h)

  std::vector<Value> values_;
  std::unordered_map<Value, ValueId, ValueHash> ids_;
  std::uint64_t next_null_label_ = 1;
};

/// Array-based union-find over dense value ids with *iterative path
/// halving* — no recursion, so arbitrarily long merge chains cannot blow
/// the stack (the failure mode of the old map-based ValueUnion).
///
/// The *structural* union is by class size (smaller class under larger),
/// which is what keeps the engine's change-propagation near-linear: the
/// caller re-visits only the losing side, and with union-by-size each
/// element loses O(log n) times total. The chase's *merge semantics* —
/// a constant beats a labeled null, between nulls the lower label wins,
/// two distinct constants clash — live in a per-class representative
/// (`Rep`), deliberately decoupled from the tree shape so a semantically
/// dominant value never forces the large class to be the one re-visited.
class DenseUnionFind {
 public:
  struct UnionResult {
    ValueId winner = 0;   ///< structural winner (root of the merged class)
    ValueId loser = 0;    ///< structural loser (its refs need re-visiting)
    bool merged = false;  ///< false when already equal or on clash
    bool clash = false;   ///< true when two distinct constants met
  };

  /// Grows the arrays to cover every id the interner has handed out.
  void EnsureSize(std::size_t n) {
    while (parent_.size() < n) {
      ValueId id = static_cast<ValueId>(parent_.size());
      parent_.push_back(id);
      size_.push_back(1);
      rep_.push_back(id);
    }
  }

  ValueId Find(ValueId x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  /// Same root as Find, but performs no path halving — a pure read. The
  /// parallel engines' frozen probe phases use this so concurrent lookups
  /// on a quiescent structure are race-free; sequential callers should
  /// keep using Find for its compaction.
  ValueId FindReadOnly(ValueId x) const {
    while (parent_[x] != x) x = parent_[x];
    return x;
  }

  /// The semantically preferred member of x's class: its constant if one
  /// was merged in, else its lowest-labeled null. This is what the class
  /// prints as — identical to the naive engine's merge preference.
  ValueId Rep(ValueId x) { return rep_[Find(x)]; }

  UnionResult Union(ValueId a, ValueId b, const ValueInterner& interner);

  std::size_t size() const { return parent_.size(); }

 private:
  friend class WorkspaceSnapshotAccess;  ///< serialization (core/snapshot.h)

  std::vector<ValueId> parent_;
  std::vector<std::uint32_t> size_;
  std::vector<ValueId> rep_;  ///< per root: semantic representative
};

}  // namespace ccfp

#endif  // CCFP_CORE_INTERN_H_
