#include "core/schema.h"

#include <utility>

#include "util/check.h"
#include "util/strings.h"

namespace ccfp {

RelationScheme::RelationScheme(std::string name,
                               std::vector<std::string> attrs)
    : name_(std::move(name)), attrs_(std::move(attrs)) {
  for (AttrId i = 0; i < attrs_.size(); ++i) attr_index_.emplace(attrs_[i], i);
}

Result<AttrId> RelationScheme::FindAttr(const std::string& name) const {
  auto it = attr_index_.find(name);
  if (it == attr_index_.end()) {
    return Status::NotFound(
        StrCat("attribute '", name, "' not in relation ", name_));
  }
  return it->second;
}

bool RelationScheme::HasAttr(const std::string& name) const {
  return attr_index_.count(name) > 0;
}

std::string RelationScheme::ToString() const {
  return StrCat(name_, "[", JoinStrings(attrs_, ", "), "]");
}

Result<RelId> DatabaseScheme::FindRelation(const std::string& name) const {
  auto it = relation_index_.find(name);
  if (it == relation_index_.end()) {
    return Status::NotFound(StrCat("relation '", name, "' not in scheme"));
  }
  return it->second;
}

bool DatabaseScheme::HasRelation(const std::string& name) const {
  return relation_index_.count(name) > 0;
}

std::string DatabaseScheme::ToString() const {
  std::string out;
  for (const RelationScheme& r : relations_) {
    out += r.ToString();
    out += "\n";
  }
  return out;
}

DatabaseSchemeBuilder& DatabaseSchemeBuilder::AddRelation(
    std::string name, std::vector<std::string> attrs) {
  pending_.push_back({std::move(name), std::move(attrs)});
  return *this;
}

Result<SchemePtr> DatabaseSchemeBuilder::Build() {
  auto scheme = std::shared_ptr<DatabaseScheme>(new DatabaseScheme());
  for (Pending& p : pending_) {
    if (p.name.empty()) {
      return Status::InvalidArgument("relation name must be nonempty");
    }
    if (scheme->relation_index_.count(p.name) > 0) {
      return Status::InvalidArgument(
          StrCat("duplicate relation name '", p.name, "'"));
    }
    std::map<std::string, int> seen;
    for (const std::string& a : p.attrs) {
      if (a.empty()) {
        return Status::InvalidArgument(
            StrCat("empty attribute name in relation '", p.name, "'"));
      }
      if (++seen[a] > 1) {
        return Status::InvalidArgument(
            StrCat("duplicate attribute '", a, "' in relation '", p.name,
                   "'"));
      }
    }
    RelId id = static_cast<RelId>(scheme->relations_.size());
    scheme->relation_index_.emplace(p.name, id);
    scheme->relations_.emplace_back(std::move(p.name), std::move(p.attrs));
  }
  return SchemePtr(scheme);
}

SchemePtr MakeScheme(
    std::vector<std::pair<std::string, std::vector<std::string>>> relations) {
  DatabaseSchemeBuilder builder;
  for (auto& [name, attrs] : relations) {
    builder.AddRelation(std::move(name), std::move(attrs));
  }
  Result<SchemePtr> scheme = builder.Build();
  CCFP_CHECK_MSG(scheme.ok(), scheme.status().ToString().c_str());
  return scheme.MoveValue();
}

}  // namespace ccfp
