#ifndef CCFP_CORE_SNAPSHOT_H_
#define CCFP_CORE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/workspace.h"
#include "util/status.h"

namespace ccfp {

/// Versioned, checksummed serialization of an InternedWorkspace — the
/// persistence layer that lets a restarted ArmstrongSession or solver
/// warm-start with no re-interning.
///
/// ## What a snapshot carries
///
/// The *entire* mutable substrate, bit-for-bit restorable:
///   * the value interner (values in id order + the fresh-null watermark),
///     so restored ids mean exactly what they meant;
///   * the union-find arrays (parent/size/rep), preserving both the merge
///     classes and their semantic representatives;
///   * every relation's tuple slots with alive flags, its compaction
///     horizon, and its retained change feed — dedup indexes are rebuilt
///     from the alive slots at load;
///   * the per-id occurrence lists, serialized *exactly* (not rebuilt):
///     their order feeds the chase's deterministic dirty worklists, and a
///     rebuild could reorder them;
///   * every compiled projection partition, including tombstoned groups
///     and stable group ids — the capital a warm start is meant to keep;
///   * the substrate Stats, so a restored session reports continuously;
///   * caller-supplied consumer cursors (e.g. a verifier's per-relation
///     feed positions), so delta consumers resume where they stopped.
///
/// Registered feed cursors are NOT serialized: they belong to live
/// consumer objects, which are gone after a restart and re-register.
///
/// ## Wire format (version 1)
///
///   magic "CCFPWS" | u32 version | u64 payload_size | u64 fnv1a64(payload)
///   | payload
///
/// All integers little-endian, written byte-by-byte (no aliasing, no
/// endianness traps under the sanitizers). The payload opens with a
/// fingerprint of the scheme (relation/attribute names), and load rejects
/// a snapshot taken under a different scheme. Any damage — bad magic,
/// unknown version, size mismatch, checksum mismatch, out-of-bounds ids,
/// truncation anywhere — yields InvalidArgument, never a crash and never
/// a half-restored workspace.
///
/// `SaveWorkspaceSnapshot` consults the installed FaultInjector
/// (util/fault.h) at FaultSite::kSnapshotCorrupt / kSnapshotTruncate and
/// deliberately damages the bytes it writes when a fault fires, so the
/// property suites can pin that a damaged file is always rejected.

/// A deserialized snapshot: the workspace plus the consumer cursors the
/// saver embedded (same order they were passed; each is a per-relation
/// sequence vector).
struct RestoredWorkspace {
  InternedWorkspace ws;
  std::vector<std::vector<std::uint64_t>> consumer_cursors;
};

/// Serializes `ws` (plus optional consumer cursors) to an in-memory blob
/// in the wire format above.
std::string SerializeWorkspace(
    const InternedWorkspace& ws,
    const std::vector<std::vector<std::uint64_t>>& consumer_cursors = {});

/// Parses and validates `bytes`; on success the returned workspace is
/// observably identical to the serialized one (same ids, same partitions
/// with the same group ids, same feed window, same stats). `scheme` must
/// match the saved fingerprint.
Result<RestoredWorkspace> DeserializeWorkspace(SchemePtr scheme,
                                               std::string_view bytes);

/// Serializes and writes to `path` (atomically enough for tests: write to
/// `path` directly; callers needing crash-safe rename own that policy).
/// Injected kSnapshotCorrupt / kSnapshotTruncate faults damage the bytes
/// *before* the write, simulating a torn or bit-rotted file.
Status SaveWorkspaceSnapshot(
    const InternedWorkspace& ws, const std::string& path,
    const std::vector<std::vector<std::uint64_t>>& consumer_cursors = {});

/// Reads `path` and deserializes. NotFound if the file cannot be read.
Result<RestoredWorkspace> LoadWorkspaceSnapshot(SchemePtr scheme,
                                                const std::string& path);

/// FNV-1a 64 over `bytes` — the snapshot checksum, exposed for tests.
std::uint64_t Fnv1a64(std::string_view bytes);

/// The current wire-format version.
inline constexpr std::uint32_t kWorkspaceSnapshotVersion = 1;

}  // namespace ccfp

#endif  // CCFP_CORE_SNAPSHOT_H_
