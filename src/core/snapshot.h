#ifndef CCFP_CORE_SNAPSHOT_H_
#define CCFP_CORE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/workspace.h"
#include "util/status.h"

namespace ccfp {

/// Versioned, checksummed serialization of an InternedWorkspace — the
/// persistence layer that lets a restarted ArmstrongSession or solver
/// warm-start with no re-interning.
///
/// ## What a full snapshot carries
///
/// The *entire* mutable substrate, bit-for-bit restorable:
///   * the value interner (values in id order + the fresh-null watermark),
///     so restored ids mean exactly what they meant;
///   * the union-find arrays (parent/size/rep), preserving both the merge
///     classes and their semantic representatives;
///   * every relation's tuple slots with alive flags, its compaction
///     horizon, and its retained change feed — dedup indexes are rebuilt
///     from the alive slots at load;
///   * the per-id occurrence lists, serialized *exactly* (not rebuilt):
///     their order feeds the chase's deterministic dirty worklists, and a
///     rebuild could reorder them;
///   * every compiled projection partition, including tombstoned groups
///     and stable group ids — the capital a warm start is meant to keep;
///   * the substrate Stats, so a restored session reports continuously;
///   * caller-supplied consumer cursors (e.g. a verifier's per-relation
///     feed positions), so delta consumers resume where they stopped;
///   * an opaque caller `aux` record (e.g. an ArmstrongSession's universe
///     classification — see SessionClassificationRecord).
///
/// Registered feed cursors are NOT serialized: they belong to live
/// consumer objects, which are gone after a restart and re-register.
///
/// ## Wire format (version 2)
///
///   magic "CCFPWS" | u32 version | u64 payload_size | u64 fnv1a64(payload)
///   | payload
///
/// All integers little-endian, written byte-by-byte (no aliasing, no
/// endianness traps under the sanitizers). The payload opens with a record
/// kind byte — full (0) or delta (1) — followed by a fingerprint of the
/// scheme; load rejects a snapshot taken under a different scheme. Any
/// damage — bad magic, unknown version, size mismatch, checksum mismatch,
/// out-of-bounds ids, truncation anywhere — yields InvalidArgument, never
/// a crash and never a half-restored workspace.
///
/// A record's *identity* is its header checksum (fnv1a64 of the payload).
/// A delta record embeds the identity of its predecessor, so a chain of
/// records is hash-linked: a delta left behind by a crashed fold can never
/// be mistaken for part of the new chain.
///
/// ## Delta records
///
/// A delta serializes only what changed since the last persisted record:
/// the interner growth (new values + the fresh-null watermark) and the
/// workspace's retained mutation journal (see
/// InternedWorkspace::EnableJournal). Applying a delta replays the journal
/// through the public mutation API, which reproduces the observable state
/// exactly — tuple slots, occurrence order, feed windows, stats — and
/// repairs/extends the restored base's compiled partitions along the way.
/// Saving a quiescent session is therefore O(in-flight delta), not
/// O(state).
///
/// ## Crash safety (SnapshotWriteOptions)
///
/// The default write policy is atomic-and-durable: serialize to
/// `<path>.tmp`, fsync, rename over `path`, fsync the directory. A crash
/// at any byte offset leaves `path` holding either the complete previous
/// snapshot or the complete new one — never a torn file on the primary
/// path. The installed FaultInjector (util/fault.h) is consulted so every
/// crash instant is testable deterministically:
///   * kSnapshotCorrupt / kSnapshotTruncate — the temp write is torn (the
///     damaged bytes go to the temp file, the save fails before the
///     rename, the target keeps the old state). Under the non-atomic
///     legacy policy (`atomic = false`) the damage is written straight to
///     `path` and the save still reports success — bit rot the *loader*
///     must detect.
///   * kSnapshotFsync — crash before the temp file is durable: the save
///     fails, the target keeps the old state.
///   * kSnapshotRename — crash immediately *after* the rename lands: the
///     target holds the new snapshot, but the saver never observed
///     success (so callers must treat the save as failed and may retry).

/// How snapshot bytes reach the filesystem.
struct SnapshotWriteOptions {
  /// Write to `<path>.tmp`, fsync, rename — the crash-safe default. When
  /// false, bytes are written straight to `path` (the legacy policy the
  /// bit-rot tests use: injected damage lands in the target file and the
  /// save still reports success).
  bool atomic = true;
  /// fsync the temp file before the rename and the directory after it.
  /// Leave on outside of tests.
  bool durable = true;
};

/// A deserialized snapshot: the workspace plus the consumer cursors and
/// the opaque aux record the saver embedded.
struct RestoredWorkspace {
  InternedWorkspace ws;
  std::vector<std::vector<std::uint64_t>> consumer_cursors;
  /// The saver's opaque record (empty if none was passed).
  std::string aux;
  /// The record's identity (header checksum) — what the next delta in a
  /// chain must link to.
  std::uint64_t snapshot_id = 0;
};

/// What ApplyWorkspaceDelta decoded from one delta record.
struct WorkspaceDeltaInfo {
  std::uint64_t base_id = 0;  ///< predecessor record this delta extends
  std::uint64_t id = 0;       ///< this record's identity
  std::vector<std::vector<std::uint64_t>> consumer_cursors;
  std::string aux;
};

/// Serializes `ws` (plus optional consumer cursors and an opaque aux
/// record) as a *full* record in the wire format above.
std::string SerializeWorkspace(
    const InternedWorkspace& ws,
    const std::vector<std::vector<std::uint64_t>>& consumer_cursors = {},
    std::string_view aux = {});

/// Serializes the changes since the last persisted record — the interner
/// growth plus the retained mutation journal — as a *delta* record linked
/// to `ws.SnapshotBaseId()`. FailedPrecondition unless the workspace has
/// journaling enabled and a persisted base to link to.
Result<std::string> SerializeWorkspaceDelta(
    const InternedWorkspace& ws,
    const std::vector<std::vector<std::uint64_t>>& consumer_cursors = {},
    std::string_view aux = {});

/// Parses and validates a *full* record; on success the returned workspace
/// is observably identical to the serialized one (same ids, same
/// partitions with the same group ids, same feed window, same stats) and
/// carries the record's identity as its snapshot base (so a delta chain
/// can continue from it). `scheme` must match the saved fingerprint.
Result<RestoredWorkspace> DeserializeWorkspace(SchemePtr scheme,
                                               std::string_view bytes);

/// Validates a *delta* record against `ws` and replays it: applies the
/// interner growth, then the journal through the public mutation API, and
/// re-bases the workspace's snapshot identity onto this record.
/// FailedPrecondition when the delta's base link does not match
/// `ws.SnapshotBaseId()` (a stale record from before a fold) — `ws` is
/// untouched in that case. InvalidArgument on damage; the workspace may
/// then be half-applied and must be discarded (chain loads discard the
/// whole restore).
Result<WorkspaceDeltaInfo> ApplyWorkspaceDelta(InternedWorkspace& ws,
                                               std::string_view bytes);

/// Serializes a full record and writes it to `path` under `write` (atomic
/// + durable by default; see SnapshotWriteOptions). On success the
/// workspace's journal is marked persisted, so a subsequent delta save
/// serializes only later mutations.
Status SaveWorkspaceSnapshot(
    const InternedWorkspace& ws, const std::string& path,
    const std::vector<std::vector<std::uint64_t>>& consumer_cursors = {},
    const SnapshotWriteOptions& write = {});

/// Reads `path` and deserializes a full record. NotFound if the file
/// cannot be read.
Result<RestoredWorkspace> LoadWorkspaceSnapshot(SchemePtr scheme,
                                                const std::string& path);

/// When a chain folds its deltas back into a full base snapshot.
struct SnapshotChainPolicy {
  /// Fold after this many deltas (each load replays every delta, so this
  /// caps restore cost).
  std::size_t max_deltas = 8;
  /// Fold when cumulative on-disk delta bytes exceed this percentage of
  /// the base's bytes (0 disables the byte trigger).
  std::uint32_t fold_delta_percent = 50;
  /// Acquire a cross-process advisory lock (see SnapshotChainLock) on the
  /// chain prefix before the first Save, and fail FailedPrecondition if
  /// another live process holds it. Off by default: single-process callers
  /// (and the crash tests, which deliberately interleave two writers) get
  /// the historical free-for-all; the solver service turns it on so two
  /// service processes can never interleave writes on one session's chain.
  bool exclusive = false;
};

/// Cross-process advisory lock on a snapshot chain prefix, backed by
/// `flock(2)` on `<prefix>.lock`.
///
/// flock locks are owned by the open file description, so the kernel
/// releases them when the holder exits *for any reason* — a crashed
/// writer can never wedge a chain. The lock file itself is left in place
/// on release (unlinking would race a concurrent acquirer onto a dead
/// inode); instead the holder stamps its pid into the file and truncates
/// the stamp away on clean release. A successful acquisition that finds a
/// foreign pid stamp therefore proves the previous holder died while
/// holding the lock — surfaced as `adopted_stale()` so callers can log
/// the takeover or distrust in-flight partial state.
class SnapshotChainLock {
 public:
  SnapshotChainLock() = default;
  ~SnapshotChainLock() { Release(); }
  SnapshotChainLock(SnapshotChainLock&& other) noexcept;
  SnapshotChainLock& operator=(SnapshotChainLock&& other) noexcept;
  SnapshotChainLock(const SnapshotChainLock&) = delete;
  SnapshotChainLock& operator=(const SnapshotChainLock&) = delete;

  /// Acquires `<prefix>.lock` without blocking. FailedPrecondition when
  /// another live process (or another open lock in this process) holds
  /// it — the message names the holder's pid stamp. Any prior lock this
  /// object held is released first.
  Status Acquire(const std::string& prefix);

  /// Unlocks and clears the pid stamp. Safe to call when not held.
  void Release();

  bool held() const { return fd_ >= 0; }
  /// True when the acquisition found a live pid stamp from a holder that
  /// died without releasing (the kernel had already dropped its flock).
  bool adopted_stale() const { return adopted_stale_; }

  static std::string LockPath(const std::string& prefix);

 private:
  int fd_ = -1;
  std::string path_;
  bool adopted_stale_ = false;
};

/// A chain restored from disk: the replayed workspace plus enough
/// bookkeeping for a SnapshotChainWriter to continue the chain.
struct RestoredChain {
  RestoredWorkspace restored;  ///< cursors/aux are the *tip* record's
  std::size_t deltas_applied = 0;
  std::uint64_t base_bytes = 0;
  std::uint64_t delta_bytes = 0;  ///< cumulative on-disk delta bytes
};

/// Owns the on-disk layout of one snapshot chain: `<prefix>.base` plus
/// `<prefix>.delta.1`, `<prefix>.delta.2`, ... Every record is written
/// under the configured SnapshotWriteOptions (atomic + durable by
/// default), and the workspace's journal is marked persisted only after a
/// durable success — a save that fails (or "crashes" via the injector)
/// keeps the journal, and the retried save simply rewrites a superset
/// record at the same chain position.
///
/// `Save` writes a full base on the first call (enabling the workspace's
/// journal for subsequent deltas), a delta while the fold policy allows,
/// and folds the chain back into a fresh base when it does not. Folding
/// is crash-safe by linkage: the new base is renamed into place first and
/// stale delta files are deleted best-effort afterwards — a crash in
/// between leaves deltas whose base link no longer matches, which loads
/// treat as end-of-chain.
class SnapshotChainWriter {
 public:
  explicit SnapshotChainWriter(std::string prefix,
                               SnapshotChainPolicy policy = {},
                               SnapshotWriteOptions write = {});

  /// Writes the next chain record for `ws` (base or delta per the policy
  /// above). On success the workspace journal is marked persisted.
  Status Save(const InternedWorkspace& ws,
              const std::vector<std::vector<std::uint64_t>>&
                  consumer_cursors = {},
              std::string_view aux = {});

  /// Continues a chain restored by LoadSnapshotChain: the next Save
  /// appends a delta after the restored tip instead of rewriting a base.
  void Adopt(const RestoredChain& chain);

  const std::string& prefix() const { return prefix_; }
  bool has_base() const { return has_base_; }
  std::size_t delta_count() const { return deltas_; }
  std::uint64_t tip_id() const { return tip_id_; }
  /// The chain lock (held iff the policy is exclusive and a Save has
  /// succeeded in acquiring it; see SnapshotChainLock for staleness).
  const SnapshotChainLock& lock() const { return lock_; }

  std::string BasePath() const;
  std::string DeltaPath(std::size_t k) const;  ///< k = 1, 2, ...

 private:
  Status SaveBase(const InternedWorkspace& ws,
                  const std::vector<std::vector<std::uint64_t>>& cursors,
                  std::string_view aux);
  Status SaveDelta(const InternedWorkspace& ws,
                   const std::vector<std::vector<std::uint64_t>>& cursors,
                   std::string_view aux);

  std::string prefix_;
  SnapshotChainPolicy policy_;
  SnapshotWriteOptions write_;
  SnapshotChainLock lock_;
  bool has_base_ = false;
  std::size_t deltas_ = 0;
  std::uint64_t tip_id_ = 0;
  std::uint64_t base_bytes_ = 0;
  std::uint64_t delta_bytes_ = 0;
};

/// Loads `<prefix>.base` and replays every linked `<prefix>.delta.k` in
/// order (`LoadChain` of the chain layout above). A delta whose base link
/// does not match the running tip — a stale leftover from before a fold —
/// ends the chain; a damaged record fails the whole load with
/// InvalidArgument. The restored workspace has journaling enabled and its
/// snapshot identity at the chain tip, ready for a SnapshotChainWriter
/// (`Adopt`) to continue.
Result<RestoredChain> LoadSnapshotChain(SchemePtr scheme,
                                        const std::string& prefix);

/// The universe classification an ArmstrongSession persists alongside its
/// workspace (as the chain records' `aux` payload) so a warm start skips
/// the oracle re-classification replay entirely: every universe member in
/// classification order, with its oracle verdict.
struct SessionClassificationRecord {
  std::vector<Dependency> universe;
  std::vector<bool> expected;  ///< parallel to universe
};

/// Serializes `record` to a self-describing byte string (its own magic +
/// version; integrity is the enclosing snapshot record's checksum).
std::string SerializeSessionRecord(const SessionClassificationRecord& record);

/// Parses and validates a session record against `scheme` (every
/// dependency is Validate()d). InvalidArgument on damage.
Result<SessionClassificationRecord> DeserializeSessionRecord(
    const DatabaseScheme& scheme, std::string_view bytes);

/// FNV-1a 64 over `bytes` — the snapshot checksum, exposed for tests.
std::uint64_t Fnv1a64(std::string_view bytes);

/// Stable fingerprint of a scheme (Fnv1a64 over its canonical ToString).
/// The snapshot header's compatibility check, and the service layer's
/// sharding/routing key (service/service.h).
std::uint64_t SchemeFingerprint(const DatabaseScheme& scheme);

/// The current wire-format version. Version 2 added the record kind byte,
/// delta records, and the aux record; load rejects other versions (a
/// snapshot is a cache of capital, not a system of record).
inline constexpr std::uint32_t kWorkspaceSnapshotVersion = 2;

/// Record kind byte at the start of every payload.
inline constexpr std::uint8_t kSnapshotRecordFull = 0;
inline constexpr std::uint8_t kSnapshotRecordDelta = 1;

}  // namespace ccfp

#endif  // CCFP_CORE_SNAPSHOT_H_
