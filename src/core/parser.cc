#include "core/parser.h"

#include <cctype>
#include <cstdlib>

#include "util/strings.h"

namespace ccfp {

namespace {

// Parses "A, B, C" into attribute ids of `rel`. An empty/whitespace-only
// list yields the empty sequence.
Result<std::vector<AttrId>> ParseAttrList(const DatabaseScheme& scheme,
                                          RelId rel, std::string_view text) {
  std::vector<AttrId> ids;
  std::string_view trimmed = TrimWhitespace(text);
  if (trimmed.empty()) return ids;
  for (const std::string& name : SplitAndTrim(trimmed, ',')) {
    if (name.empty()) {
      return Status::InvalidArgument(
          StrCat("empty attribute name in list '", std::string(text), "'"));
    }
    CCFP_ASSIGN_OR_RETURN(AttrId id, scheme.relation(rel).FindAttr(name));
    ids.push_back(id);
  }
  return ids;
}

// Splits "R[...]" into relation id and bracket contents.
struct BracketExpr {
  RelId rel;
  std::string inner;
};

Result<BracketExpr> ParseBracketExpr(const DatabaseScheme& scheme,
                                     std::string_view text) {
  std::size_t open = text.find('[');
  if (open == std::string_view::npos || text.back() != ']') {
    return Status::InvalidArgument(
        StrCat("expected R[...] but got '", std::string(text), "'"));
  }
  std::string rel_name(TrimWhitespace(text.substr(0, open)));
  CCFP_ASSIGN_OR_RETURN(RelId rel, scheme.FindRelation(rel_name));
  std::string inner(text.substr(open + 1, text.size() - open - 2));
  return BracketExpr{rel, std::move(inner)};
}

Result<Dependency> ParseColonForm(const DatabaseScheme& scheme,
                                  std::string_view text,
                                  std::size_t colon_pos) {
  std::string rel_name(TrimWhitespace(text.substr(0, colon_pos)));
  CCFP_ASSIGN_OR_RETURN(RelId rel, scheme.FindRelation(rel_name));
  std::string_view body = text.substr(colon_pos + 1);

  // "->>"" must be checked before "->".
  std::size_t mvd_arrow = body.find("->>");
  if (mvd_arrow != std::string_view::npos) {
    std::string_view x_part = body.substr(0, mvd_arrow);
    std::string_view rest = body.substr(mvd_arrow + 3);
    CCFP_ASSIGN_OR_RETURN(std::vector<AttrId> x,
                          ParseAttrList(scheme, rel, x_part));
    std::size_t bar = rest.find('|');
    if (bar == std::string_view::npos) {
      CCFP_ASSIGN_OR_RETURN(std::vector<AttrId> y,
                            ParseAttrList(scheme, rel, rest));
      Mvd mvd{rel, std::move(x), std::move(y)};
      CCFP_RETURN_NOT_OK(Validate(scheme, mvd));
      return Dependency(std::move(mvd));
    }
    CCFP_ASSIGN_OR_RETURN(std::vector<AttrId> y,
                          ParseAttrList(scheme, rel, rest.substr(0, bar)));
    CCFP_ASSIGN_OR_RETURN(std::vector<AttrId> z,
                          ParseAttrList(scheme, rel, rest.substr(bar + 1)));
    Emvd emvd{rel, std::move(x), std::move(y), std::move(z)};
    CCFP_RETURN_NOT_OK(Validate(scheme, emvd));
    return Dependency(std::move(emvd));
  }

  std::size_t fd_arrow = body.find("->");
  if (fd_arrow != std::string_view::npos) {
    CCFP_ASSIGN_OR_RETURN(std::vector<AttrId> lhs,
                          ParseAttrList(scheme, rel, body.substr(0, fd_arrow)));
    CCFP_ASSIGN_OR_RETURN(
        std::vector<AttrId> rhs,
        ParseAttrList(scheme, rel, body.substr(fd_arrow + 2)));
    Fd fd{rel, std::move(lhs), std::move(rhs)};
    CCFP_RETURN_NOT_OK(Validate(scheme, fd));
    return Dependency(std::move(fd));
  }

  return Status::InvalidArgument(
      StrCat("expected '->' or '->>' in '", std::string(text), "'"));
}

}  // namespace

Result<Dependency> ParseDependency(const DatabaseScheme& scheme,
                                   std::string_view text) {
  std::string_view trimmed = TrimWhitespace(text);
  if (trimmed.empty()) {
    return Status::InvalidArgument("empty dependency text");
  }

  // IND form: "R[...] <= S[...]". Find "<=" outside brackets.
  std::size_t le = trimmed.find("<=");
  if (le != std::string_view::npos) {
    std::string_view lhs_text = TrimWhitespace(trimmed.substr(0, le));
    std::string_view rhs_text = TrimWhitespace(trimmed.substr(le + 2));
    CCFP_ASSIGN_OR_RETURN(BracketExpr lhs, ParseBracketExpr(scheme, lhs_text));
    CCFP_ASSIGN_OR_RETURN(BracketExpr rhs, ParseBracketExpr(scheme, rhs_text));
    CCFP_ASSIGN_OR_RETURN(std::vector<AttrId> lhs_attrs,
                          ParseAttrList(scheme, lhs.rel, lhs.inner));
    CCFP_ASSIGN_OR_RETURN(std::vector<AttrId> rhs_attrs,
                          ParseAttrList(scheme, rhs.rel, rhs.inner));
    Ind ind{lhs.rel, std::move(lhs_attrs), rhs.rel, std::move(rhs_attrs)};
    CCFP_RETURN_NOT_OK(Validate(scheme, ind));
    return Dependency(std::move(ind));
  }

  // Colon forms (FD / MVD / EMVD) vs RD "R[X = Y]". A colon before any '['
  // means a colon form.
  std::size_t colon = trimmed.find(':');
  std::size_t bracket = trimmed.find('[');
  if (colon != std::string_view::npos &&
      (bracket == std::string_view::npos || colon < bracket)) {
    return ParseColonForm(scheme, trimmed, colon);
  }

  // RD form: "R[X = Y]".
  if (bracket != std::string_view::npos) {
    CCFP_ASSIGN_OR_RETURN(BracketExpr expr, ParseBracketExpr(scheme, trimmed));
    std::size_t eq = expr.inner.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument(
          StrCat("expected '=' in RD '", std::string(trimmed), "'"));
    }
    std::string_view inner(expr.inner);
    CCFP_ASSIGN_OR_RETURN(std::vector<AttrId> lhs,
                          ParseAttrList(scheme, expr.rel, inner.substr(0, eq)));
    CCFP_ASSIGN_OR_RETURN(
        std::vector<AttrId> rhs,
        ParseAttrList(scheme, expr.rel, inner.substr(eq + 1)));
    Rd rd{expr.rel, std::move(lhs), std::move(rhs)};
    CCFP_RETURN_NOT_OK(Validate(scheme, rd));
    return Dependency(std::move(rd));
  }

  return Status::InvalidArgument(
      StrCat("unrecognized dependency syntax: '", std::string(trimmed), "'"));
}

Result<std::vector<Dependency>> ParseDependencies(
    const DatabaseScheme& scheme, std::string_view text) {
  std::vector<Dependency> deps;
  int line_no = 0;
  for (const std::string& line : SplitAndTrim(text, '\n')) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    Result<Dependency> dep = ParseDependency(scheme, line);
    if (!dep.ok()) {
      return Status::InvalidArgument(
          StrCat("line ", line_no, ": ", dep.status().message()));
    }
    deps.push_back(dep.MoveValue());
  }
  return deps;
}

namespace {

Value ParseValue(std::string_view token) {
  if (token.size() >= 2 && token.front() == '"' && token.back() == '"') {
    return Value::Str(std::string(token.substr(1, token.size() - 2)));
  }
  if (token.size() >= 3 && token[0] == '_' && token[1] == 'n') {
    char* end = nullptr;
    std::string digits(token.substr(2));
    std::uint64_t id = std::strtoull(digits.c_str(), &end, 10);
    if (end != nullptr && *end == '\0') return Value::Null(id);
  }
  // Integer?
  std::string s(token);
  char* end = nullptr;
  long long x = std::strtoll(s.c_str(), &end, 10);
  if (!s.empty() && end != nullptr && *end == '\0') return Value::Int(x);
  return Value::Str(std::move(s));
}

}  // namespace

Status ParseAndInsertTuple(Database& db, std::string_view line) {
  std::string_view trimmed = TrimWhitespace(line);
  std::size_t open = trimmed.find('(');
  if (open == std::string_view::npos || trimmed.back() != ')') {
    return Status::InvalidArgument(
        StrCat("expected R(v1, ...) but got '", std::string(line), "'"));
  }
  std::string rel_name(TrimWhitespace(trimmed.substr(0, open)));
  std::string_view inner =
      trimmed.substr(open + 1, trimmed.size() - open - 2);
  Tuple t;
  if (!TrimWhitespace(inner).empty()) {
    for (const std::string& token : SplitAndTrim(inner, ',')) {
      t.push_back(ParseValue(token));
    }
  }
  return db.InsertByName(rel_name, std::move(t));
}

Result<Database> ParseDatabase(SchemePtr scheme, std::string_view text) {
  Database db(std::move(scheme));
  int line_no = 0;
  for (const std::string& line : SplitAndTrim(text, '\n')) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    Status st = ParseAndInsertTuple(db, line);
    if (!st.ok()) {
      return Status::InvalidArgument(
          StrCat("line ", line_no, ": ", st.message()));
    }
  }
  return db;
}

}  // namespace ccfp
