#include "core/gind.h"

#include <set>
#include <unordered_set>

#include "util/strings.h"

namespace ccfp {

std::string GInd::ToString(const DatabaseScheme& scheme) const {
  return StrCat(scheme.relation(lhs_rel).name(), "[",
                AttrNames(scheme, lhs_rel, lhs), "] <= ",
                scheme.relation(rhs_rel).name(), "[",
                AttrNames(scheme, rhs_rel, rhs), "]  (generalized)");
}

Status Validate(const DatabaseScheme& scheme, const GInd& gind) {
  if (!scheme.ValidRel(gind.lhs_rel) || !scheme.ValidRel(gind.rhs_rel)) {
    return Status::InvalidArgument("invalid relation id in generalized IND");
  }
  for (AttrId a : gind.lhs) {
    if (!scheme.ValidAttr(gind.lhs_rel, a)) {
      return Status::InvalidArgument("invalid lhs attribute id");
    }
  }
  for (AttrId a : gind.rhs) {
    if (!scheme.ValidAttr(gind.rhs_rel, a)) {
      return Status::InvalidArgument("invalid rhs attribute id");
    }
  }
  if (gind.lhs.size() != gind.rhs.size()) {
    return Status::InvalidArgument(
        "generalized IND sides have different widths");
  }
  if (gind.lhs.empty()) {
    return Status::InvalidArgument("generalized IND must have positive width");
  }
  return Status::OK();
}

bool Satisfies(const Database& db, const GInd& gind) {
  const Relation& lhs = db.relation(gind.lhs_rel);
  const Relation& rhs = db.relation(gind.rhs_rel);
  std::unordered_set<Tuple, TupleHash> rhs_proj;
  rhs_proj.reserve(rhs.size());
  for (const Tuple& t : rhs.tuples()) {
    rhs_proj.insert(ProjectTuple(t, gind.rhs));
  }
  for (const Tuple& t : lhs.tuples()) {
    if (rhs_proj.count(ProjectTuple(t, gind.lhs)) == 0) return false;
  }
  return true;
}

GInd RdAsGind(const Rd& rd) {
  GInd gind;
  gind.lhs_rel = rd.rel;
  gind.rhs_rel = rd.rel;
  // lhs = X ++ Y, rhs = X ++ X: a tuple's (X, Y) projection must occur as
  // some tuple's (X, X) projection, forcing X = Y entrywise on the tuple
  // itself (the X-part pins the witness's X values to the tuple's own).
  gind.lhs = rd.lhs;
  gind.lhs.insert(gind.lhs.end(), rd.rhs.begin(), rd.rhs.end());
  gind.rhs = rd.lhs;
  gind.rhs.insert(gind.rhs.end(), rd.lhs.begin(), rd.lhs.end());
  return gind;
}

bool IsPlainInd(const GInd& gind) {
  std::set<AttrId> lhs(gind.lhs.begin(), gind.lhs.end());
  std::set<AttrId> rhs(gind.rhs.begin(), gind.rhs.end());
  return lhs.size() == gind.lhs.size() && rhs.size() == gind.rhs.size();
}

Result<Ind> ToPlainInd(const DatabaseScheme& scheme, const GInd& gind) {
  if (!IsPlainInd(gind)) {
    return Status::InvalidArgument(
        "generalized IND repeats attributes; not a plain IND");
  }
  Ind ind{gind.lhs_rel, gind.lhs, gind.rhs_rel, gind.rhs};
  CCFP_RETURN_NOT_OK(Validate(scheme, ind));
  return ind;
}

}  // namespace ccfp
