#include "core/workspace.h"

#include <algorithm>
#include <unordered_set>

#include "core/model_check.h"
#include "util/check.h"

namespace ccfp {

namespace {

/// Partition provider over the mutable substrate; dead (merged-away)
/// slots surface as kNoGroup == model_check::kDeadGroup entries, which
/// the shared checks in core/model_check.h skip.
struct WorkspaceProvider {
  const InternedWorkspace& ws;

  std::uint32_t SlotCount(RelId rel) const {
    return static_cast<std::uint32_t>(ws.size(rel));
  }
  std::size_t AliveCount(RelId rel) const { return ws.AliveTuples(rel); }
  bool Alive(RelId rel, std::uint32_t idx) const {
    return ws.alive(rel, idx);
  }
  const IdTuple& Slot(RelId rel, std::uint32_t idx) const {
    return ws.tuple(rel, idx);
  }
  const InternedWorkspace::Partition& Partition(
      RelId rel, const std::vector<AttrId>& cols) const {
    return ws.partition(rel, cols);
  }
};

static_assert(InternedWorkspace::kNoGroup == model_check::kDeadGroup,
              "workspace dead-slot sentinel must match the shared checks");

}  // namespace

InternedWorkspace::InternedWorkspace(SchemePtr scheme)
    : scheme_(std::move(scheme)),
      rels_(scheme_->size()),
      partitions_(scheme_->size()) {}

ValueId InternedWorkspace::Intern(const Value& v) {
  std::size_t before = interner_.size();
  ValueId id = interner_.Intern(v);
  if (interner_.size() != before) {
    ++stats_.values_interned;
    // Every handed-out id is immediately Canon/Merge/occurrences-safe,
    // whether or not it ever lands in a tuple.
    uf_.EnsureSize(interner_.size());
    occurrences_.resize(interner_.size());
  }
  return id;
}

ValueId InternedWorkspace::InternFreshNull() {
  ++stats_.values_interned;
  ValueId id = interner_.InternFreshNull();
  uf_.EnsureSize(interner_.size());
  occurrences_.resize(interner_.size());
  return id;
}

void InternedWorkspace::RegisterOccurrences(RelId rel, std::uint32_t idx,
                                            const IdTuple& t) {
  if (occurrences_.size() < interner_.size()) {
    occurrences_.resize(interner_.size());
  }
  uf_.EnsureSize(interner_.size());
  for (ValueId id : t) {
    occurrences_[id].push_back(WorkspaceTupleRef{rel, idx});
  }
  occurrence_refs_ += t.size();
}

void InternedWorkspace::JournalRecord(WorkspaceJournalEntry e) const {
  if (!journal_enabled_) return;
  journal_bytes_ += sizeof(WorkspaceJournalEntry) +
                    static_cast<std::uint64_t>(e.ids.size()) *
                        sizeof(ValueId);
  journal_.push_back(std::move(e));
}

bool InternedWorkspace::Append(RelId rel, IdTuple t) {
  RelStore& rs = rels_[rel];
  std::uint32_t idx = static_cast<std::uint32_t>(rs.tuples.size());
  auto [it, inserted] = rs.dedup.emplace(std::move(t), idx);
  if (!inserted) return false;
  if (journal_enabled_) {
    WorkspaceJournalEntry e;
    e.op = WorkspaceJournalEntry::Op::kAppend;
    e.rel = rel;
    e.ids = it->first;
    JournalRecord(std::move(e));
  }
  RegisterOccurrences(rel, idx, it->first);
  tuple_id_cells_ += it->first.size();
  rs.tuples.push_back(it->first);
  rs.alive.push_back(1);
  ++rs.alive_count;
  ++total_alive_;
  ++stats_.tuples_appended;
  rs.feed.push_back(WorkspaceEvent{WorkspaceEventKind::kAppend, idx});
  return true;
}

bool InternedWorkspace::AppendTuple(RelId rel, const Tuple& t) {
  IdTuple it;
  it.reserve(t.size());
  for (const Value& v : t) it.push_back(Intern(v));
  return Append(rel, std::move(it));
}

void InternedWorkspace::AppendDatabase(const Database& db) {
  CCFP_CHECK(db.scheme().size() == scheme_->size());
  for (RelId rel = 0; rel < scheme_->size(); ++rel) {
    AppendRelation(db, rel);
  }
}

void InternedWorkspace::AppendRelation(const Database& db, RelId rel) {
  const Relation& r = db.relation(rel);
  rels_[rel].tuples.reserve(rels_[rel].tuples.size() + r.size());
  for (const Tuple& t : r.tuples()) AppendTuple(rel, t);
}

InternedWorkspace::MergeResult InternedWorkspace::MergeValues(ValueId a,
                                                              ValueId b) {
  DenseUnionFind::UnionResult u = uf_.Union(a, b, interner_);
  MergeResult result;
  result.winner = u.winner;
  result.loser = u.loser;
  result.merged = u.merged;
  result.clash = u.clash;
  if (u.merged) {
    ++stats_.value_merges;
    if (journal_enabled_) {
      WorkspaceJournalEntry e;
      e.op = WorkspaceJournalEntry::Op::kMerge;
      e.a = a;
      e.b = b;
      JournalRecord(std::move(e));
    }
  }
  return result;
}

void InternedWorkspace::RerouteOccurrences(ValueId loser, ValueId winner) {
  if (journal_enabled_) {
    WorkspaceJournalEntry e;
    e.op = WorkspaceJournalEntry::Op::kReroute;
    e.a = loser;
    e.b = winner;
    JournalRecord(std::move(e));
  }
  std::vector<WorkspaceTupleRef>& from = occurrences_[loser];
  std::vector<WorkspaceTupleRef>& to = occurrences_[winner];
  to.insert(to.end(), from.begin(), from.end());
  from.clear();
  from.shrink_to_fit();
}

void InternedWorkspace::RepairPartitionsForRewrite(RelId rel,
                                                   std::uint32_t idx) {
  const IdTuple& t = rels_[rel].tuples[idx];
  IdTuple key;
  for (auto& [cols, cp] : partitions_[rel]) {
    if (cp.covered <= idx) continue;  // the extension will pick it up
    Partition& p = cp.p;
    std::uint32_t g = p.group_of[idx];
    key.clear();
    key.reserve(cols.size());
    for (AttrId c : cols) key.push_back(t[c]);
    auto [kit, inserted] = p.key_to_group.emplace(key, p.group_count);
    std::uint32_t g2 = kit->second;
    if (!inserted && g2 == g) continue;  // projection unchanged
    if (--p.group_size[g] == 0) --p.alive_groups;  // tombstone
    if (inserted) {
      p.group_size.push_back(1);
      ++p.group_count;
      ++p.alive_groups;
    } else if (++p.group_size[g2] == 1) {
      ++p.alive_groups;  // rejoined a tombstoned group
    }
    p.group_of[idx] = g2;
    ++stats_.partition_slots_repaired;
  }
}

void InternedWorkspace::RepairPartitionsForKill(RelId rel,
                                                std::uint32_t idx) {
  for (auto& [cols, cp] : partitions_[rel]) {
    if (cp.covered <= idx) continue;
    Partition& p = cp.p;
    std::uint32_t g = p.group_of[idx];
    if (g == kNoGroup) continue;
    if (--p.group_size[g] == 0) --p.alive_groups;
    p.group_of[idx] = kNoGroup;
    ++stats_.partition_slots_repaired;
  }
}

InternedWorkspace::CanonOutcome InternedWorkspace::CanonicalizeTuple(
    RelId rel, std::uint32_t idx) {
  RelStore& rs = rels_[rel];
  if (!rs.alive[idx]) return CanonOutcome::kUnchanged;
  IdTuple& stored = rs.tuples[idx];
  bool changed = false;
  for (ValueId id : stored) {
    if (uf_.Find(id) != id) {
      changed = true;
      break;
    }
  }
  if (!changed) return CanonOutcome::kUnchanged;
  if (journal_enabled_) {
    WorkspaceJournalEntry e;
    e.op = WorkspaceJournalEntry::Op::kCanonicalize;
    e.rel = rel;
    e.idx = idx;
    JournalRecord(std::move(e));
  }
  auto old_it = rs.dedup.find(stored);
  if (old_it != rs.dedup.end() && old_it->second == idx) {
    rs.dedup.erase(old_it);
  }
  for (ValueId& id : stored) id = uf_.Find(id);
  auto [new_it, inserted] = rs.dedup.emplace(stored, idx);
  if (!inserted) {
    // Collapsed onto an alive twin; the twin carries all duties.
    rs.alive[idx] = 0;
    --rs.alive_count;
    --total_alive_;
    ++stats_.tuples_killed;
    RepairPartitionsForKill(rel, idx);
    rs.feed.push_back(WorkspaceEvent{WorkspaceEventKind::kKill, idx});
    return CanonOutcome::kKilled;
  }
  RepairPartitionsForRewrite(rel, idx);
  rs.feed.push_back(WorkspaceEvent{WorkspaceEventKind::kRewrite, idx});
  return CanonOutcome::kRewritten;
}

IdTuple InternedWorkspace::CanonicalProjection(
    RelId rel, std::uint32_t idx, const std::vector<AttrId>& cols) const {
  const IdTuple& t = rels_[rel].tuples[idx];
  IdTuple out;
  out.reserve(cols.size());
  for (AttrId c : cols) out.push_back(uf_.Find(t[c]));
  return out;
}

void InternedWorkspace::CanonicalProjectionReadOnly(
    RelId rel, std::uint32_t idx, const std::vector<AttrId>& cols,
    IdTuple& out) const {
  const IdTuple& t = rels_[rel].tuples[idx];
  for (AttrId c : cols) out.push_back(uf_.FindReadOnly(t[c]));
}

void InternedWorkspace::ExtendPartition(RelId rel,
                                        const std::vector<AttrId>& cols,
                                        CachedPartition& cp) const {
  const RelStore& rs = rels_[rel];
  Partition& p = cp.p;
  std::uint32_t end = static_cast<std::uint32_t>(rs.tuples.size());
  p.group_of.reserve(end);
  IdTuple key;
  key.reserve(cols.size());
  for (std::uint32_t i = cp.covered; i < end; ++i) {
    if (!rs.alive[i]) {
      p.group_of.push_back(kNoGroup);
      continue;
    }
    const IdTuple& t = rs.tuples[i];
    key.clear();
    for (AttrId c : cols) key.push_back(t[c]);
    auto [kit, inserted] = p.key_to_group.emplace(key, p.group_count);
    if (inserted) {
      p.group_size.push_back(1);
      ++p.group_count;
      ++p.alive_groups;
    } else if (++p.group_size[kit->second] == 1) {
      ++p.alive_groups;  // a canonical twin re-populating a tombstone
    }
    p.group_of.push_back(kit->second);
  }
  cp.covered = end;
}

void InternedWorkspace::ExtendAllPartitions(RelId rel) const {
  const RelStore& rs = rels_[rel];
  for (auto& [cols, cp] : partitions_[rel]) {
    if (cp.covered == rs.tuples.size()) {
      continue;  // already current; repairs keep covered slots right
    }
    ++stats_.partitions_extended;
    ExtendPartition(rel, cols, cp);
  }
}

const InternedWorkspace::Partition& InternedWorkspace::partition(
    RelId rel, const std::vector<AttrId>& cols) const {
  const RelStore& rs = rels_[rel];
  auto [it, inserted] = partitions_[rel].try_emplace(cols);
  CachedPartition& cp = it->second;
  if (!inserted) {
    if (cp.covered == rs.tuples.size()) {
      ++stats_.partitions_reused;
    } else {
      ++stats_.partitions_extended;
      ExtendPartition(rel, cols, cp);
    }
    return cp.p;
  }
  ++stats_.partitions_built;
  ExtendPartition(rel, cols, cp);
  return cp.p;
}

const WorkspaceEvent& InternedWorkspace::event(RelId rel,
                                               std::uint64_t seq) const {
  const RelStore& rs = rels_[rel];
  CCFP_CHECK(seq >= rs.feed_base && "event below the compaction horizon");
  CCFP_CHECK(seq - rs.feed_base < rs.feed.size());
  return rs.feed[static_cast<std::size_t>(seq - rs.feed_base)];
}

InternedWorkspace::FeedCursorId InternedWorkspace::RegisterFeedCursor()
    const {
  for (FeedCursorId id = 0; id < cursors_.size(); ++id) {
    if (!cursors_[id].active) {
      cursors_[id].active = true;
      cursors_[id].pos.assign(scheme_->size(), 0);
      return id;
    }
  }
  FeedCursor c;
  c.active = true;
  c.pos.assign(scheme_->size(), 0);
  cursors_.push_back(std::move(c));
  return static_cast<FeedCursorId>(cursors_.size() - 1);
}

void InternedWorkspace::AdvanceFeedCursor(FeedCursorId id, RelId rel,
                                          std::uint64_t seq) const {
  CCFP_CHECK(id < cursors_.size() && cursors_[id].active);
  CCFP_CHECK(seq <= EventCount(rel));
  std::uint64_t& pos = cursors_[id].pos[rel];
  if (seq > pos) pos = seq;  // monotone: replays may re-announce old seqs
}

std::uint64_t InternedWorkspace::FeedCursorPosition(FeedCursorId id,
                                                    RelId rel) const {
  CCFP_CHECK(id < cursors_.size() && cursors_[id].active);
  return cursors_[id].pos[rel];
}

void InternedWorkspace::ReleaseFeedCursor(FeedCursorId id) const {
  if (id < cursors_.size()) cursors_[id].active = false;
}

std::size_t InternedWorkspace::RegisteredFeedCursors() const {
  std::size_t n = 0;
  for (const FeedCursor& c : cursors_) n += c.active ? 1 : 0;
  return n;
}

std::uint64_t InternedWorkspace::CompactFeed(RelId rel) {
  std::uint64_t horizon = EventCount(rel);
  for (const FeedCursor& c : cursors_) {
    if (c.active) horizon = std::min(horizon, c.pos[rel]);
  }
  return TrimFeedTo(rel, horizon);
}

std::uint64_t InternedWorkspace::CompactFeeds() {
  std::uint64_t dropped = 0;
  for (RelId rel = 0; rel < scheme_->size(); ++rel) {
    dropped += CompactFeed(rel);
  }
  return dropped;
}

std::uint64_t InternedWorkspace::TrimFeedTo(RelId rel,
                                            std::uint64_t horizon) {
  RelStore& rs = rels_[rel];
  horizon = std::min(horizon, EventCount(rel));
  if (horizon <= rs.feed_base) return 0;
  std::uint64_t dropped = horizon - rs.feed_base;
  rs.feed.erase(rs.feed.begin(),
                rs.feed.begin() + static_cast<std::ptrdiff_t>(dropped));
  rs.feed_base = horizon;
  ++stats_.feed_compactions;
  stats_.feed_events_compacted += dropped;
  if (journal_enabled_) {
    WorkspaceJournalEntry e;
    e.op = WorkspaceJournalEntry::Op::kTrim;
    e.rel = rel;
    e.horizon = horizon;
    JournalRecord(std::move(e));
  }
  return dropped;
}

void InternedWorkspace::SealSharedBase() {
  interner_.Freeze();
  CompactFeeds();
}

InternedWorkspace InternedWorkspace::Fork() const {
  InternedWorkspace fork = *this;
  // Session-local state must not leak into the overlay: the base's
  // registered cursors belong to the base's consumers, and persistence
  // identity is per session.
  fork.cursors_.clear();
  fork.journal_enabled_ = false;
  fork.journal_.clear();
  fork.journal_bytes_ = 0;
  fork.journal_values_base_ = fork.interner_.size();
  fork.snapshot_base_id_ = 0;
  fork.has_snapshot_base_ = false;
  return fork;
}

MemoryBreakdown InternedWorkspace::MemoryUsage() const {
  MemoryBreakdown mb;
  mb.journal = journal_bytes_;
  mb.tuple_store =
      tuple_id_cells_ * sizeof(ValueId) +
      static_cast<std::uint64_t>(stats_.tuples_appended) *
          (sizeof(IdTuple) + sizeof(std::uint8_t));
  mb.occurrences = occurrence_refs_ * sizeof(WorkspaceTupleRef) +
                   memory::VectorBytes(occurrences_);
  mb.interner =
      static_cast<std::uint64_t>(interner_.size()) *
      (sizeof(Value) + sizeof(std::pair<Value, ValueId>) +
       memory::kHashNodeOverhead +  // interner values_ + ids_ map
       3 * sizeof(std::uint32_t));  // union-find parent/size/rep
  for (RelId rel = 0; rel < scheme_->size(); ++rel) {
    const RelStore& rs = rels_[rel];
    std::uint64_t arity = scheme_->relation(rel).arity();
    mb.dedup_index +=
        memory::IdKeyMapBytes(rs.dedup, arity * sizeof(ValueId));
    mb.feed += memory::VectorBytes(rs.feed);
    for (const auto& [cols, cp] : partitions_[rel]) {
      const Partition& p = cp.p;
      mb.partitions +=
          memory::VectorBytes(p.group_of) + memory::VectorBytes(p.group_size) +
          memory::IdKeyMapBytes(p.key_to_group,
                                cols.size() * sizeof(ValueId));
    }
  }
  return mb;
}

bool InternedWorkspace::Satisfies(const Fd& fd) const {
  return model_check::SatisfiesFd(WorkspaceProvider{*this}, fd);
}

bool InternedWorkspace::Satisfies(const Ind& ind) const {
  return model_check::SatisfiesInd(WorkspaceProvider{*this}, ind);
}

bool InternedWorkspace::Satisfies(const Rd& rd) const {
  return model_check::SatisfiesRd(WorkspaceProvider{*this}, rd);
}

bool InternedWorkspace::Satisfies(const Emvd& emvd) const {
  return model_check::SatisfiesEmvdOn(WorkspaceProvider{*this}, emvd.rel,
                                      emvd.x, emvd.y, emvd.z);
}

bool InternedWorkspace::Satisfies(const Mvd& mvd) const {
  return model_check::SatisfiesEmvdOn(WorkspaceProvider{*this}, mvd.rel,
                                      mvd.x, mvd.y,
                                      MvdComplement(*scheme_, mvd));
}

bool InternedWorkspace::Satisfies(const Dependency& dep) const {
  return model_check::SatisfiesDependency(WorkspaceProvider{*this}, *scheme_,
                                          dep);
}

bool InternedWorkspace::SatisfiesAll(
    const std::vector<Dependency>& deps) const {
  for (const Dependency& dep : deps) {
    if (!Satisfies(dep)) return false;
  }
  return true;
}

std::optional<IdViolation> InternedWorkspace::FindViolation(
    const Dependency& dep) const {
  return model_check::FindViolation(WorkspaceProvider{*this}, *scheme_, dep);
}

Database InternedWorkspace::Materialize() const {
  Database out(scheme_);
  for (RelId rel = 0; rel < scheme_->size(); ++rel) {
    const RelStore& rs = rels_[rel];
    out.relation(rel).Reserve(rs.alive_count);
    for (std::uint32_t i = 0; i < rs.tuples.size(); ++i) {
      if (!rs.alive[i]) continue;
      Tuple t;
      t.reserve(rs.tuples[i].size());
      for (ValueId id : rs.tuples[i]) {
        t.push_back(interner_.value(uf_.Rep(id)));
      }
      out.Insert(rel, std::move(t));
    }
  }
  return out;
}

IdDatabase InternedWorkspace::ExportIdDatabase() && {
  std::vector<std::vector<IdTuple>> tuples(scheme_->size());
  for (RelId rel = 0; rel < scheme_->size(); ++rel) {
    RelStore& rs = rels_[rel];
    tuples[rel].reserve(rs.alive_count);
    for (std::uint32_t i = 0; i < rs.tuples.size(); ++i) {
      if (!rs.alive[i]) continue;
      IdTuple t;
      t.reserve(rs.tuples[i].size());
      for (ValueId id : rs.tuples[i]) {
        // Rep, not Find: the tree root is a structural artifact; the
        // class prints as its constant / lowest-labeled null.
        t.push_back(uf_.Rep(id));
      }
      tuples[rel].push_back(std::move(t));
    }
  }
  return IdDatabase(scheme_, std::move(interner_), std::move(tuples));
}

}  // namespace ccfp
