#include "core/workspace.h"

#include <algorithm>
#include <unordered_set>

#include "util/check.h"

namespace ccfp {

namespace {

}  // namespace

InternedWorkspace::InternedWorkspace(SchemePtr scheme)
    : scheme_(std::move(scheme)),
      rels_(scheme_->size()),
      partitions_(scheme_->size()) {}

ValueId InternedWorkspace::Intern(const Value& v) {
  std::size_t before = interner_.size();
  ValueId id = interner_.Intern(v);
  if (interner_.size() != before) ++stats_.values_interned;
  return id;
}

ValueId InternedWorkspace::InternFreshNull() {
  ++stats_.values_interned;
  return interner_.InternFreshNull();
}

void InternedWorkspace::RegisterOccurrences(RelId rel, std::uint32_t idx,
                                            const IdTuple& t) {
  if (occurrences_.size() < interner_.size()) {
    occurrences_.resize(interner_.size());
  }
  uf_.EnsureSize(interner_.size());
  for (ValueId id : t) {
    occurrences_[id].push_back(WorkspaceTupleRef{rel, idx});
  }
}

bool InternedWorkspace::Append(RelId rel, IdTuple t) {
  RelStore& rs = rels_[rel];
  std::uint32_t idx = static_cast<std::uint32_t>(rs.tuples.size());
  auto [it, inserted] = rs.dedup.emplace(std::move(t), idx);
  if (!inserted) return false;
  RegisterOccurrences(rel, idx, it->first);
  rs.tuples.push_back(it->first);
  rs.alive.push_back(1);
  ++rs.alive_count;
  ++total_alive_;
  ++stats_.tuples_appended;
  return true;
}

bool InternedWorkspace::AppendTuple(RelId rel, const Tuple& t) {
  IdTuple it;
  it.reserve(t.size());
  for (const Value& v : t) it.push_back(Intern(v));
  return Append(rel, std::move(it));
}

void InternedWorkspace::AppendDatabase(const Database& db) {
  CCFP_CHECK(db.scheme().size() == scheme_->size());
  for (RelId rel = 0; rel < scheme_->size(); ++rel) {
    AppendRelation(db, rel);
  }
}

void InternedWorkspace::AppendRelation(const Database& db, RelId rel) {
  const Relation& r = db.relation(rel);
  rels_[rel].tuples.reserve(rels_[rel].tuples.size() + r.size());
  for (const Tuple& t : r.tuples()) AppendTuple(rel, t);
}

InternedWorkspace::MergeResult InternedWorkspace::MergeValues(ValueId a,
                                                              ValueId b) {
  DenseUnionFind::UnionResult u = uf_.Union(a, b, interner_);
  MergeResult result;
  result.winner = u.winner;
  result.loser = u.loser;
  result.merged = u.merged;
  result.clash = u.clash;
  if (u.merged) ++stats_.value_merges;
  return result;
}

void InternedWorkspace::RerouteOccurrences(ValueId loser, ValueId winner) {
  std::vector<WorkspaceTupleRef>& from = occurrences_[loser];
  std::vector<WorkspaceTupleRef>& to = occurrences_[winner];
  to.insert(to.end(), from.begin(), from.end());
  from.clear();
  from.shrink_to_fit();
}

InternedWorkspace::CanonOutcome InternedWorkspace::CanonicalizeTuple(
    RelId rel, std::uint32_t idx) {
  RelStore& rs = rels_[rel];
  if (!rs.alive[idx]) return CanonOutcome::kUnchanged;
  IdTuple& stored = rs.tuples[idx];
  bool changed = false;
  for (ValueId id : stored) {
    if (uf_.Find(id) != id) {
      changed = true;
      break;
    }
  }
  if (!changed) return CanonOutcome::kUnchanged;
  auto old_it = rs.dedup.find(stored);
  if (old_it != rs.dedup.end() && old_it->second == idx) {
    rs.dedup.erase(old_it);
  }
  for (ValueId& id : stored) id = uf_.Find(id);
  ++rs.epoch;  // destructive: cached partitions over this relation die
  auto [new_it, inserted] = rs.dedup.emplace(stored, idx);
  if (!inserted) {
    // Collapsed onto an alive twin; the twin carries all duties.
    rs.alive[idx] = 0;
    --rs.alive_count;
    --total_alive_;
    ++stats_.tuples_killed;
    return CanonOutcome::kKilled;
  }
  return CanonOutcome::kRewritten;
}

IdTuple InternedWorkspace::CanonicalProjection(
    RelId rel, std::uint32_t idx, const std::vector<AttrId>& cols) const {
  const IdTuple& t = rels_[rel].tuples[idx];
  IdTuple out;
  out.reserve(cols.size());
  for (AttrId c : cols) out.push_back(uf_.Find(t[c]));
  return out;
}

void InternedWorkspace::ExtendPartition(RelId rel,
                                        const std::vector<AttrId>& cols,
                                        CachedPartition& cp) const {
  const RelStore& rs = rels_[rel];
  Partition& p = cp.p;
  std::uint32_t end = static_cast<std::uint32_t>(rs.tuples.size());
  p.group_of.reserve(end);
  IdTuple key;
  key.reserve(cols.size());
  for (std::uint32_t i = cp.covered; i < end; ++i) {
    if (!rs.alive[i]) {
      p.group_of.push_back(kNoGroup);
      continue;
    }
    const IdTuple& t = rs.tuples[i];
    key.clear();
    for (AttrId c : cols) key.push_back(t[c]);
    auto [kit, inserted] = p.key_to_group.emplace(key, p.group_count);
    if (inserted) {
      p.first_of_group.push_back(i);
      ++p.group_count;
    }
    p.group_of.push_back(kit->second);
  }
  cp.covered = end;
}

const InternedWorkspace::Partition& InternedWorkspace::partition(
    RelId rel, const std::vector<AttrId>& cols) const {
  const RelStore& rs = rels_[rel];
  auto [it, inserted] = partitions_[rel].try_emplace(cols);
  CachedPartition& cp = it->second;
  if (!inserted && cp.epoch == rs.epoch) {
    if (cp.covered == rs.tuples.size()) {
      ++stats_.partitions_reused;
    } else {
      ++stats_.partitions_extended;
      ExtendPartition(rel, cols, cp);
    }
    return cp.p;
  }
  if (!inserted) {
    ++stats_.partitions_invalidated;
    cp.p = Partition();
  }
  ++stats_.partitions_built;
  cp.epoch = rs.epoch;
  cp.covered = 0;
  ExtendPartition(rel, cols, cp);
  return cp.p;
}

bool InternedWorkspace::Satisfies(const Fd& fd) const {
  const RelStore& rs = rels_[fd.rel];
  if (rs.alive_count == 0) return true;
  const Partition& lhs = partition(fd.rel, fd.lhs);
  const Partition& rhs = partition(fd.rel, fd.rhs);
  // The FD holds iff the lhs partition refines the rhs partition.
  std::vector<std::uint32_t> seen(lhs.group_count, UINT32_MAX);
  for (std::uint32_t i = 0; i < rs.tuples.size(); ++i) {
    std::uint32_t g = lhs.group_of[i];
    if (g == kNoGroup) continue;
    std::uint32_t h = rhs.group_of[i];
    if (seen[g] == UINT32_MAX) {
      seen[g] = h;
    } else if (seen[g] != h) {
      return false;
    }
  }
  return true;
}

bool InternedWorkspace::Satisfies(const Ind& ind) const {
  const RelStore& lhs = rels_[ind.lhs_rel];
  if (lhs.alive_count == 0) return true;
  const Partition& lhs_p = partition(ind.lhs_rel, ind.lhs);
  const Partition& rhs_p = partition(ind.rhs_rel, ind.rhs);
  IdTuple key;
  key.reserve(ind.lhs.size());
  for (std::uint32_t g = 0; g < lhs_p.group_count; ++g) {
    const IdTuple& t = lhs.tuples[lhs_p.first_of_group[g]];
    key.clear();
    for (AttrId c : ind.lhs) key.push_back(t[c]);
    if (rhs_p.key_to_group.count(key) == 0) return false;
  }
  return true;
}

bool InternedWorkspace::Satisfies(const Rd& rd) const {
  const RelStore& rs = rels_[rd.rel];
  for (std::uint32_t i = 0; i < rs.tuples.size(); ++i) {
    if (!rs.alive[i]) continue;
    const IdTuple& t = rs.tuples[i];
    for (std::size_t k = 0; k < rd.lhs.size(); ++k) {
      if (t[rd.lhs[k]] != t[rd.rhs[k]]) return false;
    }
  }
  return true;
}

bool InternedWorkspace::SatisfiesEmvdOn(RelId rel,
                                        const std::vector<AttrId>& x,
                                        const std::vector<AttrId>& y,
                                        const std::vector<AttrId>& z) const {
  const RelStore& rs = rels_[rel];
  if (rs.alive_count == 0) return true;
  std::vector<AttrId> xy = AppendDistinctAttrs(x, y);
  std::vector<AttrId> xz = AppendDistinctAttrs(x, z);
  const Partition& x_p = partition(rel, x);
  const Partition& xy_p = partition(rel, xy);
  const Partition& xz_p = partition(rel, xz);
  // Per X-group distinct XY / XZ / (XY, XZ) counts; a group obeys the EMVD
  // iff pairs == xy_distinct * xz_distinct (XY and XZ refine X).
  std::vector<std::uint32_t> ny(x_p.group_count, 0);
  std::vector<std::uint32_t> nz(x_p.group_count, 0);
  std::vector<std::uint64_t> np(x_p.group_count, 0);
  std::vector<std::uint8_t> seen_xy(xy_p.group_count, 0);
  std::vector<std::uint8_t> seen_xz(xz_p.group_count, 0);
  std::unordered_set<std::uint64_t> pairs;
  pairs.reserve(rs.alive_count);
  for (std::uint32_t i = 0; i < rs.tuples.size(); ++i) {
    std::uint32_t g = x_p.group_of[i];
    if (g == kNoGroup) continue;
    std::uint32_t gy = xy_p.group_of[i];
    std::uint32_t gz = xz_p.group_of[i];
    if (!seen_xy[gy]) {
      seen_xy[gy] = 1;
      ++ny[g];
    }
    if (!seen_xz[gz]) {
      seen_xz[gz] = 1;
      ++nz[g];
    }
    if (pairs.insert(PackIdPair(gy, gz)).second) ++np[g];
  }
  for (std::uint32_t g = 0; g < x_p.group_count; ++g) {
    if (static_cast<std::uint64_t>(ny[g]) * nz[g] != np[g]) return false;
  }
  return true;
}

bool InternedWorkspace::Satisfies(const Emvd& emvd) const {
  return SatisfiesEmvdOn(emvd.rel, emvd.x, emvd.y, emvd.z);
}

bool InternedWorkspace::Satisfies(const Mvd& mvd) const {
  return SatisfiesEmvdOn(mvd.rel, mvd.x, mvd.y, MvdComplement(*scheme_, mvd));
}

bool InternedWorkspace::Satisfies(const Dependency& dep) const {
  switch (dep.kind()) {
    case DependencyKind::kFd:
      return Satisfies(dep.fd());
    case DependencyKind::kInd:
      return Satisfies(dep.ind());
    case DependencyKind::kRd:
      return Satisfies(dep.rd());
    case DependencyKind::kEmvd:
      return Satisfies(dep.emvd());
    case DependencyKind::kMvd:
      return Satisfies(dep.mvd());
  }
  return false;
}

bool InternedWorkspace::SatisfiesAll(
    const std::vector<Dependency>& deps) const {
  for (const Dependency& dep : deps) {
    if (!Satisfies(dep)) return false;
  }
  return true;
}

std::optional<IdViolation> InternedWorkspace::FindEmvdViolation(
    RelId rel, const std::vector<AttrId>& x, const std::vector<AttrId>& y,
    const std::vector<AttrId>& z) const {
  if (SatisfiesEmvdOn(rel, x, y, z)) return std::nullopt;
  const RelStore& rs = rels_[rel];
  std::vector<AttrId> xy = AppendDistinctAttrs(x, y);
  std::vector<AttrId> xz = AppendDistinctAttrs(x, z);
  const Partition& x_p = partition(rel, x);
  const Partition& xy_p = partition(rel, xy);
  const Partition& xz_p = partition(rel, xz);
  std::unordered_set<std::uint64_t> pairs;
  for (std::uint32_t i = 0; i < rs.tuples.size(); ++i) {
    if (x_p.group_of[i] == kNoGroup) continue;
    pairs.insert(PackIdPair(xy_p.group_of[i], xz_p.group_of[i]));
  }
  // Diagnostics path only: quadratic scan for the first same-group pair
  // whose (XY, XZ) combination has no witness tuple.
  for (std::uint32_t i = 0; i < rs.tuples.size(); ++i) {
    if (x_p.group_of[i] == kNoGroup) continue;
    for (std::uint32_t j = 0; j < rs.tuples.size(); ++j) {
      if (x_p.group_of[i] != x_p.group_of[j]) continue;
      if (pairs.count(PackIdPair(xy_p.group_of[i], xz_p.group_of[j])) == 0) {
        return IdViolation{rel, {i, j}};
      }
    }
  }
  return IdViolation{rel, {}};  // unreachable if Satisfies was false
}

std::optional<IdViolation> InternedWorkspace::FindViolation(
    const Dependency& dep) const {
  switch (dep.kind()) {
    case DependencyKind::kFd: {
      const Fd& fd = dep.fd();
      const RelStore& rs = rels_[fd.rel];
      if (rs.alive_count == 0) return std::nullopt;
      const Partition& lhs = partition(fd.rel, fd.lhs);
      const Partition& rhs = partition(fd.rel, fd.rhs);
      std::vector<std::uint32_t> first(lhs.group_count, UINT32_MAX);
      for (std::uint32_t i = 0; i < rs.tuples.size(); ++i) {
        std::uint32_t g = lhs.group_of[i];
        if (g == kNoGroup) continue;
        if (first[g] == UINT32_MAX) {
          first[g] = i;
        } else if (rhs.group_of[first[g]] != rhs.group_of[i]) {
          return IdViolation{fd.rel, {first[g], i}};
        }
      }
      return std::nullopt;
    }
    case DependencyKind::kInd: {
      const Ind& ind = dep.ind();
      const RelStore& lhs = rels_[ind.lhs_rel];
      const Partition& lhs_p = partition(ind.lhs_rel, ind.lhs);
      const Partition& rhs_p = partition(ind.rhs_rel, ind.rhs);
      IdTuple key;
      // Ascending group id == ascending first-slot index, so the first
      // missing group's first tuple is the first violating tuple.
      for (std::uint32_t g = 0; g < lhs_p.group_count; ++g) {
        const IdTuple& t = lhs.tuples[lhs_p.first_of_group[g]];
        key.clear();
        for (AttrId c : ind.lhs) key.push_back(t[c]);
        if (rhs_p.key_to_group.count(key) == 0) {
          return IdViolation{ind.lhs_rel, {lhs_p.first_of_group[g]}};
        }
      }
      return std::nullopt;
    }
    case DependencyKind::kRd: {
      const Rd& rd = dep.rd();
      const RelStore& rs = rels_[rd.rel];
      for (std::uint32_t i = 0; i < rs.tuples.size(); ++i) {
        if (!rs.alive[i]) continue;
        const IdTuple& t = rs.tuples[i];
        for (std::size_t k = 0; k < rd.lhs.size(); ++k) {
          if (t[rd.lhs[k]] != t[rd.rhs[k]]) {
            return IdViolation{rd.rel, {i}};
          }
        }
      }
      return std::nullopt;
    }
    case DependencyKind::kEmvd:
      return FindEmvdViolation(dep.emvd().rel, dep.emvd().x, dep.emvd().y,
                               dep.emvd().z);
    case DependencyKind::kMvd:
      return FindEmvdViolation(dep.mvd().rel, dep.mvd().x, dep.mvd().y,
                               MvdComplement(*scheme_, dep.mvd()));
  }
  return std::nullopt;
}

Database InternedWorkspace::Materialize() const {
  Database out(scheme_);
  for (RelId rel = 0; rel < scheme_->size(); ++rel) {
    const RelStore& rs = rels_[rel];
    out.relation(rel).Reserve(rs.alive_count);
    for (std::uint32_t i = 0; i < rs.tuples.size(); ++i) {
      if (!rs.alive[i]) continue;
      Tuple t;
      t.reserve(rs.tuples[i].size());
      for (ValueId id : rs.tuples[i]) {
        t.push_back(interner_.value(uf_.Rep(id)));
      }
      out.Insert(rel, std::move(t));
    }
  }
  return out;
}

IdDatabase InternedWorkspace::ExportIdDatabase() && {
  std::vector<std::vector<IdTuple>> tuples(scheme_->size());
  for (RelId rel = 0; rel < scheme_->size(); ++rel) {
    RelStore& rs = rels_[rel];
    tuples[rel].reserve(rs.alive_count);
    for (std::uint32_t i = 0; i < rs.tuples.size(); ++i) {
      if (!rs.alive[i]) continue;
      IdTuple t;
      t.reserve(rs.tuples[i].size());
      for (ValueId id : rs.tuples[i]) {
        // Rep, not Find: the tree root is a structural artifact; the
        // class prints as its constant / lowest-labeled null.
        t.push_back(uf_.Rep(id));
      }
      tuples[rel].push_back(std::move(t));
    }
  }
  return IdDatabase(scheme_, std::move(interner_), std::move(tuples));
}

}  // namespace ccfp
