#include "core/snapshot.h"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <utility>

#include "util/fault.h"
#include "util/strings.h"

namespace ccfp {

namespace {

constexpr char kMagic[6] = {'C', 'C', 'F', 'P', 'W', 'S'};
constexpr std::size_t kHeaderBytes =
    sizeof(kMagic) + sizeof(std::uint32_t) + 2 * sizeof(std::uint64_t);
/// Byte offset of the header checksum — a record's identity (BlobId).
constexpr std::size_t kChecksumOffset =
    sizeof(kMagic) + sizeof(std::uint32_t) + sizeof(std::uint64_t);

constexpr char kSessionMagic[6] = {'C', 'C', 'F', 'P', 'S', 'R'};
constexpr std::uint32_t kSessionRecordVersion = 1;

/// Little-endian, byte-at-a-time writer: portable and alias-free.
class Writer {
 public:
  void U8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) U8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void U64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) U8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void I64(std::int64_t v) { U64(static_cast<std::uint64_t>(v)); }
  void Str(std::string_view s) {
    U64(s.size());
    out_.append(s);
  }

  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked reader; every primitive either succeeds or trips the
/// sticky truncation flag (checked once by the caller via Ok()).
class Reader {
 public:
  explicit Reader(std::string_view in) : in_(in) {}

  std::uint8_t U8() {
    if (pos_ >= in_.size()) {
      truncated_ = true;
      return 0;
    }
    return static_cast<std::uint8_t>(in_[pos_++]);
  }
  std::uint32_t U32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{U8()} << (8 * i);
    return v;
  }
  std::uint64_t U64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{U8()} << (8 * i);
    return v;
  }
  std::int64_t I64() { return static_cast<std::int64_t>(U64()); }
  std::string Str() {
    std::uint64_t n = U64();
    if (truncated_ || n > in_.size() - pos_) {
      truncated_ = true;
      return {};
    }
    std::string s(in_.substr(pos_, static_cast<std::size_t>(n)));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }

  /// Guards a forthcoming sequence of `count` items of >= `item_bytes`
  /// each, so corrupt counts fail fast instead of driving huge loops.
  bool Fits(std::uint64_t count, std::uint64_t item_bytes) {
    if (truncated_ || count > (in_.size() - pos_) / item_bytes) {
      truncated_ = true;
      return false;
    }
    return true;
  }

  bool Ok() const { return !truncated_; }
  bool AtEnd() const { return pos_ == in_.size(); }

 private:
  std::string_view in_;
  std::size_t pos_ = 0;
  bool truncated_ = false;
};

Status Corrupt(const std::string& what) {
  return Status::InvalidArgument(StrCat("workspace snapshot: ", what));
}

/// Wraps a payload in the versioned, checksummed header.
std::string EncodeRecord(std::string payload) {
  Writer w;
  for (char c : kMagic) w.U8(static_cast<std::uint8_t>(c));
  w.U32(kWorkspaceSnapshotVersion);
  w.U64(payload.size());
  w.U64(Fnv1a64(payload));
  std::string out = w.Take();
  out += payload;
  return out;
}

/// A record's identity: its header checksum, read straight off the blob.
std::uint64_t BlobId(std::string_view bytes) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= std::uint64_t{static_cast<std::uint8_t>(bytes[kChecksumOffset + i])}
         << (8 * i);
  }
  return v;
}

struct RecordView {
  std::string_view payload;
  std::uint64_t checksum = 0;
};

/// Validates magic, version, size, and checksum; returns the payload.
Result<RecordView> CheckRecord(std::string_view bytes) {
  if (bytes.size() < kHeaderBytes) return Corrupt("shorter than header");
  for (std::size_t i = 0; i < sizeof(kMagic); ++i) {
    if (bytes[i] != kMagic[i]) return Corrupt("bad magic");
  }
  Reader header(bytes.substr(sizeof(kMagic), kHeaderBytes - sizeof(kMagic)));
  std::uint32_t version = header.U32();
  if (version != kWorkspaceSnapshotVersion) {
    return Corrupt(StrCat("unsupported version ", version));
  }
  std::uint64_t payload_size = header.U64();
  std::uint64_t checksum = header.U64();
  std::string_view payload = bytes.substr(kHeaderBytes);
  if (payload.size() != payload_size) {
    return Corrupt("payload size mismatch");
  }
  if (Fnv1a64(payload) != checksum) return Corrupt("checksum mismatch");
  return RecordView{payload, checksum};
}

/// --- file plumbing --------------------------------------------------------

Status WriteFileRaw(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::NotFound(StrCat("cannot open ", path));
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) return Status::Internal(StrCat("short write to ", path));
  return Status::OK();
}

Result<std::string> ReadFileRaw(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound(StrCat("cannot open ", path));
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (!in && !in.eof()) return Status::Internal(StrCat("read error ", path));
  return bytes;
}

std::string DirnameOf(const std::string& path) {
  std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status FsyncFile(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::Internal(StrCat("cannot open for fsync ", path));
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::Internal(StrCat("fsync failed ", path));
  return Status::OK();
}

/// Best-effort: some filesystems reject directory fsync; the file itself
/// is already durable at this point.
void FsyncDir(const std::string& dir) {
  int flags = O_RDONLY;
#ifdef O_DIRECTORY
  flags |= O_DIRECTORY;
#endif
  int fd = ::open(dir.c_str(), flags);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

/// Writes one serialized record to `path` under `write`, consulting the
/// installed FaultInjector at every crash instant (see the policy table in
/// core/snapshot.h). Under the atomic policy a failure — injected or real
/// — leaves `path` untouched except for the one instant *after* the
/// rename, where the new record is already in place but the caller sees
/// Internal (and must treat the save as failed).
Status WriteSnapshotBlob(std::string bytes, const std::string& path,
                         const SnapshotWriteOptions& write) {
  FaultInjector* fi = InstalledFaultInjector();
  if (!write.atomic) {
    // Legacy direct write: injected damage lands in the target file and
    // the save still reports success — bit rot the loader must detect.
    if (fi != nullptr) {
      if (fi->ShouldFail(FaultSite::kSnapshotCorrupt)) {
        fi->CorruptBytes(bytes);
      }
      if (fi->ShouldFail(FaultSite::kSnapshotTruncate)) {
        fi->TruncateBytes(bytes);
      }
    }
    return WriteFileRaw(path, bytes);
  }

  // Atomic policy: all damage is confined to the temp file, and a damaged
  // temp write "crashes" before the rename — the target keeps old state.
  std::string tmp = StrCat(path, ".tmp");
  bool torn = false;
  if (fi != nullptr) {
    if (fi->ShouldFail(FaultSite::kSnapshotCorrupt)) {
      fi->CorruptBytes(bytes);
      torn = true;
    }
    if (fi->ShouldFail(FaultSite::kSnapshotTruncate)) {
      fi->TruncateBytes(bytes);
      torn = true;
    }
  }
  CCFP_RETURN_NOT_OK(WriteFileRaw(tmp, bytes));
  if (torn) {
    return Status::Internal(
        StrCat("crash during snapshot temp write (fault injection): ", tmp));
  }
  if (fi != nullptr && fi->ShouldFail(FaultSite::kSnapshotFsync)) {
    return Status::Internal(
        StrCat("crash before snapshot fsync (fault injection): ", tmp));
  }
  if (write.durable) CCFP_RETURN_NOT_OK(FsyncFile(tmp));
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Internal(StrCat("rename failed ", tmp, " -> ", path));
  }
  if (fi != nullptr && fi->ShouldFail(FaultSite::kSnapshotRename)) {
    return Status::Internal(
        StrCat("crash after snapshot rename (fault injection): ", path));
  }
  if (write.durable) FsyncDir(DirnameOf(path));
  return Status::OK();
}

}  // namespace

std::uint64_t Fnv1a64(std::string_view bytes) {
  std::uint64_t h = 14695981039346656037ULL;
  for (char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t SchemeFingerprint(const DatabaseScheme& scheme) {
  return Fnv1a64(scheme.ToString());
}

/// The one friend of InternedWorkspace / ValueInterner / DenseUnionFind:
/// all field-level serialization lives here so the classes themselves
/// expose nothing extra.
class WorkspaceSnapshotAccess {
 public:
  static void SerializePayload(
      const InternedWorkspace& ws,
      const std::vector<std::vector<std::uint64_t>>& cursors,
      std::string_view aux, Writer& w) {
    w.U8(kSnapshotRecordFull);
    w.U64(SchemeFingerprint(*ws.scheme_));

    // Interner: values in id order + the fresh-null watermark. Indexed
    // access spans a frozen shared base and the local extension alike.
    const ValueInterner& in = ws.interner_;
    w.U64(in.size());
    for (ValueId i = 0; i < in.size(); ++i) SerializeValue(in.value(i), w);
    w.U64(in.next_null_label_);

    // Union-find (sized to the interner by EnsureSize on every intern).
    const DenseUnionFind& uf = ws.uf_;
    w.U64(uf.parent_.size());
    for (ValueId p : uf.parent_) w.U32(p);
    for (std::uint32_t s : uf.size_) w.U32(s);
    for (ValueId r : uf.rep_) w.U32(r);

    // Relation stores: slots + alive flags + retained feed. The dedup
    // index is content-determined and rebuilt at load.
    w.U64(ws.rels_.size());
    for (RelId rel = 0; rel < ws.rels_.size(); ++rel) {
      const auto& rs = ws.rels_[rel];
      w.U64(rs.tuples.size());
      for (std::uint32_t i = 0; i < rs.tuples.size(); ++i) {
        for (ValueId id : rs.tuples[i]) w.U32(id);
        w.U8(rs.alive[i]);
      }
      w.U64(rs.feed_base);
      w.U64(rs.feed.size());
      for (const WorkspaceEvent& e : rs.feed) {
        w.U8(static_cast<std::uint8_t>(e.kind));
        w.U32(e.idx);
      }
    }

    // Occurrence lists, exactly: their order drives deterministic chase
    // worklists, so a rebuild is not equivalent.
    w.U64(ws.occurrences_.size());
    for (const auto& occ : ws.occurrences_) {
      w.U64(occ.size());
      for (const WorkspaceTupleRef& ref : occ) {
        w.U32(ref.rel);
        w.U32(ref.idx);
      }
    }

    // Compiled partitions: the warm-start capital. Group ids (including
    // tombstones) restore bit-for-bit so downstream consumers that cached
    // group ids stay correct.
    for (RelId rel = 0; rel < ws.rels_.size(); ++rel) {
      const auto& cache = ws.partitions_[rel];
      w.U64(cache.size());
      for (const auto& [cols, cp] : cache) {
        w.U64(cols.size());
        for (AttrId c : cols) w.U32(c);
        w.U32(cp.covered);
        const InternedWorkspace::Partition& p = cp.p;
        w.U64(p.group_of.size());
        for (std::uint32_t g : p.group_of) w.U32(g);
        w.U32(p.group_count);
        w.U32(p.alive_groups);
        w.U64(p.group_size.size());
        for (std::uint32_t s : p.group_size) w.U32(s);
        w.U64(p.key_to_group.size());
        for (const auto& [key, g] : p.key_to_group) {
          for (ValueId id : key) w.U32(id);
          w.U32(g);
        }
      }
    }

    // Substrate stats, so a restored session's counters are continuous.
    const InternedWorkspace::Stats& st = ws.stats_;
    w.U64(st.partitions_built);
    w.U64(st.partitions_extended);
    w.U64(st.partitions_reused);
    w.U64(st.partitions_invalidated);
    w.U64(st.partition_slots_repaired);
    w.U64(st.tuples_appended);
    w.U64(st.tuples_killed);
    w.U64(st.values_interned);
    w.U64(st.value_merges);
    w.U64(st.feed_compactions);
    w.U64(st.feed_events_compacted);

    // Caller-supplied consumer cursors (verifier feed positions, ...).
    SerializeCursors(cursors, w);
    w.Str(aux);
  }

  static Result<RestoredWorkspace> DeserializePayload(
      SchemePtr scheme, std::string_view in, std::uint64_t checksum) {
    Reader r(in);
    std::uint8_t kind = r.U8();
    if (kind == kSnapshotRecordDelta) {
      return Corrupt("expected a full record, found a delta");
    }
    if (kind != kSnapshotRecordFull) return Corrupt("bad record kind");
    if (r.U64() != SchemeFingerprint(*scheme)) {
      return Corrupt("scheme fingerprint mismatch");
    }

    RestoredWorkspace out{InternedWorkspace(scheme), {}, {}, 0};
    InternedWorkspace& ws = out.ws;

    // Interner.
    std::uint64_t n_values = r.U64();
    if (!r.Fits(n_values, 9)) return Corrupt("value table truncated");
    ValueInterner& interner = ws.interner_;
    interner.values_.reserve(static_cast<std::size_t>(n_values));
    for (std::uint64_t i = 0; i < n_values; ++i) {
      Value v;
      CCFP_RETURN_NOT_OK(DeserializeValue(r, v));
      if (!r.Ok()) return Corrupt("value table truncated");
      if (!interner.InternNew(v)) {
        return Corrupt("duplicate value in interner table");
      }
    }
    interner.next_null_label_ = r.U64();

    // Union-find.
    std::uint64_t n_uf = r.U64();
    if (n_uf != n_values) return Corrupt("union-find size mismatch");
    if (!r.Fits(n_uf, 12)) return Corrupt("union-find truncated");
    DenseUnionFind& uf = ws.uf_;
    uf.parent_.reserve(n_uf);
    uf.size_.reserve(n_uf);
    uf.rep_.reserve(n_uf);
    for (std::uint64_t i = 0; i < n_uf; ++i) uf.parent_.push_back(r.U32());
    for (std::uint64_t i = 0; i < n_uf; ++i) uf.size_.push_back(r.U32());
    for (std::uint64_t i = 0; i < n_uf; ++i) uf.rep_.push_back(r.U32());
    for (std::uint64_t i = 0; i < n_uf; ++i) {
      if (uf.parent_[i] >= n_uf || uf.rep_[i] >= n_uf) {
        return Corrupt("union-find id out of range");
      }
    }

    // Relation stores.
    if (r.U64() != scheme->size()) return Corrupt("relation count mismatch");
    for (RelId rel = 0; rel < scheme->size(); ++rel) {
      auto& rs = ws.rels_[rel];
      std::uint64_t arity = scheme->relation(rel).arity();
      std::uint64_t n_slots = r.U64();
      if (!r.Fits(n_slots, arity * 4 + 1)) {
        return Corrupt("tuple store truncated");
      }
      rs.tuples.reserve(static_cast<std::size_t>(n_slots));
      rs.alive.reserve(static_cast<std::size_t>(n_slots));
      for (std::uint64_t i = 0; i < n_slots; ++i) {
        IdTuple t;
        t.reserve(static_cast<std::size_t>(arity));
        for (std::uint64_t c = 0; c < arity; ++c) {
          ValueId id = r.U32();
          if (id >= n_values) return Corrupt("tuple id out of range");
          t.push_back(id);
        }
        std::uint8_t alive = r.U8();
        if (alive > 1) return Corrupt("bad alive flag");
        ws.tuple_id_cells_ += t.size();
        rs.tuples.push_back(std::move(t));
        rs.alive.push_back(alive);
        if (alive) {
          ++rs.alive_count;
          ++ws.total_alive_;
        }
      }
      // Rebuild the dedup index over alive slots (content-determined).
      for (std::uint32_t i = 0; i < rs.tuples.size(); ++i) {
        if (!rs.alive[i]) continue;
        auto [it, inserted] = rs.dedup.emplace(rs.tuples[i], i);
        if (!inserted) return Corrupt("duplicate alive tuple");
      }
      rs.feed_base = r.U64();
      std::uint64_t n_events = r.U64();
      if (!r.Fits(n_events, 5)) return Corrupt("feed truncated");
      rs.feed.reserve(static_cast<std::size_t>(n_events));
      for (std::uint64_t i = 0; i < n_events; ++i) {
        std::uint8_t ekind = r.U8();
        std::uint32_t idx = r.U32();
        if (ekind > 2 || idx >= rs.tuples.size()) {
          return Corrupt("bad feed event");
        }
        rs.feed.push_back(WorkspaceEvent{
            static_cast<WorkspaceEventKind>(ekind), idx});
      }
    }

    // Occurrences (exact).
    std::uint64_t n_occ = r.U64();
    if (n_occ != n_values) return Corrupt("occurrence table size mismatch");
    ws.occurrences_.resize(static_cast<std::size_t>(n_occ));
    for (std::uint64_t i = 0; i < n_occ; ++i) {
      std::uint64_t n_refs = r.U64();
      if (!r.Fits(n_refs, 8)) return Corrupt("occurrences truncated");
      auto& occ = ws.occurrences_[static_cast<std::size_t>(i)];
      occ.reserve(static_cast<std::size_t>(n_refs));
      for (std::uint64_t j = 0; j < n_refs; ++j) {
        WorkspaceTupleRef ref;
        ref.rel = r.U32();
        ref.idx = r.U32();
        if (ref.rel >= scheme->size() ||
            ref.idx >= ws.rels_[ref.rel].tuples.size()) {
          return Corrupt("occurrence ref out of range");
        }
        occ.push_back(ref);
      }
      ws.occurrence_refs_ += n_refs;
    }

    // Partitions.
    for (RelId rel = 0; rel < scheme->size(); ++rel) {
      std::uint64_t n_cached = r.U64();
      std::uint64_t arity = scheme->relation(rel).arity();
      if (!r.Fits(n_cached, 8)) return Corrupt("partition cache truncated");
      for (std::uint64_t k = 0; k < n_cached; ++k) {
        std::uint64_t n_cols = r.U64();
        if (n_cols > arity) return Corrupt("partition columns out of range");
        std::vector<AttrId> cols;
        cols.reserve(static_cast<std::size_t>(n_cols));
        for (std::uint64_t c = 0; c < n_cols; ++c) {
          AttrId a = r.U32();
          if (a >= arity) return Corrupt("partition column out of range");
          cols.push_back(a);
        }
        InternedWorkspace::CachedPartition cp;
        cp.covered = r.U32();
        if (cp.covered > ws.rels_[rel].tuples.size()) {
          return Corrupt("partition covers unknown slots");
        }
        InternedWorkspace::Partition& p = cp.p;
        std::uint64_t n_groupof = r.U64();
        if (n_groupof != cp.covered) {
          return Corrupt("partition group_of size mismatch");
        }
        if (!r.Fits(n_groupof, 4)) return Corrupt("partition truncated");
        p.group_of.reserve(static_cast<std::size_t>(n_groupof));
        for (std::uint64_t i = 0; i < n_groupof; ++i) {
          p.group_of.push_back(r.U32());
        }
        p.group_count = r.U32();
        p.alive_groups = r.U32();
        std::uint64_t n_sizes = r.U64();
        if (n_sizes != p.group_count) {
          return Corrupt("partition group_size mismatch");
        }
        if (!r.Fits(n_sizes, 4)) return Corrupt("partition truncated");
        p.group_size.reserve(static_cast<std::size_t>(n_sizes));
        for (std::uint64_t i = 0; i < n_sizes; ++i) {
          p.group_size.push_back(r.U32());
        }
        for (std::uint32_t g : p.group_of) {
          if (g != InternedWorkspace::kNoGroup && g >= p.group_count) {
            return Corrupt("partition group id out of range");
          }
        }
        std::uint64_t n_keys = r.U64();
        if (!r.Fits(n_keys, n_cols * 4 + 4)) {
          return Corrupt("partition keys truncated");
        }
        for (std::uint64_t i = 0; i < n_keys; ++i) {
          IdTuple key;
          key.reserve(static_cast<std::size_t>(n_cols));
          for (std::uint64_t c = 0; c < n_cols; ++c) key.push_back(r.U32());
          std::uint32_t g = r.U32();
          if (g >= p.group_count) {
            return Corrupt("partition key group out of range");
          }
          if (!p.key_to_group.emplace(std::move(key), g).second) {
            return Corrupt("duplicate partition key");
          }
        }
        if (!ws.partitions_[rel].emplace(std::move(cols), std::move(cp))
                 .second) {
          return Corrupt("duplicate partition column set");
        }
      }
    }

    // Stats.
    InternedWorkspace::Stats& st = ws.stats_;
    st.partitions_built = r.U64();
    st.partitions_extended = r.U64();
    st.partitions_reused = r.U64();
    st.partitions_invalidated = r.U64();
    st.partition_slots_repaired = r.U64();
    st.tuples_appended = r.U64();
    st.tuples_killed = r.U64();
    st.values_interned = r.U64();
    st.value_merges = r.U64();
    st.feed_compactions = r.U64();
    st.feed_events_compacted = r.U64();

    // Consumer cursors + aux.
    CCFP_RETURN_NOT_OK(DeserializeCursors(r, out.consumer_cursors));
    out.aux = r.Str();

    if (!r.Ok()) return Corrupt("payload truncated");
    if (!r.AtEnd()) return Corrupt("trailing bytes after payload");

    // This record is now the workspace's chain identity: a delta record
    // linking to `checksum` extends exactly this state.
    out.snapshot_id = checksum;
    ws.MarkJournalPersisted(checksum);
    return out;
  }

  static void SerializeDeltaPayload(
      const InternedWorkspace& ws,
      const std::vector<std::vector<std::uint64_t>>& cursors,
      std::string_view aux, Writer& w) {
    w.U8(kSnapshotRecordDelta);
    w.U64(SchemeFingerprint(*ws.scheme_));
    w.U64(ws.snapshot_base_id_);

    // Interner growth since the base: values [from, size()).
    const ValueInterner& in = ws.interner_;
    std::uint64_t from = ws.journal_values_base_;
    w.U64(from);
    w.U64(in.size());
    for (std::uint64_t i = from; i < in.size(); ++i) {
      SerializeValue(in.value(static_cast<ValueId>(i)), w);
    }
    w.U64(in.next_null_label_);

    // The retained mutation journal, per-op minimal encoding.
    w.U64(ws.journal_.size());
    for (const WorkspaceJournalEntry& e : ws.journal_) {
      w.U8(static_cast<std::uint8_t>(e.op));
      switch (e.op) {
        case WorkspaceJournalEntry::Op::kAppend:
          w.U32(e.rel);
          w.U64(e.ids.size());
          for (ValueId id : e.ids) w.U32(id);
          break;
        case WorkspaceJournalEntry::Op::kMerge:
        case WorkspaceJournalEntry::Op::kReroute:
          w.U32(e.a);
          w.U32(e.b);
          break;
        case WorkspaceJournalEntry::Op::kCanonicalize:
          w.U32(e.rel);
          w.U32(e.idx);
          break;
        case WorkspaceJournalEntry::Op::kTrim:
          w.U32(e.rel);
          w.U64(e.horizon);
          break;
      }
    }

    SerializeCursors(cursors, w);
    w.Str(aux);
  }

  static Result<WorkspaceDeltaInfo> ApplyDeltaPayload(InternedWorkspace& ws,
                                                      std::string_view in,
                                                      std::uint64_t checksum) {
    Reader r(in);
    std::uint8_t kind = r.U8();
    if (kind == kSnapshotRecordFull) {
      return Corrupt("expected a delta record, found a full record");
    }
    if (kind != kSnapshotRecordDelta) return Corrupt("bad record kind");
    if (r.U64() != SchemeFingerprint(*ws.scheme_)) {
      return Corrupt("scheme fingerprint mismatch");
    }

    // Linkage is validated *before* any mutation: a stale delta (left
    // behind by a fold) must leave the workspace untouched so chain loads
    // can treat it as end-of-chain.
    std::uint64_t base_id = r.U64();
    if (!ws.HasSnapshotBase() || base_id != ws.SnapshotBaseId()) {
      return Status::FailedPrecondition(StrCat(
          "workspace snapshot: delta links to record ", base_id,
          " but the workspace is at record ", ws.SnapshotBaseId()));
    }

    // Decode everything up front (so damage is caught while the workspace
    // is still intact where possible; replay failures below mean the
    // record lied about its base and the workspace must be discarded).
    std::uint64_t values_from = r.U64();
    std::uint64_t values_to = r.U64();
    if (values_from != ws.interner_.size() || values_to < values_from) {
      return Corrupt("delta interner watermark inconsistent with base");
    }
    std::uint64_t growth = values_to - values_from;
    if (!r.Fits(growth, 9)) return Corrupt("delta value table truncated");
    std::vector<Value> new_values;
    new_values.reserve(static_cast<std::size_t>(growth));
    for (std::uint64_t i = 0; i < growth; ++i) {
      Value v;
      CCFP_RETURN_NOT_OK(DeserializeValue(r, v));
      if (!r.Ok()) return Corrupt("delta value table truncated");
      new_values.push_back(std::move(v));
    }
    std::uint64_t next_null_label = r.U64();

    std::uint64_t n_journal = r.U64();
    if (!r.Fits(n_journal, 1)) return Corrupt("delta journal truncated");
    std::vector<WorkspaceJournalEntry> entries;
    entries.reserve(static_cast<std::size_t>(n_journal));
    for (std::uint64_t i = 0; i < n_journal; ++i) {
      WorkspaceJournalEntry e;
      std::uint8_t op = r.U8();
      if (op > static_cast<std::uint8_t>(WorkspaceJournalEntry::Op::kTrim)) {
        return Corrupt("bad journal op");
      }
      e.op = static_cast<WorkspaceJournalEntry::Op>(op);
      switch (e.op) {
        case WorkspaceJournalEntry::Op::kAppend: {
          e.rel = r.U32();
          if (e.rel >= ws.scheme_->size()) {
            return Corrupt("journal relation out of range");
          }
          std::uint64_t n_ids = r.U64();
          if (n_ids != ws.scheme_->relation(e.rel).arity() ||
              !r.Fits(n_ids, 4)) {
            return Corrupt("journal append arity mismatch");
          }
          e.ids.reserve(static_cast<std::size_t>(n_ids));
          for (std::uint64_t j = 0; j < n_ids; ++j) {
            ValueId id = r.U32();
            if (id >= values_to) return Corrupt("journal id out of range");
            e.ids.push_back(id);
          }
          break;
        }
        case WorkspaceJournalEntry::Op::kMerge:
        case WorkspaceJournalEntry::Op::kReroute:
          e.a = r.U32();
          e.b = r.U32();
          if (e.a >= values_to || e.b >= values_to) {
            return Corrupt("journal id out of range");
          }
          break;
        case WorkspaceJournalEntry::Op::kCanonicalize:
          e.rel = r.U32();
          e.idx = r.U32();
          if (e.rel >= ws.scheme_->size()) {
            return Corrupt("journal relation out of range");
          }
          break;
        case WorkspaceJournalEntry::Op::kTrim:
          e.rel = r.U32();
          e.horizon = r.U64();
          if (e.rel >= ws.scheme_->size()) {
            return Corrupt("journal relation out of range");
          }
          break;
      }
      entries.push_back(std::move(e));
    }

    WorkspaceDeltaInfo info;
    info.base_id = base_id;
    info.id = checksum;
    CCFP_RETURN_NOT_OK(DeserializeCursors(r, info.consumer_cursors));
    info.aux = r.Str();
    if (!r.Ok()) return Corrupt("delta payload truncated");
    if (!r.AtEnd()) return Corrupt("trailing bytes after delta payload");

    // --- mutation begins; any failure below poisons the workspace ---

    // Interner growth (ids must extend the table exactly).
    ValueInterner& interner = ws.interner_;
    for (Value& v : new_values) {
      if (!interner.InternNew(v)) {
        return Corrupt("delta value already interned in base");
      }
    }
    if (next_null_label < interner.next_null_label_) {
      return Corrupt("delta null watermark went backwards");
    }
    interner.next_null_label_ = next_null_label;
    ws.uf_.EnsureSize(interner.size());
    ws.occurrences_.resize(interner.size());
    ws.stats_.values_interned += growth;

    // Replay the journal through the public mutation API with journaling
    // suppressed (the replayed entries are already persisted).
    bool was_enabled = ws.journal_enabled_;
    ws.journal_enabled_ = false;
    Status replay = ReplayJournal(ws, entries);
    ws.journal_enabled_ = was_enabled;
    CCFP_RETURN_NOT_OK(replay);

    ws.MarkJournalPersisted(checksum);
    return info;
  }

 private:
  static void SerializeValue(const Value& v, Writer& w) {
    w.U8(static_cast<std::uint8_t>(v.kind()));
    if (v.is_str()) {
      w.Str(v.as_str());
    } else {
      w.I64(v.is_null() ? static_cast<std::int64_t>(v.null_id())
                        : v.as_int());
    }
  }

  static Status DeserializeValue(Reader& r, Value& out) {
    std::uint8_t kind = r.U8();
    switch (kind) {
      case static_cast<std::uint8_t>(Value::Kind::kNull):
        out = Value::Null(static_cast<std::uint64_t>(r.I64()));
        return Status::OK();
      case static_cast<std::uint8_t>(Value::Kind::kInt):
        out = Value::Int(r.I64());
        return Status::OK();
      case static_cast<std::uint8_t>(Value::Kind::kStr):
        out = Value::Str(r.Str());
        return Status::OK();
      default:
        return Corrupt("bad value kind");
    }
  }

  static void SerializeCursors(
      const std::vector<std::vector<std::uint64_t>>& cursors, Writer& w) {
    w.U64(cursors.size());
    for (const auto& c : cursors) {
      w.U64(c.size());
      for (std::uint64_t s : c) w.U64(s);
    }
  }

  static Status DeserializeCursors(
      Reader& r, std::vector<std::vector<std::uint64_t>>& out) {
    std::uint64_t n_cursors = r.U64();
    if (!r.Fits(n_cursors, 8)) return Corrupt("cursors truncated");
    out.reserve(static_cast<std::size_t>(n_cursors));
    for (std::uint64_t i = 0; i < n_cursors; ++i) {
      std::uint64_t n = r.U64();
      if (!r.Fits(n, 8)) return Corrupt("cursors truncated");
      std::vector<std::uint64_t> c;
      c.reserve(static_cast<std::size_t>(n));
      for (std::uint64_t j = 0; j < n; ++j) c.push_back(r.U64());
      out.push_back(std::move(c));
    }
    return Status::OK();
  }

  /// Replays decoded journal entries through the public mutators. Every
  /// entry was recorded because it *changed* state, so a replay that
  /// reports "no change" means the delta does not actually extend this
  /// base — corruption the checksum cannot catch.
  static Status ReplayJournal(
      InternedWorkspace& ws,
      const std::vector<WorkspaceJournalEntry>& entries) {
    for (const WorkspaceJournalEntry& e : entries) {
      switch (e.op) {
        case WorkspaceJournalEntry::Op::kAppend:
          if (!ws.Append(e.rel, e.ids)) {
            return Corrupt("delta append inconsistent with base");
          }
          break;
        case WorkspaceJournalEntry::Op::kMerge:
          if (!ws.MergeValues(e.a, e.b).merged) {
            return Corrupt("delta merge inconsistent with base");
          }
          break;
        case WorkspaceJournalEntry::Op::kReroute:
          ws.RerouteOccurrences(e.a, e.b);
          break;
        case WorkspaceJournalEntry::Op::kCanonicalize:
          if (e.idx >= ws.size(e.rel)) {
            return Corrupt("delta canonicalize slot out of range");
          }
          if (ws.CanonicalizeTuple(e.rel, e.idx) ==
              InternedWorkspace::CanonOutcome::kUnchanged) {
            return Corrupt("delta canonicalize inconsistent with base");
          }
          break;
        case WorkspaceJournalEntry::Op::kTrim:
          if (ws.TrimFeedTo(e.rel, e.horizon) == 0) {
            return Corrupt("delta feed trim inconsistent with base");
          }
          break;
      }
    }
    return Status::OK();
  }
};

std::string SerializeWorkspace(
    const InternedWorkspace& ws,
    const std::vector<std::vector<std::uint64_t>>& consumer_cursors,
    std::string_view aux) {
  Writer payload_writer;
  WorkspaceSnapshotAccess::SerializePayload(ws, consumer_cursors, aux,
                                            payload_writer);
  return EncodeRecord(payload_writer.Take());
}

Result<std::string> SerializeWorkspaceDelta(
    const InternedWorkspace& ws,
    const std::vector<std::vector<std::uint64_t>>& consumer_cursors,
    std::string_view aux) {
  if (!ws.journal_enabled()) {
    return Status::FailedPrecondition(
        "workspace snapshot: delta save requires EnableJournal()");
  }
  if (!ws.HasSnapshotBase()) {
    return Status::FailedPrecondition(
        "workspace snapshot: delta save requires a persisted base record");
  }
  Writer payload_writer;
  WorkspaceSnapshotAccess::SerializeDeltaPayload(ws, consumer_cursors, aux,
                                                 payload_writer);
  return EncodeRecord(payload_writer.Take());
}

Result<RestoredWorkspace> DeserializeWorkspace(SchemePtr scheme,
                                               std::string_view bytes) {
  CCFP_ASSIGN_OR_RETURN(RecordView record, CheckRecord(bytes));
  return WorkspaceSnapshotAccess::DeserializePayload(
      std::move(scheme), record.payload, record.checksum);
}

Result<WorkspaceDeltaInfo> ApplyWorkspaceDelta(InternedWorkspace& ws,
                                               std::string_view bytes) {
  CCFP_ASSIGN_OR_RETURN(RecordView record, CheckRecord(bytes));
  return WorkspaceSnapshotAccess::ApplyDeltaPayload(ws, record.payload,
                                                    record.checksum);
}

Status SaveWorkspaceSnapshot(
    const InternedWorkspace& ws, const std::string& path,
    const std::vector<std::vector<std::uint64_t>>& consumer_cursors,
    const SnapshotWriteOptions& write) {
  std::string bytes = SerializeWorkspace(ws, consumer_cursors);
  std::uint64_t id = BlobId(bytes);
  CCFP_RETURN_NOT_OK(WriteSnapshotBlob(std::move(bytes), path, write));
  ws.MarkJournalPersisted(id);
  return Status::OK();
}

Result<RestoredWorkspace> LoadWorkspaceSnapshot(SchemePtr scheme,
                                                const std::string& path) {
  CCFP_ASSIGN_OR_RETURN(std::string bytes, ReadFileRaw(path));
  return DeserializeWorkspace(std::move(scheme), bytes);
}

/// --- snapshot chains ------------------------------------------------------

SnapshotChainLock::SnapshotChainLock(SnapshotChainLock&& other) noexcept
    : fd_(other.fd_),
      path_(std::move(other.path_)),
      adopted_stale_(other.adopted_stale_) {
  other.fd_ = -1;
  other.adopted_stale_ = false;
}

SnapshotChainLock& SnapshotChainLock::operator=(
    SnapshotChainLock&& other) noexcept {
  if (this != &other) {
    Release();
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    adopted_stale_ = other.adopted_stale_;
    other.fd_ = -1;
    other.adopted_stale_ = false;
  }
  return *this;
}

std::string SnapshotChainLock::LockPath(const std::string& prefix) {
  return StrCat(prefix, ".lock");
}

Status SnapshotChainLock::Acquire(const std::string& prefix) {
  Release();
  std::string path = LockPath(prefix);
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::Internal(StrCat("cannot open chain lock ", path));
  }
  if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
    // Held by a live process (or another open lock in this one). Read its
    // pid stamp for the diagnostic; the stamp is advisory, the flock is
    // the lock.
    char stamp[32] = {};
    ssize_t n = ::pread(fd, stamp, sizeof(stamp) - 1, 0);
    ::close(fd);
    long holder = n > 0 ? std::atol(stamp) : 0;
    return Status::FailedPrecondition(
        StrCat("snapshot chain ", prefix, " is locked by live pid ",
               holder > 0 ? static_cast<std::uint64_t>(holder) : 0));
  }
  // We hold the flock. A leftover pid stamp means the previous holder died
  // without a clean Release (the kernel dropped its flock at exit) — the
  // chain's in-flight record may be a retry candidate, so surface it.
  char stamp[32] = {};
  ssize_t n = ::pread(fd, stamp, sizeof(stamp) - 1, 0);
  long stale = n > 0 ? std::atol(stamp) : 0;
  adopted_stale_ = stale > 0 && stale != static_cast<long>(::getpid());
  std::string mine = StrCat(static_cast<std::uint64_t>(::getpid()), "\n");
  if (::ftruncate(fd, 0) != 0 ||
      ::pwrite(fd, mine.data(), mine.size(), 0) !=
          static_cast<ssize_t>(mine.size())) {
    ::close(fd);
    return Status::Internal(StrCat("cannot stamp chain lock ", path));
  }
  fd_ = fd;
  path_ = std::move(path);
  return Status::OK();
}

void SnapshotChainLock::Release() {
  if (fd_ < 0) return;
  // Clear the stamp before unlocking so the next acquirer can tell a clean
  // handover from a crashed holder. The file itself stays: unlinking would
  // let a racing acquirer lock a dead inode while a third creates a fresh
  // one, yielding two "holders".
  (void)::ftruncate(fd_, 0);
  (void)::flock(fd_, LOCK_UN);
  ::close(fd_);
  fd_ = -1;
  adopted_stale_ = false;
}

SnapshotChainWriter::SnapshotChainWriter(std::string prefix,
                                         SnapshotChainPolicy policy,
                                         SnapshotWriteOptions write)
    : prefix_(std::move(prefix)), policy_(policy), write_(write) {}

std::string SnapshotChainWriter::BasePath() const {
  return StrCat(prefix_, ".base");
}

std::string SnapshotChainWriter::DeltaPath(std::size_t k) const {
  return StrCat(prefix_, ".delta.", k);
}

Status SnapshotChainWriter::Save(
    const InternedWorkspace& ws,
    const std::vector<std::vector<std::uint64_t>>& consumer_cursors,
    std::string_view aux) {
  // Exclusive chains take the cross-process lock lazily, on the first
  // record actually written — constructing a writer is free and never
  // contends. A failed acquisition writes nothing.
  if (policy_.exclusive && !lock_.held()) {
    CCFP_RETURN_NOT_OK(lock_.Acquire(prefix_));
  }
  bool fold =
      !has_base_ || !ws.journal_enabled() || !ws.HasSnapshotBase() ||
      ws.SnapshotBaseId() != tip_id_ || deltas_ >= policy_.max_deltas ||
      (policy_.fold_delta_percent > 0 &&
       delta_bytes_ * 100 > base_bytes_ * policy_.fold_delta_percent);
  return fold ? SaveBase(ws, consumer_cursors, aux)
              : SaveDelta(ws, consumer_cursors, aux);
}

void SnapshotChainWriter::Adopt(const RestoredChain& chain) {
  has_base_ = true;
  deltas_ = chain.deltas_applied;
  tip_id_ = chain.restored.snapshot_id;
  base_bytes_ = chain.base_bytes;
  delta_bytes_ = chain.delta_bytes;
}

Status SnapshotChainWriter::SaveBase(
    const InternedWorkspace& ws,
    const std::vector<std::vector<std::uint64_t>>& cursors,
    std::string_view aux) {
  std::string bytes = SerializeWorkspace(ws, cursors, aux);
  std::uint64_t id = BlobId(bytes);
  std::uint64_t n_bytes = bytes.size();
  CCFP_RETURN_NOT_OK(WriteSnapshotBlob(std::move(bytes), BasePath(), write_));
  // Best-effort unlink of the previous chain's deltas. A crash before (or
  // during) this loop leaves delta files whose base link no longer
  // matches the new base's identity — loads treat them as end-of-chain,
  // so stale records can never be replayed onto the wrong base.
  for (std::size_t k = 1; std::remove(DeltaPath(k).c_str()) == 0; ++k) {
  }
  has_base_ = true;
  deltas_ = 0;
  tip_id_ = id;
  base_bytes_ = n_bytes;
  delta_bytes_ = 0;
  ws.MarkJournalPersisted(id);
  ws.EnableJournal();
  return Status::OK();
}

Status SnapshotChainWriter::SaveDelta(
    const InternedWorkspace& ws,
    const std::vector<std::vector<std::uint64_t>>& cursors,
    std::string_view aux) {
  CCFP_ASSIGN_OR_RETURN(std::string bytes,
                        SerializeWorkspaceDelta(ws, cursors, aux));
  std::uint64_t id = BlobId(bytes);
  std::uint64_t n_bytes = bytes.size();
  // A failed (or crashed) delta save keeps the journal: the retry below
  // rewrites the same chain position with a superset journal linked to
  // the same base, so nothing is lost and nothing is double-applied.
  CCFP_RETURN_NOT_OK(
      WriteSnapshotBlob(std::move(bytes), DeltaPath(deltas_ + 1), write_));
  ++deltas_;
  tip_id_ = id;
  delta_bytes_ += n_bytes;
  ws.MarkJournalPersisted(id);
  return Status::OK();
}

Result<RestoredChain> LoadSnapshotChain(SchemePtr scheme,
                                        const std::string& prefix) {
  std::string base_path = StrCat(prefix, ".base");
  CCFP_ASSIGN_OR_RETURN(std::string base_bytes, ReadFileRaw(base_path));
  CCFP_ASSIGN_OR_RETURN(RestoredWorkspace restored,
                        DeserializeWorkspace(scheme, base_bytes));
  RestoredChain chain{std::move(restored), 0, base_bytes.size(), 0};
  for (std::size_t k = 1;; ++k) {
    Result<std::string> delta_bytes = ReadFileRaw(StrCat(prefix, ".delta.", k));
    if (!delta_bytes.ok()) break;  // end of chain on disk
    Result<WorkspaceDeltaInfo> info =
        ApplyWorkspaceDelta(chain.restored.ws, *delta_bytes);
    if (!info.ok()) {
      if (info.status().code() == StatusCode::kFailedPrecondition) {
        // A stale record from before a fold: its base link does not match
        // the running tip. The chain ends here; the workspace is intact.
        break;
      }
      return info.status();
    }
    chain.restored.consumer_cursors = std::move(info->consumer_cursors);
    chain.restored.aux = std::move(info->aux);
    chain.restored.snapshot_id = info->id;
    chain.delta_bytes += delta_bytes->size();
    ++chain.deltas_applied;
  }
  // The restored workspace continues the chain: journal from the tip.
  chain.restored.ws.EnableJournal();
  return chain;
}

/// --- session classification records ---------------------------------------

namespace {

Status BadRecord(const std::string& what) {
  return Status::InvalidArgument(StrCat("session record: ", what));
}

void WriteAttrs(const std::vector<AttrId>& attrs, Writer& w) {
  w.U64(attrs.size());
  for (AttrId a : attrs) w.U32(a);
}

std::vector<AttrId> ReadAttrs(Reader& r) {
  std::uint64_t n = r.U64();
  if (!r.Fits(n, 4)) return {};
  std::vector<AttrId> attrs;
  attrs.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) attrs.push_back(r.U32());
  return attrs;
}

}  // namespace

std::string SerializeSessionRecord(const SessionClassificationRecord& record) {
  Writer w;
  for (char c : kSessionMagic) w.U8(static_cast<std::uint8_t>(c));
  w.U32(kSessionRecordVersion);
  w.U64(record.universe.size());
  for (std::size_t i = 0; i < record.universe.size(); ++i) {
    const Dependency& dep = record.universe[i];
    w.U8(static_cast<std::uint8_t>(dep.kind()));
    switch (dep.kind()) {
      case DependencyKind::kFd:
        w.U32(dep.fd().rel);
        WriteAttrs(dep.fd().lhs, w);
        WriteAttrs(dep.fd().rhs, w);
        break;
      case DependencyKind::kInd:
        w.U32(dep.ind().lhs_rel);
        WriteAttrs(dep.ind().lhs, w);
        w.U32(dep.ind().rhs_rel);
        WriteAttrs(dep.ind().rhs, w);
        break;
      case DependencyKind::kRd:
        w.U32(dep.rd().rel);
        WriteAttrs(dep.rd().lhs, w);
        WriteAttrs(dep.rd().rhs, w);
        break;
      case DependencyKind::kEmvd:
        w.U32(dep.emvd().rel);
        WriteAttrs(dep.emvd().x, w);
        WriteAttrs(dep.emvd().y, w);
        WriteAttrs(dep.emvd().z, w);
        break;
      case DependencyKind::kMvd:
        w.U32(dep.mvd().rel);
        WriteAttrs(dep.mvd().x, w);
        WriteAttrs(dep.mvd().y, w);
        break;
    }
    w.U8(record.expected[i] ? 1 : 0);
  }
  return w.Take();
}

Result<SessionClassificationRecord> DeserializeSessionRecord(
    const DatabaseScheme& scheme, std::string_view bytes) {
  Reader r(bytes);
  for (char c : kSessionMagic) {
    if (r.U8() != static_cast<std::uint8_t>(c)) return BadRecord("bad magic");
  }
  if (r.U32() != kSessionRecordVersion) {
    return BadRecord("unsupported version");
  }
  std::uint64_t n = r.U64();
  if (!r.Fits(n, 2)) return BadRecord("truncated");
  SessionClassificationRecord out;
  out.universe.reserve(static_cast<std::size_t>(n));
  out.expected.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint8_t kind = r.U8();
    std::optional<Dependency> dep;
    switch (kind) {
      case static_cast<std::uint8_t>(DependencyKind::kFd): {
        Fd fd;
        fd.rel = r.U32();
        fd.lhs = ReadAttrs(r);
        fd.rhs = ReadAttrs(r);
        dep = Dependency(std::move(fd));
        break;
      }
      case static_cast<std::uint8_t>(DependencyKind::kInd): {
        Ind ind;
        ind.lhs_rel = r.U32();
        ind.lhs = ReadAttrs(r);
        ind.rhs_rel = r.U32();
        ind.rhs = ReadAttrs(r);
        dep = Dependency(std::move(ind));
        break;
      }
      case static_cast<std::uint8_t>(DependencyKind::kRd): {
        Rd rd;
        rd.rel = r.U32();
        rd.lhs = ReadAttrs(r);
        rd.rhs = ReadAttrs(r);
        dep = Dependency(std::move(rd));
        break;
      }
      case static_cast<std::uint8_t>(DependencyKind::kEmvd): {
        Emvd emvd;
        emvd.rel = r.U32();
        emvd.x = ReadAttrs(r);
        emvd.y = ReadAttrs(r);
        emvd.z = ReadAttrs(r);
        dep = Dependency(std::move(emvd));
        break;
      }
      case static_cast<std::uint8_t>(DependencyKind::kMvd): {
        Mvd mvd;
        mvd.rel = r.U32();
        mvd.x = ReadAttrs(r);
        mvd.y = ReadAttrs(r);
        dep = Dependency(std::move(mvd));
        break;
      }
      default:
        return BadRecord("bad dependency kind");
    }
    std::uint8_t expected = r.U8();
    if (expected > 1) return BadRecord("bad verdict flag");
    if (!r.Ok()) return BadRecord("truncated");
    CCFP_RETURN_NOT_OK(Validate(scheme, *dep));
    out.universe.push_back(std::move(*dep));
    out.expected.push_back(expected != 0);
  }
  if (!r.Ok()) return BadRecord("truncated");
  if (!r.AtEnd()) return BadRecord("trailing bytes");
  return out;
}

}  // namespace ccfp
