#include "core/snapshot.h"

#include <cstddef>
#include <fstream>
#include <iterator>
#include <utility>

#include "util/fault.h"
#include "util/strings.h"

namespace ccfp {

namespace {

constexpr char kMagic[6] = {'C', 'C', 'F', 'P', 'W', 'S'};
constexpr std::size_t kHeaderBytes =
    sizeof(kMagic) + sizeof(std::uint32_t) + 2 * sizeof(std::uint64_t);

/// Little-endian, byte-at-a-time writer: portable and alias-free.
class Writer {
 public:
  void U8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) U8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void U64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) U8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void I64(std::int64_t v) { U64(static_cast<std::uint64_t>(v)); }
  void Str(const std::string& s) {
    U64(s.size());
    out_.append(s);
  }

  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked reader; every primitive either succeeds or trips the
/// sticky truncation flag (checked once by the caller via Ok()).
class Reader {
 public:
  explicit Reader(std::string_view in) : in_(in) {}

  std::uint8_t U8() {
    if (pos_ >= in_.size()) {
      truncated_ = true;
      return 0;
    }
    return static_cast<std::uint8_t>(in_[pos_++]);
  }
  std::uint32_t U32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{U8()} << (8 * i);
    return v;
  }
  std::uint64_t U64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{U8()} << (8 * i);
    return v;
  }
  std::int64_t I64() { return static_cast<std::int64_t>(U64()); }
  std::string Str() {
    std::uint64_t n = U64();
    if (n > in_.size() - pos_ || truncated_) {
      truncated_ = true;
      return {};
    }
    std::string s(in_.substr(pos_, static_cast<std::size_t>(n)));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }

  /// Guards a forthcoming sequence of `count` items of >= `item_bytes`
  /// each, so corrupt counts fail fast instead of driving huge loops.
  bool Fits(std::uint64_t count, std::uint64_t item_bytes) {
    if (truncated_ || count > (in_.size() - pos_) / item_bytes) {
      truncated_ = true;
      return false;
    }
    return true;
  }

  bool Ok() const { return !truncated_; }
  bool AtEnd() const { return pos_ == in_.size(); }

 private:
  std::string_view in_;
  std::size_t pos_ = 0;
  bool truncated_ = false;
};

std::uint64_t SchemeFingerprint(const DatabaseScheme& scheme) {
  return Fnv1a64(scheme.ToString());
}

Status Corrupt(const std::string& what) {
  return Status::InvalidArgument(StrCat("workspace snapshot: ", what));
}

}  // namespace

std::uint64_t Fnv1a64(std::string_view bytes) {
  std::uint64_t h = 14695981039346656037ULL;
  for (char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// The one friend of InternedWorkspace / ValueInterner / DenseUnionFind:
/// all field-level serialization lives here so the classes themselves
/// expose nothing extra.
class WorkspaceSnapshotAccess {
 public:
  static void SerializePayload(
      const InternedWorkspace& ws,
      const std::vector<std::vector<std::uint64_t>>& cursors, Writer& w) {
    w.U64(SchemeFingerprint(*ws.scheme_));

    // Interner: values in id order + the fresh-null watermark.
    const ValueInterner& in = ws.interner_;
    w.U64(in.values_.size());
    for (const Value& v : in.values_) {
      w.U8(static_cast<std::uint8_t>(v.kind()));
      if (v.is_str()) {
        w.Str(v.as_str());
      } else {
        w.I64(v.is_null() ? static_cast<std::int64_t>(v.null_id())
                          : v.as_int());
      }
    }
    w.U64(in.next_null_label_);

    // Union-find (sized to the interner by EnsureSize on every intern).
    const DenseUnionFind& uf = ws.uf_;
    w.U64(uf.parent_.size());
    for (ValueId p : uf.parent_) w.U32(p);
    for (std::uint32_t s : uf.size_) w.U32(s);
    for (ValueId r : uf.rep_) w.U32(r);

    // Relation stores: slots + alive flags + retained feed. The dedup
    // index is content-determined and rebuilt at load.
    w.U64(ws.rels_.size());
    for (RelId rel = 0; rel < ws.rels_.size(); ++rel) {
      const auto& rs = ws.rels_[rel];
      w.U64(rs.tuples.size());
      for (std::uint32_t i = 0; i < rs.tuples.size(); ++i) {
        for (ValueId id : rs.tuples[i]) w.U32(id);
        w.U8(rs.alive[i]);
      }
      w.U64(rs.feed_base);
      w.U64(rs.feed.size());
      for (const WorkspaceEvent& e : rs.feed) {
        w.U8(static_cast<std::uint8_t>(e.kind));
        w.U32(e.idx);
      }
    }

    // Occurrence lists, exactly: their order drives deterministic chase
    // worklists, so a rebuild is not equivalent.
    w.U64(ws.occurrences_.size());
    for (const auto& occ : ws.occurrences_) {
      w.U64(occ.size());
      for (const WorkspaceTupleRef& ref : occ) {
        w.U32(ref.rel);
        w.U32(ref.idx);
      }
    }

    // Compiled partitions: the warm-start capital. Group ids (including
    // tombstones) restore bit-for-bit so downstream consumers that cached
    // group ids stay correct.
    for (RelId rel = 0; rel < ws.rels_.size(); ++rel) {
      const auto& cache = ws.partitions_[rel];
      w.U64(cache.size());
      for (const auto& [cols, cp] : cache) {
        w.U64(cols.size());
        for (AttrId c : cols) w.U32(c);
        w.U32(cp.covered);
        const InternedWorkspace::Partition& p = cp.p;
        w.U64(p.group_of.size());
        for (std::uint32_t g : p.group_of) w.U32(g);
        w.U32(p.group_count);
        w.U32(p.alive_groups);
        w.U64(p.group_size.size());
        for (std::uint32_t s : p.group_size) w.U32(s);
        w.U64(p.key_to_group.size());
        for (const auto& [key, g] : p.key_to_group) {
          for (ValueId id : key) w.U32(id);
          w.U32(g);
        }
      }
    }

    // Substrate stats, so a restored session's counters are continuous.
    const InternedWorkspace::Stats& st = ws.stats_;
    w.U64(st.partitions_built);
    w.U64(st.partitions_extended);
    w.U64(st.partitions_reused);
    w.U64(st.partitions_invalidated);
    w.U64(st.partition_slots_repaired);
    w.U64(st.tuples_appended);
    w.U64(st.tuples_killed);
    w.U64(st.values_interned);
    w.U64(st.value_merges);
    w.U64(st.feed_compactions);
    w.U64(st.feed_events_compacted);

    // Caller-supplied consumer cursors (verifier feed positions, ...).
    w.U64(cursors.size());
    for (const auto& c : cursors) {
      w.U64(c.size());
      for (std::uint64_t s : c) w.U64(s);
    }
  }

  static Result<RestoredWorkspace> DeserializePayload(SchemePtr scheme,
                                                      std::string_view in) {
    Reader r(in);
    if (r.U64() != SchemeFingerprint(*scheme)) {
      return Corrupt("scheme fingerprint mismatch");
    }

    RestoredWorkspace out{InternedWorkspace(scheme), {}};
    InternedWorkspace& ws = out.ws;

    // Interner.
    std::uint64_t n_values = r.U64();
    if (!r.Fits(n_values, 9)) return Corrupt("value table truncated");
    ValueInterner& interner = ws.interner_;
    interner.values_.reserve(static_cast<std::size_t>(n_values));
    for (std::uint64_t i = 0; i < n_values; ++i) {
      std::uint8_t kind = r.U8();
      Value v;
      switch (kind) {
        case static_cast<std::uint8_t>(Value::Kind::kNull):
          v = Value::Null(static_cast<std::uint64_t>(r.I64()));
          break;
        case static_cast<std::uint8_t>(Value::Kind::kInt):
          v = Value::Int(r.I64());
          break;
        case static_cast<std::uint8_t>(Value::Kind::kStr):
          v = Value::Str(r.Str());
          break;
        default:
          return Corrupt("bad value kind");
      }
      if (!r.Ok()) return Corrupt("value table truncated");
      ValueId id = static_cast<ValueId>(interner.values_.size());
      interner.ids_.emplace(v, id);
      interner.values_.push_back(std::move(v));
    }
    if (interner.ids_.size() != interner.values_.size()) {
      return Corrupt("duplicate value in interner table");
    }
    interner.next_null_label_ = r.U64();

    // Union-find.
    std::uint64_t n_uf = r.U64();
    if (n_uf != n_values) return Corrupt("union-find size mismatch");
    if (!r.Fits(n_uf, 12)) return Corrupt("union-find truncated");
    DenseUnionFind& uf = ws.uf_;
    uf.parent_.reserve(n_uf);
    uf.size_.reserve(n_uf);
    uf.rep_.reserve(n_uf);
    for (std::uint64_t i = 0; i < n_uf; ++i) uf.parent_.push_back(r.U32());
    for (std::uint64_t i = 0; i < n_uf; ++i) uf.size_.push_back(r.U32());
    for (std::uint64_t i = 0; i < n_uf; ++i) uf.rep_.push_back(r.U32());
    for (std::uint64_t i = 0; i < n_uf; ++i) {
      if (uf.parent_[i] >= n_uf || uf.rep_[i] >= n_uf) {
        return Corrupt("union-find id out of range");
      }
    }

    // Relation stores.
    if (r.U64() != scheme->size()) return Corrupt("relation count mismatch");
    for (RelId rel = 0; rel < scheme->size(); ++rel) {
      auto& rs = ws.rels_[rel];
      std::uint64_t arity = scheme->relation(rel).arity();
      std::uint64_t n_slots = r.U64();
      if (!r.Fits(n_slots, arity * 4 + 1)) {
        return Corrupt("tuple store truncated");
      }
      rs.tuples.reserve(static_cast<std::size_t>(n_slots));
      rs.alive.reserve(static_cast<std::size_t>(n_slots));
      for (std::uint64_t i = 0; i < n_slots; ++i) {
        IdTuple t;
        t.reserve(static_cast<std::size_t>(arity));
        for (std::uint64_t c = 0; c < arity; ++c) {
          ValueId id = r.U32();
          if (id >= n_values) return Corrupt("tuple id out of range");
          t.push_back(id);
        }
        std::uint8_t alive = r.U8();
        if (alive > 1) return Corrupt("bad alive flag");
        ws.tuple_id_cells_ += t.size();
        rs.tuples.push_back(std::move(t));
        rs.alive.push_back(alive);
        if (alive) {
          ++rs.alive_count;
          ++ws.total_alive_;
        }
      }
      // Rebuild the dedup index over alive slots (content-determined).
      for (std::uint32_t i = 0; i < rs.tuples.size(); ++i) {
        if (!rs.alive[i]) continue;
        auto [it, inserted] = rs.dedup.emplace(rs.tuples[i], i);
        if (!inserted) return Corrupt("duplicate alive tuple");
      }
      rs.feed_base = r.U64();
      std::uint64_t n_events = r.U64();
      if (!r.Fits(n_events, 5)) return Corrupt("feed truncated");
      rs.feed.reserve(static_cast<std::size_t>(n_events));
      for (std::uint64_t i = 0; i < n_events; ++i) {
        std::uint8_t kind = r.U8();
        std::uint32_t idx = r.U32();
        if (kind > 2 || idx >= rs.tuples.size()) {
          return Corrupt("bad feed event");
        }
        rs.feed.push_back(WorkspaceEvent{
            static_cast<WorkspaceEventKind>(kind), idx});
      }
    }

    // Occurrences (exact).
    std::uint64_t n_occ = r.U64();
    if (n_occ != n_values) return Corrupt("occurrence table size mismatch");
    ws.occurrences_.resize(static_cast<std::size_t>(n_occ));
    for (std::uint64_t i = 0; i < n_occ; ++i) {
      std::uint64_t n_refs = r.U64();
      if (!r.Fits(n_refs, 8)) return Corrupt("occurrences truncated");
      auto& occ = ws.occurrences_[static_cast<std::size_t>(i)];
      occ.reserve(static_cast<std::size_t>(n_refs));
      for (std::uint64_t j = 0; j < n_refs; ++j) {
        WorkspaceTupleRef ref;
        ref.rel = r.U32();
        ref.idx = r.U32();
        if (ref.rel >= scheme->size() ||
            ref.idx >= ws.rels_[ref.rel].tuples.size()) {
          return Corrupt("occurrence ref out of range");
        }
        occ.push_back(ref);
      }
      ws.occurrence_refs_ += n_refs;
    }

    // Partitions.
    for (RelId rel = 0; rel < scheme->size(); ++rel) {
      std::uint64_t n_cached = r.U64();
      std::uint64_t arity = scheme->relation(rel).arity();
      if (!r.Fits(n_cached, 8)) return Corrupt("partition cache truncated");
      for (std::uint64_t k = 0; k < n_cached; ++k) {
        std::uint64_t n_cols = r.U64();
        if (n_cols > arity) return Corrupt("partition columns out of range");
        std::vector<AttrId> cols;
        cols.reserve(static_cast<std::size_t>(n_cols));
        for (std::uint64_t c = 0; c < n_cols; ++c) {
          AttrId a = r.U32();
          if (a >= arity) return Corrupt("partition column out of range");
          cols.push_back(a);
        }
        InternedWorkspace::CachedPartition cp;
        cp.covered = r.U32();
        if (cp.covered > ws.rels_[rel].tuples.size()) {
          return Corrupt("partition covers unknown slots");
        }
        InternedWorkspace::Partition& p = cp.p;
        std::uint64_t n_groupof = r.U64();
        if (n_groupof != cp.covered) {
          return Corrupt("partition group_of size mismatch");
        }
        if (!r.Fits(n_groupof, 4)) return Corrupt("partition truncated");
        p.group_of.reserve(static_cast<std::size_t>(n_groupof));
        for (std::uint64_t i = 0; i < n_groupof; ++i) {
          p.group_of.push_back(r.U32());
        }
        p.group_count = r.U32();
        p.alive_groups = r.U32();
        std::uint64_t n_sizes = r.U64();
        if (n_sizes != p.group_count) {
          return Corrupt("partition group_size mismatch");
        }
        if (!r.Fits(n_sizes, 4)) return Corrupt("partition truncated");
        p.group_size.reserve(static_cast<std::size_t>(n_sizes));
        for (std::uint64_t i = 0; i < n_sizes; ++i) {
          p.group_size.push_back(r.U32());
        }
        for (std::uint32_t g : p.group_of) {
          if (g != InternedWorkspace::kNoGroup && g >= p.group_count) {
            return Corrupt("partition group id out of range");
          }
        }
        std::uint64_t n_keys = r.U64();
        if (!r.Fits(n_keys, n_cols * 4 + 4)) {
          return Corrupt("partition keys truncated");
        }
        for (std::uint64_t i = 0; i < n_keys; ++i) {
          IdTuple key;
          key.reserve(static_cast<std::size_t>(n_cols));
          for (std::uint64_t c = 0; c < n_cols; ++c) key.push_back(r.U32());
          std::uint32_t g = r.U32();
          if (g >= p.group_count) {
            return Corrupt("partition key group out of range");
          }
          if (!p.key_to_group.emplace(std::move(key), g).second) {
            return Corrupt("duplicate partition key");
          }
        }
        if (!ws.partitions_[rel].emplace(std::move(cols), std::move(cp))
                 .second) {
          return Corrupt("duplicate partition column set");
        }
      }
    }

    // Stats.
    InternedWorkspace::Stats& st = ws.stats_;
    st.partitions_built = r.U64();
    st.partitions_extended = r.U64();
    st.partitions_reused = r.U64();
    st.partitions_invalidated = r.U64();
    st.partition_slots_repaired = r.U64();
    st.tuples_appended = r.U64();
    st.tuples_killed = r.U64();
    st.values_interned = r.U64();
    st.value_merges = r.U64();
    st.feed_compactions = r.U64();
    st.feed_events_compacted = r.U64();

    // Consumer cursors.
    std::uint64_t n_cursors = r.U64();
    if (!r.Fits(n_cursors, 8)) return Corrupt("cursors truncated");
    out.consumer_cursors.reserve(static_cast<std::size_t>(n_cursors));
    for (std::uint64_t i = 0; i < n_cursors; ++i) {
      std::uint64_t n = r.U64();
      if (!r.Fits(n, 8)) return Corrupt("cursors truncated");
      std::vector<std::uint64_t> c;
      c.reserve(static_cast<std::size_t>(n));
      for (std::uint64_t j = 0; j < n; ++j) c.push_back(r.U64());
      out.consumer_cursors.push_back(std::move(c));
    }

    if (!r.Ok()) return Corrupt("payload truncated");
    if (!r.AtEnd()) return Corrupt("trailing bytes after payload");
    return out;
  }
};

std::string SerializeWorkspace(
    const InternedWorkspace& ws,
    const std::vector<std::vector<std::uint64_t>>& consumer_cursors) {
  Writer payload_writer;
  WorkspaceSnapshotAccess::SerializePayload(ws, consumer_cursors,
                                            payload_writer);
  std::string payload = payload_writer.Take();

  Writer w;
  for (char c : kMagic) w.U8(static_cast<std::uint8_t>(c));
  w.U32(kWorkspaceSnapshotVersion);
  w.U64(payload.size());
  w.U64(Fnv1a64(payload));
  std::string out = w.Take();
  out += payload;
  return out;
}

Result<RestoredWorkspace> DeserializeWorkspace(SchemePtr scheme,
                                               std::string_view bytes) {
  if (bytes.size() < kHeaderBytes) return Corrupt("shorter than header");
  for (std::size_t i = 0; i < sizeof(kMagic); ++i) {
    if (bytes[i] != kMagic[i]) return Corrupt("bad magic");
  }
  Reader header(bytes.substr(sizeof(kMagic), kHeaderBytes - sizeof(kMagic)));
  std::uint32_t version = header.U32();
  if (version != kWorkspaceSnapshotVersion) {
    return Corrupt(StrCat("unsupported version ", version));
  }
  std::uint64_t payload_size = header.U64();
  std::uint64_t checksum = header.U64();
  std::string_view payload = bytes.substr(kHeaderBytes);
  if (payload.size() != payload_size) {
    return Corrupt("payload size mismatch");
  }
  if (Fnv1a64(payload) != checksum) return Corrupt("checksum mismatch");
  return WorkspaceSnapshotAccess::DeserializePayload(std::move(scheme),
                                                     payload);
}

Status SaveWorkspaceSnapshot(
    const InternedWorkspace& ws, const std::string& path,
    const std::vector<std::vector<std::uint64_t>>& consumer_cursors) {
  std::string bytes = SerializeWorkspace(ws, consumer_cursors);
  if (FaultInjector* fi = InstalledFaultInjector()) {
    if (fi->ShouldFail(FaultSite::kSnapshotCorrupt)) fi->CorruptBytes(bytes);
    if (fi->ShouldFail(FaultSite::kSnapshotTruncate)) {
      fi->TruncateBytes(bytes);
    }
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::NotFound(StrCat("cannot open ", path));
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) return Status::Internal(StrCat("short write to ", path));
  return Status::OK();
}

Result<RestoredWorkspace> LoadWorkspaceSnapshot(SchemePtr scheme,
                                                const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound(StrCat("cannot open ", path));
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (!in && !in.eof()) return Status::Internal(StrCat("read error ", path));
  return DeserializeWorkspace(std::move(scheme), bytes);
}

}  // namespace ccfp
