#ifndef CCFP_CORE_PARSER_H_
#define CCFP_CORE_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "core/database.h"
#include "core/dependency.h"
#include "util/status.h"

namespace ccfp {

/// Parses one dependency in ccfp's text syntax, resolving names against
/// `scheme`:
///
///   FD    R: A, B -> C         (empty lhs allowed: "R: -> C")
///   MVD   R: A ->> B
///   EMVD  R: A ->> B | C       (empty X allowed)
///   IND   R[A, B] <= S[C, D]
///   RD    R[A, B = C, D]
///
/// Attribute lists are comma-separated; whitespace is insignificant.
Result<Dependency> ParseDependency(const DatabaseScheme& scheme,
                                   std::string_view text);

/// Parses a newline-separated list of dependencies. Blank lines and lines
/// starting with '#' are skipped. Stops at the first error, reporting the
/// line number.
Result<std::vector<Dependency>> ParseDependencies(
    const DatabaseScheme& scheme, std::string_view text);

/// Parses one tuple-insertion line "R(v1, v2, ...)" and adds it to `db`.
/// Values: integers parse as Int, `_n<k>` as labeled null #k, everything
/// else (optionally double-quoted) as Str.
Status ParseAndInsertTuple(Database& db, std::string_view line);

/// Parses a whole database: one "R(...)" line per tuple, '#' comments and
/// blank lines skipped.
Result<Database> ParseDatabase(SchemePtr scheme, std::string_view text);

}  // namespace ccfp

#endif  // CCFP_CORE_PARSER_H_
