#ifndef CCFP_CORE_DEPENDENCY_H_
#define CCFP_CORE_DEPENDENCY_H_

#include <compare>
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "core/schema.h"
#include "util/status.h"

namespace ccfp {

/// A functional dependency R: X -> Y. Following the paper, X and Y are
/// *sequences* of distinct attributes (so FDs and INDs can be interrelated).
/// X may be empty (paper Section 6: "an FD with the empty set as left-hand
/// side means that the right-hand side entries are constants").
struct Fd {
  RelId rel = 0;
  std::vector<AttrId> lhs;
  std::vector<AttrId> rhs;

  friend bool operator==(const Fd&, const Fd&) = default;
  friend std::strong_ordering operator<=>(const Fd&, const Fd&) = default;
};

/// An inclusion dependency R[X] <= S[Y] with |X| = |Y|, each side a sequence
/// of distinct attributes. R and S may coincide.
struct Ind {
  RelId lhs_rel = 0;
  std::vector<AttrId> lhs;
  RelId rhs_rel = 0;
  std::vector<AttrId> rhs;

  /// Width of the IND (k for a k-ary IND in the paper's terminology).
  std::size_t width() const { return lhs.size(); }

  friend bool operator==(const Ind&, const Ind&) = default;
  friend std::strong_ordering operator<=>(const Ind&, const Ind&) = default;
};

/// A repeating dependency R[X = Y] with |X| = |Y| (Section 4): every tuple t
/// of r has t[X] = t[Y]. RDs arise from the interaction of FDs and INDs
/// (Proposition 4.3) and are not expressible by FDs + INDs alone.
struct Rd {
  RelId rel = 0;
  std::vector<AttrId> lhs;
  std::vector<AttrId> rhs;

  friend bool operator==(const Rd&, const Rd&) = default;
  friend std::strong_ordering operator<=>(const Rd&, const Rd&) = default;
};

/// An embedded multivalued dependency R: X ->> Y | Z (Section 5), with X, Y,
/// Z treated as attribute *sets* (stored as sorted sequences), Y and Z
/// disjoint: whenever t1[X] = t2[X] there is t3 with t3[XY] = t1[XY] and
/// t3[XZ] = t2[XZ].
struct Emvd {
  RelId rel = 0;
  std::vector<AttrId> x;
  std::vector<AttrId> y;
  std::vector<AttrId> z;

  friend bool operator==(const Emvd&, const Emvd&) = default;
  friend std::strong_ordering operator<=>(const Emvd&, const Emvd&) = default;
};

/// A (full) multivalued dependency R: X ->> Y: the EMVD X ->> Y | Z where Z
/// is everything outside X union Y.
struct Mvd {
  RelId rel = 0;
  std::vector<AttrId> x;
  std::vector<AttrId> y;

  friend bool operator==(const Mvd&, const Mvd&) = default;
  friend std::strong_ordering operator<=>(const Mvd&, const Mvd&) = default;
};

enum class DependencyKind : std::uint8_t {
  kFd = 0,
  kInd = 1,
  kRd = 2,
  kEmvd = 3,
  kMvd = 4,
};

const char* DependencyKindToString(DependencyKind kind);

/// A sentence about databases: one of the five dependency classes above.
/// Value type with total order (kind-major), hashing, and printing, so
/// dependency sets can be stored canonically.
class Dependency {
 public:
  Dependency(Fd fd) : dep_(std::move(fd)) {}      // NOLINT(runtime/explicit)
  Dependency(Ind ind) : dep_(std::move(ind)) {}   // NOLINT
  Dependency(Rd rd) : dep_(std::move(rd)) {}      // NOLINT
  Dependency(Emvd e) : dep_(std::move(e)) {}      // NOLINT
  Dependency(Mvd m) : dep_(std::move(m)) {}       // NOLINT

  DependencyKind kind() const {
    return static_cast<DependencyKind>(dep_.index());
  }
  bool is_fd() const { return kind() == DependencyKind::kFd; }
  bool is_ind() const { return kind() == DependencyKind::kInd; }
  bool is_rd() const { return kind() == DependencyKind::kRd; }
  bool is_emvd() const { return kind() == DependencyKind::kEmvd; }
  bool is_mvd() const { return kind() == DependencyKind::kMvd; }

  const Fd& fd() const { return std::get<Fd>(dep_); }
  const Ind& ind() const { return std::get<Ind>(dep_); }
  const Rd& rd() const { return std::get<Rd>(dep_); }
  const Emvd& emvd() const { return std::get<Emvd>(dep_); }
  const Mvd& mvd() const { return std::get<Mvd>(dep_); }

  /// Renders with attribute names from `scheme`, e.g. "R: A -> B",
  /// "R[A, B] <= S[C, D]", "R[A = B]", "R: A ->> B | C".
  std::string ToString(const DatabaseScheme& scheme) const;

  std::size_t Hash() const;

  friend bool operator==(const Dependency&, const Dependency&) = default;
  friend std::strong_ordering operator<=>(const Dependency&,
                                          const Dependency&) = default;

 private:
  std::variant<Fd, Ind, Rd, Emvd, Mvd> dep_;
};

struct DependencyHash {
  std::size_t operator()(const Dependency& d) const { return d.Hash(); }
};

/// --- Validation -----------------------------------------------------------

/// Checks rel/attr indices, distinctness, and length constraints.
Status Validate(const DatabaseScheme& scheme, const Fd& fd);
Status Validate(const DatabaseScheme& scheme, const Ind& ind);
Status Validate(const DatabaseScheme& scheme, const Rd& rd);
Status Validate(const DatabaseScheme& scheme, const Emvd& emvd);
Status Validate(const DatabaseScheme& scheme, const Mvd& mvd);
Status Validate(const DatabaseScheme& scheme, const Dependency& dep);

/// --- Triviality -----------------------------------------------------------
/// A dependency is trivial iff it holds in every database over its scheme.

/// FD trivial iff rhs (as a set) is contained in lhs.
bool IsTrivial(const Fd& fd);
/// IND trivial iff both sides are the identical expression R[X] (IND1).
bool IsTrivial(const Ind& ind);
/// RD R[X = Y] trivial iff X and Y are elementwise equal.
bool IsTrivial(const Rd& rd);
/// EMVD trivial iff Y or Z is contained in X, or Y or Z is empty.
bool IsTrivial(const Emvd& emvd);
/// MVD trivial iff Y is contained in X or X union Y covers the relation
/// (needs the scheme to know the full attribute set).
bool IsTrivial(const DatabaseScheme& scheme, const Mvd& mvd);
bool IsTrivial(const DatabaseScheme& scheme, const Dependency& dep);

/// --- Convenience constructors by attribute name ---------------------------
/// CHECK-fail on unknown names; intended for program-literal inputs (tests,
/// examples, paper constructions). Use the parser for untrusted input.

Fd MakeFd(const DatabaseScheme& scheme, const std::string& rel,
          const std::vector<std::string>& lhs,
          const std::vector<std::string>& rhs);
Ind MakeInd(const DatabaseScheme& scheme, const std::string& lhs_rel,
            const std::vector<std::string>& lhs, const std::string& rhs_rel,
            const std::vector<std::string>& rhs);
Rd MakeRd(const DatabaseScheme& scheme, const std::string& rel,
          const std::vector<std::string>& lhs,
          const std::vector<std::string>& rhs);
Emvd MakeEmvd(const DatabaseScheme& scheme, const std::string& rel,
              const std::vector<std::string>& x,
              const std::vector<std::string>& y,
              const std::vector<std::string>& z);
Mvd MakeMvd(const DatabaseScheme& scheme, const std::string& rel,
            const std::vector<std::string>& x,
            const std::vector<std::string>& y);

/// Resolves attribute names to ids within `rel`; CHECK-fails on unknown.
std::vector<AttrId> AttrIds(const DatabaseScheme& scheme, RelId rel,
                            const std::vector<std::string>& names);

/// `base` followed by the members of `extra` not already present — the
/// paper's XY / XZ attribute sets as de-duplicated sequences. Shared by
/// every EMVD checker so all engines probe identical column sequences.
std::vector<AttrId> AppendDistinctAttrs(const std::vector<AttrId>& base,
                                        const std::vector<AttrId>& extra);

/// Z = attrs(rel) - X - Y: the complement that turns the full MVD
/// X ->> Y into the EMVD X ->> Y | Z.
std::vector<AttrId> MvdComplement(const DatabaseScheme& scheme,
                                  const Mvd& mvd);

/// Renders an attribute id sequence as "A, B, C".
std::string AttrNames(const DatabaseScheme& scheme, RelId rel,
                      const std::vector<AttrId>& attrs);

}  // namespace ccfp

#endif  // CCFP_CORE_DEPENDENCY_H_
