#include "core/relation.h"

#include <algorithm>

#include "util/check.h"
#include "util/strings.h"

namespace ccfp {

bool Relation::Insert(Tuple t) {
  CCFP_CHECK_MSG(t.size() == arity_, "tuple arity mismatch");
  if (index_.count(t) > 0) return false;
  index_.insert(t);
  tuples_.push_back(std::move(t));
  return true;
}

std::vector<Tuple> Relation::Project(const std::vector<AttrId>& cols) const {
  std::vector<Tuple> out;
  std::unordered_set<Tuple, TupleHash> seen;
  for (const Tuple& t : tuples_) {
    Tuple p = ProjectTuple(t, cols);
    if (seen.insert(p).second) out.push_back(std::move(p));
  }
  return out;
}

std::unordered_set<Tuple, TupleHash> Relation::ProjectSet(
    const std::vector<AttrId>& cols) const {
  std::unordered_set<Tuple, TupleHash> out;
  for (const Tuple& t : tuples_) out.insert(ProjectTuple(t, cols));
  return out;
}

std::size_t Relation::CountDistinct(const std::vector<AttrId>& cols) const {
  return ProjectSet(cols).size();
}

bool Relation::operator==(const Relation& other) const {
  if (arity_ != other.arity_ || size() != other.size()) return false;
  for (const Tuple& t : tuples_) {
    if (!other.Contains(t)) return false;
  }
  return true;
}

std::string Relation::ToString() const {
  std::string out;
  for (const Tuple& t : tuples_) {
    out += "  ";
    out += TupleToString(t);
    out += "\n";
  }
  return out;
}

}  // namespace ccfp
