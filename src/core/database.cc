#include "core/database.h"

#include "util/strings.h"

namespace ccfp {

Database::Database(SchemePtr scheme) : scheme_(std::move(scheme)) {
  relations_.reserve(scheme_->size());
  for (const RelationScheme& r : scheme_->relations()) {
    relations_.emplace_back(r.arity());
  }
}

Status Database::InsertByName(const std::string& rel_name, Tuple t) {
  CCFP_ASSIGN_OR_RETURN(RelId rel, scheme_->FindRelation(rel_name));
  if (t.size() != scheme_->relation(rel).arity()) {
    return Status::InvalidArgument(
        StrCat("tuple arity ", t.size(), " does not match ",
               scheme_->relation(rel).ToString()));
  }
  relations_[rel].Insert(std::move(t));
  return Status::OK();
}

std::size_t Database::TotalTuples() const {
  std::size_t n = 0;
  for (const Relation& r : relations_) n += r.size();
  return n;
}

bool Database::operator==(const Database& other) const {
  if (relations_.size() != other.relations_.size()) return false;
  for (std::size_t i = 0; i < relations_.size(); ++i) {
    if (!(relations_[i] == other.relations_[i])) return false;
  }
  return true;
}

std::string Database::ToString() const {
  std::string out;
  for (RelId rel = 0; rel < relations_.size(); ++rel) {
    out += scheme_->relation(rel).ToString();
    out += ":\n";
    out += relations_[rel].ToString();
  }
  return out;
}

}  // namespace ccfp
