#ifndef CCFP_UTIL_RNG_H_
#define CCFP_UTIL_RNG_H_

#include <cstdint>

namespace ccfp {

/// Deterministic 64-bit RNG (splitmix64). Tests and benchmarks use this
/// instead of std::mt19937 so that random workloads are identical across
/// platforms and standard-library versions.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound); bound must be positive.
  std::uint64_t Below(std::uint64_t bound) { return Next() % bound; }

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t Between(std::uint64_t lo, std::uint64_t hi) {
    return lo + Below(hi - lo + 1);
  }

  /// Bernoulli with probability num/den.
  bool Chance(std::uint64_t num, std::uint64_t den) {
    return Below(den) < num;
  }

 private:
  std::uint64_t state_;
};

}  // namespace ccfp

#endif  // CCFP_UTIL_RNG_H_
