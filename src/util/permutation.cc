#include "util/permutation.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"
#include "util/strings.h"

namespace ccfp {

namespace {

// lcm on 128-bit values with overflow CHECK.
unsigned __int128 Lcm128(unsigned __int128 a, unsigned __int128 b) {
  if (a == 0 || b == 0) return 0;
  // std::gcd is not defined for __int128 on all toolchains; do it manually.
  unsigned __int128 x = a, y = b;
  while (y != 0) {
    unsigned __int128 t = x % y;
    x = y;
    y = t;
  }
  unsigned __int128 g = x;
  unsigned __int128 a_over_g = a / g;
  // Overflow check: a/g * b must fit in 128 bits.
  unsigned __int128 max128 = ~static_cast<unsigned __int128>(0);
  CCFP_CHECK_MSG(b == 0 || a_over_g <= max128 / b,
                 "permutation order exceeds 128 bits");
  return a_over_g * b;
}

}  // namespace

Permutation Permutation::Identity(std::size_t m) {
  std::vector<std::uint32_t> map(m);
  std::iota(map.begin(), map.end(), 0U);
  return Permutation(std::move(map));
}

Result<Permutation> Permutation::Create(std::vector<std::uint32_t> map) {
  std::vector<bool> seen(map.size(), false);
  for (std::uint32_t v : map) {
    if (v >= map.size() || seen[v]) {
      return Status::InvalidArgument("not a permutation of {0..m-1}");
    }
    seen[v] = true;
  }
  return Permutation(std::move(map));
}

Permutation Permutation::Transposition(std::size_t m, std::size_t i) {
  CCFP_CHECK(i < m);
  Permutation p = Identity(m);
  std::swap(p.map_[0], p.map_[i]);
  return p;
}

Result<Permutation> Permutation::FromCycleLengths(
    std::size_t m, const std::vector<std::uint64_t>& cycle_lengths) {
  std::uint64_t total = 0;
  for (std::uint64_t len : cycle_lengths) {
    if (len == 0) return Status::InvalidArgument("zero-length cycle");
    total += len;
  }
  if (total > m) {
    return Status::InvalidArgument(
        StrCat("cycle lengths sum to ", total, " > m = ", m));
  }
  std::vector<std::uint32_t> map(m);
  std::iota(map.begin(), map.end(), 0U);
  std::uint32_t next = 0;
  for (std::uint64_t len : cycle_lengths) {
    // Cycle (next, next+1, ..., next+len-1).
    for (std::uint64_t j = 0; j < len; ++j) {
      map[next + j] = next + static_cast<std::uint32_t>((j + 1) % len);
    }
    next += static_cast<std::uint32_t>(len);
  }
  return Permutation(std::move(map));
}

Permutation Permutation::Compose(const Permutation& g) const {
  CCFP_CHECK(size() == g.size());
  std::vector<std::uint32_t> map(size());
  for (std::size_t i = 0; i < size(); ++i) map[i] = map_[g.map_[i]];
  return Permutation(std::move(map));
}

Permutation Permutation::Inverse() const {
  std::vector<std::uint32_t> map(size());
  for (std::size_t i = 0; i < size(); ++i) map[map_[i]] = i;
  return Permutation(std::move(map));
}

Permutation Permutation::Power(std::uint64_t k) const {
  Permutation result = Identity(size());
  Permutation base = *this;
  while (k > 0) {
    if (k & 1) result = result.Compose(base);
    base = base.Compose(base);
    k >>= 1;
  }
  return result;
}

bool Permutation::IsIdentity() const {
  for (std::size_t i = 0; i < size(); ++i) {
    if (map_[i] != i) return false;
  }
  return true;
}

std::vector<std::uint64_t> Permutation::CycleLengths() const {
  std::vector<bool> seen(size(), false);
  std::vector<std::uint64_t> lengths;
  for (std::size_t i = 0; i < size(); ++i) {
    if (seen[i]) continue;
    std::uint64_t len = 0;
    std::size_t j = i;
    while (!seen[j]) {
      seen[j] = true;
      j = map_[j];
      ++len;
    }
    lengths.push_back(len);
  }
  std::sort(lengths.rbegin(), lengths.rend());
  return lengths;
}

unsigned __int128 Permutation::Order() const {
  unsigned __int128 order = 1;
  for (std::uint64_t len : CycleLengths()) order = Lcm128(order, len);
  return order;
}

Result<std::uint64_t> Permutation::Order64() const {
  unsigned __int128 order = Order();
  if (order > ~static_cast<std::uint64_t>(0)) {
    return Status::ResourceExhausted("permutation order exceeds 64 bits");
  }
  return static_cast<std::uint64_t>(order);
}

std::string Permutation::ToString() const {
  std::vector<bool> seen(size(), false);
  std::string out;
  for (std::size_t i = 0; i < size(); ++i) {
    if (seen[i] || map_[i] == i) {
      seen[i] = true;
      continue;
    }
    out += "(";
    std::size_t j = i;
    bool first = true;
    while (!seen[j]) {
      if (!first) out += " ";
      first = false;
      out += std::to_string(j);
      seen[j] = true;
      j = map_[j];
    }
    out += ")";
  }
  if (out.empty()) out = "()";
  return out;
}

std::string Uint128ToString(unsigned __int128 value) {
  if (value == 0) return "0";
  std::string digits;
  while (value > 0) {
    digits.push_back(static_cast<char>('0' + static_cast<int>(value % 10)));
    value /= 10;
  }
  std::reverse(digits.begin(), digits.end());
  return digits;
}

}  // namespace ccfp
