#ifndef CCFP_UTIL_CHECK_H_
#define CCFP_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Internal invariant checking. A failed CCFP_CHECK indicates a bug inside
/// ccfp (never a user error — user errors surface as Status). Checks stay
/// enabled in release builds: the library's workloads are dominated by
/// algorithmic cost, not by branch overhead.
#define CCFP_CHECK(cond)                                                   \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "ccfp: CHECK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (false)

#define CCFP_CHECK_MSG(cond, msg)                                          \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "ccfp: CHECK failed at %s:%d: %s (%s)\n",       \
                   __FILE__, __LINE__, #cond, msg);                        \
      std::abort();                                                        \
    }                                                                      \
  } while (false)

#endif  // CCFP_UTIL_CHECK_H_
