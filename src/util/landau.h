#ifndef CCFP_UTIL_LANDAU_H_
#define CCFP_UTIL_LANDAU_H_

#include <cstdint>
#include <vector>

#include "util/permutation.h"
#include "util/status.h"

namespace ccfp {

/// Landau's function f(m): the maximum order of a permutation of m points
/// (the maximum lcm over partitions of m). Section 3 of the paper uses
/// Landau's asymptotic log f(m) ~ sqrt(m log m) to exhibit a family of
/// single-IND implication instances that force the decision procedure of
/// Corollary 3.2 through f(m) - 1 expression steps.
///
/// Exact up to 128 bits; supported for m <= kLandauMaxM.
inline constexpr std::size_t kLandauMaxM = 1024;

/// Exact value of Landau's function for m points.
unsigned __int128 LandauF(std::size_t m);

/// The partition of (at most) m into prime-power parts whose lcm is f(m),
/// in decreasing order. Sum of parts may be < m; pad with fixed points.
std::vector<std::uint64_t> LandauPartition(std::size_t m);

/// A permutation of m points achieving order f(m) ("Landau obtains a
/// permutation of big order by composing it of relatively prime cycles").
Permutation MaxOrderPermutation(std::size_t m);

}  // namespace ccfp

#endif  // CCFP_UTIL_LANDAU_H_
