#ifndef CCFP_UTIL_STRINGS_H_
#define CCFP_UTIL_STRINGS_H_

#include <cstddef>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace ccfp {

/// Joins the elements of `parts` with `sep` ("A", "B" -> "A,B").
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// Joins `items` with `sep`, rendering each element with `fn`.
template <typename Container, typename Fn>
std::string JoinMapped(const Container& items, std::string_view sep, Fn fn) {
  std::string out;
  bool first = true;
  for (const auto& item : items) {
    if (!first) out += sep;
    first = false;
    out += fn(item);
  }
  return out;
}

/// Streams all arguments into one string (a minimal StrCat).
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  ((os << args), ...);
  return os.str();
}

/// Splits `text` on `sep`, trimming ASCII whitespace from each piece.
/// Empty pieces are kept (so "a,,b" yields three pieces).
std::vector<std::string> SplitAndTrim(std::string_view text, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view text);

/// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

}  // namespace ccfp

#endif  // CCFP_UTIL_STRINGS_H_
