#include "util/strings.h"

#include <cctype>

namespace ccfp {

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  return JoinMapped(parts, sep, [](const std::string& s) { return s; });
}

std::string_view TrimWhitespace(std::string_view text) {
  std::size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  std::size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::vector<std::string> SplitAndTrim(std::string_view text, char sep) {
  std::vector<std::string> pieces;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      pieces.emplace_back(TrimWhitespace(text.substr(start, i - start)));
      start = i + 1;
    }
  }
  return pieces;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

}  // namespace ccfp
