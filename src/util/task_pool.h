#ifndef CCFP_UTIL_TASK_POOL_H_
#define CCFP_UTIL_TASK_POOL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "util/budget.h"

namespace ccfp {

/// A small work-stealing thread pool for the fan-out hot paths (bounded
/// search subtrees, verifier catch-up shards, chase probe rounds).
///
/// Ownership model: the pool owns its worker threads; it never owns the
/// data a task touches. Callers fork work with `ParallelFor` or a
/// `TaskGroup` and join before the borrowed data goes out of scope — no
/// task outlives the call that spawned it.
///
/// A pool constructed with `threads` provides `threads` executors total:
/// `threads - 1` dedicated workers plus the caller itself, which helps run
/// queued tasks while it waits. `TaskPool(1)` therefore spawns no threads
/// at all and degenerates to exact sequential execution on the caller —
/// the property tests use that to push the parallel code paths through the
/// differential suites unchanged.
///
/// Scheduling: each worker keeps a deque; owners push and pop at the
/// front (LIFO, cache-warm), thieves steal from the back (FIFO, coarse).
/// Determinism is never provided by the scheduler — consumers that feed a
/// verdict must reduce results in task-index order on the joining thread
/// (see docs/parallelism.md for the contract).
class TaskPool {
 public:
  using Task = std::function<void()>;

  /// `threads` executors total (clamped to >= 1); spawns `threads - 1`
  /// worker threads.
  explicit TaskPool(unsigned threads);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Total executors (dedicated workers + the joining caller).
  unsigned threads() const { return static_cast<unsigned>(workers_.size()) + 1; }

  /// Runs `body(i)` for every i in [0, n). Blocks until all complete; the
  /// caller executes tasks too. Any executor may run any index — bodies
  /// must only write state they own (per-index slots are the usual shape).
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& body);

 private:
  friend class TaskGroup;

  struct Worker {
    std::mutex mu;
    std::deque<Task> tasks;
  };

  /// Enqueues one task (front of the submitting worker's own deque, or
  /// round-robin onto some worker's back from an outside thread).
  void Submit(Task task);
  /// Dequeues and runs one task if any is available. Callable from any
  /// thread (the Wait help loop uses it). Returns false when idle.
  bool RunOne();
  void WorkerLoop(unsigned self);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::mutex wake_mu_;
  /// Signalled on submit (work available) and on group-task completion
  /// (waiters re-check their pending counts).
  std::condition_variable wake_cv_;
  std::atomic<std::uint64_t> queued_{0};
  std::atomic<bool> stop_{false};
  std::atomic<unsigned> next_worker_{0};
};

/// Fork-join scope: `Spawn` hands closures to the pool, `Wait` blocks (and
/// helps execute) until every spawned closure has finished. Destruction
/// waits, so borrowed references in tasks cannot dangle.
class TaskGroup {
 public:
  explicit TaskGroup(TaskPool* pool) : pool_(pool) {}
  ~TaskGroup() { Wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void Spawn(std::function<void()> fn);
  void Wait();

 private:
  TaskPool* pool_;
  std::atomic<std::uint64_t> pending_{0};
};

/// Thread-safe budget meter shared by every task of one fan-out. Work is
/// charged through relaxed atomic counters against ceilings checkpointed
/// once at construction; the first worker to cross any ceiling (or to call
/// MarkExhausted) flips one sticky flag that all siblings poll at their
/// next charge, so the pool drains and the caller surfaces exactly one
/// ResourceExhausted — never a wrong verdict, because consumers only
/// publish results from tasks that ran to completion.
///
/// The deadline is sampled every kDeadlineStride charges (a clock read per
/// charge would dominate the fine-grained counters).
///
/// Meters can be *chained*: a meter constructed with a parent reports
/// exhausted once either it or any ancestor is, so one outer cancellation
/// (a race's first decisive verdict) drains a whole family of per-probe
/// meters without the canceller having to know them — the refutation
/// portfolio hangs one child meter per ladder rung off the race's cancel
/// token this way. Charges never propagate upward; the chain carries the
/// sticky flag only.
class SharedBudgetMeter {
 public:
  /// `step_ceiling` is whichever Budget axis the consumer meters through
  /// the shared counter (candidates for bounded search, events for the
  /// verifier); the deadline always comes from `budget`. `parent` (not
  /// owned; may be null) chains this meter under an outer one: parent
  /// exhaustion is exhaustion here too.
  SharedBudgetMeter(const Budget& budget, std::uint64_t step_ceiling,
                    const SharedBudgetMeter* parent = nullptr)
      : deadline_(budget.deadline),
        step_ceiling_(step_ceiling),
        parent_(parent) {}

  /// Charges `n` units. Returns false once exhausted (by any worker, or
  /// anywhere up the parent chain).
  bool Charge(std::uint64_t n = 1) {
    if (exhausted()) return false;
    std::uint64_t used = steps_.fetch_add(n, std::memory_order_relaxed) + n;
    if (used > step_ceiling_) {
      exhausted_.store(true, std::memory_order_relaxed);
      return false;
    }
    if (deadline_ && (used / kDeadlineStride) != ((used - n) / kDeadlineStride) &&
        std::chrono::steady_clock::now() >= *deadline_) {
      exhausted_.store(true, std::memory_order_relaxed);
      return false;
    }
    return true;
  }

  void MarkExhausted() { exhausted_.store(true, std::memory_order_relaxed); }
  bool exhausted() const {
    return exhausted_.load(std::memory_order_relaxed) ||
           (parent_ != nullptr && parent_->exhausted());
  }
  std::uint64_t used() const { return steps_.load(std::memory_order_relaxed); }

 private:
  static constexpr std::uint64_t kDeadlineStride = 64;

  std::optional<std::chrono::steady_clock::time_point> deadline_;
  std::uint64_t step_ceiling_;
  const SharedBudgetMeter* parent_ = nullptr;
  std::atomic<std::uint64_t> steps_{0};
  std::atomic<bool> exhausted_{false};
};

}  // namespace ccfp

#endif  // CCFP_UTIL_TASK_POOL_H_
