#ifndef CCFP_UTIL_PERMUTATION_H_
#define CCFP_UTIL_PERMUTATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace ccfp {

/// A permutation of {0, 1, ..., m-1}, represented in one-line notation:
/// `map()[i]` is the image of i. Section 3 of the paper associates with each
/// permutation gamma of the attribute positions the IND
/// R[A_1..A_m] <= R[A_gamma(1)..A_gamma(m)]; this class supplies the group
/// algebra those examples need (composition, inverse, order, cycle type).
class Permutation {
 public:
  /// The empty permutation (on 0 points); useful as a placeholder in
  /// aggregates before a real permutation is assigned.
  Permutation() = default;

  /// Identity permutation on m points.
  static Permutation Identity(std::size_t m);

  /// Validates that `map` is a bijection on {0..m-1}.
  static Result<Permutation> Create(std::vector<std::uint32_t> map);

  /// The transposition (0 i) on m points; the paper's generators gamma_i.
  static Permutation Transposition(std::size_t m, std::size_t i);

  /// Builds a permutation from disjoint cycle lengths (plus fixed points to
  /// pad to m): cycle lengths (3,2) with m=6 gives (0 1 2)(3 4)(5).
  static Result<Permutation> FromCycleLengths(
      std::size_t m, const std::vector<std::uint64_t>& cycle_lengths);

  std::size_t size() const { return map_.size(); }
  const std::vector<std::uint32_t>& map() const { return map_; }
  std::uint32_t operator()(std::uint32_t i) const { return map_[i]; }

  /// Function composition: (*this).Compose(g) maps i to this(g(i)).
  Permutation Compose(const Permutation& g) const;

  Permutation Inverse() const;

  /// this^k for k >= 0 (binary exponentiation on the group).
  Permutation Power(std::uint64_t k) const;

  bool IsIdentity() const;

  /// Lengths of the disjoint cycles, in decreasing order; fixed points are
  /// reported as cycles of length 1.
  std::vector<std::uint64_t> CycleLengths() const;

  /// The order of the permutation (least k >= 1 with this^k = id), i.e., the
  /// lcm of the cycle lengths. Exact up to 128 bits; CHECK-fails past that
  /// (Landau's function stays below 2^128 for every m this library accepts).
  unsigned __int128 Order() const;

  /// Order as a uint64, or an error if it does not fit.
  Result<std::uint64_t> Order64() const;

  /// Cycle notation, e.g. "(0 1 2)(3 4)".
  std::string ToString() const;

  bool operator==(const Permutation& other) const {
    return map_ == other.map_;
  }

 private:
  explicit Permutation(std::vector<std::uint32_t> map) : map_(std::move(map)) {}

  std::vector<std::uint32_t> map_;
};

/// Formats an unsigned 128-bit integer in decimal (no standard operator<<).
std::string Uint128ToString(unsigned __int128 value);

}  // namespace ccfp

#endif  // CCFP_UTIL_PERMUTATION_H_
