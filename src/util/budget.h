#ifndef CCFP_UTIL_BUDGET_H_
#define CCFP_UTIL_BUDGET_H_

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace ccfp {

/// How much of a Budget an engine (or one solver stage) actually consumed.
/// The counters mirror Budget's resource axes; engines fill in the ones
/// they meter and leave the rest at zero.
struct BudgetUse {
  std::uint64_t steps = 0;        ///< rule firings / merges / candidates
  std::uint64_t tuples = 0;       ///< tuples materialized or held alive
  std::uint64_t expressions = 0;  ///< BFS nodes / derived sentences

  BudgetUse& Add(const BudgetUse& other) {
    steps += other.steps;
    tuples += other.tuples;
    expressions += other.expressions;
    return *this;
  }

  /// "steps=12 tuples=3 expressions=0".
  std::string ToString() const;
};

/// The one budget vocabulary shared by every implication engine. The
/// implication problem for FDs and INDs together is undecidable, and even
/// the decidable fragments are PSPACE-hard, so every entry point is
/// budgeted — but before this type each engine grew its own `max_*` knob
/// (ChaseOptions::max_steps/max_tuples, IndDecisionOptions::max_expressions,
/// BoundedSearchOptions::max_candidates, MixedDerivation's
/// max_dependencies) with incompatible defaults and outcome encodings.
/// A Budget names the three resource axes those knobs actually meter, plus
/// an optional wall-clock deadline:
///
///   * `steps`       — rule firings: chase merges/generations, bounded-
///                     search candidate evaluations;
///   * `tuples`      — materialized tuples a chase may hold alive;
///   * `expressions` — graph nodes: IND-BFS expressions, derived sentences
///                     of the saturation engine;
///   * `bytes`       — a ceiling on *live* logical bytes (workspace +
///                     watcher state, metered via util/memory_budget.h).
///                     Unlike the counters above it is not consumed: it
///                     bounds resident state, so Split() shares it
///                     unchanged, like the deadline. Engines check it at
///                     periodic checkpoints and return ResourceExhausted
///                     with resumable state when live bytes exceed it.
///   * `deadline`    — a steady-clock instant after which multi-stage
///                     drivers (the ImplicationSolver) stop launching new
///                     stages and engines that meter it (WorkspaceChase
///                     FD-fixpoint inner loops) stop mid-round.
///
/// Exhausting a Budget is never an error and never aborts: engines report
/// ResourceExhausted / Verdict::kUnknown and leave resumable state where
/// they support it (WorkspaceChase).
struct Budget {
  std::uint64_t steps = 1ull << 20;
  std::uint64_t tuples = 1ull << 18;
  std::uint64_t expressions = 1ull << 22;
  std::uint64_t bytes = UINT64_MAX;
  std::optional<std::chrono::steady_clock::time_point> deadline;

  /// The default budget: matches the historical per-engine defaults.
  static Budget Default() { return Budget{}; }

  /// Effectively unbounded counters (UINT64_MAX), no deadline. For callers
  /// that know their instance is small and want exactness or bust.
  static Budget Unlimited();

  /// A deliberately tiny budget, for exercising exhaustion paths.
  static Budget Tiny();

  /// Default counters plus a deadline `limit` from now.
  static Budget WithTimeLimit(std::chrono::milliseconds limit);

  /// Default counters plus a ceiling of `limit` live logical bytes.
  static Budget WithByteCeiling(std::uint64_t limit);

  /// Staged allocation: an even share of every counter for one of `parts`
  /// sequential stages; the deadline and the byte ceiling — limits on
  /// shared state, not consumable rates — pass through unchanged.
  ///
  /// Drained-share semantics: a *nonzero* counter splits to at least 1
  /// (so a stage handed a sliver can always fire once), but a counter
  /// already at 0 splits to 0 — a fully drained budget must hand every
  /// stage a drained share, not resurrect one step per stage. Engines
  /// treat a 0 counter as immediate ResourceExhausted.
  Budget Split(unsigned parts) const;

  /// Ladder allocation for a portfolio of *priority-ordered* probes
  /// ("rungs"): rung i declares the `steps` it could consume at most
  /// (`costs[i]`, e.g. a bounded search's candidate-space upper bound),
  /// and shares are granted greedily in rung order — rung 0 is funded up
  /// to its full cost before rung 1 sees a single step, and so on until
  /// the budget drains. Two consequences the refutation portfolio builds
  /// on (search/portfolio.h):
  ///
  ///   * rung 0 behaves exactly as if it had the whole budget — its share
  ///     is min(costs[0], steps), and a probe can never consume more than
  ///     its declared cost — so prefixing a ladder onto a previously
  ///     single-shape stage changes nothing about that shape's outcome;
  ///   * the allocation is computed up front from (steps, costs) alone,
  ///     so parallel rungs racing on a pool still run under the same
  ///     deterministic per-rung ceilings as a sequential sweep.
  ///
  /// Rungs past the drained point get a 0-step share (drained stays
  /// drained — callers skip them, counted, rather than run them). The
  /// `tuples` / `expressions` counters, the byte ceiling, and the
  /// deadline pass through unchanged: the ladder meters its probes
  /// through `steps` alone, and the others are limits each rung checks
  /// independently against shared state.
  std::vector<Budget> SplitLadder(
      const std::vector<std::uint64_t>& costs) const;

  /// True iff a deadline is set and has passed.
  bool Expired() const {
    return deadline.has_value() &&
           std::chrono::steady_clock::now() >= *deadline;
  }

  /// "steps=1048576 tuples=262144 expressions=4194304 deadline=none".
  std::string ToString() const;
};

}  // namespace ccfp

#endif  // CCFP_UTIL_BUDGET_H_
