#ifndef CCFP_UTIL_MEMORY_BUDGET_H_
#define CCFP_UTIL_MEMORY_BUDGET_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace ccfp {

/// The shared byte-accounting vocabulary for long-lived sessions.
///
/// Every resident structure of the id-space substrate — the workspace's
/// tuple stores, dedup indexes, occurrence lists, change feeds, and cached
/// partitions; the verifier's trackers, composed counters, and watcher
/// state; the witness cache's pinned databases — reports its heap
/// footprint through one `MemoryBreakdown`, so engines can enforce
/// `Budget::bytes` (a *ceiling on live state*, not a consumable rate) and
/// tests can pin which component grows.
///
/// The numbers are *logical* bytes: element counts times element sizes
/// plus fixed per-node overheads for node-based containers. They
/// deliberately ignore allocator slack and vector over-reservation, so
/// they are stable across platforms and monotone in the data actually
/// held — the property the ceiling checks and the soak suite need. Peak
/// RSS (bench/reporter.h) is the physical complement.
struct MemoryBreakdown {
  std::uint64_t tuple_store = 0;   ///< flat id payloads + slot metadata
  std::uint64_t dedup_index = 0;   ///< per-relation duplicate tables
  std::uint64_t occurrences = 0;   ///< per-value-id occurrence lists
  std::uint64_t feed = 0;          ///< retained change-feed events
  std::uint64_t journal = 0;       ///< retained mutation-journal entries
  std::uint64_t partitions = 0;    ///< cached projection partitions
  std::uint64_t interner = 0;      ///< value table + id map + union-find
  std::uint64_t watchers = 0;      ///< verifier trackers/counters/watchers
  std::uint64_t other = 0;         ///< engine-local state (worklists, ...)

  std::uint64_t Total() const {
    return tuple_store + dedup_index + occurrences + feed + journal +
           partitions + interner + watchers + other;
  }

  MemoryBreakdown& Add(const MemoryBreakdown& o) {
    tuple_store += o.tuple_store;
    dedup_index += o.dedup_index;
    occurrences += o.occurrences;
    feed += o.feed;
    journal += o.journal;
    partitions += o.partitions;
    interner += o.interner;
    watchers += o.watchers;
    other += o.other;
    return *this;
  }

  /// "tuple_store=120 dedup=80 ... total=512".
  std::string ToString() const;
};

namespace memory {

/// Approximate per-node bookkeeping overhead of a node-based hash
/// container (bucket pointer + node header), used uniformly so estimates
/// stay platform-stable.
inline constexpr std::uint64_t kHashNodeOverhead = 4 * sizeof(void*);

/// Logical bytes of a vector's *held* elements (size, not capacity — see
/// the MemoryBreakdown doc for why).
template <typename T>
std::uint64_t VectorBytes(const std::vector<T>& v) {
  return static_cast<std::uint64_t>(v.size()) * sizeof(T);
}

/// Logical bytes of an unordered_map whose keys are id-tuples (vectors):
/// per entry, the inline pair plus the key's payload plus node overhead.
template <typename K, typename V, typename H>
std::uint64_t IdKeyMapBytes(const std::unordered_map<K, V, H>& m,
                            std::uint64_t key_payload_bytes) {
  return static_cast<std::uint64_t>(m.size()) *
         (sizeof(std::pair<K, V>) + key_payload_bytes + kHashNodeOverhead);
}

/// Same, for an unordered_set of id-tuples.
template <typename K, typename H>
std::uint64_t IdKeySetBytes(const std::unordered_set<K, H>& s,
                            std::uint64_t key_payload_bytes) {
  return static_cast<std::uint64_t>(s.size()) *
         (sizeof(K) + key_payload_bytes + kHashNodeOverhead);
}

}  // namespace memory

}  // namespace ccfp

#endif  // CCFP_UTIL_MEMORY_BUDGET_H_
