#ifndef CCFP_UTIL_STATUS_H_
#define CCFP_UTIL_STATUS_H_

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace ccfp {

/// Error category for a failed operation. Mirrors the small set of failure
/// modes this library can actually produce; no catch-all "unknown".
enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,   ///< malformed scheme/dependency/parse input
  kNotFound,          ///< named relation/attribute does not exist
  kFailedPrecondition,///< operation called on an object in the wrong state
  kResourceExhausted, ///< step/tuple budget exceeded (e.g., unbounded chase)
  kUnimplemented,     ///< feature intentionally not provided (documented)
  kInternal,          ///< invariant violation (a bug in ccfp)
};

/// Returns the canonical spelling of `code` (e.g., "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// Arrow/RocksDB-style status object. ccfp does not throw exceptions across
/// API boundaries; fallible operations return `Status` or `Result<T>`.
///
/// The OK status carries no allocation; error statuses carry a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering: "OK" or "InvalidArgument: <msg>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// A value-or-error holder, analogous to arrow::Result. A `Result` is either
/// a valid T (status().ok()) or an error Status; accessing the value of an
/// error Result aborts (this is a programming error, not a runtime error).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value; mirrors arrow::Result.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfError();
    return *value_;
  }
  T& value() & {
    AbortIfError();
    return *value_;
  }
  T&& value() && {
    AbortIfError();
    return *std::move(value_);
  }

  /// Moves the value out; usable once.
  T MoveValue() {
    AbortIfError();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfError() const;

  std::optional<T> value_;
  Status status_;
};

namespace internal {
[[noreturn]] void DieOnBadResultAccess(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::AbortIfError() const {
  if (!value_.has_value()) internal::DieOnBadResultAccess(status_);
}

/// Propagates an error Status from a fallible expression.
#define CCFP_RETURN_NOT_OK(expr)                  \
  do {                                            \
    ::ccfp::Status _ccfp_st = (expr);             \
    if (!_ccfp_st.ok()) return _ccfp_st;          \
  } while (false)

/// Assigns the value of a Result expression to `lhs`, or propagates the error.
#define CCFP_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).MoveValue();

#define CCFP_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define CCFP_ASSIGN_OR_RETURN_NAME(x, y) CCFP_ASSIGN_OR_RETURN_CONCAT(x, y)
#define CCFP_ASSIGN_OR_RETURN(lhs, expr) \
  CCFP_ASSIGN_OR_RETURN_IMPL(            \
      CCFP_ASSIGN_OR_RETURN_NAME(_ccfp_result_, __LINE__), lhs, expr)

}  // namespace ccfp

#endif  // CCFP_UTIL_STATUS_H_
