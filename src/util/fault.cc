#include "util/fault.h"

namespace ccfp {

namespace {

std::atomic<FaultInjector*> g_injector{nullptr};

}  // namespace

const char* FaultSiteToString(FaultSite site) {
  switch (site) {
    case FaultSite::kArenaAppend:
      return "ArenaAppend";
    case FaultSite::kWatcherGrow:
      return "WatcherGrow";
    case FaultSite::kEngineExhaust:
      return "EngineExhaust";
    case FaultSite::kSnapshotCorrupt:
      return "SnapshotCorrupt";
    case FaultSite::kSnapshotTruncate:
      return "SnapshotTruncate";
    case FaultSite::kSnapshotFsync:
      return "SnapshotFsync";
    case FaultSite::kSnapshotRename:
      return "SnapshotRename";
  }
  return "?";
}

void FaultInjector::Arm(FaultSite site, std::uint64_t countdown) {
  std::lock_guard<std::mutex> lock(mu_);
  Slot& s = slots_[Index(site)];
  s.periodic = false;
  s.remaining = countdown;
  s.armed.store(true, std::memory_order_release);
}

void FaultInjector::ArmEvery(FaultSite site, std::uint64_t period) {
  std::lock_guard<std::mutex> lock(mu_);
  Slot& s = slots_[Index(site)];
  s.periodic = true;
  s.period = period == 0 ? 1 : period;
  s.remaining = s.period - 1;
  s.armed.store(true, std::memory_order_release);
}

void FaultInjector::Disarm(FaultSite site) {
  std::lock_guard<std::mutex> lock(mu_);
  slots_[Index(site)].armed.store(false, std::memory_order_release);
}

bool FaultInjector::ShouldFail(FaultSite site) {
  Slot& s = slots_[Index(site)];
  s.probes.fetch_add(1, std::memory_order_relaxed);
  if (!s.armed.load(std::memory_order_acquire)) return false;
  // Armed: advance the schedule under the lock so exactly one concurrent
  // prober observes the firing probe.
  std::lock_guard<std::mutex> lock(mu_);
  if (!s.armed.load(std::memory_order_relaxed)) return false;
  if (s.remaining > 0) {
    --s.remaining;
    return false;
  }
  s.fired.fetch_add(1, std::memory_order_relaxed);
  if (s.periodic) {
    s.remaining = s.period - 1;
  } else {
    s.armed.store(false, std::memory_order_release);
  }
  return true;
}

std::uint64_t FaultInjector::NextRandom() {
  // SplitMix64 (same generator as util/rng.h, re-stated here so the
  // injector has no dependency on test-only headers). Serialized so
  // concurrent consumers each draw a distinct value.
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

void FaultInjector::CorruptBytes(std::string& bytes) {
  if (bytes.empty()) return;
  std::uint64_t r = NextRandom();
  std::size_t pos = static_cast<std::size_t>(r % bytes.size());
  bytes[pos] = static_cast<char>(bytes[pos] ^ (1u << ((r >> 32) % 8)));
}

void FaultInjector::TruncateBytes(std::string& bytes) {
  if (bytes.empty()) return;
  bytes.resize(static_cast<std::size_t>(NextRandom() % bytes.size()));
}

FaultInjector* InstalledFaultInjector() {
  return g_injector.load(std::memory_order_acquire);
}

ScopedFaultInjector::ScopedFaultInjector(FaultInjector* injector)
    : previous_(g_injector.load(std::memory_order_acquire)) {
  g_injector.store(injector, std::memory_order_release);
}

ScopedFaultInjector::~ScopedFaultInjector() {
  g_injector.store(previous_, std::memory_order_release);
}

}  // namespace ccfp
