#include "util/fault.h"

namespace ccfp {

namespace {

FaultInjector* g_injector = nullptr;

}  // namespace

const char* FaultSiteToString(FaultSite site) {
  switch (site) {
    case FaultSite::kArenaAppend:
      return "ArenaAppend";
    case FaultSite::kWatcherGrow:
      return "WatcherGrow";
    case FaultSite::kEngineExhaust:
      return "EngineExhaust";
    case FaultSite::kSnapshotCorrupt:
      return "SnapshotCorrupt";
    case FaultSite::kSnapshotTruncate:
      return "SnapshotTruncate";
    case FaultSite::kSnapshotFsync:
      return "SnapshotFsync";
    case FaultSite::kSnapshotRename:
      return "SnapshotRename";
  }
  return "?";
}

void FaultInjector::Arm(FaultSite site, std::uint64_t countdown) {
  Slot& s = slots_[Index(site)];
  s.armed = true;
  s.periodic = false;
  s.remaining = countdown;
}

void FaultInjector::ArmEvery(FaultSite site, std::uint64_t period) {
  Slot& s = slots_[Index(site)];
  s.armed = true;
  s.periodic = true;
  s.period = period == 0 ? 1 : period;
  s.remaining = s.period - 1;
}

void FaultInjector::Disarm(FaultSite site) {
  slots_[Index(site)].armed = false;
}

bool FaultInjector::ShouldFail(FaultSite site) {
  Slot& s = slots_[Index(site)];
  ++s.probes;
  if (!s.armed) return false;
  if (s.remaining > 0) {
    --s.remaining;
    return false;
  }
  ++s.fired;
  if (s.periodic) {
    s.remaining = s.period - 1;
  } else {
    s.armed = false;
  }
  return true;
}

std::uint64_t FaultInjector::NextRandom() {
  // SplitMix64 (same generator as util/rng.h, re-stated here so the
  // injector has no dependency on test-only headers).
  std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

void FaultInjector::CorruptBytes(std::string& bytes) {
  if (bytes.empty()) return;
  std::uint64_t r = NextRandom();
  std::size_t pos = static_cast<std::size_t>(r % bytes.size());
  bytes[pos] = static_cast<char>(bytes[pos] ^ (1u << ((r >> 32) % 8)));
}

void FaultInjector::TruncateBytes(std::string& bytes) {
  if (bytes.empty()) return;
  bytes.resize(static_cast<std::size_t>(NextRandom() % bytes.size()));
}

FaultInjector* InstalledFaultInjector() { return g_injector; }

ScopedFaultInjector::ScopedFaultInjector(FaultInjector* injector)
    : previous_(g_injector) {
  g_injector = injector;
}

ScopedFaultInjector::~ScopedFaultInjector() { g_injector = previous_; }

}  // namespace ccfp
