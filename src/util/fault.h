#ifndef CCFP_UTIL_FAULT_H_
#define CCFP_UTIL_FAULT_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

namespace ccfp {

/// Where a deterministic fault can be injected. Each site is a named
/// decision point on a recovery path the test suites must be able to force:
/// the library consults the installed injector there and, when it fires,
/// behaves exactly as if the real resource had run out (or the real bytes
/// had been damaged) — same status codes, same resumability contract.
enum class FaultSite : std::uint8_t {
  /// Tuple-store admission (InternedWorkspace::Append): the arena refuses
  /// to grow. Surfaces as ResourceExhausted from the engine driving the
  /// append (the workspace itself never throws or aborts).
  kArenaAppend = 0,
  /// Watcher/counter growth (IncrementalVerifier budgeted CatchUp).
  kWatcherGrow = 1,
  /// Mid-engine budget exhaustion (WorkspaceChase inner loops, bounded
  /// search, solver stages): forces the ResourceExhausted/kUnknown path at
  /// a seeded instant even when the genuine budget is plentiful.
  kEngineExhaust = 2,
  /// Snapshot serialization: the written bytes are corrupted (one seeded
  /// byte flipped), so the restore path must detect and reject them.
  kSnapshotCorrupt = 3,
  /// Snapshot serialization: the written bytes are truncated at a seeded
  /// offset — the partial-write crash a restore must survive.
  kSnapshotTruncate = 4,
  /// Atomic snapshot write (core/snapshot.h SnapshotWriter): the process
  /// dies before the temp file is fsynced — the temp file may be torn,
  /// the target path still holds the previous snapshot.
  kSnapshotFsync = 5,
  /// Atomic snapshot write: the process dies immediately *after* the
  /// rename lands — the target path holds the complete new snapshot, but
  /// the saver never observed success.
  kSnapshotRename = 6,
};

inline constexpr std::size_t kFaultSiteCount = 7;

const char* FaultSiteToString(FaultSite site);

/// A seeded, deterministic fault source. Tests arm one or more sites with
/// a probe countdown; the library consults `ShouldFail` at the matching
/// decision points. Replaying the same seed + arming yields byte-identical
/// failure schedules, so every recovery path is reproducible under ctest
/// and the sanitizers.
///
/// The injector is process-global: install one with ScopedFaultInjector
/// for the duration of a test body. When none is installed every
/// `FaultFires` check is one atomic pointer load. Probes are thread-safe
/// (parallel engine workers hit the same sites concurrently): counters are
/// atomics, and schedule state is advanced under a per-injector mutex, so
/// a one-shot site fires on exactly one thread.
class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed) : state_(seed ^ kGolden) {}

  /// Arms `site` to fire exactly once, after `countdown` more probes reach
  /// it (0 = the very next probe). Re-arming replaces the schedule.
  void Arm(FaultSite site, std::uint64_t countdown);

  /// Arms `site` to fire every `period`-th probe, forever (period >= 1).
  void ArmEvery(FaultSite site, std::uint64_t period);

  /// Disarms `site`.
  void Disarm(FaultSite site);

  /// True iff the site is armed and its schedule says "now". Advances the
  /// site's probe counter either way.
  bool ShouldFail(FaultSite site);

  /// Probes seen / faults fired at `site` so far (test assertions).
  std::uint64_t probes(FaultSite site) const {
    return slots_[Index(site)].probes.load(std::memory_order_relaxed);
  }
  std::uint64_t fired(FaultSite site) const {
    return slots_[Index(site)].fired.load(std::memory_order_relaxed);
  }

  /// Deterministically damages a serialized blob: flips one bit of one
  /// seeded byte. No-op on an empty blob.
  void CorruptBytes(std::string& bytes);

  /// Deterministically truncates a serialized blob to a seeded strictly
  /// shorter length. No-op on an empty blob.
  void TruncateBytes(std::string& bytes);

  /// Next value of the injector's own SplitMix64 stream (schedule jitter,
  /// corruption offsets).
  std::uint64_t NextRandom();

 private:
  static constexpr std::uint64_t kGolden = 0x9E3779B97F4A7C15ULL;

  struct Slot {
    /// Fast-path gate: unarmed probes take one relaxed load + one relaxed
    /// increment and never touch the mutex.
    std::atomic<bool> armed{false};
    bool periodic = false;
    std::uint64_t remaining = 0;  ///< probes until the next firing
    std::uint64_t period = 0;
    std::atomic<std::uint64_t> probes{0};
    std::atomic<std::uint64_t> fired{0};
  };

  static std::size_t Index(FaultSite site) {
    return static_cast<std::size_t>(site);
  }

  /// Guards schedule mutation (arming and countdown advance) and the
  /// SplitMix64 stream.
  std::mutex mu_;
  std::uint64_t state_;
  std::array<Slot, kFaultSiteCount> slots_;
};

/// The currently installed injector, or nullptr (the fast path).
FaultInjector* InstalledFaultInjector();

/// True iff an injector is installed and fires at `site` on this probe.
/// The one-liner every instrumented decision point calls.
inline bool FaultFires(FaultSite site) {
  FaultInjector* fi = InstalledFaultInjector();
  return fi != nullptr && fi->ShouldFail(site);
}

/// Installs `injector` for this scope (restores the previous one — usually
/// nullptr — on destruction). Non-copyable, non-movable; nest freely.
class ScopedFaultInjector {
 public:
  explicit ScopedFaultInjector(FaultInjector* injector);
  ~ScopedFaultInjector();

  ScopedFaultInjector(const ScopedFaultInjector&) = delete;
  ScopedFaultInjector& operator=(const ScopedFaultInjector&) = delete;

 private:
  FaultInjector* previous_;
};

}  // namespace ccfp

#endif  // CCFP_UTIL_FAULT_H_
