#include "util/task_pool.h"

namespace ccfp {

namespace {

/// Which worker deque the current thread owns, per pool. A plain
/// thread_local pair suffices because a thread belongs to at most one pool
/// (workers are pool-owned; outside callers own no deque).
thread_local const TaskPool* tls_pool = nullptr;
thread_local unsigned tls_worker = 0;

}  // namespace

TaskPool::TaskPool(unsigned threads) {
  unsigned workers = threads <= 1 ? 0 : threads - 1;
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

TaskPool::~TaskPool() {
  stop_.store(true, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    wake_cv_.notify_all();
  }
  for (std::thread& t : threads_) t.join();
}

void TaskPool::Submit(Task task) {
  if (workers_.empty()) {
    // Degenerate sequential pool: run inline on the caller.
    task();
    return;
  }
  unsigned target;
  if (tls_pool == this) {
    target = tls_worker;
    std::lock_guard<std::mutex> lock(workers_[target]->mu);
    workers_[target]->tasks.push_front(std::move(task));
  } else {
    target = next_worker_.fetch_add(1, std::memory_order_relaxed) %
             static_cast<unsigned>(workers_.size());
    std::lock_guard<std::mutex> lock(workers_[target]->mu);
    workers_[target]->tasks.push_back(std::move(task));
  }
  queued_.fetch_add(1, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    wake_cv_.notify_all();
  }
}

bool TaskPool::RunOne() {
  if (queued_.load(std::memory_order_acquire) == 0) return false;
  Task task;
  unsigned n = static_cast<unsigned>(workers_.size());
  unsigned start = (tls_pool == this) ? tls_worker : 0;
  for (unsigned probe = 0; probe < n && !task; ++probe) {
    unsigned w = (start + probe) % n;
    Worker& worker = *workers_[w];
    std::lock_guard<std::mutex> lock(worker.mu);
    if (worker.tasks.empty()) continue;
    if (w == start && tls_pool == this) {
      // Owner: pop the freshest (front) for cache warmth.
      task = std::move(worker.tasks.front());
      worker.tasks.pop_front();
    } else {
      // Thief: steal the coldest (back) to take a coarse chunk.
      task = std::move(worker.tasks.back());
      worker.tasks.pop_back();
    }
  }
  if (!task) return false;
  queued_.fetch_sub(1, std::memory_order_relaxed);
  task();
  return true;
}

void TaskPool::WorkerLoop(unsigned self) {
  tls_pool = this;
  tls_worker = self;
  while (!stop_.load(std::memory_order_relaxed)) {
    if (RunOne()) continue;
    std::unique_lock<std::mutex> lock(wake_mu_);
    wake_cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_relaxed) ||
             queued_.load(std::memory_order_acquire) > 0;
    });
  }
  tls_pool = nullptr;
}

void TaskPool::ParallelFor(std::size_t n,
                           const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (n == 1 || workers_.empty()) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  TaskGroup group(this);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    group.Spawn([&body, i] { body(i); });
  }
  body(n - 1);  // the caller takes one index before helping drain the rest
  group.Wait();
}

void TaskGroup::Spawn(std::function<void()> fn) {
  pending_.fetch_add(1, std::memory_order_relaxed);
  pool_->Submit([this, fn = std::move(fn)] {
    fn();
    // The joiner may observe pending_ == 0 and destroy the (usually
    // stack-allocated) group the instant the decrement below lands, so
    // everything needed afterwards must be read BEFORE it. The pool
    // itself outlives the task: ~TaskPool joins this worker, and a
    // caller helping in Wait holds the pool alive by construction.
    TaskPool* pool = pool_;
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last task out: wake the joiner (it may be asleep in Wait).
      std::lock_guard<std::mutex> lock(pool->wake_mu_);
      pool->wake_cv_.notify_all();
    }
  });
}

void TaskGroup::Wait() {
  while (pending_.load(std::memory_order_acquire) != 0) {
    if (pool_->RunOne()) continue;
    // Nothing stealable: our remaining tasks are mid-flight on workers.
    std::unique_lock<std::mutex> lock(pool_->wake_mu_);
    pool_->wake_cv_.wait_for(lock, std::chrono::milliseconds(1), [this] {
      return pending_.load(std::memory_order_acquire) == 0 ||
             pool_->queued_.load(std::memory_order_acquire) > 0;
    });
  }
}

}  // namespace ccfp
