#include "util/memory_budget.h"

#include "util/strings.h"

namespace ccfp {

std::string MemoryBreakdown::ToString() const {
  return StrCat("tuple_store=", tuple_store, " dedup=", dedup_index,
                " occurrences=", occurrences, " feed=", feed,
                " journal=", journal, " partitions=", partitions,
                " interner=", interner, " watchers=", watchers,
                " other=", other, " total=", Total());
}

}  // namespace ccfp
