#include "util/landau.h"

#include <algorithm>

#include "util/check.h"

namespace ccfp {

namespace {

std::vector<std::uint32_t> PrimesUpTo(std::size_t n) {
  std::vector<bool> sieve(n + 1, true);
  std::vector<std::uint32_t> primes;
  for (std::size_t p = 2; p <= n; ++p) {
    if (!sieve[p]) continue;
    primes.push_back(static_cast<std::uint32_t>(p));
    for (std::size_t q = p * p; q <= n; q += p) sieve[q] = false;
  }
  return primes;
}

struct LandauTable {
  // best[j]: maximum lcm achievable with prime-power parts summing to <= j,
  // all parts powers of distinct primes.
  std::vector<unsigned __int128> best;
  // choice[i][j]: the prime power of primes[i] used at budget j in the
  // optimal solution considering primes[0..i] (0 = prime unused).
  std::vector<std::vector<std::uint64_t>> choice;
  std::vector<std::uint32_t> primes;
};

// Knapsack over primes: each prime p contributes at most one part p^k
// (cost p^k, gain factor p^k, parts of distinct primes are coprime so the
// lcm is the product).
LandauTable BuildTable(std::size_t m) {
  LandauTable t;
  t.primes = PrimesUpTo(std::max<std::size_t>(m, 2));
  t.best.assign(m + 1, 1);
  t.choice.assign(t.primes.size(), std::vector<std::uint64_t>(m + 1, 0));
  for (std::size_t i = 0; i < t.primes.size(); ++i) {
    std::uint32_t p = t.primes[i];
    std::vector<unsigned __int128> prev = t.best;
    for (std::uint64_t pk = p; pk <= m; pk *= p) {
      for (std::size_t j = m; j >= pk; --j) {
        unsigned __int128 candidate = prev[j - pk] * pk;
        if (candidate > t.best[j]) {
          t.best[j] = candidate;
          t.choice[i][j] = pk;
        }
      }
      if (pk > m / p) break;  // next power would overflow the budget anyway
    }
    // Make best[] monotone in the budget so "sum <= j" is honored.
    for (std::size_t j = 1; j <= m; ++j) {
      if (t.best[j] < t.best[j - 1]) {
        t.best[j] = t.best[j - 1];
        t.choice[i][j] = 0;  // inherited solution uses budget j-1
      }
    }
  }
  return t;
}

}  // namespace

unsigned __int128 LandauF(std::size_t m) {
  CCFP_CHECK_MSG(m <= kLandauMaxM, "m too large for exact Landau function");
  if (m <= 1) return 1;
  return BuildTable(m).best[m];
}

std::vector<std::uint64_t> LandauPartition(std::size_t m) {
  CCFP_CHECK_MSG(m <= kLandauMaxM, "m too large for exact Landau function");
  if (m <= 1) return {};
  LandauTable t = BuildTable(m);

  // Reconstruct greedily: recompute the DP prefix tables on the fly would be
  // costly; instead re-run the DP per prime from scratch tracking budgets.
  // Simpler approach: recompute optimum by trying, for each prime in reverse,
  // whether removing its chosen power keeps optimality. We instead rebuild
  // with explicit per-prime tables.
  std::size_t n_primes = t.primes.size();
  // best_pfx[i][j]: optimum using primes[0..i-1] with budget j.
  std::vector<std::vector<unsigned __int128>> best_pfx(
      n_primes + 1, std::vector<unsigned __int128>(m + 1, 1));
  for (std::size_t i = 0; i < n_primes; ++i) {
    std::uint32_t p = t.primes[i];
    for (std::size_t j = 0; j <= m; ++j) {
      best_pfx[i + 1][j] = best_pfx[i][j];
      for (std::uint64_t pk = p; pk <= j; pk *= p) {
        unsigned __int128 candidate = best_pfx[i][j - pk] * pk;
        if (candidate > best_pfx[i + 1][j]) best_pfx[i + 1][j] = candidate;
        if (pk > j / p) break;
      }
    }
  }

  std::vector<std::uint64_t> parts;
  std::size_t budget = m;
  for (std::size_t i = n_primes; i-- > 0;) {
    std::uint32_t p = t.primes[i];
    if (best_pfx[i + 1][budget] == best_pfx[i][budget]) continue;
    // Find the power of p used.
    for (std::uint64_t pk = p; pk <= budget; pk *= p) {
      if (best_pfx[i][budget - pk] * pk == best_pfx[i + 1][budget]) {
        parts.push_back(pk);
        budget -= pk;
        break;
      }
      if (pk > budget / p) break;
    }
  }
  std::sort(parts.rbegin(), parts.rend());
  return parts;
}

Permutation MaxOrderPermutation(std::size_t m) {
  std::vector<std::uint64_t> parts = LandauPartition(m);
  Result<Permutation> perm = Permutation::FromCycleLengths(m, parts);
  CCFP_CHECK(perm.ok());
  return perm.MoveValue();
}

}  // namespace ccfp
