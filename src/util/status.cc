#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace ccfp {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "UnknownCode";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

namespace internal {

void DieOnBadResultAccess(const Status& status) {
  std::fprintf(stderr, "ccfp: value() called on error Result: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace ccfp
