#include "util/budget.h"

#include <algorithm>
#include <limits>

#include "util/strings.h"

namespace ccfp {

std::string BudgetUse::ToString() const {
  return StrCat("steps=", steps, " tuples=", tuples,
                " expressions=", expressions);
}

Budget Budget::Unlimited() {
  Budget b;
  b.steps = std::numeric_limits<std::uint64_t>::max();
  b.tuples = std::numeric_limits<std::uint64_t>::max();
  b.expressions = std::numeric_limits<std::uint64_t>::max();
  return b;
}

Budget Budget::Tiny() {
  Budget b;
  b.steps = 8;
  b.tuples = 8;
  b.expressions = 8;
  return b;
}

Budget Budget::WithTimeLimit(std::chrono::milliseconds limit) {
  Budget b;
  b.deadline = std::chrono::steady_clock::now() + limit;
  return b;
}

Budget Budget::WithByteCeiling(std::uint64_t limit) {
  Budget b;
  b.bytes = limit;
  return b;
}

Budget Budget::Split(unsigned parts) const {
  if (parts <= 1) return *this;
  Budget share = *this;
  auto divide = [parts](std::uint64_t amount) {
    if (amount == 0) return std::uint64_t{0};  // drained stays drained
    std::uint64_t slice = amount / parts;
    return slice == 0 ? std::uint64_t{1} : slice;
  };
  share.steps = divide(steps);
  share.tuples = divide(tuples);
  share.expressions = divide(expressions);
  return share;
}

std::vector<Budget> Budget::SplitLadder(
    const std::vector<std::uint64_t>& costs) const {
  std::vector<Budget> shares;
  shares.reserve(costs.size());
  std::uint64_t remaining = steps;
  for (std::uint64_t cost : costs) {
    Budget share = *this;
    share.steps = std::min(cost, remaining);
    remaining -= share.steps;
    shares.push_back(share);
  }
  return shares;
}

std::string Budget::ToString() const {
  return StrCat("steps=", steps, " tuples=", tuples,
                " expressions=", expressions, " bytes=",
                bytes == std::numeric_limits<std::uint64_t>::max()
                    ? std::string("none")
                    : StrCat(bytes),
                " deadline=", deadline.has_value() ? "set" : "none");
}

}  // namespace ccfp
