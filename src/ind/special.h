#ifndef CCFP_IND_SPECIAL_H_
#define CCFP_IND_SPECIAL_H_

#include <cstdint>
#include <vector>

#include "core/dependency.h"
#include "core/schema.h"
#include "util/status.h"

namespace ccfp {

/// Polynomial-time special cases of the IND decision problem discussed at
/// the end of Section 3 of the paper:
///   * INDs of width <= k for fixed k (the expression space is polynomial;
///     Kanellakis–Cosmadakis–Vardi: NLOGSPACE-complete for fixed k);
///   * typed INDs R[X] <= S[X] (same attribute-name sequence on both sides);
///   * unary INDs (width 1) — plain digraph reachability.

/// Reachability over unary INDs: nodes are (relation, attribute) columns,
/// each unary IND R[A] <= S[B] an edge. Sound and complete for unary
/// implication (IND2 is vacuous at width 1, so only IND1/IND3 act).
class UnaryIndGraph {
 public:
  /// Non-unary members of sigma are ignored (they cannot contribute to
  /// unary consequences... except via projection — see the note below).
  /// Precondition: every member of `sigma` is unary. CHECK-fails otherwise,
  /// because silently ignoring wider INDs would be unsound: a wide IND
  /// projects (IND2) to unary INDs.
  UnaryIndGraph(SchemePtr scheme, const std::vector<Ind>& sigma);

  /// Sigma |= target (target must be unary).
  bool Implies(const Ind& target) const;

  /// All implied unary INDs (the reflexive–transitive closure).
  std::vector<Ind> AllImpliedUnaryInds() const;

  /// Nodes reachable from column (rel, attr), as (rel, attr) pairs.
  std::vector<std::pair<RelId, AttrId>> ReachableFrom(RelId rel,
                                                      AttrId attr) const;

 private:
  std::size_t NodeId(RelId rel, AttrId attr) const {
    return rel_offset_[rel] + attr;
  }

  SchemePtr scheme_;
  std::vector<std::size_t> rel_offset_;
  std::size_t node_count_ = 0;
  std::vector<std::vector<std::uint32_t>> adjacency_;
};

/// Decides implication when sigma and target are all *typed*: each IND is
/// R[X] <= S[X] with the same attribute-name sequence on both sides. Then
/// implication reduces to per-name-set reachability between relations and is
/// polynomial (end of Section 3: "there is a polynomial-time algorithm if we
/// restrict our attention to INDs of the form R[X] <= S[X]").
/// Returns InvalidArgument if any input IND is not typed.
Result<bool> TypedIndImplies(const DatabaseScheme& scheme,
                             const std::vector<Ind>& sigma,
                             const Ind& target);

/// True iff `ind` is typed (both sides carry the same attribute *names* in
/// the same order).
bool IsTypedInd(const DatabaseScheme& scheme, const Ind& ind);

/// A priori bound on the number of distinct expressions the general BFS can
/// touch when the target IND has width w: sum over relations of
/// P(arity, w) = arity!/(arity-w)!. Polynomial in the scheme size for fixed
/// w — this is the paper's "k-ary or less" tractability argument.
std::uint64_t ExpressionSpaceBound(const DatabaseScheme& scheme,
                                   std::size_t width);

}  // namespace ccfp

#endif  // CCFP_IND_SPECIAL_H_
