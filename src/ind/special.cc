#include "ind/special.h"

#include <deque>
#include <map>
#include <set>

#include "util/check.h"
#include "util/strings.h"

namespace ccfp {

UnaryIndGraph::UnaryIndGraph(SchemePtr scheme, const std::vector<Ind>& sigma)
    : scheme_(std::move(scheme)) {
  rel_offset_.reserve(scheme_->size());
  for (RelId rel = 0; rel < scheme_->size(); ++rel) {
    rel_offset_.push_back(node_count_);
    node_count_ += scheme_->relation(rel).arity();
  }
  adjacency_.assign(node_count_, {});
  for (const Ind& ind : sigma) {
    Status st = Validate(*scheme_, ind);
    CCFP_CHECK_MSG(st.ok(), st.ToString().c_str());
    CCFP_CHECK_MSG(ind.width() == 1, "UnaryIndGraph requires unary INDs");
    adjacency_[NodeId(ind.lhs_rel, ind.lhs[0])].push_back(
        static_cast<std::uint32_t>(NodeId(ind.rhs_rel, ind.rhs[0])));
  }
}

std::vector<std::pair<RelId, AttrId>> UnaryIndGraph::ReachableFrom(
    RelId rel, AttrId attr) const {
  std::vector<bool> seen(node_count_, false);
  std::deque<std::size_t> frontier;
  std::size_t start = NodeId(rel, attr);
  seen[start] = true;
  frontier.push_back(start);
  std::vector<std::pair<RelId, AttrId>> out;
  while (!frontier.empty()) {
    std::size_t node = frontier.front();
    frontier.pop_front();
    // Decode node -> (rel, attr).
    RelId r = 0;
    while (r + 1 < scheme_->size() && rel_offset_[r + 1] <= node) ++r;
    out.emplace_back(r, static_cast<AttrId>(node - rel_offset_[r]));
    for (std::uint32_t next : adjacency_[node]) {
      if (!seen[next]) {
        seen[next] = true;
        frontier.push_back(next);
      }
    }
  }
  return out;
}

bool UnaryIndGraph::Implies(const Ind& target) const {
  CCFP_CHECK_MSG(target.width() == 1, "target must be unary");
  std::size_t goal = NodeId(target.rhs_rel, target.rhs[0]);
  for (const auto& [rel, attr] :
       ReachableFrom(target.lhs_rel, target.lhs[0])) {
    if (NodeId(rel, attr) == goal) return true;
  }
  return false;
}

std::vector<Ind> UnaryIndGraph::AllImpliedUnaryInds() const {
  std::vector<Ind> out;
  for (RelId rel = 0; rel < scheme_->size(); ++rel) {
    for (AttrId attr = 0; attr < scheme_->relation(rel).arity(); ++attr) {
      for (const auto& [r2, a2] : ReachableFrom(rel, attr)) {
        out.push_back(Ind{rel, {attr}, r2, {a2}});
      }
    }
  }
  return out;
}

bool IsTypedInd(const DatabaseScheme& scheme, const Ind& ind) {
  if (ind.lhs.size() != ind.rhs.size()) return false;
  for (std::size_t i = 0; i < ind.lhs.size(); ++i) {
    if (scheme.relation(ind.lhs_rel).attr_name(ind.lhs[i]) !=
        scheme.relation(ind.rhs_rel).attr_name(ind.rhs[i])) {
      return false;
    }
  }
  return true;
}

Result<bool> TypedIndImplies(const DatabaseScheme& scheme,
                             const std::vector<Ind>& sigma,
                             const Ind& target) {
  CCFP_RETURN_NOT_OK(Validate(scheme, target));
  if (!IsTypedInd(scheme, target)) {
    return Status::InvalidArgument("target IND is not typed");
  }
  for (const Ind& ind : sigma) {
    CCFP_RETURN_NOT_OK(Validate(scheme, ind));
    if (!IsTypedInd(scheme, ind)) {
      return Status::InvalidArgument("sigma contains a non-typed IND");
    }
  }
  // Reachability between relations using only edges whose attribute-name
  // set contains every name of the target. Soundness: such a path composes
  // (by IND2-projection onto the target names and IND3) to the target.
  // Completeness: in the Corollary 3.2 expression sequence for typed INDs,
  // each expression carries exactly the target's attribute names, and each
  // step uses a sigma member whose name set covers them.
  std::set<std::string> need;
  for (AttrId a : target.lhs) {
    need.insert(scheme.relation(target.lhs_rel).attr_name(a));
  }
  // But the *order* must also be consistent: a typed IND maps name to the
  // same name, so the induced attribute sequence at each relation along the
  // path is determined by names alone. Reaching target.rhs_rel suffices as
  // long as the target is typed, which was checked above.
  std::vector<bool> seen(scheme.size(), false);
  std::deque<RelId> frontier;
  seen[target.lhs_rel] = true;
  frontier.push_back(target.lhs_rel);
  while (!frontier.empty()) {
    RelId rel = frontier.front();
    frontier.pop_front();
    if (rel == target.rhs_rel) return true;
    for (const Ind& ind : sigma) {
      if (ind.lhs_rel != rel || seen[ind.rhs_rel]) continue;
      std::set<std::string> have;
      for (AttrId a : ind.lhs) {
        have.insert(scheme.relation(ind.lhs_rel).attr_name(a));
      }
      bool covers = true;
      for (const std::string& name : need) {
        if (have.count(name) == 0) {
          covers = false;
          break;
        }
      }
      if (covers) {
        seen[ind.rhs_rel] = true;
        frontier.push_back(ind.rhs_rel);
      }
    }
  }
  return false;
}

std::uint64_t ExpressionSpaceBound(const DatabaseScheme& scheme,
                                   std::size_t width) {
  std::uint64_t total = 0;
  for (const RelationScheme& rel : scheme.relations()) {
    if (rel.arity() < width) continue;
    std::uint64_t perms = 1;
    for (std::size_t i = 0; i < width; ++i) {
      perms *= static_cast<std::uint64_t>(rel.arity() - i);
    }
    total += perms;
  }
  return total;
}

}  // namespace ccfp
