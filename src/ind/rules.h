#ifndef CCFP_IND_RULES_H_
#define CCFP_IND_RULES_H_

#include <cstddef>
#include <vector>

#include "core/dependency.h"
#include "core/schema.h"
#include "util/status.h"

namespace ccfp {

/// The paper's complete axiomatization for INDs (Section 3):
///
///   IND1 (reflexivity):   R[X] <= R[X] for any sequence X of distinct
///                         attributes of R.
///   IND2 (projection and permutation): from R[A1..Am] <= S[B1..Bm] infer
///                         R[A_{i1}..A_{ik}] <= S[B_{i1}..B_{ik}] for any
///                         sequence i1..ik of distinct indices.
///   IND3 (transitivity):  from R[X] <= S[Y] and S[Y] <= T[Z] infer
///                         R[X] <= T[Z].
///
/// Each applier validates its inputs and returns the inferred IND.

/// IND1: builds R[X] <= R[X].
Result<Ind> IndReflexivity(const DatabaseScheme& scheme, RelId rel,
                           const std::vector<AttrId>& attrs);

/// IND2: applies position selection `positions` (0-based, distinct, each
/// < width of `ind`) to both sides of `ind`.
Result<Ind> IndProjectPermute(const DatabaseScheme& scheme, const Ind& ind,
                              const std::vector<std::size_t>& positions);

/// IND3: from a = R[X] <= S[Y] and b = S[Y] <= T[Z] (middle expressions must
/// match exactly) infers R[X] <= T[Z].
Result<Ind> IndTransitivity(const DatabaseScheme& scheme, const Ind& a,
                            const Ind& b);

/// True iff `derived` can be obtained from `base` by a single application of
/// IND2 (i.e., there exists a position sequence mapping base to derived).
/// This is the step relation of Corollary 3.2 condition (v).
bool IsProjectionPermutationOf(const Ind& derived, const Ind& base);

}  // namespace ccfp

#endif  // CCFP_IND_RULES_H_
