#include "ind/rules.h"

#include <algorithm>

#include "util/strings.h"

namespace ccfp {

Result<Ind> IndReflexivity(const DatabaseScheme& scheme, RelId rel,
                           const std::vector<AttrId>& attrs) {
  Ind ind{rel, attrs, rel, attrs};
  CCFP_RETURN_NOT_OK(Validate(scheme, ind));
  return ind;
}

Result<Ind> IndProjectPermute(const DatabaseScheme& scheme, const Ind& ind,
                              const std::vector<std::size_t>& positions) {
  CCFP_RETURN_NOT_OK(Validate(scheme, ind));
  std::vector<bool> used(ind.width(), false);
  Ind out;
  out.lhs_rel = ind.lhs_rel;
  out.rhs_rel = ind.rhs_rel;
  for (std::size_t p : positions) {
    if (p >= ind.width()) {
      return Status::InvalidArgument(
          StrCat("position ", p, " out of range for width ", ind.width()));
    }
    if (used[p]) {
      return Status::InvalidArgument(StrCat("repeated position ", p));
    }
    used[p] = true;
    out.lhs.push_back(ind.lhs[p]);
    out.rhs.push_back(ind.rhs[p]);
  }
  CCFP_RETURN_NOT_OK(Validate(scheme, out));
  return out;
}

Result<Ind> IndTransitivity(const DatabaseScheme& scheme, const Ind& a,
                            const Ind& b) {
  CCFP_RETURN_NOT_OK(Validate(scheme, a));
  CCFP_RETURN_NOT_OK(Validate(scheme, b));
  if (a.rhs_rel != b.lhs_rel || a.rhs != b.lhs) {
    return Status::InvalidArgument(
        "transitivity requires matching middle expressions");
  }
  Ind out{a.lhs_rel, a.lhs, b.rhs_rel, b.rhs};
  CCFP_RETURN_NOT_OK(Validate(scheme, out));
  return out;
}

bool IsProjectionPermutationOf(const Ind& derived, const Ind& base) {
  if (derived.lhs_rel != base.lhs_rel || derived.rhs_rel != base.rhs_rel) {
    return false;
  }
  if (derived.width() > base.width()) return false;
  // For each pair (derived.lhs[j], derived.rhs[j]) there must be a unique
  // base position carrying exactly that pair. Base lhs attributes are
  // distinct, so the position is determined by the lhs attribute alone.
  std::vector<bool> used(base.width(), false);
  for (std::size_t j = 0; j < derived.width(); ++j) {
    bool found = false;
    for (std::size_t p = 0; p < base.width(); ++p) {
      if (!used[p] && base.lhs[p] == derived.lhs[j] &&
          base.rhs[p] == derived.rhs[j]) {
        used[p] = true;
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

}  // namespace ccfp
