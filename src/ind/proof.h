#ifndef CCFP_IND_PROOF_H_
#define CCFP_IND_PROOF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/dependency.h"
#include "core/schema.h"
#include "util/status.h"

namespace ccfp {

/// Justification of one step in an IND proof (Section 3's axiomatization).
enum class IndRule : std::uint8_t {
  kHypothesis,    ///< member of Sigma
  kReflexivity,   ///< IND1
  kProjection,    ///< IND2 (projection and permutation)
  kTransitivity,  ///< IND3
};

const char* IndRuleToString(IndRule rule);

struct IndProofStep {
  Ind conclusion;
  IndRule rule;
  /// Indices of earlier lines (1 for projection, 2 for transitivity).
  std::vector<std::size_t> antecedents;
  /// For kProjection: the position sequence applied to the antecedent.
  std::vector<std::size_t> positions;
};

/// A machine-checkable proof in the IND1/IND2/IND3 system: "a finite
/// sequence of INDs, where each IND in the sequence is either a member of
/// Sigma, or else follows from previous INDs in the sequence by an
/// application of the rules" (Section 3).
class IndProof {
 public:
  IndProof(SchemePtr scheme, std::vector<Ind> hypotheses)
      : scheme_(std::move(scheme)), hypotheses_(std::move(hypotheses)) {}

  const std::vector<IndProofStep>& steps() const { return steps_; }
  const std::vector<Ind>& hypotheses() const { return hypotheses_; }
  const Ind& conclusion() const;

  void AddStep(IndProofStep step) { steps_.push_back(std::move(step)); }

  /// Verifies every line against its cited rule.
  Status Check() const;

  std::string ToString() const;

 private:
  SchemePtr scheme_;
  std::vector<Ind> hypotheses_;
  std::vector<IndProofStep> steps_;
};

}  // namespace ccfp

#endif  // CCFP_IND_PROOF_H_
