#include "ind/proof.h"

#include "ind/rules.h"
#include "util/check.h"
#include "util/strings.h"

namespace ccfp {

const char* IndRuleToString(IndRule rule) {
  switch (rule) {
    case IndRule::kHypothesis:
      return "hypothesis";
    case IndRule::kReflexivity:
      return "IND1 (reflexivity)";
    case IndRule::kProjection:
      return "IND2 (projection/permutation)";
    case IndRule::kTransitivity:
      return "IND3 (transitivity)";
  }
  return "?";
}

const Ind& IndProof::conclusion() const {
  CCFP_CHECK_MSG(!steps_.empty(), "empty proof has no conclusion");
  return steps_.back().conclusion;
}

Status IndProof::Check() const {
  if (steps_.empty()) return Status::InvalidArgument("empty proof");
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    const IndProofStep& step = steps_[i];
    CCFP_RETURN_NOT_OK(Validate(*scheme_, step.conclusion));
    for (std::size_t a : step.antecedents) {
      if (a >= i) {
        return Status::InvalidArgument(
            StrCat("step ", i, " cites later/own line ", a));
      }
    }
    auto fail = [&](const char* why) {
      return Status::InvalidArgument(
          StrCat("step ", i, " (", IndRuleToString(step.rule), "): ", why,
                 ": ", Dependency(step.conclusion).ToString(*scheme_)));
    };
    switch (step.rule) {
      case IndRule::kHypothesis: {
        bool found = false;
        for (const Ind& h : hypotheses_) {
          if (h == step.conclusion) {
            found = true;
            break;
          }
        }
        if (!found) return fail("not a hypothesis");
        break;
      }
      case IndRule::kReflexivity: {
        if (!step.antecedents.empty()) return fail("expects no antecedents");
        if (!IsTrivial(step.conclusion)) return fail("not of form R[X] <= R[X]");
        break;
      }
      case IndRule::kProjection: {
        if (step.antecedents.size() != 1) return fail("expects 1 antecedent");
        const Ind& base = steps_[step.antecedents[0]].conclusion;
        Result<Ind> derived =
            IndProjectPermute(*scheme_, base, step.positions);
        if (!derived.ok()) return fail(derived.status().message().c_str());
        if (!(*derived == step.conclusion)) {
          return fail("conclusion does not match the projected IND");
        }
        break;
      }
      case IndRule::kTransitivity: {
        if (step.antecedents.size() != 2) return fail("expects 2 antecedents");
        const Ind& a = steps_[step.antecedents[0]].conclusion;
        const Ind& b = steps_[step.antecedents[1]].conclusion;
        Result<Ind> derived = IndTransitivity(*scheme_, a, b);
        if (!derived.ok()) return fail(derived.status().message().c_str());
        if (!(*derived == step.conclusion)) {
          return fail("conclusion does not match the composed IND");
        }
        break;
      }
    }
  }
  return Status::OK();
}

std::string IndProof::ToString() const {
  std::string out;
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    const IndProofStep& s = steps_[i];
    out += StrCat(i, ". ", Dependency(s.conclusion).ToString(*scheme_), "   [",
                  IndRuleToString(s.rule));
    if (!s.antecedents.empty()) {
      out += StrCat(" of ",
                    JoinMapped(s.antecedents, ", ", [](std::size_t a) {
                      return std::to_string(a);
                    }));
    }
    if (!s.positions.empty()) {
      out += StrCat(" at positions ",
                    JoinMapped(s.positions, ", ", [](std::size_t p) {
                      return std::to_string(p);
                    }));
    }
    out += "]\n";
  }
  return out;
}

}  // namespace ccfp
