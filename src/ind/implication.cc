#include "ind/implication.h"

#include <deque>
#include <functional>
#include <limits>
#include <unordered_map>

#include "util/check.h"
#include "util/strings.h"

namespace ccfp {

namespace {
constexpr std::size_t kNoPos = std::numeric_limits<std::size_t>::max();
}  // namespace

std::string IndExpression::ToString(const DatabaseScheme& scheme) const {
  return StrCat(scheme.relation(rel).name(), "[",
                AttrNames(scheme, rel, attrs), "]");
}

IndImplication::IndImplication(SchemePtr scheme, std::vector<Ind> sigma)
    : scheme_(std::move(scheme)), sigma_(std::move(sigma)) {
  by_lhs_rel_.assign(scheme_->size(), {});
  lhs_pos_.reserve(sigma_.size());
  for (std::uint32_t i = 0; i < sigma_.size(); ++i) {
    const Ind& ind = sigma_[i];
    Status st = Validate(*scheme_, ind);
    CCFP_CHECK_MSG(st.ok(), st.ToString().c_str());
    by_lhs_rel_[ind.lhs_rel].push_back(i);
    std::vector<std::size_t> pos(scheme_->relation(ind.lhs_rel).arity(),
                                 kNoPos);
    for (std::size_t p = 0; p < ind.lhs.size(); ++p) pos[ind.lhs[p]] = p;
    lhs_pos_.push_back(std::move(pos));
  }
}

template <typename Visit>
void IndImplication::ForEachSuccessor(const IndExpression& expr,
                                      Visit visit) const {
  for (std::uint32_t i : by_lhs_rel_[expr.rel]) {
    const Ind& ind = sigma_[i];
    const std::vector<std::size_t>& pos = lhs_pos_[i];
    // Applicable iff every attribute of the expression occurs in ind.lhs.
    std::vector<std::size_t> positions;
    positions.reserve(expr.attrs.size());
    bool applicable = true;
    for (AttrId a : expr.attrs) {
      if (pos[a] == kNoPos) {
        applicable = false;
        break;
      }
      positions.push_back(pos[a]);
    }
    if (!applicable) continue;
    IndExpression next;
    next.rel = ind.rhs_rel;
    next.attrs.reserve(positions.size());
    for (std::size_t p : positions) next.attrs.push_back(ind.rhs[p]);
    visit(std::move(next), i, std::move(positions));
  }
}

Result<IndDecision> IndImplication::Decide(
    const Ind& target, const IndDecisionOptions& options) const {
  CCFP_RETURN_NOT_OK(Validate(*scheme_, target));

  IndDecision decision;
  IndExpression start{target.lhs_rel, target.lhs};
  IndExpression goal{target.rhs_rel, target.rhs};

  // Parent bookkeeping for proof extraction: for each reached expression,
  // the predecessor expression plus the sigma index / position sequence of
  // the IND2 edge that reached it.
  struct Edge {
    IndExpression parent;
    std::uint32_t sigma_index;
    std::vector<std::size_t> positions;
    bool is_start;
  };
  std::unordered_map<IndExpression, Edge, IndExpressionHash> visited;
  visited.emplace(start, Edge{{}, 0, {}, true});

  std::deque<IndExpression> frontier;
  frontier.push_back(start);
  bool found = (start == goal);

  while (!found && !frontier.empty()) {
    IndExpression expr = std::move(frontier.front());
    frontier.pop_front();
    ++decision.expressions_visited;
    if (decision.expressions_visited > options.max_expressions) {
      return Status::ResourceExhausted(
          StrCat("IND decision budget of ", options.max_expressions,
                 " expressions exhausted"));
    }
    ForEachSuccessor(expr, [&](IndExpression next, std::uint32_t sigma_index,
                               std::vector<std::size_t> positions) {
      ++decision.edges_explored;
      if (found || visited.count(next) > 0) return;
      bool is_goal = (next == goal);
      visited.emplace(next,
                      Edge{expr, sigma_index, std::move(positions), false});
      if (is_goal) {
        found = true;
      } else {
        frontier.push_back(std::move(next));
      }
    });
  }

  decision.implied = found;
  if (!found) return decision;

  // Reconstruct the Corollary 3.2 expression sequence.
  std::vector<const Edge*> path_edges;
  IndExpression cursor = goal;
  while (true) {
    const Edge& e = visited.at(cursor);
    if (e.is_start) break;
    path_edges.push_back(&e);
    cursor = e.parent;
  }
  decision.chain_length = path_edges.size() + 1;

  if (options.want_proof) {
    // Materialize the expression chain (start to goal).
    decision.chain.push_back(start);
    for (std::size_t step = path_edges.size(); step-- > 0;) {
      const Edge& e = *path_edges[step];
      const Ind& hyp = sigma_[e.sigma_index];
      IndExpression next;
      next.rel = hyp.rhs_rel;
      for (std::size_t p : e.positions) next.attrs.push_back(hyp.rhs[p]);
      decision.chain.push_back(std::move(next));
    }
    IndProof proof(scheme_, sigma_);
    if (path_edges.empty()) {
      // Trivial IND: one reflexivity line.
      proof.AddStep({target, IndRule::kReflexivity, {}, {}});
    } else {
      // path_edges is goal-to-start; walk it in start-to-goal order.
      std::size_t acc_line = 0;
      IndExpression from = start;
      for (std::size_t step = path_edges.size(); step-- > 0;) {
        const Edge& e = *path_edges[step];
        const Ind& hyp = sigma_[e.sigma_index];
        proof.AddStep({hyp, IndRule::kHypothesis, {}, {}});
        std::size_t hyp_line = proof.steps().size() - 1;
        // Projected edge IND: from -> next expression.
        IndExpression next;
        next.rel = hyp.rhs_rel;
        for (std::size_t p : e.positions) next.attrs.push_back(hyp.rhs[p]);
        Ind edge_ind{from.rel, from.attrs, next.rel, next.attrs};
        proof.AddStep(
            {edge_ind, IndRule::kProjection, {hyp_line}, e.positions});
        std::size_t edge_line = proof.steps().size() - 1;
        if (step == path_edges.size() - 1) {
          acc_line = edge_line;  // first edge
        } else {
          Ind combined{start.rel, start.attrs, next.rel, next.attrs};
          proof.AddStep({combined,
                         IndRule::kTransitivity,
                         {acc_line, edge_line},
                         {}});
          acc_line = proof.steps().size() - 1;
        }
        from = std::move(next);
      }
    }
    Status st = proof.Check();
    CCFP_CHECK_MSG(st.ok(), st.ToString().c_str());
    decision.proof = std::move(proof);
  }
  return decision;
}

Result<bool> IndImplication::Implies(const Ind& target,
                                     const IndDecisionOptions& options) const {
  CCFP_ASSIGN_OR_RETURN(IndDecision decision, Decide(target, options));
  return decision.implied;
}

namespace {

// Enumerates all sequences of `width` distinct attributes of a relation
// with `arity` attributes, invoking fn on each.
void ForEachAttrSequence(std::size_t arity, std::size_t width,
                         std::vector<AttrId>& current,
                         std::vector<bool>& used,
                         const std::function<void(const std::vector<AttrId>&)>&
                             fn) {
  if (current.size() == width) {
    fn(current);
    return;
  }
  for (AttrId a = 0; a < arity; ++a) {
    if (used[a]) continue;
    used[a] = true;
    current.push_back(a);
    ForEachAttrSequence(arity, width, current, used, fn);
    current.pop_back();
    used[a] = false;
  }
}

}  // namespace

std::vector<Ind> IndImplication::AllImpliedInds(std::size_t max_width) const {
  std::vector<Ind> result;
  for (RelId rel = 0; rel < scheme_->size(); ++rel) {
    std::size_t arity = scheme_->relation(rel).arity();
    for (std::size_t width = 1; width <= max_width && width <= arity;
         ++width) {
      std::vector<AttrId> current;
      std::vector<bool> used(arity, false);
      ForEachAttrSequence(
          arity, width, current, used, [&](const std::vector<AttrId>& attrs) {
            // BFS from this start expression; every reachable expression E
            // yields the implied IND rel[attrs] <= E.
            IndExpression start{rel, attrs};
            std::unordered_map<IndExpression, bool, IndExpressionHash> seen;
            std::deque<IndExpression> frontier;
            seen.emplace(start, true);
            frontier.push_back(start);
            while (!frontier.empty()) {
              IndExpression expr = std::move(frontier.front());
              frontier.pop_front();
              result.push_back(Ind{rel, attrs, expr.rel, expr.attrs});
              ForEachSuccessor(expr, [&](IndExpression next, std::uint32_t,
                                         std::vector<std::size_t>) {
                if (seen.emplace(next, true).second) {
                  frontier.push_back(std::move(next));
                }
              });
            }
          });
    }
  }
  return result;
}

Result<IndDecision> DecideIndImplication(SchemePtr scheme,
                                         std::vector<Ind> sigma,
                                         const Ind& target,
                                         const IndDecisionOptions& options) {
  for (const Ind& ind : sigma) CCFP_RETURN_NOT_OK(Validate(*scheme, ind));
  IndImplication engine(std::move(scheme), std::move(sigma));
  return engine.Decide(target, options);
}

}  // namespace ccfp
