#ifndef CCFP_IND_IMPLICATION_H_
#define CCFP_IND_IMPLICATION_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/dependency.h"
#include "core/schema.h"
#include "ind/proof.h"
#include "util/budget.h"
#include "util/status.h"

namespace ccfp {

/// An expression S[X] in the sense of Corollary 3.2: a relation name plus a
/// sequence of distinct attributes of it.
struct IndExpression {
  RelId rel = 0;
  std::vector<AttrId> attrs;

  friend bool operator==(const IndExpression&, const IndExpression&) = default;

  std::string ToString(const DatabaseScheme& scheme) const;
};

struct IndExpressionHash {
  std::size_t operator()(const IndExpression& e) const {
    std::size_t h = e.rel * 0x9E3779B97F4A7C15ULL;
    for (AttrId a : e.attrs) h = h * 1099511628211ULL + a + 1;
    return h;
  }
};

struct IndDecisionOptions {
  /// Build an IND1/2/3 proof object when the implication holds.
  bool want_proof = false;
  /// Abort with ResourceExhausted after visiting this many distinct
  /// expressions. The expression space is exponential in the IND width
  /// (the root of the PSPACE-hardness), so a budget is mandatory API.
  std::uint64_t max_expressions = 1u << 22;

  /// Maps the shared Budget vocabulary onto the BFS knob
  /// (expressions -> max_expressions).
  static IndDecisionOptions FromBudget(const Budget& budget,
                                       bool want_proof = false) {
    IndDecisionOptions options;
    options.want_proof = want_proof;
    options.max_expressions = budget.expressions;
    return options;
  }
};

/// Outcome of one implication query.
struct IndDecision {
  bool implied = false;
  /// Distinct expressions reached (nodes of the Corollary 3.2 graph).
  std::uint64_t expressions_visited = 0;
  /// IND2-edges examined.
  std::uint64_t edges_explored = 0;
  /// Length w of the witnessing expression sequence (1 = trivial IND).
  std::size_t chain_length = 0;
  /// The witnessing expression sequence S_1[X_1], ..., S_w[X_w] of
  /// Corollary 3.2 (start to goal). Populated iff implied and want_proof.
  std::vector<IndExpression> chain;
  /// Present iff implied and want_proof.
  std::optional<IndProof> proof;
};

/// Decision procedure for IND implication (Sections 3, Corollary 3.2):
/// Sigma |= R_a[A1..Am] <= R_b[B1..Bm] iff the expression R_b[B1..Bm] is
/// reachable from R_a[A1..Am] via single-IND2 steps through members of
/// Sigma. Implemented as BFS with a visited set over expressions.
///
/// By Theorem 3.1 this decides |=, |=fin, and derivability all at once.
class IndImplication {
 public:
  /// CHECK-fails if any IND of `sigma` is invalid for `scheme`.
  IndImplication(SchemePtr scheme, std::vector<Ind> sigma);

  const std::vector<Ind>& sigma() const { return sigma_; }

  /// Decides Sigma |= target. Returns ResourceExhausted if the expression
  /// budget is hit (answer unknown).
  Result<IndDecision> Decide(const Ind& target,
                             const IndDecisionOptions& options = {}) const;

  /// Budget-vocabulary overload.
  Result<IndDecision> Decide(const Ind& target, const Budget& budget,
                             bool want_proof = false) const {
    return Decide(target, IndDecisionOptions::FromBudget(budget, want_proof));
  }

  /// Convenience: Decide reduced to its boolean answer. Like every other
  /// engine, budget exhaustion is a ResourceExhausted *status*, never an
  /// abort — callers with known-small instances just dereference.
  Result<bool> Implies(const Ind& target,
                       const IndDecisionOptions& options = {}) const;

  /// Enumerates every IND of width <= max_width over the scheme implied by
  /// Sigma (including trivial ones): lambda+ restricted to small widths.
  /// Used to compute the IND-consequence sets of the Section 7 proof.
  std::vector<Ind> AllImpliedInds(std::size_t max_width) const;

 private:
  // Successor expansion: applies every applicable member of sigma to `expr`,
  // invoking visit(next_expr, sigma_index, positions).
  template <typename Visit>
  void ForEachSuccessor(const IndExpression& expr, Visit visit) const;

  SchemePtr scheme_;
  std::vector<Ind> sigma_;
  // sigma indices grouped by lhs relation.
  std::vector<std::vector<std::uint32_t>> by_lhs_rel_;
  // For sigma[i]: map attr -> position in sigma[i].lhs (or npos).
  std::vector<std::vector<std::size_t>> lhs_pos_;
};

/// One-shot helper.
Result<IndDecision> DecideIndImplication(SchemePtr scheme,
                                         std::vector<Ind> sigma,
                                         const Ind& target,
                                         const IndDecisionOptions& options = {});

}  // namespace ccfp

#endif  // CCFP_IND_IMPLICATION_H_
