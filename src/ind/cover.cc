#include "ind/cover.h"

#include "ind/implication.h"

namespace ccfp {

namespace {

Result<bool> SetImplies(SchemePtr scheme, const std::vector<Ind>& sigma,
                        const Ind& target) {
  IndImplication engine(scheme, sigma);
  CCFP_ASSIGN_OR_RETURN(IndDecision decision, engine.Decide(target));
  return decision.implied;
}

}  // namespace

Result<std::vector<std::size_t>> RedundantInds(
    SchemePtr scheme, const std::vector<Ind>& sigma) {
  std::vector<std::size_t> redundant;
  for (std::size_t i = 0; i < sigma.size(); ++i) {
    std::vector<Ind> rest;
    rest.reserve(sigma.size() - 1);
    for (std::size_t j = 0; j < sigma.size(); ++j) {
      if (j != i) rest.push_back(sigma[j]);
    }
    CCFP_ASSIGN_OR_RETURN(bool implied, SetImplies(scheme, rest, sigma[i]));
    if (implied) redundant.push_back(i);
  }
  return redundant;
}

Result<std::vector<Ind>> MinimalIndCover(SchemePtr scheme,
                                         std::vector<Ind> sigma) {
  bool removed = true;
  while (removed) {
    removed = false;
    for (std::size_t i = 0; i < sigma.size(); ++i) {
      std::vector<Ind> rest;
      rest.reserve(sigma.size() - 1);
      for (std::size_t j = 0; j < sigma.size(); ++j) {
        if (j != i) rest.push_back(sigma[j]);
      }
      CCFP_ASSIGN_OR_RETURN(bool implied,
                            SetImplies(scheme, rest, sigma[i]));
      if (implied) {
        sigma = std::move(rest);
        removed = true;
        break;
      }
    }
  }
  return sigma;
}

Result<bool> EquivalentIndSets(SchemePtr scheme, const std::vector<Ind>& a,
                               const std::vector<Ind>& b) {
  for (const Ind& ind : b) {
    CCFP_ASSIGN_OR_RETURN(bool implied, SetImplies(scheme, a, ind));
    if (!implied) return false;
  }
  for (const Ind& ind : a) {
    CCFP_ASSIGN_OR_RETURN(bool implied, SetImplies(scheme, b, ind));
    if (!implied) return false;
  }
  return true;
}

}  // namespace ccfp
