#ifndef CCFP_IND_COVER_H_
#define CCFP_IND_COVER_H_

#include <vector>

#include "core/dependency.h"
#include "core/schema.h"
#include "util/status.h"

namespace ccfp {

/// Redundancy analysis for IND sets — the design-time counterpart of the
/// FD minimal cover: an IND is redundant if the remaining INDs already
/// imply it (via IND1–IND3). The paper's Section 8 recommends keeping
/// declared IND sets small because the decision problem is PSPACE-complete;
/// pruning redundant members is the first step.

/// The indices of `sigma` members implied by the other members.
/// Each membership test is one Corollary 3.2 decision; a budget error from
/// the underlying engine is propagated.
Result<std::vector<std::size_t>> RedundantInds(SchemePtr scheme,
                                               const std::vector<Ind>& sigma);

/// A minimal cover: greedily removes redundant INDs (in index order) until
/// none is implied by the rest. The result is equivalent to `sigma` and no
/// member of it is redundant.
Result<std::vector<Ind>> MinimalIndCover(SchemePtr scheme,
                                         std::vector<Ind> sigma);

/// True iff the two IND sets imply each other (width-bounded check over
/// the members themselves; sound and complete because implication of a set
/// reduces to implication of its members).
Result<bool> EquivalentIndSets(SchemePtr scheme, const std::vector<Ind>& a,
                               const std::vector<Ind>& b);

}  // namespace ccfp

#endif  // CCFP_IND_COVER_H_
