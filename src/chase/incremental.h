#ifndef CCFP_CHASE_INCREMENTAL_H_
#define CCFP_CHASE_INCREMENTAL_H_

#include <vector>

#include "chase/chase.h"
#include "core/database.h"
#include "core/dependency.h"
#include "util/status.h"

namespace ccfp {

/// Delta-driven FD+IND chase engine (the default behind Chase::Run).
///
/// Where the naive engine restarts a full O(fds x tuples) scan after every
/// change, this engine makes the work proportional to the *actual change*:
///
///   * all Values are interned into dense uint32 ids; null merging is an
///     array union-find with iterative path halving (core/intern.h);
///   * every FD keeps a persistent lhs-key index (canonical lhs projection
///     -> representative tuple) and every IND keeps a persistent set of the
///     canonical rhs projections present in its right-hand relation; both
///     are maintained incrementally as tuples are inserted and values
///     merged, never rebuilt from scratch;
///   * re-evaluation is driven by dirty worklists: when two values merge,
///     only the tuples containing the losing id (tracked by per-id
///     occurrence lists) are re-canonicalized, re-deduplicated, and
///     re-probed against the indexes;
///   * rule scheduling mirrors the naive engine (FD fixpoint first, then
///     one IND pass in declaration order, repeat) so that both engines
///     produce the same outcome, the same tuple counts, and — for
///     deterministic inputs — the same database up to iteration order.
///
/// The entry point is intentionally a free function: the engine's state is
/// per-run, and Chase carries only the validated dependency sets.
Result<ChaseResult> RunIncrementalChase(const SchemePtr& scheme,
                                        const std::vector<Fd>& fds,
                                        const std::vector<Ind>& inds,
                                        Database initial,
                                        const ChaseOptions& options);

/// Same engine, but the fixpoint stays interned: the engine's interner and
/// canonical id-tuples are moved into the returned IdDatabase, so callers
/// that verify the result (Armstrong builders, ChaseImplies) never hash a
/// heap Value again. `Materialize()` recovers the exact Database that
/// RunIncrementalChase would have produced.
Result<InternedChaseResult> RunIncrementalChaseInterned(
    const SchemePtr& scheme, const std::vector<Fd>& fds,
    const std::vector<Ind>& inds, Database initial,
    const ChaseOptions& options);

}  // namespace ccfp

#endif  // CCFP_CHASE_INCREMENTAL_H_
