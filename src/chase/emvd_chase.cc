#include "chase/emvd_chase.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "core/satisfies.h"
#include "util/strings.h"

namespace ccfp {

namespace {

std::vector<AttrId> UnionSeq(const std::vector<AttrId>& a,
                             const std::vector<AttrId>& b) {
  std::vector<AttrId> out = a;
  for (AttrId x : b) {
    if (std::find(out.begin(), out.end(), x) == out.end()) out.push_back(x);
  }
  return out;
}

std::uint64_t MaxNullIdIn(const Database& db) {
  std::uint64_t max_id = 0;
  for (RelId rel = 0; rel < db.scheme().size(); ++rel) {
    for (const Tuple& t : db.relation(rel).tuples()) {
      for (const Value& v : t) {
        if (v.is_null()) max_id = std::max(max_id, v.null_id());
      }
    }
  }
  return max_id;
}

}  // namespace

Result<std::uint64_t> EmvdChaseFixpoint(Database& db,
                                        const std::vector<Emvd>& sigma,
                                        const EmvdChaseOptions& options) {
  const DatabaseScheme& scheme = db.scheme();
  for (const Emvd& e : sigma) CCFP_RETURN_NOT_OK(Validate(scheme, e));
  std::uint64_t next_null = MaxNullIdIn(db) + 1;
  std::uint64_t added = 0;

  for (std::uint64_t round = 0;; ++round) {
    if (round >= options.max_rounds) {
      return Status::ResourceExhausted(
          StrCat("EMVD chase round budget of ", options.max_rounds,
                 " exhausted"));
    }
    bool changed = false;
    for (const Emvd& e : sigma) {
      Relation& r = db.relation(e.rel);
      std::vector<AttrId> xy = UnionSeq(e.x, e.y);
      std::vector<AttrId> xz = UnionSeq(e.x, e.z);
      // Existing (t[XY], t[XZ]) pairs.
      std::unordered_set<Tuple, TupleHash> pairs;
      for (const Tuple& t : r.tuples()) {
        Tuple key = ProjectTuple(t, xy);
        Tuple tail = ProjectTuple(t, xz);
        key.insert(key.end(), tail.begin(), tail.end());
        pairs.insert(std::move(key));
      }
      // Group by X and collect the missing witnesses; inserting during the
      // scan would invalidate iteration and also re-trigger on new tuples
      // within the same round (we process rounds breadth-first).
      std::unordered_map<Tuple, std::vector<std::size_t>, TupleHash> groups;
      for (std::size_t i = 0; i < r.size(); ++i) {
        groups[ProjectTuple(r.tuples()[i], e.x)].push_back(i);
      }
      std::vector<Tuple> new_tuples;
      for (const auto& [x_key, members] : groups) {
        for (std::size_t i1 : members) {
          Tuple t1_xy = ProjectTuple(r.tuples()[i1], xy);
          for (std::size_t i2 : members) {
            Tuple t2_xz = ProjectTuple(r.tuples()[i2], xz);
            Tuple key = t1_xy;
            key.insert(key.end(), t2_xz.begin(), t2_xz.end());
            if (pairs.count(key) > 0) continue;
            pairs.insert(std::move(key));
            Tuple t3(r.arity());
            for (std::size_t a = 0; a < r.arity(); ++a) {
              t3[a] = Value::Null(next_null++);
            }
            for (std::size_t j = 0; j < xy.size(); ++j) {
              t3[xy[j]] = t1_xy[j];
            }
            for (std::size_t j = 0; j < xz.size(); ++j) {
              t3[xz[j]] = t2_xz[j];
            }
            new_tuples.push_back(std::move(t3));
          }
        }
      }
      for (Tuple& t3 : new_tuples) {
        if (r.Insert(std::move(t3))) {
          ++added;
          changed = true;
        }
        if (db.TotalTuples() > options.max_tuples) {
          return Status::ResourceExhausted(
              StrCat("EMVD chase tuple budget of ", options.max_tuples,
                     " exhausted"));
        }
      }
    }
    if (!changed) return added;
  }
}

Result<bool> EmvdChaseImplies(SchemePtr scheme,
                              const std::vector<Emvd>& sigma,
                              const Emvd& target,
                              const EmvdChaseOptions& options) {
  CCFP_RETURN_NOT_OK(Validate(*scheme, target));
  Database db(scheme);
  std::size_t arity = scheme->relation(target.rel).arity();
  std::uint64_t next_null = 1;
  Tuple t1(arity), t2(arity);
  for (AttrId a = 0; a < arity; ++a) {
    bool shared = std::find(target.x.begin(), target.x.end(), a) !=
                  target.x.end();
    t1[a] = Value::Null(next_null++);
    t2[a] = shared ? t1[a] : Value::Null(next_null++);
  }
  db.Insert(target.rel, std::move(t1));
  db.Insert(target.rel, std::move(t2));

  CCFP_ASSIGN_OR_RETURN(std::uint64_t added,
                        EmvdChaseFixpoint(db, sigma, options));
  (void)added;
  return Satisfies(db, target);
}

}  // namespace ccfp
