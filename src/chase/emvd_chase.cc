#include "chase/emvd_chase.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "core/satisfies.h"
#include "util/strings.h"

namespace ccfp {

namespace {

std::vector<AttrId> UnionSeq(const std::vector<AttrId>& a,
                             const std::vector<AttrId>& b) {
  std::vector<AttrId> out = a;
  for (AttrId x : b) {
    if (std::find(out.begin(), out.end(), x) == out.end()) out.push_back(x);
  }
  return out;
}

std::uint64_t MaxNullIdIn(const Database& db) {
  std::uint64_t max_id = 0;
  for (RelId rel = 0; rel < db.scheme().size(); ++rel) {
    for (const Tuple& t : db.relation(rel).tuples()) {
      for (const Value& v : t) {
        if (v.is_null()) max_id = std::max(max_id, v.null_id());
      }
    }
  }
  return max_id;
}

/// ------------------------------------------------------------------------
/// Legacy engine: heap-Value projections per pair, kept verbatim as the
/// differential reference for the workspace engine
/// (tests/emvd_chase_property_test.cc).
/// ------------------------------------------------------------------------

/// Per-EMVD state persisted across chase rounds, so each round only joins
/// the *new* tuples against their X-groups instead of rebuilding the pair
/// set and the groups from every tuple of the relation.
struct LegacyEmvdState {
  std::vector<AttrId> xy;
  std::vector<AttrId> xz;
  /// Every (t1[XY], t2[XZ]) combination already present or witnessed.
  std::unordered_set<Tuple, TupleHash> pairs;
  /// X-projection -> indexes of incorporated tuples with that projection.
  std::unordered_map<Tuple, std::vector<std::size_t>, TupleHash> groups;
  /// Tuples below this index are incorporated into pairs/groups.
  std::size_t cursor = 0;
};

Result<std::uint64_t> LegacyEmvdChaseFixpoint(
    Database& db, const std::vector<Emvd>& sigma,
    const EmvdChaseOptions& options) {
  std::uint64_t next_null = MaxNullIdIn(db) + 1;
  std::uint64_t added = 0;

  std::vector<LegacyEmvdState> states(sigma.size());
  for (std::size_t i = 0; i < sigma.size(); ++i) {
    states[i].xy = UnionSeq(sigma[i].x, sigma[i].y);
    states[i].xz = UnionSeq(sigma[i].x, sigma[i].z);
  }

  for (std::uint64_t round = 0;; ++round) {
    if (round >= options.max_rounds) {
      return Status::ResourceExhausted(
          StrCat("EMVD chase round budget of ", options.max_rounds,
                 " exhausted"));
    }
    bool changed = false;
    for (std::size_t ei = 0; ei < sigma.size(); ++ei) {
      const Emvd& e = sigma[ei];
      LegacyEmvdState& state = states[ei];
      Relation& r = db.relation(e.rel);
      // Incorporate the delta since this EMVD's last round; witnesses are
      // collected first and inserted after, keeping rounds breadth-first
      // (tuples born this round join the groups next round).
      std::size_t end = r.size();
      std::vector<Tuple> new_tuples;
      // Seed every delta tuple's own (XY, XZ) pair *before* any cross
      // pair is examined — a cross pair can be witnessed by a later-index
      // delta tuple, and the full-scan reference seeds all self-pairs up
      // front, so seeding lazily would spawn spurious witnesses.
      for (std::size_t i = state.cursor; i < end; ++i) {
        const Tuple& ti = r.tuples()[i];
        Tuple self = ProjectTuple(ti, state.xy);
        Tuple tail = ProjectTuple(ti, state.xz);
        self.insert(self.end(), tail.begin(), tail.end());
        state.pairs.insert(std::move(self));
      }
      for (std::size_t i = state.cursor; i < end; ++i) {
        const Tuple& ti = r.tuples()[i];
        Tuple ti_xy = ProjectTuple(ti, state.xy);
        Tuple ti_xz = ProjectTuple(ti, state.xz);
        std::vector<std::size_t>& members =
            state.groups[ProjectTuple(ti, e.x)];
        for (std::size_t j : members) {
          const Tuple& tj = r.tuples()[j];
          Tuple tj_xy = ProjectTuple(tj, state.xy);
          Tuple tj_xz = ProjectTuple(tj, state.xz);
          // Both orientations: (new, old) and (old, new).
          for (int dir = 0; dir < 2; ++dir) {
            const Tuple& a_xy = dir == 0 ? ti_xy : tj_xy;
            const Tuple& b_xz = dir == 0 ? tj_xz : ti_xz;
            Tuple key = a_xy;
            key.insert(key.end(), b_xz.begin(), b_xz.end());
            if (!state.pairs.insert(std::move(key)).second) continue;
            Tuple t3(r.arity());
            for (std::size_t a = 0; a < r.arity(); ++a) {
              t3[a] = Value::Null(next_null++);
            }
            for (std::size_t c = 0; c < state.xy.size(); ++c) {
              t3[state.xy[c]] = a_xy[c];
            }
            for (std::size_t c = 0; c < state.xz.size(); ++c) {
              t3[state.xz[c]] = b_xz[c];
            }
            new_tuples.push_back(std::move(t3));
          }
        }
        members.push_back(i);
      }
      state.cursor = end;
      for (Tuple& t3 : new_tuples) {
        if (r.Insert(std::move(t3))) {
          ++added;
          changed = true;
        }
        if (db.TotalTuples() > options.max_tuples) {
          return Status::ResourceExhausted(
              StrCat("EMVD chase tuple budget of ", options.max_tuples,
                     " exhausted"));
        }
      }
    }
    if (!changed) return added;
  }
}

/// ------------------------------------------------------------------------
/// Workspace engine: the same delta-driven round structure, but a pair is
/// a packed (XY-group, XZ-group) id pair read off the workspace's cached
/// partitions — which only *extend* across rounds, since the EMVD chase is
/// append-only — and a witness is assembled directly from stored ValueIds.
/// No projection Tuple is built or hashed anywhere.
/// ------------------------------------------------------------------------

/// Per-EMVD state persisted across rounds, in id-space.
struct WsEmvdState {
  std::vector<AttrId> xy;
  std::vector<AttrId> xz;
  /// Packed (XY group, XZ group) combinations present or witnessed.
  std::unordered_set<std::uint64_t> pairs;
  /// Per X-partition group: incorporated tuple slots in that group.
  std::vector<std::vector<std::uint32_t>> members;
  /// Slots below this index are incorporated into pairs/members.
  std::uint32_t cursor = 0;
};

}  // namespace

Result<std::uint64_t> EmvdChaseFixpointOnWorkspace(
    InternedWorkspace& ws, const std::vector<Emvd>& sigma,
    const EmvdChaseOptions& options) {
  const DatabaseScheme& scheme = ws.scheme();
  for (const Emvd& e : sigma) CCFP_RETURN_NOT_OK(Validate(scheme, e));
  std::uint64_t added = 0;

  std::vector<WsEmvdState> states(sigma.size());
  for (std::size_t i = 0; i < sigma.size(); ++i) {
    states[i].xy = UnionSeq(sigma[i].x, sigma[i].y);
    states[i].xz = UnionSeq(sigma[i].x, sigma[i].z);
  }

  std::vector<IdTuple> new_tuples;
  for (std::uint64_t round = 0;; ++round) {
    if (round >= options.max_rounds) {
      return Status::ResourceExhausted(
          StrCat("EMVD chase round budget of ", options.max_rounds,
                 " exhausted"));
    }
    bool changed = false;
    for (std::size_t ei = 0; ei < sigma.size(); ++ei) {
      const Emvd& e = sigma[ei];
      WsEmvdState& state = states[ei];
      const std::size_t arity = scheme.relation(e.rel).arity();
      // Extended over the delta only (append-only => epochs never change).
      const InternedWorkspace::Partition& px = ws.partition(e.rel, e.x);
      const InternedWorkspace::Partition& pxy =
          ws.partition(e.rel, state.xy);
      const InternedWorkspace::Partition& pxz =
          ws.partition(e.rel, state.xz);
      std::uint32_t end = static_cast<std::uint32_t>(ws.size(e.rel));
      new_tuples.clear();
      // Self-pairs for the whole delta first — mirrors the legacy engine
      // (a cross pair may be witnessed by a later-index delta tuple).
      // Dead slots (killed by an earlier FD+IND chase's merges on a shared
      // workspace) carry kNoGroup and take part in nothing.
      for (std::uint32_t i = state.cursor; i < end; ++i) {
        if (px.group_of[i] == InternedWorkspace::kNoGroup) continue;
        state.pairs.insert(PackIdPair(pxy.group_of[i], pxz.group_of[i]));
      }
      if (state.members.size() < px.group_count) {
        state.members.resize(px.group_count);
      }
      for (std::uint32_t i = state.cursor; i < end; ++i) {
        if (px.group_of[i] == InternedWorkspace::kNoGroup) continue;
        std::uint32_t gy_i = pxy.group_of[i];
        std::uint32_t gz_i = pxz.group_of[i];
        std::vector<std::uint32_t>& members = state.members[px.group_of[i]];
        for (std::uint32_t j : members) {
          // Both orientations: (new, old) and (old, new).
          for (int dir = 0; dir < 2; ++dir) {
            std::uint32_t gy = dir == 0 ? gy_i : pxy.group_of[j];
            std::uint32_t gz = dir == 0 ? pxz.group_of[j] : gz_i;
            if (!state.pairs.insert(PackIdPair(gy, gz)).second) continue;
            std::uint32_t xy_src = dir == 0 ? i : j;
            std::uint32_t xz_src = dir == 0 ? j : i;
            IdTuple t3(arity, 0);
            // Fresh labels for every position, then overwrite the XY/XZ
            // ones — byte-for-byte the legacy numbering, so both engines
            // produce identically-labeled databases.
            for (std::size_t a = 0; a < arity; ++a) {
              t3[a] = ws.InternFreshNull();
            }
            const IdTuple& txy = ws.tuple(e.rel, xy_src);
            for (AttrId c : state.xy) t3[c] = txy[c];
            const IdTuple& txz = ws.tuple(e.rel, xz_src);
            for (AttrId c : state.xz) t3[c] = txz[c];
            new_tuples.push_back(std::move(t3));
          }
        }
        members.push_back(i);
      }
      state.cursor = end;
      for (IdTuple& t3 : new_tuples) {
        if (ws.Append(e.rel, std::move(t3))) {
          ++added;
          changed = true;
        }
        if (ws.TotalAliveTuples() > options.max_tuples) {
          return Status::ResourceExhausted(
              StrCat("EMVD chase tuple budget of ", options.max_tuples,
                     " exhausted"));
        }
      }
    }
    if (!changed) return added;
  }
}

Result<std::uint64_t> EmvdChaseFixpoint(Database& db,
                                        const std::vector<Emvd>& sigma,
                                        const EmvdChaseOptions& options) {
  const DatabaseScheme& scheme = db.scheme();
  for (const Emvd& e : sigma) CCFP_RETURN_NOT_OK(Validate(scheme, e));
  if (options.engine == EmvdChaseEngine::kLegacy) {
    return LegacyEmvdChaseFixpoint(db, sigma, options);
  }
  InternedWorkspace ws(db.scheme_ptr());
  ws.AppendDatabase(db);
  Result<std::uint64_t> result =
      EmvdChaseFixpointOnWorkspace(ws, sigma, options);
  // Write back on success *and* on budget exhaustion — the legacy engine
  // mutates in place, so `db` holds the partial chase either way.
  db = ws.Materialize();
  return result;
}

Result<bool> EmvdChaseImplies(SchemePtr scheme,
                              const std::vector<Emvd>& sigma,
                              const Emvd& target,
                              const EmvdChaseOptions& options) {
  CCFP_RETURN_NOT_OK(Validate(*scheme, target));
  std::size_t arity = scheme->relation(target.rel).arity();
  std::uint64_t next_null = 1;
  Tuple t1(arity), t2(arity);
  for (AttrId a = 0; a < arity; ++a) {
    bool shared = std::find(target.x.begin(), target.x.end(), a) !=
                  target.x.end();
    t1[a] = Value::Null(next_null++);
    t2[a] = shared ? t1[a] : Value::Null(next_null++);
  }

  if (options.engine == EmvdChaseEngine::kLegacy) {
    Database db(scheme);
    db.Insert(target.rel, std::move(t1));
    db.Insert(target.rel, std::move(t2));
    CCFP_ASSIGN_OR_RETURN(std::uint64_t added,
                          EmvdChaseFixpoint(db, sigma, options));
    (void)added;
    return Satisfies(db, target);
  }

  // One workspace carries the whole pipeline: seed, chase, and the final
  // Satisfies probe all share the interner and the cached partitions.
  InternedWorkspace ws(std::move(scheme));
  ws.AppendTuple(target.rel, t1);
  ws.AppendTuple(target.rel, t2);
  CCFP_ASSIGN_OR_RETURN(std::uint64_t added,
                        EmvdChaseFixpointOnWorkspace(ws, sigma, options));
  (void)added;
  return ws.Satisfies(target);
}

}  // namespace ccfp
