#ifndef CCFP_CHASE_WORKSPACE_CHASE_H_
#define CCFP_CHASE_WORKSPACE_CHASE_H_

#include <array>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "chase/chase.h"
#include "core/dependency.h"
#include "core/workspace.h"
#include "util/status.h"
#include "util/task_pool.h"

namespace ccfp {

/// Counters of one WorkspaceChase::Run call (same meanings as ChaseResult).
struct WorkspaceChaseStats {
  ChaseOutcome outcome = ChaseOutcome::kFixpoint;
  std::uint64_t fd_merges = 0;
  std::uint64_t ind_tuples = 0;
  std::uint64_t steps = 0;
};

/// The delta-driven FD+IND chase engine (PR 1/2's incremental engine),
/// re-hosted on a caller-owned InternedWorkspace — the substrate keeps the
/// interner, union-find, tuple stores, and occurrence lists; this class
/// keeps only the rule machinery (per-FD lhs-key indexes, per-IND rhs
/// projection sets, dirty worklists, admission cursors).
///
/// The payoff over the one-shot engine is that the chase is *resumable*:
/// after Run() reaches a fixpoint, the caller can append more tuples to the
/// workspace (repair seeds, new probes) and Run() again — only the delta is
/// chased, nothing is re-interned, and the persistent indexes carry over.
/// This is what retires the per-round full re-intern in the Armstrong
/// build -> chase -> verify -> repair loop.
///
/// Invariants: the workspace must not be mutated by anyone else between
/// construction and the last Run() except by appending tuples; after a Run
/// returns kFixpoint every tuple is canonical, so workspace model checking
/// (Satisfies / partitions) is valid until the next append.
///
/// Parallelism (ChaseOptions::threads / ::pool): when a pool is available,
/// the FD-fixpoint inner rounds split each dirty round across workers —
/// canonical lhs keys are computed over a *frozen* union-find (the round's
/// serial pre-pass canonicalized every live slot, so read-only root lookups
/// are race-free), and the per-FD key index is partitioned into hash shards
/// so no two tasks ever touch one open-addressed map. All union-find
/// mutation stays single-threaded: a round that discovers any merge
/// candidate (or a stale index representative, whose takeover identity can
/// reorder merge pairs) rolls its speculative inserts back and replays the
/// round through the sequential probe path, in round order. Chase outcomes
/// — verdict, final database bytes, fd_merges/ind_tuples/steps — are
/// therefore identical to the sequential engine at every thread count; the
/// only observable difference is that the change feed may carry extra
/// idempotent per-slot rewrite events (a replayed round canonicalizes in
/// the pre-pass and again at its sequential turn).
///
/// The chase is itself a consumer of the workspace *change feed*: between
/// Runs it admits outside appends by replaying the feed from its cursor
/// (`event_cursor`), and its own merges surface as rewrite/kill events
/// other consumers can replay. In particular, an
/// IncrementalVerifier (verify/verifier.h) attached to the same workspace
/// can verify *mid-chase* — after any Run that reaches kFixpoint — in
/// time proportional to that Run's delta: surgical partition repair means
/// the fixpoint's merges no longer invalidate a single cached partition.
class WorkspaceChase {
 public:
  /// CHECK-fails if any dependency is invalid for the workspace's scheme.
  WorkspaceChase(InternedWorkspace* ws, std::vector<Fd> fds,
                 std::vector<Ind> inds);
  /// Releases the chase's registered feed cursor (so it stops pinning
  /// compaction). The workspace must outlive the chase.
  ~WorkspaceChase();

  WorkspaceChase(const WorkspaceChase&) = delete;
  WorkspaceChase& operator=(const WorkspaceChase&) = delete;

  const std::vector<Fd>& fds() const { return fds_; }
  const std::vector<Ind>& inds() const { return inds_; }

  /// The chase's position in `rel`'s change feed: every event with a
  /// lower sequence number is incorporated into its rule indexes. After a
  /// Run returns kFixpoint this equals the workspace's EventCount(rel);
  /// a ResourceExhausted Run may leave it behind (the next Run resumes).
  std::uint64_t event_cursor(RelId rel) const {
    return admit_cursor_[rel];
  }

  /// Chases everything appended since the last Run (plus its consequences)
  /// to a Sigma fixpoint or failure. Budgets apply per call; `max_tuples`
  /// bounds the workspace's total alive tuples. A kFailed outcome (two
  /// constants merged) is sticky: the workspace is left mid-chase and
  /// further Runs return kFailed immediately. A ResourceExhausted return
  /// leaves the worklists intact (the interrupted slot is requeued), so a
  /// later Run with a larger budget resumes exactly where this one
  /// stopped; the workspace must not be model-checked while exhausted
  /// (tuples may be stale).
  Result<WorkspaceChaseStats> Run(const ChaseOptions& options);

 private:
  struct IndState {
    /// Canonical rhs projections present in the rhs relation. Insert-only:
    /// entries whose ids have since been merged away contain non-root ids
    /// and can never collide with a canonical probe key, so stale entries
    /// are harmless.
    std::unordered_set<IdTuple, IdTupleHash> rhs_keys;
    /// Lhs slots whose canonical form changed since the last pass.
    std::vector<std::uint32_t> dirty;
    /// Lhs slots below this index were scanned in earlier passes.
    std::uint32_t cursor = 0;
  };

  /// Periodic budget checkpoint for the inner loops: consults the
  /// kEngineExhaust fault site every call and, every 64th call, the
  /// wall-clock deadline and the workspace byte ceiling. Returning
  /// ResourceExhausted here is always resumable (callers requeue).
  Status BudgetCheckpoint();
  void EnqueueFdDirty(RelId rel, std::uint32_t idx);
  void RegisterRhsProjections(RelId rel, std::uint32_t idx);
  /// Takes a freshly appended slot under management: rhs projections into
  /// every IND targeting its relation, plus an FD-dirty enqueue.
  void AdmitSlot(RelId rel, std::uint32_t idx);
  /// Replays the change feed from the admission cursors, admitting every
  /// append published since the last call (rewrites/kills are the chase's
  /// own moves and already tracked by its worklists).
  void AdmitAppended();
  Status ProbeFd(std::uint32_t fd_id, RelId rel, std::uint32_t idx);
  /// Pops and fully processes the front dirty slot (canonicalize,
  /// re-register, probe every FD on its relation) — the sequential unit
  /// both drain paths are built from.
  Status DrainOneFdSlot();
  Status DrainFdDirty();
  /// Parallel drain: snapshots the queue into rounds and runs each round
  /// through ParallelFdRound; small rounds fall back to DrainOneFdSlot.
  Status DrainFdDirtyParallel(TaskPool& pool);
  /// One parallel round: serial canonicalization pre-pass, parallel frozen
  /// key probe over sharded indexes, then either keep the speculative
  /// inserts (no merge anywhere — provably identical to sequential) or
  /// roll back and replay the round sequentially.
  Status ParallelFdRound(TaskPool& pool);
  /// The authoritative sequential replay of a parallel round that found
  /// merge work. Restores the unprocessed tail to the queue *front* on a
  /// budget trip so resume order matches the sequential engine exactly.
  Status ReplayRoundSequential(const std::vector<WorkspaceTupleRef>& live);
  Status ProbeInd(std::uint32_t ind_id, std::uint32_t idx, bool* any);
  Status IndPass(bool* any);

  InternedWorkspace* ws_;
  std::vector<Fd> fds_;
  std::vector<Ind> inds_;

  /// The per-FD lhs-key index is split into kFdIndexShards hash shards
  /// (shard = IdTupleHash(key) & (kFdIndexShards - 1)) so a parallel round
  /// can hand each (FD, shard) to one task with exclusive ownership —
  /// equal keys always land in the same shard, so the speculative inserts
  /// see exactly the collisions the sequential probe would.
  static constexpr std::uint32_t kFdIndexShards = 16;
  /// Rounds smaller than this are drained sequentially: the fork/join and
  /// snapshot overhead dwarfs the probe work.
  static constexpr std::size_t kMinParallelFdRound = 32;
  using FdIndexShard =
      std::unordered_map<IdTuple, std::uint32_t, IdTupleHash>;

  std::vector<std::vector<std::uint32_t>> fds_by_rel_;
  std::vector<std::array<FdIndexShard, kFdIndexShards>>
      fd_index_;  // per FD: canonical lhs key -> representative slot
  std::vector<IndState> ind_states_;
  std::vector<std::vector<std::uint32_t>> inds_by_lhs_rel_;
  std::vector<std::vector<std::uint32_t>> inds_by_rhs_rel_;

  std::deque<WorkspaceTupleRef> fd_dirty_;
  std::vector<std::vector<std::uint8_t>> queued_;  // per rel, per slot
  std::vector<std::uint32_t> admitted_;            // per rel: admitted prefix
  std::vector<std::uint64_t> admit_cursor_;        // per rel: feed position
  InternedWorkspace::FeedCursorId feed_cursor_ = 0;  ///< pins compaction
  bool failed_ = false;

  // Per-Run budget counters (reset by Run).
  const ChaseOptions* options_ = nullptr;
  std::uint64_t fd_merges_ = 0;
  std::uint64_t ind_tuples_ = 0;
  std::uint64_t steps_ = 0;
  std::uint64_t checkpoint_tick_ = 0;
};

}  // namespace ccfp

#endif  // CCFP_CHASE_WORKSPACE_CHASE_H_
