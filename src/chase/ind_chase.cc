#include "chase/ind_chase.h"

#include <deque>
#include <utility>

#include "core/satisfies.h"
#include "util/check.h"
#include "util/strings.h"

namespace ccfp {

Result<std::uint64_t> IndChaseFixpoint(Database& db,
                                       const std::vector<Ind>& sigma,
                                       const IndChaseOptions& options) {
  const DatabaseScheme& scheme = db.scheme();
  for (const Ind& ind : sigma) CCFP_RETURN_NOT_OK(Validate(scheme, ind));

  // Sigma grouped by left-hand relation, so each popped tuple only visits
  // the INDs that can actually fire on it (declaration order preserved).
  std::vector<std::vector<const Ind*>> by_lhs_rel(scheme.size());
  for (const Ind& ind : sigma) by_lhs_rel[ind.lhs_rel].push_back(&ind);

  // Worklist of (relation, tuple index) pairs not yet pushed through Sigma.
  std::deque<std::pair<RelId, std::size_t>> worklist;
  for (RelId rel = 0; rel < scheme.size(); ++rel) {
    for (std::size_t i = 0; i < db.relation(rel).size(); ++i) {
      worklist.emplace_back(rel, i);
    }
  }

  std::uint64_t added = 0;
  while (!worklist.empty()) {
    auto [rel, index] = worklist.front();
    worklist.pop_front();
    for (const Ind* ind : by_lhs_rel[rel]) {
      // Rule (*): build t over the rhs relation with t[D_u] = u[C_u] and 0
      // for each remaining attribute.
      const Tuple& u = db.relation(rel).tuples()[index];
      Tuple t(scheme.relation(ind->rhs_rel).arity(), Value::Int(0));
      for (std::size_t p = 0; p < ind->width(); ++p) {
        t[ind->rhs[p]] = u[ind->lhs[p]];
      }
      if (db.relation(ind->rhs_rel).Contains(t)) continue;
      if (++added > options.max_tuples) {
        return Status::ResourceExhausted(
            StrCat("IND chase budget of ", options.max_tuples,
                   " tuples exhausted"));
      }
      std::size_t new_index = db.relation(ind->rhs_rel).size();
      db.Insert(ind->rhs_rel, std::move(t));
      worklist.emplace_back(ind->rhs_rel, new_index);
    }
  }
  return added;
}

Result<IndChaseResult> IndChaseDecide(SchemePtr scheme,
                                      const std::vector<Ind>& sigma,
                                      const Ind& target,
                                      const IndChaseOptions& options) {
  CCFP_RETURN_NOT_OK(Validate(*scheme, target));
  Database db(scheme);

  // p over the lhs relation: p[A_i] = i (1-based, as in the paper), 0
  // elsewhere.
  Tuple p(scheme->relation(target.lhs_rel).arity(), Value::Int(0));
  for (std::size_t i = 0; i < target.lhs.size(); ++i) {
    p[target.lhs[i]] = Value::Int(static_cast<std::int64_t>(i + 1));
  }
  db.Insert(target.lhs_rel, std::move(p));

  IndChaseResult result(std::move(db));
  CCFP_ASSIGN_OR_RETURN(result.tuples_added,
                        IndChaseFixpoint(result.db, sigma, options));

  // The database now satisfies Sigma (by construction of the fixpoint).
  // Sigma |= target iff it also satisfies the target, which by the choice
  // of p reduces to: some tuple p' of the rhs relation has p'[B_i] = i.
  Tuple want;
  want.reserve(target.rhs.size());
  for (std::size_t i = 0; i < target.rhs.size(); ++i) {
    want.push_back(Value::Int(static_cast<std::int64_t>(i + 1)));
  }
  result.implied =
      result.db.relation(target.rhs_rel).ProjectSet(target.rhs).count(want) >
      0;

  // Cross-check with full satisfaction (cheap; guards the implementation).
  CCFP_CHECK(result.implied == Satisfies(result.db, target));
  return result;
}

}  // namespace ccfp
