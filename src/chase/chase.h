#ifndef CCFP_CHASE_CHASE_H_
#define CCFP_CHASE_CHASE_H_

#include <cstdint>
#include <vector>

#include "core/database.h"
#include "core/dependency.h"
#include "core/interned.h"
#include "util/status.h"

namespace ccfp {

/// The standard chase for FDs and INDs with labeled nulls:
///   * an FD violation t1[X] = t2[X], t1[Y] != t2[Y] merges values (labeled
///     nulls are replaced; two distinct constants make the chase fail);
///   * an IND violation creates the missing right-hand tuple, padding the
///     unconstrained attributes with *fresh* labeled nulls.
///
/// With cyclic IND sets the chase may run forever — the implication problem
/// for FDs and INDs together is undecidable (Mitchell; Chandra–Vardi), so
/// every entry point takes a budget and can report ResourceExhausted.

/// Which chase engine to run.
enum class ChaseEngine : std::uint8_t {
  /// Delta-driven engine (chase/incremental.h): interned values, dense
  /// union-find, persistent per-FD/per-IND indexes, dirty worklists. Work
  /// is proportional to the change each rule firing causes. The default.
  kIncremental = 0,
  /// The original restart-loop engine: every pass rebuilds its indexes and
  /// rescans every tuple. O(passes x deps x tuples); kept as a simple
  /// reference implementation for differential testing.
  kNaive = 1,
};

struct ChaseOptions {
  std::uint64_t max_steps = 1u << 20;
  std::uint64_t max_tuples = 1u << 18;
  ChaseEngine engine = ChaseEngine::kIncremental;
};

enum class ChaseOutcome : std::uint8_t {
  /// Fixpoint reached; the result satisfies all FDs and INDs.
  kFixpoint,
  /// An FD tried to equate two distinct constants.
  kFailed,
};

struct ChaseResult {
  ChaseOutcome outcome = ChaseOutcome::kFixpoint;
  Database db;
  std::uint64_t fd_merges = 0;
  std::uint64_t ind_tuples = 0;
  std::uint64_t steps = 0;

  explicit ChaseResult(Database database) : db(std::move(database)) {}
};

/// Chase result kept in id-space: the incremental engine hands over its
/// interner and canonicalized id-tuples, so verification (Satisfies /
/// ObeysExactly on the IdDatabase) runs without re-interning a single
/// Value — the build -> chase -> verify round trip interns values once.
struct InternedChaseResult {
  ChaseOutcome outcome = ChaseOutcome::kFixpoint;
  IdDatabase db;
  std::uint64_t fd_merges = 0;
  std::uint64_t ind_tuples = 0;
  std::uint64_t steps = 0;

  explicit InternedChaseResult(IdDatabase database)
      : db(std::move(database)) {}
};

class Chase {
 public:
  /// CHECK-fails if any dependency is invalid for `scheme`.
  Chase(SchemePtr scheme, std::vector<Fd> fds, std::vector<Ind> inds);

  const std::vector<Fd>& fds() const { return fds_; }
  const std::vector<Ind>& inds() const { return inds_; }

  /// Chases `initial` to a fixpoint (or failure), within budget.
  /// ResourceExhausted means "did not converge in budget" — with cyclic
  /// INDs this is the undecidability surface, not a bug. Dispatches on
  /// `options.engine`; both engines agree on outcome and tuple counts.
  Result<ChaseResult> Run(Database initial,
                          const ChaseOptions& options = {}) const;

  /// Like Run, but keeps the result interned (see InternedChaseResult).
  /// With the naive engine the result database is interned after the run
  /// (one extra pass); with the incremental engine the engine's own
  /// interner is reused at zero conversion cost.
  Result<InternedChaseResult> RunInterned(
      Database initial, const ChaseOptions& options = {}) const;

 private:
  Result<ChaseResult> RunNaive(Database initial,
                               const ChaseOptions& options) const;

  SchemePtr scheme_;
  std::vector<Fd> fds_;
  std::vector<Ind> inds_;
};

/// Semi-decision of unrestricted implication Sigma |= target for FD+IND
/// Sigma and an FD / IND / RD target, by chasing the canonical database of
/// the target (the standard universal-model argument):
///   * FD R: X -> Y  — seed two tuples agreeing (same nulls) on X;
///   * IND R[X] <= S[Y] — seed one all-fresh tuple in R;
///   * RD R[X = Y] — seed one all-fresh tuple in R.
/// If the chase reaches a fixpoint, the answer is exact: target holds in
/// the chased database iff Sigma |= target. Budget exhaustion returns
/// ResourceExhausted (unknown) — unavoidable, by undecidability.
Result<bool> ChaseImplies(SchemePtr scheme, const std::vector<Fd>& fds,
                          const std::vector<Ind>& inds,
                          const Dependency& target,
                          const ChaseOptions& options = {});

}  // namespace ccfp

#endif  // CCFP_CHASE_CHASE_H_
