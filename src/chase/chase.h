#ifndef CCFP_CHASE_CHASE_H_
#define CCFP_CHASE_CHASE_H_

#include <cstdint>
#include <vector>

#include <optional>

#include "core/database.h"
#include "core/dependency.h"
#include "core/interned.h"
#include "core/verdict.h"
#include "util/budget.h"
#include "util/status.h"
#include "util/task_pool.h"

namespace ccfp {

/// The standard chase for FDs and INDs with labeled nulls:
///   * an FD violation t1[X] = t2[X], t1[Y] != t2[Y] merges values (labeled
///     nulls are replaced; two distinct constants make the chase fail);
///   * an IND violation creates the missing right-hand tuple, padding the
///     unconstrained attributes with *fresh* labeled nulls.
///
/// With cyclic IND sets the chase may run forever — the implication problem
/// for FDs and INDs together is undecidable (Mitchell; Chandra–Vardi), so
/// every entry point takes a budget and can report ResourceExhausted.

/// Which chase engine to run.
enum class ChaseEngine : std::uint8_t {
  /// Delta-driven engine (chase/incremental.h): interned values, dense
  /// union-find, persistent per-FD/per-IND indexes, dirty worklists. Work
  /// is proportional to the change each rule firing causes. The default.
  kIncremental = 0,
  /// The original restart-loop engine: every pass rebuilds its indexes and
  /// rescans every tuple. O(passes x deps x tuples); kept as a simple
  /// reference implementation for differential testing.
  kNaive = 1,
};

struct ChaseOptions {
  std::uint64_t max_steps = 1u << 20;
  std::uint64_t max_tuples = 1u << 18;
  /// Ceiling on the workspace's live logical bytes (util/memory_budget.h);
  /// the workspace-backed engine checks it at periodic checkpoints and
  /// stops resumably with ResourceExhausted when exceeded.
  std::uint64_t max_bytes = UINT64_MAX;
  /// Wall-clock deadline, honored inside FD-fixpoint inner loops (not
  /// just at round boundaries) by the workspace-backed engine.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  ChaseEngine engine = ChaseEngine::kIncremental;
  /// Workspace-backed engine only: executors for the parallel FD-fixpoint
  /// probe rounds (see WorkspaceChase). 1 = fully sequential; chase
  /// outcomes are byte-identical at every value. Ignored when `pool` set.
  unsigned threads = 1;
  /// Workspace-backed engine only: run probe rounds on this caller-owned
  /// pool instead of a transient one per Run. Not owned.
  TaskPool* pool = nullptr;
  /// Optional cooperative cancellation token (not owned): the workspace
  /// engine polls `cancel->exhausted()` at every budget checkpoint and
  /// stops resumably with ResourceExhausted once another racer marked it.
  /// The chase never charges this meter — it is a pure kill switch for
  /// first-verdict-wins races (solve/solver.h).
  SharedBudgetMeter* cancel = nullptr;

  /// Maps the shared Budget vocabulary onto the chase's knobs
  /// (steps -> max_steps, tuples -> max_tuples, bytes -> max_bytes,
  /// deadline -> deadline).
  static ChaseOptions FromBudget(const Budget& budget,
                                 ChaseEngine engine = ChaseEngine::kIncremental) {
    ChaseOptions options;
    options.max_steps = budget.steps;
    options.max_tuples = budget.tuples;
    options.max_bytes = budget.bytes;
    options.deadline = budget.deadline;
    options.engine = engine;
    return options;
  }
};

enum class ChaseOutcome : std::uint8_t {
  /// Fixpoint reached; the result satisfies all FDs and INDs.
  kFixpoint,
  /// An FD tried to equate two distinct constants.
  kFailed,
};

struct ChaseResult {
  ChaseOutcome outcome = ChaseOutcome::kFixpoint;
  Database db;
  std::uint64_t fd_merges = 0;
  std::uint64_t ind_tuples = 0;
  std::uint64_t steps = 0;

  explicit ChaseResult(Database database) : db(std::move(database)) {}
};

/// Chase result kept in id-space: the incremental engine hands over its
/// interner and canonicalized id-tuples, so verification (Satisfies /
/// ObeysExactly on the IdDatabase) runs without re-interning a single
/// Value — the build -> chase -> verify round trip interns values once.
struct InternedChaseResult {
  ChaseOutcome outcome = ChaseOutcome::kFixpoint;
  IdDatabase db;
  std::uint64_t fd_merges = 0;
  std::uint64_t ind_tuples = 0;
  std::uint64_t steps = 0;

  explicit InternedChaseResult(IdDatabase database)
      : db(std::move(database)) {}
};

class Chase {
 public:
  /// CHECK-fails if any dependency is invalid for `scheme`.
  Chase(SchemePtr scheme, std::vector<Fd> fds, std::vector<Ind> inds);

  const std::vector<Fd>& fds() const { return fds_; }
  const std::vector<Ind>& inds() const { return inds_; }

  /// Chases `initial` to a fixpoint (or failure), within budget.
  /// ResourceExhausted means "did not converge in budget" — with cyclic
  /// INDs this is the undecidability surface, not a bug. Dispatches on
  /// `options.engine`; both engines agree on outcome and tuple counts.
  Result<ChaseResult> Run(Database initial,
                          const ChaseOptions& options = {}) const;

  /// Like Run, but keeps the result interned (see InternedChaseResult).
  /// With the naive engine the result database is interned after the run
  /// (one extra pass); with the incremental engine the engine's own
  /// interner is reused at zero conversion cost.
  Result<InternedChaseResult> RunInterned(
      Database initial, const ChaseOptions& options = {}) const;

 private:
  Result<ChaseResult> RunNaive(Database initial,
                               const ChaseOptions& options) const;

  SchemePtr scheme_;
  std::vector<Fd> fds_;
  std::vector<Ind> inds_;
};

/// The canonical (universal-model) seed database for an implication query
/// on `target`:
///   * FD R: X -> Y  — two tuples agreeing (same nulls) on X;
///   * IND R[X] <= S[Y] — one all-fresh tuple in R;
///   * RD R[X = Y] — one all-fresh tuple in R.
/// Unimplemented for EMVD/MVD targets. Exposed so budget-staged drivers
/// (solve/solver.h) can seed their own workspace and chase resumably.
Result<Database> MakeCanonicalSeed(SchemePtr scheme,
                                   const Dependency& target);

/// Semi-decision of unrestricted implication Sigma |= target for FD+IND
/// Sigma and an FD / IND / RD target, by chasing the canonical database of
/// the target (the standard universal-model argument). If the chase
/// reaches a fixpoint, the answer is exact: target holds in the chased
/// database iff Sigma |= target. Budget exhaustion returns
/// ResourceExhausted (unknown) — unavoidable, by undecidability.
///
/// Deprecated entry point: prefer the Budget overload below (three-valued,
/// with evidence) or ImplicationSolver::Solve for fragment routing.
Result<bool> ChaseImplies(SchemePtr scheme, const std::vector<Fd>& fds,
                          const std::vector<Ind>& inds,
                          const Dependency& target,
                          const ChaseOptions& options = {});

/// Verdict-vocabulary outcome of a chase-based implication query.
struct ChaseImplication {
  /// kUnknown iff the chase exhausted its budget before a fixpoint.
  ImplicationVerdict verdict = ImplicationVerdict::kUnknown;
  /// Chase counters — the "proof trace" of a kImplied verdict (the
  /// universal-model argument: target holds in the chased fixpoint).
  std::uint64_t fd_merges = 0;
  std::uint64_t ind_tuples = 0;
  std::uint64_t steps = 0;
  /// The chased fixpoint when kNotImplied: a concrete finite database
  /// satisfying Sigma (re-checked in id-space before it is attached) and
  /// violating the target.
  std::optional<Database> counterexample;
  /// Budget consumed (steps + tuples generated). On a kUnknown verdict
  /// the engine's exact counters are lost, so the full allowance is
  /// charged on both axes (an upper bound — the shared convention for
  /// exhausted stages).
  BudgetUse used;
};

/// Budget-vocabulary ChaseImplies: never errors on exhaustion (that is the
/// kUnknown verdict); error statuses are reserved for invalid inputs.
Result<ChaseImplication> ChaseImplies(SchemePtr scheme,
                                      const std::vector<Fd>& fds,
                                      const std::vector<Ind>& inds,
                                      const Dependency& target,
                                      const Budget& budget,
                                      ChaseEngine engine =
                                          ChaseEngine::kIncremental);

}  // namespace ccfp

#endif  // CCFP_CHASE_CHASE_H_
